/** @file Static top-N cache tests. */

#include <gtest/gtest.h>

#include <vector>

#include "cache/static_cache.h"
#include "common/logging.h"

namespace sp::cache
{
namespace
{

emb::EmbeddingTable
rampTable(uint32_t rows, size_t dim)
{
    emb::EmbeddingTable table(rows, dim);
    for (uint32_t r = 0; r < rows; ++r)
        for (size_t d = 0; d < dim; ++d)
            table.row(r)[d] = static_cast<float>(r * 10 + d);
    return table;
}

TEST(StaticCache, QuerySplitsHitsAndMisses)
{
    const std::vector<uint64_t> cached = {2, 5, 9};
    StaticCache cache(cached, 4);
    const std::vector<uint64_t> ids = {5, 1, 9, 9, 7};
    const QuerySplit split = cache.query(ids);
    EXPECT_EQ(split.hits, 3u);
    EXPECT_EQ(split.misses, 2u);
    const std::vector<bool> expected = {true, false, true, true, false};
    EXPECT_EQ(split.hit_mask, expected);
    EXPECT_NEAR(split.hitRate(), 0.6, 1e-12);
}

TEST(StaticCache, EmptyQueryIsNoops)
{
    const std::vector<uint64_t> cached = {1};
    StaticCache cache(cached, 4);
    const QuerySplit split = cache.query(std::vector<uint64_t>{});
    EXPECT_EQ(split.hits, 0u);
    EXPECT_EQ(split.misses, 0u);
    EXPECT_DOUBLE_EQ(split.hitRate(), 0.0);
}

TEST(StaticCache, SlotLookup)
{
    const std::vector<uint64_t> cached = {10, 20, 30};
    StaticCache cache(cached, 2);
    EXPECT_EQ(cache.slotFor(10), 0u);
    EXPECT_EQ(cache.slotFor(20), 1u);
    EXPECT_EQ(cache.slotFor(30), 2u);
    EXPECT_EQ(cache.slotFor(40), HitMap::kNotFound);
    EXPECT_EQ(cache.rowOfSlot(1), 20u);
}

TEST(StaticCache, FillCopiesTableValues)
{
    auto table = rampTable(10, 3);
    const std::vector<uint64_t> cached = {4, 7};
    StaticCache cache(cached, 3);
    cache.fillFrom(table);
    auto accessor = cache.accessor();
    EXPECT_FLOAT_EQ(accessor.row(4)[0], 40.0f);
    EXPECT_FLOAT_EQ(accessor.row(7)[2], 72.0f);
}

TEST(StaticCache, FlushWritesBackUpdates)
{
    auto table = rampTable(10, 2);
    const std::vector<uint64_t> cached = {3};
    StaticCache cache(cached, 2);
    cache.fillFrom(table);

    auto accessor = cache.accessor();
    accessor.row(3)[0] = -99.0f; // train the cached copy
    EXPECT_FLOAT_EQ(table.row(3)[0], 30.0f); // table still stale

    cache.flushTo(table);
    EXPECT_FLOAT_EQ(table.row(3)[0], -99.0f);
    EXPECT_FLOAT_EQ(table.row(3)[1], 31.0f);
}

TEST(StaticCache, AccessorPanicsOnNonCachedRow)
{
    const std::vector<uint64_t> cached = {1};
    StaticCache cache(cached, 2);
    auto accessor = cache.accessor();
    EXPECT_THROW(accessor.row(2), PanicError);
}

TEST(StaticCache, TopNOfRankedRowsActsAsFrequencyCache)
{
    // IDs 0..9; cache the "hottest" 3 by construction.
    const std::vector<uint64_t> ranked = {0, 1, 2};
    StaticCache cache(ranked, 2);
    std::vector<uint64_t> ids;
    for (uint32_t i = 0; i < 10; ++i)
        ids.push_back(i);
    const QuerySplit split = cache.query(ids);
    EXPECT_EQ(split.hits, 3u);
    EXPECT_EQ(split.misses, 7u);
}

TEST(StaticCache, EmptyContentsFatal)
{
    const std::vector<uint64_t> none;
    EXPECT_THROW(StaticCache(none, 4), FatalError);
}

TEST(StaticCache, DimensionMismatchPanics)
{
    auto table = rampTable(10, 3);
    const std::vector<uint64_t> cached = {1};
    StaticCache cache(cached, 2);
    EXPECT_THROW(cache.fillFrom(table), PanicError);
    EXPECT_THROW(cache.flushTo(table), PanicError);
}

TEST(StaticCache, PhantomBackingForTimingMode)
{
    const std::vector<uint64_t> cached = {1, 2, 3};
    StaticCache cache(cached, 128, SlotArray::Backing::Phantom);
    // Queries work without storage...
    const std::vector<uint64_t> ids = {1, 9};
    EXPECT_EQ(cache.query(ids).hits, 1u);
    // ...but data access is forbidden.
    auto accessor = cache.accessor();
    EXPECT_THROW(accessor.row(1), PanicError);
}

} // namespace
} // namespace sp::cache
