/** @file HitMap unit tests + randomized model check. */

#include <gtest/gtest.h>

#include <unordered_map>
#include <vector>

#include "cache/hit_map.h"
#include "common/logging.h"
#include "tensor/rng.h"

namespace sp::cache
{
namespace
{

TEST(HitMap, EmptyOnConstruction)
{
    HitMap map;
    EXPECT_TRUE(map.empty());
    EXPECT_EQ(map.size(), 0u);
    EXPECT_EQ(map.find(42), HitMap::kNotFound);
    EXPECT_FALSE(map.contains(42));
}

TEST(HitMap, InsertFindRoundTrip)
{
    HitMap map;
    map.insert(10, 100);
    map.insert(20, 200);
    EXPECT_EQ(map.find(10), 100u);
    EXPECT_EQ(map.find(20), 200u);
    EXPECT_EQ(map.find(30), HitMap::kNotFound);
    EXPECT_EQ(map.size(), 2u);
}

TEST(HitMap, EraseRemovesOnlyTarget)
{
    HitMap map;
    map.insert(1, 11);
    map.insert(2, 22);
    map.insert(3, 33);
    map.erase(2);
    EXPECT_EQ(map.find(1), 11u);
    EXPECT_EQ(map.find(2), HitMap::kNotFound);
    EXPECT_EQ(map.find(3), 33u);
    EXPECT_EQ(map.size(), 2u);
}

TEST(HitMap, ReinsertAfterErase)
{
    HitMap map;
    map.insert(5, 50);
    map.erase(5);
    map.insert(5, 51);
    EXPECT_EQ(map.find(5), 51u);
}

TEST(HitMap, DoubleInsertPanics)
{
    HitMap map;
    map.insert(7, 70);
    EXPECT_THROW(map.insert(7, 71), PanicError);
}

TEST(HitMap, EraseAbsentPanics)
{
    HitMap map;
    EXPECT_THROW(map.erase(9), PanicError);
}

TEST(HitMap, ReservedKeyRejected)
{
    HitMap map;
    EXPECT_THROW(map.insert(kProbeEmptyKey, 1), PanicError);
    EXPECT_THROW(map.find(kProbeEmptyKey), PanicError);
}

/**
 * Keys at and around every 2^32 boundary are ordinary 64-bit keys.
 * The old packed-entry layout reserved 0xffffffff and truncated
 * anything wider; both were exactly the aliasing bug a >2^32-row
 * table would hit, so pin the fixed behavior.
 */
TEST(HitMap, Keys64BitCleanAcrossThe32BitBoundary)
{
    HitMap map;
    const uint64_t keys[] = {
        0xfffffffeull,          // just below 2^32 - 1
        0xffffffffull,          // the old reserved sentinel: legal now
        0x100000000ull,         // 2^32
        0x100000001ull,         // 2^32 + 1: aliased 1 when truncated
        0xfedcba9876543210ull,  // high-entropy upper half
    };
    map.insert(1, 1000); // would collide with 2^32+1 under truncation
    for (uint32_t i = 0; i < 5; ++i)
        map.insert(keys[i], i);
    for (uint32_t i = 0; i < 5; ++i)
        EXPECT_EQ(map.find(keys[i]), i);
    EXPECT_EQ(map.find(1), 1000u);
    // Truncation aliases must stay distinct misses.
    EXPECT_EQ(map.find(0x1fffffffeull), HitMap::kNotFound);
    map.erase(keys[1]);
    EXPECT_EQ(map.find(keys[1]), HitMap::kNotFound);
    EXPECT_EQ(map.find(keys[3]), 3u);
}

TEST(HitMap, GrowsPastInitialCapacity)
{
    HitMap map(4);
    for (uint32_t k = 0; k < 1000; ++k)
        map.insert(k, k * 2);
    EXPECT_EQ(map.size(), 1000u);
    for (uint32_t k = 0; k < 1000; ++k)
        EXPECT_EQ(map.find(k), k * 2);
}

TEST(HitMap, ClearEmptiesEverything)
{
    HitMap map;
    for (uint32_t k = 0; k < 100; ++k)
        map.insert(k, k);
    map.clear();
    EXPECT_TRUE(map.empty());
    for (uint32_t k = 0; k < 100; ++k)
        EXPECT_FALSE(map.contains(k));
}

TEST(HitMap, ForEachVisitsAllEntries)
{
    HitMap map;
    map.insert(3, 30);
    map.insert(6, 60);
    map.insert(9, 90);
    std::unordered_map<uint64_t, uint32_t> seen;
    map.forEach([&](uint64_t k, uint32_t v) { seen[k] = v; });
    EXPECT_EQ(seen.size(), 3u);
    EXPECT_EQ(seen[3], 30u);
    EXPECT_EQ(seen[6], 60u);
    EXPECT_EQ(seen[9], 90u);
}

TEST(HitMap, MemoryBytesPositive)
{
    HitMap map(1000);
    EXPECT_GT(map.memoryBytes(), 1000u * 8);
}

/**
 * Randomized model check: a long interleaving of inserts, erases and
 * lookups must agree with std::unordered_map at every step. This
 * exercises the backward-shift deletion paths that hand-written probe
 * loops typically get wrong.
 */
TEST(HitMap, RandomOpsMatchReferenceModel)
{
    HitMap map(8);
    std::unordered_map<uint64_t, uint32_t> reference;
    tensor::Rng rng(4242);
    constexpr uint64_t key_space = 512; // force dense collisions

    for (int op = 0; op < 200000; ++op) {
        const uint64_t key = rng.uniformInt(key_space);
        const double action = rng.uniform();
        if (action < 0.45) {
            if (reference.find(key) == reference.end()) {
                const uint32_t value = static_cast<uint32_t>(op);
                map.insert(key, value);
                reference[key] = value;
            }
        } else if (action < 0.8) {
            if (reference.find(key) != reference.end()) {
                map.erase(key);
                reference.erase(key);
            }
        } else {
            const auto it = reference.find(key);
            const uint32_t expected =
                it == reference.end() ? HitMap::kNotFound : it->second;
            ASSERT_EQ(map.find(key), expected) << "op " << op;
        }
        ASSERT_EQ(map.size(), reference.size());
    }

    // Final full sweep.
    for (uint64_t key = 0; key < key_space; ++key) {
        const auto it = reference.find(key);
        const uint32_t expected =
            it == reference.end() ? HitMap::kNotFound : it->second;
        EXPECT_EQ(map.find(key), expected);
    }
}

TEST(HitMapFindMany, MatchesFindOnEverySize)
{
    // Sizes straddle the software-pipeline prefetch distance so the
    // lead-in loop, the steady state, and the drain all get hit.
    for (const size_t n :
         {size_t{0}, size_t{1}, size_t{5}, size_t{11}, size_t{12},
          size_t{13}, size_t{100}, size_t{4096}}) {
        HitMap map;
        for (uint32_t k = 0; k < 300; ++k)
            map.insert(k * 3, k);

        tensor::Rng rng(77 + static_cast<uint64_t>(n));
        std::vector<uint64_t> keys(n);
        for (auto &key : keys)
            key = rng.uniformInt(1200);

        std::vector<uint32_t> got(n);
        map.findMany(keys, got);
        for (size_t i = 0; i < n; ++i)
            ASSERT_EQ(got[i], map.find(keys[i])) << "n=" << n << " i=" << i;
    }
}

TEST(HitMapFindMany, HandlesDuplicateAndMissingKeys)
{
    HitMap map;
    map.insert(7, 70);
    map.insert(9, 90);
    const std::vector<uint64_t> keys = {7, 8, 7, 9, 9, 7, 1000};
    std::vector<uint32_t> got(keys.size());
    map.findMany(keys, got);
    const std::vector<uint32_t> expected = {
        70, HitMap::kNotFound, 70, 90, 90, 70, HitMap::kNotFound};
    EXPECT_EQ(got, expected);
}

TEST(HitMapFindMany, SizeMismatchPanics)
{
    HitMap map;
    const std::vector<uint64_t> keys = {1, 2, 3};
    std::vector<uint32_t> out(2);
    EXPECT_THROW(map.findMany(keys, out), PanicError);
}

TEST(HitMapFindMany, ReservedKeyRejected)
{
    HitMap map;
    map.insert(1, 10);
    std::vector<uint64_t> keys(20, 1);
    keys[15] = kProbeEmptyKey; // caught by the validation pre-pass
    std::vector<uint32_t> out(keys.size());
    EXPECT_THROW(map.findMany(keys, out), PanicError);
}

/**
 * Batched probes across the 2^32 boundary: keys that alias under
 * 32-bit truncation must resolve independently through every kernel
 * the dispatcher picks.
 */
TEST(HitMapFindMany, WideKeysDoNotAlias)
{
    HitMap map;
    constexpr uint64_t kStride = 0x100000000ull; // 2^32
    for (uint32_t k = 0; k < 64; ++k)
        map.insert(37 + k * kStride, k);
    std::vector<uint64_t> keys;
    for (uint32_t k = 0; k < 64; ++k) {
        keys.push_back(37 + k * kStride);      // hit, slot k
        keys.push_back(38 + k * kStride);      // miss, truncates to 38
    }
    std::vector<uint32_t> got(keys.size());
    map.findMany(keys, got);
    for (uint32_t k = 0; k < 64; ++k) {
        ASSERT_EQ(got[2 * k], k) << "key " << keys[2 * k];
        ASSERT_EQ(got[2 * k + 1], HitMap::kNotFound)
            << "key " << keys[2 * k + 1];
    }
}

/**
 * Randomized insert/erase/grow stress: a wide key space over a tiny
 * initial table forces repeated grow() rehashes between batched
 * probes; every findMany sweep must agree with std::unordered_map.
 */
TEST(HitMapFindMany, RandomGrowStressMatchesReferenceModel)
{
    HitMap map(4);
    std::unordered_map<uint64_t, uint32_t> reference;
    tensor::Rng rng(20220613);
    constexpr uint64_t key_space = 100'000;

    std::vector<uint64_t> keys;
    std::vector<uint32_t> got;
    for (int round = 0; round < 60; ++round) {
        // Mutation burst: mostly inserts so the table keeps growing,
        // with enough erases to exercise backward-shift chains.
        for (int op = 0; op < 1500; ++op) {
            const uint64_t key = rng.uniformInt(key_space);
            if (rng.uniform() < 0.75) {
                if (reference.find(key) == reference.end()) {
                    const uint32_t value =
                        static_cast<uint32_t>(round * 1500 + op);
                    map.insert(key, value);
                    reference[key] = value;
                }
            } else if (reference.find(key) != reference.end()) {
                map.erase(key);
                reference.erase(key);
            }
        }
        ASSERT_EQ(map.size(), reference.size());

        // Batched probe sweep over a random (hit-heavy) key mix.
        keys.clear();
        for (int i = 0; i < 2000; ++i)
            keys.push_back(rng.uniformInt(key_space));
        got.assign(keys.size(), 0);
        map.findMany(keys, got);
        for (size_t i = 0; i < keys.size(); ++i) {
            const auto it = reference.find(keys[i]);
            const uint32_t expected =
                it == reference.end() ? HitMap::kNotFound : it->second;
            ASSERT_EQ(got[i], expected)
                << "round " << round << " key " << keys[i];
        }
    }
    EXPECT_GT(map.capacity(), 64u); // the stress must actually grow it
}

/**
 * Chain invariant of backward-shift deletion: for every live entry,
 * every bucket on the cyclic path from its home bucket to where it
 * actually sits must be occupied. An erase that breaks this leaves a
 * hole that makes a later probe report a false miss -- the classic
 * silent corruption of hand-rolled open addressing. Checked over the
 * raw key array after every erase in the fuzz loop below.
 */
void
assertProbeChainsUnbroken(const HitMap &map)
{
    const ProbeTable table = map.probeTable();
    for (size_t bucket = 0; bucket <= table.mask; ++bucket) {
        const uint64_t key = table.keys[bucket];
        if (key == kProbeEmptyKey)
            continue;
        for (size_t b = probeBucketFor(table, key); b != bucket;
             b = (b + 1) & table.mask) {
            ASSERT_NE(table.keys[b], kProbeEmptyKey)
                << "hole at bucket " << b << " breaks the chain of key "
                << key << " (home " << probeBucketFor(table, key)
                << ", resting at " << bucket << ")";
        }
    }
}

/**
 * Model-based fuzz: a long randomized interleaving of insert, erase,
 * clear, lookups and batched probes -- with enough inserts to force
 * repeated grow() rehashes -- checked against std::unordered_map at
 * every step, and the backward-shift chain invariant re-verified
 * after every single erase.
 */
TEST(HitMapFuzz, RandomOpsPreserveModelAndChainInvariant)
{
    HitMap map(4);
    std::unordered_map<uint64_t, uint32_t> reference;
    tensor::Rng rng(0xf00df00d);
    // Dense collisions, straddling 2^32 so truncation bugs alias.
    constexpr uint64_t key_space = 1024;
    constexpr uint64_t key_base = 0xfffffe00ull; // 2^32 - 512
    bool grew = false, cleared = false;

    std::vector<uint64_t> keys;
    std::vector<uint32_t> got;
    for (int op = 0; op < 20000; ++op) {
        const uint64_t key = key_base + rng.uniformInt(key_space);
        const double action = rng.uniform();
        if (action < 0.40) {
            if (reference.find(key) == reference.end()) {
                const size_t before = map.capacity();
                map.insert(key, static_cast<uint32_t>(op));
                reference[key] = static_cast<uint32_t>(op);
                grew = grew || map.capacity() != before;
            }
        } else if (action < 0.75) {
            if (reference.find(key) != reference.end()) {
                map.erase(key);
                reference.erase(key);
                assertProbeChainsUnbroken(map);
            }
        } else if (action < 0.752) {
            map.clear();
            reference.clear();
            cleared = true;
        } else if (action < 0.9) {
            const auto it = reference.find(key);
            ASSERT_EQ(map.find(key), it == reference.end()
                                         ? HitMap::kNotFound
                                         : it->second)
                << "op " << op;
        } else {
            // Batched probe through the dispatched kernel.
            keys.clear();
            for (int i = 0; i < 64; ++i)
                keys.push_back(key_base + rng.uniformInt(key_space));
            got.assign(keys.size(), 0);
            map.findMany(keys, got);
            for (size_t i = 0; i < keys.size(); ++i) {
                const auto it = reference.find(keys[i]);
                ASSERT_EQ(got[i], it == reference.end()
                                      ? HitMap::kNotFound
                                      : it->second)
                    << "op " << op << " key " << keys[i];
            }
        }
        ASSERT_EQ(map.size(), reference.size());
    }
    // The interleaving must actually have exercised the rare paths.
    EXPECT_TRUE(grew);
    EXPECT_TRUE(cleared);
    assertProbeChainsUnbroken(map);

    for (uint64_t key = key_base; key < key_base + key_space; ++key) {
        const auto it = reference.find(key);
        EXPECT_EQ(map.find(key), it == reference.end() ? HitMap::kNotFound
                                                       : it->second);
    }
}

} // namespace
} // namespace sp::cache
