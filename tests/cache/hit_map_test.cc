/** @file HitMap unit tests + randomized model check. */

#include <gtest/gtest.h>

#include <unordered_map>

#include "cache/hit_map.h"
#include "common/logging.h"
#include "tensor/rng.h"

namespace sp::cache
{
namespace
{

TEST(HitMap, EmptyOnConstruction)
{
    HitMap map;
    EXPECT_TRUE(map.empty());
    EXPECT_EQ(map.size(), 0u);
    EXPECT_EQ(map.find(42), HitMap::kNotFound);
    EXPECT_FALSE(map.contains(42));
}

TEST(HitMap, InsertFindRoundTrip)
{
    HitMap map;
    map.insert(10, 100);
    map.insert(20, 200);
    EXPECT_EQ(map.find(10), 100u);
    EXPECT_EQ(map.find(20), 200u);
    EXPECT_EQ(map.find(30), HitMap::kNotFound);
    EXPECT_EQ(map.size(), 2u);
}

TEST(HitMap, EraseRemovesOnlyTarget)
{
    HitMap map;
    map.insert(1, 11);
    map.insert(2, 22);
    map.insert(3, 33);
    map.erase(2);
    EXPECT_EQ(map.find(1), 11u);
    EXPECT_EQ(map.find(2), HitMap::kNotFound);
    EXPECT_EQ(map.find(3), 33u);
    EXPECT_EQ(map.size(), 2u);
}

TEST(HitMap, ReinsertAfterErase)
{
    HitMap map;
    map.insert(5, 50);
    map.erase(5);
    map.insert(5, 51);
    EXPECT_EQ(map.find(5), 51u);
}

TEST(HitMap, DoubleInsertPanics)
{
    HitMap map;
    map.insert(7, 70);
    EXPECT_THROW(map.insert(7, 71), PanicError);
}

TEST(HitMap, EraseAbsentPanics)
{
    HitMap map;
    EXPECT_THROW(map.erase(9), PanicError);
}

TEST(HitMap, ReservedKeyRejected)
{
    HitMap map;
    EXPECT_THROW(map.insert(0xffffffffu, 1), PanicError);
    EXPECT_THROW(map.find(0xffffffffu), PanicError);
}

TEST(HitMap, GrowsPastInitialCapacity)
{
    HitMap map(4);
    for (uint32_t k = 0; k < 1000; ++k)
        map.insert(k, k * 2);
    EXPECT_EQ(map.size(), 1000u);
    for (uint32_t k = 0; k < 1000; ++k)
        EXPECT_EQ(map.find(k), k * 2);
}

TEST(HitMap, ClearEmptiesEverything)
{
    HitMap map;
    for (uint32_t k = 0; k < 100; ++k)
        map.insert(k, k);
    map.clear();
    EXPECT_TRUE(map.empty());
    for (uint32_t k = 0; k < 100; ++k)
        EXPECT_FALSE(map.contains(k));
}

TEST(HitMap, ForEachVisitsAllEntries)
{
    HitMap map;
    map.insert(3, 30);
    map.insert(6, 60);
    map.insert(9, 90);
    std::unordered_map<uint32_t, uint32_t> seen;
    map.forEach([&](uint32_t k, uint32_t v) { seen[k] = v; });
    EXPECT_EQ(seen.size(), 3u);
    EXPECT_EQ(seen[3], 30u);
    EXPECT_EQ(seen[6], 60u);
    EXPECT_EQ(seen[9], 90u);
}

TEST(HitMap, MemoryBytesPositive)
{
    HitMap map(1000);
    EXPECT_GT(map.memoryBytes(), 1000u * 8);
}

/**
 * Randomized model check: a long interleaving of inserts, erases and
 * lookups must agree with std::unordered_map at every step. This
 * exercises the backward-shift deletion paths that hand-written probe
 * loops typically get wrong.
 */
TEST(HitMap, RandomOpsMatchReferenceModel)
{
    HitMap map(8);
    std::unordered_map<uint32_t, uint32_t> reference;
    tensor::Rng rng(4242);
    constexpr uint32_t key_space = 512; // force dense collisions

    for (int op = 0; op < 200000; ++op) {
        const uint32_t key =
            static_cast<uint32_t>(rng.uniformInt(key_space));
        const double action = rng.uniform();
        if (action < 0.45) {
            if (reference.find(key) == reference.end()) {
                const uint32_t value = static_cast<uint32_t>(op);
                map.insert(key, value);
                reference[key] = value;
            }
        } else if (action < 0.8) {
            if (reference.find(key) != reference.end()) {
                map.erase(key);
                reference.erase(key);
            }
        } else {
            const auto it = reference.find(key);
            const uint32_t expected =
                it == reference.end() ? HitMap::kNotFound : it->second;
            ASSERT_EQ(map.find(key), expected) << "op " << op;
        }
        ASSERT_EQ(map.size(), reference.size());
    }

    // Final full sweep.
    for (uint32_t key = 0; key < key_space; ++key) {
        const auto it = reference.find(key);
        const uint32_t expected =
            it == reference.end() ? HitMap::kNotFound : it->second;
        EXPECT_EQ(map.find(key), expected);
    }
}

} // namespace
} // namespace sp::cache
