/** @file Replacement-policy behaviour tests (all four policies). */

#include <gtest/gtest.h>

#include <set>

#include "cache/replacement.h"
#include "common/logging.h"

namespace sp::cache
{
namespace
{

const auto kAlwaysEligible = [](uint32_t) { return true; };

class AllPolicies : public ::testing::TestWithParam<PolicyKind>
{
  protected:
    std::unique_ptr<ReplacementPolicy>
    make(uint32_t slots)
    {
        auto policy = makePolicy(GetParam(), 7);
        policy->reset(slots);
        return policy;
    }
};

TEST_P(AllPolicies, VictimAlwaysEligible)
{
    auto policy = make(64);
    for (int round = 0; round < 200; ++round) {
        // Only even slots eligible this round.
        const uint32_t victim = policy->chooseVictim(
            [](uint32_t s) { return s % 2 == 0; });
        ASSERT_NE(victim, ReplacementPolicy::kNoVictim);
        EXPECT_EQ(victim % 2, 0u);
        policy->touch(victim);
    }
}

TEST_P(AllPolicies, NoEligibleSlotReturnsSentinel)
{
    auto policy = make(16);
    EXPECT_EQ(policy->chooseVictim([](uint32_t) { return false; }),
              ReplacementPolicy::kNoVictim);
}

TEST_P(AllPolicies, SingleEligibleSlotFound)
{
    auto policy = make(256);
    for (int i = 0; i < 50; ++i)
        policy->touch(static_cast<uint32_t>(i % 256));
    const uint32_t victim = policy->chooseVictim(
        [](uint32_t s) { return s == 137; });
    EXPECT_EQ(victim, 137u);
}

TEST_P(AllPolicies, VictimWithinRange)
{
    auto policy = make(8);
    for (int i = 0; i < 100; ++i) {
        const uint32_t victim = policy->chooseVictim(kAlwaysEligible);
        ASSERT_LT(victim, 8u);
        policy->touch(victim);
    }
}

TEST_P(AllPolicies, KindReportsConstruction)
{
    auto policy = make(4);
    EXPECT_EQ(policy->kind(), GetParam());
}

INSTANTIATE_TEST_SUITE_P(Policies, AllPolicies,
                         ::testing::Values(PolicyKind::Lru,
                                           PolicyKind::Lfu,
                                           PolicyKind::Random,
                                           PolicyKind::Fifo),
                         [](const auto &info) {
                             return policyName(info.param);
                         });

TEST(LruPolicy, EvictsLeastRecentlyTouched)
{
    auto policy = makePolicy(PolicyKind::Lru);
    policy->reset(4);
    // Touch everything, then re-touch all but slot 2.
    for (uint32_t s = 0; s < 4; ++s)
        policy->touch(s);
    policy->touch(0);
    policy->touch(1);
    policy->touch(3);
    EXPECT_EQ(policy->chooseVictim(kAlwaysEligible), 2u);
}

TEST(LruPolicy, UntouchedSlotsEvictedFirst)
{
    auto policy = makePolicy(PolicyKind::Lru);
    policy->reset(4);
    policy->touch(0);
    policy->touch(1);
    // Slots 2 and 3 never touched; the initial order makes 3 coldest.
    EXPECT_EQ(policy->chooseVictim(kAlwaysEligible), 3u);
}

TEST(LruPolicy, SkipsIneligibleColderSlots)
{
    auto policy = makePolicy(PolicyKind::Lru);
    policy->reset(4);
    for (uint32_t s = 0; s < 4; ++s)
        policy->touch(s);
    // Coldest is 0, but it is held; expect the next coldest, 1.
    EXPECT_EQ(policy->chooseVictim([](uint32_t s) { return s != 0; }),
              1u);
}

TEST(LfuPolicy, PrefersLowFrequencySlots)
{
    auto policy = makePolicy(PolicyKind::Lfu, 9);
    policy->reset(16);
    // Slot 5 touched once, everything else many times.
    for (uint32_t s = 0; s < 16; ++s) {
        const int touches = s == 5 ? 1 : 50;
        for (int i = 0; i < touches; ++i)
            policy->touch(s);
    }
    // Sampled LFU is approximate; across repeats it must pick the cold
    // slot in the clear majority of draws.
    int hits = 0;
    for (int round = 0; round < 20; ++round) {
        if (policy->chooseVictim(kAlwaysEligible) == 5u)
            ++hits;
    }
    EXPECT_GE(hits, 15);
}

TEST(FifoPolicy, CyclesThroughSlots)
{
    auto policy = makePolicy(PolicyKind::Fifo);
    policy->reset(3);
    EXPECT_EQ(policy->chooseVictim(kAlwaysEligible), 0u);
    EXPECT_EQ(policy->chooseVictim(kAlwaysEligible), 1u);
    EXPECT_EQ(policy->chooseVictim(kAlwaysEligible), 2u);
    EXPECT_EQ(policy->chooseVictim(kAlwaysEligible), 0u);
}

TEST(RandomPolicy, SpreadsVictimChoices)
{
    auto policy = makePolicy(PolicyKind::Random, 13);
    policy->reset(32);
    std::set<uint32_t> seen;
    for (int i = 0; i < 200; ++i)
        seen.insert(policy->chooseVictim(kAlwaysEligible));
    EXPECT_GT(seen.size(), 20u);
}

TEST(Policy, NamesRoundTrip)
{
    for (PolicyKind kind : {PolicyKind::Lru, PolicyKind::Lfu,
                            PolicyKind::Random, PolicyKind::Fifo})
        EXPECT_EQ(policyFromName(policyName(kind)), kind);
}

TEST(Policy, UnknownNameFatal)
{
    EXPECT_THROW(policyFromName("clock"), FatalError);
}

} // namespace
} // namespace sp::cache
