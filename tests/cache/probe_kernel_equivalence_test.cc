/**
 * @file
 * Differential equivalence harness for the batched-probe kernels.
 *
 * SIMD probe code is the easiest place in this repo to ship a silent
 * wrong-answer bug, so every kernel compiled into this binary is
 * proved bit-identical to the scalar reference over adversarial key
 * sets before any bench number counts: long collision chains,
 * near-load-factor-limit tables, probe chains wrapping the table end,
 * duplicate keys inside one batch, all-miss / all-hit batches, block
 * remainders around the 8-lane SIMD width, and a randomized
 * load-factor x hit-rate sweep. The HitMap-level dispatch (probe=
 * modes, SP_SIMD) is covered at the bottom.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "cache/hit_map.h"
#include "cache/probe_kernel.h"
#include "common/cpu_features.h"
#include "common/logging.h"
#include "tensor/rng.h"

namespace sp::cache
{
namespace
{

/** Kernels the host can actually execute, scalar first. */
std::vector<const ProbeKernel *>
runnableKernels()
{
    std::vector<const ProbeKernel *> runnable;
    for (const ProbeKernel *kernel : compiledProbeKernels()) {
        if (kernel->supported())
            runnable.push_back(kernel);
    }
    return runnable;
}

/**
 * Assert every runnable kernel agrees with both the scalar kernel and
 * find() on `keys`. The double-check matters: comparing kernels only
 * against each other could pass if all of them shared a bug with the
 * scalar batched path; find() is an independent single-key walk.
 */
void
expectAllKernelsAgree(const HitMap &map,
                      const std::vector<uint64_t> &keys,
                      const std::string &label)
{
    const ProbeTable table = map.probeTable();
    std::vector<uint32_t> expected(keys.size());
    scalarProbeKernel().fn(table, keys.data(), expected.data(),
                           keys.size());
    for (size_t i = 0; i < keys.size(); ++i)
        ASSERT_EQ(expected[i], map.find(keys[i]))
            << label << ": scalar kernel disagrees with find() at " << i;

    for (const ProbeKernel *kernel : runnableKernels()) {
        std::vector<uint32_t> got(keys.size(), 0xdeadbeefu);
        kernel->fn(table, keys.data(), got.data(), keys.size());
        for (size_t i = 0; i < keys.size(); ++i)
            ASSERT_EQ(got[i], expected[i])
                << label << ": kernel '" << kernel->name
                << "' diverges from scalar at index " << i << " (key "
                << keys[i] << ", n=" << keys.size() << ")";
    }
}

/** First `count` keys (by value) whose home bucket is `bucket`. */
std::vector<uint64_t>
keysHomedAt(const ProbeTable &table, size_t bucket, size_t count)
{
    std::vector<uint64_t> keys;
    for (uint64_t k = 0; keys.size() < count; ++k) {
        panicIf(k == kProbeEmptyKey, "key space exhausted hunting for "
                                     "colliding keys");
        if (probeBucketFor(table, k) == bucket)
            keys.push_back(k);
    }
    return keys;
}

TEST(ProbeKernelEquivalence, ScalarKernelIsCompiledAndFirst)
{
    const auto kernels = compiledProbeKernels();
    ASSERT_FALSE(kernels.empty());
    EXPECT_STREQ(kernels[0]->name, "scalar");
    EXPECT_TRUE(kernels[0]->supported());
}

TEST(ProbeKernelEquivalence, LongCollisionChain)
{
    // A small fixed-capacity table (no grow below 89 entries for 128
    // buckets) and 60 keys that all hash to one bucket: a 60-probe
    // chain. Misses homed at the same bucket must walk the entire
    // chain before proving absence.
    HitMap map(64);
    ASSERT_EQ(map.capacity(), 128u);
    const auto colliders = keysHomedAt(map.probeTable(), 37, 80);
    for (size_t i = 0; i < 60; ++i)
        map.insert(colliders[i], static_cast<uint32_t>(i));

    std::vector<uint64_t> keys;
    for (const uint64_t k : colliders) // 60 hits + 20 full-chain misses
        keys.push_back(k);
    for (uint64_t k = 0; k < 40; ++k) // mixed-bucket traffic
        keys.push_back(1'000'000 + k * 97);
    expectAllKernelsAgree(map, keys, "collision chain");
}

TEST(ProbeKernelEquivalence, NearLoadFactorLimit)
{
    // Fill right up to the 0.7 growth threshold: the densest table
    // the map ever serves, with maximal average chain length.
    HitMap map(256);
    const size_t buckets = map.capacity();
    tensor::Rng rng(11);
    uint32_t next_key = 0;
    // Stop one short of the (size+1)*10 >= buckets*7 growth trigger.
    while ((map.size() + 2) * 10 < buckets * 7) {
        map.insert(next_key, next_key * 7);
        ++next_key;
    }
    ASSERT_EQ(map.capacity(), buckets) << "the fill must not grow it";
    ASSERT_GE(map.size() * 10, buckets * 7 - 20);

    std::vector<uint64_t> keys;
    for (uint32_t i = 0; i < 1000; ++i)
        keys.push_back(rng.uniformInt(2 * next_key)); // ~50% hits
    expectAllKernelsAgree(map, keys, "near load-factor limit");
}

TEST(ProbeKernelEquivalence, ChainsWrapTheTableEnd)
{
    // Pack the last buckets so probe chains wrap to bucket 0: the
    // classic modular-arithmetic edge for hand-written SIMD index
    // math.
    HitMap map(64);
    const ProbeTable table = map.probeTable();
    std::vector<uint64_t> inserted;
    for (size_t offset = 0; offset < 4; ++offset) {
        const size_t bucket = (table.mask - offset) & table.mask;
        for (const uint64_t k : keysHomedAt(table, bucket, 6)) {
            map.insert(k, static_cast<uint32_t>(inserted.size()));
            inserted.push_back(k);
        }
    }
    // 24 entries homed in the last 4 buckets: the tail chains must
    // wrap. Probe the inserted keys, wrapped-home misses, and keys
    // homed at bucket 0 (whose chain is occupied by wrapped entries).
    std::vector<uint64_t> keys = inserted;
    for (const uint64_t k : keysHomedAt(table, table.mask, 30))
        keys.push_back(k);
    for (const uint64_t k : keysHomedAt(table, 0, 10))
        keys.push_back(k);
    expectAllKernelsAgree(map, keys, "bucket wrap");
}

TEST(ProbeKernelEquivalence, DuplicateKeysInOneBatch)
{
    HitMap map;
    map.insert(5, 50);
    map.insert(9, 90);
    const std::vector<uint64_t> keys = {5, 5, 9, 5, 777, 777, 9, 9,
                                        5, 9, 777, 5, 5, 5, 9, 777, 9};
    expectAllKernelsAgree(map, keys, "duplicate keys");
}

TEST(ProbeKernelEquivalence, AllMissAndAllHitBatches)
{
    HitMap map;
    for (uint32_t k = 0; k < 500; ++k)
        map.insert(k * 2, k);

    std::vector<uint64_t> hits, misses;
    for (uint32_t k = 0; k < 500; ++k) {
        hits.push_back(k * 2);
        misses.push_back(k * 2 + 1);
    }
    expectAllKernelsAgree(map, hits, "all-hit");
    expectAllKernelsAgree(map, misses, "all-miss");
}

TEST(ProbeKernelEquivalence, BlockRemaindersAroundSimdWidth)
{
    // Sizes straddling the 8-lane block width and the scalar prefetch
    // distance: lead-in, steady state, drain, and partial tails.
    HitMap map;
    for (uint32_t k = 0; k < 300; ++k)
        map.insert(k * 3, k);
    tensor::Rng rng(23);
    for (const size_t n : {size_t{0}, size_t{1}, size_t{7}, size_t{8},
                           size_t{9}, size_t{12}, size_t{13}, size_t{15},
                           size_t{16}, size_t{17}, size_t{31}, size_t{64},
                           size_t{100}, size_t{1001}}) {
        std::vector<uint64_t> keys(n);
        for (auto &key : keys)
            key = rng.uniformInt(1200);
        expectAllKernelsAgree(map, keys,
                              "remainder n=" + std::to_string(n));
    }
}

TEST(ProbeKernelEquivalence, RandomizedLoadFactorByHitRateSweep)
{
    tensor::Rng rng(31337);
    for (const double load : {0.15, 0.45, 0.68}) {
        for (const double hit_rate : {0.0, 0.5, 0.95, 1.0}) {
            HitMap map(1024);
            const size_t buckets = map.capacity();
            std::vector<uint64_t> resident;
            while (static_cast<double>(map.size()) <
                   load * static_cast<double>(buckets)) {
                const uint64_t key = rng.uniformInt(1u << 30);
                if (map.find(key) == HitMap::kNotFound) {
                    map.insert(key,
                               static_cast<uint32_t>(map.size()));
                    resident.push_back(key);
                }
            }
            std::vector<uint64_t> keys(2048);
            for (auto &key : keys) {
                const bool hit = rng.uniform() < hit_rate;
                key = hit && !resident.empty()
                          ? resident[rng.uniformInt(resident.size())]
                          : (1u << 30) + rng.uniformInt(1u << 30);
            }
            expectAllKernelsAgree(
                map, keys,
                "load=" + std::to_string(load) +
                    " hit=" + std::to_string(hit_rate));
        }
    }
}

TEST(ProbeKernelEquivalence, KeysAboveThe32BitBoundary)
{
    // Full-width keys whose low 32 bits collide pairwise: any kernel
    // that hashes, compares, or carries only the low half aliases
    // them. The mixed batch also covers the old reserved value
    // 0xffffffff, legal since keys went 64-bit.
    HitMap map;
    constexpr uint64_t kStride = 0x100000000ull;
    std::vector<uint64_t> keys;
    for (uint32_t k = 0; k < 200; ++k) {
        const uint64_t key = 0xfffffff0ull + k * kStride;
        map.insert(key, k);
        keys.push_back(key);            // hit
        keys.push_back(key + kStride);  // miss aliasing the next hit
    }
    expectAllKernelsAgree(map, keys, "wide keys");
}

TEST(ProbeKernelEquivalence, MutateAndGrowBetweenBatches)
{
    // Kernel results must track the live table through grows and
    // backward-shift erases (probeTable() views are re-taken per
    // call).
    HitMap map(8);
    tensor::Rng rng(404);
    std::vector<uint64_t> present;
    for (int round = 0; round < 20; ++round) {
        for (int op = 0; op < 200; ++op) {
            const uint64_t key = rng.uniformInt(5000);
            if (map.find(key) == HitMap::kNotFound) {
                map.insert(key, static_cast<uint32_t>(op));
                present.push_back(key);
            } else if (rng.uniform() < 0.3) {
                map.erase(key);
            }
        }
        std::vector<uint64_t> keys(300);
        for (auto &key : keys)
            key = rng.uniformInt(6000);
        expectAllKernelsAgree(map, keys,
                              "mutate round " + std::to_string(round));
    }
    EXPECT_GT(map.capacity(), 16u);
}

// ---- Dispatch ------------------------------------------------------

TEST(ProbeKernelDispatch, ScalarModeAlwaysSelectsScalar)
{
    EXPECT_STREQ(selectProbeKernel(ProbeMode::Scalar).name, "scalar");
}

TEST(ProbeKernelDispatch, NativeSelectsWidestSupportedKernel)
{
    const ProbeKernel &native = selectProbeKernel(ProbeMode::Native);
    if (const ProbeKernel *avx2 = avx2ProbeKernel();
        avx2 != nullptr && avx2->supported()) {
        EXPECT_STREQ(native.name, "avx2");
    } else if (const ProbeKernel *neon = neonProbeKernel();
               neon != nullptr && neon->supported()) {
        EXPECT_STREQ(native.name, "neon");
    } else {
        EXPECT_STREQ(native.name, "scalar");
    }
}

TEST(ProbeKernelDispatch, HitMapModesProduceIdenticalResults)
{
    HitMap scalar_map(512), native_map(512);
    scalar_map.setProbeMode(ProbeMode::Scalar);
    native_map.setProbeMode(ProbeMode::Native);
    EXPECT_STREQ(scalar_map.probeKernelName(), "scalar");

    tensor::Rng rng(77);
    for (uint32_t k = 0; k < 600; ++k) {
        const uint64_t key = rng.uniformInt(1u << 20);
        if (scalar_map.find(key) == HitMap::kNotFound) {
            scalar_map.insert(key, k);
            native_map.insert(key, k);
        }
    }
    std::vector<uint64_t> keys(1000);
    for (auto &key : keys)
        key = rng.uniformInt(1u << 20);
    std::vector<uint32_t> scalar_out(keys.size()),
        native_out(keys.size());
    scalar_map.findMany(keys, scalar_out);
    native_map.findMany(keys, native_out);
    EXPECT_EQ(scalar_out, native_out);
}

TEST(ProbeKernelDispatch, ProbeModeNamesRoundTrip)
{
    for (const ProbeMode mode :
         {ProbeMode::Auto, ProbeMode::Scalar, ProbeMode::Native})
        EXPECT_EQ(probeModeFromName(probeModeName(mode)), mode);
    EXPECT_THROW(probeModeFromName("avx99"), FatalError);
}

} // namespace
} // namespace sp::cache
