/** @file SlotArray storage tests. */

#include <gtest/gtest.h>

#include "cache/slot_array.h"
#include "common/logging.h"

namespace sp::cache
{
namespace
{

TEST(SlotArray, DenseGeometry)
{
    SlotArray storage(16, 8);
    EXPECT_EQ(storage.numSlots(), 16u);
    EXPECT_EQ(storage.dim(), 8u);
    EXPECT_EQ(storage.rowBytes(), 32u);
    EXPECT_EQ(storage.storageBytes(), 512u);
    EXPECT_TRUE(storage.isDense());
}

TEST(SlotArray, SlotsZeroInitialised)
{
    SlotArray storage(4, 4);
    for (uint32_t s = 0; s < 4; ++s)
        for (size_t d = 0; d < 4; ++d)
            EXPECT_EQ(storage.slot(s)[d], 0.0f);
}

TEST(SlotArray, SlotsWritableAndDisjoint)
{
    SlotArray storage(4, 2);
    storage.slot(1)[0] = 1.5f;
    storage.slot(2)[1] = -2.5f;
    EXPECT_EQ(storage.slot(1)[0], 1.5f);
    EXPECT_EQ(storage.slot(2)[1], -2.5f);
    EXPECT_EQ(storage.slot(0)[0], 0.0f);
    EXPECT_EQ(storage.slot(3)[1], 0.0f);
}

TEST(SlotArray, PhantomReportsBytesWithoutStorage)
{
    SlotArray storage(1'000'000, 128, SlotArray::Backing::Phantom);
    EXPECT_FALSE(storage.isDense());
    EXPECT_EQ(storage.storageBytes(), 1'000'000ull * 512);
    EXPECT_THROW(storage.slot(0), PanicError);
}

TEST(SlotArray, OutOfRangeSlotPanics)
{
    SlotArray storage(4, 2);
    EXPECT_THROW(storage.slot(4), PanicError);
}

TEST(SlotArray, InvalidGeometryFatal)
{
    EXPECT_THROW(SlotArray(0, 2), FatalError);
    EXPECT_THROW(SlotArray(2, 0), FatalError);
}

TEST(SlotArray, PaperWorstCaseFootprint)
{
    // §VI-D: 8 tables x 20 gathers x 2048 batch x 512 B x 6 batches
    // = 960 MB of worst-case Storage provisioning. One table's share:
    const uint32_t slots = 6 * 20 * 2048;
    SlotArray storage(slots, 128, SlotArray::Backing::Phantom);
    EXPECT_EQ(storage.storageBytes() * 8, 960ull * 1024 * 1024);
}

} // namespace
} // namespace sp::cache
