/**
 * @file
 * Property tests of the pipelined ScratchPipe runtime: always-hit,
 * hazard freedom under audit, failure injection (shrunk windows must
 * trip the auditor; under-provisioned capacity must fatal), and
 * traffic conservation.
 */

#include <gtest/gtest.h>

#include "common/logging.h"
#include "sys/functional.h"

namespace sp::sys
{
namespace
{

ModelConfig
functionalModel(data::Locality locality, uint64_t seed)
{
    ModelConfig model = ModelConfig::functionalScale();
    model.trace.locality = locality;
    model.trace.seed = seed;
    return model;
}

TEST(ScratchPipeProperties, AuditPassesWithPaperWindows)
{
    // 30 iterations across localities: the auditor checks every cycle
    // and must stay silent.
    for (auto locality : data::kAllLocalities) {
        const ModelConfig model = functionalModel(locality, 101);
        data::TraceDataset dataset(model.trace, 30);
        FunctionalScratchPipeTrainer trainer(
            model, FunctionalScratchPipeTrainer::Options{});
        EXPECT_NO_THROW(trainer.train(dataset, 30))
            << data::localityName(locality);
        EXPECT_EQ(trainer.auditor().cyclesAudited(), 34u);
        EXPECT_GT(trainer.auditor().checkedAccesses(), 0u);
    }
}

TEST(ScratchPipeProperties, AlwaysHitAtTrainTime)
{
    // The trainer's accessor panics on a non-resident row, so a clean
    // run *is* the always-hit proof; additionally the plan-level hit
    // rate must rise with locality.
    const ModelConfig high = functionalModel(data::Locality::High, 7);
    const ModelConfig rand = functionalModel(data::Locality::Random, 7);
    data::TraceDataset dataset_h(high.trace, 25);
    data::TraceDataset dataset_r(rand.trace, 25);

    FunctionalScratchPipeTrainer t_h(
        high, FunctionalScratchPipeTrainer::Options{});
    FunctionalScratchPipeTrainer t_r(
        rand, FunctionalScratchPipeTrainer::Options{});
    t_h.train(dataset_h, 25);
    t_r.train(dataset_r, 25);
    EXPECT_GT(t_h.hitRate(), t_r.hitRate());
}

TEST(ScratchPipeProperties, ShrunkenWindowsTripTheAuditor)
{
    // Failure injection: past_window = 0 / future_window = 0 removes
    // the paper's hazard protection. The auditor must catch a RAW or
    // WAW conflict (or, if eviction pressure empties the needed rows,
    // the always-hit accessor panics) -- either way, a PanicError.
    ModelConfig model = functionalModel(data::Locality::Medium, 303);
    // Small row space + tight scratchpad maximise slot reuse across
    // in-flight batches: 64 draws per batch over 256 rows against a
    // 64-slot scratchpad keeps eviction pressure constant.
    model.trace.rows_per_table = 256;
    model.trace.lookups_per_table = 2;
    data::TraceDataset dataset(model.trace, 30);

    FunctionalScratchPipeTrainer::Options options;
    options.past_window = 0;
    options.future_window = 0;
    options.cache_fraction = 0.25; // 64 slots
    options.enforce_capacity_bound = false;
    FunctionalScratchPipeTrainer trainer(model, options);
    EXPECT_THROW(trainer.train(dataset, 30), PanicError);
}

TEST(ScratchPipeProperties, UnderProvisionedCapacityIsFatal)
{
    ModelConfig model = functionalModel(data::Locality::Random, 404);
    model.trace.rows_per_table = 100'000; // forces distinct IDs

    FunctionalScratchPipeTrainer::Options options;
    options.cache_fraction = 0.001; // 100 slots << window working set
    options.enforce_capacity_bound = false;
    FunctionalScratchPipeTrainer trainer(model, options);
    data::TraceDataset dataset(model.trace, 10);
    EXPECT_THROW(trainer.train(dataset, 10), FatalError);
}

TEST(ScratchPipeProperties, CapacityBoundMakesTheSameRunSafe)
{
    ModelConfig model = functionalModel(data::Locality::Random, 404);
    model.trace.rows_per_table = 100'000;

    FunctionalScratchPipeTrainer::Options options;
    options.cache_fraction = 0.001;
    options.enforce_capacity_bound = true; // grown to §VI-D bound
    FunctionalScratchPipeTrainer trainer(model, options);
    data::TraceDataset dataset(model.trace, 10);
    EXPECT_NO_THROW(trainer.train(dataset, 10));
}

TEST(ScratchPipeProperties, FillEvictionBookkeepingBalances)
{
    // Conservation: every fill either lands in a previously vacant
    // slot or displaces exactly one eviction; residency at the end
    // equals fills minus evictions.
    const ModelConfig model = functionalModel(data::Locality::Medium, 17);
    data::TraceDataset dataset(model.trace, 30);
    FunctionalScratchPipeTrainer trainer(
        model, FunctionalScratchPipeTrainer::Options{});
    trainer.train(dataset, 30);

    const auto stats = trainer.aggregateStats();
    EXPECT_EQ(stats.fills, stats.misses);
    EXPECT_GE(stats.fills, stats.evictions);
    EXPECT_GT(stats.hits + stats.misses, 0u);
    EXPECT_EQ(stats.hits + stats.misses,
              30ull * model.trace.idsPerBatch());
}

TEST(ScratchPipeProperties, StrawmanNeedsNoWindow)
{
    // Sequential execution is hazard-free by construction, even with
    // zero-width windows and heavy eviction pressure.
    ModelConfig model = functionalModel(data::Locality::Medium, 19);
    model.trace.rows_per_table = 96;
    data::TraceDataset dataset(model.trace, 20);

    FunctionalScratchPipeTrainer::Options options;
    options.pipelined = false;
    options.cache_fraction = 1.0;
    FunctionalScratchPipeTrainer trainer(model, options);
    EXPECT_NO_THROW(trainer.train(dataset, 20));
}

TEST(ScratchPipeProperties, HitRateImprovesWithLargerScratchpad)
{
    auto run = [](double fraction) {
        ModelConfig model =
            functionalModel(data::Locality::Medium, 23);
        model.trace.rows_per_table = 8192;
        data::TraceDataset dataset(model.trace, 25);
        FunctionalScratchPipeTrainer::Options options;
        options.cache_fraction = fraction;
        FunctionalScratchPipeTrainer trainer(model, options);
        trainer.train(dataset, 25);
        return trainer.hitRate();
    };
    EXPECT_GT(run(0.50), run(0.10));
}

} // namespace
} // namespace sp::sys
