/**
 * @file
 * Determinism guarantees of the parallel simulation engine.
 *
 * Every parallel site (trace generation, per-batch statistics,
 * per-table [Plan] fan-out, pooled runAll) must be bit-identical to
 * its serial counterpart: batch k is an independent seeded stream and
 * slot i is written by call i only. These tests pin that contract --
 * a sweep run with --jobs N must serialise to exactly the same JSON
 * as --jobs 1.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "data/dataset.h"
#include "data/trace_store.h"
#include "data/workload.h"
#include "emb/embedding_ops.h"
#include "sys/batch_stats.h"
#include "sys/experiment.h"
#include "sys/registry.h"

namespace sp::sys
{
namespace
{

const sim::HardwareConfig kHw = sim::HardwareConfig::paperTestbed();

ModelConfig
testModel()
{
    ModelConfig model = ModelConfig::functionalScale();
    model.trace.locality = data::Locality::Medium;
    model.trace.seed = 1234;
    return model;
}

TEST(ParallelDeterminism, PooledTraceGenerationIsBitIdentical)
{
    // The dataset constructor fans batch generation out over the
    // global pool; every batch must equal the one a direct (serial)
    // TraceGenerator call produces.
    const ModelConfig model = testModel();
    const data::TraceDataset dataset(model.trace, 12);
    const data::TraceGenerator generator(model.trace);
    for (uint64_t b = 0; b < dataset.numBatches(); ++b) {
        const data::MiniBatch expected = generator.makeBatch(b);
        const data::MiniBatch &got = dataset.batch(b);
        ASSERT_EQ(got.index, expected.index);
        ASSERT_EQ(got.table_ids, expected.table_ids) << "batch " << b;
    }
}

TEST(ParallelDeterminism, PooledBatchStatsMatchSerialCounts)
{
    const ModelConfig model = testModel();
    const data::TraceDataset dataset(model.trace, 10);
    const BatchStats stats(dataset, 10);
    std::vector<uint64_t> scratch;
    for (uint64_t b = 0; b < 10; ++b)
        for (size_t t = 0; t < model.trace.num_tables; ++t)
            ASSERT_EQ(stats.unique(b, t),
                      emb::countUnique(dataset.batch(b).table_ids[t],
                                       scratch))
                << "batch " << b << " table " << t;
}

std::vector<SystemSpec>
sweepSpecs(const std::string &engine_suffix = "")
{
    // The engine knobs (overlap=, shard=) only exist on the
    // scratchpad systems; the other design points ride along in every
    // sweep so the whole spec list is compared at once.
    return {SystemSpec::parse("hybrid"),
            SystemSpec::parse("static:cache=0.1"),
            SystemSpec::parse("strawman" +
                              (engine_suffix.empty()
                                   ? ""
                                   : ":" + engine_suffix)),
            SystemSpec::parse("scratchpipe" +
                              (engine_suffix.empty()
                                   ? ""
                                   : ":" + engine_suffix)),
            SystemSpec::parse("scratchpipe:policy=lfu,cache=0.2" +
                              (engine_suffix.empty()
                                   ? ""
                                   : "," + engine_suffix)),
            SystemSpec::parse("multigpu")};
}

std::string
sweepJson(uint32_t jobs, const std::string &engine_suffix = "")
{
    ExperimentOptions options;
    options.iterations = 4;
    options.warmup = 2;
    options.jobs = jobs;
    const ExperimentRunner runner(testModel(), kHw, options);
    return toJson(runner.runAll(sweepSpecs(engine_suffix)));
}

TEST(ParallelDeterminism, JobsSweepJsonBitIdenticalToSequential)
{
    // The acceptance bar of the parallel engine: RunResult output is
    // byte-for-byte identical between --jobs 1 and --jobs N.
    const std::string serial = sweepJson(1);
    EXPECT_EQ(serial, sweepJson(2));
    EXPECT_EQ(serial, sweepJson(8));
}

TEST(ParallelDeterminism, EngineModeMatrixBitIdentical)
{
    // The pipelined/sharded planning engine must not change a single
    // byte of output: every combination of {serial, pipelined,
    // sharded, pipelined+sharded} x jobs in {1, 4} serialises to the
    // fully-serial sweep's JSON. Widen the pool so the matrix crosses
    // real threads even on a single-core host.
    if (common::ThreadPool::global().size() < 4)
        common::ThreadPool::setGlobalThreads(4);
    const std::string baseline = sweepJson(1, "overlap=0,shard=1");
    const char *modes[] = {"overlap=0,shard=1", "overlap=1,shard=1",
                           "overlap=0,shard=4", "overlap=1,shard=4"};
    for (const char *mode : modes) {
        for (const uint32_t jobs : {1u, 4u}) {
            EXPECT_EQ(baseline, sweepJson(jobs, mode))
                << "mode=" << mode << " jobs=" << jobs;
        }
    }
}

TEST(ParallelDeterminism, ProbeKernelMatrixBitIdentical)
{
    // The probe= axis joins the engine-mode matrix: the scalar
    // reference and the runtime-dispatched native kernel (AVX2/NEON
    // where available, scalar parity otherwise) must serialise to the
    // same bytes at every jobs x shard combination -- including
    // shard=0 (one shard per pool thread), where SIMD probes run
    // concurrently on subranges of one table.
    if (common::ThreadPool::global().size() < 4)
        common::ThreadPool::setGlobalThreads(4);
    const std::string baseline =
        sweepJson(1, "overlap=0,shard=1,probe=scalar");
    for (const char *probe : {"probe=scalar", "probe=native"}) {
        for (const char *engine :
             {"overlap=0,shard=1", "overlap=1,shard=0"}) {
            for (const uint32_t jobs : {1u, 4u}) {
                EXPECT_EQ(baseline,
                          sweepJson(jobs, std::string(engine) + "," +
                                              probe))
                    << "engine=" << engine << " " << probe
                    << " jobs=" << jobs;
            }
        }
    }
}

std::string
shapedSweepJson(uint32_t jobs, const std::string &workload_text,
                const std::string &engine_suffix = "")
{
    ExperimentOptions options;
    options.iterations = 4;
    options.warmup = 2;
    options.jobs = jobs;
    ModelConfig model = testModel();
    model.trace.workload =
        data::WorkloadSpec::parse(workload_text).config;
    const ExperimentRunner runner(model, kHw, options);
    return toJson(runner.runAll(sweepSpecs(engine_suffix)));
}

TEST(ParallelDeterminism, DriftingAlphaSweepBitIdenticalAcrossJobs)
{
    // The workload shaper joins the determinism matrix: a drifting
    // Zipf exponent re-seeds nothing -- batch k's stream is still a
    // pure function of (seed, table, k) -- so jobs and shard width
    // must not move a byte.
    if (common::ThreadPool::global().size() < 4)
        common::ThreadPool::setGlobalThreads(4);
    const std::string spec = "drift_amp=0.4,drift_period=3,phase=2";
    const std::string serial = shapedSweepJson(1, spec);
    EXPECT_EQ(serial, shapedSweepJson(4, spec));
    EXPECT_EQ(serial, shapedSweepJson(4, spec, "overlap=1,shard=4"));
    EXPECT_EQ(serial, shapedSweepJson(4, spec, "probe=native"));
    // And the shaping is live, not a no-op that trivially matches.
    EXPECT_NE(serial, sweepJson(1));
}

TEST(ParallelDeterminism, BurstOverlaySweepBitIdenticalColdAndWarmCache)
{
    // Flash-crowd overlay x trace cache: the cold run generates and
    // publishes, the warm run mmaps the published file; both must
    // serialise to the bytes of a cache-less serial sweep, at jobs 1
    // and 4. This is the end-to-end proof that the new workload
    // fields reached the fingerprint (a stale stationary entry would
    // alias this config and change every number).
    if (common::ThreadPool::global().size() < 4)
        common::ThreadPool::setGlobalThreads(4);
    const std::string spec =
        "burst_frac=0.5,burst_period=4,burst_len=2,burst_ranks=64,"
        "churn_k=32,churn_period=2";
    const std::string baseline = shapedSweepJson(1, spec);

    namespace fs = std::filesystem;
    const fs::path dir = fs::path(::testing::TempDir()) /
                         "sp_parallel_determinism_cache";
    fs::remove_all(dir);
    ::setenv("SP_TRACE_CACHE", dir.string().c_str(), 1);
    data::TraceStore::setCacheEnabled(true);
    const std::string cold1 = shapedSweepJson(1, spec);
    const std::string warm1 = shapedSweepJson(1, spec);
    const std::string warm4 = shapedSweepJson(4, spec);
    data::TraceStore::setCacheEnabled(false);
    ::unsetenv("SP_TRACE_CACHE");
    fs::remove_all(dir);

    EXPECT_EQ(baseline, cold1);
    EXPECT_EQ(baseline, warm1);
    EXPECT_EQ(baseline, warm4);
}

TEST(ParallelDeterminism, ServingSweepJsonBitIdenticalAcrossJobs)
{
    // The serving system joins the determinism matrix: its SLO
    // percentiles (p50/p99/p999), queue depths and every other
    // serving field must be byte-for-byte identical between --jobs 1
    // and --jobs 4 for a fixed seed -- the event-driven server, the
    // arrival stream and the dynamic GPU tier are pure functions of
    // (spec, model, seed), never of scheduling.
    if (common::ThreadPool::global().size() < 4)
        common::ThreadPool::setGlobalThreads(4);
    const auto servingSweepJson = [](uint32_t jobs) {
        ExperimentOptions options;
        options.iterations = 4;
        options.warmup = 2;
        options.jobs = jobs;
        const ExperimentRunner runner(testModel(), kHw, options);
        return toJson(runner.runAll(
            {SystemSpec::parse("serve:rate=400000"),
             SystemSpec::parse(
                 "serve:rate=400000,refresh=lru,batch_max=16,"
                 "budget_us=250"),
             SystemSpec::parse(
                 "serve:arrival=bursty,rate=250000,burst_x=4,"
                 "burst_on_us=250,burst_off_us=2000,refresh=lfu"),
             SystemSpec::parse("static:cache=0.1")}));
    };
    const std::string serial = servingSweepJson(1);
    EXPECT_NE(serial.find("\"p999\""), std::string::npos);
    EXPECT_EQ(serial, servingSweepJson(4));
}

TEST(ParallelDeterminism, AutoShardWidthBitIdentical)
{
    // shard=0 resolves to the pool width on whatever host runs the
    // test; output must still match the serial sweep exactly.
    EXPECT_EQ(sweepJson(1, "overlap=0,shard=1"),
              sweepJson(4, "overlap=1,shard=0"));
}

TEST(ParallelDeterminism, RunAllBadSpecFailsFastBeforeTheFanOut)
{
    ExperimentOptions options;
    options.iterations = 2;
    options.jobs = 4;
    const ExperimentRunner runner(testModel(), kHw, options);
    // hybrid has no cache; validation throws before any pool work.
    std::vector<SystemSpec> specs = sweepSpecs();
    specs[0].cache_fraction = 0.5;
    EXPECT_THROW(runner.runAll(specs), FatalError);
}

TEST(ParallelDeterminism, RunAllErrorsSurfaceFromTheFanOut)
{
    ExperimentOptions options;
    options.iterations = 2;
    options.jobs = 4;
    const ExperimentRunner runner(testModel(), kHw, options);
    // This spec passes validation but fatals mid-simulate, inside the
    // fan-out: one slot with the capacity bound disabled means the
    // first batch has no hold-mask-eligible victim (paper §VI-D).
    // Sweep-layer failure isolation: the bad spec is recorded in its
    // result slot, the good spec still completes, order preserved.
    const std::vector<SystemSpec> specs = {
        SystemSpec::parse("hybrid"),
        SystemSpec::parse("scratchpipe:cache=0.0000001,bound=0")};
    const std::vector<RunResult> results = runner.runAll(specs);
    ASSERT_EQ(results.size(), 2u);
    EXPECT_FALSE(results[0].failed());
    EXPECT_GT(results[0].iterations, 0u);
    EXPECT_TRUE(results[1].failed());
    EXPECT_FALSE(results[1].error.empty());
    EXPECT_EQ(sweepExitCode(results), 3);

    // fail_fast restores abort-on-first-error for debugging runs.
    ExperimentOptions strict = options;
    strict.fail_fast = true;
    const ExperimentRunner strict_runner(testModel(), kHw, strict);
    EXPECT_THROW(strict_runner.runAll(specs), FatalError);
}

TEST(ParallelDeterminism, EffectiveJobsResolvesZeroToDefault)
{
    ExperimentOptions options;
    options.jobs = 0;
    const ExperimentRunner runner(testModel(), kHw, options);
    EXPECT_EQ(runner.effectiveJobs(),
              common::ThreadPool::defaultThreads());
    ExperimentOptions pinned;
    pinned.jobs = 3;
    const ExperimentRunner runner3(testModel(), kHw, pinned);
    EXPECT_EQ(runner3.effectiveJobs(), 3u);
}

} // namespace
} // namespace sp::sys
