/**
 * @file
 * Sparse-AdaGrad extension tests.
 *
 * DLRM's production default is sparse AdaGrad for embeddings; under
 * ScratchPipe the per-row accumulator must migrate through the
 * scratchpad with its row (fills, evictions, write-backs, final
 * drain). These tests pin the algorithm (kernel-level), then assert
 * the pipelined trainer stays bit-identical to the sequential
 * reference *including the optimizer state*.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/logging.h"
#include "emb/embedding_ops.h"
#include "sys/functional.h"

namespace sp::sys
{
namespace
{

TEST(AdaGradKernel, MatchesHandComputedUpdate)
{
    emb::EmbeddingTable table(4, 2), state(4, 2);
    table.row(1)[0] = 1.0f;
    table.row(1)[1] = 2.0f;

    emb::CoalescedGradients coalesced;
    coalesced.ids = {1};
    coalesced.grads.resize(1, 2);
    coalesced.grads(0, 0) = 0.5f;
    coalesced.grads(0, 1) = -1.0f;

    emb::adagradScatter(table, state, coalesced, 0.1f, 1e-8f);
    // state = g^2; row -= lr*g/(sqrt(state)+eps) = lr*sign(g)
    EXPECT_FLOAT_EQ(state.row(1)[0], 0.25f);
    EXPECT_FLOAT_EQ(state.row(1)[1], 1.0f);
    EXPECT_NEAR(table.row(1)[0], 1.0f - 0.1f, 1e-6f);
    EXPECT_NEAR(table.row(1)[1], 2.0f + 0.1f, 1e-6f);
}

TEST(AdaGradKernel, AccumulatorShrinksLaterSteps)
{
    emb::EmbeddingTable table(2, 1), state(2, 1);
    emb::CoalescedGradients coalesced;
    coalesced.ids = {0};
    coalesced.grads.resize(1, 1);
    coalesced.grads(0, 0) = 1.0f;

    emb::adagradScatter(table, state, coalesced, 1.0f, 0.0f);
    const float first_step = -table.row(0)[0];
    const float before = table.row(0)[0];
    emb::adagradScatter(table, state, coalesced, 1.0f, 0.0f);
    const float second_step = before - table.row(0)[0];
    EXPECT_GT(first_step, second_step); // 1 vs 1/sqrt(2)
    EXPECT_NEAR(second_step, 1.0f / std::sqrt(2.0f), 1e-6f);
}

TEST(AdaGradKernel, DimensionMismatchPanics)
{
    emb::EmbeddingTable table(2, 2), state(2, 3);
    emb::CoalescedGradients coalesced;
    coalesced.ids = {0};
    coalesced.grads.resize(1, 2);
    EXPECT_THROW(emb::adagradScatter(table, state, coalesced, 0.1f, 0.0f),
                 PanicError);
}

ModelConfig
adagradModel(uint64_t seed)
{
    ModelConfig model = ModelConfig::functionalScale();
    model.trace.locality = data::Locality::Medium;
    model.trace.seed = seed;
    model.optimizer = Optimizer::AdaGrad;
    return model;
}

TEST(AdaGradPipeline, ScratchPipeMatchesHybridBitForBit)
{
    const ModelConfig model = adagradModel(111);
    data::TraceDataset dataset(model.trace, 14);

    FunctionalHybridTrainer hybrid(model);
    FunctionalScratchPipeTrainer scratchpipe(
        model, FunctionalScratchPipeTrainer::Options{});
    const auto r_hybrid = hybrid.train(dataset, 14);
    const auto r_sp = scratchpipe.train(dataset, 14);

    for (size_t t = 0; t < model.trace.num_tables; ++t) {
        EXPECT_TRUE(emb::EmbeddingTable::identical(
            hybrid.tables()[t], scratchpipe.tables()[t]))
            << "values diverged, table " << t;
        EXPECT_TRUE(emb::EmbeddingTable::identical(
            hybrid.stateTables()[t], scratchpipe.stateTables()[t]))
            << "optimizer state diverged, table " << t;
    }
    EXPECT_TRUE(
        nn::DlrmModel::identical(hybrid.model(), scratchpipe.model()));
    EXPECT_EQ(r_hybrid.losses, r_sp.losses);
}

TEST(AdaGradPipeline, StrawmanMatchesToo)
{
    const ModelConfig model = adagradModel(113);
    data::TraceDataset dataset(model.trace, 12);

    FunctionalHybridTrainer hybrid(model);
    FunctionalScratchPipeTrainer::Options options;
    options.pipelined = false;
    FunctionalScratchPipeTrainer strawman(model, options);
    hybrid.train(dataset, 12);
    strawman.train(dataset, 12);

    for (size_t t = 0; t < model.trace.num_tables; ++t) {
        EXPECT_TRUE(emb::EmbeddingTable::identical(
            hybrid.tables()[t], strawman.tables()[t]));
        EXPECT_TRUE(emb::EmbeddingTable::identical(
            hybrid.stateTables()[t], strawman.stateTables()[t]));
    }
}

TEST(AdaGradPipeline, DiffersFromSgdTraining)
{
    // Negative control: AdaGrad must actually change the trajectory.
    ModelConfig sgd_model = adagradModel(115);
    sgd_model.optimizer = Optimizer::Sgd;
    const ModelConfig ada_model = adagradModel(115);
    data::TraceDataset dataset(sgd_model.trace, 10);

    FunctionalHybridTrainer sgd(sgd_model), ada(ada_model);
    sgd.train(dataset, 10);
    ada.train(dataset, 10);
    EXPECT_FALSE(emb::EmbeddingTable::identical(sgd.tables()[0],
                                                ada.tables()[0]));
}

TEST(AdaGradPipeline, LearnsOnSyntheticCtr)
{
    ModelConfig model = adagradModel(117);
    model.trace.batch_size = 64;
    model.trace.rows_per_table = 256;
    model.learning_rate = 0.1f; // AdaGrad tolerates a high base rate
    data::TraceDataset dataset(model.trace, 150);

    FunctionalHybridTrainer trainer(model);
    const auto result = trainer.train(dataset, 150);
    EXPECT_LT(result.finalLoss(), result.initialLoss() - 0.02);
}

TEST(AdaGradPipeline, StateBytesReported)
{
    const ModelConfig ada = adagradModel(1);
    EXPECT_EQ(ada.optimizerStateBytesPerRow(),
              ada.embedding_dim * sizeof(float));
    ModelConfig sgd = ada;
    sgd.optimizer = Optimizer::Sgd;
    EXPECT_EQ(sgd.optimizerStateBytesPerRow(), 0u);
}

TEST(AdaGradPipeline, StaticCacheTrainerRejectsAdaGrad)
{
    const ModelConfig model = adagradModel(119);
    EXPECT_THROW(FunctionalStaticCacheTrainer(model, 0.1), FatalError);
}

TEST(AdaGradPipeline, OptimizerNames)
{
    EXPECT_STREQ(optimizerName(Optimizer::Sgd), "SGD");
    EXPECT_STREQ(optimizerName(Optimizer::AdaGrad), "AdaGrad");
}

} // namespace
} // namespace sp::sys
