/**
 * @file
 * The central correctness property of the paper: ScratchPipe "does not
 * change the algorithmic properties of RecSys training and provides
 * identical training accuracy vs. the original training algorithm
 * executed over baseline hybrid CPU-GPU" (Section II-D).
 *
 * We assert something stronger than the paper could measure: after N
 * iterations on the same trace, the sequential hybrid reference, the
 * static-cache system, the sequential straw-man, and the six-stage
 * pipelined ScratchPipe produce *bit-identical* embedding tables, MLP
 * weights and per-iteration losses.
 */

#include <gtest/gtest.h>

#include "common/logging.h"
#include "sys/functional.h"

namespace sp::sys
{
namespace
{

ModelConfig
functionalModel(data::Locality locality = data::Locality::Medium,
                uint64_t seed = 77)
{
    ModelConfig model = ModelConfig::functionalScale();
    model.trace.locality = locality;
    model.trace.seed = seed;
    return model;
}

constexpr uint64_t kIterations = 12;

void
expectTablesIdentical(const std::vector<emb::EmbeddingTable> &a,
                      const std::vector<emb::EmbeddingTable> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (size_t t = 0; t < a.size(); ++t)
        EXPECT_TRUE(emb::EmbeddingTable::identical(a[t], b[t]))
            << "table " << t << " diverged";
}

TEST(FunctionalEquivalence, StaticCacheMatchesHybrid)
{
    const ModelConfig model = functionalModel();
    data::TraceDataset dataset(model.trace, kIterations);

    FunctionalHybridTrainer hybrid(model);
    FunctionalStaticCacheTrainer cached(model, 0.10);
    const auto r_hybrid = hybrid.train(dataset, kIterations);
    const auto r_cached = cached.train(dataset, kIterations);

    expectTablesIdentical(hybrid.tables(), cached.tables());
    EXPECT_TRUE(nn::DlrmModel::identical(hybrid.model(), cached.model()));
    EXPECT_EQ(r_hybrid.losses, r_cached.losses);
    EXPECT_EQ(r_hybrid.accuracies, r_cached.accuracies);
}

TEST(FunctionalEquivalence, StrawmanMatchesHybrid)
{
    const ModelConfig model = functionalModel();
    data::TraceDataset dataset(model.trace, kIterations);

    FunctionalHybridTrainer hybrid(model);
    FunctionalScratchPipeTrainer::Options options;
    options.pipelined = false;
    FunctionalScratchPipeTrainer strawman(model, options);
    const auto r_hybrid = hybrid.train(dataset, kIterations);
    const auto r_straw = strawman.train(dataset, kIterations);

    expectTablesIdentical(hybrid.tables(), strawman.tables());
    EXPECT_TRUE(
        nn::DlrmModel::identical(hybrid.model(), strawman.model()));
    EXPECT_EQ(r_hybrid.losses, r_straw.losses);
}

TEST(FunctionalEquivalence, PipelinedScratchPipeMatchesHybrid)
{
    const ModelConfig model = functionalModel();
    data::TraceDataset dataset(model.trace, kIterations);

    FunctionalHybridTrainer hybrid(model);
    FunctionalScratchPipeTrainer scratchpipe(
        model, FunctionalScratchPipeTrainer::Options{});
    const auto r_hybrid = hybrid.train(dataset, kIterations);
    const auto r_sp = scratchpipe.train(dataset, kIterations);

    expectTablesIdentical(hybrid.tables(), scratchpipe.tables());
    EXPECT_TRUE(
        nn::DlrmModel::identical(hybrid.model(), scratchpipe.model()));
    EXPECT_EQ(r_hybrid.losses, r_sp.losses);
    EXPECT_EQ(r_hybrid.accuracies, r_sp.accuracies);
    // The pipeline really overlapped work: every cycle was audited.
    EXPECT_GT(scratchpipe.auditor().cyclesAudited(), kIterations);
}

class EquivalenceAcrossLocalities
    : public ::testing::TestWithParam<data::Locality>
{
};

TEST_P(EquivalenceAcrossLocalities, AllFourSystemsAgree)
{
    const ModelConfig model = functionalModel(GetParam(), 91);
    data::TraceDataset dataset(model.trace, kIterations);

    FunctionalHybridTrainer hybrid(model);
    FunctionalStaticCacheTrainer cached(model, 0.05);
    FunctionalScratchPipeTrainer::Options straw_options;
    straw_options.pipelined = false;
    FunctionalScratchPipeTrainer strawman(model, straw_options);
    FunctionalScratchPipeTrainer scratchpipe(
        model, FunctionalScratchPipeTrainer::Options{});

    const auto r = hybrid.train(dataset, kIterations);
    cached.train(dataset, kIterations);
    strawman.train(dataset, kIterations);
    scratchpipe.train(dataset, kIterations);

    expectTablesIdentical(hybrid.tables(), cached.tables());
    expectTablesIdentical(hybrid.tables(), strawman.tables());
    expectTablesIdentical(hybrid.tables(), scratchpipe.tables());
    EXPECT_GT(r.losses.size(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Localities, EquivalenceAcrossLocalities,
                         ::testing::Values(data::Locality::Random,
                                           data::Locality::Low,
                                           data::Locality::Medium,
                                           data::Locality::High),
                         [](const auto &info) {
                             return data::localityName(info.param);
                         });

class EquivalenceAcrossPolicies
    : public ::testing::TestWithParam<cache::PolicyKind>
{
};

TEST_P(EquivalenceAcrossPolicies, PolicyChoiceNeverChangesTheMath)
{
    // Replacement policy moves rows around; it must never change what
    // is computed (paper §VI-E robustness claim, made exact).
    const ModelConfig model = functionalModel(data::Locality::Medium, 55);
    data::TraceDataset dataset(model.trace, kIterations);

    FunctionalHybridTrainer hybrid(model);
    FunctionalScratchPipeTrainer::Options options;
    options.policy = GetParam();
    FunctionalScratchPipeTrainer scratchpipe(model, options);

    const auto r_hybrid = hybrid.train(dataset, kIterations);
    const auto r_sp = scratchpipe.train(dataset, kIterations);

    expectTablesIdentical(hybrid.tables(), scratchpipe.tables());
    EXPECT_EQ(r_hybrid.losses, r_sp.losses);
}

INSTANTIATE_TEST_SUITE_P(Policies, EquivalenceAcrossPolicies,
                         ::testing::Values(cache::PolicyKind::Lru,
                                           cache::PolicyKind::Lfu,
                                           cache::PolicyKind::Random,
                                           cache::PolicyKind::Fifo),
                         [](const auto &info) {
                             return cache::policyName(info.param);
                         });

TEST(FunctionalEquivalence, TrainingActuallyLearns)
{
    // Sanity that the equivalence isn't vacuous: loss trends down on
    // the synthetic CTR task. A small row space keeps every row's
    // embedding frequently updated so the hidden per-row signal is
    // learnable within the test budget.
    ModelConfig model = functionalModel(data::Locality::Medium, 13);
    model.trace.batch_size = 64;
    model.trace.rows_per_table = 256;
    model.learning_rate = 0.3f;
    data::TraceDataset dataset(model.trace, 200);

    FunctionalHybridTrainer hybrid(model);
    const auto result = hybrid.train(dataset, 200);
    EXPECT_LT(result.finalLoss(), result.initialLoss() - 0.02);
    EXPECT_GT(result.finalAccuracy(), 0.55);
}

TEST(FunctionalEquivalence, DifferentTracesDivergentModels)
{
    // Negative control: a different trace must produce a different
    // model, or the identity checks above prove nothing.
    const ModelConfig a = functionalModel(data::Locality::Medium, 1);
    const ModelConfig b = functionalModel(data::Locality::Medium, 2);
    data::TraceDataset da(a.trace, kIterations), db(b.trace, kIterations);

    FunctionalHybridTrainer ta(a), tb(b);
    ta.train(da, kIterations);
    tb.train(db, kIterations);
    EXPECT_FALSE(
        emb::EmbeddingTable::identical(ta.tables()[0], tb.tables()[0]));
}

} // namespace
} // namespace sp::sys
