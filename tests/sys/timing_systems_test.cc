/**
 * @file
 * Timing-model shape tests for all five system models.
 *
 * These run a scaled-down geometry (100K-row tables) so the whole
 * suite stays fast; the assertions are the paper's qualitative claims
 * (who is faster than whom, how hit rates and bottlenecks move with
 * locality and cache size), not absolute numbers.
 */

#include <gtest/gtest.h>

#include "common/logging.h"
#include "core/controller.h"
#include "sys/hybrid.h"
#include "sys/multigpu.h"
#include "sys/registry.h"
#include "sys/scratchpipe_sys.h"
#include "sys/static_sys.h"

namespace sp::sys
{
namespace
{

ModelConfig
testModel(data::Locality locality)
{
    ModelConfig model;
    model.trace.num_tables = 4;
    model.trace.rows_per_table = 100'000;
    model.trace.lookups_per_table = 8;
    model.trace.batch_size = 256;
    model.trace.locality = locality;
    model.trace.seed = 33;
    model.embedding_dim = 64;
    model.bottom_hidden = {128, 64};
    model.top_hidden = {256, 128};
    return model;
}

struct Workload
{
    explicit Workload(data::Locality locality, uint64_t iterations = 12)
        : model(testModel(locality)), dataset(model.trace, iterations + 2),
          stats(dataset, iterations), iters(iterations)
    {
    }
    ModelConfig model;
    data::TraceDataset dataset;
    BatchStats stats;
    uint64_t iters;
};

const sim::HardwareConfig kHw = sim::HardwareConfig::paperTestbed();

TEST(TimingHybrid, BreakdownHasPaperStages)
{
    Workload w(data::Locality::Medium);
    HybridCpuGpu system(w.model, kHw);
    const RunResult result = system.simulate(w.dataset, w.stats, w.iters);
    EXPECT_GT(result.breakdown.get("CPU embedding forward"), 0.0);
    EXPECT_GT(result.breakdown.get("CPU embedding backward"), 0.0);
    EXPECT_GT(result.breakdown.get("GPU"), 0.0);
    EXPECT_NEAR(result.breakdown.total(), result.seconds_per_iteration,
                1e-12);
}

TEST(TimingHybrid, CpuEmbeddingDominatesAtPaperScale)
{
    // Fig. 5: the CPU-side embedding stages dominate hybrid training.
    // This holds at the paper's geometry, where bandwidth terms dwarf
    // the fixed per-iteration overheads.
    ModelConfig model = ModelConfig::paperDefault();
    model.trace.locality = data::Locality::Random;
    model.trace.seed = 44;
    data::TraceDataset dataset(model.trace, 4);
    BatchStats stats(dataset, 4);
    HybridCpuGpu system(model, kHw);
    const RunResult result = system.simulate(dataset, stats, 4);
    const double cpu = result.breakdown.get("CPU embedding forward") +
                       result.breakdown.get("CPU embedding backward");
    EXPECT_GT(cpu, 2.0 * result.breakdown.get("GPU"));
}

TEST(TimingHybrid, RoughlyLocalityInsensitive)
{
    // The no-cache baseline moves the same bytes regardless of skew.
    Workload random(data::Locality::Random);
    Workload high(data::Locality::High);
    HybridCpuGpu sys_r(random.model, kHw), sys_h(high.model, kHw);
    const double t_r =
        sys_r.simulate(random.dataset, random.stats, random.iters)
            .seconds_per_iteration;
    const double t_h =
        sys_h.simulate(high.dataset, high.stats, high.iters)
            .seconds_per_iteration;
    EXPECT_NEAR(t_r / t_h, 1.0, 0.15);
}

TEST(TimingStatic, HitRateGrowsWithCacheSize)
{
    Workload w(data::Locality::Medium);
    double previous = -1.0;
    for (double fraction : {0.02, 0.04, 0.08, 0.16}) {
        StaticCacheSystem system(w.model, kHw, fraction);
        const RunResult result =
            system.simulate(w.dataset, w.stats, w.iters);
        EXPECT_GT(result.hit_rate, previous);
        previous = result.hit_rate;
    }
}

TEST(TimingStatic, HitRateGrowsWithLocality)
{
    double previous = -1.0;
    for (auto locality :
         {data::Locality::Random, data::Locality::Low,
          data::Locality::Medium, data::Locality::High}) {
        Workload w(locality);
        StaticCacheSystem system(w.model, kHw, 0.02);
        const RunResult result =
            system.simulate(w.dataset, w.stats, w.iters);
        EXPECT_GT(result.hit_rate, previous)
            << data::localityName(locality);
        previous = result.hit_rate;
    }
}

TEST(TimingStatic, FasterThanHybridWhenLocalityHigh)
{
    Workload w(data::Locality::High);
    HybridCpuGpu hybrid(w.model, kHw);
    StaticCacheSystem cached(w.model, kHw, 0.10);
    const double t_hybrid =
        hybrid.simulate(w.dataset, w.stats, w.iters).seconds_per_iteration;
    const double t_cached =
        cached.simulate(w.dataset, w.stats, w.iters).seconds_per_iteration;
    EXPECT_LT(t_cached, t_hybrid);
}

TEST(TimingStatic, NoBetterThanHybridOnRandomTrace)
{
    // A 2% static cache is useless against uniform traffic (Fig. 13's
    // Random cluster): at most marginal gains.
    Workload w(data::Locality::Random);
    HybridCpuGpu hybrid(w.model, kHw);
    StaticCacheSystem cached(w.model, kHw, 0.02);
    const double t_hybrid =
        hybrid.simulate(w.dataset, w.stats, w.iters).seconds_per_iteration;
    const double t_cached =
        cached.simulate(w.dataset, w.stats, w.iters).seconds_per_iteration;
    EXPECT_GT(t_cached, 0.85 * t_hybrid);
}

TEST(TimingStatic, InvalidFractionFatal)
{
    Workload w(data::Locality::Medium);
    EXPECT_THROW(StaticCacheSystem(w.model, kHw, 0.0), FatalError);
    EXPECT_THROW(StaticCacheSystem(w.model, kHw, 1.5), FatalError);
}

ScratchPipeOptions
spOptions(double fraction, bool pipelined)
{
    ScratchPipeOptions options;
    options.cache_fraction = fraction;
    options.pipelined = pipelined;
    return options;
}

TEST(TimingScratchPipe, SixStageBreakdown)
{
    Workload w(data::Locality::Medium);
    ScratchPipeSystem system(w.model, kHw, spOptions(0.10, true));
    const RunResult result = system.simulate(w.dataset, w.stats, w.iters);
    EXPECT_EQ(result.breakdown.stages().size(), 6u);
    for (const char *stage :
         {"Load", "Plan", "Collect", "Exchange", "Insert", "Train"})
        EXPECT_GT(result.breakdown.get(stage), 0.0) << stage;
    EXPECT_FALSE(result.bottleneck.empty());
}

TEST(TimingScratchPipe, PipeliningNeverSlower)
{
    for (auto locality : {data::Locality::Random, data::Locality::High}) {
        Workload w(locality);
        ScratchPipeSystem pipelined(w.model, kHw, spOptions(0.10, true));
        ScratchPipeSystem strawman(w.model, kHw, spOptions(0.10, false));
        const double t_pipe =
            pipelined.simulate(w.dataset, w.stats, w.iters)
                .seconds_per_iteration;
        const double t_straw =
            strawman.simulate(w.dataset, w.stats, w.iters)
                .seconds_per_iteration;
        EXPECT_LE(t_pipe, t_straw);
    }
}

TEST(TimingScratchPipe, BeatsStaticCacheEverywhere)
{
    // Fig. 13's headline: ScratchPipe wins at every locality.
    for (auto locality : data::kAllLocalities) {
        Workload w(locality);
        StaticCacheSystem baseline(w.model, kHw, 0.10);
        ScratchPipeSystem scratchpipe(w.model, kHw, spOptions(0.10, true));
        const double t_static =
            baseline.simulate(w.dataset, w.stats, w.iters)
                .seconds_per_iteration;
        const double t_sp =
            scratchpipe.simulate(w.dataset, w.stats, w.iters)
                .seconds_per_iteration;
        EXPECT_LT(t_sp, t_static) << data::localityName(locality);
    }
}

TEST(TimingScratchPipe, SpeedupShrinksWithLocality)
{
    // Fig. 13: gains are largest on low-locality traces.
    auto speedup = [&](data::Locality locality) {
        Workload w(locality);
        StaticCacheSystem baseline(w.model, kHw, 0.10);
        ScratchPipeSystem scratchpipe(w.model, kHw, spOptions(0.10, true));
        return baseline.simulate(w.dataset, w.stats, w.iters)
                   .seconds_per_iteration /
               scratchpipe.simulate(w.dataset, w.stats, w.iters)
                   .seconds_per_iteration;
    };
    EXPECT_GT(speedup(data::Locality::Random),
              speedup(data::Locality::High));
}

TEST(TimingScratchPipe, CapacityBoundEnforced)
{
    Workload w(data::Locality::Random);
    ScratchPipeSystem system(w.model, kHw, spOptions(0.001, true));
    // 0.1% of 100K = 100 slots, far below the window working set; the
    // system must have grown it to the §VI-D bound.
    EXPECT_GE(system.slotsPerTable(),
              core::ScratchPipeController::worstCaseSlots(
                  3, 2, w.model.trace.idsPerTable()));
    EXPECT_NO_THROW(system.simulate(w.dataset, w.stats, w.iters));
}

TEST(TimingScratchPipe, TrainBoundAtHighLocality)
{
    // With most lookups hitting, the GPU [Train] stage binds the
    // pipeline (paper Fig. 12(b), High cluster).
    Workload w(data::Locality::High);
    ScratchPipeSystem system(w.model, kHw, spOptions(0.10, true));
    const RunResult result = system.simulate(w.dataset, w.stats, w.iters);
    EXPECT_EQ(result.bottleneck, "Train");
}

TEST(TimingScratchPipe, HitRateReported)
{
    Workload high(data::Locality::High);
    Workload random(data::Locality::Random);
    ScratchPipeSystem sys_h(high.model, kHw, spOptions(0.10, true));
    ScratchPipeSystem sys_r(random.model, kHw, spOptions(0.10, true));
    const double hr_high =
        sys_h.simulate(high.dataset, high.stats, high.iters).hit_rate;
    const double hr_random =
        sys_r.simulate(random.dataset, random.stats, random.iters)
            .hit_rate;
    EXPECT_GT(hr_high, hr_random);
}

/** Paper-scale workload: Table I's comparison only holds at full
 *  geometry, where bandwidth terms dominate the fixed overheads. */
struct PaperWorkload
{
    explicit PaperWorkload(data::Locality locality,
                           uint64_t iterations = 6)
        : model([&] {
              ModelConfig m = ModelConfig::paperDefault();
              m.trace.locality = locality;
              m.trace.seed = 44;
              return m;
          }()),
          dataset(model.trace, iterations + 2),
          stats(dataset, iterations), iters(iterations)
    {
    }
    ModelConfig model;
    data::TraceDataset dataset;
    BatchStats stats;
    uint64_t iters;
};

TEST(TimingMultiGpu, FasterThanScratchPipeAtPaperScale)
{
    PaperWorkload w(data::Locality::Medium);
    MultiGpuSystem multi(w.model, kHw);
    ScratchPipeSystem scratchpipe(w.model, kHw, spOptions(0.10, true));
    const double t_multi =
        multi.simulate(w.dataset, w.stats, w.iters).seconds_per_iteration;
    const double t_sp =
        scratchpipe.simulate(w.dataset, w.stats, w.iters)
            .seconds_per_iteration;
    EXPECT_LT(t_multi, t_sp);
}

TEST(TimingMultiGpu, CostAdvantageGoesToScratchPipe)
{
    // Table I: 8 GPUs cost 8x more per hour but deliver far less than
    // 8x the speed, so ScratchPipe's $/iteration is lower.
    PaperWorkload w(data::Locality::Medium);
    MultiGpuSystem multi(w.model, kHw);
    ScratchPipeSystem scratchpipe(w.model, kHw, spOptions(0.10, true));
    const double t_multi =
        multi.simulate(w.dataset, w.stats, w.iters).seconds_per_iteration;
    const double t_sp =
        scratchpipe.simulate(w.dataset, w.stats, w.iters)
            .seconds_per_iteration;
    EXPECT_LT(t_sp * 3.06, t_multi * 24.48);
}

TEST(TimingMultiGpu, HotRowContentionRaisesTime)
{
    // Table I: the 8-GPU system gets slightly *slower* as locality
    // rises (duplicate-gradient serialization).
    PaperWorkload random(data::Locality::Random);
    PaperWorkload high(data::Locality::High);
    MultiGpuSystem sys_r(random.model, kHw), sys_h(high.model, kHw);
    const double t_r =
        sys_r.simulate(random.dataset, random.stats, random.iters)
            .seconds_per_iteration;
    const double t_h =
        sys_h.simulate(high.dataset, high.stats, high.iters)
            .seconds_per_iteration;
    EXPECT_GT(t_h, t_r);
}

TEST(TimingRegistry, AllSystemsSimulate)
{
    Workload w(data::Locality::Medium);
    const struct
    {
        const char *spec;
        const char *name;
    } systems[] = {{"hybrid", "Hybrid CPU-GPU"},
                   {"static:cache=0.05", "Static cache"},
                   {"strawman:cache=0.05", "Straw-man"},
                   {"scratchpipe:cache=0.05", "ScratchPipe"},
                   {"multigpu", "8-GPU"}};
    for (const auto &entry : systems) {
        const auto system =
            Registry::build(SystemSpec::parse(entry.spec), w.model, kHw);
        const RunResult result =
            system->simulate(w.dataset, w.stats, w.iters);
        EXPECT_GT(result.seconds_per_iteration, 0.0) << entry.spec;
        EXPECT_EQ(result.system_name, entry.name);
        EXPECT_EQ(result.iterations, w.iters);
    }
}

TEST(TimingRegistry, BusyTimesWithinIteration)
{
    Workload w(data::Locality::Medium);
    for (const char *spec :
         {"hybrid", "static:cache=0.05", "scratchpipe:cache=0.05",
          "multigpu"}) {
        const auto system =
            Registry::build(SystemSpec::parse(spec), w.model, kHw);
        const RunResult result =
            system->simulate(w.dataset, w.stats, w.iters);
        EXPECT_GE(result.busy.cpu_busy_seconds, 0.0);
        EXPECT_GE(result.busy.gpu_busy_seconds, 0.0);
        EXPECT_LE(result.busy.cpu_busy_seconds,
                  result.busy.iteration_seconds * 1.001)
            << spec;
    }
}

} // namespace
} // namespace sp::sys
