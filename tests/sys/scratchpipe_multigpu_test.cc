/** @file Tests for the Section VI-G multi-GPU ScratchPipe extension. */

#include <gtest/gtest.h>

#include "common/logging.h"
#include "metrics/cost.h"
#include "sys/multigpu.h"
#include "sys/scratchpipe_multigpu.h"
#include "sys/scratchpipe_sys.h"

namespace sp::sys
{
namespace
{

struct PaperWorkload
{
    explicit PaperWorkload(data::Locality locality,
                           uint64_t iterations = 5)
        : model([&] {
              ModelConfig m = ModelConfig::paperDefault();
              m.trace.locality = locality;
              m.trace.seed = 60;
              return m;
          }()),
          dataset(model.trace, iterations + 2),
          stats(dataset, iterations), iters(iterations)
    {
    }
    ModelConfig model;
    data::TraceDataset dataset;
    BatchStats stats;
    uint64_t iters;
};

const sim::HardwareConfig kHw = sim::HardwareConfig::paperTestbed();

ScratchPipeOptions
defaultOptions()
{
    ScratchPipeOptions options;
    options.cache_fraction = 0.10;
    return options;
}

TEST(ScratchPipeMultiGpu, FasterThanSingleGpuScratchPipe)
{
    // More HBM, more PCIe lanes, data-parallel MLPs: the extension
    // must be faster per iteration...
    PaperWorkload w(data::Locality::Medium);
    ScratchPipeSystem single(w.model, kHw, defaultOptions());
    ScratchPipeMultiGpuSystem multi(w.model, kHw, defaultOptions());
    const double t1 =
        single.simulate(w.dataset, w.stats, w.iters).seconds_per_iteration;
    const double t8 =
        multi.simulate(w.dataset, w.stats, w.iters).seconds_per_iteration;
    EXPECT_LT(t8, t1);
}

TEST(ScratchPipeMultiGpu, FarFromLinearScaling)
{
    // ...but nowhere near 8x: shared CPU DRAM and framework overheads
    // bind it (the paper's Section VI-G argument).
    PaperWorkload w(data::Locality::Random);
    ScratchPipeSystem single(w.model, kHw, defaultOptions());
    ScratchPipeMultiGpuSystem multi(w.model, kHw, defaultOptions());
    const double t1 =
        single.simulate(w.dataset, w.stats, w.iters).seconds_per_iteration;
    const double t8 =
        multi.simulate(w.dataset, w.stats, w.iters).seconds_per_iteration;
    EXPECT_GT(t8 * 4.0, t1); // speedup < 4x despite 8x the GPUs
}

TEST(ScratchPipeMultiGpu, NotCostEffective)
{
    // The quantified Section VI-G claim: $/iteration is worse than
    // single-GPU ScratchPipe at every locality.
    for (auto locality : {data::Locality::Random, data::Locality::High}) {
        PaperWorkload w(locality);
        ScratchPipeSystem single(w.model, kHw, defaultOptions());
        ScratchPipeMultiGpuSystem multi(w.model, kHw, defaultOptions());
        const double t1 = single.simulate(w.dataset, w.stats, w.iters)
                              .seconds_per_iteration;
        const double t8 = multi.simulate(w.dataset, w.stats, w.iters)
                              .seconds_per_iteration;
        const double c1 = metrics::trainingCost(
            metrics::AwsInstance::p3_2xlarge(), t1, 1'000'000);
        const double c8 = metrics::trainingCost(
            metrics::AwsInstance::p3_16xlarge(), t8, 1'000'000);
        EXPECT_GT(c8, c1) << data::localityName(locality);
    }
}

TEST(ScratchPipeMultiGpu, SixStageBreakdownReported)
{
    PaperWorkload w(data::Locality::Medium);
    ScratchPipeMultiGpuSystem multi(w.model, kHw, defaultOptions());
    const auto result = multi.simulate(w.dataset, w.stats, w.iters);
    EXPECT_EQ(result.breakdown.stages().size(), 6u);
    EXPECT_EQ(result.system_name, "ScratchPipe multi-GPU");
    EXPECT_GT(result.hit_rate, 0.0);
    EXPECT_FALSE(result.bottleneck.empty());
}

TEST(ScratchPipeMultiGpu, HitRateMatchesSingleGpu)
{
    // The cache managers are identical per table; only resource
    // charging differs, so hit rates must agree.
    PaperWorkload w(data::Locality::High);
    ScratchPipeSystem single(w.model, kHw, defaultOptions());
    ScratchPipeMultiGpuSystem multi(w.model, kHw, defaultOptions());
    const auto r1 = single.simulate(w.dataset, w.stats, w.iters);
    const auto r8 = multi.simulate(w.dataset, w.stats, w.iters);
    EXPECT_NEAR(r1.hit_rate, r8.hit_rate, 1e-12);
}

TEST(ScratchPipeMultiGpu, StrawmanModeRejected)
{
    PaperWorkload w(data::Locality::Medium);
    ScratchPipeOptions options = defaultOptions();
    options.pipelined = false;
    EXPECT_THROW(ScratchPipeMultiGpuSystem(w.model, kHw, options),
                 FatalError);
}

} // namespace
} // namespace sp::sys
