/**
 * @file
 * Tests for the online serving system: spec grammar round-trips,
 * SLO percentile ordering and exactness, admission semantics
 * (batch_max vs latency budget), static vs dynamic GPU-tier refresh,
 * determinism, and option validation.
 */

#include <gtest/gtest.h>

#include <limits>
#include <string>

#include "common/logging.h"
#include "sys/experiment.h"
#include "sys/registry.h"
#include "sys/serving.h"

namespace sp::sys
{
namespace
{

const sim::HardwareConfig kHw = sim::HardwareConfig::paperTestbed();

ModelConfig
servingModel()
{
    ModelConfig model = ModelConfig::functionalScale();
    model.trace.locality = data::Locality::Medium;
    model.trace.seed = 77;
    return model;
}

RunResult
runServe(const std::string &spec_text, const ModelConfig &model,
         uint64_t iterations = 4, uint64_t warmup = 1)
{
    const SystemSpec spec = SystemSpec::parse(spec_text);
    spec.validate();
    const data::TraceDataset dataset(model.trace,
                                     warmup + iterations + 1);
    const BatchStats stats(dataset, iterations);
    const auto system = Registry::build(spec, model, kHw);
    return system->simulate(dataset, stats, iterations, warmup);
}

TEST(ServingSpec, ParsesAndRoundTripsEveryKey)
{
    const std::string text =
        "serve:arrival=bursty,rate=250000,batch_max=16,budget_us=300,"
        "refresh=lfu,burst_x=4,burst_on_us=250,burst_off_us=2000";
    const SystemSpec spec = SystemSpec::parse(text);
    EXPECT_EQ(spec.name, "serve");
    EXPECT_TRUE(spec.serve_tuned);
    EXPECT_EQ(spec.serve.arrival.kind, data::ArrivalKind::Bursty);
    EXPECT_EQ(spec.serve.arrival.rate, 250000.0);
    EXPECT_EQ(spec.serve.batch_max, 16u);
    EXPECT_EQ(spec.serve.budget_us, 300.0);
    EXPECT_TRUE(spec.serve.dynamic_refresh);
    EXPECT_EQ(spec.serve.policy, cache::PolicyKind::Lfu);
    EXPECT_EQ(spec.serve.arrival.burst_x, 4.0);
    EXPECT_EQ(spec.serve.arrival.burst_on_us, 250.0);
    EXPECT_EQ(spec.serve.arrival.burst_off_us, 2000.0);
    // summary() is canonical and parse(summary()) is the fixed point.
    const SystemSpec again = SystemSpec::parse(spec.summary());
    EXPECT_EQ(again.summary(), spec.summary());
    EXPECT_EQ(again.serve.arrival.rate, spec.serve.arrival.rate);
    EXPECT_EQ(again.serve.budget_us, spec.serve.budget_us);
}

TEST(ServingSpec, RefreshStaticRoundTrips)
{
    const SystemSpec spec =
        SystemSpec::parse("serve:refresh=static,rate=100000");
    EXPECT_FALSE(spec.serve.dynamic_refresh);
    const SystemSpec again = SystemSpec::parse(spec.summary());
    EXPECT_FALSE(again.serve.dynamic_refresh);
}

TEST(ServingSpec, RejectsBadRateAtParseTime)
{
    // rate=0 would divide every Poisson gap by zero; the parser says
    // so instead of producing an infinite inter-arrival time.
    EXPECT_THROW(SystemSpec::parse("serve:rate=0"), FatalError);
    EXPECT_THROW(SystemSpec::parse("serve:rate=-5"), FatalError);
    EXPECT_THROW(SystemSpec::parse("serve:rate=nan"), FatalError);
    EXPECT_THROW(SystemSpec::parse("serve:rate=inf"), FatalError);
    EXPECT_THROW(SystemSpec::parse("serve:batch_max=0"), FatalError);
}

TEST(ServingSpec, ServeKeysRejectedOnTrainingSystems)
{
    SystemSpec spec = SystemSpec::parse("hybrid:rate=100000");
    EXPECT_THROW(spec.validate(), FatalError);
    SystemSpec batch = SystemSpec::parse("static:batch_max=8");
    EXPECT_THROW(batch.validate(), FatalError);
    // ...and scratchpad keys are rejected on serve.
    SystemSpec pipe = SystemSpec::parse("serve:past=4");
    EXPECT_THROW(pipe.validate(), FatalError);
}

TEST(ServingSpec, InvalidBurstShapeRejectedByValidate)
{
    SystemSpec spec = SystemSpec::parse(
        "serve:arrival=bursty,burst_x=100,burst_on_us=500,"
        "burst_off_us=500");
    EXPECT_THROW(spec.validate(), FatalError);
}

TEST(Serving, ReportsOrderedPercentilesAndCounts)
{
    const ModelConfig model = servingModel();
    const RunResult result =
        runServe("serve:rate=400000,batch_max=8,budget_us=200", model);
    ASSERT_TRUE(result.serving.enabled);
    EXPECT_EQ(result.serving.requests, 4u * model.trace.batch_size);
    EXPECT_EQ(result.serving.dropped, 0u);
    EXPECT_GT(result.serving.batches, 0u);
    EXPECT_GT(result.serving.p50, 0.0);
    EXPECT_LE(result.serving.p50, result.serving.p99);
    EXPECT_LE(result.serving.p99, result.serving.p999);
    EXPECT_LE(result.serving.p999, result.serving.max);
    EXPECT_GT(result.serving.mean, 0.0);
    EXPECT_LE(result.serving.mean, result.serving.max);
    EXPECT_GE(result.serving.mean_queue_depth, 1.0);
    EXPECT_GE(result.serving.max_queue_depth,
              result.serving.mean_queue_depth);
    EXPECT_GT(result.serving.achieved_rate, 0.0);
    EXPECT_EQ(result.serving.offered_rate, 400000.0);
    EXPECT_GT(result.seconds_per_iteration, 0.0);
    EXPECT_GT(result.hit_rate, 0.0);
    EXPECT_LT(result.hit_rate, 1.0);
}

TEST(Serving, BatchMaxCapsAdmission)
{
    // A fast stream against batch_max=4: every batch fills before the
    // generous budget can fire, so fill is exactly 4.
    const ModelConfig model = servingModel();
    const RunResult result = runServe(
        "serve:rate=1000000,batch_max=4,budget_us=100000", model);
    EXPECT_EQ(result.serving.mean_batch_fill, 4.0);
    EXPECT_EQ(result.serving.max_queue_depth, 4.0);
}

TEST(Serving, ZeroBudgetServesEveryRequestAlone)
{
    // budget_us=0 arms an immediate deadline: each request dispatches
    // alone unless another arrival lands at the exact same instant.
    const ModelConfig model = servingModel();
    const RunResult result =
        runServe("serve:rate=200000,batch_max=64,budget_us=0", model);
    EXPECT_EQ(result.serving.mean_batch_fill, 1.0);
    EXPECT_EQ(result.serving.batches, result.serving.requests);
}

TEST(Serving, BudgetBoundsQueueingDelayUnderLightLoad)
{
    // At a light offered load the queue never fills batch_max, so the
    // budget deadline is the admission path: no request's wait before
    // service exceeds budget + its own batch's position effects.
    const ModelConfig model = servingModel();
    const RunResult result = runServe(
        "serve:rate=50000,batch_max=1000000000,budget_us=500", model);
    // With batch_max unreachable, every dispatch is budget-driven.
    EXPECT_GT(result.serving.batches, 0u);
    EXPECT_LT(result.serving.mean_batch_fill,
              static_cast<double>(result.serving.requests));
}

TEST(Serving, StaticAndDynamicRefreshDiffer)
{
    const ModelConfig model = servingModel();
    const RunResult pinned = runServe(
        "serve:rate=400000,refresh=static,cache=0.05", model);
    const RunResult lru =
        runServe("serve:rate=400000,refresh=lru,cache=0.05", model);
    // Same stream, different tier behaviour: hit rates must differ,
    // and the dynamic tier pays HitMap metadata in gpu_bytes.
    EXPECT_NE(pinned.hit_rate, lru.hit_rate);
    EXPECT_GT(lru.gpu_bytes, pinned.gpu_bytes);
}

TEST(Serving, DeterministicAcrossRepeatRuns)
{
    const ModelConfig model = servingModel();
    const std::string spec =
        "serve:rate=300000,arrival=bursty,batch_max=16,budget_us=250,"
        "refresh=lru";
    const RunResult a = runServe(spec, model);
    const RunResult b = runServe(spec, model);
    EXPECT_EQ(a.serving.p50, b.serving.p50);
    EXPECT_EQ(a.serving.p99, b.serving.p99);
    EXPECT_EQ(a.serving.p999, b.serving.p999);
    EXPECT_EQ(a.serving.mean, b.serving.mean);
    EXPECT_EQ(a.seconds_per_iteration, b.seconds_per_iteration);
    EXPECT_EQ(a.hit_rate, b.hit_rate);
}

TEST(Serving, SeedChangesTheStream)
{
    ModelConfig model = servingModel();
    const RunResult a = runServe("serve:rate=300000", model);
    model.trace.seed = 78;
    const RunResult b = runServe("serve:rate=300000", model);
    EXPECT_NE(a.serving.p50, b.serving.p50);
}

TEST(Serving, JsonCarriesTheServingObject)
{
    const ModelConfig model = servingModel();
    const RunResult result = runServe("serve:rate=400000", model);
    const std::string json = result.toJson();
    for (const char *key :
         {"\"serving\"", "\"p50\"", "\"p99\"", "\"p999\"",
          "\"queue_depth\"", "\"offered_rate\"", "\"achieved_rate\"",
          "\"mean_batch_fill\"", "\"dropped\""})
        EXPECT_NE(json.find(key), std::string::npos) << key;
    // ...and training results don't grow one.
    RunResult training;
    training.system_name = "x";
    training.iterations = 1;
    EXPECT_EQ(training.toJson().find("\"serving\""),
              std::string::npos);
}

TEST(ServeOptions, ValidationCatchesEachKnob)
{
    ServeOptions options;
    EXPECT_TRUE(options.validationError().empty());
    options.batch_max = 0;
    EXPECT_FALSE(options.validationError().empty());
    options.batch_max = 32;
    options.budget_us = -1.0;
    EXPECT_FALSE(options.validationError().empty());
    options.budget_us = std::numeric_limits<double>::quiet_NaN();
    EXPECT_FALSE(options.validationError().empty());
    options.budget_us = 200.0;
    options.cache_fraction = 0.0;
    EXPECT_FALSE(options.validationError().empty());
    options.cache_fraction = 1.5;
    EXPECT_FALSE(options.validationError().empty());
    options.cache_fraction = 0.05;
    options.arrival.rate = 0.0;
    EXPECT_FALSE(options.validationError().empty());
}

TEST(Serving, BuildsThroughExperimentRunner)
{
    ExperimentOptions options;
    options.iterations = 3;
    options.warmup = 1;
    options.jobs = 1;
    const ExperimentRunner runner(servingModel(), kHw, options);
    const auto results = runner.runAll(
        {SystemSpec::parse("serve:rate=400000,batch_max=8")});
    ASSERT_EQ(results.size(), 1u);
    EXPECT_FALSE(results[0].failed()) << results[0].error;
    EXPECT_TRUE(results[0].serving.enabled);
    EXPECT_EQ(results[0].system_name, "Serving");
}

} // namespace
} // namespace sp::sys
