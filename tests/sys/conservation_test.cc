/**
 * @file
 * Traffic-conservation and bookkeeping properties (DESIGN.md
 * invariant 4): over a functional run, every row that left the CPU
 * tables is either still resident in the scratchpad or has been
 * written back; values are never lost or duplicated.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <span>

#include "common/logging.h"
#include "core/controller.h"
#include "emb/embedding_ops.h"
#include "sys/functional.h"

namespace sp::sys
{
namespace
{

ModelConfig
functionalModel(uint64_t seed)
{
    ModelConfig model = ModelConfig::functionalScale();
    model.trace.locality = data::Locality::Medium;
    model.trace.seed = seed;
    return model;
}

TEST(Conservation, ResidencyEqualsFillsMinusEvictions)
{
    const ModelConfig model = functionalModel(71);
    data::TraceDataset dataset(model.trace, 25);
    FunctionalScratchPipeTrainer trainer(
        model, FunctionalScratchPipeTrainer::Options{});
    trainer.train(dataset, 25);

    // Every fill adds one resident row, every eviction removes one:
    // final residency must equal the difference exactly (per run, all
    // tables aggregated).
    const auto stats = trainer.aggregateStats();
    EXPECT_EQ(stats.fills, stats.misses);
    EXPECT_GE(stats.fills, stats.evictions);
    // All residents were flushed back, so tables hold a complete
    // model: verified implicitly by the equivalence tests; here we
    // check the counters are self-consistent.
    EXPECT_EQ(stats.plans, 25ull * model.trace.num_tables);
}

TEST(Conservation, FlushedModelHasNoNansOrExplosions)
{
    const ModelConfig model = functionalModel(73);
    data::TraceDataset dataset(model.trace, 30);
    FunctionalScratchPipeTrainer trainer(
        model, FunctionalScratchPipeTrainer::Options{});
    trainer.train(dataset, 30);

    for (const auto &table : trainer.tables()) {
        for (uint32_t r = 0; r < table.rows(); ++r) {
            const float *row = table.row(r);
            for (size_t d = 0; d < table.dim(); ++d) {
                ASSERT_TRUE(std::isfinite(row[d]));
                ASSERT_LT(std::fabs(row[d]), 100.0f);
            }
        }
    }
}

TEST(Conservation, UntouchedRowsNeverChange)
{
    // Rows the trace never references must keep their initial values
    // through a full pipelined run (no stray writes from fills,
    // evictions or scatters).
    ModelConfig model = functionalModel(79);
    model.trace.rows_per_table = 8192;
    data::TraceDataset dataset(model.trace, 15);

    // Record which rows the trace touches.
    std::vector<std::vector<bool>> touched(
        model.trace.num_tables,
        std::vector<bool>(model.trace.rows_per_table, false));
    for (uint64_t b = 0; b < 15; ++b) {
        const auto &batch = dataset.batch(b);
        for (size_t t = 0; t < batch.numTables(); ++t)
            for (uint32_t id : batch.table_ids[t])
                touched[t][id] = true;
    }

    const auto initial = makeDenseTables(model);
    FunctionalScratchPipeTrainer trainer(
        model, FunctionalScratchPipeTrainer::Options{});
    trainer.train(dataset, 15);

    for (size_t t = 0; t < model.trace.num_tables; ++t) {
        for (uint32_t r = 0; r < model.trace.rows_per_table; ++r) {
            if (touched[t][r])
                continue;
            const float *before = initial[t].row(r);
            const float *after = trainer.tables()[t].row(r);
            for (size_t d = 0; d < model.embedding_dim; ++d)
                ASSERT_EQ(before[d], after[d])
                    << "untouched row " << r << " of table " << t
                    << " changed";
        }
    }
}

TEST(Conservation, TouchedRowsDoChange)
{
    // Negative control for the test above: rows that are referenced
    // must (almost surely) receive gradient updates.
    const ModelConfig model = functionalModel(83);
    data::TraceDataset dataset(model.trace, 10);
    const auto initial = makeDenseTables(model);

    FunctionalScratchPipeTrainer trainer(
        model, FunctionalScratchPipeTrainer::Options{});
    trainer.train(dataset, 10);

    const auto &batch = dataset.batch(0);
    size_t changed = 0, checked = 0;
    for (size_t t = 0; t < model.trace.num_tables; ++t) {
        for (uint32_t id : emb::uniqueIds(batch.table_ids[t])) {
            ++checked;
            if (!tensor::Matrix::identical(
                    [&] {
                        tensor::Matrix m(1, model.embedding_dim);
                        std::copy_n(initial[t].row(id),
                                    model.embedding_dim, m.data());
                        return m;
                    }(),
                    [&] {
                        tensor::Matrix m(1, model.embedding_dim);
                        std::copy_n(trainer.tables()[t].row(id),
                                    model.embedding_dim, m.data());
                        return m;
                    }()))
                ++changed;
        }
    }
    EXPECT_GT(changed, checked * 9 / 10);
}

class WindowGeometries
    : public ::testing::TestWithParam<std::pair<uint32_t, uint32_t>>
{
};

TEST_P(WindowGeometries, WiderWindowsStayHazardFreeAndEquivalent)
{
    // Deeper-than-paper windows must remain correct (they only pin
    // more slots); the hazard audit and bit-equivalence both hold.
    const auto [past, future] = GetParam();
    const ModelConfig model = functionalModel(89);
    data::TraceDataset dataset(model.trace, 15);

    FunctionalHybridTrainer reference(model);
    FunctionalScratchPipeTrainer::Options options;
    options.past_window = past;
    options.future_window = future;
    FunctionalScratchPipeTrainer trainer(model, options);

    reference.train(dataset, 15);
    EXPECT_NO_THROW(trainer.train(dataset, 15));
    for (size_t t = 0; t < model.trace.num_tables; ++t)
        EXPECT_TRUE(emb::EmbeddingTable::identical(
            reference.tables()[t], trainer.tables()[t]));
}

INSTANTIATE_TEST_SUITE_P(
    Windows, WindowGeometries,
    ::testing::Values(std::make_pair(3u, 2u), std::make_pair(4u, 2u),
                      std::make_pair(5u, 3u), std::make_pair(6u, 4u)),
    [](const auto &info) {
        return "past" + std::to_string(info.param.first) + "_future" +
               std::to_string(info.param.second);
    });

} // namespace
} // namespace sp::sys
