/** @file BatchStats unique-ID accounting tests. */

#include <gtest/gtest.h>

#include "common/logging.h"
#include "emb/embedding_ops.h"
#include "sys/batch_stats.h"

namespace sp::sys
{
namespace
{

data::TraceConfig
smallTrace()
{
    data::TraceConfig config;
    config.num_tables = 3;
    config.rows_per_table = 200;
    config.lookups_per_table = 4;
    config.batch_size = 16;
    config.locality = data::Locality::Medium;
    return config;
}

TEST(BatchStats, MatchesDirectCount)
{
    data::TraceDataset dataset(smallTrace(), 5);
    BatchStats stats(dataset, 5);
    for (uint64_t b = 0; b < 5; ++b) {
        for (size_t t = 0; t < 3; ++t) {
            EXPECT_EQ(stats.unique(b, t),
                      emb::countUnique(dataset.batch(b).table_ids[t]));
        }
    }
}

TEST(BatchStats, UniqueTotalSumsTables)
{
    data::TraceDataset dataset(smallTrace(), 3);
    BatchStats stats(dataset, 3);
    for (uint64_t b = 0; b < 3; ++b) {
        size_t manual = 0;
        for (size_t t = 0; t < 3; ++t)
            manual += stats.unique(b, t);
        EXPECT_EQ(stats.uniqueTotal(b), manual);
    }
}

TEST(BatchStats, UniqueNeverExceedsIdCount)
{
    data::TraceDataset dataset(smallTrace(), 4);
    BatchStats stats(dataset, 4);
    for (uint64_t b = 0; b < 4; ++b)
        for (size_t t = 0; t < 3; ++t)
            EXPECT_LE(stats.unique(b, t), 64u); // 16 * 4 lookups
}

TEST(BatchStats, HighLocalityFewerUniques)
{
    auto high_config = smallTrace();
    high_config.locality = data::Locality::High;
    high_config.rows_per_table = 10000;
    auto uniform_config = high_config;
    uniform_config.locality = data::Locality::Random;

    data::TraceDataset high(high_config, 10);
    data::TraceDataset uniform(uniform_config, 10);
    BatchStats high_stats(high, 10), uniform_stats(uniform, 10);

    size_t high_total = 0, uniform_total = 0;
    for (uint64_t b = 0; b < 10; ++b) {
        high_total += high_stats.uniqueTotal(b);
        uniform_total += uniform_stats.uniqueTotal(b);
    }
    EXPECT_LT(high_total, uniform_total);
}

TEST(BatchStats, RangeChecks)
{
    data::TraceDataset dataset(smallTrace(), 2);
    BatchStats stats(dataset, 2);
    EXPECT_EQ(stats.iterations(), 2u);
    EXPECT_THROW(stats.unique(2, 0), PanicError);
    EXPECT_THROW(stats.unique(0, 3), PanicError);
    EXPECT_THROW(BatchStats(dataset, 3), FatalError);
}

} // namespace
} // namespace sp::sys
