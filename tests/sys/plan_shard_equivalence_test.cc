/**
 * @file
 * Property tests of the sharded + pipelined planning engine.
 *
 * The exact-equivalence contract: for ANY model geometry, locality,
 * policy, window shape, and cache size, planning with the mark passes
 * sharded over the pool and batches pipelined two deep produces
 * byte-identical results to a fully serial run. Configurations are
 * drawn from a seeded RNG so every run covers the same (arbitrary)
 * corner of the space, and the comparison is RunResult::toJson --
 * the same serialisation the CLI and goldens use -- plus a
 * controller-level check on the raw PlanResult schedules.
 */

#include <gtest/gtest.h>

#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "core/controller.h"
#include "data/dataset.h"
#include "sys/experiment.h"
#include "sys/registry.h"

namespace sp::sys
{
namespace
{

const sim::HardwareConfig kHw = sim::HardwareConfig::paperTestbed();

/** A pool wide enough that shards really cross threads, whatever the
 *  host (results are width-independent by contract). */
void
widenPool()
{
    if (common::ThreadPool::global().size() < 4)
        common::ThreadPool::setGlobalThreads(4);
}

ModelConfig
randomModel(std::mt19937 &rng)
{
    ModelConfig model = ModelConfig::functionalScale();
    model.trace.num_tables =
        std::uniform_int_distribution<size_t>(1, 4)(rng);
    // Rows stay above the worst-case window working set (8 batches x
    // 240 IDs) so the §VI-D capacity bound can always be honoured.
    model.trace.rows_per_table =
        std::uniform_int_distribution<uint64_t>(2'500, 8'000)(rng);
    model.trace.lookups_per_table =
        std::uniform_int_distribution<size_t>(1, 5)(rng);
    model.trace.batch_size =
        std::uniform_int_distribution<size_t>(8, 48)(rng);
    model.trace.locality = data::kAllLocalities
        [std::uniform_int_distribution<size_t>(
            0, data::kAllLocalities.size() - 1)(rng)];
    model.trace.seed = std::uniform_int_distribution<uint64_t>(
        1, 1'000'000)(rng);
    return model;
}

/** Random scratchpad tunables, as a spec-option string. */
std::string
randomScratchpadOptions(std::mt19937 &rng)
{
    const char *policies[] = {"lru", "lfu", "fifo", "random"};
    std::ostringstream os;
    os << "cache=0."
       << std::uniform_int_distribution<int>(1, 3)(rng)  // 0.1 - 0.3
       << ",policy="
       << policies[std::uniform_int_distribution<size_t>(0, 3)(rng)]
       << ",past=" << std::uniform_int_distribution<int>(1, 4)(rng)
       << ",future=" << std::uniform_int_distribution<int>(0, 3)(rng)
       << ",warm=" << std::uniform_int_distribution<int>(0, 1)(rng);
    return os.str();
}

TEST(PlanShardEquivalence, RandomConfigsByteIdenticalAcrossShardWidths)
{
    widenPool();
    std::mt19937 rng(0xC0FFEE);
    for (int trial = 0; trial < 4; ++trial) {
        const ModelConfig model = randomModel(rng);
        const std::string base = randomScratchpadOptions(rng);

        ExperimentOptions serial_options;
        serial_options.iterations = 5;
        serial_options.warmup = 2;
        serial_options.jobs = 1;
        const ExperimentRunner serial_runner(model, kHw, serial_options);

        ExperimentOptions pooled_options = serial_options;
        pooled_options.jobs = 4;
        const ExperimentRunner pooled_runner(model, kHw, pooled_options);

        for (const char *system : {"scratchpipe", "strawman"}) {
            const std::string serial_spec =
                std::string(system) + ":" + base + ",overlap=0,shard=1";
            const std::string baseline =
                serial_runner.run(serial_spec).toJson();
            for (const uint32_t width : {1u, 2u, 7u, 16u}) {
                const std::string spec = std::string(system) + ":" +
                                         base + ",overlap=1,shard=" +
                                         std::to_string(width);
                EXPECT_EQ(baseline, serial_runner.run(spec).toJson())
                    << "trial " << trial << " " << spec << " (jobs 1)";
                EXPECT_EQ(baseline, pooled_runner.run(spec).toJson())
                    << "trial " << trial << " " << spec << " (jobs 4)";
            }
        }
    }
}

/** Raw-schedule comparison: two controllers, identical configs except
 *  the shard width, fed the same random batches, must emit identical
 *  fill/evict schedules (not just identical aggregates). */
TEST(PlanShardEquivalence, ControllerSchedulesIdenticalAtAnyShardWidth)
{
    widenPool();
    std::mt19937 rng(0xBEEF);
    for (const uint32_t width : {2u, 7u, 16u}) {
        core::ControllerConfig cc;
        // Above worstCaseSlots(3, 2, 520) so no plan can run out of
        // eligible victims.
        cc.num_slots = 3'200;
        cc.dim = 8;
        cc.past_window = 3;
        cc.future_window = 2;
        cc.backing = cache::SlotArray::Backing::Phantom;
        core::ScratchPipeController serial(cc);
        cc.plan_shards = width;
        core::ScratchPipeController sharded(cc);

        std::uniform_int_distribution<uint32_t> id(0, 4'000);
        // 520-ID batches: big enough (> 2 * 64-ID shard minimum x 4)
        // that the sharded path really splits.
        std::vector<std::vector<uint64_t>> batches(12);
        for (auto &ids : batches) {
            ids.resize(520);
            for (auto &value : ids)
                value = id(rng);
        }

        for (size_t b = 0; b < batches.size(); ++b) {
            std::vector<std::span<const uint64_t>> futures;
            for (size_t d = 1; d <= 2 && b + d < batches.size(); ++d)
                futures.emplace_back(batches[b + d]);
            const auto &expected = serial.plan(batches[b], futures);
            const core::PlanResult copy = expected; // next plan reuses it
            const auto &got = sharded.plan(batches[b], futures);
            ASSERT_EQ(copy.hits, got.hits) << "batch " << b;
            ASSERT_EQ(copy.misses, got.misses) << "batch " << b;
            ASSERT_EQ(copy.fills.size(), got.fills.size());
            for (size_t f = 0; f < copy.fills.size(); ++f) {
                ASSERT_EQ(copy.fills[f].id, got.fills[f].id);
                ASSERT_EQ(copy.fills[f].slot, got.fills[f].slot);
            }
            ASSERT_EQ(copy.evictions.size(), got.evictions.size());
            for (size_t e = 0; e < copy.evictions.size(); ++e) {
                ASSERT_EQ(copy.evictions[e].id, got.evictions[e].id);
                ASSERT_EQ(copy.evictions[e].slot, got.evictions[e].slot);
            }
        }
    }
}

} // namespace
} // namespace sp::sys
