/**
 * @file
 * Tests for the SystemSpec / Registry / ExperimentRunner API.
 *
 * Covers the spec grammar, registry round-trips (every registered
 * system builds and simulates), bit-exact parity between the
 * ExperimentRunner convenience path and direct Registry::build +
 * simulate, the cache-fraction validation that replaces the old
 * silent-ignore behaviour, and the JSON emission consumed by spsim
 * --format json.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <functional>
#include <string>

#include "common/logging.h"
#include "sys/experiment.h"
#include "sys/registry.h"

namespace sp::sys
{
namespace
{

const sim::HardwareConfig kHw = sim::HardwareConfig::paperTestbed();

ModelConfig
smallModel()
{
    ModelConfig model = ModelConfig::functionalScale();
    model.trace.locality = data::Locality::Medium;
    model.trace.seed = 99;
    return model;
}

/** Minimal JSON syntax checker: strings (with escapes), numbers,
 *  literals, objects, arrays. Returns false on any syntax error. */
bool
validJson(const std::string &text)
{
    size_t i = 0;
    const auto skipSpace = [&] {
        while (i < text.size() && std::isspace(
                                      static_cast<unsigned char>(text[i])))
            ++i;
    };
    std::function<bool()> value = [&]() -> bool {
        skipSpace();
        if (i >= text.size())
            return false;
        const char c = text[i];
        if (c == '{' || c == '[') {
            const char close = c == '{' ? '}' : ']';
            ++i;
            skipSpace();
            if (i < text.size() && text[i] == close) {
                ++i;
                return true;
            }
            while (true) {
                if (c == '{') {
                    skipSpace();
                    if (i >= text.size() || text[i] != '"' || !value())
                        return false;
                    skipSpace();
                    if (i >= text.size() || text[i] != ':')
                        return false;
                    ++i;
                }
                if (!value())
                    return false;
                skipSpace();
                if (i < text.size() && text[i] == ',') {
                    ++i;
                    continue;
                }
                break;
            }
            skipSpace();
            if (i >= text.size() || text[i] != close)
                return false;
            ++i;
            return true;
        }
        if (c == '"') {
            ++i;
            while (i < text.size() && text[i] != '"') {
                if (text[i] == '\\')
                    ++i;
                ++i;
            }
            if (i >= text.size())
                return false;
            ++i;
            return true;
        }
        if (text.compare(i, 4, "true") == 0 ||
            text.compare(i, 4, "null") == 0) {
            i += 4;
            return true;
        }
        if (text.compare(i, 5, "false") == 0) {
            i += 5;
            return true;
        }
        const size_t start = i;
        while (i < text.size() &&
               (std::isdigit(static_cast<unsigned char>(text[i])) ||
                text[i] == '-' || text[i] == '+' || text[i] == '.' ||
                text[i] == 'e' || text[i] == 'E'))
            ++i;
        return i > start;
    };
    if (!value())
        return false;
    skipSpace();
    return i == text.size();
}

TEST(SystemSpec, ParsesBareName)
{
    const SystemSpec spec = SystemSpec::parse("hybrid");
    EXPECT_EQ(spec.name, "hybrid");
    EXPECT_FALSE(spec.cache_fraction.has_value());
    EXPECT_FALSE(spec.scratchpipe_tuned);
}

TEST(SystemSpec, ParsesEveryKey)
{
    const SystemSpec spec = SystemSpec::parse(
        "scratchpipe:cache=0.05,policy=lfu,past=4,future=3,warm=0,"
        "bound=0");
    EXPECT_EQ(spec.name, "scratchpipe");
    ASSERT_TRUE(spec.cache_fraction.has_value());
    EXPECT_DOUBLE_EQ(*spec.cache_fraction, 0.05);
    EXPECT_EQ(spec.scratchpipe.policy, cache::PolicyKind::Lfu);
    EXPECT_EQ(spec.scratchpipe.past_window, 4u);
    EXPECT_EQ(spec.scratchpipe.future_window, 3u);
    EXPECT_FALSE(spec.scratchpipe.warm_start);
    EXPECT_FALSE(spec.scratchpipe.enforce_capacity_bound);
    EXPECT_TRUE(spec.scratchpipe_tuned);
}

TEST(SystemSpec, SummaryRoundTrips)
{
    const SystemSpec spec = SystemSpec::parse(
        "scratchpipe:cache=0.05,policy=lfu,past=4,future=3,warm=0,"
        "bound=1");
    const SystemSpec reparsed = SystemSpec::parse(spec.summary());
    EXPECT_EQ(reparsed.name, spec.name);
    EXPECT_DOUBLE_EQ(*reparsed.cache_fraction, *spec.cache_fraction);
    EXPECT_EQ(reparsed.scratchpipe.policy, spec.scratchpipe.policy);
    EXPECT_EQ(reparsed.scratchpipe.past_window,
              spec.scratchpipe.past_window);
    EXPECT_EQ(reparsed.scratchpipe.future_window,
              spec.scratchpipe.future_window);
    EXPECT_EQ(reparsed.scratchpipe.warm_start,
              spec.scratchpipe.warm_start);
    EXPECT_EQ(reparsed.scratchpipe.enforce_capacity_bound,
              spec.scratchpipe.enforce_capacity_bound);
}

TEST(SystemSpec, RejectsMalformedInput)
{
    EXPECT_THROW(SystemSpec::parse(""), FatalError);
    EXPECT_THROW(SystemSpec::parse("scratchpipe:cache"), FatalError);
    EXPECT_THROW(SystemSpec::parse("scratchpipe:cache=abc"), FatalError);
    EXPECT_THROW(SystemSpec::parse("scratchpipe:nope=1"), FatalError);
    EXPECT_THROW(SystemSpec::parse("scratchpipe:policy=mru"),
                 FatalError);
}

TEST(SystemSpec, RejectsDuplicateKeysInsteadOfLastWin)
{
    // Pre-fix, policy=lfu,policy=lru silently simulated LRU -- a
    // different system than the one on the screen. The diagnostic
    // names the offending key.
    try {
        SystemSpec::parse("scratchpipe:policy=lfu,policy=lru");
        FAIL() << "duplicate key accepted";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("duplicate key"),
                  std::string::npos);
        EXPECT_NE(std::string(e.what()).find("policy"),
                  std::string::npos);
    }
    EXPECT_THROW(SystemSpec::parse("static:cache=0.1,cache=0.2"),
                 FatalError);
}

TEST(SystemSpec, RejectsCacheOnCachelessSystems)
{
    // The legacy factory silently ignored cache_fraction for hybrid
    // and multigpu; the spec path makes that a hard error.
    for (const char *name : {"hybrid", "multigpu"}) {
        SystemSpec spec;
        spec.name = name;
        spec.cache_fraction = 0.05;
        EXPECT_THROW(spec.validate(), FatalError) << name;
        EXPECT_THROW(Registry::build(spec, smallModel(), kHw),
                     FatalError)
            << name;
    }
}

TEST(SystemSpec, RejectsScratchpadKeysOnOtherSystems)
{
    SystemSpec spec = SystemSpec::parse("static:cache=0.05,policy=lfu");
    EXPECT_THROW(spec.validate(), FatalError);
}

TEST(SystemSpec, RejectsOutOfRangeCache)
{
    for (double fraction : {-0.1, 0.0, 1.5}) {
        SystemSpec spec = SystemSpec::withCache("static", fraction);
        EXPECT_THROW(spec.validate(), FatalError) << fraction;
    }
}

TEST(Registry, KnowsTheFivePaperSystemsPlusServing)
{
    for (const char *name : {"hybrid", "static", "strawman",
                             "scratchpipe", "multigpu", "serve"})
        EXPECT_TRUE(Registry::contains(name)) << name;
    EXPECT_EQ(Registry::names().size(), 6u);
}

TEST(Registry, SuggestsNearestName)
{
    EXPECT_EQ(Registry::suggest("scratchpip"), "scratchpipe");
    EXPECT_EQ(Registry::suggest("hybird"), "hybrid");
    EXPECT_EQ(Registry::suggest("qqqqqqqqqq"), "");
    try {
        Registry::entry("statik");
        FAIL() << "expected FatalError";
    } catch (const FatalError &error) {
        EXPECT_NE(std::string(error.what()).find("did you mean"),
                  std::string::npos);
        EXPECT_NE(std::string(error.what()).find("static"),
                  std::string::npos);
    }
}

TEST(Registry, RoundTripEveryRegisteredSystem)
{
    // Every registered name must build from a default spec and
    // simulate 2 iterations at functional scale.
    const ModelConfig model = smallModel();
    const data::TraceDataset dataset(model.trace, 4);
    const BatchStats stats(dataset, 2);
    for (const auto &name : Registry::names()) {
        SystemSpec spec;
        spec.name = name;
        const auto system = Registry::build(spec, model, kHw);
        ASSERT_NE(system, nullptr) << name;
        EXPECT_EQ(system->name().empty(), false) << name;
        EXPECT_EQ(system->description().empty(), false) << name;
        const RunResult result = system->simulate(dataset, stats, 2);
        EXPECT_GT(result.seconds_per_iteration, 0.0) << name;
        EXPECT_EQ(result.system_name, system->name()) << name;
        EXPECT_EQ(result.iterations, 2u) << name;
    }
}

void
expectIdentical(const RunResult &a, const RunResult &b)
{
    EXPECT_EQ(a.system_name, b.system_name);
    EXPECT_EQ(a.iterations, b.iterations);
    EXPECT_EQ(a.seconds_per_iteration, b.seconds_per_iteration);
    EXPECT_EQ(a.hit_rate, b.hit_rate);
    EXPECT_EQ(a.gpu_bytes, b.gpu_bytes);
    EXPECT_EQ(a.bottleneck, b.bottleneck);
    EXPECT_EQ(a.busy.iteration_seconds, b.busy.iteration_seconds);
    EXPECT_EQ(a.busy.cpu_busy_seconds, b.busy.cpu_busy_seconds);
    EXPECT_EQ(a.busy.gpu_busy_seconds, b.busy.gpu_busy_seconds);
    ASSERT_EQ(a.breakdown.stages().size(), b.breakdown.stages().size());
    for (size_t i = 0; i < a.breakdown.stages().size(); ++i) {
        EXPECT_EQ(a.breakdown.stages()[i].name,
                  b.breakdown.stages()[i].name);
        EXPECT_EQ(a.breakdown.stages()[i].seconds,
                  b.breakdown.stages()[i].seconds);
    }
}

TEST(Registry, RunnerBitIdenticalToDirectBuildForAllFiveSystems)
{
    // The ExperimentRunner convenience path must charge exactly what a
    // hand-built Registry system does over an equivalent workload
    // (this parity test previously pinned the registry against the
    // removed simulateSystem shim).
    ExperimentOptions options;
    options.iterations = 3;
    options.warmup = 1;
    const ExperimentRunner runner(smallModel(), kHw, options);
    constexpr double kFraction = 0.05;
    for (const auto &name : Registry::names()) {
        SystemSpec spec;
        spec.name = name;
        if (Registry::entry(name).uses_cache_fraction)
            spec.cache_fraction = kFraction;

        const RunResult via_runner = runner.run(spec);
        const auto system =
            Registry::build(spec, runner.model(), runner.hardware());
        const RunResult direct =
            system->simulate(runner.dataset(), runner.stats(), 3, 1);

        SCOPED_TRACE(name);
        expectIdentical(via_runner, direct);
    }
}

TEST(ExperimentRunner, SharesOneWorkloadAcrossSystems)
{
    ExperimentOptions options;
    options.iterations = 3;
    options.warmup = 1;
    const ExperimentRunner runner(smallModel(), kHw, options);
    EXPECT_EQ(runner.dataset().numBatches(), 6u); // 1 + 3 + look-ahead
    const auto results = runner.runAll(
        {SystemSpec::parse("hybrid"), SystemSpec::parse("scratchpipe"),
         SystemSpec::parse("static:cache=0.1")});
    ASSERT_EQ(results.size(), 3u);
    EXPECT_EQ(results[0].system_name, "Hybrid CPU-GPU");
    EXPECT_EQ(results[1].system_name, "ScratchPipe");
    EXPECT_EQ(results[2].system_name, "Static cache");
}

TEST(ExperimentRunner, ParallelMatchesSequential)
{
    ExperimentOptions sequential;
    sequential.iterations = 3;
    sequential.warmup = 1;
    ExperimentOptions parallel = sequential;
    parallel.jobs = 0; // all cores

    const std::vector<SystemSpec> specs = {
        SystemSpec::parse("hybrid"), SystemSpec::parse("static:cache=0.1"),
        SystemSpec::parse("strawman"), SystemSpec::parse("scratchpipe"),
        SystemSpec::parse("multigpu")};
    const auto a =
        ExperimentRunner(smallModel(), kHw, sequential).runAll(specs);
    const auto b =
        ExperimentRunner(smallModel(), kHw, parallel).runAll(specs);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        SCOPED_TRACE(specs[i].name);
        expectIdentical(a[i], b[i]);
    }
}

TEST(ExperimentRunner, BadSpecFailsFast)
{
    ExperimentOptions options;
    options.iterations = 2;
    const ExperimentRunner runner(smallModel(), kHw, options);
    EXPECT_THROW(runner.run("hybrid:cache=0.1"), FatalError);
    EXPECT_THROW(runner.run("scratchpip"), FatalError);
}

TEST(RunResultJson, EmitsValidJson)
{
    ExperimentOptions options;
    options.iterations = 2;
    options.warmup = 1;
    const ExperimentRunner runner(smallModel(), kHw, options);
    const auto results = runner.runAll(
        {SystemSpec::parse("hybrid"), SystemSpec::parse("scratchpipe")});

    const std::string object = results[1].toJson();
    EXPECT_TRUE(validJson(object)) << object;
    EXPECT_NE(object.find("\"system\":\"ScratchPipe\""),
              std::string::npos);
    EXPECT_NE(object.find("\"bottleneck\""), std::string::npos);

    const std::string array = toJson(results);
    EXPECT_TRUE(validJson(array)) << array;
    // hybrid has no cache: hit_rate must serialise as null.
    EXPECT_NE(array.find("\"hit_rate\":null"), std::string::npos);
}

TEST(RunResultJson, EscapesStrings)
{
    RunResult result;
    result.system_name = "we\"ird\\name";
    result.bottleneck = "tab\there";
    const std::string json = result.toJson();
    EXPECT_TRUE(validJson(json)) << json;
    EXPECT_NE(json.find("we\\\"ird\\\\name"), std::string::npos);
}

} // namespace
} // namespace sp::sys
