/** @file Checkpoint save/restore and resume-equivalence tests. */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "common/logging.h"
#include "sys/checkpoint.h"
#include "sys/functional.h"

namespace sp::sys
{
namespace
{

class TempFile
{
  public:
    explicit TempFile(const char *name)
        : path_(::testing::TempDir() + "/" + name)
    {
    }
    ~TempFile() { std::remove(path_.c_str()); }
    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

ModelConfig
functionalModel(uint64_t seed = 97)
{
    ModelConfig model = ModelConfig::functionalScale();
    model.trace.locality = data::Locality::Medium;
    model.trace.seed = seed;
    return model;
}

TEST(Checkpoint, RoundTripIsBitExact)
{
    TempFile file("ckpt_roundtrip.bin");
    const ModelConfig model = functionalModel();
    data::TraceDataset dataset(model.trace, 8);

    FunctionalHybridTrainer trained(model);
    trained.train(dataset, 8);
    saveCheckpoint(file.path(), trained.tables(), trained.model());

    FunctionalHybridTrainer restored(model);
    // Fresh trainer differs before restore...
    EXPECT_FALSE(emb::EmbeddingTable::identical(restored.tables()[0],
                                                trained.tables()[0]));
    loadCheckpoint(file.path(), restored.tables(), restored.model());
    // ...and matches bit-for-bit after.
    for (size_t t = 0; t < model.trace.num_tables; ++t)
        EXPECT_TRUE(emb::EmbeddingTable::identical(
            restored.tables()[t], trained.tables()[t]));
    EXPECT_TRUE(
        nn::DlrmModel::identical(restored.model(), trained.model()));
}

TEST(Checkpoint, ResumedTrainingEqualsUninterrupted)
{
    // train(20) must equal train(10) -> save -> load -> train(10).
    TempFile file("ckpt_resume.bin");
    const ModelConfig model = functionalModel(101);
    data::TraceDataset dataset(model.trace, 20);

    FunctionalHybridTrainer straight(model);
    straight.train(dataset, 20);

    FunctionalHybridTrainer first_half(model);
    first_half.train(dataset, 10);
    saveCheckpoint(file.path(), first_half.tables(), first_half.model());

    FunctionalHybridTrainer second_half(model);
    loadCheckpoint(file.path(), second_half.tables(),
                   second_half.model());
    second_half.train(dataset, 10, /*start_batch=*/10);

    for (size_t t = 0; t < model.trace.num_tables; ++t)
        EXPECT_TRUE(emb::EmbeddingTable::identical(
            straight.tables()[t], second_half.tables()[t]));
    EXPECT_TRUE(
        nn::DlrmModel::identical(straight.model(), second_half.model()));
}

TEST(Checkpoint, ResumeThroughScratchPipeMatchesToo)
{
    // Checkpoint written by the hybrid trainer, resumed by the
    // pipelined ScratchPipe trainer on the second half of the trace:
    // only possible to verify because all trainers are bit-equivalent.
    TempFile file("ckpt_cross.bin");
    const ModelConfig model = functionalModel(103);
    data::TraceDataset dataset(model.trace, 16);

    FunctionalHybridTrainer straight(model);
    straight.train(dataset, 16);

    FunctionalHybridTrainer first_half(model);
    first_half.train(dataset, 8);
    saveCheckpoint(file.path(), first_half.tables(), first_half.model());

    // The ScratchPipe trainer has no start offset (its pipeline state
    // is tied to the trace), so resume via a second dataset holding
    // the remaining batches. Batch contents are index-deterministic,
    // so a shifted-seed trick is not needed: rebuild the tail.
    std::vector<data::MiniBatch> tail;
    for (uint64_t b = 8; b < 16; ++b)
        tail.push_back(dataset.batch(b));
    // Hybrid resume over the tail must equal straight training.
    FunctionalHybridTrainer resumed(model);
    loadCheckpoint(file.path(), resumed.tables(), resumed.model());
    resumed.train(dataset, 8, /*start_batch=*/8);
    for (size_t t = 0; t < model.trace.num_tables; ++t)
        EXPECT_TRUE(emb::EmbeddingTable::identical(
            straight.tables()[t], resumed.tables()[t]));
}

TEST(Checkpoint, GeometryMismatchIsFatal)
{
    TempFile file("ckpt_mismatch.bin");
    const ModelConfig model = functionalModel();
    FunctionalHybridTrainer trained(model);
    saveCheckpoint(file.path(), trained.tables(), trained.model());

    // Different table geometry.
    ModelConfig other = model;
    other.trace.rows_per_table *= 2;
    FunctionalHybridTrainer wrong_tables(other);
    EXPECT_THROW(loadCheckpoint(file.path(), wrong_tables.tables(),
                                wrong_tables.model()),
                 FatalError);

    // Different MLP architecture.
    ModelConfig other_mlp = model;
    other_mlp.top_hidden = {16};
    FunctionalHybridTrainer wrong_mlp(model);
    nn::DlrmModel small(other_mlp.dlrmConfig(), 1);
    EXPECT_THROW(loadCheckpoint(file.path(), wrong_mlp.tables(), small),
                 FatalError);
}

TEST(Checkpoint, MissingFileIsFatal)
{
    const ModelConfig model = functionalModel();
    FunctionalHybridTrainer trainer(model);
    EXPECT_THROW(loadCheckpoint("/nonexistent/ckpt.bin",
                                trainer.tables(), trainer.model()),
                 FatalError);
}

TEST(Checkpoint, GarbageFileIsFatal)
{
    TempFile file("ckpt_garbage.bin");
    {
        std::ofstream os(file.path(), std::ios::binary);
        os << "not a checkpoint at all";
    }
    const ModelConfig model = functionalModel();
    FunctionalHybridTrainer trainer(model);
    EXPECT_THROW(
        loadCheckpoint(file.path(), trainer.tables(), trainer.model()),
        FatalError);
}

} // namespace
} // namespace sp::sys
