/** @file Discrete-event queue ordering and clock tests. */

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <vector>

#include "common/logging.h"
#include "sim/event_queue.h"

namespace sp::sim
{
namespace
{

TEST(EventQueue, StartsAtTimeZero)
{
    EventQueue queue;
    EXPECT_DOUBLE_EQ(queue.now(), 0.0);
    EXPECT_EQ(queue.pending(), 0u);
    EXPECT_FALSE(queue.runNext());
}

TEST(EventQueue, ExecutesInTimeOrder)
{
    EventQueue queue;
    std::vector<int> order;
    queue.schedule(3.0, [&] { order.push_back(3); });
    queue.schedule(1.0, [&] { order.push_back(1); });
    queue.schedule(2.0, [&] { order.push_back(2); });
    queue.runAll();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_DOUBLE_EQ(queue.now(), 3.0);
}

TEST(EventQueue, TiesFireInSchedulingOrder)
{
    EventQueue queue;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        queue.schedule(1.0, [&order, i] { order.push_back(i); });
    queue.runAll();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, CallbacksMayScheduleMoreEvents)
{
    EventQueue queue;
    int fired = 0;
    queue.schedule(1.0, [&] {
        ++fired;
        queue.scheduleAfter(1.0, [&] { ++fired; });
    });
    queue.runAll();
    EXPECT_EQ(fired, 2);
    EXPECT_DOUBLE_EQ(queue.now(), 2.0);
}

TEST(EventQueue, ScheduleAfterUsesCurrentTime)
{
    EventQueue queue;
    double fire_time = -1.0;
    queue.schedule(5.0, [&] {
        queue.scheduleAfter(2.5, [&] { fire_time = queue.now(); });
    });
    queue.runAll();
    EXPECT_DOUBLE_EQ(fire_time, 7.5);
}

TEST(EventQueue, RunUntilStopsAtDeadline)
{
    EventQueue queue;
    int fired = 0;
    queue.schedule(1.0, [&] { ++fired; });
    queue.schedule(10.0, [&] { ++fired; });
    queue.runUntil(5.0);
    EXPECT_EQ(fired, 1);
    EXPECT_DOUBLE_EQ(queue.now(), 5.0);
    EXPECT_EQ(queue.pending(), 1u);
}

TEST(EventQueue, SchedulingIntoPastPanics)
{
    EventQueue queue;
    queue.schedule(2.0, [] {});
    queue.runAll();
    EXPECT_THROW(queue.schedule(1.0, [] {}), PanicError);
    EXPECT_THROW(queue.scheduleAfter(-0.5, [] {}), PanicError);
}

TEST(EventQueue, NonFiniteTimesPanic)
{
    // Regression: NaN slipped past `when < now_` (every comparison
    // with NaN is false) and poisoned the priority queue's ordering;
    // +/-inf never fires / fires everything. All three must be
    // rejected at the door, for both entry points.
    const double nan = std::numeric_limits<double>::quiet_NaN();
    const double inf = std::numeric_limits<double>::infinity();
    EventQueue queue;
    EXPECT_THROW(queue.schedule(nan, [] {}), PanicError);
    EXPECT_THROW(queue.schedule(inf, [] {}), PanicError);
    EXPECT_THROW(queue.schedule(-inf, [] {}), PanicError);
    EXPECT_THROW(queue.scheduleAfter(nan, [] {}), PanicError);
    EXPECT_THROW(queue.scheduleAfter(inf, [] {}), PanicError);
    EXPECT_THROW(queue.scheduleAfter(-inf, [] {}), PanicError);
    // The queue stays usable after the rejections.
    int fired = 0;
    queue.schedule(1.0, [&] { ++fired; });
    queue.runAll();
    EXPECT_EQ(fired, 1);
}

TEST(EventQueue, ExecutedCountAccumulates)
{
    EventQueue queue;
    for (int i = 0; i < 7; ++i)
        queue.schedule(static_cast<double>(i), [] {});
    queue.runAll();
    EXPECT_EQ(queue.executedCount(), 7u);
}

TEST(EventQueue, SimulatesLinkContention)
{
    // Two transfers share a 1 B/s link via sequential scheduling:
    // the second starts when the first completes.
    EventQueue queue;
    double link_free_at = 0.0;
    std::vector<double> completions;
    auto send = [&](double bytes) {
        const double start = std::max(queue.now(), link_free_at);
        const double done = start + bytes;
        link_free_at = done;
        queue.schedule(done, [&, done] { completions.push_back(done); });
    };
    send(3.0);
    send(2.0);
    queue.runAll();
    ASSERT_EQ(completions.size(), 2u);
    EXPECT_DOUBLE_EQ(completions[0], 3.0);
    EXPECT_DOUBLE_EQ(completions[1], 5.0);
}

} // namespace
} // namespace sp::sim
