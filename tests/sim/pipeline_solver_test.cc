/** @file Steady-state pipeline solver tests. */

#include <gtest/gtest.h>

#include "common/logging.h"
#include "sim/pipeline_solver.h"

namespace sp::sim
{
namespace
{

StageDemand
cpuStage(const std::string &name, double seconds, double overhead = 0.0)
{
    StageDemand stage;
    stage.name = name;
    stage.demand[Resource::CpuDram] = seconds;
    stage.overhead = overhead;
    return stage;
}

StageDemand
gpuStage(const std::string &name, double seconds)
{
    StageDemand stage;
    stage.name = name;
    stage.demand[Resource::GpuCompute] = seconds;
    return stage;
}

TEST(PipelineSolver, SlowestStageBinds)
{
    std::vector<StageDemand> stages = {cpuStage("a", 1.0),
                                       gpuStage("b", 3.0)};
    const auto solution = solvePipeline(stages);
    EXPECT_DOUBLE_EQ(solution.cycle_time, 3.0);
    EXPECT_EQ(solution.bottleneck, "b");
}

TEST(PipelineSolver, SharedResourceSumsAcrossStages)
{
    // Two stages each need 2 s of the same resource: the cycle must
    // fit both, so the resource bound (4 s) dominates the stage bound.
    std::vector<StageDemand> stages = {cpuStage("a", 2.0),
                                       cpuStage("b", 2.0)};
    const auto solution = solvePipeline(stages);
    EXPECT_DOUBLE_EQ(solution.cycle_time, 4.0);
    EXPECT_EQ(solution.bottleneck, "resource:cpu_dram");
}

TEST(PipelineSolver, IndependentResourcesOverlap)
{
    std::vector<StageDemand> stages = {cpuStage("a", 2.0),
                                       gpuStage("b", 2.0)};
    const auto solution = solvePipeline(stages);
    EXPECT_DOUBLE_EQ(solution.cycle_time, 2.0);
}

TEST(PipelineSolver, OverheadAddsToStageLatency)
{
    std::vector<StageDemand> stages = {cpuStage("a", 1.0, 0.5)};
    const auto solution = solvePipeline(stages);
    EXPECT_DOUBLE_EQ(solution.cycle_time, 1.5);
    EXPECT_DOUBLE_EQ(solution.stage_latencies[0], 1.5);
}

TEST(PipelineSolver, StageLatenciesReported)
{
    std::vector<StageDemand> stages = {cpuStage("a", 1.0),
                                       gpuStage("b", 2.0),
                                       cpuStage("c", 0.5)};
    const auto solution = solvePipeline(stages);
    ASSERT_EQ(solution.stage_latencies.size(), 3u);
    EXPECT_DOUBLE_EQ(solution.stage_latencies[0], 1.0);
    EXPECT_DOUBLE_EQ(solution.stage_latencies[1], 2.0);
    EXPECT_DOUBLE_EQ(solution.stage_latencies[2], 0.5);
}

TEST(PipelineSolver, PipeliningBeatsSequentialExecution)
{
    std::vector<StageDemand> stages = {cpuStage("a", 1.0),
                                       gpuStage("b", 1.0)};
    const auto solution = solvePipeline(stages);
    EXPECT_LT(solution.cycle_time, sequentialIterationTime(stages));
}

TEST(PipelineSolver, PipelineNeverFasterThanResourceLimit)
{
    // Whatever the structure, the cycle cannot beat the busiest
    // resource's total demand.
    std::vector<StageDemand> stages = {cpuStage("a", 1.0),
                                       cpuStage("b", 0.25),
                                       gpuStage("c", 0.5)};
    const auto solution = solvePipeline(stages);
    EXPECT_GE(solution.cycle_time, 1.25);
}

TEST(PipelineSolver, TotalTimeIncludesFill)
{
    std::vector<StageDemand> stages = {cpuStage("a", 1.0),
                                       gpuStage("b", 2.0)};
    const auto solution = solvePipeline(stages);
    // Fill = 3.0, then 9 more cycles of 2.0.
    EXPECT_DOUBLE_EQ(pipelineTotalTime(solution, stages, 10), 21.0);
    EXPECT_DOUBLE_EQ(pipelineTotalTime(solution, stages, 1), 3.0);
    EXPECT_DOUBLE_EQ(pipelineTotalTime(solution, stages, 0), 0.0);
}

TEST(PipelineSolver, SequentialIsSumOfLatencies)
{
    std::vector<StageDemand> stages = {cpuStage("a", 1.0, 0.1),
                                       gpuStage("b", 2.0)};
    EXPECT_DOUBLE_EQ(sequentialIterationTime(stages), 3.1);
}

TEST(PipelineSolver, EmptyPipelineFatal)
{
    std::vector<StageDemand> stages;
    EXPECT_THROW(solvePipeline(stages), FatalError);
}

TEST(PipelineSolver, SixStagePaperShape)
{
    // A ScratchPipe-like shape: Train on the GPU dominates stage-wise,
    // but CPU work spread over Collect+Insert can become the resource
    // bound -- exactly the crossover the paper's Fig. 12(b) shows
    // between high- and low-locality traces.
    auto pcie_stage = [](const std::string &name, double seconds) {
        StageDemand stage;
        stage.name = name;
        stage.demand[Resource::PcieH2D] = seconds;
        return stage;
    };
    std::vector<StageDemand> low_locality = {
        cpuStage("Load", 0.001), cpuStage("Plan", 0.002),
        cpuStage("Collect", 0.020), pcie_stage("Exchange", 0.009),
        cpuStage("Insert", 0.020), gpuStage("Train", 0.021)};
    const auto low = solvePipeline(low_locality);
    EXPECT_EQ(low.bottleneck, "resource:cpu_dram");
    EXPECT_NEAR(low.cycle_time, 0.043, 1e-9);

    std::vector<StageDemand> high_locality = {
        cpuStage("Load", 0.001), cpuStage("Plan", 0.002),
        cpuStage("Collect", 0.004), pcie_stage("Exchange", 0.002),
        cpuStage("Insert", 0.004), gpuStage("Train", 0.021)};
    const auto high = solvePipeline(high_locality);
    EXPECT_EQ(high.bottleneck, "Train");
}

} // namespace
} // namespace sp::sim
