/** @file HardwareConfig preset and validation tests. */

#include <gtest/gtest.h>

#include "common/logging.h"
#include "sim/hardware_config.h"

namespace sp::sim
{
namespace
{

TEST(HardwareConfig, PaperTestbedConstants)
{
    const HardwareConfig hw = HardwareConfig::paperTestbed();
    // Section V: Xeon E5-2698v4 (76.8 GB/s), V100 (900 GB/s, 32 GB),
    // PCIe gen3 (16 GB/s).
    EXPECT_DOUBLE_EQ(hw.cpu_dram_bw, 76.8e9);
    EXPECT_DOUBLE_EQ(hw.gpu_hbm_bw, 900e9);
    EXPECT_DOUBLE_EQ(hw.pcie_bw, 16e9);
    EXPECT_EQ(hw.multi_gpu_count, 8);
    EXPECT_NO_THROW(hw.validate());
}

TEST(HardwareConfig, EffectiveRatesDerated)
{
    const HardwareConfig hw = HardwareConfig::paperTestbed();
    EXPECT_LT(hw.cpuSparseBwFramework(), hw.cpuDenseBw());
    EXPECT_LT(hw.cpuDenseBw(), hw.cpu_dram_bw);
    EXPECT_LT(hw.gpuSparseBw(), hw.gpuDenseBw());
    EXPECT_LT(hw.gpuGemmFlops(), hw.gpu_fp32_flops);
    EXPECT_LT(hw.pcieEffectiveBw(), hw.pcie_bw);
}

TEST(HardwareConfig, RuntimeGatherBeatsFrameworkGather)
{
    // ScratchPipe's batched collect path must be modeled as faster
    // than the framework's per-op gather path, never slower.
    const HardwareConfig hw = HardwareConfig::paperTestbed();
    EXPECT_GT(hw.cpuSparseBwRuntime(), hw.cpuSparseBwFramework());
}

TEST(HardwareConfig, GpuMemoryDwarfsCpuMemory)
{
    const HardwareConfig hw = HardwareConfig::paperTestbed();
    // The premise of the paper: HBM delivers an order of magnitude
    // more bandwidth than the CPU DIMMs.
    EXPECT_GT(hw.gpu_hbm_bw / hw.cpu_dram_bw, 10.0);
}

TEST(HardwareConfig, ValidationCatchesBadEfficiency)
{
    HardwareConfig hw;
    hw.cpu_dense_eff = 1.5;
    EXPECT_THROW(hw.validate(), FatalError);
    hw = HardwareConfig{};
    hw.gpu_gemm_eff = 0.0;
    EXPECT_THROW(hw.validate(), FatalError);
}

TEST(HardwareConfig, ValidationCatchesBadBandwidth)
{
    HardwareConfig hw;
    hw.pcie_bw = -1.0;
    EXPECT_THROW(hw.validate(), FatalError);
}

TEST(HardwareConfig, ValidationCatchesNegativeOverhead)
{
    HardwareConfig hw;
    hw.gpu_iteration_overhead = -0.001;
    EXPECT_THROW(hw.validate(), FatalError);
}

TEST(HardwareConfig, ValidationCatchesPowerInversion)
{
    HardwareConfig hw;
    hw.cpu_idle_watts = hw.cpu_active_watts + 1.0;
    EXPECT_THROW(hw.validate(), FatalError);
}

TEST(HardwareConfig, ValidationCatchesZeroGpus)
{
    HardwareConfig hw;
    hw.multi_gpu_count = 0;
    EXPECT_THROW(hw.validate(), FatalError);
}

} // namespace
} // namespace sp::sim
