/** @file LatencyModel arithmetic and demand-combination tests. */

#include <gtest/gtest.h>

#include "emb/traffic.h"
#include "sim/latency_model.h"

namespace sp::sim
{
namespace
{

using CpuPath = LatencyModel::CpuPath;

HardwareConfig
simpleHw()
{
    HardwareConfig hw;
    hw.cpu_dram_bw = 100e9;
    hw.cpu_sparse_eff_framework = 0.05;
    hw.cpu_sparse_eff_runtime = 0.10;
    hw.cpu_dense_eff = 0.50;
    hw.gpu_hbm_bw = 1000e9;
    hw.gpu_sparse_eff = 0.50;
    hw.gpu_dense_eff = 1.0;
    hw.gpu_fp32_flops = 10e12;
    hw.gpu_gemm_eff = 0.10;
    hw.pcie_bw = 10e9;
    hw.pcie_eff = 1.0;
    hw.pcie_latency = 0.0;
    return hw;
}

TEST(LatencyModel, CpuTimeSplitsByPattern)
{
    const LatencyModel model(simpleHw());
    emb::Traffic t;
    t.sparse_read_bytes = 5e9; // at 5 GB/s -> 1 s
    t.dense_read_bytes = 50e9; // at 50 GB/s -> 1 s
    EXPECT_NEAR(model.cpuTime(t, CpuPath::Framework), 2.0, 1e-9);
}

TEST(LatencyModel, RuntimePathFasterForSparse)
{
    const LatencyModel model(simpleHw());
    emb::Traffic t;
    t.sparse_read_bytes = 1e9;
    EXPECT_NEAR(model.cpuTime(t, CpuPath::Framework) /
                    model.cpuTime(t, CpuPath::Runtime),
                2.0, 1e-9);
}

TEST(LatencyModel, GpuMemTime)
{
    const LatencyModel model(simpleHw());
    emb::Traffic t;
    t.sparse_write_bytes = 500e9; // at 500 GB/s -> 1 s
    t.dense_write_bytes = 1000e9; // at 1 TB/s -> 1 s
    EXPECT_NEAR(model.gpuMemTime(t), 2.0, 1e-9);
}

TEST(LatencyModel, GpuComputeTime)
{
    const LatencyModel model(simpleHw());
    EXPECT_NEAR(model.gpuComputeTime(1e12), 1.0, 1e-9); // 1 TFLOP at 1 TF/s
}

TEST(LatencyModel, PcieTimeIncludesLatency)
{
    HardwareConfig hw = simpleHw();
    hw.pcie_latency = 0.5;
    const LatencyModel model(hw);
    EXPECT_NEAR(model.pcieTime(10e9), 1.5, 1e-9);
    EXPECT_DOUBLE_EQ(model.pcieTime(0.0), 0.0); // no transfer, no launch
}

TEST(LatencyModel, DemandPlacesTimeOnRightResource)
{
    const LatencyModel model(simpleHw());
    emb::Traffic t;
    t.dense_read_bytes = 50e9;
    const ResourceDemand cpu = model.cpuDemand(t, CpuPath::Framework);
    EXPECT_GT(cpu[Resource::CpuDram], 0.0);
    EXPECT_DOUBLE_EQ(cpu[Resource::GpuHbm], 0.0);

    const ResourceDemand h2d = model.pcieH2DDemand(1e9);
    EXPECT_GT(h2d[Resource::PcieH2D], 0.0);
    EXPECT_DOUBLE_EQ(h2d[Resource::PcieD2H], 0.0);
}

TEST(LatencyModel, DemandAddition)
{
    ResourceDemand a, b;
    a[Resource::CpuDram] = 1.0;
    b[Resource::CpuDram] = 2.0;
    b[Resource::GpuHbm] = 3.0;
    const ResourceDemand sum = a + b;
    EXPECT_DOUBLE_EQ(sum[Resource::CpuDram], 3.0);
    EXPECT_DOUBLE_EQ(sum[Resource::GpuHbm], 3.0);
}

TEST(LatencyModel, StageLatencyOverlapsDevices)
{
    // CPU work and PCIe overlap; GPU mem + compute serialize.
    ResourceDemand d;
    d[Resource::CpuDram] = 2.0;
    d[Resource::PcieH2D] = 1.5;
    EXPECT_DOUBLE_EQ(d.stageLatency(), 2.0);

    ResourceDemand gpu;
    gpu[Resource::GpuHbm] = 1.0;
    gpu[Resource::GpuCompute] = 1.0;
    EXPECT_DOUBLE_EQ(gpu.stageLatency(), 2.0);
}

TEST(LatencyModel, TotalBusySumsEverything)
{
    ResourceDemand d;
    d[Resource::CpuDram] = 1.0;
    d[Resource::GpuHbm] = 2.0;
    d[Resource::NvLink] = 0.5;
    EXPECT_DOUBLE_EQ(d.totalBusy(), 3.5);
}

TEST(LatencyModel, ResourceNamesDistinct)
{
    for (size_t i = 0; i < kNumResources; ++i) {
        for (size_t j = i + 1; j < kNumResources; ++j) {
            EXPECT_STRNE(resourceName(static_cast<Resource>(i)),
                         resourceName(static_cast<Resource>(j)));
        }
    }
}

TEST(LatencyModel, NvlinkIncludesCollectiveLatency)
{
    HardwareConfig hw = simpleHw();
    hw.nvlink_bw = 100e9;
    hw.nvlink_eff = 1.0;
    hw.collective_latency = 0.25;
    const LatencyModel model(hw);
    EXPECT_NEAR(model.nvlinkTime(100e9), 1.25, 1e-9);
}

} // namespace
} // namespace sp::sim
