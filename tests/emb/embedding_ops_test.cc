/** @file Gather/reduce/coalesce/scatter kernel tests (paper Fig. 2). */

#include <gtest/gtest.h>

#include <vector>

#include "common/logging.h"
#include "emb/embedding_ops.h"

namespace sp::emb
{
namespace
{

EmbeddingTable
rampTable(uint32_t rows, size_t dim)
{
    EmbeddingTable table(rows, dim);
    for (uint32_t r = 0; r < rows; ++r)
        for (size_t d = 0; d < dim; ++d)
            table.row(r)[d] = static_cast<float>(r) + 0.1f * d;
    return table;
}

TEST(EmbeddingOps, GatherCopiesRows)
{
    auto table = rampTable(10, 3);
    const std::vector<uint64_t> ids = {7, 0, 7, 3};
    tensor::Matrix out(4, 3);
    gather(table, ids, out);
    EXPECT_FLOAT_EQ(out(0, 0), 7.0f);
    EXPECT_FLOAT_EQ(out(1, 0), 0.0f);
    EXPECT_FLOAT_EQ(out(2, 2), 7.2f);
    EXPECT_FLOAT_EQ(out(3, 1), 3.1f);
}

TEST(EmbeddingOps, GatherShapeChecked)
{
    auto table = rampTable(10, 3);
    const std::vector<uint64_t> ids = {1, 2};
    tensor::Matrix wrong(3, 3);
    EXPECT_THROW(gather(table, ids, wrong), PanicError);
}

TEST(EmbeddingOps, ReduceSumsGroups)
{
    tensor::Matrix gathered(4, 2);
    gathered(0, 0) = 1.0f;
    gathered(1, 0) = 2.0f;
    gathered(2, 0) = 10.0f;
    gathered(3, 0) = 20.0f;
    tensor::Matrix out(2, 2);
    reduceSum(gathered, 2, out);
    EXPECT_FLOAT_EQ(out(0, 0), 3.0f);
    EXPECT_FLOAT_EQ(out(1, 0), 30.0f);
}

TEST(EmbeddingOps, ReduceRequiresDivisibleRows)
{
    tensor::Matrix gathered(5, 2), out(2, 2);
    EXPECT_THROW(reduceSum(gathered, 2, out), PanicError);
}

TEST(EmbeddingOps, GatherReduceMatchesTwoStep)
{
    auto table = rampTable(20, 4);
    const std::vector<uint64_t> ids = {3, 3, 9, 1, 0, 17};
    tensor::Matrix gathered(6, 4), two_step(2, 4), fused(2, 4);
    gather(table, ids, gathered);
    reduceSum(gathered, 3, two_step);
    gatherReduce(table, ids, 3, fused);
    EXPECT_TRUE(tensor::Matrix::identical(two_step, fused));
}

TEST(EmbeddingOps, PaperFigure2Example)
{
    // Fig. 2(a): batch 0 gathers rows {0,4}, batch 1 gathers {0,2,5}.
    // With sum reduction the outputs are E[0]+E[4] and E[0]+E[2]+E[5].
    // (Realised with equal lookup counts by padding sample 0 with a
    // repeat of row 0 -- the reduction semantics are what matters.)
    auto table = rampTable(6, 2);
    const std::vector<uint64_t> ids = {0, 4, 0, 2, 5, 0};
    tensor::Matrix out(2, 2);
    gatherReduce(table, ids, 3, out);
    EXPECT_FLOAT_EQ(out(0, 0), 0.0f + 4.0f + 0.0f);
    EXPECT_FLOAT_EQ(out(1, 0), 2.0f + 5.0f + 0.0f);
}

TEST(EmbeddingOps, CoalesceSumsDuplicates)
{
    // Two samples, two lookups each; row 5 used by both samples.
    const std::vector<uint64_t> ids = {5, 1, 5, 2};
    tensor::Matrix grads(2, 2);
    grads(0, 0) = 1.0f;
    grads(0, 1) = 10.0f;
    grads(1, 0) = 2.0f;
    grads(1, 1) = 20.0f;

    const auto coalesced = duplicateAndCoalesce(ids, grads, 2);
    ASSERT_EQ(coalesced.ids.size(), 3u);
    EXPECT_EQ(coalesced.ids[0], 1u);
    EXPECT_EQ(coalesced.ids[1], 2u);
    EXPECT_EQ(coalesced.ids[2], 5u);
    // Row 5 accumulates both samples' gradients.
    EXPECT_FLOAT_EQ(coalesced.grads(2, 0), 3.0f);
    EXPECT_FLOAT_EQ(coalesced.grads(2, 1), 30.0f);
    // Rows 1 and 2 get their single sample's gradient.
    EXPECT_FLOAT_EQ(coalesced.grads(0, 0), 1.0f);
    EXPECT_FLOAT_EQ(coalesced.grads(1, 0), 2.0f);
}

TEST(EmbeddingOps, CoalesceWithinSampleDuplicates)
{
    // The same row twice within one sample doubles its gradient.
    const std::vector<uint64_t> ids = {3, 3};
    tensor::Matrix grads(1, 1);
    grads(0, 0) = 1.5f;
    const auto coalesced = duplicateAndCoalesce(ids, grads, 2);
    ASSERT_EQ(coalesced.ids.size(), 1u);
    EXPECT_FLOAT_EQ(coalesced.grads(0, 0), 3.0f);
}

TEST(EmbeddingOps, CoalesceMatchesNaiveScatterAdd)
{
    tensor::Rng rng(77);
    const size_t batch = 16, lookups = 5, dim = 3;
    const uint32_t rows = 12;
    std::vector<uint64_t> ids(batch * lookups);
    for (auto &id : ids)
        id = static_cast<uint32_t>(rng.uniformInt(rows));
    tensor::Matrix grads(batch, dim);
    grads.fillNormal(rng, 1.0f);

    // Naive reference: accumulate every lookup into a full-table grid.
    std::vector<double> reference(rows * dim, 0.0);
    for (size_t i = 0; i < ids.size(); ++i) {
        const size_t sample = i / lookups;
        for (size_t d = 0; d < dim; ++d)
            reference[ids[i] * dim + d] += grads(sample, d);
    }

    const auto coalesced = duplicateAndCoalesce(ids, grads, lookups);
    for (size_t i = 0; i < coalesced.ids.size(); ++i) {
        for (size_t d = 0; d < dim; ++d) {
            EXPECT_NEAR(coalesced.grads(i, d),
                        reference[coalesced.ids[i] * dim + d], 1e-4)
                << "row " << coalesced.ids[i] << " dim " << d;
        }
    }
}

TEST(EmbeddingOps, CoalescedIdsStrictlyAscending)
{
    tensor::Rng rng(78);
    std::vector<uint64_t> ids(64);
    for (auto &id : ids)
        id = static_cast<uint32_t>(rng.uniformInt(10));
    tensor::Matrix grads(8, 2);
    const auto coalesced = duplicateAndCoalesce(ids, grads, 8);
    for (size_t i = 1; i < coalesced.ids.size(); ++i)
        EXPECT_LT(coalesced.ids[i - 1], coalesced.ids[i]);
}

TEST(EmbeddingOps, SgdScatterAppliesUpdateOncePerRow)
{
    auto table = rampTable(6, 2);
    CoalescedGradients coalesced;
    coalesced.ids = {2, 4};
    coalesced.grads.resize(2, 2);
    coalesced.grads(0, 0) = 1.0f;
    coalesced.grads(1, 1) = 2.0f;
    sgdScatter(table, coalesced, 0.5f);
    EXPECT_FLOAT_EQ(table.row(2)[0], 2.0f - 0.5f);
    EXPECT_FLOAT_EQ(table.row(4)[1], 4.1f - 1.0f);
    EXPECT_FLOAT_EQ(table.row(3)[0], 3.0f); // untouched
}

TEST(EmbeddingOps, FullBackwardEquivalentToPerLookupSgd)
{
    // Coalesce-then-scatter must equal applying every duplicated
    // gradient individually (the algorithmic identity the paper's
    // Fig. 2(b) pipeline relies on).
    auto table_a = rampTable(10, 2);
    auto table_b = rampTable(10, 2);
    const std::vector<uint64_t> ids = {1, 5, 5, 9, 1, 1};
    tensor::Matrix grads(2, 2);
    grads(0, 0) = 0.5f;
    grads(0, 1) = -1.0f;
    grads(1, 0) = 2.0f;
    grads(1, 1) = 0.25f;
    const float lr = 0.1f;

    sgdScatter(table_a, duplicateAndCoalesce(ids, grads, 3), lr);

    for (size_t i = 0; i < ids.size(); ++i) {
        const size_t sample = i / 3;
        for (size_t d = 0; d < 2; ++d)
            table_b.row(ids[i])[d] -= lr * grads(sample, d);
    }

    for (uint32_t r = 0; r < 10; ++r)
        for (size_t d = 0; d < 2; ++d)
            EXPECT_NEAR(table_a.row(r)[d], table_b.row(r)[d], 1e-5);
}

TEST(EmbeddingOps, CountUnique)
{
    const std::vector<uint64_t> ids = {4, 4, 1, 9, 1, 4};
    EXPECT_EQ(countUnique(ids), 3u);
    EXPECT_EQ(countUnique(std::vector<uint64_t>{}), 0u);
}

TEST(EmbeddingOps, UniqueIdsSorted)
{
    const std::vector<uint64_t> ids = {9, 2, 9, 0};
    const auto unique = uniqueIds(ids);
    ASSERT_EQ(unique.size(), 3u);
    EXPECT_EQ(unique[0], 0u);
    EXPECT_EQ(unique[1], 2u);
    EXPECT_EQ(unique[2], 9u);
}

TEST(EmbeddingOps, MismatchedIdCountPanics)
{
    tensor::Matrix grads(2, 2);
    const std::vector<uint64_t> ids = {1, 2, 3};
    EXPECT_THROW(duplicateAndCoalesce(ids, grads, 2), PanicError);
}

} // namespace
} // namespace sp::emb
