/** @file EmbeddingTable storage and backing tests. */

#include <gtest/gtest.h>

#include "common/logging.h"
#include "emb/embedding_table.h"

namespace sp::emb
{
namespace
{

TEST(EmbeddingTable, DenseGeometry)
{
    EmbeddingTable table(100, 8);
    EXPECT_EQ(table.rows(), 100u);
    EXPECT_EQ(table.dim(), 8u);
    EXPECT_EQ(table.rowBytes(), 32u);
    EXPECT_EQ(table.modelBytes(), 3200u);
    EXPECT_TRUE(table.isDense());
}

TEST(EmbeddingTable, DenseStartsZeroed)
{
    EmbeddingTable table(10, 4);
    for (uint32_t r = 0; r < 10; ++r)
        for (size_t d = 0; d < 4; ++d)
            EXPECT_EQ(table.row(r)[d], 0.0f);
}

TEST(EmbeddingTable, RowsAreWritable)
{
    EmbeddingTable table(10, 4);
    table.row(3)[2] = 7.5f;
    EXPECT_EQ(table.row(3)[2], 7.5f);
    EXPECT_EQ(table.row(3)[1], 0.0f);
    EXPECT_EQ(table.row(4)[2], 0.0f);
}

TEST(EmbeddingTable, RowsAreContiguousPerRow)
{
    EmbeddingTable table(10, 4);
    EXPECT_EQ(table.row(0) + 4, table.row(1));
}

TEST(EmbeddingTable, InitRandomIsDeterministic)
{
    EmbeddingTable a(50, 8), b(50, 8);
    tensor::Rng ra(5), rb(5);
    a.initRandom(ra, 0.1f);
    b.initRandom(rb, 0.1f);
    EXPECT_TRUE(EmbeddingTable::identical(a, b));
}

TEST(EmbeddingTable, PhantomHasGeometryButNoStorage)
{
    EmbeddingTable table(10'000'000, 128,
                         EmbeddingTable::Backing::Phantom);
    EXPECT_FALSE(table.isDense());
    EXPECT_EQ(table.modelBytes(), 10'000'000ull * 512);
    EXPECT_THROW(table.row(0), PanicError);
}

TEST(EmbeddingTable, PhantomInitFatal)
{
    EmbeddingTable table(100, 8, EmbeddingTable::Backing::Phantom);
    tensor::Rng rng(1);
    EXPECT_THROW(table.initRandom(rng, 0.1f), FatalError);
}

TEST(EmbeddingTable, OutOfRangeRowPanics)
{
    EmbeddingTable table(10, 4);
    EXPECT_THROW(table.row(10), PanicError);
}

TEST(EmbeddingTable, HugeDenseTableRefused)
{
    EXPECT_THROW(EmbeddingTable(10'000'000'000ull, 128,
                                EmbeddingTable::Backing::Dense),
                 FatalError);
}

TEST(EmbeddingTable, IdenticalDetectsDifference)
{
    EmbeddingTable a(10, 4), b(10, 4);
    EXPECT_TRUE(EmbeddingTable::identical(a, b));
    b.row(7)[1] = 1e-20f;
    EXPECT_FALSE(EmbeddingTable::identical(a, b));
}

TEST(EmbeddingTable, InvalidGeometryFatal)
{
    EXPECT_THROW(EmbeddingTable(0, 4), FatalError);
    EXPECT_THROW(EmbeddingTable(4, 0), FatalError);
}

} // namespace
} // namespace sp::emb
