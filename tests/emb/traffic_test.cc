/** @file Traffic-accounting formula tests. */

#include <gtest/gtest.h>

#include "emb/traffic.h"

namespace sp::emb
{
namespace
{

constexpr size_t kRb = 512; // 128-dim float rows

TEST(Traffic, GatherMovesRowTwice)
{
    const Traffic t = gatherTraffic(100, kRb);
    EXPECT_DOUBLE_EQ(t.sparse_read_bytes, 100.0 * kRb);
    EXPECT_DOUBLE_EQ(t.dense_write_bytes, 100.0 * kRb);
    EXPECT_DOUBLE_EQ(t.sparse_write_bytes, 0.0);
    EXPECT_DOUBLE_EQ(t.totalBytes(), 200.0 * kRb);
}

TEST(Traffic, ReduceStreamsInAndOut)
{
    const Traffic t = reduceTraffic(100, 10, kRb);
    EXPECT_DOUBLE_EQ(t.dense_read_bytes, 100.0 * kRb);
    EXPECT_DOUBLE_EQ(t.dense_write_bytes, 10.0 * kRb);
    EXPECT_DOUBLE_EQ(t.sparseBytes(), 0.0);
}

TEST(Traffic, DuplicateExpandsGradients)
{
    const Traffic t = duplicateTraffic(10, 100, kRb);
    EXPECT_DOUBLE_EQ(t.dense_read_bytes, 10.0 * kRb);
    EXPECT_DOUBLE_EQ(t.dense_write_bytes, 100.0 * kRb);
}

TEST(Traffic, CoalesceIsOnePassPlusOutput)
{
    const Traffic t = coalesceTraffic(100, 60, kRb);
    EXPECT_DOUBLE_EQ(t.dense_read_bytes, 100.0 * kRb);
    EXPECT_DOUBLE_EQ(t.dense_write_bytes, 160.0 * kRb);
}

TEST(Traffic, ScatterIsReadModifyWrite)
{
    const Traffic t = scatterTraffic(60, kRb);
    EXPECT_DOUBLE_EQ(t.sparse_read_bytes, 60.0 * kRb);
    EXPECT_DOUBLE_EQ(t.sparse_write_bytes, 60.0 * kRb);
    EXPECT_DOUBLE_EQ(t.dense_read_bytes, 60.0 * kRb);
}

TEST(Traffic, ForwardComposition)
{
    const Traffic fwd = embeddingForwardTraffic(100, 10, kRb);
    const Traffic manual =
        gatherTraffic(100, kRb) + reduceTraffic(100, 10, kRb);
    EXPECT_DOUBLE_EQ(fwd.totalBytes(), manual.totalBytes());
    EXPECT_DOUBLE_EQ(fwd.sparseBytes(), manual.sparseBytes());
}

TEST(Traffic, BackwardComposition)
{
    const Traffic bwd = embeddingBackwardTraffic(100, 10, 60, kRb);
    const Traffic manual = duplicateTraffic(10, 100, kRb) +
                           coalesceTraffic(100, 60, kRb) +
                           scatterTraffic(60, kRb);
    EXPECT_DOUBLE_EQ(bwd.totalBytes(), manual.totalBytes());
}

TEST(Traffic, BackwardShrinksWithFewerUniques)
{
    // Higher duplication (fewer unique rows) means less scatter work.
    const Traffic many = embeddingBackwardTraffic(1000, 10, 900, kRb);
    const Traffic few = embeddingBackwardTraffic(1000, 10, 100, kRb);
    EXPECT_LT(few.totalBytes(), many.totalBytes());
    EXPECT_LT(few.sparseBytes(), many.sparseBytes());
}

TEST(Traffic, AccumulationOperator)
{
    Traffic total;
    total += gatherTraffic(10, kRb);
    total += gatherTraffic(20, kRb);
    EXPECT_DOUBLE_EQ(total.sparse_read_bytes, 30.0 * kRb);
    const Traffic sum = gatherTraffic(10, kRb) + gatherTraffic(20, kRb);
    EXPECT_DOUBLE_EQ(sum.sparse_read_bytes, 30.0 * kRb);
}

TEST(Traffic, ZeroCountsZeroBytes)
{
    EXPECT_DOUBLE_EQ(gatherTraffic(0, kRb).totalBytes(), 0.0);
    EXPECT_DOUBLE_EQ(scatterTraffic(0, kRb).totalBytes(), 0.0);
}

TEST(Traffic, PaperScaleGatherVolume)
{
    // Paper default: 8 tables x 20 lookups x 2048 batch x 512 B rows
    // = 167.8 MB of sparse reads per iteration.
    Traffic total;
    for (int t = 0; t < 8; ++t)
        total += gatherTraffic(20 * 2048, 512);
    EXPECT_NEAR(total.sparse_read_bytes, 167.8e6, 0.2e6);
}

} // namespace
} // namespace sp::emb
