/**
 * @file
 * The recoverable-error taxonomy (common/status.h): Status, Result,
 * StatusError and the failWith/failIf helpers. These types carry every
 * environmental failure in src/data, so their semantics -- what is ok,
 * what panics, what the classified message looks like -- are contract.
 */

#include <gtest/gtest.h>

#include <string>
#include <utility>

#include "common/status.h"

namespace sp
{
namespace
{

TEST(Status, DefaultConstructedIsOk)
{
    const Status status;
    EXPECT_TRUE(status.ok());
    EXPECT_EQ(status.code(), ErrorCode::Ok);
    EXPECT_EQ(status.message(), "");
    EXPECT_EQ(status.toString(), "ok");
}

TEST(Status, ErrorCarriesCodeAndMessage)
{
    const Status status =
        Status::error(ErrorCode::NoSpace, "disk full writing 'x'");
    EXPECT_FALSE(status.ok());
    EXPECT_EQ(status.code(), ErrorCode::NoSpace);
    EXPECT_EQ(status.message(), "disk full writing 'x'");
    EXPECT_EQ(status.toString(), "no-space: disk full writing 'x'");
}

TEST(Status, ErrorWithOkCodeIsAProgrammerError)
{
    EXPECT_THROW(Status::error(ErrorCode::Ok, "nope"), PanicError);
}

TEST(Status, CodeNamesAreStableKebabCase)
{
    // The names appear in JSON reports and log lines; renaming one is
    // a compatibility break, so pin every spelling.
    EXPECT_STREQ(errorCodeName(ErrorCode::Ok), "ok");
    EXPECT_STREQ(errorCodeName(ErrorCode::IoError), "io-error");
    EXPECT_STREQ(errorCodeName(ErrorCode::NoSpace), "no-space");
    EXPECT_STREQ(errorCodeName(ErrorCode::NotFound), "not-found");
    EXPECT_STREQ(errorCodeName(ErrorCode::Corrupt), "corrupt");
    EXPECT_STREQ(errorCodeName(ErrorCode::Truncated), "truncated");
    EXPECT_STREQ(errorCodeName(ErrorCode::VersionMismatch),
                 "version-mismatch");
    EXPECT_STREQ(errorCodeName(ErrorCode::Unsupported), "unsupported");
    EXPECT_STREQ(errorCodeName(ErrorCode::FaultInjected),
                 "fault-injected");
}

TEST(Result, HoldsValueOnSuccess)
{
    Result<int> result(41);
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(result.status().ok());
    EXPECT_EQ(result.value(), 41);
    result.value() = 42;
    EXPECT_EQ(std::move(result).take(), 42);
}

TEST(Result, HoldsStatusOnFailure)
{
    const Result<std::string> result(
        Status::error(ErrorCode::Truncated, "short read"));
    EXPECT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), ErrorCode::Truncated);
}

TEST(Result, ValueOnFailureIsAProgrammerError)
{
    Result<int> result(Status::error(ErrorCode::IoError, "bad"));
    EXPECT_THROW(result.value(), PanicError);
    EXPECT_THROW(std::move(result).take(), PanicError);
}

TEST(Result, OkStatusWithoutAValueIsAProgrammerError)
{
    // The cast defeats the vexing-parse reading of the construction
    // as a function declaration, so the temporary is really built.
    EXPECT_THROW((void)Result<int>(Status()), PanicError);
}

TEST(StatusError, CarriesStatusAndFormatsWhat)
{
    const StatusError error(
        Status::error(ErrorCode::Corrupt, "bad magic"));
    EXPECT_EQ(error.status().code(), ErrorCode::Corrupt);
    EXPECT_STREQ(error.what(), "corrupt: bad magic");
}

TEST(StatusError, IsCatchableAsFatalError)
{
    // Legacy recovery sites catch FatalError; StatusError must keep
    // travelling those paths.
    try {
        throw StatusError(
            Status::error(ErrorCode::NotFound, "no such trace"));
    } catch (const FatalError &error) {
        EXPECT_STREQ(error.what(), "not-found: no such trace");
        return;
    }
    FAIL() << "StatusError did not convert to FatalError";
}

TEST(StatusError, FailWithFormatsLikeTheLoggingLayer)
{
    try {
        failWith(ErrorCode::Truncated, "'", "t.sptrace",
                 "' cut at batch ", 7);
    } catch (const StatusError &error) {
        EXPECT_EQ(error.status().code(), ErrorCode::Truncated);
        EXPECT_EQ(error.status().message(),
                  "'t.sptrace' cut at batch 7");
        return;
    }
    FAIL() << "failWith did not throw StatusError";
}

TEST(StatusError, FailIfOnlyThrowsWhenTheConditionHolds)
{
    EXPECT_NO_THROW(failIf(false, ErrorCode::IoError, "unused"));
    EXPECT_THROW(failIf(true, ErrorCode::IoError, "boom"), StatusError);
}

} // namespace
} // namespace sp
