/** @file ArgParser unit tests. */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/args.h"
#include "common/logging.h"

namespace sp
{
namespace
{

ArgParser
makeParser()
{
    ArgParser args("test tool");
    args.addString("name", "default", "a string flag");
    args.addInt("count", 7, "an int flag");
    args.addDouble("rate", 0.5, "a double flag");
    args.addBool("verbose", "a switch");
    return args;
}

bool
parse(ArgParser &args, std::vector<const char *> argv)
{
    argv.insert(argv.begin(), "prog");
    return args.parse(static_cast<int>(argv.size()), argv.data());
}

TEST(Args, DefaultsApplyWithoutFlags)
{
    ArgParser args = makeParser();
    EXPECT_TRUE(parse(args, {}));
    EXPECT_EQ(args.getString("name"), "default");
    EXPECT_EQ(args.getInt("count"), 7);
    EXPECT_DOUBLE_EQ(args.getDouble("rate"), 0.5);
    EXPECT_FALSE(args.getBool("verbose"));
}

TEST(Args, SpaceSeparatedValues)
{
    ArgParser args = makeParser();
    EXPECT_TRUE(parse(args, {"--name", "alice", "--count", "42",
                             "--rate", "1.25"}));
    EXPECT_EQ(args.getString("name"), "alice");
    EXPECT_EQ(args.getInt("count"), 42);
    EXPECT_DOUBLE_EQ(args.getDouble("rate"), 1.25);
}

TEST(Args, EqualsSeparatedValues)
{
    ArgParser args = makeParser();
    EXPECT_TRUE(parse(args, {"--name=bob", "--count=-3", "--rate=2e-3"}));
    EXPECT_EQ(args.getString("name"), "bob");
    EXPECT_EQ(args.getInt("count"), -3);
    EXPECT_DOUBLE_EQ(args.getDouble("rate"), 2e-3);
}

TEST(Args, BoolSwitchForms)
{
    ArgParser args = makeParser();
    EXPECT_TRUE(parse(args, {"--verbose"}));
    EXPECT_TRUE(args.getBool("verbose"));

    ArgParser args2 = makeParser();
    EXPECT_TRUE(parse(args2, {"--verbose=false"}));
    EXPECT_FALSE(args2.getBool("verbose"));
}

TEST(Args, HelpShortCircuits)
{
    ArgParser args = makeParser();
    EXPECT_FALSE(parse(args, {"--help"}));
    ArgParser args2 = makeParser();
    EXPECT_FALSE(parse(args2, {"-h"}));
}

TEST(Args, UnknownFlagFatal)
{
    ArgParser args = makeParser();
    EXPECT_THROW(parse(args, {"--bogus", "1"}), FatalError);
}

TEST(Args, MissingValueFatal)
{
    ArgParser args = makeParser();
    EXPECT_THROW(parse(args, {"--count"}), FatalError);
}

TEST(Args, MalformedNumbersFatal)
{
    ArgParser args = makeParser();
    EXPECT_THROW(parse(args, {"--count", "seven"}), FatalError);
    ArgParser args2 = makeParser();
    EXPECT_THROW(parse(args2, {"--rate", "fast"}), FatalError);
}

TEST(Args, TrailingGarbageNumbersFatal)
{
    ArgParser args = makeParser();
    EXPECT_THROW(parse(args, {"--count=12abc"}), FatalError);
    ArgParser args2 = makeParser();
    EXPECT_THROW(parse(args2, {"--count="}), FatalError);
    ArgParser args3 = makeParser();
    EXPECT_THROW(parse(args3, {"--rate", "1.5x"}), FatalError);
}

TEST(Args, OverflowingNumbersFatal)
{
    // strtoll/strtod clamp out-of-range values and only flag them via
    // errno; accepting the clamp would silently hand a typo'd value
    // (e.g. an extra digit on --jobs) to the pool sizing.
    ArgParser args = makeParser();
    EXPECT_THROW(parse(args, {"--count", "99999999999999999999"}),
                 FatalError);
    ArgParser args2 = makeParser();
    EXPECT_THROW(parse(args2, {"--count", "-99999999999999999999"}),
                 FatalError);
    ArgParser args3 = makeParser();
    EXPECT_THROW(parse(args3, {"--rate", "1e999"}), FatalError);

    // Underflow to a representable subnormal is not an error.
    ArgParser args4 = makeParser();
    EXPECT_TRUE(parse(args4, {"--rate", "1e-310"}));
    EXPECT_GT(args4.getDouble("rate"), 0.0);
}

ArgParser
makeJobsParser()
{
    ArgParser args("jobs tool");
    args.addInt("jobs", 0, "worker threads");
    return args;
}

TEST(Args, ParseJobsAcceptsSaneWidths)
{
    ArgParser args = makeJobsParser();
    EXPECT_TRUE(parse(args, {}));
    EXPECT_EQ(parseJobsArg(args), 0u); // default: all cores

    ArgParser args2 = makeJobsParser();
    EXPECT_TRUE(parse(args2, {"--jobs", "16"}));
    EXPECT_EQ(parseJobsArg(args2), 16u);
}

TEST(Args, ParseJobsRejectsNegativeWidths)
{
    ArgParser args = makeJobsParser();
    EXPECT_TRUE(parse(args, {"--jobs", "-2"}));
    EXPECT_THROW(parseJobsArg(args), FatalError);
}

TEST(Args, ParseJobsRejectsAbsurdWidths)
{
    // In range for int64 but would wrap the pool into terathreads.
    ArgParser args = makeJobsParser();
    EXPECT_TRUE(parse(args, {"--jobs", "4294967296000"}));
    EXPECT_THROW(parseJobsArg(args), FatalError);

    ArgParser args2 = makeJobsParser();
    const std::string above_max = std::to_string(kMaxJobs + 1);
    EXPECT_TRUE(parse(args2, {"--jobs", above_max.c_str()}));
    EXPECT_THROW(parseJobsArg(args2), FatalError);
}

TEST(Args, PositionalArgumentsRejected)
{
    ArgParser args = makeParser();
    EXPECT_THROW(parse(args, {"stray"}), FatalError);
}

TEST(Args, WrongTypeAccessPanics)
{
    ArgParser args = makeParser();
    parse(args, {});
    EXPECT_THROW(args.getInt("name"), PanicError);
    EXPECT_THROW(args.getString("count"), PanicError);
    EXPECT_THROW(args.getBool("rate"), PanicError);
}

TEST(Args, UnregisteredAccessPanics)
{
    ArgParser args = makeParser();
    parse(args, {});
    EXPECT_THROW(args.getString("nothere"), PanicError);
}

TEST(Args, UsageListsFlags)
{
    ArgParser args = makeParser();
    const std::string usage = args.usage();
    EXPECT_NE(usage.find("--name"), std::string::npos);
    EXPECT_NE(usage.find("--count"), std::string::npos);
    EXPECT_NE(usage.find("a switch"), std::string::npos);
}

} // namespace
} // namespace sp
