/** @file ArgParser unit tests. */

#include <gtest/gtest.h>

#include <vector>

#include "common/args.h"
#include "common/logging.h"

namespace sp
{
namespace
{

ArgParser
makeParser()
{
    ArgParser args("test tool");
    args.addString("name", "default", "a string flag");
    args.addInt("count", 7, "an int flag");
    args.addDouble("rate", 0.5, "a double flag");
    args.addBool("verbose", "a switch");
    return args;
}

bool
parse(ArgParser &args, std::vector<const char *> argv)
{
    argv.insert(argv.begin(), "prog");
    return args.parse(static_cast<int>(argv.size()), argv.data());
}

TEST(Args, DefaultsApplyWithoutFlags)
{
    ArgParser args = makeParser();
    EXPECT_TRUE(parse(args, {}));
    EXPECT_EQ(args.getString("name"), "default");
    EXPECT_EQ(args.getInt("count"), 7);
    EXPECT_DOUBLE_EQ(args.getDouble("rate"), 0.5);
    EXPECT_FALSE(args.getBool("verbose"));
}

TEST(Args, SpaceSeparatedValues)
{
    ArgParser args = makeParser();
    EXPECT_TRUE(parse(args, {"--name", "alice", "--count", "42",
                             "--rate", "1.25"}));
    EXPECT_EQ(args.getString("name"), "alice");
    EXPECT_EQ(args.getInt("count"), 42);
    EXPECT_DOUBLE_EQ(args.getDouble("rate"), 1.25);
}

TEST(Args, EqualsSeparatedValues)
{
    ArgParser args = makeParser();
    EXPECT_TRUE(parse(args, {"--name=bob", "--count=-3", "--rate=2e-3"}));
    EXPECT_EQ(args.getString("name"), "bob");
    EXPECT_EQ(args.getInt("count"), -3);
    EXPECT_DOUBLE_EQ(args.getDouble("rate"), 2e-3);
}

TEST(Args, BoolSwitchForms)
{
    ArgParser args = makeParser();
    EXPECT_TRUE(parse(args, {"--verbose"}));
    EXPECT_TRUE(args.getBool("verbose"));

    ArgParser args2 = makeParser();
    EXPECT_TRUE(parse(args2, {"--verbose=false"}));
    EXPECT_FALSE(args2.getBool("verbose"));
}

TEST(Args, HelpShortCircuits)
{
    ArgParser args = makeParser();
    EXPECT_FALSE(parse(args, {"--help"}));
    ArgParser args2 = makeParser();
    EXPECT_FALSE(parse(args2, {"-h"}));
}

TEST(Args, UnknownFlagFatal)
{
    ArgParser args = makeParser();
    EXPECT_THROW(parse(args, {"--bogus", "1"}), FatalError);
}

TEST(Args, MissingValueFatal)
{
    ArgParser args = makeParser();
    EXPECT_THROW(parse(args, {"--count"}), FatalError);
}

TEST(Args, MalformedNumbersFatal)
{
    ArgParser args = makeParser();
    EXPECT_THROW(parse(args, {"--count", "seven"}), FatalError);
    ArgParser args2 = makeParser();
    EXPECT_THROW(parse(args2, {"--rate", "fast"}), FatalError);
}

TEST(Args, PositionalArgumentsRejected)
{
    ArgParser args = makeParser();
    EXPECT_THROW(parse(args, {"stray"}), FatalError);
}

TEST(Args, WrongTypeAccessPanics)
{
    ArgParser args = makeParser();
    parse(args, {});
    EXPECT_THROW(args.getInt("name"), PanicError);
    EXPECT_THROW(args.getString("count"), PanicError);
    EXPECT_THROW(args.getBool("rate"), PanicError);
}

TEST(Args, UnregisteredAccessPanics)
{
    ArgParser args = makeParser();
    parse(args, {});
    EXPECT_THROW(args.getString("nothere"), PanicError);
}

TEST(Args, UsageListsFlags)
{
    ArgParser args = makeParser();
    const std::string usage = args.usage();
    EXPECT_NE(usage.find("--name"), std::string::npos);
    EXPECT_NE(usage.find("--count"), std::string::npos);
    EXPECT_NE(usage.find("a switch"), std::string::npos);
}

} // namespace
} // namespace sp
