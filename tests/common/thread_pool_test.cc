/** @file ThreadPool / parallelFor unit tests. */

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "common/thread_pool.h"

namespace sp::common
{
namespace
{

TEST(ThreadPool, ClampsToAtLeastOneWorker)
{
    ThreadPool pool(0);
    EXPECT_EQ(pool.size(), 1u);
}

TEST(ThreadPool, SubmitReturnsResultThroughFuture)
{
    ThreadPool pool(2);
    auto future = pool.submit([] { return 6 * 7; });
    EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPool, SubmitPropagatesExceptions)
{
    ThreadPool pool(2);
    auto future = pool.submit(
        []() -> int { throw std::runtime_error("boom"); });
    EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPool, ManySubmissionsAllComplete)
{
    ThreadPool pool(4);
    std::atomic<int> counter{0};
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 200; ++i)
        futures.push_back(pool.submit([&counter] { ++counter; }));
    for (auto &future : futures)
        future.get();
    EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce)
{
    ThreadPool pool(4);
    for (const size_t n : {size_t{0}, size_t{1}, size_t{3}, size_t{4},
                           size_t{64}, size_t{1000}}) {
        std::vector<std::atomic<int>> hits(n);
        pool.parallelFor(n, [&hits](size_t i) { ++hits[i]; });
        for (size_t i = 0; i < n; ++i)
            ASSERT_EQ(hits[i].load(), 1) << "n=" << n << " i=" << i;
    }
}

TEST(ThreadPool, ParallelForIsDeterministicByIndex)
{
    // Writing slot i from call i gives serial-identical results no
    // matter how indices interleave -- the contract every parallel
    // site in the simulator relies on.
    ThreadPool pool(8);
    std::vector<uint64_t> out(5000);
    pool.parallelFor(out.size(),
                     [&out](size_t i) { out[i] = i * i + 1; });
    for (size_t i = 0; i < out.size(); ++i)
        ASSERT_EQ(out[i], i * i + 1);
}

TEST(ThreadPool, ParallelForRethrowsFirstError)
{
    ThreadPool pool(4);
    EXPECT_THROW(pool.parallelFor(100,
                                  [](size_t i) {
                                      if (i == 37)
                                          throw std::runtime_error("bad");
                                  }),
                 std::runtime_error);
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock)
{
    // A parallelFor issued from inside a pool task must complete even
    // when every worker is busy: the inner caller participates in its
    // own loop.
    ThreadPool pool(2);
    std::atomic<int> total{0};
    pool.parallelFor(8, [&pool, &total](size_t) {
        pool.parallelFor(8, [&total](size_t) { ++total; });
    });
    EXPECT_EQ(total.load(), 64);
}

TEST(ThreadPool, SingleWorkerRunsInline)
{
    ThreadPool pool(1);
    std::vector<int> order;
    pool.parallelFor(5, [&order](size_t i) {
        order.push_back(static_cast<int>(i));
    });
    // Width-1 pools run parallelFor serially on the caller, in order.
    const std::vector<int> expected = {0, 1, 2, 3, 4};
    EXPECT_EQ(order, expected);
}

TEST(ThreadPool, AsyncCompletionCoversEveryIndexExactlyOnce)
{
    ThreadPool pool(4);
    for (const size_t n : {size_t{0}, size_t{1}, size_t{3}, size_t{64},
                           size_t{1000}}) {
        std::vector<std::atomic<int>> hits(n);
        auto token = pool.parallelForAsync(
            n, [&hits](size_t i) { ++hits[i]; });
        token.wait();
        EXPECT_FALSE(token.pending());
        for (size_t i = 0; i < n; ++i)
            ASSERT_EQ(hits[i].load(), 1) << "n=" << n << " i=" << i;
    }
}

TEST(ThreadPool, AsyncOverlapsCallerWork)
{
    // The point of the token: the caller keeps doing its own work
    // between launch and wait(), and both sides' results are intact
    // at the barrier -- the engine's two-deep planning pipeline in
    // miniature.
    ThreadPool pool(2);
    std::vector<uint64_t> out(512);
    auto token = pool.parallelForAsync(
        out.size(), [&out](size_t i) { out[i] = i + 1; });
    uint64_t own = 0;
    for (uint64_t i = 0; i < 1000; ++i)
        own += i;
    token.wait();
    EXPECT_EQ(own, 499'500u);
    for (size_t i = 0; i < out.size(); ++i)
        ASSERT_EQ(out[i], i + 1);
}

TEST(ThreadPool, AsyncWaitRethrowsFirstErrorOnce)
{
    ThreadPool pool(4);
    auto token = pool.parallelForAsync(100, [](size_t i) {
        if (i == 37)
            throw std::runtime_error("bad");
    });
    EXPECT_THROW(token.wait(), std::runtime_error);
    // The token is spent after the rethrow; waiting again is a no-op.
    EXPECT_FALSE(token.pending());
    token.wait();
}

TEST(ThreadPool, AsyncErrorSkipsRemainingIndicesButRetiresThem)
{
    // Zero helpers pins the whole index space on the caller, in
    // order, so the post-error behaviour is deterministic: indices
    // before the throw run, indices after it are skipped, and yet the
    // barrier retires all of them -- the wait() neither hangs nor
    // reruns the body.
    ThreadPool pool(2);
    std::atomic<int> ran{0};
    auto token = pool.parallelForAsync(
        10,
        [&ran](size_t i) {
            if (i == 2)
                throw std::runtime_error("bad");
            ++ran;
        },
        /*max_helpers=*/0);
    EXPECT_THROW(token.wait(), std::runtime_error);
    EXPECT_EQ(ran.load(), 2);
    // Surfaced exactly once: the spent token is silent from here on.
    EXPECT_FALSE(token.pending());
    token.wait();
}

TEST(ThreadPool, AsyncDropAfterErrorDoesNotTerminate)
{
    // Dropping a token whose body threw must swallow the error in the
    // destructor (the pipeline only abandons a token while unwinding
    // from the same root cause), never std::terminate.
    ThreadPool pool(2);
    {
        auto token = pool.parallelForAsync(
            8, [](size_t) { throw std::runtime_error("bad"); });
    }
    SUCCEED();
}

TEST(ThreadPool, AsyncCompletesWithZeroHelpers)
{
    // max_helpers == 0 enqueues nothing: wait() must drain every
    // index on the caller (completion never depends on pool
    // capacity).
    ThreadPool pool(2);
    std::vector<int> out(64, 0);
    auto token = pool.parallelForAsync(
        out.size(), [&out](size_t i) { out[i] = 1; },
        /*max_helpers=*/0);
    token.wait();
    for (const int value : out)
        ASSERT_EQ(value, 1);
}

TEST(ThreadPool, AsyncDropWithoutWaitFinishesTasks)
{
    // A dropped pending token blocks in its destructor until the body
    // is done with everything it captured -- locals below must not be
    // written after scope exit.
    ThreadPool pool(2);
    std::atomic<int> count{0};
    {
        auto token = pool.parallelForAsync(
            200, [&count](size_t) { ++count; });
    }
    EXPECT_EQ(count.load(), 200);
}

TEST(ThreadPool, AsyncMoveAssignRetiresPreviousToken)
{
    ThreadPool pool(2);
    std::atomic<int> first{0}, second{0};
    auto token = pool.parallelForAsync(
        64, [&first](size_t) { ++first; });
    token = pool.parallelForAsync(
        32, [&second](size_t) { ++second; });
    // Assignment waits the first launch before adopting the second.
    EXPECT_EQ(first.load(), 64);
    token.wait();
    EXPECT_EQ(second.load(), 32);
}

TEST(ThreadPool, GlobalPoolIsUsableAndSized)
{
    ThreadPool &pool = ThreadPool::global();
    EXPECT_GE(pool.size(), 1u);
    std::atomic<int> counter{0};
    parallelFor(32, [&counter](size_t) { ++counter; });
    EXPECT_EQ(counter.load(), 32);
}

TEST(ThreadPool, DefaultThreadsPositive)
{
    EXPECT_GE(ThreadPool::defaultThreads(), 1u);
}

} // namespace
} // namespace sp::common
