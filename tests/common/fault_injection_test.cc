/**
 * @file
 * Chaos harness for the deterministic fault-injection engine
 * (common/fault.h): schedule grammar, firing semantics, replayable
 * probabilistic schedules, and -- the point of the whole engine -- a
 * fault MATRIX that walks every registered site, injects it, and
 * proves the documented degradation: no crash, and for recoverable
 * faults results identical to a clean run.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/fault.h"
#include "common/logging.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "data/trace_store.h"
#include "data/trace_view.h"
#include "sim/hardware_config.h"
#include "sys/experiment.h"

namespace sp::common::fault
{
namespace
{

namespace fs = std::filesystem;

/** Arms a schedule for one scope; always disarms on the way out so a
 *  failing assertion cannot leak faults into unrelated tests. */
class FaultGuard
{
  public:
    explicit FaultGuard(const std::string &spec) { configure(spec); }
    ~FaultGuard() { clear(); }
    FaultGuard(const FaultGuard &) = delete;
    FaultGuard &operator=(const FaultGuard &) = delete;
};

/** Hit `site` `hits` times; returns the 0-based hit indices that
 *  fired. */
std::vector<int>
firedHits(const char *site, int hits)
{
    std::vector<int> fired;
    for (int h = 0; h < hits; ++h) {
        try {
            SP_FAULT_POINT(site);
        } catch (const FaultInjectedError &) {
            fired.push_back(h);
        }
    }
    return fired;
}

TEST(FaultInjection, DisarmedByDefault)
{
    clear();
    EXPECT_FALSE(armed());
    EXPECT_TRUE(schedules().empty());
    EXPECT_EQ(describe(), "faults: disarmed");
    // A disarmed site is free: the macro must not even count hits.
    SP_FAULT_POINT("trace_store.load");
    EXPECT_EQ(hitCount("trace_store.load"), 0u);
}

TEST(FaultInjection, ConfigureParsesTheFullGrammar)
{
    FaultGuard guard(
        " trace_store.load ; dataset.save.write:after=2 ;"
        "trace_store.publish.rename:after=1,every=3;"
        "trace_view.mmap:p=0.25,seed=42");
    EXPECT_TRUE(armed());
    const std::vector<Schedule> parsed = schedules();
    ASSERT_EQ(parsed.size(), 4u);
    EXPECT_EQ(parsed[0].site, "trace_store.load");
    EXPECT_EQ(parsed[0].after, 0u);
    EXPECT_EQ(parsed[0].every, 0u);
    EXPECT_LT(parsed[0].probability, 0.0);
    EXPECT_EQ(parsed[1].site, "dataset.save.write");
    EXPECT_EQ(parsed[1].after, 2u);
    EXPECT_EQ(parsed[2].site, "trace_store.publish.rename");
    EXPECT_EQ(parsed[2].after, 1u);
    EXPECT_EQ(parsed[2].every, 3u);
    EXPECT_EQ(parsed[3].site, "trace_view.mmap");
    EXPECT_DOUBLE_EQ(parsed[3].probability, 0.25);
    EXPECT_EQ(parsed[3].seed, 42u);
    // describe() records the seed so the run can be replayed exactly.
    EXPECT_NE(describe().find("seed=42"), std::string::npos);
}

TEST(FaultInjection, MalformedSpecsDieLoudly)
{
    EXPECT_THROW(configure("no.such.site"), FatalError);
    EXPECT_THROW(configure("trace_store.load:after"), FatalError);
    EXPECT_THROW(configure("trace_store.load:after=-1"), FatalError);
    EXPECT_THROW(configure("trace_store.load:after=x"), FatalError);
    EXPECT_THROW(configure("trace_store.load:every=0"), FatalError);
    EXPECT_THROW(configure("trace_store.load:p=1.5"), FatalError);
    EXPECT_THROW(configure("trace_store.load:every=2,p=0.5"),
                 FatalError);
    EXPECT_THROW(configure("trace_store.load:bogus=1"), FatalError);
    // The unknown-site message must list the registry (typo rescue).
    try {
        configure("no.such.site");
        FAIL() << "unknown site accepted";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("trace_store.publish"),
                  std::string::npos);
    }
    // A failed configure leaves the engine disarmed, not half-armed.
    EXPECT_FALSE(armed());
    clear();
}

TEST(FaultInjection, DefaultScheduleFiresOnceOnTheFirstHit)
{
    FaultGuard guard("trace_store.load");
    EXPECT_EQ(firedHits("trace_store.load", 5),
              (std::vector<int>{0}));
    EXPECT_EQ(hitCount("trace_store.load"), 5u);
    EXPECT_EQ(firedCount("trace_store.load"), 1u);
}

TEST(FaultInjection, AfterDelaysTheSingleShot)
{
    FaultGuard guard("trace_store.load:after=3");
    EXPECT_EQ(firedHits("trace_store.load", 6),
              (std::vector<int>{3}));
}

TEST(FaultInjection, EveryFiresPeriodicallyAfterTheSkip)
{
    FaultGuard guard("trace_store.load:after=1,every=3");
    // Hits (0-based): skip 0; then 1, 4, 7 fire.
    EXPECT_EQ(firedHits("trace_store.load", 9),
              (std::vector<int>{1, 4, 7}));
    EXPECT_EQ(firedCount("trace_store.load"), 3u);
}

TEST(FaultInjection, ProbabilisticScheduleReplaysExactlyFromItsSeed)
{
    std::vector<int> first;
    {
        FaultGuard guard("trace_store.load:p=0.5,seed=7");
        first = firedHits("trace_store.load", 64);
    }
    // Bernoulli(0.5) over 64 draws: some fire, some do not.
    EXPECT_GT(first.size(), 0u);
    EXPECT_LT(first.size(), 64u);
    // Reconfiguring with the same seed replays the exact pattern --
    // this is what makes a probabilistic chaos run debuggable.
    {
        FaultGuard guard("trace_store.load:p=0.5,seed=7");
        EXPECT_EQ(firedHits("trace_store.load", 64), first);
    }
}

TEST(FaultInjection, UnregisteredSiteIsAProgrammerError)
{
    FaultGuard guard("trace_store.load");
    EXPECT_THROW(checkpoint("no.such.site"), PanicError);
}

TEST(FaultInjection, ClearDisarmsAndResetsCounters)
{
    configure("trace_store.load:every=1");
    (void)firedHits("trace_store.load", 3);
    EXPECT_EQ(hitCount("trace_store.load"), 3u);
    clear();
    EXPECT_FALSE(armed());
    EXPECT_EQ(hitCount("trace_store.load"), 0u);
    EXPECT_EQ(firedCount("trace_store.load"), 0u);
}

TEST(FaultInjection, ErrorCarriesTheTaxonomyAndTheSite)
{
    FaultGuard guard("trace_store.load");
    try {
        SP_FAULT_POINT("trace_store.load");
        FAIL() << "armed site did not fire";
    } catch (const FaultInjectedError &e) {
        EXPECT_EQ(e.site(), "trace_store.load");
        EXPECT_EQ(e.status().code(), ErrorCode::FaultInjected);
        // And it is catchable as StatusError / FatalError, so it
        // travels every real environmental-recovery path.
        EXPECT_NE(std::string(e.what()).find("trace_store.load"),
                  std::string::npos);
    }
}

TEST(FaultInjection, RegistryDocumentsEveryDegradation)
{
    for (const SiteInfo &info : sites()) {
        EXPECT_NE(info.name, nullptr);
        ASSERT_NE(info.degradation, nullptr);
        EXPECT_GT(std::string(info.degradation).size(), 10u)
            << info.name << " has no documented degradation";
    }
}

// ---- The fault matrix ----------------------------------------------
//
// One scenario per registered site. Each arms the site, drives the
// subsystem that owns it, and asserts the degradation documented in
// fault::sites(): recoverable store faults must yield *identical*
// data to a clean run with no temp-file litter; isolation faults must
// surface exactly once through their documented channel. The matrix
// test itself walks the registry so a newly added site without a
// scenario fails loudly here.

data::TraceConfig
matrixConfig()
{
    data::TraceConfig config;
    config.num_tables = 2;
    config.rows_per_table = 300;
    config.lookups_per_table = 3;
    config.batch_size = 8;
    config.locality = data::Locality::Medium;
    config.seed = 77;
    config.dense_features = 4;
    return config;
}

/** Fresh cache directory per scenario, removed on destruction. */
class TempStore
{
  public:
    explicit TempStore(const std::string &name, bool use_mmap = true)
        : dir_(fs::path(::testing::TempDir()) /
               ("sp_fault_matrix_" + name))
    {
        fs::remove_all(dir_);
        data::TraceStore::Options options;
        options.directory = dir_.string();
        options.use_mmap = use_mmap;
        store_ = std::make_unique<data::TraceStore>(options);
    }
    ~TempStore() { fs::remove_all(dir_); }

    const data::TraceStore &operator*() const { return *store_; }
    const data::TraceStore *operator->() const { return store_.get(); }
    const fs::path &dir() const { return dir_; }

    size_t
    fileCount() const
    {
        if (!fs::exists(dir_))
            return 0;
        size_t files = 0;
        for (const auto &entry : fs::directory_iterator(dir_)) {
            (void)entry;
            ++files;
        }
        return files;
    }

  private:
    fs::path dir_;
    std::unique_ptr<data::TraceStore> store_;
};

void
expectIdenticalData(const data::TraceDataset &got,
                    const data::TraceDataset &want)
{
    ASSERT_EQ(got.numBatches(), want.numBatches());
    for (uint64_t b = 0; b < got.numBatches(); ++b)
        EXPECT_TRUE(got.batch(b).idsEqual(want.batch(b)))
            << "batch " << b;
}

constexpr uint64_t kBatches = 4;

/** Recoverable publish-path fault: the cold acquire degrades to
 *  uncached (classified status, no temp litter) with identical data,
 *  and the next clean acquire heals the cache. */
void
publishFaultScenario(const std::string &site, bool expect_published)
{
    const data::TraceConfig config = matrixConfig();
    const data::TraceDataset want(config, kBatches);
    TempStore store("publish_" + site);
    {
        FaultGuard guard(site + ":every=1");
        data::TraceStore::AcquireInfo info;
        const data::TraceDataset got =
            store->acquire(config, kBatches, &info);
        expectIdenticalData(got, want);
        EXPECT_GT(firedCount(site), 0u);
        if (expect_published)
            return; // rename retry absorbed the fault; cache is warm
        EXPECT_FALSE(info.published);
        EXPECT_EQ(info.publish_status.code(),
                  ErrorCode::FaultInjected);
        // Every failure branch must unlink its temp file.
        EXPECT_EQ(store.fileCount(), 0u);
    }
    // Disarmed, the same store heals: publish succeeds, warm hit
    // serves identical data.
    data::TraceStore::AcquireInfo info;
    const data::TraceDataset clean =
        store->acquire(config, kBatches, &info);
    EXPECT_TRUE(info.published);
    expectIdenticalData(clean, want);
    const data::TraceDataset warm =
        store->acquire(config, kBatches, &info);
    EXPECT_TRUE(info.cache_hit);
    expectIdenticalData(warm, want);
}

/** Recoverable load-path fault: a warm entry reads as a classified
 *  miss and the trace regenerates with identical data. */
void
loadFaultScenario(const std::string &site, bool use_mmap)
{
    const data::TraceConfig config = matrixConfig();
    const data::TraceDataset want(config, kBatches);
    TempStore store("load_" + site, use_mmap);
    store->acquire(config, kBatches); // prewarm, disarmed
    FaultGuard guard(site + ":every=1");
    data::TraceStore::AcquireInfo info;
    const data::TraceDataset got =
        store->acquire(config, kBatches, &info);
    EXPECT_GT(firedCount(site), 0u);
    EXPECT_FALSE(info.cache_hit);
    EXPECT_EQ(info.load_status.code(), ErrorCode::FaultInjected);
    expectIdenticalData(got, want);
}

/** Sweep isolation: the faulted spec records its error, the rest of
 *  the sweep completes, and the exit code says "partial". */
void
experimentRunScenario()
{
    FaultGuard guard("experiment.run:after=0");
    sys::ModelConfig model = sys::ModelConfig::functionalScale();
    model.trace.locality = data::Locality::Medium;
    model.trace.seed = 4321;
    sys::ExperimentOptions options;
    options.iterations = 2;
    options.jobs = 1;
    const sys::ExperimentRunner runner(
        model, sim::HardwareConfig::paperTestbed(), options);
    const std::vector<sys::SystemSpec> specs = {
        sys::SystemSpec::parse("hybrid"),
        sys::SystemSpec::parse("static:cache=0.1")};
    const std::vector<sys::RunResult> results = runner.runAll(specs);
    ASSERT_EQ(results.size(), 2u);
    EXPECT_TRUE(results[0].failed());
    EXPECT_NE(results[0].error.find("experiment.run"),
              std::string::npos);
    EXPECT_FALSE(results[1].failed());
    EXPECT_GT(results[1].iterations, 0u);
    EXPECT_EQ(sys::sweepExitCode(results), 3);
}

/** Serving degradation: armed, every third arriving request is
 *  dropped and excluded from latency/queue accounting; the stream
 *  continues and the run completes with drops reported. Disarmed,
 *  the same spec serves every request. */
void
servingDropScenario()
{
    sys::ModelConfig model = sys::ModelConfig::functionalScale();
    model.trace.locality = data::Locality::Medium;
    model.trace.seed = 4321;
    sys::ExperimentOptions options;
    options.iterations = 4;
    options.warmup = 1;
    options.jobs = 1;
    const sys::ExperimentRunner runner(
        model, sim::HardwareConfig::paperTestbed(), options);
    const std::vector<sys::SystemSpec> specs = {
        sys::SystemSpec::parse("serve:rate=500000,batch_max=8")};
    const uint64_t measured =
        options.iterations * model.trace.batch_size;
    {
        FaultGuard guard("serve.request.drop:every=3");
        const std::vector<sys::RunResult> results =
            runner.runAll(specs);
        ASSERT_EQ(results.size(), 1u);
        EXPECT_FALSE(results[0].failed()) << results[0].error;
        EXPECT_GT(firedCount("serve.request.drop"), 0u);
        EXPECT_GT(results[0].serving.dropped, 0u);
        // Every measured request is either served or dropped.
        EXPECT_EQ(results[0].serving.requests +
                      results[0].serving.dropped,
                  measured);
        EXPECT_GT(results[0].serving.requests, 0u);
    }
    const std::vector<sys::RunResult> clean = runner.runAll(specs);
    ASSERT_EQ(clean.size(), 1u);
    EXPECT_FALSE(clean[0].failed()) << clean[0].error;
    EXPECT_EQ(clean[0].serving.dropped, 0u);
    EXPECT_EQ(clean[0].serving.requests, measured);
}

/** Pool isolation: the injected task fault surfaces exactly once on
 *  the documented channel (future / parallelFor join). */
void
threadPoolTaskScenario()
{
    {
        FaultGuard guard("thread_pool.task:after=0");
        ThreadPool pool(2);
        auto future = pool.submit([] { return 11; });
        EXPECT_THROW(future.get(), FaultInjectedError);
        // The worker survived the throw and still serves tasks.
        EXPECT_EQ(pool.submit([] { return 17; }).get(), 17);
    }
    {
        FaultGuard guard("thread_pool.task:after=1");
        ThreadPool pool(1); // serial fast path: caller is the join
        EXPECT_THROW(
            pool.parallelFor(4, [](size_t) {}),
            FaultInjectedError);
    }
}

TEST(FaultMatrix, EveryRegisteredSiteDegradesAsDocumented)
{
    clear();
    using Scenario = void (*)();
    const std::map<std::string, Scenario> scenarios = {
        {"dataset.load.read",
         // Read path only runs in the eager (no-mmap) tier.
         [] { loadFaultScenario("dataset.load.read", false); }},
        {"dataset.replay.open",
         [] {
             // Replay path: an armed open surfaces through tryReplay
             // as a classified status (the drivers' usage-error path,
             // never a partial stream); disarmed, the same file
             // replays data identical to the recorded dataset.
             const data::TraceConfig config = matrixConfig();
             const data::TraceDataset want(config, kBatches);
             const fs::path path =
                 fs::path(::testing::TempDir()) /
                 "sp_fault_matrix_replay.trace";
             ASSERT_TRUE(want.saveTo(path.string()).ok());
             {
                 FaultGuard guard("dataset.replay.open:every=1");
                 const auto faulted = data::TraceDataset::tryReplay(
                     path.string(), kBatches);
                 ASSERT_FALSE(faulted.ok());
                 EXPECT_EQ(faulted.status().code(),
                           ErrorCode::FaultInjected);
                 EXPECT_GT(firedCount("dataset.replay.open"), 0u);
             }
             const auto clean = data::TraceDataset::tryReplay(
                 path.string(), kBatches);
             ASSERT_TRUE(clean.ok()) << clean.status().toString();
             expectIdenticalData(clean.value(), want);
             fs::remove(path);
         }},
        {"dataset.save.write",
         [] { publishFaultScenario("dataset.save.write", false); }},
        {"experiment.run", experimentRunScenario},
        {"serve.request.drop", servingDropScenario},
        {"thread_pool.task", threadPoolTaskScenario},
        {"trace_store.load",
         [] { loadFaultScenario("trace_store.load", true); }},
        {"trace_store.publish.rename",
         [] {
             // Transient: a single injected rename failure is
             // absorbed by the bounded retry and still publishes.
             const data::TraceConfig config = matrixConfig();
             TempStore store("rename_retry");
             FaultGuard guard("trace_store.publish.rename:after=0");
             data::TraceStore::AcquireInfo info;
             const data::TraceDataset got =
                 store->acquire(config, kBatches, &info);
             EXPECT_EQ(firedCount("trace_store.publish.rename"), 1u);
             EXPECT_TRUE(info.published);
             expectIdenticalData(
                 got, data::TraceDataset(config, kBatches));
             EXPECT_EQ(store.fileCount(), 1u);
             clear();
             // Persistent: every retry fails; degrade uncached.
             publishFaultScenario("trace_store.publish.rename",
                                  false);
         }},
        {"trace_store.publish.save",
         [] { publishFaultScenario("trace_store.publish.save", false); }},
        {"trace_view.mmap",
         [] {
             if (!data::TraceView::supported())
                 return; // the site is unreachable on this platform
             loadFaultScenario("trace_view.mmap", true);
         }},
    };
    for (const SiteInfo &info : sites()) {
        SCOPED_TRACE(info.name);
        const auto it = scenarios.find(info.name);
        ASSERT_NE(it, scenarios.end())
            << "site '" << info.name
            << "' has no fault-matrix scenario; every registered "
               "site must prove its documented degradation here";
        it->second();
        clear();
    }
    // And the inverse: no scenario for a site that no longer exists.
    EXPECT_EQ(scenarios.size(), sites().size());
}

TEST(FaultMatrix, RecoverableStoreFaultsKeepSweepJsonByteIdentical)
{
    // The end-to-end determinism claim: a sweep whose trace cache
    // fails (disk full during publish, corrupt warm entry) emits
    // byte-for-byte the JSON of a clean sweep -- degradation changes
    // only *where* the trace comes from, never the simulated result.
    const fs::path dir =
        fs::path(::testing::TempDir()) / "sp_fault_matrix_sweep";
    fs::remove_all(dir);
    ::setenv("SP_TRACE_CACHE", dir.string().c_str(), 1);
    data::TraceStore::setCacheEnabled(true);

    sys::ModelConfig model = sys::ModelConfig::functionalScale();
    model.trace.locality = data::Locality::Medium;
    model.trace.seed = 4321;
    sys::ExperimentOptions options;
    options.iterations = 2;
    options.jobs = 1;
    const auto hw = sim::HardwareConfig::paperTestbed();
    const auto sweep = [&] {
        const sys::ExperimentRunner runner(model, hw, options);
        return sys::toJson(runner.runAll(
            {sys::SystemSpec::parse("hybrid"),
             sys::SystemSpec::parse("static:cache=0.1")}));
    };

    const std::string clean = sweep(); // also leaves a warm entry
    struct SweepFault
    {
        const char *spec; //!< fault to arm for one whole sweep
        bool cold;        //!< publish faults need an empty cache
    };
    for (const SweepFault fault :
         {SweepFault{"trace_store.load:every=1", false},
          SweepFault{"trace_store.publish.save:every=1", true},
          SweepFault{"dataset.save.write:every=1", true}}) {
        SCOPED_TRACE(fault.spec);
        if (fault.cold)
            fs::remove_all(dir);
        FaultGuard guard(fault.spec);
        EXPECT_EQ(sweep(), clean);
        EXPECT_GT(firedCount(schedules()[0].site), 0u)
            << "scenario never reached its fault site";
    }

    data::TraceStore::setCacheEnabled(false);
    ::unsetenv("SP_TRACE_CACHE");
    fs::remove_all(dir);
}

} // namespace
} // namespace sp::common::fault
