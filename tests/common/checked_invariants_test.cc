/**
 * @file
 * The SP_ASSERT checked-invariant layer (cmake -DSP_CHECK=ON).
 *
 * These tests run in BOTH build flavors and assert the correct
 * behavior for whichever one is active: enabled builds must throw
 * PanicError on a violated SP_ASSERT, disabled builds must not even
 * evaluate the condition. The invariant-bearing code paths (Hit-Map
 * backward-shift erase, ThreadPool Completion barrier, TraceView
 * header validation) are then churned hard enough that a broken
 * invariant would trip its check in the SP_CHECK=ON CI jobs.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <random>
#include <set>
#include <vector>

#include "cache/hit_map.h"
#include "common/logging.h"
#include "common/thread_pool.h"
#include "data/dataset.h"
#include "data/trace_view.h"

namespace sp
{
namespace
{

TEST(CheckedInvariants, BuildFlagMatchesCompiledBehavior)
{
#ifdef SP_CHECK_INVARIANTS
    EXPECT_TRUE(kCheckedInvariants);
#else
    EXPECT_FALSE(kCheckedInvariants);
#endif
}

TEST(CheckedInvariants, ViolatedAssertPanicsOnlyWhenEnabled)
{
    const auto violate = [] { SP_ASSERT(1 + 1 == 3, "math still works"); };
    if (kCheckedInvariants) {
        try {
            violate();
            FAIL() << "SP_ASSERT did not throw in a checked build";
        } catch (const PanicError &err) {
            EXPECT_NE(std::string(err.what()).find("SP_ASSERT"),
                      std::string::npos)
                << err.what();
            EXPECT_NE(std::string(err.what()).find("math still works"),
                      std::string::npos)
                << err.what();
        }
    } else {
        EXPECT_NO_THROW(violate());
    }
}

TEST(CheckedInvariants, SatisfiedAssertIsAlwaysSilent)
{
    EXPECT_NO_THROW(SP_ASSERT(2 + 2 == 4, "arithmetic"));
}

TEST(CheckedInvariants, ConditionIsNotEvaluatedWhenDisabled)
{
    // Release builds must pay nothing for a check: the condition is
    // parsed but never run. Count evaluations through a side effect.
    int evaluations = 0;
    const auto probe = [&evaluations] {
        ++evaluations;
        return true;
    };
    SP_ASSERT(probe(), "side-effect probe");
    EXPECT_EQ(evaluations, kCheckedInvariants ? 1 : 0);
}

// Churn insert/erase so the backward-shift chain check (re-probing the
// whole cluster after every erase) runs across long collision chains.
// A deterministic keyset keeps the test bit-stable across builds.
TEST(CheckedInvariants, HitMapEraseChurnKeepsChainsProbeable)
{
    cache::HitMap map(16);
    std::mt19937 rng(1234);
    std::vector<uint64_t> live;
    std::set<uint64_t> seen;

    for (int round = 0; round < 2000; ++round) {
        const bool insert = live.size() < 64 ||
                            (rng() % 3 != 0 && live.size() < 512);
        if (insert) {
            uint64_t key = rng() % 4096;
            while (key == 0xffffffffu || !seen.insert(key).second)
                key = rng() % 4096;
            map.insert(key, static_cast<uint32_t>(live.size()));
            live.push_back(key);
        } else {
            const size_t victim = rng() % live.size();
            map.erase(live[victim]);
            seen.erase(live[victim]);
            live[victim] = live.back();
            live.pop_back();
        }
    }
    EXPECT_EQ(map.size(), live.size());
    for (const uint64_t key : live)
        EXPECT_NE(map.find(key), cache::HitMap::kNotFound) << key;
}

TEST(CheckedInvariants, CompletionBarrierRetiresEveryIndex)
{
    common::ThreadPool pool(4);
    std::vector<int> out(257, 0);
    common::ThreadPool::Completion token = pool.parallelForAsync(
        out.size(),
        [&out](size_t i) { out[i] = static_cast<int>(i) + 1; });
    token.wait(); // SP_CHECK: asserts done==n and !pending() inside
    EXPECT_FALSE(token.pending());
    for (size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], static_cast<int>(i) + 1);
}

TEST(CheckedInvariants, TraceViewRoundTripSatisfiesSizeInvariant)
{
    if (!data::TraceView::supported())
        GTEST_SKIP() << "mmap views unsupported on this platform";

    namespace fs = std::filesystem;
    const fs::path path =
        fs::path(::testing::TempDir()) / "sp_checked_invariants.sptrace";
    fs::remove(path);

    data::TraceConfig config;
    config.num_tables = 2;
    config.rows_per_table = 300;
    config.lookups_per_table = 3;
    config.batch_size = 8;
    config.seed = 17;
    const data::TraceDataset dataset(config, 4);
    dataset.save(path.string());

    // open() re-derives the expected file size from the header; the
    // SP_CHECK build asserts the two agree before any ids() access.
    const data::TraceDataset mapped =
        data::TraceDataset::mapped(path.string(), 4);
    ASSERT_EQ(mapped.numBatches(), 4u);
    for (uint64_t b = 0; b < 4; ++b)
        EXPECT_TRUE(mapped.batch(b).idsEqual(dataset.batch(b)))
            << "batch " << b;
    fs::remove(path);
}

} // namespace
} // namespace sp
