/** @file CPU feature detection and SP_SIMD parsing tests. */

#include <gtest/gtest.h>

#include "common/cpu_features.h"
#include "common/logging.h"

namespace sp::common
{
namespace
{

TEST(CpuFeatures, ParseSimdPreference)
{
    EXPECT_EQ(parseSimdPreference("scalar"), SimdPreference::Scalar);
    EXPECT_EQ(parseSimdPreference("native"), SimdPreference::Native);
    // Unset / empty means "use the best kernel" -- the default a user
    // who never heard of SP_SIMD should get.
    EXPECT_EQ(parseSimdPreference(nullptr), SimdPreference::Native);
    EXPECT_EQ(parseSimdPreference(""), SimdPreference::Native);
    EXPECT_THROW(parseSimdPreference("avx2"), FatalError);
    EXPECT_THROW(parseSimdPreference("Scalar"), FatalError);
}

TEST(CpuFeatures, PreferenceNames)
{
    EXPECT_STREQ(simdPreferenceName(SimdPreference::Scalar), "scalar");
    EXPECT_STREQ(simdPreferenceName(SimdPreference::Native), "native");
}

TEST(CpuFeatures, DetectionIsStableAndArchConsistent)
{
    // Answers are runner-dependent but must be stable within one
    // process and impossible cross-architecture combinations must
    // never appear.
    EXPECT_EQ(cpuSupportsAvx2(), cpuSupportsAvx2());
    EXPECT_EQ(cpuSupportsNeon(), cpuSupportsNeon());
    EXPECT_FALSE(cpuSupportsAvx2() && cpuSupportsNeon());
#if defined(__aarch64__)
    EXPECT_TRUE(cpuSupportsNeon());
#endif
}

TEST(CpuFeatures, ProcessPreferenceIsLatched)
{
    // Whatever SP_SIMD the process started with, repeated reads agree
    // (kernel selection must not flip mid-run).
    EXPECT_EQ(simdPreference(), simdPreference());
}

} // namespace
} // namespace sp::common
