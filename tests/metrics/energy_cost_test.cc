/** @file Energy and cloud-cost model tests. */

#include <gtest/gtest.h>

#include "metrics/cost.h"
#include "metrics/energy.h"

namespace sp::metrics
{
namespace
{

sim::HardwareConfig
testHw()
{
    sim::HardwareConfig hw;
    hw.cpu_active_watts = 100.0;
    hw.cpu_idle_watts = 50.0;
    hw.gpu_active_watts = 300.0;
    hw.gpu_idle_watts = 60.0;
    return hw;
}

TEST(Energy, FullyIdleIteration)
{
    const EnergyModel model(testHw());
    BusyTimes busy;
    busy.iteration_seconds = 1.0;
    EXPECT_DOUBLE_EQ(model.iterationEnergy(busy), 50.0 + 60.0);
}

TEST(Energy, FullyBusyIteration)
{
    const EnergyModel model(testHw());
    BusyTimes busy;
    busy.iteration_seconds = 2.0;
    busy.cpu_busy_seconds = 2.0;
    busy.gpu_busy_seconds = 2.0;
    EXPECT_DOUBLE_EQ(model.iterationEnergy(busy), 2.0 * (100.0 + 300.0));
}

TEST(Energy, MixedBusyness)
{
    const EnergyModel model(testHw());
    BusyTimes busy;
    busy.iteration_seconds = 1.0;
    busy.cpu_busy_seconds = 0.5;
    busy.gpu_busy_seconds = 0.25;
    const double expected = 0.5 * 100 + 0.5 * 50 + 0.25 * 300 + 0.75 * 60;
    EXPECT_DOUBLE_EQ(model.iterationEnergy(busy), expected);
}

TEST(Energy, BusyTimeClampedToIteration)
{
    const EnergyModel model(testHw());
    BusyTimes busy;
    busy.iteration_seconds = 1.0;
    busy.cpu_busy_seconds = 5.0; // can't be busier than the iteration
    busy.gpu_busy_seconds = 5.0;
    EXPECT_DOUBLE_EQ(model.iterationEnergy(busy), 100.0 + 300.0);
}

TEST(Energy, FasterIterationUsesLessEnergy)
{
    // The paper's Fig. 14 logic: same busy fractions, shorter
    // iteration -> proportionally less energy.
    const EnergyModel model(testHw());
    BusyTimes slow, fast;
    slow.iteration_seconds = 0.150;
    slow.cpu_busy_seconds = 0.100;
    slow.gpu_busy_seconds = 0.020;
    fast.iteration_seconds = 0.040;
    fast.cpu_busy_seconds = 0.010;
    fast.gpu_busy_seconds = 0.020;
    EXPECT_LT(model.iterationEnergy(fast),
              0.5 * model.iterationEnergy(slow));
}

TEST(Energy, AveragePowerBetweenIdleAndActive)
{
    const EnergyModel model(testHw());
    BusyTimes busy;
    busy.iteration_seconds = 1.0;
    busy.cpu_busy_seconds = 0.5;
    busy.gpu_busy_seconds = 0.5;
    const double power = model.averagePower(busy);
    EXPECT_GT(power, 50.0 + 60.0);
    EXPECT_LT(power, 100.0 + 300.0);
}

TEST(Cost, PaperInstancePrices)
{
    // Table I price points.
    EXPECT_DOUBLE_EQ(AwsInstance::p3_2xlarge().price_per_hour, 3.06);
    EXPECT_EQ(AwsInstance::p3_2xlarge().gpus, 1);
    EXPECT_DOUBLE_EQ(AwsInstance::p3_16xlarge().price_per_hour, 24.48);
    EXPECT_EQ(AwsInstance::p3_16xlarge().gpus, 8);
}

TEST(Cost, OneMillionIterationArithmetic)
{
    // 47.82 ms/iter on p3.2xlarge for 1M iterations = $40.64
    // (Table I, Random row).
    const double cost = trainingCost(AwsInstance::p3_2xlarge(), 0.04782,
                                     1'000'000);
    EXPECT_NEAR(cost, 40.64, 0.05);
}

TEST(Cost, MultiGpuRowFromTableI)
{
    // 16.22 ms/iter on p3.16xlarge = $110.3 per 1M iterations.
    const double cost = trainingCost(AwsInstance::p3_16xlarge(), 0.01622,
                                     1'000'000);
    EXPECT_NEAR(cost, 110.3, 0.2);
}

TEST(Cost, ScalesLinearly)
{
    const auto instance = AwsInstance::p3_2xlarge();
    const double one = trainingCost(instance, 0.05, 1000);
    const double two = trainingCost(instance, 0.05, 2000);
    EXPECT_NEAR(two, 2.0 * one, 1e-9);
    EXPECT_DOUBLE_EQ(trainingCost(instance, 0.05, 0), 0.0);
}

} // namespace
} // namespace sp::metrics
