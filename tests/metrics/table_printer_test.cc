/** @file TablePrinter formatting tests. */

#include <gtest/gtest.h>

#include <sstream>

#include "common/logging.h"
#include "metrics/table_printer.h"

namespace sp::metrics
{
namespace
{

TEST(TablePrinter, AlignedOutputContainsCells)
{
    TablePrinter table({"name", "value"});
    table.addRow({"alpha", "1.00"});
    table.addRow({"beta", "2.50"});
    std::ostringstream os;
    table.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("2.50"), std::string::npos);
    EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(TablePrinter, CsvOutputExact)
{
    TablePrinter table({"a", "b"});
    table.addRow({"1", "2"});
    table.addRow({"x", "y"});
    std::ostringstream os;
    table.printCsv(os);
    EXPECT_EQ(os.str(), "a,b\n1,2\nx,y\n");
}

TEST(TablePrinter, NumFormatsFixedPrecision)
{
    EXPECT_EQ(TablePrinter::num(3.14159, 2), "3.14");
    EXPECT_EQ(TablePrinter::num(3.14159, 4), "3.1416");
    EXPECT_EQ(TablePrinter::num(10.0, 0), "10");
    EXPECT_EQ(TablePrinter::num(-0.5, 1), "-0.5");
}

TEST(TablePrinter, RowWidthMismatchFatal)
{
    TablePrinter table({"a", "b"});
    EXPECT_THROW(table.addRow({"only-one"}), FatalError);
}

TEST(TablePrinter, EmptyHeadersFatal)
{
    EXPECT_THROW(TablePrinter(std::vector<std::string>{}), FatalError);
}

TEST(TablePrinter, RowCountTracked)
{
    TablePrinter table({"a"});
    EXPECT_EQ(table.numRows(), 0u);
    table.addRow({"1"});
    table.addRow({"2"});
    EXPECT_EQ(table.numRows(), 2u);
}

TEST(TablePrinter, ColumnsAlignedToWidestCell)
{
    TablePrinter table({"h", "second"});
    table.addRow({"longer-cell", "x"});
    std::ostringstream os;
    table.print(os);
    // The second column must start at the same offset in both lines.
    std::istringstream lines(os.str());
    std::string header, divider, row;
    std::getline(lines, header);
    std::getline(lines, divider);
    std::getline(lines, row);
    EXPECT_EQ(header.find("second"), row.find("x"));
}

} // namespace
} // namespace sp::metrics
