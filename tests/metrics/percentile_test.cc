/** @file Exact nearest-rank percentile tests against a brute-force
 *  sorted reference, including the off-by-one-prone sizes around the
 *  rank boundaries (N = 1, 2, 99, 100, 101). */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "common/logging.h"
#include "metrics/percentile.h"

namespace sp::metrics
{
namespace
{

/** Independent nearest-rank definition: the smallest value such that
 *  at least ceil(q * N) of the N samples are <= it. */
double
bruteForcePercentile(std::vector<double> values, double q)
{
    std::sort(values.begin(), values.end());
    size_t rank =
        static_cast<size_t>(std::ceil(q * double(values.size())));
    rank = std::clamp<size_t>(rank, 1, values.size());
    return values[rank - 1];
}

/** Deterministic, unsorted, duplicate-bearing sample of size n. */
std::vector<double>
sample(size_t n)
{
    std::vector<double> values;
    values.reserve(n);
    for (size_t i = 0; i < n; ++i) {
        // Shuffled residues with repeats; values in [0, 97).
        values.push_back(double((i * 37 + 11) % 97));
    }
    return values;
}

TEST(Percentile, MatchesBruteForceAtBoundarySizes)
{
    for (size_t n : {size_t(1), size_t(2), size_t(99), size_t(100),
                     size_t(101)}) {
        const std::vector<double> values = sample(n);
        PercentileReservoir reservoir;
        reservoir.reserve(n);
        for (double v : values)
            reservoir.add(v);
        ASSERT_EQ(reservoir.count(), n);
        for (double q : {0.5, 0.99, 0.999, 0.25, 0.75, 1.0}) {
            EXPECT_EQ(reservoir.percentile(q),
                      bruteForcePercentile(values, q))
                << "n=" << n << " q=" << q;
        }
    }
}

TEST(Percentile, RankBoundariesExact)
{
    // With 100 samples 1..100, nearest-rank is fully predictable:
    // p50 = ceil(50) = 50th value, p99 = 99th, p999 = ceil(99.9) =
    // 100th. Insert in descending order to exercise the sort.
    PercentileReservoir reservoir;
    for (int i = 100; i >= 1; --i)
        reservoir.add(double(i));
    EXPECT_EQ(reservoir.percentile(0.50), 50.0);
    EXPECT_EQ(reservoir.percentile(0.99), 99.0);
    EXPECT_EQ(reservoir.percentile(0.999), 100.0);
    EXPECT_EQ(reservoir.percentile(1.0), 100.0);
    // 101 samples: p50 rank = ceil(50.5) = 51.
    reservoir.add(101.0);
    EXPECT_EQ(reservoir.percentile(0.50), 51.0);
}

TEST(Percentile, SingleSampleIsEveryPercentile)
{
    PercentileReservoir reservoir;
    reservoir.add(42.0);
    for (double q : {0.001, 0.5, 0.99, 0.999, 1.0})
        EXPECT_EQ(reservoir.percentile(q), 42.0) << q;
    EXPECT_EQ(reservoir.mean(), 42.0);
    EXPECT_EQ(reservoir.maxValue(), 42.0);
}

TEST(Percentile, DuplicatesCollapse)
{
    PercentileReservoir reservoir;
    for (int i = 0; i < 10; ++i)
        reservoir.add(7.0);
    for (double q : {0.5, 0.99, 0.999})
        EXPECT_EQ(reservoir.percentile(q), 7.0) << q;
}

TEST(Percentile, AddAfterQueryInvalidatesCache)
{
    PercentileReservoir reservoir;
    reservoir.add(1.0);
    EXPECT_EQ(reservoir.percentile(0.999), 1.0);
    reservoir.add(5.0); // must re-sort before the next query
    EXPECT_EQ(reservoir.percentile(0.999), 5.0);
    EXPECT_EQ(reservoir.percentile(0.5), 1.0);
}

TEST(Percentile, MeanAndMaxAccumulate)
{
    PercentileReservoir reservoir;
    reservoir.add(2.0);
    reservoir.add(4.0);
    reservoir.add(9.0);
    EXPECT_DOUBLE_EQ(reservoir.mean(), 5.0);
    EXPECT_EQ(reservoir.maxValue(), 9.0);
    EXPECT_EQ(reservoir.count(), 3u);
}

TEST(Percentile, EmptyAndOutOfRangeAreFatal)
{
    PercentileReservoir reservoir;
    EXPECT_THROW(reservoir.percentile(0.5), FatalError);
    reservoir.add(1.0);
    const double nan = std::numeric_limits<double>::quiet_NaN();
    EXPECT_THROW(reservoir.percentile(0.0), FatalError);
    EXPECT_THROW(reservoir.percentile(-0.1), FatalError);
    EXPECT_THROW(reservoir.percentile(1.1), FatalError);
    EXPECT_THROW(reservoir.percentile(nan), FatalError);
}

} // namespace
} // namespace sp::metrics
