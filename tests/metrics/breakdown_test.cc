/** @file IterationBreakdown accounting tests. */

#include <gtest/gtest.h>

#include "common/logging.h"
#include "metrics/breakdown.h"

namespace sp::metrics
{
namespace
{

TEST(Breakdown, AddAndTotal)
{
    IterationBreakdown b;
    b.add("fwd", 0.02);
    b.add("bwd", 0.03);
    b.add("gpu", 0.01);
    EXPECT_DOUBLE_EQ(b.total(), 0.06);
    EXPECT_EQ(b.stages().size(), 3u);
}

TEST(Breakdown, GetSumsRepeatedNames)
{
    IterationBreakdown b;
    b.add("pcie", 0.01);
    b.add("gpu", 0.02);
    b.add("pcie", 0.005);
    EXPECT_DOUBLE_EQ(b.get("pcie"), 0.015);
    EXPECT_DOUBLE_EQ(b.get("gpu"), 0.02);
    EXPECT_DOUBLE_EQ(b.get("absent"), 0.0);
}

TEST(Breakdown, ScaleMultipliesEverything)
{
    IterationBreakdown b;
    b.add("a", 2.0);
    b.add("b", 4.0);
    b.scale(0.5);
    EXPECT_DOUBLE_EQ(b.get("a"), 1.0);
    EXPECT_DOUBLE_EQ(b.get("b"), 2.0);
}

TEST(Breakdown, AccumulateMatchingStages)
{
    IterationBreakdown total, one;
    one.add("x", 1.0);
    one.add("y", 2.0);
    total.accumulate(one);
    total.accumulate(one);
    EXPECT_DOUBLE_EQ(total.get("x"), 2.0);
    EXPECT_DOUBLE_EQ(total.get("y"), 4.0);
}

TEST(Breakdown, AccumulateIntoEmptyCopies)
{
    IterationBreakdown total, one;
    one.add("x", 1.5);
    total.accumulate(one);
    EXPECT_DOUBLE_EQ(total.total(), 1.5);
}

TEST(Breakdown, AccumulateMismatchPanics)
{
    IterationBreakdown a, b;
    a.add("x", 1.0);
    b.add("y", 1.0);
    EXPECT_THROW(a.accumulate(b), PanicError);

    IterationBreakdown c;
    c.add("x", 1.0);
    c.add("z", 1.0);
    EXPECT_THROW(a.accumulate(c), PanicError);
}

} // namespace
} // namespace sp::metrics
