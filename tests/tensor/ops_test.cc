/** @file Elementwise/reduction kernel tests. */

#include <gtest/gtest.h>

#include <cmath>

#include "common/logging.h"
#include "tensor/ops.h"
#include "tensor/rng.h"

namespace sp::tensor
{
namespace
{

TEST(Ops, ReluForwardClampsNegatives)
{
    Matrix in(1, 4), out(1, 4);
    in(0, 0) = -2.0f;
    in(0, 1) = 0.0f;
    in(0, 2) = 3.0f;
    in(0, 3) = -0.5f;
    reluForward(in, out);
    EXPECT_FLOAT_EQ(out(0, 0), 0.0f);
    EXPECT_FLOAT_EQ(out(0, 1), 0.0f);
    EXPECT_FLOAT_EQ(out(0, 2), 3.0f);
    EXPECT_FLOAT_EQ(out(0, 3), 0.0f);
}

TEST(Ops, ReluBackwardMasksGradient)
{
    Matrix in(1, 3), dout(1, 3), din(1, 3);
    in(0, 0) = -1.0f;
    in(0, 1) = 2.0f;
    in(0, 2) = 0.0f;
    dout.fill(5.0f);
    reluBackward(in, dout, din);
    EXPECT_FLOAT_EQ(din(0, 0), 0.0f);
    EXPECT_FLOAT_EQ(din(0, 1), 5.0f);
    EXPECT_FLOAT_EQ(din(0, 2), 0.0f); // relu'(0) == 0 convention
}

TEST(Ops, SigmoidKnownValues)
{
    Matrix in(1, 3), out(1, 3);
    in(0, 0) = 0.0f;
    in(0, 1) = 100.0f;
    in(0, 2) = -100.0f;
    sigmoidForward(in, out);
    EXPECT_FLOAT_EQ(out(0, 0), 0.5f);
    EXPECT_NEAR(out(0, 1), 1.0f, 1e-6f);
    EXPECT_NEAR(out(0, 2), 0.0f, 1e-6f);
}

TEST(Ops, SigmoidSymmetry)
{
    Matrix in(1, 2), out(1, 2);
    in(0, 0) = 1.7f;
    in(0, 1) = -1.7f;
    sigmoidForward(in, out);
    EXPECT_NEAR(out(0, 0) + out(0, 1), 1.0f, 1e-6f);
}

TEST(Ops, SigmoidBackwardFormula)
{
    Matrix out(1, 1), dout(1, 1), din(1, 1);
    out(0, 0) = 0.25f;
    dout(0, 0) = 2.0f;
    sigmoidBackward(out, dout, din);
    EXPECT_FLOAT_EQ(din(0, 0), 2.0f * 0.25f * 0.75f);
}

TEST(Ops, BceLossPerfectPrediction)
{
    Matrix prob(2, 1), label(2, 1);
    prob(0, 0) = 1.0f - 1e-7f;
    prob(1, 0) = 1e-7f;
    label(0, 0) = 1.0f;
    label(1, 0) = 0.0f;
    EXPECT_LT(bceLoss(prob, label), 1e-5);
}

TEST(Ops, BceLossChanceIsLn2)
{
    Matrix prob(4, 1), label(4, 1);
    prob.fill(0.5f);
    label(0, 0) = 1.0f;
    label(2, 0) = 1.0f;
    EXPECT_NEAR(bceLoss(prob, label), std::log(2.0), 1e-6);
}

TEST(Ops, BceLossClampsExtremes)
{
    Matrix prob(1, 1), label(1, 1);
    prob(0, 0) = 0.0f; // would be -log(0) without clamping
    label(0, 0) = 1.0f;
    EXPECT_TRUE(std::isfinite(bceLoss(prob, label)));
}

TEST(Ops, BceSigmoidBackwardIsErrorOverBatch)
{
    Matrix prob(2, 1), label(2, 1), dlogit(2, 1);
    prob(0, 0) = 0.8f;
    prob(1, 0) = 0.3f;
    label(0, 0) = 1.0f;
    label(1, 0) = 0.0f;
    bceSigmoidBackward(prob, label, dlogit);
    EXPECT_NEAR(dlogit(0, 0), (0.8f - 1.0f) / 2.0f, 1e-7f);
    EXPECT_NEAR(dlogit(1, 0), 0.3f / 2.0f, 1e-7f);
}

TEST(Ops, BceGradientMatchesFiniteDifference)
{
    // d/dx BCE(sigmoid(x), y) should match (sigmoid(x)-y)/B.
    const float x0 = 0.37f, y = 1.0f, eps = 1e-3f;
    auto loss_at = [&](float x) {
        Matrix logit(1, 1), prob(1, 1), label(1, 1);
        logit(0, 0) = x;
        label(0, 0) = y;
        sigmoidForward(logit, prob);
        return bceLoss(prob, label);
    };
    const double numeric =
        (loss_at(x0 + eps) - loss_at(x0 - eps)) / (2.0 * eps);

    Matrix logit(1, 1), prob(1, 1), label(1, 1), dlogit(1, 1);
    logit(0, 0) = x0;
    label(0, 0) = y;
    sigmoidForward(logit, prob);
    bceSigmoidBackward(prob, label, dlogit);
    EXPECT_NEAR(dlogit(0, 0), numeric, 1e-4);
}

TEST(Ops, Axpy)
{
    Matrix x(1, 3), y(1, 3);
    x(0, 0) = 1.0f;
    x(0, 1) = 2.0f;
    x(0, 2) = 3.0f;
    y.fill(10.0f);
    axpy(-2.0f, x, y);
    EXPECT_FLOAT_EQ(y(0, 0), 8.0f);
    EXPECT_FLOAT_EQ(y(0, 1), 6.0f);
    EXPECT_FLOAT_EQ(y(0, 2), 4.0f);
}

TEST(Ops, SumAll)
{
    Matrix m(2, 2);
    m(0, 0) = 1.0f;
    m(0, 1) = -2.0f;
    m(1, 0) = 3.5f;
    m(1, 1) = 0.5f;
    EXPECT_DOUBLE_EQ(sumAll(m), 3.0);
}

TEST(Ops, BinaryAccuracy)
{
    Matrix prob(4, 1), label(4, 1);
    prob(0, 0) = 0.9f;
    label(0, 0) = 1.0f; // correct
    prob(1, 0) = 0.2f;
    label(1, 0) = 0.0f; // correct
    prob(2, 0) = 0.6f;
    label(2, 0) = 0.0f; // wrong
    prob(3, 0) = 0.5f;
    label(3, 0) = 1.0f; // >= 0.5 counts as positive: correct
    EXPECT_DOUBLE_EQ(binaryAccuracy(prob, label), 0.75);
}

TEST(Ops, ShapeMismatchPanics)
{
    Matrix a(2, 2), b(2, 3);
    EXPECT_THROW(reluForward(a, b), PanicError);
    EXPECT_THROW(axpy(1.0f, a, b), PanicError);
}

} // namespace
} // namespace sp::tensor
