/** @file GEMM kernels validated against a naive reference. */

#include <gtest/gtest.h>

#include <tuple>

#include "common/logging.h"
#include "tensor/gemm.h"
#include "tensor/rng.h"

namespace sp::tensor
{
namespace
{

Matrix
randomMatrix(size_t rows, size_t cols, uint64_t seed)
{
    Matrix m(rows, cols);
    Rng rng(seed);
    m.fillUniform(rng, -1.0f, 1.0f);
    return m;
}

/** Naive O(n^3) reference: C = alpha*A*B + beta*C. */
Matrix
referenceGemm(const Matrix &a, const Matrix &b, const Matrix &c_in,
              float alpha, float beta)
{
    Matrix c = c_in;
    for (size_t i = 0; i < a.rows(); ++i) {
        for (size_t j = 0; j < b.cols(); ++j) {
            double acc = 0.0;
            for (size_t p = 0; p < a.cols(); ++p)
                acc += static_cast<double>(a(i, p)) * b(p, j);
            c(i, j) = alpha * static_cast<float>(acc) + beta * c(i, j);
        }
    }
    return c;
}

Matrix
transpose(const Matrix &m)
{
    Matrix t(m.cols(), m.rows());
    for (size_t i = 0; i < m.rows(); ++i)
        for (size_t j = 0; j < m.cols(); ++j)
            t(j, i) = m(i, j);
    return t;
}

class GemmShapes
    : public ::testing::TestWithParam<std::tuple<size_t, size_t, size_t>>
{
};

TEST_P(GemmShapes, MatchesReference)
{
    const auto [m, k, n] = GetParam();
    const Matrix a = randomMatrix(m, k, 1);
    const Matrix b = randomMatrix(k, n, 2);
    Matrix c(m, n);
    gemm(a, b, c);
    const Matrix expected = referenceGemm(a, b, Matrix(m, n), 1.0f, 0.0f);
    EXPECT_LE(Matrix::maxAbsDiff(c, expected), 1e-4f);
}

TEST_P(GemmShapes, NTMatchesReference)
{
    const auto [m, k, n] = GetParam();
    const Matrix a = randomMatrix(m, k, 3);
    const Matrix bt = randomMatrix(n, k, 4); // B^T stored as n x k
    Matrix c(m, n);
    gemmNT(a, bt, c);
    const Matrix expected =
        referenceGemm(a, transpose(bt), Matrix(m, n), 1.0f, 0.0f);
    EXPECT_LE(Matrix::maxAbsDiff(c, expected), 1e-4f);
}

TEST_P(GemmShapes, TNMatchesReference)
{
    const auto [m, k, n] = GetParam();
    const Matrix at = randomMatrix(k, m, 5); // A^T stored as k x m
    const Matrix b = randomMatrix(k, n, 6);
    Matrix c(m, n);
    gemmTN(at, b, c);
    const Matrix expected =
        referenceGemm(transpose(at), b, Matrix(m, n), 1.0f, 0.0f);
    EXPECT_LE(Matrix::maxAbsDiff(c, expected), 1e-4f);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmShapes,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(4, 7, 3),
                      std::make_tuple(16, 16, 16),
                      std::make_tuple(65, 31, 47),
                      std::make_tuple(128, 64, 70),
                      std::make_tuple(3, 130, 5)));

TEST(Gemm, AlphaBetaComposition)
{
    const Matrix a = randomMatrix(8, 8, 7);
    const Matrix b = randomMatrix(8, 8, 8);
    Matrix c = randomMatrix(8, 8, 9);
    const Matrix expected = referenceGemm(a, b, c, 0.5f, 2.0f);
    gemm(a, b, c, 0.5f, 2.0f);
    EXPECT_LE(Matrix::maxAbsDiff(c, expected), 1e-4f);
}

TEST(Gemm, BetaZeroOverwritesGarbage)
{
    const Matrix a = randomMatrix(4, 4, 10);
    const Matrix b = randomMatrix(4, 4, 11);
    Matrix c(4, 4);
    c.fill(1e30f); // must be ignored with beta = 0
    gemm(a, b, c, 1.0f, 0.0f);
    const Matrix expected =
        referenceGemm(a, b, Matrix(4, 4), 1.0f, 0.0f);
    EXPECT_LE(Matrix::maxAbsDiff(c, expected), 1e-4f);
}

TEST(Gemm, ShapeMismatchPanics)
{
    Matrix a(2, 3), b(4, 2), c(2, 2);
    EXPECT_THROW(gemm(a, b, c), PanicError);
}

TEST(Gemm, AddRowBroadcast)
{
    Matrix c(3, 2);
    c.fill(1.0f);
    Matrix bias(1, 2);
    bias(0, 0) = 10.0f;
    bias(0, 1) = -1.0f;
    addRowBroadcast(c, bias);
    for (size_t i = 0; i < 3; ++i) {
        EXPECT_FLOAT_EQ(c(i, 0), 11.0f);
        EXPECT_FLOAT_EQ(c(i, 1), 0.0f);
    }
}

TEST(Gemm, AddRowBroadcastShapePanics)
{
    Matrix c(3, 2), bias(1, 3);
    EXPECT_THROW(addRowBroadcast(c, bias), PanicError);
}

TEST(Gemm, SumRows)
{
    Matrix a(3, 2);
    a(0, 0) = 1.0f;
    a(1, 0) = 2.0f;
    a(2, 0) = 3.0f;
    a(0, 1) = -1.0f;
    Matrix bias(1, 2);
    sumRows(a, bias);
    EXPECT_FLOAT_EQ(bias(0, 0), 6.0f);
    EXPECT_FLOAT_EQ(bias(0, 1), -1.0f);
}

TEST(Gemm, FlopsFormula)
{
    EXPECT_DOUBLE_EQ(gemmFlops(2, 3, 4), 48.0);
    EXPECT_DOUBLE_EQ(gemmFlops(100, 100, 100), 2e6);
}

} // namespace
} // namespace sp::tensor
