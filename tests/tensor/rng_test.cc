/** @file Unit tests for the xoshiro256** generator. */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/logging.h"
#include "tensor/rng.h"

namespace sp::tensor
{
namespace
{

TEST(Rng, SameSeedSameStream)
{
    Rng a(123), b(123);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int equal = 0;
    for (int i = 0; i < 1000; ++i) {
        if (a.next() == b.next())
            ++equal;
    }
    EXPECT_LT(equal, 5);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformMeanNearHalf)
{
    Rng rng(11);
    double total = 0.0;
    constexpr int n = 100000;
    for (int i = 0; i < n; ++i)
        total += rng.uniform();
    EXPECT_NEAR(total / n, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds)
{
    Rng rng(13);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform(-3.0, 5.0);
        EXPECT_GE(u, -3.0);
        EXPECT_LT(u, 5.0);
    }
}

TEST(Rng, UniformIntInRange)
{
    Rng rng(17);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.uniformInt(37), 37u);
}

TEST(Rng, UniformIntCoversAllValues)
{
    Rng rng(19);
    std::set<uint64_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(rng.uniformInt(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, UniformIntZeroPanics)
{
    Rng rng(23);
    EXPECT_THROW(rng.uniformInt(0), PanicError);
}

TEST(Rng, NormalMomentsMatch)
{
    Rng rng(29);
    double sum = 0.0, sumsq = 0.0;
    constexpr int n = 200000;
    for (int i = 0; i < n; ++i) {
        const double x = rng.normal();
        sum += x;
        sumsq += x * x;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.01);
    EXPECT_NEAR(sumsq / n, 1.0, 0.02);
}

TEST(Rng, NormalScaleShift)
{
    Rng rng(31);
    double sum = 0.0;
    constexpr int n = 50000;
    for (int i = 0; i < n; ++i)
        sum += rng.normal(10.0, 2.0);
    EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(Rng, BernoulliFrequency)
{
    Rng rng(37);
    int heads = 0;
    constexpr int n = 100000;
    for (int i = 0; i < n; ++i) {
        if (rng.bernoulli(0.3))
            ++heads;
    }
    EXPECT_NEAR(static_cast<double>(heads) / n, 0.3, 0.01);
}

TEST(Rng, SplitProducesIndependentStream)
{
    Rng parent(41);
    Rng child = parent.split();
    int equal = 0;
    for (int i = 0; i < 1000; ++i) {
        if (parent.next() == child.next())
            ++equal;
    }
    EXPECT_LT(equal, 5);
}

TEST(Rng, SplitIsDeterministic)
{
    Rng a(43), b(43);
    Rng ca = a.split();
    Rng cb = b.split();
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(ca.next(), cb.next());
}

} // namespace
} // namespace sp::tensor
