/** @file Unit tests for the dense Matrix type. */

#include <gtest/gtest.h>

#include "common/logging.h"
#include "tensor/matrix.h"
#include "tensor/rng.h"

namespace sp::tensor
{
namespace
{

TEST(Matrix, ConstructedZeroFilled)
{
    Matrix m(3, 4);
    EXPECT_EQ(m.rows(), 3u);
    EXPECT_EQ(m.cols(), 4u);
    EXPECT_EQ(m.size(), 12u);
    for (size_t i = 0; i < m.size(); ++i)
        EXPECT_EQ(m.data()[i], 0.0f);
}

TEST(Matrix, DefaultIsEmpty)
{
    Matrix m;
    EXPECT_TRUE(m.empty());
    EXPECT_EQ(m.size(), 0u);
}

TEST(Matrix, ElementAccessRoundTrips)
{
    Matrix m(2, 3);
    m(1, 2) = 5.0f;
    m(0, 0) = -1.0f;
    EXPECT_EQ(m(1, 2), 5.0f);
    EXPECT_EQ(m(0, 0), -1.0f);
    EXPECT_EQ(m.at(1, 2), 5.0f);
}

TEST(Matrix, AtBoundsChecked)
{
    Matrix m(2, 3);
    EXPECT_THROW(m.at(2, 0), PanicError);
    EXPECT_THROW(m.at(0, 3), PanicError);
}

TEST(Matrix, RowPointerMatchesLayout)
{
    Matrix m(3, 4);
    m(2, 1) = 7.0f;
    EXPECT_EQ(m.row(2)[1], 7.0f);
    EXPECT_EQ(m.row(0) + 2 * 4, m.row(2));
}

TEST(Matrix, ReshapePreservesData)
{
    Matrix m(2, 6);
    m(1, 5) = 9.0f;
    m.reshape(3, 4);
    EXPECT_EQ(m.rows(), 3u);
    EXPECT_EQ(m(2, 3), 9.0f); // same linear index 11
}

TEST(Matrix, ReshapeBadCountPanics)
{
    Matrix m(2, 6);
    EXPECT_THROW(m.reshape(5, 3), PanicError);
}

TEST(Matrix, ResizeDiscardsContents)
{
    Matrix m(2, 2);
    m.fill(3.0f);
    m.resize(4, 4);
    EXPECT_EQ(m.size(), 16u);
    EXPECT_EQ(m(3, 3), 0.0f);
}

TEST(Matrix, FillSetsEveryElement)
{
    Matrix m(5, 5);
    m.fill(2.5f);
    for (size_t i = 0; i < m.size(); ++i)
        EXPECT_EQ(m.data()[i], 2.5f);
}

TEST(Matrix, FillNormalHasRequestedSpread)
{
    Matrix m(100, 100);
    Rng rng(3);
    m.fillNormal(rng, 2.0f);
    double sum = 0.0, sumsq = 0.0;
    for (size_t i = 0; i < m.size(); ++i) {
        sum += m.data()[i];
        sumsq += m.data()[i] * m.data()[i];
    }
    const double n = static_cast<double>(m.size());
    EXPECT_NEAR(sum / n, 0.0, 0.05);
    EXPECT_NEAR(sumsq / n, 4.0, 0.15);
}

TEST(Matrix, FillUniformRespectsBounds)
{
    Matrix m(50, 50);
    Rng rng(5);
    m.fillUniform(rng, -1.0f, 1.0f);
    for (size_t i = 0; i < m.size(); ++i) {
        EXPECT_GE(m.data()[i], -1.0f);
        EXPECT_LT(m.data()[i], 1.0f);
    }
}

TEST(Matrix, KaimingBoundScalesWithFanIn)
{
    Matrix m(10, 100);
    Rng rng(7);
    m.fillKaiming(rng, 100);
    const float bound = 0.1f; // sqrt(1/100)
    for (size_t i = 0; i < m.size(); ++i) {
        EXPECT_GE(m.data()[i], -bound);
        EXPECT_LE(m.data()[i], bound);
    }
}

TEST(Matrix, MaxAbsDiffFindsWorstElement)
{
    Matrix a(2, 2), b(2, 2);
    a(0, 0) = 1.0f;
    b(0, 0) = 1.5f;
    a(1, 1) = -2.0f;
    b(1, 1) = 1.0f;
    EXPECT_FLOAT_EQ(Matrix::maxAbsDiff(a, b), 3.0f);
}

TEST(Matrix, MaxAbsDiffShapeMismatchPanics)
{
    Matrix a(2, 2), b(2, 3);
    EXPECT_THROW(Matrix::maxAbsDiff(a, b), PanicError);
}

TEST(Matrix, IdenticalExactEquality)
{
    Matrix a(2, 2), b(2, 2);
    a(0, 1) = 0.1f;
    b(0, 1) = 0.1f;
    EXPECT_TRUE(Matrix::identical(a, b));
    b(1, 0) = 1e-30f;
    EXPECT_FALSE(Matrix::identical(a, b));
}

TEST(Matrix, IdenticalDifferentShapesFalse)
{
    Matrix a(2, 2), b(4, 1);
    EXPECT_FALSE(Matrix::identical(a, b));
}

} // namespace
} // namespace sp::tensor
