/** @file End-to-end DLRM backend tests. */

#include <gtest/gtest.h>

#include <cmath>

#include "common/logging.h"
#include "nn/dlrm.h"
#include "nn/flops.h"
#include "tensor/rng.h"

namespace sp::nn
{
namespace
{

DlrmConfig
tinyConfig()
{
    DlrmConfig config;
    config.num_tables = 3;
    config.embedding_dim = 8;
    config.dense_features = 4;
    config.bottom_hidden = {16};
    config.top_hidden = {32, 16};
    config.learning_rate = 0.05f;
    return config;
}

struct Inputs
{
    tensor::Matrix dense;
    std::vector<tensor::Matrix> reduced;
    tensor::Matrix labels;
};

Inputs
makeInputs(const DlrmConfig &config, size_t batch, uint64_t seed)
{
    tensor::Rng rng(seed);
    Inputs in;
    in.dense.resize(batch, config.dense_features);
    in.dense.fillNormal(rng, 1.0f);
    in.reduced.assign(config.num_tables,
                      tensor::Matrix(batch, config.embedding_dim));
    for (auto &r : in.reduced)
        r.fillNormal(rng, 0.5f);
    in.labels.resize(batch, 1);
    for (size_t i = 0; i < batch; ++i)
        in.labels(i, 0) = rng.bernoulli(0.5) ? 1.0f : 0.0f;
    return in;
}

TEST(Dlrm, ForwardProducesFiniteLoss)
{
    DlrmModel model(tinyConfig(), 1);
    auto in = makeInputs(tinyConfig(), 16, 2);
    const auto result = model.forward(in.dense, in.reduced, in.labels);
    EXPECT_TRUE(std::isfinite(result.loss));
    EXPECT_GE(result.accuracy, 0.0);
    EXPECT_LE(result.accuracy, 1.0);
}

TEST(Dlrm, UntrainedLossNearChance)
{
    DlrmModel model(tinyConfig(), 3);
    auto in = makeInputs(tinyConfig(), 256, 4);
    const auto result = model.forward(in.dense, in.reduced, in.labels);
    // Untrained logits are small, so loss should be near ln 2.
    EXPECT_NEAR(result.loss, std::log(2.0), 0.25);
}

TEST(Dlrm, BackwardShapes)
{
    DlrmModel model(tinyConfig(), 5);
    auto in = makeInputs(tinyConfig(), 8, 6);
    model.forward(in.dense, in.reduced, in.labels);
    std::vector<tensor::Matrix> emb_grads;
    model.backward(emb_grads);
    ASSERT_EQ(emb_grads.size(), 3u);
    for (const auto &g : emb_grads) {
        EXPECT_EQ(g.rows(), 8u);
        EXPECT_EQ(g.cols(), 8u);
    }
}

TEST(Dlrm, EmbeddingGradientsMatchFiniteDifferences)
{
    const DlrmConfig config = tinyConfig();
    DlrmModel model(config, 7);
    auto in = makeInputs(config, 4, 8);

    model.forward(in.dense, in.reduced, in.labels);
    std::vector<tensor::Matrix> emb_grads;
    model.backward(emb_grads);

    const float eps = 1e-3f;
    auto loss = [&]() {
        return model.forward(in.dense, in.reduced, in.labels).loss;
    };
    // Spot-check a few coordinates in each table's gradient.
    for (size_t t = 0; t < config.num_tables; ++t) {
        for (size_t i = 0; i < 2; ++i) {
            for (size_t d = 0; d < 3; ++d) {
                const float saved = in.reduced[t](i, d);
                in.reduced[t](i, d) = saved + eps;
                const double up = loss();
                in.reduced[t](i, d) = saved - eps;
                const double down = loss();
                in.reduced[t](i, d) = saved;
                EXPECT_NEAR(emb_grads[t](i, d),
                            (up - down) / (2.0 * eps), 2e-3)
                    << "table " << t << " (" << i << "," << d << ")";
            }
        }
    }
}

TEST(Dlrm, TrainingReducesLossOnFixedBatch)
{
    // Overfit one fixed batch: with a healthy backward pass the BCE
    // loss must fall well below its starting point.
    DlrmConfig config = tinyConfig();
    config.learning_rate = 0.5f; // gradients carry a 1/batch factor
    DlrmModel model(config, 9);
    auto in = makeInputs(config, 64, 10);
    const double before =
        model.forward(in.dense, in.reduced, in.labels).loss;
    for (int step = 0; step < 400; ++step) {
        model.forward(in.dense, in.reduced, in.labels);
        std::vector<tensor::Matrix> emb_grads;
        model.backward(emb_grads);
        model.step();
    }
    const double after =
        model.forward(in.dense, in.reduced, in.labels).loss;
    EXPECT_LT(after, before * 0.8);
}

TEST(Dlrm, SameSeedIdenticalModels)
{
    DlrmModel a(tinyConfig(), 11), b(tinyConfig(), 11);
    EXPECT_TRUE(DlrmModel::identical(a, b));
    DlrmModel c(tinyConfig(), 12);
    EXPECT_FALSE(DlrmModel::identical(a, c));
}

TEST(Dlrm, IdenticalTrainingKeepsModelsIdentical)
{
    DlrmModel a(tinyConfig(), 13), b(tinyConfig(), 13);
    auto in = makeInputs(tinyConfig(), 16, 14);
    for (int step = 0; step < 5; ++step) {
        std::vector<tensor::Matrix> ga, gb;
        a.forward(in.dense, in.reduced, in.labels);
        a.backward(ga);
        a.step();
        b.forward(in.dense, in.reduced, in.labels);
        b.backward(gb);
        b.step();
    }
    EXPECT_TRUE(DlrmModel::identical(a, b));
}

TEST(Dlrm, ParameterCountMatchesArchitecture)
{
    const DlrmConfig config = tinyConfig();
    DlrmModel model(config, 15);
    // Bottom: 4->16->8; top: (8 + C(4,2)=6)=14 -> 32 -> 16 -> 1.
    const size_t bottom = (4 * 16 + 16) + (16 * 8 + 8);
    const size_t top = (14 * 32 + 32) + (32 * 16 + 16) + (16 * 1 + 1);
    EXPECT_EQ(model.parameterCount(), bottom + top);
}

TEST(Dlrm, FlopCountPositiveAndScalesWithBatch)
{
    const DlrmConfig config = tinyConfig();
    const double f1 = dlrmIterationFlops(config, 16);
    const double f2 = dlrmIterationFlops(config, 32);
    EXPECT_GT(f1, 0.0);
    EXPECT_NEAR(f2 / f1, 2.0, 1e-9);
}

TEST(Dlrm, PaperScaleFlopsReasonable)
{
    DlrmConfig config;
    config.num_tables = 8;
    config.embedding_dim = 128;
    config.dense_features = 13;
    // MLPerf-like DLRM at batch 2048: tens of GFLOPs per iteration.
    const double flops = dlrmIterationFlops(config, 2048);
    EXPECT_GT(flops, 5e9);
    EXPECT_LT(flops, 1e11);
}

TEST(Dlrm, BackwardWithoutForwardPanics)
{
    DlrmModel model(tinyConfig(), 16);
    std::vector<tensor::Matrix> emb_grads;
    EXPECT_THROW(model.backward(emb_grads), PanicError);
}

TEST(Dlrm, WrongTableCountPanics)
{
    DlrmModel model(tinyConfig(), 17);
    auto in = makeInputs(tinyConfig(), 4, 18);
    in.reduced.pop_back();
    EXPECT_THROW(model.forward(in.dense, in.reduced, in.labels),
                 PanicError);
}

} // namespace
} // namespace sp::nn
