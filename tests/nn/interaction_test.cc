/** @file Feature-interaction forward/backward tests. */

#include <gtest/gtest.h>

#include "common/logging.h"
#include "nn/interaction.h"
#include "tensor/ops.h"
#include "tensor/rng.h"

namespace sp::nn
{
namespace
{

TEST(Interaction, OutputDimFormula)
{
    // D + (T+1 choose 2).
    EXPECT_EQ(FeatureInteraction(8, 128).outputDim(), 128u + 36u);
    EXPECT_EQ(FeatureInteraction(1, 4).outputDim(), 4u + 1u);
}

TEST(Interaction, PassThroughAndDots)
{
    FeatureInteraction interact(2, 2);
    tensor::Matrix bottom(1, 2);
    bottom(0, 0) = 1.0f;
    bottom(0, 1) = 2.0f;
    std::vector<tensor::Matrix> embs(2, tensor::Matrix(1, 2));
    embs[0](0, 0) = 3.0f;
    embs[0](0, 1) = 4.0f;
    embs[1](0, 0) = -1.0f;
    embs[1](0, 1) = 0.5f;

    tensor::Matrix out;
    interact.forward(bottom, embs, out);
    ASSERT_EQ(out.cols(), 2u + 3u);
    EXPECT_FLOAT_EQ(out(0, 0), 1.0f); // bottom passes through
    EXPECT_FLOAT_EQ(out(0, 1), 2.0f);
    EXPECT_FLOAT_EQ(out(0, 2), 1.0f * 3 + 2 * 4);   // bottom . e0
    EXPECT_FLOAT_EQ(out(0, 3), 1.0f * -1 + 2 * 0.5); // bottom . e1
    EXPECT_FLOAT_EQ(out(0, 4), 3.0f * -1 + 4 * 0.5); // e0 . e1
}

TEST(Interaction, BatchRowsIndependent)
{
    FeatureInteraction interact(1, 2);
    tensor::Rng rng(1);
    tensor::Matrix bottom(3, 2);
    bottom.fillUniform(rng, -1.0f, 1.0f);
    std::vector<tensor::Matrix> embs(1, tensor::Matrix(3, 2));
    embs[0].fillUniform(rng, -1.0f, 1.0f);

    tensor::Matrix out;
    interact.forward(bottom, embs, out);
    for (size_t i = 0; i < 3; ++i) {
        const float expected = bottom(i, 0) * embs[0](i, 0) +
                               bottom(i, 1) * embs[0](i, 1);
        EXPECT_NEAR(out(i, 2), expected, 1e-6f);
    }
}

TEST(Interaction, GradientsMatchFiniteDifferences)
{
    constexpr size_t tables = 2, dim = 3, batch = 2;
    FeatureInteraction interact(tables, dim);
    tensor::Rng rng(2);
    tensor::Matrix bottom(batch, dim);
    bottom.fillUniform(rng, -1.0f, 1.0f);
    std::vector<tensor::Matrix> embs(tables, tensor::Matrix(batch, dim));
    for (auto &e : embs)
        e.fillUniform(rng, -1.0f, 1.0f);

    tensor::Matrix out;
    interact.forward(bottom, embs, out);
    tensor::Matrix dout(batch, interact.outputDim());
    dout.fill(1.0f);
    tensor::Matrix dbottom;
    std::vector<tensor::Matrix> dembs;
    interact.backward(dout, dbottom, dembs);

    const float eps = 1e-3f;
    auto loss = [&]() {
        tensor::Matrix y;
        interact.forward(bottom, embs, y);
        return tensor::sumAll(y);
    };

    for (size_t i = 0; i < batch; ++i) {
        for (size_t d = 0; d < dim; ++d) {
            float saved = bottom(i, d);
            bottom(i, d) = saved + eps;
            const double up = loss();
            bottom(i, d) = saved - eps;
            const double down = loss();
            bottom(i, d) = saved;
            EXPECT_NEAR(dbottom(i, d), (up - down) / (2.0 * eps), 1e-2);
        }
    }
    for (size_t t = 0; t < tables; ++t) {
        for (size_t i = 0; i < batch; ++i) {
            for (size_t d = 0; d < dim; ++d) {
                float saved = embs[t](i, d);
                embs[t](i, d) = saved + eps;
                const double up = loss();
                embs[t](i, d) = saved - eps;
                const double down = loss();
                embs[t](i, d) = saved;
                EXPECT_NEAR(dembs[t](i, d), (up - down) / (2.0 * eps),
                            1e-2);
            }
        }
    }
}

TEST(Interaction, WrongTableCountPanics)
{
    FeatureInteraction interact(2, 4);
    tensor::Matrix bottom(1, 4), out;
    std::vector<tensor::Matrix> embs(1, tensor::Matrix(1, 4));
    EXPECT_THROW(interact.forward(bottom, embs, out), PanicError);
}

TEST(Interaction, BackwardWithoutForwardPanics)
{
    FeatureInteraction interact(1, 2);
    tensor::Matrix dout(1, 3), dbottom;
    std::vector<tensor::Matrix> dembs;
    EXPECT_THROW(interact.backward(dout, dbottom, dembs), PanicError);
}

} // namespace
} // namespace sp::nn
