/** @file Linear layer forward/backward/SGD tests with grad checks. */

#include <gtest/gtest.h>

#include "common/logging.h"
#include "nn/linear.h"
#include "tensor/ops.h"

namespace sp::nn
{
namespace
{

TEST(Linear, ForwardShape)
{
    tensor::Rng rng(1);
    Linear layer(5, 3, rng);
    tensor::Matrix input(7, 5), out;
    layer.forward(input, out);
    EXPECT_EQ(out.rows(), 7u);
    EXPECT_EQ(out.cols(), 3u);
}

TEST(Linear, ZeroInputYieldsBias)
{
    tensor::Rng rng(2);
    Linear layer(4, 2, rng);
    tensor::Matrix input(3, 4), out;
    layer.forward(input, out);
    for (size_t i = 0; i < 3; ++i) {
        EXPECT_FLOAT_EQ(out(i, 0), layer.bias()(0, 0));
        EXPECT_FLOAT_EQ(out(i, 1), layer.bias()(0, 1));
    }
}

TEST(Linear, ForwardMatchesManualComputation)
{
    tensor::Rng rng(3);
    Linear layer(2, 2, rng);
    layer.weights()(0, 0) = 1.0f;
    layer.weights()(0, 1) = 2.0f;
    layer.weights()(1, 0) = -1.0f;
    layer.weights()(1, 1) = 0.5f;
    layer.bias()(0, 0) = 0.1f;
    layer.bias()(0, 1) = -0.2f;

    tensor::Matrix input(1, 2), out;
    input(0, 0) = 3.0f;
    input(0, 1) = 4.0f;
    layer.forward(input, out);
    EXPECT_NEAR(out(0, 0), 3.0f + 8.0f + 0.1f, 1e-6f);
    EXPECT_NEAR(out(0, 1), -3.0f + 2.0f - 0.2f, 1e-6f);
}

/**
 * Finite-difference gradient check of a scalar objective
 * L = sum(forward(X)) against the analytic dW, db, dX.
 */
TEST(Linear, GradientsMatchFiniteDifferences)
{
    tensor::Rng rng(4);
    Linear layer(3, 2, rng);
    tensor::Matrix input(4, 3);
    input.fillUniform(rng, -1.0f, 1.0f);

    tensor::Matrix out;
    layer.forward(input, out);
    // dL/dY = 1 for L = sum(Y).
    tensor::Matrix dout(4, 2);
    dout.fill(1.0f);
    tensor::Matrix dinput;
    layer.backward(input, dout, dinput);

    const float eps = 1e-3f;
    auto loss = [&]() {
        tensor::Matrix y;
        layer.forward(input, y);
        return tensor::sumAll(y);
    };

    // Check a handful of weight gradients.
    for (size_t o = 0; o < 2; ++o) {
        for (size_t in = 0; in < 3; ++in) {
            const float saved = layer.weights()(o, in);
            layer.weights()(o, in) = saved + eps;
            const double up = loss();
            layer.weights()(o, in) = saved - eps;
            const double down = loss();
            layer.weights()(o, in) = saved;
            EXPECT_NEAR(layer.weightGrads()(o, in),
                        (up - down) / (2.0 * eps), 1e-2);
        }
    }

    // Check input gradients.
    for (size_t i = 0; i < 4; ++i) {
        for (size_t c = 0; c < 3; ++c) {
            const float saved = input(i, c);
            input(i, c) = saved + eps;
            const double up = loss();
            input(i, c) = saved - eps;
            const double down = loss();
            input(i, c) = saved;
            EXPECT_NEAR(dinput(i, c), (up - down) / (2.0 * eps), 1e-2);
        }
    }
}

TEST(Linear, StepMovesAgainstGradient)
{
    tensor::Rng rng(5);
    Linear layer(2, 1, rng);
    tensor::Matrix input(1, 2);
    input(0, 0) = 1.0f;
    input(0, 1) = 1.0f;

    tensor::Matrix out;
    layer.forward(input, out);
    const float before = out(0, 0);

    tensor::Matrix dout(1, 1), dinput;
    dout(0, 0) = 1.0f; // increase of output is "bad"
    layer.backward(input, dout, dinput);
    layer.step(0.1f);

    layer.forward(input, out);
    EXPECT_LT(out(0, 0), before);
}

TEST(Linear, ParameterCount)
{
    tensor::Rng rng(6);
    Linear layer(10, 4, rng);
    EXPECT_EQ(layer.parameterCount(), 10u * 4 + 4);
}

TEST(Linear, IdenticalComparesParameters)
{
    tensor::Rng ra(7), rb(7);
    Linear a(3, 3, ra), b(3, 3, rb);
    EXPECT_TRUE(Linear::identical(a, b));
    b.weights()(1, 1) += 1e-6f;
    EXPECT_FALSE(Linear::identical(a, b));
}

TEST(Linear, WrongInputWidthPanics)
{
    tensor::Rng rng(8);
    Linear layer(3, 2, rng);
    tensor::Matrix bad(4, 5), out;
    EXPECT_THROW(layer.forward(bad, out), PanicError);
}

TEST(Linear, ZeroDimensionsFatal)
{
    tensor::Rng rng(9);
    EXPECT_THROW(Linear(0, 2, rng), FatalError);
    EXPECT_THROW(Linear(2, 0, rng), FatalError);
}

} // namespace
} // namespace sp::nn
