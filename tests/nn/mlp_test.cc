/** @file MLP stacking, backward and training-progress tests. */

#include <gtest/gtest.h>

#include "common/logging.h"
#include "nn/mlp.h"
#include "tensor/ops.h"

namespace sp::nn
{
namespace
{

TEST(Mlp, BuildsRequestedLayers)
{
    tensor::Rng rng(1);
    Mlp mlp({13, 512, 256, 128}, rng);
    EXPECT_EQ(mlp.numLayers(), 3u);
    EXPECT_EQ(mlp.inputDim(), 13u);
    EXPECT_EQ(mlp.outputDim(), 128u);
}

TEST(Mlp, ForwardShape)
{
    tensor::Rng rng(2);
    Mlp mlp({4, 8, 2}, rng);
    tensor::Matrix input(5, 4), out;
    input.fillUniform(rng, -1.0f, 1.0f);
    mlp.forward(input, out);
    EXPECT_EQ(out.rows(), 5u);
    EXPECT_EQ(out.cols(), 2u);
}

TEST(Mlp, ReluOutputNonNegative)
{
    tensor::Rng rng(3);
    Mlp mlp({4, 8, 3}, rng, /*relu_output=*/true);
    tensor::Matrix input(16, 4), out;
    input.fillUniform(rng, -2.0f, 2.0f);
    mlp.forward(input, out);
    for (size_t i = 0; i < out.size(); ++i)
        EXPECT_GE(out.data()[i], 0.0f);
}

TEST(Mlp, LinearOutputCanBeNegative)
{
    tensor::Rng rng(4);
    Mlp mlp({4, 8, 3}, rng, /*relu_output=*/false);
    tensor::Matrix input(64, 4), out;
    input.fillUniform(rng, -2.0f, 2.0f);
    mlp.forward(input, out);
    bool any_negative = false;
    for (size_t i = 0; i < out.size(); ++i)
        any_negative |= out.data()[i] < 0.0f;
    EXPECT_TRUE(any_negative);
}

TEST(Mlp, GradientsMatchFiniteDifferences)
{
    tensor::Rng rng(5);
    Mlp mlp({3, 6, 2}, rng, /*relu_output=*/false);
    tensor::Matrix input(4, 3);
    input.fillUniform(rng, -1.0f, 1.0f);

    tensor::Matrix out;
    mlp.forward(input, out);
    tensor::Matrix dout(4, 2);
    dout.fill(1.0f);
    tensor::Matrix dinput;
    mlp.backward(dout, dinput);

    const float eps = 1e-3f;
    auto loss = [&]() {
        tensor::Matrix y;
        mlp.forward(input, y);
        return tensor::sumAll(y);
    };
    for (size_t i = 0; i < 4; ++i) {
        for (size_t c = 0; c < 3; ++c) {
            const float saved = input(i, c);
            input(i, c) = saved + eps;
            const double up = loss();
            input(i, c) = saved - eps;
            const double down = loss();
            input(i, c) = saved;
            EXPECT_NEAR(dinput(i, c), (up - down) / (2.0 * eps), 2e-2)
                << "input grad (" << i << "," << c << ")";
        }
    }
}

TEST(Mlp, TrainsToReduceRegressionLoss)
{
    // Tiny regression: y = sum(x). The MLP should fit it quickly.
    tensor::Rng rng(6);
    Mlp mlp({2, 16, 1}, rng, /*relu_output=*/false);
    tensor::Matrix input(32, 2), target(32, 1);
    input.fillUniform(rng, -1.0f, 1.0f);
    for (size_t i = 0; i < 32; ++i)
        target(i, 0) = input(i, 0) + input(i, 1);

    auto mse = [&](const tensor::Matrix &pred) {
        double total = 0.0;
        for (size_t i = 0; i < pred.rows(); ++i) {
            const double d = pred(i, 0) - target(i, 0);
            total += d * d;
        }
        return total / pred.rows();
    };

    tensor::Matrix out, dout(32, 1), dinput;
    mlp.forward(input, out);
    const double before = mse(out);
    for (int step = 0; step < 200; ++step) {
        mlp.forward(input, out);
        for (size_t i = 0; i < 32; ++i)
            dout(i, 0) = 2.0f * (out(i, 0) - target(i, 0)) / 32.0f;
        mlp.backward(dout, dinput);
        mlp.step(0.05f);
    }
    mlp.forward(input, out);
    EXPECT_LT(mse(out), before * 0.05);
}

TEST(Mlp, ParameterCountSums)
{
    tensor::Rng rng(7);
    Mlp mlp({4, 8, 2}, rng);
    // (4*8 + 8) + (8*2 + 2) = 40 + 18.
    EXPECT_EQ(mlp.parameterCount(), 58u);
}

TEST(Mlp, IdenticalAfterSameConstruction)
{
    tensor::Rng ra(8), rb(8);
    Mlp a({3, 5, 2}, ra), b({3, 5, 2}, rb);
    EXPECT_TRUE(Mlp::identical(a, b));
}

TEST(Mlp, BackwardWithoutForwardPanics)
{
    tensor::Rng rng(9);
    Mlp mlp({3, 2}, rng);
    tensor::Matrix dout(1, 2), dinput;
    EXPECT_THROW(mlp.backward(dout, dinput), PanicError);
}

TEST(Mlp, SingleDimListFatal)
{
    tensor::Rng rng(10);
    EXPECT_THROW(Mlp({3}, rng), FatalError);
}

} // namespace
} // namespace sp::nn
