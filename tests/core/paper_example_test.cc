/**
 * @file
 * The worked example of paper Figure 11, cycle by cycle.
 *
 * Figure 11 walks five pipeline cycles of a 5-slot scratchpad with a
 * 3-bit Hold mask (past-window only: marks survive two subsequent
 * plans, i.e. past_window = 2 in our encoding, future_window = 0) and
 * mini-batches of two sparse IDs. We replay the exact ID sequence and
 * assert the controller reproduces the figure's hit/miss decisions,
 * the delayed Hit-Map-vs-Storage semantics, and the eviction of
 * E[2021] at the 5th cycle.
 */

#include <gtest/gtest.h>

#include <span>
#include <vector>

#include "core/controller.h"

namespace sp::core
{
namespace
{

constexpr std::span<const std::span<const uint64_t>> kNoFutures;

ControllerConfig
figure11Config()
{
    ControllerConfig config;
    config.num_slots = 5;
    config.dim = 4;
    config.past_window = 2; // the figure's 3-bit Hold mask
    config.future_window = 0;
    config.policy = cache::PolicyKind::Lru;
    return config;
}

TEST(PaperFigure11, FullFiveCycleWalk)
{
    ScratchPipeController controller(figure11Config());

    // 1st cycle: batch 1 = {7089, 2021}. Both miss; the scratchpad is
    // empty, so no write-backs are scheduled.
    const std::vector<uint64_t> batch1 = {7089, 2021};
    const auto plan1 = controller.plan(batch1, kNoFutures);
    EXPECT_EQ(plan1.hits, 0u);
    EXPECT_EQ(plan1.misses, 2u);
    EXPECT_EQ(plan1.fills.size(), 2u);
    EXPECT_TRUE(plan1.evictions.empty());

    // Figure 11(b): the Hit-Map already reflects batch 1's insertions
    // even though the Storage array is still vacant -- the
    // "purposefully asynchronous and delayed" update. Batch 2's query
    // of 7089 must therefore *hit*.
    EXPECT_TRUE(controller.isResident(7089));
    EXPECT_TRUE(controller.isResident(2021));

    // 2nd cycle: batch 2 = {3010, 7089} -> miss / hit.
    const std::vector<uint64_t> batch2 = {3010, 7089};
    const auto plan2 = controller.plan(batch2, kNoFutures);
    EXPECT_EQ(plan2.hits, 1u);
    EXPECT_EQ(plan2.misses, 1u);
    EXPECT_EQ(plan2.fills.size(), 1u);
    EXPECT_EQ(plan2.fills[0].id, 3010u);
    EXPECT_TRUE(plan2.evictions.empty());

    // 3rd cycle: batch 3 = {1017, 5382}. Both miss, filling the last
    // two vacant slots; still nothing to write back.
    const std::vector<uint64_t> batch3 = {1017, 5382};
    const auto plan3 = controller.plan(batch3, kNoFutures);
    EXPECT_EQ(plan3.hits, 0u);
    EXPECT_EQ(plan3.misses, 2u);
    EXPECT_TRUE(plan3.evictions.empty());

    // All five slots now hold {7089, 2021, 3010, 1017, 5382},
    // matching the figure's Hit-Map at the 3rd cycle.
    for (uint64_t id : {7089u, 2021u, 3010u, 1017u, 5382u})
        EXPECT_TRUE(controller.isResident(id)) << id;

    // 4th cycle: batch 4 = {7089, 1017} -> both hit, no movement.
    const std::vector<uint64_t> batch4 = {7089, 1017};
    const auto plan4 = controller.plan(batch4, kNoFutures);
    EXPECT_EQ(plan4.hits, 2u);
    EXPECT_EQ(plan4.misses, 0u);
    EXPECT_TRUE(plan4.fills.empty());
    EXPECT_TRUE(plan4.evictions.empty());

    // 5th cycle: batch 5 = {6547, 3010}. 3010 hits. 6547 misses and
    // must evict E[2021] -- the only slot whose Hold mask is "000"
    // after the 4th cycle (Figure 11(d,e)).
    const std::vector<uint64_t> batch5 = {6547, 3010};
    const auto plan5 = controller.plan(batch5, kNoFutures);
    EXPECT_EQ(plan5.hits, 1u);
    EXPECT_EQ(plan5.misses, 1u);
    ASSERT_EQ(plan5.evictions.size(), 1u);
    EXPECT_EQ(plan5.evictions[0].id, 2021u);
    EXPECT_FALSE(controller.isResident(2021));
    EXPECT_TRUE(controller.isResident(6547));

    // The new resident takes over the evicted slot, as in the figure
    // where (2021, 3) becomes (6547, 3).
    EXPECT_EQ(controller.slotOf(6547), plan5.evictions[0].slot);

    // 6th cycle (extrapolating the figure's Load column): batch 6 =
    // {9021, 1017}. 9021 misses; 5382 is now the only unheld row.
    const std::vector<uint64_t> batch6 = {9021, 1017};
    const auto plan6 = controller.plan(batch6, kNoFutures);
    EXPECT_EQ(plan6.hits, 1u);
    EXPECT_EQ(plan6.misses, 1u);
    ASSERT_EQ(plan6.evictions.size(), 1u);
    EXPECT_EQ(plan6.evictions[0].id, 5382u);

    // Lifetime statistics across the six planned batches.
    const auto &stats = controller.stats();
    EXPECT_EQ(stats.plans, 6u);
    EXPECT_EQ(stats.hits, 5u);
    EXPECT_EQ(stats.misses, 7u);
    EXPECT_EQ(stats.fills, 7u);
    EXPECT_EQ(stats.evictions, 2u);
}

TEST(PaperFigure11, HoldMaskProtectsInFlightBatches)
{
    // At the 5th cycle the figure's Hold masks show rows used by
    // batches 3-5 (1017, 5382, 7089, 3010, 6547) as held; none of
    // them may ever be selected as the victim.
    ScratchPipeController controller(figure11Config());
    const std::vector<std::vector<uint64_t>> batches = {
        {7089, 2021}, {3010, 7089}, {1017, 5382}, {7089, 1017},
        {6547, 3010}};
    std::vector<uint64_t> evicted;
    for (const auto &batch : batches) {
        for (const auto &evict : controller.plan(batch, kNoFutures).evictions)
            evicted.push_back(evict.id);
    }
    ASSERT_EQ(evicted.size(), 1u);
    EXPECT_EQ(evicted[0], 2021u);
}

} // namespace
} // namespace sp::core
