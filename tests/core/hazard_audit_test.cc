/** @file HazardAuditor detection tests. */

#include <gtest/gtest.h>

#include "common/logging.h"
#include "core/hazard_audit.h"

namespace sp::core
{
namespace
{

TEST(HazardAudit, DisjointAccessesPass)
{
    HazardAuditor audit;
    audit.beginCycle(0);
    audit.trainWritesSlot(0, 1);
    audit.insertWritesSlot(0, 2);
    audit.collectReadsVictimSlot(0, 3);
    audit.collectReadsCpuRow(0, 100);
    audit.insertWritesCpuRow(0, 200);
    EXPECT_NO_THROW(audit.endCycle());
    EXPECT_EQ(audit.cyclesAudited(), 1u);
    EXPECT_EQ(audit.checkedAccesses(), 5u);
}

TEST(HazardAudit, Raw2TrainVsVictimRead)
{
    HazardAuditor audit;
    audit.beginCycle(3);
    audit.trainWritesSlot(0, 7);
    audit.collectReadsVictimSlot(0, 7);
    EXPECT_THROW(audit.endCycle(), PanicError);
}

TEST(HazardAudit, Raw3InsertVsVictimRead)
{
    HazardAuditor audit;
    audit.beginCycle(4);
    audit.insertWritesSlot(1, 9);
    audit.collectReadsVictimSlot(1, 9);
    EXPECT_THROW(audit.endCycle(), PanicError);
}

TEST(HazardAudit, WawInsertVsTrain)
{
    HazardAuditor audit;
    audit.beginCycle(5);
    audit.insertWritesSlot(0, 4);
    audit.trainWritesSlot(0, 4);
    EXPECT_THROW(audit.endCycle(), PanicError);
}

TEST(HazardAudit, Raw4CpuRowConflict)
{
    HazardAuditor audit;
    audit.beginCycle(6);
    audit.insertWritesCpuRow(2, 555);
    audit.collectReadsCpuRow(2, 555);
    EXPECT_THROW(audit.endCycle(), PanicError);
}

TEST(HazardAudit, SameSlotDifferentTablesIsFine)
{
    HazardAuditor audit;
    audit.beginCycle(7);
    audit.trainWritesSlot(0, 7);
    audit.collectReadsVictimSlot(1, 7); // different table, no conflict
    EXPECT_NO_THROW(audit.endCycle());
}

TEST(HazardAudit, StateResetsBetweenCycles)
{
    HazardAuditor audit;
    audit.beginCycle(0);
    audit.trainWritesSlot(0, 7);
    audit.endCycle();
    // Same slot read next cycle: no conflict (the write retired).
    audit.beginCycle(1);
    audit.collectReadsVictimSlot(0, 7);
    EXPECT_NO_THROW(audit.endCycle());
}

TEST(HazardAudit, SameStageDuplicatesAllowed)
{
    HazardAuditor audit;
    audit.beginCycle(0);
    audit.trainWritesSlot(0, 1);
    audit.trainWritesSlot(0, 1); // idempotent re-record
    EXPECT_NO_THROW(audit.endCycle());
}

TEST(HazardAudit, ProtocolMisuseCaught)
{
    HazardAuditor audit;
    EXPECT_THROW(audit.endCycle(), PanicError);
    EXPECT_THROW(audit.trainWritesSlot(0, 0), PanicError);
    audit.beginCycle(0);
    EXPECT_THROW(audit.beginCycle(1), PanicError);
}

} // namespace
} // namespace sp::core
