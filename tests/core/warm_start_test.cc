/** @file Warm-start (steady-state) controller initialisation tests. */

#include <gtest/gtest.h>

#include <span>
#include <vector>

#include "common/logging.h"
#include "core/controller.h"
#include "tensor/rng.h"

namespace sp::core
{
namespace
{

constexpr std::span<const std::span<const uint64_t>> kNoFutures;

ControllerConfig
warmConfig(uint32_t slots)
{
    ControllerConfig config;
    config.num_slots = slots;
    config.dim = 4;
    config.backing = cache::SlotArray::Backing::Phantom;
    config.warm_start = true;
    return config;
}

TEST(WarmStart, HottestRanksResidentImmediately)
{
    ScratchPipeController controller(warmConfig(100));
    for (uint32_t id = 0; id < 100; ++id) {
        EXPECT_TRUE(controller.isResident(id)) << id;
        EXPECT_EQ(controller.keyOfSlot(id), id);
    }
    EXPECT_FALSE(controller.isResident(100));
}

TEST(WarmStart, FirstBatchOfHotIdsHitsEverything)
{
    ScratchPipeController controller(warmConfig(100));
    const std::vector<uint64_t> hot = {0, 3, 7, 42, 99};
    const auto plan = controller.plan(hot, kNoFutures);
    EXPECT_EQ(plan.hits, hot.size());
    EXPECT_EQ(plan.misses, 0u);
    EXPECT_TRUE(plan.fills.empty());
}

TEST(WarmStart, ColdMissEvictsColdestRank)
{
    // Slot 0 is MRU, slot n-1 is LRU: a miss into a fully warm cache
    // must evict the highest (coldest) rank.
    ScratchPipeController controller(warmConfig(10));
    const std::vector<uint64_t> ids = {1000};
    const auto plan = controller.plan(ids, kNoFutures);
    ASSERT_EQ(plan.evictions.size(), 1u);
    EXPECT_EQ(plan.evictions[0].id, 9u);
    EXPECT_TRUE(controller.isResident(1000));
    EXPECT_FALSE(controller.isResident(9));
}

TEST(WarmStart, FillsEqualEvictionsFromTheStart)
{
    // Steady state means every fill displaces a resident row: there
    // are no free slots to hide cold-start traffic.
    ScratchPipeController controller(warmConfig(64));
    tensor::Rng rng(3);
    for (int b = 0; b < 20; ++b) {
        std::vector<uint64_t> ids(8);
        for (auto &id : ids)
            id = static_cast<uint32_t>(rng.uniformInt(100000));
        controller.plan(ids, kNoFutures);
    }
    const auto &stats = controller.stats();
    EXPECT_EQ(stats.fills, stats.evictions);
    EXPECT_GT(stats.fills, 0u);
}

TEST(WarmStart, DenseBackingRejected)
{
    ControllerConfig config = warmConfig(10);
    config.backing = cache::SlotArray::Backing::Dense;
    EXPECT_THROW(ScratchPipeController{config}, FatalError);
}

TEST(WarmStart, ColdControllerStartsEmptyByDefault)
{
    ControllerConfig config = warmConfig(10);
    config.warm_start = false;
    ScratchPipeController controller(config);
    for (uint32_t id = 0; id < 10; ++id)
        EXPECT_FALSE(controller.isResident(id));
}

TEST(WarmStart, WindowProtectionStillApplies)
{
    // Even from a warm cache, in-window rows must never be evicted.
    ScratchPipeController controller(warmConfig(8));
    const std::vector<uint64_t> batch_a = {0, 1, 2, 3};
    controller.plan(batch_a, kNoFutures);
    // A burst of misses must spare batch_a's slots (past window = 3).
    const std::vector<uint64_t> burst = {100, 101, 102, 103};
    const auto plan = controller.plan(burst, kNoFutures);
    for (const auto &evict : plan.evictions) {
        EXPECT_GE(evict.id, 4u)
            << "evicted a row held by the previous batch";
    }
}

} // namespace
} // namespace sp::core
