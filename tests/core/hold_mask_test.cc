/** @file HoldMask sliding-window semantics tests. */

#include <gtest/gtest.h>

#include "common/logging.h"
#include "core/hold_mask.h"

namespace sp::core
{
namespace
{

TEST(HoldMask, Geometry)
{
    HoldMask mask(10, 3, 2);
    EXPECT_EQ(mask.numSlots(), 10u);
    EXPECT_EQ(mask.pastWindow(), 3u);
    EXPECT_EQ(mask.futureWindow(), 2u);
    EXPECT_EQ(mask.widthBits(), 6u); // the paper's 6-wide window
}

TEST(HoldMask, InitiallyNothingHeld)
{
    HoldMask mask(8, 3, 2);
    for (uint32_t s = 0; s < 8; ++s)
        EXPECT_FALSE(mask.isHeld(s));
    EXPECT_EQ(mask.heldCount(), 0u);
}

TEST(HoldMask, CurrentMarkSurvivesPastWindowAdvances)
{
    HoldMask mask(4, 3, 2);
    mask.markCurrent(1);
    // Visible now and for past_window more advances.
    EXPECT_TRUE(mask.isHeld(1));
    for (int i = 0; i < 3; ++i) {
        mask.advance();
        EXPECT_TRUE(mask.isHeld(1)) << "advance " << i;
    }
    mask.advance();
    EXPECT_FALSE(mask.isHeld(1));
}

TEST(HoldMask, ZeroPastWindowExpiresImmediately)
{
    HoldMask mask(4, 0, 0);
    mask.markCurrent(2);
    EXPECT_TRUE(mask.isHeld(2));
    mask.advance();
    EXPECT_FALSE(mask.isHeld(2));
}

TEST(HoldMask, FutureMarkMaturesIntoCurrentWindow)
{
    HoldMask mask(4, 3, 2);
    mask.markFuture(0, 2);
    EXPECT_TRUE(mask.isHeld(0));
    // A distance-2 future mark lives 2 (to become current) + 3 (past
    // window) advances: 5 total.
    for (int i = 0; i < 5; ++i) {
        mask.advance();
        EXPECT_TRUE(mask.isHeld(0)) << "advance " << i;
    }
    mask.advance();
    EXPECT_FALSE(mask.isHeld(0));
}

TEST(HoldMask, MarksAccumulateAcrossBatches)
{
    HoldMask mask(4, 2, 0);
    mask.markCurrent(3);
    mask.advance();
    mask.markCurrent(3); // refreshed by a second batch
    // Expiry now counts from the refresh.
    mask.advance();
    mask.advance();
    EXPECT_TRUE(mask.isHeld(3));
    mask.advance();
    EXPECT_FALSE(mask.isHeld(3));
}

TEST(HoldMask, SlotsIndependent)
{
    HoldMask mask(4, 2, 1);
    mask.markCurrent(0);
    mask.markFuture(2, 1);
    EXPECT_TRUE(mask.isHeld(0));
    EXPECT_FALSE(mask.isHeld(1));
    EXPECT_TRUE(mask.isHeld(2));
    EXPECT_EQ(mask.heldCount(), 2u);
}

TEST(HoldMask, MarkIsIdempotent)
{
    HoldMask mask(4, 2, 0);
    mask.markCurrent(1);
    const uint16_t bits = mask.bits(1);
    mask.markCurrent(1);
    EXPECT_EQ(mask.bits(1), bits);
}

TEST(HoldMask, PaperWindowBitLayout)
{
    // Paper defaults: 3 past + 1 current + 2 future. Current marks
    // land at bit 3, future distance-1 at bit 4, distance-2 at bit 5.
    HoldMask mask(4, 3, 2);
    mask.markCurrent(0);
    EXPECT_EQ(mask.bits(0), 1u << 3);
    mask.markFuture(1, 1);
    EXPECT_EQ(mask.bits(1), 1u << 4);
    mask.markFuture(2, 2);
    EXPECT_EQ(mask.bits(2), 1u << 5);
}

TEST(HoldMask, FutureDistanceValidated)
{
    HoldMask mask(4, 3, 2);
    EXPECT_THROW(mask.markFuture(0, 0), PanicError);
    EXPECT_THROW(mask.markFuture(0, 3), PanicError);
}

TEST(HoldMask, SlotRangeValidated)
{
    HoldMask mask(4, 3, 2);
    EXPECT_THROW(mask.markCurrent(4), PanicError);
    EXPECT_THROW(mask.markFuture(5, 1), PanicError);
}

TEST(HoldMask, OversizedWindowFatal)
{
    EXPECT_THROW(HoldMask(4, 12, 8), FatalError);
}

TEST(HoldMask, ZeroSlotsFatal)
{
    EXPECT_THROW(HoldMask(0, 3, 2), FatalError);
}

} // namespace
} // namespace sp::core
