/** @file ScratchPipeController unit and property tests. */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <span>
#include <vector>

#include "common/logging.h"
#include "core/controller.h"
#include "tensor/rng.h"

namespace sp::core
{
namespace
{

constexpr std::span<const std::span<const uint64_t>> kNoFutures;

ControllerConfig
baseConfig(uint32_t slots, uint32_t past = 3, uint32_t future = 2)
{
    ControllerConfig config;
    config.num_slots = slots;
    config.dim = 4;
    config.past_window = past;
    config.future_window = future;
    return config;
}

TEST(Controller, FirstBatchAllMisses)
{
    ScratchPipeController controller(baseConfig(64));
    const std::vector<uint64_t> ids = {5, 9, 13};
    const auto plan = controller.plan(ids, kNoFutures);
    EXPECT_EQ(plan.misses, 3u);
    EXPECT_EQ(plan.hits, 0u);
    EXPECT_EQ(plan.fills.size(), 3u);
    EXPECT_TRUE(plan.evictions.empty());
    EXPECT_NEAR(plan.hitRate(), 0.0, 1e-12);
}

TEST(Controller, FillsGetDistinctSlots)
{
    ScratchPipeController controller(baseConfig(64));
    const std::vector<uint64_t> ids = {1, 2, 3, 4, 5, 6, 7, 8};
    const auto plan = controller.plan(ids, kNoFutures);
    std::set<uint32_t> slots;
    for (const auto &fill : plan.fills)
        slots.insert(fill.slot);
    EXPECT_EQ(slots.size(), plan.fills.size());
}

TEST(Controller, DuplicateIdWithinBatchCountsOneMiss)
{
    ScratchPipeController controller(baseConfig(64));
    const std::vector<uint64_t> ids = {7, 7, 7};
    const auto plan = controller.plan(ids, kNoFutures);
    EXPECT_EQ(plan.misses, 1u);
    EXPECT_EQ(plan.hits, 2u);
    EXPECT_EQ(plan.fills.size(), 1u);
}

TEST(Controller, AlwaysHitAfterPlan)
{
    // The defining invariant: once planned, every ID of the batch is
    // resident when its [Train] stage runs.
    ScratchPipeController controller(baseConfig(256, 3, 2));
    tensor::Rng rng(1);
    for (int batch = 0; batch < 50; ++batch) {
        std::vector<uint64_t> ids(16);
        for (auto &id : ids)
            id = static_cast<uint32_t>(rng.uniformInt(1000));
        controller.plan(ids, kNoFutures);
        for (uint64_t id : ids) {
            EXPECT_TRUE(controller.isResident(id));
            EXPECT_LT(controller.slotOf(id), 256u);
        }
    }
}

TEST(Controller, RepeatBatchHitsEverything)
{
    ScratchPipeController controller(baseConfig(64));
    const std::vector<uint64_t> ids = {10, 20, 30};
    controller.plan(ids, kNoFutures);
    const auto plan = controller.plan(ids, kNoFutures);
    EXPECT_EQ(plan.hits, 3u);
    EXPECT_EQ(plan.misses, 0u);
}

TEST(Controller, EvictionsAreWriteBacksOfResidentRows)
{
    ScratchPipeController controller(baseConfig(8, 1, 0));
    // Fill all 8 slots over two batches, then force turnover.
    controller.plan(std::vector<uint64_t>{0, 1, 2, 3}, kNoFutures);
    controller.plan(std::vector<uint64_t>{4, 5, 6, 7}, kNoFutures);
    const auto plan =
        controller.plan(std::vector<uint64_t>{100, 101}, kNoFutures);
    EXPECT_EQ(plan.fills.size(), 2u);
    EXPECT_EQ(plan.evictions.size(), 2u);
    for (const auto &evict : plan.evictions) {
        EXPECT_LT(evict.id, 8u); // one of the original rows
        EXPECT_FALSE(controller.isResident(evict.id));
    }
}

TEST(Controller, EvictedSlotReusedByFill)
{
    ScratchPipeController controller(baseConfig(4, 0, 0));
    controller.plan(std::vector<uint64_t>{0, 1, 2, 3}, kNoFutures);
    const auto plan = controller.plan(std::vector<uint64_t>{9}, kNoFutures);
    ASSERT_EQ(plan.fills.size(), 1u);
    ASSERT_EQ(plan.evictions.size(), 1u);
    EXPECT_EQ(plan.fills[0].slot, plan.evictions[0].slot);
}

TEST(Controller, CapacityExhaustionIsFatal)
{
    // 4 slots, but a single batch pins 5 distinct IDs.
    ScratchPipeController controller(baseConfig(4, 3, 2));
    const std::vector<uint64_t> ids = {1, 2, 3, 4, 5};
    EXPECT_THROW(controller.plan(ids, kNoFutures), FatalError);
}

TEST(Controller, WindowPinsSpanMultipleBatches)
{
    // past_window = 2: three consecutive batches of 2 IDs pin 6 slots;
    // a 6-slot cache survives, a 5-slot cache must fatal on the next
    // distinct batch.
    auto run = [](uint32_t slots) {
        ScratchPipeController controller(baseConfig(slots, 2, 0));
        controller.plan(std::vector<uint64_t>{0, 1}, kNoFutures);
        controller.plan(std::vector<uint64_t>{2, 3}, kNoFutures);
        controller.plan(std::vector<uint64_t>{4, 5}, kNoFutures);
        controller.plan(std::vector<uint64_t>{6, 7}, kNoFutures);
    };
    EXPECT_THROW(run(5), FatalError);
    EXPECT_NO_THROW(run(8));
}

TEST(Controller, WorstCaseSlotsFormula)
{
    // (past + 1 + future) * ids per batch.
    EXPECT_EQ(ScratchPipeController::worstCaseSlots(3, 2, 40960),
              6u * 40960);
    EXPECT_EQ(ScratchPipeController::worstCaseSlots(0, 0, 128), 128u);
}

TEST(Controller, WorstCaseSlotsSufficeForAdversarialTrace)
{
    // Every batch entirely distinct: the §VI-D bound must be exactly
    // enough to never fatal.
    const size_t ids_per_batch = 4;
    const uint32_t slots =
        ScratchPipeController::worstCaseSlots(3, 2, ids_per_batch);
    ScratchPipeController controller(baseConfig(slots, 3, 2));
    uint32_t next_id = 0;
    std::vector<std::vector<uint64_t>> batches;
    for (int b = 0; b < 40; ++b) {
        std::vector<uint64_t> ids(ids_per_batch);
        for (auto &id : ids)
            id = next_id++;
        batches.push_back(std::move(ids));
    }
    for (size_t b = 0; b < batches.size(); ++b) {
        std::vector<std::span<const uint64_t>> futures;
        for (size_t d = 1; d <= 2 && b + d < batches.size(); ++d)
            futures.emplace_back(batches[b + d]);
        EXPECT_NO_THROW(controller.plan(batches[b], futures));
    }
}

TEST(Controller, FutureIdsNeverEvicted)
{
    // Randomized property: an eviction may never target an ID used by
    // the current batch, the past `past_window` batches, or the
    // supplied future window -- the paper's RAW-freedom superset.
    const uint32_t past = 3, future = 2;
    const size_t ids_per_batch = 8;
    const uint32_t slots = ScratchPipeController::worstCaseSlots(
        past, future, ids_per_batch);
    ScratchPipeController controller(baseConfig(slots, past, future));

    tensor::Rng rng(99);
    std::vector<std::vector<uint64_t>> batches;
    for (int b = 0; b < 120; ++b) {
        std::vector<uint64_t> ids(ids_per_batch);
        for (auto &id : ids)
            id = static_cast<uint32_t>(rng.uniformInt(200)); // hot pool
        batches.push_back(std::move(ids));
    }

    for (size_t b = 0; b < batches.size(); ++b) {
        std::vector<std::span<const uint64_t>> futures;
        for (size_t d = 1; d <= future && b + d < batches.size(); ++d)
            futures.emplace_back(batches[b + d]);
        const auto plan = controller.plan(batches[b], futures);

        std::set<uint64_t> protected_ids;
        const size_t lo = b >= past ? b - past : 0;
        const size_t hi = std::min(batches.size() - 1, b + future);
        for (size_t w = lo; w <= hi; ++w)
            protected_ids.insert(batches[w].begin(), batches[w].end());

        for (const auto &evict : plan.evictions) {
            EXPECT_EQ(protected_ids.count(evict.id), 0u)
                << "batch " << b << " evicted in-window ID " << evict.id;
        }
    }
}

TEST(Controller, HitRateTracksLocality)
{
    auto run_trace = [](uint64_t id_space) {
        ScratchPipeController controller(baseConfig(128, 3, 0));
        tensor::Rng rng(5);
        uint64_t hits = 0, total = 0;
        for (int b = 0; b < 100; ++b) {
            std::vector<uint64_t> ids(8);
            for (auto &id : ids)
                id = static_cast<uint32_t>(rng.uniformInt(id_space));
            const auto plan = controller.plan(ids, kNoFutures);
            hits += plan.hits;
            total += plan.hits + plan.misses;
        }
        return static_cast<double>(hits) / static_cast<double>(total);
    };
    // A working set that fits the cache hits nearly always; a huge
    // uniform space almost never.
    EXPECT_GT(run_trace(64), 0.9);
    EXPECT_LT(run_trace(100000), 0.2);
}

TEST(Controller, AccessorResolvesResidentRows)
{
    auto config = baseConfig(16);
    config.backing = cache::SlotArray::Backing::Dense;
    ScratchPipeController controller(config);
    controller.plan(std::vector<uint64_t>{3}, kNoFutures);

    auto accessor = controller.accessor();
    EXPECT_EQ(accessor.dim(), 4u);
    accessor.row(3)[0] = 42.0f;
    EXPECT_EQ(controller.storage().slot(controller.slotOf(3))[0], 42.0f);
    EXPECT_THROW(accessor.row(999), PanicError);
}

TEST(Controller, FlushWritesResidentRowsBack)
{
    auto config = baseConfig(16);
    config.backing = cache::SlotArray::Backing::Dense;
    ScratchPipeController controller(config);
    controller.plan(std::vector<uint64_t>{2, 5}, kNoFutures);
    controller.accessor().row(2)[1] = 7.0f;
    controller.accessor().row(5)[3] = -3.0f;

    emb::EmbeddingTable table(10, 4);
    controller.flushTo(table);
    EXPECT_EQ(table.row(2)[1], 7.0f);
    EXPECT_EQ(table.row(5)[3], -3.0f);
    EXPECT_EQ(table.row(0)[0], 0.0f);
}

TEST(Controller, KeyOfSlotTracksAssignment)
{
    ScratchPipeController controller(baseConfig(8, 0, 0));
    const auto plan =
        controller.plan(std::vector<uint64_t>{11}, kNoFutures);
    ASSERT_EQ(plan.fills.size(), 1u);
    EXPECT_EQ(controller.keyOfSlot(plan.fills[0].slot), 11u);
}

TEST(Controller, MetadataBytesAccounted)
{
    ScratchPipeController controller(baseConfig(1024));
    // Hit-Map + hold masks + slot keys: several KB at least.
    EXPECT_GT(controller.metadataBytes(), 1024u * 6);
}

TEST(Controller, StatsAccumulate)
{
    ScratchPipeController controller(baseConfig(64));
    controller.plan(std::vector<uint64_t>{1, 2}, kNoFutures);
    controller.plan(std::vector<uint64_t>{1, 3}, kNoFutures);
    const auto &stats = controller.stats();
    EXPECT_EQ(stats.plans, 2u);
    EXPECT_EQ(stats.hits, 1u);
    EXPECT_EQ(stats.misses, 3u);
    EXPECT_EQ(stats.fills, 3u);
}

TEST(Controller, InvalidConfigFatal)
{
    EXPECT_THROW(ScratchPipeController(baseConfig(0)), FatalError);
    auto config = baseConfig(4);
    config.dim = 0;
    EXPECT_THROW(ScratchPipeController{config}, FatalError);
}

class ControllerPolicies
    : public ::testing::TestWithParam<cache::PolicyKind>
{
};

TEST_P(ControllerPolicies, AlwaysHitHoldsUnderEveryPolicy)
{
    auto config = baseConfig(
        ScratchPipeController::worstCaseSlots(3, 2, 8), 3, 2);
    config.policy = GetParam();
    ScratchPipeController controller(config);

    tensor::Rng rng(17);
    std::vector<std::vector<uint64_t>> batches;
    for (int b = 0; b < 60; ++b) {
        std::vector<uint64_t> ids(8);
        for (auto &id : ids)
            id = static_cast<uint32_t>(rng.uniformInt(500));
        batches.push_back(std::move(ids));
    }
    for (size_t b = 0; b < batches.size(); ++b) {
        std::vector<std::span<const uint64_t>> futures;
        for (size_t d = 1; d <= 2 && b + d < batches.size(); ++d)
            futures.emplace_back(batches[b + d]);
        controller.plan(batches[b], futures);
        for (uint64_t id : batches[b])
            ASSERT_TRUE(controller.isResident(id));
    }
}

INSTANTIATE_TEST_SUITE_P(Policies, ControllerPolicies,
                         ::testing::Values(cache::PolicyKind::Lru,
                                           cache::PolicyKind::Lfu,
                                           cache::PolicyKind::Random,
                                           cache::PolicyKind::Fifo),
                         [](const auto &info) {
                             return cache::policyName(info.param);
                         });

} // namespace
} // namespace sp::core
