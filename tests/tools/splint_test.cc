/**
 * @file
 * Unit tests for the splint lint library: every rule on good/bad
 * snippets, the allow mechanism, the JSON report schema, the
 * committed fixtures (self-test), and -- the gate that matters -- the
 * real source tree linting clean.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "splint/splint.h"

namespace
{

using sp::splint::Diagnostic;
using sp::splint::lintSource;
using sp::splint::lintTree;

std::vector<std::string>
ruleIds(const std::vector<Diagnostic> &diagnostics)
{
    std::vector<std::string> ids;
    for (const Diagnostic &diag : diagnostics)
        ids.push_back(diag.rule);
    return ids;
}

size_t
countRule(const std::vector<Diagnostic> &diagnostics, const char *rule)
{
    const std::vector<std::string> ids = ruleIds(diagnostics);
    return static_cast<size_t>(std::count(ids.begin(), ids.end(), rule));
}

std::string
describe(const std::vector<Diagnostic> &diagnostics)
{
    return sp::splint::toText(diagnostics);
}

TEST(SplintRuleTable, IdsAreUniqueAndFullyDescribed)
{
    std::set<std::string> seen;
    for (const sp::splint::Rule &rule : sp::splint::rules()) {
        EXPECT_TRUE(seen.insert(rule.id).second)
            << "duplicate rule id " << rule.id;
        EXPECT_NE(std::string(rule.summary), "") << rule.id;
        EXPECT_NE(std::string(rule.fixit), "") << rule.id;
        EXPECT_EQ(sp::splint::findRule(rule.id), &rule);
    }
    EXPECT_EQ(sp::splint::findRule("no-such-rule"), nullptr);
}

TEST(SplintNoRawThread, FiresOnThreadAsyncAndPthread)
{
    const auto diags = lintSource(
        "src/sys/x.cc",
        "#include <thread>\n"
        "void f() { std::thread t([]{}); t.join(); }\n"
        "void g() { auto r = std::async([]{}); }\n"
        "void h() { pthread_create(nullptr, nullptr, nullptr, "
        "nullptr); }\n");
    EXPECT_EQ(countRule(diags, "no-raw-thread"), 3u) << describe(diags);
    EXPECT_EQ(diags[0].line, 2u);
    EXPECT_EQ(diags[0].severity, sp::splint::Severity::Error);
}

TEST(SplintNoRawThread, ThreadPoolTUIsExempt)
{
    const std::string text = "std::thread worker;\n";
    EXPECT_TRUE(lintSource("src/common/thread_pool.cc", text).empty());
    EXPECT_TRUE(lintSource("src/common/thread_pool.h", text).empty());
    EXPECT_EQ(countRule(lintSource("src/sim/x.cc", text),
                        "no-raw-thread"),
              1u);
}

TEST(SplintNoRawThread, CommentsAndStringsDoNotFire)
{
    const auto diags = lintSource(
        "src/sys/x.cc",
        "// prose about std::thread is fine\n"
        "/* std::async in a block comment\n"
        "   spanning lines */\n"
        "const char *s = \"std::thread inside a string\";\n");
    EXPECT_TRUE(diags.empty()) << describe(diags);
}

TEST(SplintNoNondeterminism, FiresOnlyInSimulationPaths)
{
    const std::string text =
        "unsigned f() { return rand(); }\n"
        "auto t = std::chrono::steady_clock::now();\n"
        "std::random_device rd;\n";
    for (const char *path :
         {"src/sys/a.cc", "src/cache/b.cc", "src/data/c.cc"}) {
        const auto diags = lintSource(path, text);
        EXPECT_EQ(countRule(diags, "no-nondeterminism"), 3u)
            << path << "\n"
            << describe(diags);
    }
    // Out of scope: drivers and benches may time things.
    EXPECT_TRUE(lintSource("bench/fig.cc", text).empty());
    EXPECT_TRUE(lintSource("src/metrics/t.cc", text).empty());
}

TEST(SplintNoNondeterminism, JustifiedAllowSuppresses)
{
    const auto diags = lintSource(
        "src/data/store.cc",
        "// splint:allow(no-nondeterminism): names a temp file only\n"
        "unsigned nonce = std::random_device{}();\n");
    EXPECT_TRUE(diags.empty()) << describe(diags);
}

TEST(SplintNoNondeterminism, UnjustifiedAllowDoesNotSuppress)
{
    const auto diags = lintSource(
        "src/data/store.cc",
        "// splint:allow(no-nondeterminism)\n"
        "unsigned nonce = std::random_device{}();\n");
    EXPECT_EQ(countRule(diags, "allow-justification"), 1u)
        << describe(diags);
    EXPECT_EQ(countRule(diags, "no-nondeterminism"), 1u)
        << describe(diags);
}

TEST(SplintHotPath, AllocFiresOnlyInsideMarkedRegion)
{
    const auto diags = lintSource(
        "src/core/x.cc",
        "void f(std::vector<int> &v) {\n"
        "    v.push_back(1);\n" // outside: fine
        "    // splint:hot-path-begin(loop)\n"
        "    v.push_back(2);\n"       // line 4: violation
        "    int *p = new int(3);\n"  // line 5: violation
        "    std::cout << *p;\n"      // line 6: violation
        "    // splint:hot-path-end\n"
        "    v.push_back(4);\n" // outside again: fine
        "}\n");
    EXPECT_EQ(countRule(diags, "hot-path-alloc"), 3u) << describe(diags);
    EXPECT_EQ(diags[0].line, 4u);
    EXPECT_EQ(diags[1].line, 5u);
    EXPECT_EQ(diags[2].line, 6u);
}

TEST(SplintHotPath, AllowedScratchGrowthInsideRegion)
{
    const auto diags = lintSource(
        "src/core/x.cc",
        "// splint:hot-path-begin(loop)\n"
        "// splint:allow(hot-path-alloc): capacity retained\n"
        "v.push_back(2);\n"
        "// splint:hot-path-end\n");
    EXPECT_TRUE(diags.empty()) << describe(diags);
}

TEST(SplintHotPath, MarkerImbalanceIsReported)
{
    const auto unclosed = lintSource(
        "src/core/x.cc", "// splint:hot-path-begin(loop)\nint x;\n");
    EXPECT_EQ(countRule(unclosed, "hot-path-marker"), 1u)
        << describe(unclosed);

    const auto stray =
        lintSource("src/core/x.cc", "int x;\n// splint:hot-path-end\n");
    EXPECT_EQ(countRule(stray, "hot-path-marker"), 1u)
        << describe(stray);

    const auto nested = lintSource(
        "src/core/x.cc",
        "// splint:hot-path-begin(outer)\n"
        "// splint:hot-path-begin(inner)\n"
        "// splint:hot-path-end\n");
    EXPECT_EQ(countRule(nested, "hot-path-marker"), 1u)
        << describe(nested);
}

TEST(SplintHotPath, FaultPointInsideRegionFires)
{
    const auto diags = lintSource(
        "src/cache/x.cc",
        "SP_FAULT_POINT(\"outside.is.fine\");\n"
        "// splint:hot-path-begin(classify)\n"
        "SP_FAULT_POINT(\"cache.classify\");\n" // line 3: violation
        "// splint:hot-path-end\n");
    EXPECT_EQ(countRule(diags, "hot-path-alloc"), 1u) << describe(diags);
    EXPECT_EQ(diags[0].line, 3u);
}

TEST(SplintIoStatus, ProcessKillersFireOnlyInDataPaths)
{
    const std::string text =
        "void f() {\n"
        "    if (bad) std::exit(1);\n"     // line 2
        "    panicIf(worse, \"no\");\n"    // line 3
        "    if (worst) std::terminate();\n" // line 4
        "}\n";
    const auto diags = lintSource("src/data/x.cc", text);
    EXPECT_EQ(countRule(diags, "io-status"), 3u) << describe(diags);
    // Out of scope: the sweep layer and common both have legitimate
    // panics (invariants), policed by review instead.
    EXPECT_EQ(countRule(lintSource("src/sys/x.cc", text), "io-status"),
              0u);
    EXPECT_EQ(
        countRule(lintSource("src/common/x.cc", text), "io-status"),
        0u);
}

TEST(SplintIoStatus, JustifiedAllowSuppressesAPanic)
{
    const auto diags = lintSource(
        "src/data/x.cc",
        "// splint:allow(io-status): bounds check, a bug not I/O\n"
        "panicIf(i >= n, \"out of range\");\n");
    EXPECT_TRUE(diags.empty()) << describe(diags);
}

TEST(SplintIoStatus, DiscardedStatusCallFires)
{
    const auto diags = lintSource(
        "src/sys/x.cc",
        "void f(Dataset &d, Store *s) {\n"
        "    d.saveTo(\"x\");\n"              // line 2: discarded
        "    s->store.tryLoad(\"x\");\n"      // line 3: discarded
        "    Dataset::tryMapped(\"x\");\n"    // line 4: discarded
        "}\n");
    EXPECT_EQ(countRule(diags, "io-status"), 3u) << describe(diags);
    EXPECT_EQ(diags[0].line, 2u);
}

TEST(SplintIoStatus, ConsumedStatusCallsDoNotFire)
{
    const auto diags = lintSource(
        "src/sys/x.cc",
        "void f(Dataset &d) {\n"
        "    const auto s = d.saveTo(\"x\");\n"     // assigned
        "    if (!d.saveTo(\"x\").ok()) return;\n"  // tested
        "    return Dataset::tryLoad(\"x\");\n"     // returned
        "}\n"
        "sp::Status\n"
        "Dataset::saveTo(const std::string &path) const\n" // definition
        "{\n"
        "    return sp::Status();\n"
        "}\n");
    EXPECT_EQ(countRule(diags, "io-status"), 0u) << describe(diags);
}

TEST(SplintAllow, UnknownRuleIsReported)
{
    const auto diags = lintSource(
        "src/sys/x.cc",
        "// splint:allow(not-a-rule): some justification\n");
    EXPECT_EQ(countRule(diags, "allow-unknown-rule"), 1u)
        << describe(diags);
}

TEST(SplintJson, SchemaFieldsAndEscaping)
{
    const auto diags = lintSource(
        "src/sys/x.cc", "void f() { std::thread t([]{}); }\n");
    ASSERT_EQ(diags.size(), 1u);
    const std::string json = sp::splint::toJson(diags);
    EXPECT_NE(json.find("\"tool\":\"splint\""), std::string::npos);
    EXPECT_NE(json.find("\"schema_version\":2"), std::string::npos);
    EXPECT_NE(json.find("\"count\":1"), std::string::npos);
    EXPECT_NE(json.find("\"file\":\"src/sys/x.cc\""), std::string::npos);
    EXPECT_NE(json.find("\"line\":1"), std::string::npos);
    EXPECT_NE(json.find("\"rule\":\"no-raw-thread\""),
              std::string::npos);
    EXPECT_NE(json.find("\"severity\":\"error\""), std::string::npos);
    EXPECT_NE(json.find("\"message\":"), std::string::npos);
    EXPECT_NE(json.find("\"fixit\":"), std::string::npos);

    const std::string empty = sp::splint::toJson({});
    EXPECT_NE(empty.find("\"count\":0"), std::string::npos);
    EXPECT_NE(empty.find("\"violations\":[]"), std::string::npos);

    // Quotes and backslashes in diagnostics must stay valid JSON.
    Diagnostic hostile;
    hostile.file = "src\\odd\"path.cc";
    hostile.rule = "no-raw-thread";
    hostile.message = "say \"hi\"";
    const std::string escaped = sp::splint::toJson({hostile});
    EXPECT_NE(escaped.find("src\\\\odd\\\"path.cc"), std::string::npos);
    EXPECT_NE(escaped.find("say \\\"hi\\\""), std::string::npos);
}

TEST(SplintProjectRules, FixtureTreesTripKernelAndSpecRules)
{
    const auto kernel = lintTree(
        std::string(SPLINT_FIXTURES_DIR) + "/tree_bad_kernel");
    EXPECT_EQ(countRule(kernel, "kernel-registration"), 1u)
        << describe(kernel);
    EXPECT_EQ(kernel.front().line, 0u); // project-level diagnostic

    const auto spec =
        lintTree(std::string(SPLINT_FIXTURES_DIR) + "/tree_bad_spec");
    EXPECT_EQ(countRule(spec, "spec-doc"), 1u) << describe(spec);
    EXPECT_NE(spec.front().message.find("'zap="), std::string::npos)
        << describe(spec);
}

TEST(SplintSelfTest, CommittedFixturesProveEveryRule)
{
    std::ostringstream log;
    EXPECT_TRUE(sp::splint::selfTest(SPLINT_FIXTURES_DIR, log))
        << log.str();
}

// The acceptance gate, also wired as the splint_tree ctest target:
// the real tree has zero violations.
TEST(SplintTree, RealSourceTreeIsClean)
{
    const auto diags = lintTree(SPLINT_SOURCE_ROOT);
    EXPECT_TRUE(diags.empty()) << describe(diags);
    EXPECT_FALSE(sp::splint::hasErrors(diags));
}

} // namespace
