/**
 * @file
 * Unit tests for splint's semantic layer: the channel lexer
 * (raw strings, splices), the symbol index (qualified names, overload
 * resolution), the call/include graphs (reachability, cycles), each
 * transitive rule on its committed fixture tree, the --dump-graph
 * serializers, and -- the gate that matters -- the real source tree
 * passing the semantic pass clean.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "splint/graph.h"
#include "splint/index.h"
#include "splint/lexer.h"
#include "splint/splint.h"

namespace
{

using sp::splint::analyzeTree;
using sp::splint::buildIndex;
using sp::splint::CallGraph;
using sp::splint::CallSite;
using sp::splint::Diagnostic;
using sp::splint::IncludeGraph;
using sp::splint::scanLines;
using sp::splint::ScannedLine;
using sp::splint::SymbolIndex;

std::string
describe(const std::vector<Diagnostic> &diags)
{
    std::string out;
    for (const Diagnostic &diag : diags)
        out += diag.file + ":" + std::to_string(diag.line) + " [" +
               diag.rule + "] " + diag.message + "\n";
    return out.empty() ? "(no diagnostics)" : out;
}

const Diagnostic *
findDiag(const std::vector<Diagnostic> &diags, const std::string &rule,
         const std::string &file)
{
    for (const Diagnostic &diag : diags)
        if (diag.rule == rule && diag.file == file)
            return &diag;
    return nullptr;
}

std::string
joinCode(const std::vector<ScannedLine> &lines)
{
    std::string out;
    for (const ScannedLine &line : lines)
        out += line.code + "\n";
    return out;
}

// ---- Lexer ---------------------------------------------------------

TEST(SplintLexer, RawStringBodyStaysInLiteralChannel)
{
    const std::string text = "const char *t = R\"doc(\n"
                             "std::thread banned; rand( too\n"
                             "quote \" inside\n"
                             ")doc\";\n"
                             "int after = 0;\n";
    const auto lines = scanLines(text);
    const std::string code = joinCode(lines);
    EXPECT_EQ(code.find("thread"), std::string::npos) << code;
    EXPECT_EQ(code.find("rand"), std::string::npos) << code;
    // Code after the literal closes is back in the code channel.
    EXPECT_NE(code.find("int after = 0;"), std::string::npos) << code;
    // The body is preserved for literal-reading checks.
    EXPECT_NE(lines[1].code_with_literals.find("std::thread"),
              std::string::npos);
}

TEST(SplintLexer, RawStringDelimiterWithEmbeddedParenQuote)
{
    // A ")" followed by a quote inside the body must not terminate a
    // delimited raw string.
    const std::string text = "auto s = R\"x(call(a)\" not the end\n"
                             "still literal rand(\n"
                             ")x\"; int tail = 1;\n";
    const auto lines = scanLines(text);
    const std::string code = joinCode(lines);
    EXPECT_EQ(code.find("rand"), std::string::npos) << code;
    EXPECT_NE(code.find("int tail = 1;"), std::string::npos) << code;
}

TEST(SplintLexer, SplicedStringLiteralStaysLiteral)
{
    const std::string text = "const char *b = \"spliced \\\n"
                             "tail with rand( inside\";\n"
                             "int after = 2;\n";
    const auto lines = scanLines(text);
    const std::string code = joinCode(lines);
    EXPECT_EQ(code.find("rand"), std::string::npos) << code;
    EXPECT_NE(code.find("int after = 2;"), std::string::npos) << code;
}

TEST(SplintLexer, SplicedLineCommentContinues)
{
    const std::string text = "int x = 0; // comment with a splice \\\n"
                             "still comment: rand( here\n"
                             "int y = 1;\n";
    const auto lines = scanLines(text);
    EXPECT_EQ(lines[1].code, "") << lines[1].code;
    EXPECT_NE(lines[1].comment.find("rand("), std::string::npos);
    EXPECT_NE(lines[2].code.find("int y = 1;"), std::string::npos);
}

// ---- Symbol index --------------------------------------------------

SymbolIndex
indexOf(const std::string &path, const std::string &text)
{
    SymbolIndex index;
    index.addSource(path, text);
    index.finalize();
    return index;
}

TEST(SplintIndex, QualifiedNamesForNamespacesAndMethods)
{
    const SymbolIndex index = indexOf("src/core/x.cc",
                                      "namespace sp::core {\n"
                                      "class Controller {\n"
                                      "  public:\n"
                                      "    int inlineGet() { return 1; }\n"
                                      "    int outOfLine(int v);\n"
                                      "};\n"
                                      "int\n"
                                      "Controller::outOfLine(int v)\n"
                                      "{\n"
                                      "    return v;\n"
                                      "}\n"
                                      "int\n"
                                      "freeFn()\n"
                                      "{\n"
                                      "    return 0;\n"
                                      "}\n"
                                      "} // namespace sp::core\n");
    EXPECT_NE(index.findQualified("sp::core::Controller::inlineGet"),
              SymbolIndex::npos);
    EXPECT_NE(index.findQualified("sp::core::Controller::outOfLine"),
              SymbolIndex::npos);
    EXPECT_NE(index.findQualified("sp::core::freeFn"),
              SymbolIndex::npos);
    // The in-class prototype of outOfLine is a declaration, not a
    // definition: exactly one entry carries the qualified name.
    size_t count = 0;
    for (const auto &fn : index.functions)
        count += fn.qualified == "sp::core::Controller::outOfLine";
    EXPECT_EQ(count, 1u);
}

TEST(SplintIndex, ResolveCallNarrowsByQualifier)
{
    const SymbolIndex index =
        indexOf("src/core/x.cc", "namespace sp::core {\n"
                                 "struct A {\n"
                                 "    int load(int v) { return v; }\n"
                                 "};\n"
                                 "struct B {\n"
                                 "    int load(int v) { return -v; }\n"
                                 "};\n"
                                 "} // namespace sp::core\n");
    CallSite bare;
    bare.chain = "load";
    bare.name = "load";
    EXPECT_EQ(index.resolveCall(bare).size(), 2u)
        << "bare names resolve to the whole overload set";

    CallSite qualified;
    qualified.chain = "B::load";
    qualified.name = "load";
    const auto narrowed = index.resolveCall(qualified);
    ASSERT_EQ(narrowed.size(), 1u);
    EXPECT_EQ(index.functions[narrowed[0]].qualified,
              "sp::core::B::load");
}

TEST(SplintIndex, AttributesTokenHitsToEnclosingFunction)
{
    const SymbolIndex index =
        indexOf("src/core/x.cc", "namespace sp::core {\n"
                                 "void\n"
                                 "grow(int n)\n"
                                 "{\n"
                                 "    int *p = new int[n];\n"
                                 "    delete[] p;\n"
                                 "}\n"
                                 "} // namespace sp::core\n");
    const size_t f = index.findQualified("sp::core::grow");
    ASSERT_NE(f, SymbolIndex::npos);
    ASSERT_EQ(index.functions[f].allocs.size(), 1u);
    EXPECT_EQ(index.functions[f].allocs[0].line, 5u);
    EXPECT_EQ(index.functions[f].allocs[0].token, "new");
}

// ---- Graphs --------------------------------------------------------

TEST(SplintGraph, ReachabilityFollowsCallChain)
{
    SymbolIndex index;
    index.addSource("src/core/a.cc", "namespace sp {\n"
                                     "void c() {}\n"
                                     "void b() { c(); }\n"
                                     "void a() { b(); }\n"
                                     "void lonely() {}\n"
                                     "}\n");
    index.finalize();
    const CallGraph graph = CallGraph::build(index);

    const size_t a = index.findQualified("sp::a");
    const size_t c = index.findQualified("sp::c");
    const size_t lonely = index.findQualified("sp::lonely");
    ASSERT_NE(a, SymbolIndex::npos);
    ASSERT_NE(c, SymbolIndex::npos);
    ASSERT_NE(lonely, SymbolIndex::npos);

    const CallGraph::Reach reach = graph.reach({a});
    EXPECT_TRUE(reach.reached[c]);
    EXPECT_FALSE(reach.reached[lonely]);
    EXPECT_EQ(graph.trace(reach, c), "sp::a -> sp::b -> sp::c");
}

TEST(SplintGraph, IncludeCycleFoundOnThreeFileFixture)
{
    const SymbolIndex index =
        buildIndex(std::string(SPLINT_FIXTURES_DIR) +
                   "/tree_bad_layering");
    const IncludeGraph includes = IncludeGraph::build(index);
    const std::vector<std::string> cycle = includes.findCycle();
    ASSERT_FALSE(cycle.empty());
    EXPECT_EQ(cycle.front(), cycle.back());
    EXPECT_EQ(cycle.size(), 4u) << "a -> b -> c -> a";
    bool has_a = false;
    for (const std::string &node : cycle)
        has_a = has_a || node == "src/data/a.h";
    EXPECT_TRUE(has_a);
}

// ---- Transitive rules on their fixture trees -----------------------

std::vector<Diagnostic>
analyzeFixture(const char *tree)
{
    return analyzeTree(std::string(SPLINT_FIXTURES_DIR) + "/" + tree);
}

TEST(SplintGraphRules, HotTransitiveAllocWithTrace)
{
    const auto diags = analyzeFixture("tree_bad_hot_transitive");
    const Diagnostic *diag =
        findDiag(diags, "hot-path-transitive-alloc",
                 "src/common/scratch.cc");
    ASSERT_NE(diag, nullptr) << describe(diags);
    // The diagnostic names the hot call site and the full chain.
    EXPECT_NE(diag->message.find("src/core/hot.cc:10"),
              std::string::npos)
        << diag->message;
    EXPECT_NE(diag->message.find(
                  "sp::common::helper -> sp::common::scratchGrow"),
              std::string::npos)
        << diag->message;
}

TEST(SplintGraphRules, DeterminismTaintAcrossModules)
{
    const auto diags = analyzeFixture("tree_bad_taint");
    const Diagnostic *diag = findDiag(diags, "determinism-taint",
                                      "src/metrics/entropy.cc");
    ASSERT_NE(diag, nullptr) << describe(diags);
    EXPECT_NE(diag->message.find("sp::sys::simulate"),
              std::string::npos)
        << diag->message;
}

TEST(SplintGraphRules, LayeringUpwardIncludeAndCycle)
{
    const auto diags = analyzeFixture("tree_bad_layering");
    EXPECT_NE(findDiag(diags, "layering", "src/common/bad_up.cc"),
              nullptr)
        << describe(diags);
    bool cycle_reported = false;
    for (const Diagnostic &diag : diags)
        cycle_reported =
            cycle_reported ||
            diag.message.find("include cycle") != std::string::npos;
    EXPECT_TRUE(cycle_reported) << describe(diags);
}

TEST(SplintGraphRules, FaultRegistryForwardAndReverse)
{
    const auto diags = analyzeFixture("tree_bad_fault");
    const Diagnostic *unregistered =
        findDiag(diags, "fault-site-registry", "src/data/io.cc");
    ASSERT_NE(unregistered, nullptr) << describe(diags);
    EXPECT_NE(unregistered->message.find("io.unregistered"),
              std::string::npos);
    const Diagnostic *unexercised =
        findDiag(diags, "fault-site-registry", "src/common/fault.cc");
    ASSERT_NE(unexercised, nullptr) << describe(diags);
    EXPECT_NE(unexercised->message.find("io.unexercised"),
              std::string::npos);
}

TEST(SplintGraphRules, CleanFixtureTreeIsClean)
{
    const auto diags = analyzeFixture("tree_graph_clean");
    EXPECT_TRUE(diags.empty()) << describe(diags);
}

// ---- Dumps ---------------------------------------------------------

TEST(SplintGraphDump, JsonAndDotShapes)
{
    const SymbolIndex index =
        buildIndex(std::string(SPLINT_FIXTURES_DIR) +
                   "/tree_graph_clean");
    const std::string json = sp::splint::dumpJson(index);
    EXPECT_NE(json.find("\"tool\":\"splint-graph\""),
              std::string::npos);
    EXPECT_NE(json.find("\"schema_version\":2"), std::string::npos);
    EXPECT_NE(json.find("sp::common::fill"), std::string::npos);
    EXPECT_NE(json.find("\"site\":\"io.read\""), std::string::npos);

    const std::string dot = sp::splint::dumpDot(index);
    EXPECT_EQ(dot.rfind("digraph splint {", 0), 0u);
    EXPECT_NE(dot.find("\"f:sp::core::classify\" -> "
                       "\"f:sp::common::fill\""),
              std::string::npos)
        << dot;
    EXPECT_NE(dot.find("\"i:src/core/hot.cc\" -> "
                       "\"i:src/common/scratch.h\""),
              std::string::npos)
        << dot;
}

// ---- The real tree -------------------------------------------------

TEST(SplintGraphTree, RealSourceTreePassesSemanticPass)
{
    const auto diags = analyzeTree(SPLINT_SOURCE_ROOT);
    EXPECT_TRUE(diags.empty()) << describe(diags);
}

} // namespace
