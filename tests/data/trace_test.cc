/** @file TraceGenerator determinism and geometry tests. */

#include <gtest/gtest.h>

#include "common/logging.h"
#include "data/trace.h"

namespace sp::data
{
namespace
{

TraceConfig
smallConfig()
{
    TraceConfig config;
    config.num_tables = 3;
    config.rows_per_table = 1000;
    config.lookups_per_table = 4;
    config.batch_size = 16;
    config.locality = Locality::Medium;
    config.seed = 11;
    config.dense_features = 5;
    return config;
}

TEST(Trace, BatchGeometry)
{
    TraceGenerator gen(smallConfig());
    const MiniBatch batch = gen.makeBatch(0);
    EXPECT_EQ(batch.numTables(), 3u);
    EXPECT_EQ(batch.batch_size, 16u);
    EXPECT_EQ(batch.lookups_per_table, 4u);
    for (const auto &ids : batch.table_ids)
        EXPECT_EQ(ids.size(), 64u); // 16 * 4
}

TEST(Trace, IdsWithinTableRange)
{
    TraceGenerator gen(smallConfig());
    for (uint64_t b = 0; b < 10; ++b) {
        const MiniBatch batch = gen.makeBatch(b);
        for (const auto &ids : batch.table_ids)
            for (uint32_t id : ids)
                EXPECT_LT(id, 1000u);
    }
}

TEST(Trace, DeterministicPerIndex)
{
    TraceGenerator a(smallConfig()), b(smallConfig());
    // Generate out of order: batch 5 must not depend on history.
    const MiniBatch b5_first = a.makeBatch(5);
    a.makeBatch(0);
    const MiniBatch b5_again = a.makeBatch(5);
    const MiniBatch b5_other = b.makeBatch(5);
    EXPECT_EQ(b5_first.table_ids, b5_again.table_ids);
    EXPECT_EQ(b5_first.table_ids, b5_other.table_ids);
}

TEST(Trace, DifferentBatchesDiffer)
{
    TraceGenerator gen(smallConfig());
    EXPECT_NE(gen.makeBatch(0).table_ids, gen.makeBatch(1).table_ids);
}

TEST(Trace, DifferentSeedsDiffer)
{
    TraceConfig other = smallConfig();
    other.seed = 12;
    TraceGenerator a(smallConfig()), b(other);
    EXPECT_NE(a.makeBatch(0).table_ids, b.makeBatch(0).table_ids);
}

TEST(Trace, TablesHaveIndependentStreams)
{
    TraceGenerator gen(smallConfig());
    const MiniBatch batch = gen.makeBatch(0);
    EXPECT_NE(batch.table_ids[0], batch.table_ids[1]);
}

TEST(Trace, PerTableExponentOverride)
{
    TraceConfig config = smallConfig();
    config.per_table_exponents = {0.0, 0.5, 1.2};
    TraceGenerator gen(config);
    EXPECT_DOUBLE_EQ(gen.tableExponent(0), 0.0);
    EXPECT_DOUBLE_EQ(gen.tableExponent(1), 0.5);
    EXPECT_DOUBLE_EQ(gen.tableExponent(2), 1.2);
}

TEST(Trace, PerTableExponentSizeMismatchFatal)
{
    TraceConfig config = smallConfig();
    config.per_table_exponents = {0.0, 0.5};
    EXPECT_THROW(TraceGenerator{config}, FatalError);
}

TEST(Trace, DenseFeatureGeometryAndDeterminism)
{
    TraceGenerator gen(smallConfig());
    const auto dense = gen.makeDenseFeatures(3);
    EXPECT_EQ(dense.rows(), 16u);
    EXPECT_EQ(dense.cols(), 5u);
    EXPECT_TRUE(
        tensor::Matrix::identical(dense, gen.makeDenseFeatures(3)));
    EXPECT_FALSE(
        tensor::Matrix::identical(dense, gen.makeDenseFeatures(4)));
}

TEST(Trace, LabelsAreBinaryAndDeterministic)
{
    TraceGenerator gen(smallConfig());
    const auto labels = gen.makeLabels(2);
    EXPECT_EQ(labels.rows(), 16u);
    EXPECT_EQ(labels.cols(), 1u);
    for (size_t i = 0; i < labels.rows(); ++i)
        EXPECT_TRUE(labels(i, 0) == 0.0f || labels(i, 0) == 1.0f);
    EXPECT_TRUE(tensor::Matrix::identical(labels, gen.makeLabels(2)));
}

TEST(Trace, LabelsHaveBothClasses)
{
    TraceConfig config = smallConfig();
    config.batch_size = 256;
    TraceGenerator gen(config);
    const auto labels = gen.makeLabels(0);
    int positives = 0;
    for (size_t i = 0; i < labels.rows(); ++i)
        positives += labels(i, 0) > 0.5f ? 1 : 0;
    EXPECT_GT(positives, 20);
    EXPECT_LT(positives, 236);
}

TEST(Trace, ConfigHelpers)
{
    const TraceConfig config = smallConfig();
    EXPECT_EQ(config.idsPerTable(), 64u);
    EXPECT_EQ(config.idsPerBatch(), 192u);
}

TEST(Trace, InvalidConfigsFatal)
{
    TraceConfig config = smallConfig();
    config.num_tables = 0;
    EXPECT_THROW(TraceGenerator{config}, FatalError);

    config = smallConfig();
    config.batch_size = 0;
    EXPECT_THROW(TraceGenerator{config}, FatalError);

    config = smallConfig();
    config.lookups_per_table = 0;
    EXPECT_THROW(TraceGenerator{config}, FatalError);
}

} // namespace
} // namespace sp::data
