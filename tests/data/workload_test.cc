/**
 * @file
 * Workload shaping and trace replay.
 *
 * Covers the four shaping effects (drift, churn, burst, phase) and
 * their contracts: deterministic per (seed, table, batch index),
 * validated against the table geometry, spec strings that round-trip
 * through parse()/summary(), and -- the fix this layer forced -- a
 * 64-bit-clean ID path proven at a >2^32-row geometry from the
 * sampler through the trace to the HitMap key. The replay adapter is
 * proven by a generate -> save -> replay round trip and by classified
 * degradation on truncated/corrupt/missing files.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "cache/hit_map.h"
#include "common/logging.h"
#include "common/status.h"
#include "data/dataset.h"
#include "data/trace.h"
#include "data/workload.h"

namespace sp::data
{
namespace
{

namespace fs = std::filesystem;

/** Small geometry exercised by most shaping tests. */
TraceConfig
shapedConfig()
{
    TraceConfig config;
    config.num_tables = 2;
    config.rows_per_table = 1000;
    config.lookups_per_table = 4;
    config.batch_size = 32;
    config.locality = Locality::Medium;
    config.seed = 99;
    config.dense_features = 2;
    config.workload.drift_amp = 0.3;
    config.workload.drift_period = 4;
    config.workload.churn_k = 16;
    config.workload.churn_period = 3;
    config.workload.burst_frac = 0.4;
    config.workload.burst_period = 6;
    config.workload.burst_len = 2;
    config.workload.burst_ranks = 50;
    config.workload.phase = 2;
    return config;
}

// ---- Spec grammar --------------------------------------------------

TEST(WorkloadSpec, EmptyStringIsTheStationarySpec)
{
    const WorkloadSpec spec = WorkloadSpec::parse("");
    EXPECT_TRUE(spec.config.stationary());
    EXPECT_TRUE(spec.replay_path.empty());
    EXPECT_EQ(spec.summary(), "");
}

TEST(WorkloadSpec, ParseRoundTripsThroughSummary)
{
    const std::string text =
        "drift_amp=0.3,drift_period=4,churn_k=16,churn_period=3,"
        "burst_frac=0.4,burst_period=6,burst_len=2,burst_ranks=50,"
        "phase=2";
    const WorkloadSpec spec = WorkloadSpec::parse(text);
    EXPECT_EQ(spec.config, shapedConfig().workload);
    EXPECT_EQ(spec.summary(), text);
    EXPECT_EQ(WorkloadSpec::parse(spec.summary()).config, spec.config);
}

TEST(WorkloadSpec, ReplaySummaryRoundTrips)
{
    const WorkloadSpec spec = WorkloadSpec::parse("replay=/tmp/a.trace");
    EXPECT_EQ(spec.replay_path, "/tmp/a.trace");
    EXPECT_TRUE(spec.config.stationary());
    EXPECT_EQ(spec.summary(), "replay=/tmp/a.trace");
}

TEST(WorkloadSpec, DuplicateKeysAreRejectedNotLastWin)
{
    // Pre-fix, drift_period=8 silently overwrote drift_period=4.
    try {
        WorkloadSpec::parse("drift_amp=0.1,drift_period=4,drift_period=8");
        FAIL() << "duplicate key accepted";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("duplicate key"),
                  std::string::npos);
        EXPECT_NE(std::string(e.what()).find("drift_period"),
                  std::string::npos);
    }
}

TEST(WorkloadSpec, MalformedSpecsDieLoudly)
{
    EXPECT_THROW(WorkloadSpec::parse("bogus=1"), FatalError);
    EXPECT_THROW(WorkloadSpec::parse("drift_amp"), FatalError);
    EXPECT_THROW(WorkloadSpec::parse("drift_amp=abc"), FatalError);
    EXPECT_THROW(WorkloadSpec::parse("churn_k=-3"), FatalError);
    EXPECT_THROW(WorkloadSpec::parse("churn_k=2.5"), FatalError);
    EXPECT_THROW(WorkloadSpec::parse("replay="), FatalError);
    // Replay and shaping are mutually exclusive: the recorded file
    // already fixes its workload.
    EXPECT_THROW(WorkloadSpec::parse("replay=/tmp/a,drift_amp=0.1"),
                 FatalError);
}

// ---- Validation ----------------------------------------------------

TEST(WorkloadConfig, ValidConfigsPassValidation)
{
    EXPECT_EQ(WorkloadConfig{}.validationError(100), "");
    EXPECT_EQ(shapedConfig().workload.validationError(1000), "");
}

TEST(WorkloadConfig, ValidationCatchesEveryInconsistency)
{
    const auto error = [](auto mutate) {
        WorkloadConfig config;
        mutate(config);
        return config.validationError(100);
    };
    EXPECT_NE(error([](auto &c) { c.drift_amp = -0.1; }), "");
    EXPECT_NE(error([](auto &c) { c.drift_amp = 0.2; }), "");
    EXPECT_NE(error([](auto &c) { c.drift_period = 4; }), "");
    EXPECT_NE(error([](auto &c) { c.churn_k = 8; }), "");
    EXPECT_NE(error([](auto &c) { c.churn_period = 4; }), "");
    EXPECT_NE(error([](auto &c) {
        c.churn_k = 101;
        c.churn_period = 4;
    }), "");
    EXPECT_NE(error([](auto &c) { c.burst_frac = 1.5; }), "");
    EXPECT_NE(error([](auto &c) { c.burst_frac = 0.5; }), "");
    EXPECT_NE(error([](auto &c) { c.burst_period = 4; }), "");
    EXPECT_NE(error([](auto &c) {
        c.burst_frac = 0.5;
        c.burst_period = 2;
        c.burst_len = 3;
        c.burst_ranks = 10;
    }), "");
    EXPECT_NE(error([](auto &c) {
        c.burst_frac = 0.5;
        c.burst_period = 8;
        c.burst_len = 2;
        c.burst_ranks = 101;
    }), "");
    // The generator turns a bad workload into a fatal at build time.
    TraceConfig config = shapedConfig();
    config.workload.churn_k = config.rows_per_table + 1;
    EXPECT_THROW(TraceGenerator generator(config), FatalError);
}

// ---- Shaping semantics ---------------------------------------------

TEST(WorkloadShaper, DriftFollowsTheTriangleWave)
{
    WorkloadConfig config;
    config.drift_amp = 0.4;
    config.drift_period = 4;
    const double base = 1.0;
    const auto exponentAt = [&](uint64_t batch) {
        return WorkloadShaper(config, 7, 1000, base, 0, batch)
            .effectiveExponent();
    };
    // Half-period 4: position 0 sits at the trough, 4 at the crest,
    // 2 and 6 cross the base, 8 wraps back to the trough.
    EXPECT_DOUBLE_EQ(exponentAt(0), base - 0.4);
    EXPECT_DOUBLE_EQ(exponentAt(2), base);
    EXPECT_DOUBLE_EQ(exponentAt(4), base + 0.4);
    EXPECT_DOUBLE_EQ(exponentAt(6), base);
    EXPECT_DOUBLE_EQ(exponentAt(8), base - 0.4);
    // The exponent never goes negative, whatever the amplitude.
    config.drift_amp = 5.0;
    EXPECT_GE(exponentAt(0), 0.0);
}

TEST(WorkloadShaper, PhaseShiftsTheSchedulePerTable)
{
    WorkloadConfig config;
    config.drift_amp = 0.4;
    config.drift_period = 4;
    config.phase = 3;
    // Table t at batch b runs the schedule at position b + 3t, so
    // table 1 at batch b matches table 0 at batch b + 3.
    for (uint64_t b = 0; b < 10; ++b) {
        const double table1 =
            WorkloadShaper(config, 7, 1000, 1.0, 1, b)
                .effectiveExponent();
        const double table0 =
            WorkloadShaper(config, 7, 1000, 1.0, 0, b + 3)
                .effectiveExponent();
        EXPECT_DOUBLE_EQ(table1, table0) << "batch " << b;
    }
}

TEST(WorkloadShaper, BurstWindowIsStableWithinACrowdAndMovesAcross)
{
    WorkloadConfig config;
    config.burst_frac = 0.5;
    config.burst_period = 8;
    config.burst_len = 3;
    config.burst_ranks = 100;
    const uint64_t rows = 100'000;
    const auto shaperAt = [&](uint64_t batch) {
        return WorkloadShaper(config, 7, rows, 1.0, 0, batch);
    };
    // Batches 0..2 of each period are the crowd; 3..7 are quiet.
    EXPECT_TRUE(shaperAt(0).burstActive());
    EXPECT_TRUE(shaperAt(2).burstActive());
    EXPECT_FALSE(shaperAt(3).burstActive());
    EXPECT_FALSE(shaperAt(7).burstActive());
    // Within one crowd the window is pinned; the next crowd re-rolls.
    const uint64_t first = shaperAt(0).burstLo();
    EXPECT_EQ(shaperAt(1).burstLo(), first);
    EXPECT_EQ(shaperAt(2).burstLo(), first);
    EXPECT_LE(first, rows - config.burst_ranks);
    bool moved = false;
    for (uint64_t crowd = 1; crowd < 8 && !moved; ++crowd)
        moved = shaperAt(crowd * config.burst_period).burstLo() != first;
    EXPECT_TRUE(moved) << "burst window never re-rolled";
}

TEST(WorkloadShaper, FullBurstRedirectsEverySampleIntoTheWindow)
{
    WorkloadConfig config;
    config.burst_frac = 1.0;
    config.burst_period = 4;
    config.burst_len = 4; // always bursting
    config.burst_ranks = 32;
    WorkloadShaper shaper(config, 7, 100'000, 1.0, 0, 0);
    tensor::Rng rng(123);
    for (int i = 0; i < 500; ++i) {
        const uint64_t id = shaper.sample(rng);
        EXPECT_GE(id, shaper.burstLo());
        EXPECT_LT(id, shaper.burstLo() + config.burst_ranks);
    }
}

TEST(WorkloadShaper, ChurnOnlyRemapsTheHottestKRanks)
{
    WorkloadConfig config;
    config.churn_k = 8;
    config.churn_period = 2;
    const uint64_t rows = 1000;
    WorkloadShaper shaper(config, 7, rows, 1.0, 0, 0);
    tensor::Rng rng(5);
    std::vector<bool> hit(8, false);
    for (int i = 0; i < 5000; ++i) {
        const uint64_t id = shaper.sample(rng);
        ASSERT_LT(id, rows);
        if (id < 8)
            hit[id] = true;
    }
    // The remap is a permutation of [0, K): the hot ranks all stay
    // reachable (a Zipf head this heavy hits each of the top 8).
    for (int rank = 0; rank < 8; ++rank)
        EXPECT_TRUE(hit[rank]) << "rank " << rank << " unreachable";
}

TEST(WorkloadGenerator, ShapedBatchesAreDeterministicPerSeedTableBatch)
{
    const TraceConfig config = shapedConfig();
    const TraceGenerator a(config);
    const TraceGenerator b(config);
    for (uint64_t index : {0ull, 3ull, 7ull}) {
        // Same (seed, table, batch) -> identical IDs, whatever the
        // construction order (b generates backwards).
        EXPECT_TRUE(a.makeBatch(index).idsEqual(
            b.makeBatch(index)))
            << "batch " << index;
    }
    TraceConfig reseeded = config;
    reseeded.seed = 100;
    EXPECT_FALSE(TraceGenerator(reseeded).makeBatch(0).idsEqual(
        a.makeBatch(0)));
}

TEST(WorkloadGenerator, ShapedStreamDiffersFromStationary)
{
    const TraceConfig shaped = shapedConfig();
    TraceConfig stationary = shaped;
    stationary.workload = WorkloadConfig{};
    EXPECT_FALSE(TraceGenerator(shaped).makeBatch(0).idsEqual(
        TraceGenerator(stationary).makeBatch(0)));
}

// ---- The 64-bit regression -----------------------------------------

TEST(WorkloadGenerator, HugeTableGeometryKeepsIdsUnwrapped)
{
    // Regression: ZipfSampler::sample returned uint32_t while
    // rows_per_table is uint64_t, so any table beyond 2^32 rows
    // silently wrapped its IDs. Uniform sampling over 4 * 2^32 rows
    // puts ~3/4 of all draws above the boundary; pre-fix, every one
    // of them aliased a low row.
    TraceConfig config;
    config.num_tables = 1;
    config.rows_per_table = uint64_t{4} << 32;
    config.lookups_per_table = 4;
    config.batch_size = 64;
    config.per_table_exponents = {0.0}; // uniform
    config.seed = 11;
    const TraceGenerator generator(config);
    const MiniBatch batch = generator.makeBatch(0);
    const auto ids = batch.ids(0);
    uint64_t above_boundary = 0;
    cache::HitMap map;
    for (size_t i = 0; i < ids.size(); ++i) {
        ASSERT_LT(ids[i], config.rows_per_table);
        if (ids[i] > (uint64_t{1} << 32))
            ++above_boundary;
        if (!map.contains(ids[i]))
            map.insert(ids[i], static_cast<uint32_t>(i));
    }
    // 256 uniform draws, each above 2^32 with probability 3/4: zero
    // would mean the sampler truncated.
    EXPECT_GT(above_boundary, ids.size() / 2);
    // And the cache keys survive the trip: every inserted wide ID is
    // found under its exact 64-bit key, not a truncated alias.
    for (size_t i = 0; i < ids.size(); ++i) {
        EXPECT_TRUE(map.contains(ids[i]));
        EXPECT_FALSE(map.contains(ids[i] + (uint64_t{1} << 32)))
            << "truncated alias matched for id " << ids[i];
    }
}

// ---- Replay --------------------------------------------------------

class ReplayTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        path_ = (fs::path(::testing::TempDir()) /
                 "sp_workload_replay.trace")
                    .string();
        fs::remove(path_);
    }
    void TearDown() override { fs::remove(path_); }

    std::string path_;
};

TEST_F(ReplayTest, GenerateSaveReplayMatchesDirectGeneration)
{
    const TraceConfig config = shapedConfig();
    constexpr uint64_t kBatches = 5;
    const TraceDataset direct(config, kBatches);
    ASSERT_TRUE(direct.saveTo(path_).ok());

    const TraceDataset replayed = TraceDataset::replay(path_, kBatches);
    // The file's embedded config drives the run...
    EXPECT_EQ(replayed.config(), config);
    EXPECT_EQ(replayed.config().fingerprint(), config.fingerprint());
    ASSERT_EQ(replayed.numBatches(), kBatches);
    // ...and the replayed stream is the recorded stream, bit for bit.
    for (uint64_t b = 0; b < kBatches; ++b)
        EXPECT_TRUE(replayed.batch(b).idsEqual(direct.batch(b)))
            << "batch " << b;
}

TEST_F(ReplayTest, MissingFileClassifiesAsNotFound)
{
    const auto result = TraceDataset::tryReplay(path_, 2);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), ErrorCode::NotFound);
}

TEST_F(ReplayTest, TruncatedFileClassifiesThroughTheStatusPath)
{
    const TraceDataset direct(shapedConfig(), 3);
    ASSERT_TRUE(direct.saveTo(path_).ok());
    const auto full_size = fs::file_size(path_);
    fs::resize_file(path_, full_size - full_size / 3);

    const auto result = TraceDataset::tryReplay(path_, 3);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), ErrorCode::Truncated)
        << result.status().toString();
}

TEST_F(ReplayTest, CorruptMagicClassifiesAsCorrupt)
{
    const TraceDataset direct(shapedConfig(), 2);
    ASSERT_TRUE(direct.saveTo(path_).ok());
    {
        std::fstream file(path_,
                          std::ios::in | std::ios::out |
                              std::ios::binary);
        file.seekp(0);
        file.write("BADMAGIC", 8);
    }
    const auto result = TraceDataset::tryReplay(path_, 2);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), ErrorCode::Corrupt)
        << result.status().toString();
}

} // namespace
} // namespace sp::data
