/**
 * @file
 * Content-addressed trace cache tests: fingerprint stability and
 * sensitivity, cold/warm acquisition, mmap-vs-eager identity,
 * atomic publication under racing writers, corrupt-entry recovery,
 * and the transparent ExperimentRunner wiring.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <set>
#include <thread>
#include <vector>

#include "common/fault.h"
#include "common/logging.h"
#include "common/status.h"
#include "data/trace_format.h"
#include "data/trace_store.h"
#include "data/trace_view.h"
#include "sim/hardware_config.h"
#include "sys/experiment.h"

namespace sp::data
{
namespace
{

namespace fs = std::filesystem;

TraceConfig
smallConfig()
{
    TraceConfig config;
    config.num_tables = 2;
    config.rows_per_table = 400;
    config.lookups_per_table = 3;
    config.batch_size = 8;
    config.locality = Locality::Medium;
    config.seed = 33;
    config.dense_features = 5;
    return config;
}

/** Fresh cache directory per test, removed on destruction. */
class TempStore
{
  public:
    explicit TempStore(const std::string &name, bool use_mmap = true)
        : dir_(fs::path(::testing::TempDir()) /
               ("sp_store_test_" + name))
    {
        fs::remove_all(dir_);
        TraceStore::Options options;
        options.directory = dir_.string();
        options.use_mmap = use_mmap;
        store_ = std::make_unique<TraceStore>(options);
    }
    ~TempStore() { fs::remove_all(dir_); }

    const TraceStore &operator*() const { return *store_; }
    const TraceStore *operator->() const { return store_.get(); }
    const fs::path &dir() const { return dir_; }

  private:
    fs::path dir_;
    std::unique_ptr<TraceStore> store_;
};

void
expectDatasetsEqual(const TraceDataset &a, const TraceDataset &b)
{
    ASSERT_EQ(a.numBatches(), b.numBatches());
    EXPECT_TRUE(a.config() == b.config());
    for (uint64_t i = 0; i < a.numBatches(); ++i)
        EXPECT_TRUE(a.batch(i).idsEqual(b.batch(i))) << "batch " << i;
}

TEST(Fingerprint, PinnedValueForDefaultConfig)
{
    // Guards the hash against accidental drift: a change here retires
    // every cache entry in the field, so it must only happen together
    // with a deliberate kTraceFormatVersion bump.
    EXPECT_EQ(TraceConfig{}.fingerprint(), "2b042b75b5a30fe3");
}

TEST(Fingerprint, IsDeterministic)
{
    EXPECT_EQ(smallConfig().fingerprint(), smallConfig().fingerprint());
}

TEST(Fingerprint, EveryFieldChangesTheHash)
{
    const TraceConfig base = smallConfig();
    std::vector<TraceConfig> variants(18, base);
    variants[0].num_tables = 3;
    variants[1].rows_per_table = 401;
    variants[2].lookups_per_table = 4;
    variants[3].batch_size = 16;
    variants[4].locality = Locality::High;
    variants[5].seed = 34;
    variants[6].dense_features = 6;
    variants[7].per_table_exponents = {0.5, 0.9};
    variants[8].per_table_exponents = {0.5, 0.900001};
    // Every workload field must feed the hash too: a cache entry
    // generated with a burst overlay must never be served for the
    // stationary config (or vice versa).
    variants[9].workload.drift_amp = 0.25;
    variants[10].workload.drift_period = 16;
    variants[11].workload.churn_k = 32;
    variants[12].workload.churn_period = 8;
    variants[13].workload.burst_frac = 0.5;
    variants[14].workload.burst_period = 12;
    variants[15].workload.burst_len = 3;
    variants[16].workload.burst_ranks = 64;
    variants[17].workload.phase = 5;

    std::set<std::string> fingerprints = {base.fingerprint()};
    for (const auto &variant : variants)
        fingerprints.insert(variant.fingerprint());
    // All pairwise distinct: the base plus every single-field mutant.
    EXPECT_EQ(fingerprints.size(), variants.size() + 1);
}

TEST(TraceStore, EntryPathIsUnderDirectoryAndKeyedByFingerprint)
{
    TempStore store("entry_path");
    const TraceConfig config = smallConfig();
    const std::string path = store->entryPath(config);
    EXPECT_TRUE(path.find(store.dir().string()) != std::string::npos);
    EXPECT_TRUE(path.find(config.fingerprint()) != std::string::npos);
}

TEST(TraceStore, ColdAcquireGeneratesPublishesAndWarmHits)
{
    TempStore store("cold_warm");
    const TraceConfig config = smallConfig();

    TraceStore::AcquireInfo info;
    const TraceDataset cold = store->acquire(config, 6, &info);
    EXPECT_FALSE(info.cache_hit);
    EXPECT_TRUE(info.published);
    EXPECT_TRUE(fs::exists(store->entryPath(config)));
    EXPECT_EQ(cold.numBatches(), 6u);

    const TraceDataset warm = store->acquire(config, 6, &info);
    EXPECT_TRUE(info.cache_hit);
    EXPECT_FALSE(info.published);
    EXPECT_EQ(info.mapped, TraceView::supported());
    expectDatasetsEqual(cold, warm);
    // Labels/dense features regenerate from the round-tripped config.
    EXPECT_TRUE(tensor::Matrix::identical(cold.labels(2),
                                          warm.labels(2)));
    EXPECT_TRUE(tensor::Matrix::identical(cold.denseFeatures(3),
                                          warm.denseFeatures(3)));
}

TEST(TraceStore, MappedAndEagerHitsServeIdenticalBatches)
{
    TempStore mapped_store("mmap_vs_eager", true);
    const TraceConfig config = smallConfig();
    const TraceDataset generated = mapped_store->acquire(config, 5);

    TraceStore::Options eager_options;
    eager_options.directory = mapped_store.dir().string();
    eager_options.use_mmap = false;
    const TraceStore eager_store(eager_options);

    TraceStore::AcquireInfo info;
    const TraceDataset via_map = mapped_store->acquire(config, 5, &info);
    EXPECT_EQ(info.mapped, TraceView::supported());
    EXPECT_EQ(via_map.isMapped(), TraceView::supported());
    const TraceDataset via_read = eager_store.acquire(config, 5, &info);
    EXPECT_TRUE(info.cache_hit);
    EXPECT_FALSE(info.mapped);
    EXPECT_FALSE(via_read.isMapped());

    expectDatasetsEqual(generated, via_map);
    expectDatasetsEqual(via_map, via_read);
}

TEST(TraceStore, LongerEntryServesAnyPrefix)
{
    TempStore store("prefix");
    const TraceConfig config = smallConfig();
    const TraceDataset full = store->acquire(config, 9);

    TraceStore::AcquireInfo info;
    const TraceDataset prefix = store->acquire(config, 4, &info);
    EXPECT_TRUE(info.cache_hit);
    ASSERT_EQ(prefix.numBatches(), 4u);
    for (uint64_t b = 0; b < 4; ++b)
        EXPECT_TRUE(prefix.batch(b).idsEqual(full.batch(b)));
}

TEST(TraceStore, ShorterEntryIsRegeneratedAndReplaced)
{
    TempStore store("grow");
    const TraceConfig config = smallConfig();
    store->acquire(config, 3);

    TraceStore::AcquireInfo info;
    const TraceDataset grown = store->acquire(config, 8, &info);
    EXPECT_FALSE(info.cache_hit);
    EXPECT_TRUE(info.published);
    EXPECT_EQ(grown.numBatches(), 8u);

    // The replacement now serves the bigger request warm.
    const TraceDataset warm = store->acquire(config, 8, &info);
    EXPECT_TRUE(info.cache_hit);
    expectDatasetsEqual(grown, warm);
}

TEST(TraceStore, CorruptEntryIsRegeneratedAndOverwritten)
{
    TempStore store("corrupt");
    const TraceConfig config = smallConfig();
    const TraceDataset original = store->acquire(config, 5);

    {
        std::ofstream os(store->entryPath(config),
                         std::ios::binary | std::ios::trunc);
        os << "garbage, definitely not a trace";
    }

    TraceStore::AcquireInfo info;
    const TraceDataset recovered = store->acquire(config, 5, &info);
    EXPECT_FALSE(info.cache_hit);
    EXPECT_TRUE(info.published);
    expectDatasetsEqual(original, recovered);

    const TraceDataset warm = store->acquire(config, 5, &info);
    EXPECT_TRUE(info.cache_hit);
    expectDatasetsEqual(original, warm);
}

TEST(TraceStore, EntryForDifferentConfigReadsAsMissNotPoison)
{
    // Plant config A's (valid!) entry at config B's path: the
    // field-by-field guard must refuse to serve it even though the
    // file itself is pristine -- this is the hash-collision defence.
    TempStore store("poison");
    const TraceConfig a = smallConfig();
    TraceConfig b = smallConfig();
    b.seed = 99;
    store->acquire(a, 5);
    fs::rename(store->entryPath(a), store->entryPath(b));

    TraceStore::AcquireInfo info;
    const TraceDataset dataset = store->acquire(b, 5, &info);
    EXPECT_FALSE(info.cache_hit);
    EXPECT_TRUE(info.published);
    expectDatasetsEqual(dataset, TraceDataset(b, 5));
}

TEST(TraceStore, RacingPublishersBothSucceedAndAgree)
{
    TempStore store("race");
    const TraceConfig config = smallConfig();

    std::vector<std::unique_ptr<TraceDataset>> results(4);
    // Publishing must be safe against *independent* processes and
    // threads, not pool lanes, so the race is staged on raw threads.
    // splint:allow(no-raw-thread): racing publishers must not share a pool
    std::vector<std::thread> writers;
    for (auto &slot : results) {
        writers.emplace_back([&store, &config, &slot] {
            slot = std::make_unique<TraceDataset>(
                store->acquire(config, 6));
        });
    }
    for (auto &writer : writers)
        writer.join();

    for (const auto &result : results) {
        ASSERT_NE(result, nullptr);
        expectDatasetsEqual(*results[0], *result);
    }
    // Whoever won the rename race left a valid, loadable entry, and
    // no temp files leak.
    TraceStore::AcquireInfo info;
    const TraceDataset warm = store->acquire(config, 6, &info);
    EXPECT_TRUE(info.cache_hit);
    expectDatasetsEqual(*results[0], warm);
    size_t files = 0;
    for (const auto &entry : fs::directory_iterator(store.dir())) {
        (void)entry;
        ++files;
    }
    EXPECT_EQ(files, 1u);
}

TEST(TraceStore, ZeroBatchAcquireFatal)
{
    TempStore store("zero");
    EXPECT_THROW(store->acquire(smallConfig(), 0), FatalError);
}

/** Flips the process-wide cache switch for one scope. */
class CacheEnabledGuard
{
  public:
    explicit CacheEnabledGuard(const std::string &dir)
    {
        ::setenv("SP_TRACE_CACHE", dir.c_str(), 1);
        TraceStore::setCacheEnabled(true);
    }
    ~CacheEnabledGuard()
    {
        TraceStore::setCacheEnabled(false);
        ::unsetenv("SP_TRACE_CACHE");
    }
};

TEST(TraceStore, EnvironmentKillSwitchDisablesCache)
{
    ::setenv("SP_TRACE_CACHE", "off", 1);
    TraceStore::setCacheEnabled(true);
    EXPECT_FALSE(TraceStore::cacheEnabled());
    TraceStore::setCacheEnabled(false);
    ::unsetenv("SP_TRACE_CACHE");
    EXPECT_FALSE(TraceStore::cacheEnabled());
}

/** Arms one fault schedule for a scope; disarms on exit. */
class FaultGuard
{
  public:
    explicit FaultGuard(const std::string &spec)
    {
        common::fault::configure(spec);
    }
    ~FaultGuard() { common::fault::clear(); }
};

TEST(TraceStore, WriteFailureDuringPublishDegradesToUncached)
{
    // The injector stands in for ENOSPC mid-write: saveTo fails, the
    // orphaned temp file is unlinked, the acquire still returns the
    // in-memory dataset, and the status is classified -- never a
    // crash, never litter that a later publish would trip over.
    TempStore store("enospc_publish");
    const TraceConfig config = smallConfig();
    const TraceDataset want(config, 4);
    {
        FaultGuard guard("dataset.save.write:every=1");
        TraceStore::AcquireInfo info;
        const TraceDataset got = store->acquire(config, 4, &info);
        EXPECT_FALSE(info.cache_hit);
        EXPECT_FALSE(info.published);
        EXPECT_EQ(info.publish_status.code(),
                  ErrorCode::FaultInjected);
        expectDatasetsEqual(got, want);
        size_t files = 0;
        for (const auto &entry : fs::directory_iterator(store.dir())) {
            (void)entry;
            ++files;
        }
        EXPECT_EQ(files, 0u) << "publish failure leaked a temp file";
    }
    // Disarmed, the same store publishes cleanly.
    TraceStore::AcquireInfo info;
    const TraceDataset clean = store->acquire(config, 4, &info);
    EXPECT_TRUE(info.published);
    expectDatasetsEqual(clean, want);
}

TEST(TraceStore, MidFileTruncationReadsAsMissAndRegenerates)
{
    TempStore store("truncation");
    const TraceConfig config = smallConfig();
    const TraceDataset original = store->acquire(config, 5);
    const std::string path = store->entryPath(config);

    // Cut the published entry mid-batch, as a crashed writer or a
    // torn copy would.
    fs::resize_file(path, fs::file_size(path) - 7);

    TraceStore::AcquireInfo info;
    const TraceDataset recovered = store->acquire(config, 5, &info);
    EXPECT_FALSE(info.cache_hit);
    EXPECT_EQ(info.load_status.code(), ErrorCode::Truncated);
    EXPECT_TRUE(info.published) << "regenerated entry must republish";
    expectDatasetsEqual(recovered, original);

    const TraceDataset warm = store->acquire(config, 5, &info);
    EXPECT_TRUE(info.cache_hit);
    expectDatasetsEqual(warm, original);
}

TEST(TraceDataset, TryLoadClassifiesEnvironmentalFailures)
{
    TempStore store("classify");
    const TraceConfig config = smallConfig();
    store->acquire(config, 3);
    const std::string path = store->entryPath(config);

    EXPECT_EQ(TraceDataset::tryLoad(path + ".missing").status().code(),
              ErrorCode::NotFound);

    // Rewrite the u32 version field (byte offset 8) to a future
    // version: valid magic, unsupported format.
    {
        std::fstream file(path,
                          std::ios::binary | std::ios::in | std::ios::out);
        file.seekp(8);
        const uint32_t bad_version = format::kTraceFormatVersion + 9;
        file.write(reinterpret_cast<const char *>(&bad_version),
                   sizeof(bad_version));
    }
    EXPECT_EQ(TraceDataset::tryLoad(path).status().code(),
              ErrorCode::VersionMismatch);
    // And the store degrades it to a regenerate, like any bad entry.
    TraceStore::AcquireInfo info;
    const TraceDataset recovered = store->acquire(config, 3, &info);
    EXPECT_FALSE(info.cache_hit);
    EXPECT_EQ(info.load_status.code(), ErrorCode::VersionMismatch);
    EXPECT_EQ(recovered.numBatches(), 3u);

    fs::resize_file(path, fs::file_size(path) - 3);
    EXPECT_EQ(TraceDataset::tryLoad(path).status().code(),
              ErrorCode::Truncated);
    const Result<TraceDataset> mapped = TraceDataset::tryMapped(path);
    EXPECT_FALSE(mapped.ok());
}

TEST(TraceStore, ExperimentRunnerServesIdenticalResultsFromCache)
{
    const fs::path dir =
        fs::path(::testing::TempDir()) / "sp_store_test_runner";
    fs::remove_all(dir);

    sys::ModelConfig model = sys::ModelConfig::paperDefault();
    model.trace = smallConfig();
    model.embedding_dim = 8;
    sys::ExperimentOptions options;
    options.iterations = 3;
    options.warmup = 1;
    const auto hw = sim::HardwareConfig::paperTestbed();

    // Uncached baseline.
    const auto baseline =
        sys::ExperimentRunner(model, hw, options).run("hybrid");

    std::string cold_json, warm_json;
    {
        CacheEnabledGuard guard(dir.string());
        cold_json =
            sys::ExperimentRunner(model, hw, options).run("hybrid")
                .toJson();
        EXPECT_TRUE(
            fs::exists(dir / (model.trace.fingerprint() + ".sptrace")));
        warm_json =
            sys::ExperimentRunner(model, hw, options).run("hybrid")
                .toJson();
    }
    EXPECT_EQ(cold_json, baseline.toJson());
    EXPECT_EQ(warm_json, cold_json);
    fs::remove_all(dir);
}

} // namespace
} // namespace sp::data
