/** @file TraceDataset look-ahead and serialization tests. */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <iterator>
#include <limits>
#include <string>

#include "common/logging.h"
#include "data/dataset.h"
#include "data/trace_view.h"

namespace sp::data
{
namespace
{

TraceConfig
smallConfig()
{
    TraceConfig config;
    config.num_tables = 2;
    config.rows_per_table = 500;
    config.lookups_per_table = 3;
    config.batch_size = 8;
    config.locality = Locality::High;
    config.seed = 21;
    return config;
}

class TempFile
{
  public:
    TempFile() : path_(::testing::TempDir() + "/sp_trace_test.bin") {}
    ~TempFile() { std::remove(path_.c_str()); }
    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

TEST(Dataset, HoldsRequestedBatches)
{
    TraceDataset dataset(smallConfig(), 10);
    EXPECT_EQ(dataset.numBatches(), 10u);
    for (uint64_t b = 0; b < 10; ++b)
        EXPECT_EQ(dataset.batch(b).index, b);
}

TEST(Dataset, MatchesGeneratorOutput)
{
    TraceDataset dataset(smallConfig(), 5);
    TraceGenerator gen(smallConfig());
    for (uint64_t b = 0; b < 5; ++b)
        EXPECT_EQ(dataset.batch(b).table_ids, gen.makeBatch(b).table_ids);
}

TEST(Dataset, LookAheadSeesFuture)
{
    TraceDataset dataset(smallConfig(), 6);
    const MiniBatch *ahead = dataset.lookAhead(2, 3);
    ASSERT_NE(ahead, nullptr);
    EXPECT_EQ(ahead->index, 5u);
    EXPECT_EQ(ahead->table_ids, dataset.batch(5).table_ids);
}

TEST(Dataset, LookAheadZeroIsSelf)
{
    TraceDataset dataset(smallConfig(), 4);
    const MiniBatch *self = dataset.lookAhead(1, 0);
    ASSERT_NE(self, nullptr);
    EXPECT_EQ(self->index, 1u);
}

TEST(Dataset, LookAheadPastEndIsNull)
{
    TraceDataset dataset(smallConfig(), 4);
    EXPECT_EQ(dataset.lookAhead(3, 1), nullptr);
    EXPECT_EQ(dataset.lookAhead(0, 4), nullptr);
}

TEST(Dataset, LookAheadHugeDistanceDoesNotWrap)
{
    // index + distance used to be summed, so a distance near 2^64
    // wrapped around and returned a stale in-range batch instead of
    // nullptr.
    TraceDataset dataset(smallConfig(), 4);
    const uint64_t huge = std::numeric_limits<uint64_t>::max();
    EXPECT_EQ(dataset.lookAhead(1, huge), nullptr);
    EXPECT_EQ(dataset.lookAhead(3, huge - 2), nullptr);
    EXPECT_EQ(dataset.lookAhead(huge, 0), nullptr);
    EXPECT_EQ(dataset.lookAhead(huge - 1, 1), nullptr);
}

TEST(Dataset, OutOfRangeBatchPanics)
{
    TraceDataset dataset(smallConfig(), 4);
    EXPECT_THROW(dataset.batch(4), PanicError);
}

TEST(Dataset, DenseAndLabelsDelegateToGenerator)
{
    TraceDataset dataset(smallConfig(), 3);
    TraceGenerator gen(smallConfig());
    EXPECT_TRUE(tensor::Matrix::identical(dataset.denseFeatures(1),
                                          gen.makeDenseFeatures(1)));
    EXPECT_TRUE(
        tensor::Matrix::identical(dataset.labels(2), gen.makeLabels(2)));
}

TEST(Dataset, SaveLoadRoundTrip)
{
    TempFile file;
    TraceDataset original(smallConfig(), 7);
    original.save(file.path());

    const TraceDataset loaded = TraceDataset::load(file.path());
    EXPECT_EQ(loaded.numBatches(), original.numBatches());
    EXPECT_EQ(loaded.config().num_tables, original.config().num_tables);
    EXPECT_EQ(loaded.config().rows_per_table,
              original.config().rows_per_table);
    EXPECT_EQ(loaded.config().seed, original.config().seed);
    for (uint64_t b = 0; b < original.numBatches(); ++b)
        EXPECT_EQ(loaded.batch(b).table_ids, original.batch(b).table_ids);
}

TEST(Dataset, LoadedDatasetReproducesLabels)
{
    // Labels derive from the config seed, which must survive the
    // round trip.
    TempFile file;
    TraceDataset original(smallConfig(), 3);
    original.save(file.path());
    const TraceDataset loaded = TraceDataset::load(file.path());
    EXPECT_TRUE(
        tensor::Matrix::identical(loaded.labels(1), original.labels(1)));
}

TEST(Dataset, RoundTripPreservesFullConfigAndLookAhead)
{
    // Beyond the ID payload: every TraceConfig field survives, and a
    // loaded dataset serves the same look-ahead spans and regenerates
    // the same dense features -- what the [Plan] stage and functional
    // runs consume.
    TempFile file;
    TraceDataset original(smallConfig(), 6);
    original.save(file.path());
    const TraceDataset loaded = TraceDataset::load(file.path());

    EXPECT_EQ(loaded.config().lookups_per_table,
              original.config().lookups_per_table);
    EXPECT_EQ(loaded.config().batch_size, original.config().batch_size);
    EXPECT_EQ(loaded.config().locality, original.config().locality);
    EXPECT_EQ(loaded.config().dense_features,
              original.config().dense_features);
    for (uint64_t d = 0; d <= 6; ++d) {
        const MiniBatch *expected = original.lookAhead(1, d);
        const MiniBatch *got = loaded.lookAhead(1, d);
        ASSERT_EQ(expected == nullptr, got == nullptr) << "distance " << d;
        if (expected != nullptr) {
            EXPECT_EQ(got->table_ids, expected->table_ids);
        }
    }
    EXPECT_TRUE(tensor::Matrix::identical(loaded.denseFeatures(3),
                                          original.denseFeatures(3)));
}

TEST(Dataset, RoundTripPreservesEveryConfigField)
{
    // A header that silently drops any generator-relevant field would
    // poison the content-addressed cache, so the loaded config must
    // compare equal field-by-field -- including the per-table
    // exponent overrides, which v1 files did not record at all.
    TempFile file;
    TraceConfig config = smallConfig();
    config.per_table_exponents = {0.35, 1.25};
    config.dense_features = 9;
    TraceDataset original(config, 4);
    original.save(file.path());

    const TraceDataset loaded = TraceDataset::load(file.path());
    EXPECT_TRUE(loaded.config() == config);
    for (uint64_t b = 0; b < 4; ++b)
        EXPECT_TRUE(loaded.batch(b).idsEqual(original.batch(b)));
}

TEST(Dataset, LoadHonoursMaxBatches)
{
    TempFile file;
    TraceDataset original(smallConfig(), 7);
    original.save(file.path());
    const TraceDataset prefix = TraceDataset::load(file.path(), 3);
    ASSERT_EQ(prefix.numBatches(), 3u);
    for (uint64_t b = 0; b < 3; ++b)
        EXPECT_TRUE(prefix.batch(b).idsEqual(original.batch(b)));
}

TEST(Dataset, MappedServesIdenticalBatchesZeroCopy)
{
    if (!TraceView::supported())
        GTEST_SKIP() << "no mmap on this platform";
    TempFile file;
    TraceConfig config = smallConfig();
    config.per_table_exponents = {0.6, 0.8};
    TraceDataset original(config, 6);
    original.save(file.path());

    const TraceDataset mapped = TraceDataset::mapped(file.path());
    EXPECT_TRUE(mapped.isMapped());
    EXPECT_TRUE(mapped.config() == config);
    ASSERT_EQ(mapped.numBatches(), 6u);
    for (uint64_t b = 0; b < 6; ++b) {
        EXPECT_TRUE(mapped.batch(b).idsEqual(original.batch(b)));
        // Zero-copy: the view path owns no ID storage.
        EXPECT_TRUE(mapped.batch(b).table_ids.empty());
        EXPECT_EQ(mapped.batch(b).numTables(), config.num_tables);
    }
    // Look-ahead and generator-derived streams work over the mapping.
    const MiniBatch *ahead = mapped.lookAhead(2, 3);
    ASSERT_NE(ahead, nullptr);
    EXPECT_TRUE(ahead->idsEqual(original.batch(5)));
    EXPECT_EQ(mapped.lookAhead(2, 4), nullptr);
    EXPECT_TRUE(tensor::Matrix::identical(mapped.labels(1),
                                          original.labels(1)));
    EXPECT_TRUE(tensor::Matrix::identical(mapped.denseFeatures(2),
                                          original.denseFeatures(2)));
}

TEST(Dataset, MappedHonoursMaxBatches)
{
    if (!TraceView::supported())
        GTEST_SKIP() << "no mmap on this platform";
    TempFile file;
    TraceDataset original(smallConfig(), 6);
    original.save(file.path());
    const TraceDataset mapped = TraceDataset::mapped(file.path(), 2);
    ASSERT_EQ(mapped.numBatches(), 2u);
    EXPECT_TRUE(mapped.batch(1).idsEqual(original.batch(1)));
    EXPECT_THROW(mapped.batch(2), PanicError);
}

TEST(Dataset, MappedRejectsCorruptFiles)
{
    if (!TraceView::supported())
        GTEST_SKIP() << "no mmap on this platform";
    TempFile file;
    TraceDataset original(smallConfig(), 3);
    original.save(file.path());
    std::ifstream is(file.path(), std::ios::binary);
    std::string bytes(std::istreambuf_iterator<char>(is),
                      std::istreambuf_iterator<char>{});
    is.close();
    {
        std::ofstream os(file.path(),
                         std::ios::binary | std::ios::trunc);
        os.write(bytes.data(),
                 static_cast<std::streamsize>(bytes.size() / 2));
    }
    EXPECT_THROW(TraceDataset::mapped(file.path()), FatalError);
    EXPECT_THROW(TraceDataset::mapped("/nonexistent/trace.bin"),
                 FatalError);
}

TEST(Dataset, SaveToUnwritablePathFatal)
{
    TraceDataset dataset(smallConfig(), 2);
    EXPECT_THROW(dataset.save("/nonexistent-dir/trace.bin"),
                 FatalError);
}

std::string
fileBytes(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(is),
                       std::istreambuf_iterator<char>());
}

TEST(Dataset, LoadTruncatedBatchDataFatal)
{
    // A file cut mid-payload must fail loudly at the cut, not return
    // a short dataset or spin over a dead stream.
    TempFile file;
    TraceDataset original(smallConfig(), 7);
    original.save(file.path());
    const std::string bytes = fileBytes(file.path());
    {
        std::ofstream os(file.path(),
                         std::ios::binary | std::ios::trunc);
        os.write(bytes.data(),
                 static_cast<std::streamsize>(2 * bytes.size() / 3));
    }
    EXPECT_THROW(TraceDataset::load(file.path()), FatalError);
}

TEST(Dataset, LoadTruncatedHeaderFatal)
{
    // Valid magic + version, then the header stops: the loader must
    // not act on the garbage counts a short read leaves behind.
    TempFile file;
    TraceDataset original(smallConfig(), 3);
    original.save(file.path());
    const std::string bytes = fileBytes(file.path());
    {
        std::ofstream os(file.path(),
                         std::ios::binary | std::ios::trunc);
        os.write(bytes.data(), 20); // magic + version + half a field
    }
    EXPECT_THROW(TraceDataset::load(file.path()), FatalError);
}

TEST(Dataset, LoadWrongVersionFatal)
{
    TempFile file;
    TraceDataset original(smallConfig(), 3);
    original.save(file.path());
    std::string bytes = fileBytes(file.path());
    bytes[8] = char(0x7f); // version field follows the 8-byte magic
    {
        std::ofstream os(file.path(),
                         std::ios::binary | std::ios::trunc);
        os.write(bytes.data(),
                 static_cast<std::streamsize>(bytes.size()));
    }
    EXPECT_THROW(TraceDataset::load(file.path()), FatalError);
}

TEST(Dataset, LoadV1FileRejectedWithRegenerateHint)
{
    // v1 headers omitted generator fields (per-table exponents), so a
    // v1 file must be rejected with a message pointing at the fix,
    // not silently loaded with a half-populated config.
    TempFile file;
    TraceDataset original(smallConfig(), 3);
    original.save(file.path());
    std::string bytes = fileBytes(file.path());
    bytes[8] = char(1); // version field follows the 8-byte magic
    {
        std::ofstream os(file.path(),
                         std::ios::binary | std::ios::trunc);
        os.write(bytes.data(),
                 static_cast<std::streamsize>(bytes.size()));
    }
    try {
        TraceDataset::load(file.path());
        FAIL() << "v1 file was accepted";
    } catch (const FatalError &error) {
        EXPECT_NE(std::string(error.what()).find("version 1"),
                  std::string::npos);
        EXPECT_NE(std::string(error.what()).find("regenerate"),
                  std::string::npos);
    }
}

TEST(Dataset, LoadMissingFileFatal)
{
    EXPECT_THROW(TraceDataset::load("/nonexistent/path/trace.bin"),
                 FatalError);
}

TEST(Dataset, LoadGarbageFileFatal)
{
    TempFile file;
    {
        std::ofstream os(file.path(), std::ios::binary);
        os << "this is not a trace file at all, far too short header";
    }
    EXPECT_THROW(TraceDataset::load(file.path()), FatalError);
}

TEST(Dataset, ZeroBatchesFatal)
{
    EXPECT_THROW(TraceDataset(smallConfig(), 0), FatalError);
}

} // namespace
} // namespace sp::data
