/** @file AccessStats histogram / ranking / coverage tests. */

#include <gtest/gtest.h>

#include "common/logging.h"
#include "data/access_stats.h"

namespace sp::data
{
namespace
{

MiniBatch
batchWithIds(std::vector<std::vector<uint64_t>> ids)
{
    MiniBatch batch;
    batch.batch_size = 1;
    batch.lookups_per_table = ids.empty() ? 0 : ids[0].size();
    batch.table_ids = std::move(ids);
    return batch;
}

TEST(AccessStats, CountsAccumulate)
{
    AccessStats stats(1, 10);
    stats.addBatch(batchWithIds({{1, 1, 3, 7}}));
    stats.addBatch(batchWithIds({{1, 3, 3, 9}}));
    EXPECT_EQ(stats.counts(0)[1], 3u);
    EXPECT_EQ(stats.counts(0)[3], 3u);
    EXPECT_EQ(stats.counts(0)[7], 1u);
    EXPECT_EQ(stats.counts(0)[9], 1u);
    EXPECT_EQ(stats.counts(0)[0], 0u);
    EXPECT_EQ(stats.totalAccesses(0), 8u);
}

TEST(AccessStats, SortedCountsDescending)
{
    AccessStats stats(1, 5);
    stats.addBatch(batchWithIds({{0, 0, 0, 2, 2, 4}}));
    const auto sorted = stats.sortedCounts(0);
    EXPECT_EQ(sorted[0], 3u);
    EXPECT_EQ(sorted[1], 2u);
    EXPECT_EQ(sorted[2], 1u);
    EXPECT_EQ(sorted[3], 0u);
}

TEST(AccessStats, CoverageOfTopFraction)
{
    AccessStats stats(1, 10);
    // Row 0: 8 accesses, rows 1..3: 1 access each -> top 10% (1 row)
    // captures 8/11.
    stats.addBatch(batchWithIds({{0, 0, 0, 0, 0, 0, 0, 0, 1, 2, 3}}));
    EXPECT_NEAR(stats.coverage(0, 0.1), 8.0 / 11.0, 1e-12);
    EXPECT_NEAR(stats.coverage(0, 1.0), 1.0, 1e-12);
    EXPECT_DOUBLE_EQ(stats.coverage(0, 0.0), 0.0);
}

TEST(AccessStats, RankedRowsHottestFirst)
{
    AccessStats stats(1, 6);
    stats.addBatch(batchWithIds({{5, 5, 5, 2, 2, 0}}));
    const auto ranked = stats.rankedRows(0);
    EXPECT_EQ(ranked[0], 5u);
    EXPECT_EQ(ranked[1], 2u);
    EXPECT_EQ(ranked[2], 0u);
}

TEST(AccessStats, RankingTiesAreStableByRowId)
{
    AccessStats stats(1, 4);
    stats.addBatch(batchWithIds({{3, 1}}));
    const auto ranked = stats.rankedRows(0);
    // Rows 1 and 3 tie with one access; stable sort keeps 1 before 3.
    EXPECT_EQ(ranked[0], 1u);
    EXPECT_EQ(ranked[1], 3u);
}

TEST(AccessStats, UniqueRows)
{
    AccessStats stats(1, 10);
    stats.addBatch(batchWithIds({{4, 4, 4, 8}}));
    EXPECT_EQ(stats.uniqueRows(0), 2u);
}

TEST(AccessStats, MultipleTablesIndependent)
{
    AccessStats stats(2, 10);
    stats.addBatch(batchWithIds({{1, 1}, {9}}));
    EXPECT_EQ(stats.totalAccesses(0), 2u);
    EXPECT_EQ(stats.totalAccesses(1), 1u);
    EXPECT_EQ(stats.counts(1)[9], 1u);
    EXPECT_EQ(stats.counts(1)[1], 0u);
}

TEST(AccessStats, DatasetAccumulation)
{
    TraceConfig config;
    config.num_tables = 2;
    config.rows_per_table = 100;
    config.lookups_per_table = 2;
    config.batch_size = 4;
    config.locality = Locality::High;
    TraceDataset dataset(config, 5);

    AccessStats stats(2, 100);
    stats.addDataset(dataset);
    // 5 batches * 4 samples * 2 lookups per table.
    EXPECT_EQ(stats.totalAccesses(0), 40u);
    EXPECT_EQ(stats.totalAccesses(1), 40u);
}

TEST(AccessStats, HighLocalityBeatsUniformCoverage)
{
    TraceConfig config;
    config.num_tables = 1;
    config.rows_per_table = 10000;
    config.lookups_per_table = 8;
    config.batch_size = 64;
    TraceDataset high([&] {
        auto c = config;
        c.locality = Locality::High;
        return c;
    }(), 20);
    TraceDataset uniform([&] {
        auto c = config;
        c.locality = Locality::Random;
        return c;
    }(), 20);

    AccessStats high_stats(1, 10000), uniform_stats(1, 10000);
    high_stats.addDataset(high);
    uniform_stats.addDataset(uniform);
    EXPECT_GT(high_stats.coverage(0, 0.02),
              3.0 * uniform_stats.coverage(0, 0.02));
}

TEST(AccessStats, OutOfRangeIdPanics)
{
    AccessStats stats(1, 4);
    EXPECT_THROW(stats.addBatch(batchWithIds({{4}})), PanicError);
}

TEST(AccessStats, TableIndexChecked)
{
    AccessStats stats(1, 4);
    EXPECT_THROW(stats.counts(1), PanicError);
    EXPECT_THROW(stats.totalAccesses(2), PanicError);
}

} // namespace
} // namespace sp::data
