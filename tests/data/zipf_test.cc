/** @file Zipf sampler distribution properties. */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/logging.h"
#include "data/zipf.h"

namespace sp::data
{
namespace
{

std::vector<uint64_t>
sampleHistogram(ZipfSampler &sampler, uint64_t n, int draws,
                uint64_t seed = 99)
{
    tensor::Rng rng(seed);
    std::vector<uint64_t> counts(n, 0);
    for (int i = 0; i < draws; ++i)
        ++counts[sampler.sample(rng)];
    return counts;
}

TEST(Zipf, SamplesInRange)
{
    ZipfSampler sampler(1000, 1.0);
    tensor::Rng rng(1);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(sampler.sample(rng), 1000u);
}

TEST(Zipf, UniformWhenExponentZero)
{
    ZipfSampler sampler(10, 0.0);
    const auto counts = sampleHistogram(sampler, 10, 100000);
    for (uint64_t c : counts)
        EXPECT_NEAR(static_cast<double>(c), 10000.0, 600.0);
}

TEST(Zipf, EmpiricalMatchesExactProbabilities)
{
    constexpr uint64_t n = 50;
    constexpr int draws = 500000;
    ZipfSampler sampler(n, 1.0);
    const auto counts = sampleHistogram(sampler, n, draws);
    for (uint64_t k = 0; k < n; ++k) {
        const double expected = sampler.probability(k) * draws;
        // 5-sigma Poisson band.
        const double slack = 5.0 * std::sqrt(expected) + 1.0;
        EXPECT_NEAR(static_cast<double>(counts[k]), expected, slack)
            << "rank " << k;
    }
}

TEST(Zipf, RankZeroIsHottest)
{
    ZipfSampler sampler(10000, 0.8);
    const auto counts = sampleHistogram(sampler, 10000, 200000);
    for (uint64_t k = 1; k < 20; ++k)
        EXPECT_GE(counts[0], counts[k]);
}

TEST(Zipf, HigherExponentMoreSkew)
{
    constexpr uint64_t n = 10000;
    constexpr int draws = 200000;
    ZipfSampler flat(n, 0.4), steep(n, 1.2);
    const auto flat_counts = sampleHistogram(flat, n, draws, 5);
    const auto steep_counts = sampleHistogram(steep, n, draws, 5);

    auto top_100_share = [&](const std::vector<uint64_t> &counts) {
        uint64_t top = 0;
        for (size_t k = 0; k < 100; ++k)
            top += counts[k];
        return static_cast<double>(top) / draws;
    };
    EXPECT_GT(top_100_share(steep_counts), 2.0 * top_100_share(flat_counts));
}

TEST(Zipf, ProbabilitySumsToOne)
{
    ZipfSampler sampler(1000, 0.9);
    double total = 0.0;
    for (uint64_t k = 0; k < 1000; ++k)
        total += sampler.probability(k);
    EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Zipf, ProbabilityMonotoneInRank)
{
    ZipfSampler sampler(100, 1.1);
    for (uint64_t k = 1; k < 100; ++k)
        EXPECT_GT(sampler.probability(k - 1), sampler.probability(k));
}

TEST(Zipf, SingleElementAlwaysZero)
{
    ZipfSampler sampler(1, 1.0);
    tensor::Rng rng(2);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(sampler.sample(rng), 0u);
}

TEST(Zipf, InvalidParametersFatal)
{
    EXPECT_THROW(ZipfSampler(0, 1.0), FatalError);
    EXPECT_THROW(ZipfSampler(10, -0.1), FatalError);
}

TEST(Zipf, GeneralizedHarmonicKnownValues)
{
    // H(3, 1) = 1 + 1/2 + 1/3.
    EXPECT_NEAR(generalizedHarmonic(3, 1.0), 11.0 / 6.0, 1e-12);
    // H(n, 0) = n.
    EXPECT_DOUBLE_EQ(generalizedHarmonic(42, 0.0), 42.0);
}

TEST(Zipf, TopCoverageUniformIsFraction)
{
    EXPECT_NEAR(zipfTopCoverage(1000, 0.0, 0.1), 0.1, 1e-12);
}

TEST(Zipf, TopCoverageIncreasesWithExponent)
{
    const double low = zipfTopCoverage(100000, 0.4, 0.02);
    const double mid = zipfTopCoverage(100000, 0.8, 0.02);
    const double high = zipfTopCoverage(100000, 1.2, 0.02);
    EXPECT_LT(low, mid);
    EXPECT_LT(mid, high);
}

TEST(Zipf, TopCoverageFullFractionIsOne)
{
    EXPECT_NEAR(zipfTopCoverage(1000, 0.7, 1.0), 1.0, 1e-12);
}

TEST(Zipf, TopCoverageZeroFractionIsZero)
{
    EXPECT_DOUBLE_EQ(zipfTopCoverage(1000, 0.7, 0.0), 0.0);
}

} // namespace
} // namespace sp::data
