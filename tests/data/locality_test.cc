/**
 * @file
 * Locality presets hit the paper's quoted anchor points.
 *
 * Section III-A: "in Criteo Ad Labs, 2% of the embeddings account for
 * more than 80% of all accesses whereas for Alibaba User dataset, 2%
 * of embeddings only account for 8.5% of traffic". These tests verify
 * our Zipf exponents reproduce those coverages analytically at the
 * paper's 10M-row table size.
 */

#include <gtest/gtest.h>

#include "common/logging.h"
#include "data/locality.h"
#include "data/zipf.h"

namespace sp::data
{
namespace
{

constexpr uint64_t kPaperRows = 10'000'000;

TEST(Locality, RandomIsUniform)
{
    EXPECT_DOUBLE_EQ(zipfExponent(Locality::Random), 0.0);
    EXPECT_NEAR(zipfTopCoverage(kPaperRows,
                                zipfExponent(Locality::Random), 0.02),
                0.02, 1e-9);
}

TEST(Locality, LowMatchesAlibabaAnchor)
{
    const double coverage = zipfTopCoverage(
        kPaperRows, zipfExponent(Locality::Low), 0.02);
    EXPECT_NEAR(coverage, 0.085, 0.02);
}

TEST(Locality, MediumSitsBetween)
{
    const double coverage = zipfTopCoverage(
        kPaperRows, zipfExponent(Locality::Medium), 0.02);
    EXPECT_GT(coverage, 0.25);
    EXPECT_LT(coverage, 0.55);
}

TEST(Locality, HighMatchesCriteoAnchor)
{
    const double coverage = zipfTopCoverage(
        kPaperRows, zipfExponent(Locality::High), 0.02);
    EXPECT_GT(coverage, 0.80);
}

TEST(Locality, ExponentsStrictlyOrdered)
{
    EXPECT_LT(zipfExponent(Locality::Random), zipfExponent(Locality::Low));
    EXPECT_LT(zipfExponent(Locality::Low), zipfExponent(Locality::Medium));
    EXPECT_LT(zipfExponent(Locality::Medium),
              zipfExponent(Locality::High));
}

TEST(Locality, NamesRoundTrip)
{
    for (Locality locality : kAllLocalities)
        EXPECT_EQ(localityFromName(localityName(locality)), locality);
}

TEST(Locality, NameParsingIsCaseInsensitive)
{
    EXPECT_EQ(localityFromName("random"), Locality::Random);
    EXPECT_EQ(localityFromName("HIGH"), Locality::High);
    EXPECT_EQ(localityFromName("mEdIuM"), Locality::Medium);
}

TEST(Locality, UnknownNameFatal)
{
    EXPECT_THROW(localityFromName("criteo"), FatalError);
}

TEST(Locality, ExpectedCoveragesOrdered)
{
    EXPECT_LT(expectedTop2PercentCoverage(Locality::Random),
              expectedTop2PercentCoverage(Locality::Low));
    EXPECT_LT(expectedTop2PercentCoverage(Locality::Low),
              expectedTop2PercentCoverage(Locality::Medium));
    EXPECT_LT(expectedTop2PercentCoverage(Locality::Medium),
              expectedTop2PercentCoverage(Locality::High));
}

} // namespace
} // namespace sp::data
