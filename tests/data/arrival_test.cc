/** @file Open-loop arrival process tests: determinism per seed,
 *  finite clamped draws, mean-rate sanity, and config validation
 *  (notably the rate=0 divide-by-zero and the bursty mean-preserving
 *  constraint). */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "common/logging.h"
#include "data/arrival.h"

namespace sp::data
{
namespace
{

std::vector<double>
drawTimes(const ArrivalConfig &config, uint64_t seed, size_t n)
{
    ArrivalProcess process(config, seed);
    std::vector<double> times;
    times.reserve(n);
    for (size_t i = 0; i < n; ++i)
        times.push_back(process.next());
    return times;
}

TEST(Arrival, KindNamesRoundTrip)
{
    for (ArrivalKind kind : {ArrivalKind::Poisson, ArrivalKind::Uniform,
                             ArrivalKind::Bursty})
        EXPECT_EQ(arrivalKindFromName(arrivalKindName(kind)), kind);
    EXPECT_THROW(arrivalKindFromName("lognormal"), FatalError);
}

TEST(Arrival, DeterministicPerSeedAndDisjointAcrossSeeds)
{
    ArrivalConfig config;
    config.rate = 1e6;
    const std::vector<double> a = drawTimes(config, 7, 256);
    const std::vector<double> b = drawTimes(config, 7, 256);
    EXPECT_EQ(a, b); // bit-identical replay
    const std::vector<double> c = drawTimes(config, 8, 256);
    EXPECT_NE(a, c);
}

TEST(Arrival, TimesAreFiniteAndStrictlyIncreasing)
{
    // The uniform draw is clamped to (0, 1]: -ln(u) is finite, so no
    // gap is ever infinite, and Poisson gaps are strictly positive.
    for (ArrivalKind kind : {ArrivalKind::Poisson, ArrivalKind::Uniform,
                             ArrivalKind::Bursty}) {
        ArrivalConfig config;
        config.kind = kind;
        config.rate = 1e6;
        const std::vector<double> times = drawTimes(config, 1234, 4096);
        double previous = 0.0;
        for (double t : times) {
            ASSERT_TRUE(std::isfinite(t));
            ASSERT_GT(t, previous);
            previous = t;
        }
    }
}

TEST(Arrival, PoissonMeanRateIsClose)
{
    ArrivalConfig config;
    config.rate = 1e6;
    const size_t n = 100000;
    const std::vector<double> times = drawTimes(config, 99, n);
    const double achieved = double(n) / times.back();
    // 100k exponential gaps: the sample mean is within a few percent
    // with overwhelming probability (and the draw is deterministic).
    EXPECT_NEAR(achieved / config.rate, 1.0, 0.05);
}

TEST(Arrival, UniformGapsAreExact)
{
    ArrivalConfig config;
    config.kind = ArrivalKind::Uniform;
    config.rate = 1000.0;
    const std::vector<double> times = drawTimes(config, 0, 10);
    for (size_t i = 0; i < times.size(); ++i)
        EXPECT_DOUBLE_EQ(times[i], double(i + 1) * 1e-3);
}

TEST(Arrival, BurstyPreservesMeanRate)
{
    ArrivalConfig config;
    config.kind = ArrivalKind::Bursty;
    config.rate = 1e6;
    config.burst_x = 8.0;
    config.burst_on_us = 500.0;
    config.burst_off_us = 4500.0;
    const size_t n = 200000;
    const std::vector<double> times = drawTimes(config, 42, n);
    const double achieved = double(n) / times.back();
    EXPECT_NEAR(achieved / config.rate, 1.0, 0.05);
}

TEST(Arrival, BurstySaturatedOffPhaseIsSilent)
{
    // burst_x * on == period puts all mass in the on-phase; the
    // off-phase rate is exactly zero and the process must jump the
    // clock to the next on-phase instead of dividing by zero.
    ArrivalConfig config;
    config.kind = ArrivalKind::Bursty;
    config.rate = 1e6;
    config.burst_x = 10.0;
    config.burst_on_us = 500.0;
    config.burst_off_us = 4500.0;
    const std::vector<double> times = drawTimes(config, 3, 20000);
    const double period = 5000e-6;
    const double on = 500e-6;
    size_t in_on_phase = 0;
    for (double t : times) {
        ASSERT_TRUE(std::isfinite(t));
        if (std::fmod(t, period) < on)
            ++in_on_phase;
    }
    // Essentially every arrival lands in an on-phase window; the rare
    // exception is a gap drawn near the phase edge overshooting it
    // (the rate is frozen at the draw's phase, never re-drawn at
    // zero).
    EXPECT_GT(double(in_on_phase) / double(times.size()), 0.95);
    // The burst still carries the full configured mean rate.
    EXPECT_NEAR(double(times.size()) / times.back() / config.rate, 1.0,
                0.05);
}

TEST(Arrival, RejectsNonPositiveOrNonFiniteRate)
{
    const double nan = std::numeric_limits<double>::quiet_NaN();
    const double inf = std::numeric_limits<double>::infinity();
    for (double rate : {0.0, -1.0, nan, inf}) {
        ArrivalConfig config;
        config.rate = rate;
        EXPECT_FALSE(config.validationError().empty()) << rate;
        EXPECT_THROW(ArrivalProcess(config, 1), FatalError) << rate;
    }
}

TEST(Arrival, RejectsImpossibleBurstShapes)
{
    ArrivalConfig config;
    config.kind = ArrivalKind::Bursty;
    config.rate = 1e6;

    config.burst_x = 0.5; // would make the off-phase the busy one
    EXPECT_FALSE(config.validationError().empty());
    config.burst_x = 8.0;

    config.burst_on_us = 0.0;
    EXPECT_FALSE(config.validationError().empty());
    config.burst_on_us = 500.0;

    config.burst_off_us = -1.0;
    EXPECT_FALSE(config.validationError().empty());
    config.burst_off_us = 4500.0;

    // burst_x * on > period: the mean-preserving off-rate would be
    // negative.
    config.burst_x = 11.0;
    EXPECT_FALSE(config.validationError().empty());
    config.burst_x = 10.0; // == period: exactly saturated is legal
    EXPECT_TRUE(config.validationError().empty());
}

} // namespace
} // namespace sp::data
