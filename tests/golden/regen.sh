#!/usr/bin/env bash
# Regenerate the golden outputs after an intentional behaviour change.
# One command, from the repo root (builds spsim + fig13 first):
#
#   tests/golden/regen.sh [build-dir]
#
# Keep the spsim argument list below in sync with the golden_spsim_json
# test in CMakeLists.txt.
set -euo pipefail

build=${1:-build}
root=$(cd "$(dirname "$0")/../.." && pwd)

cmake --build "$build" -j --target spsim bench_fig13_speedup

"$build"/spsim \
    --system hybrid,static:cache=0.1,strawman,scratchpipe,multigpu \
    --locality medium --tables 3 --rows 20000 --dim 16 --lookups 4 \
    --batch 64 --iterations 4 --warmup 2 --seed 7 --format json \
    > "$root"/tests/golden/spsim_small.json

"$build"/spsim \
    --system hybrid,static:cache=0.1,strawman,scratchpipe,multigpu \
    --locality medium --tables 3 --rows 20000 --dim 16 --lookups 4 \
    --batch 64 --iterations 4 --warmup 2 --seed 7 --jobs 4 \
    --workload drift_amp=0.4,drift_period=3,phase=1 --format json \
    > "$root"/tests/golden/spsim_drift.json

"$build"/spsim \
    --system hybrid,static:cache=0.1,strawman,scratchpipe,multigpu \
    --locality medium --tables 3 --rows 20000 --dim 16 --lookups 4 \
    --batch 64 --iterations 4 --warmup 2 --seed 7 \
    --workload burst_frac=0.5,burst_period=4,burst_len=2,burst_ranks=64,churn_k=32,churn_period=2 \
    --format json \
    > "$root"/tests/golden/spsim_burst.json

"$build"/spsim \
    --system "serve:rate=500000,arrival=bursty,batch_max=16,budget_us=300,refresh=lru" \
    --locality medium --tables 3 --rows 20000 --dim 16 --lookups 4 \
    --batch 64 --iterations 4 --warmup 2 --seed 7 --format json \
    > "$root"/tests/golden/spsim_serve.json

"$build"/bench_fig13_speedup --quick --json \
    > "$root"/tests/golden/fig13_quick.json

echo "regenerated:"
ls -l "$root"/tests/golden/*.json
