/**
 * @file
 * spsim: command-line driver for the system models.
 *
 * Run any of the five systems at any geometry/locality/cache size from
 * flags and get the per-iteration latency breakdown, hit rate, energy
 * and training cost -- the whole evaluation harness as one tool.
 *
 *   spsim --system scratchpipe --locality low --cache 0.05
 *   spsim --system static --locality high --cache 0.02 --dim 256
 *   spsim --system multigpu --batch 4096 --iterations 20
 */

#include <iostream>

#include "common/args.h"
#include "common/logging.h"
#include "metrics/cost.h"
#include "metrics/energy.h"
#include "metrics/table_printer.h"
#include "sys/factory.h"

using namespace sp;

namespace
{

sys::SystemKind
systemFromName(const std::string &name)
{
    if (name == "hybrid")
        return sys::SystemKind::Hybrid;
    if (name == "static")
        return sys::SystemKind::StaticCache;
    if (name == "strawman")
        return sys::SystemKind::Strawman;
    if (name == "scratchpipe")
        return sys::SystemKind::ScratchPipe;
    if (name == "multigpu")
        return sys::SystemKind::MultiGpu;
    fatal("unknown system '", name,
          "' (hybrid/static/strawman/scratchpipe/multigpu)");
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args("spsim: simulate RecSys training systems on the "
                   "modeled Xeon+V100 testbed");
    args.addString("system", "scratchpipe",
                   "hybrid|static|strawman|scratchpipe|multigpu");
    args.addString("locality", "medium", "random|low|medium|high");
    args.addDouble("cache", 0.10, "GPU cache fraction of each table");
    args.addInt("tables", 8, "number of embedding tables");
    args.addInt("rows", 10'000'000, "rows per table");
    args.addInt("dim", 128, "embedding dimension");
    args.addInt("lookups", 20, "gathers per table per sample");
    args.addInt("batch", 2048, "mini-batch size");
    args.addInt("iterations", 10, "measured iterations");
    args.addInt("warmup", 5, "warm-up iterations");
    args.addInt("seed", 42, "trace seed");
    args.addBool("csv", "print CSV instead of an aligned table");

    try {
        if (!args.parse(argc, argv)) {
            std::cout << args.usage();
            return 0;
        }

        sys::ModelConfig model = sys::ModelConfig::paperDefault();
        model.trace.num_tables =
            static_cast<size_t>(args.getInt("tables"));
        model.trace.rows_per_table =
            static_cast<uint64_t>(args.getInt("rows"));
        model.trace.lookups_per_table =
            static_cast<size_t>(args.getInt("lookups"));
        model.trace.batch_size =
            static_cast<size_t>(args.getInt("batch"));
        model.trace.locality =
            data::localityFromName(args.getString("locality"));
        model.trace.seed = static_cast<uint64_t>(args.getInt("seed"));
        model.embedding_dim = static_cast<size_t>(args.getInt("dim"));
        model.validate();

        const uint64_t warmup =
            static_cast<uint64_t>(args.getInt("warmup"));
        const uint64_t iterations =
            static_cast<uint64_t>(args.getInt("iterations"));
        const auto kind = systemFromName(args.getString("system"));
        const sim::HardwareConfig hw =
            sim::HardwareConfig::paperTestbed();

        std::cout << "generating trace (" << (warmup + iterations + 2)
                  << " batches of "
                  << model.trace.idsPerBatch() << " IDs)...\n";
        data::TraceDataset dataset(model.trace, warmup + iterations + 2);
        sys::BatchStats stats(dataset, warmup + iterations);

        const auto result =
            sys::simulateSystem(kind, model, hw, args.getDouble("cache"),
                                dataset, stats, iterations, warmup);

        metrics::TablePrinter table({"metric", "value"});
        table.addRow({"system", result.system_name});
        table.addRow({"iteration (ms)",
                      metrics::TablePrinter::num(
                          1e3 * result.seconds_per_iteration, 3)});
        for (const auto &stage : result.breakdown.stages()) {
            table.addRow({"  " + stage.name + " (ms)",
                          metrics::TablePrinter::num(
                              1e3 * stage.seconds, 3)});
        }
        if (result.hit_rate >= 0.0) {
            table.addRow({"hit rate",
                          metrics::TablePrinter::num(
                              100.0 * result.hit_rate, 2) + "%"});
        }
        if (!result.bottleneck.empty())
            table.addRow({"bottleneck", result.bottleneck});
        table.addRow({"GPU bytes (GB)",
                      metrics::TablePrinter::num(result.gpu_bytes / 1e9,
                                                 2)});

        const metrics::EnergyModel energy(hw);
        table.addRow({"energy (J/iter)",
                      metrics::TablePrinter::num(
                          energy.iterationEnergy(result.busy), 2)});
        const auto instance = kind == sys::SystemKind::MultiGpu
                                  ? metrics::AwsInstance::p3_16xlarge()
                                  : metrics::AwsInstance::p3_2xlarge();
        table.addRow(
            {"$ / 1M iters (" + instance.name + ")",
             metrics::TablePrinter::num(
                 metrics::trainingCost(
                     instance, result.seconds_per_iteration, 1'000'000),
                 2)});

        if (args.getBool("csv"))
            table.printCsv(std::cout);
        else
            table.print(std::cout);
    } catch (const FatalError &error) {
        std::cerr << error.what() << "\n";
        return 1;
    }
    return 0;
}
