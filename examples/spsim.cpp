/**
 * @file
 * spsim: command-line driver for the system models.
 *
 * Run any registered system -- or several at once, over the same
 * trace -- at any geometry/locality/cache size and get per-iteration
 * latency breakdowns, hit rate, energy and training cost.
 *
 *   spsim --list-systems
 *   spsim --system scratchpipe --locality low --cache 0.05
 *   spsim --system scratchpipe:policy=lfu,past=4 --format json
 *   spsim --system hybrid,static:cache=0.02,scratchpipe --jobs 8
 *
 * --system takes a comma-separated list of system specs (see
 * sys/spec.h for the grammar); all of them run over one shared
 * workload via sys::ExperimentRunner. --format selects an aligned
 * table, CSV, or a JSON array of RunResult objects.
 *
 * Failure contract: a spec whose simulation fails is reported (JSON
 * "error" field, stderr message) while the rest of the sweep
 * completes, unless --fail-fast aborts at the first failure. Exit
 * codes: 0 every spec succeeded, 1 usage/configuration error, 2 every
 * spec failed (or --fail-fast aborted), 3 some specs failed.
 * --faults/SP_FAULTS arm the deterministic fault injector
 * (common/fault.h) for chaos-testing those paths.
 */

#include <iostream>
#include <sstream>
#include <vector>

#include "cache/probe_kernel.h"
#include "common/args.h"
#include "common/fault.h"
#include "common/logging.h"
#include "common/thread_pool.h"
#include "data/trace_store.h"
#include "data/workload.h"
#include "metrics/cost.h"
#include "metrics/energy.h"
#include "metrics/table_printer.h"
#include "sys/experiment.h"
#include "sys/registry.h"

using namespace sp;

namespace
{

/** Split "a,b:c=d,e" at top-level commas, honouring that spec option
 *  lists also use commas: a new spec starts only when the token before
 *  the comma contains no '=' pending... The unambiguous rule: split at
 *  commas whose next segment, up to the following comma/colon, does
 *  not contain '='. */
std::vector<std::string>
splitSpecs(const std::string &text)
{
    std::vector<std::string> specs;
    std::string current;
    std::stringstream stream(text);
    std::string piece;
    while (std::getline(stream, piece, ',')) {
        const bool option = piece.find('=') != std::string::npos &&
                            piece.find(':') == std::string::npos;
        if (current.empty() || !option) {
            if (!current.empty())
                specs.push_back(current);
            current = piece;
        } else {
            current += "," + piece;
        }
    }
    if (!current.empty())
        specs.push_back(current);
    fatalIf(specs.empty(), "--system: no system specs in '", text, "'");
    return specs;
}

void
listSystems()
{
    metrics::TablePrinter table({"system", "description"});
    for (const auto &name : sys::Registry::names())
        table.addRow({name, sys::Registry::entry(name).description});
    table.print(std::cout);
}

void
printDetailed(const sys::RunResult &result, const std::string &spec_name,
              const sim::HardwareConfig &hw, bool csv)
{
    if (result.failed()) {
        metrics::TablePrinter table({"metric", "value"});
        table.addRow({"system", result.system_name});
        table.addRow({"status", "failed: " + result.error});
        if (csv)
            table.printCsv(std::cout);
        else
            table.print(std::cout);
        return;
    }
    metrics::TablePrinter table({"metric", "value"});
    table.addRow({"system", result.system_name});
    table.addRow({"iteration (ms)",
                  metrics::TablePrinter::num(
                      1e3 * result.seconds_per_iteration, 3)});
    for (const auto &stage : result.breakdown.stages()) {
        table.addRow({"  " + stage.name + " (ms)",
                      metrics::TablePrinter::num(1e3 * stage.seconds, 3)});
    }
    if (result.hit_rate >= 0.0) {
        table.addRow({"hit rate",
                      metrics::TablePrinter::num(100.0 * result.hit_rate,
                                                 2) +
                          "%"});
    }
    if (!result.bottleneck.empty())
        table.addRow({"bottleneck", result.bottleneck});
    if (result.serving.enabled) {
        const auto &serving = result.serving;
        table.addRow({"requests served",
                      std::to_string(serving.requests)});
        if (serving.dropped > 0)
            table.addRow({"requests dropped",
                          std::to_string(serving.dropped)});
        table.addRow({"offered rate (req/s)",
                      metrics::TablePrinter::num(serving.offered_rate,
                                                 0)});
        table.addRow({"achieved rate (req/s)",
                      metrics::TablePrinter::num(serving.achieved_rate,
                                                 0)});
        table.addRow({"latency p50 (ms)",
                      metrics::TablePrinter::num(1e3 * serving.p50, 3)});
        table.addRow({"latency p99 (ms)",
                      metrics::TablePrinter::num(1e3 * serving.p99, 3)});
        table.addRow({"latency p999 (ms)",
                      metrics::TablePrinter::num(1e3 * serving.p999,
                                                 3)});
        table.addRow({"latency mean (ms)",
                      metrics::TablePrinter::num(1e3 * serving.mean,
                                                 3)});
        table.addRow({"latency max (ms)",
                      metrics::TablePrinter::num(1e3 * serving.max, 3)});
        table.addRow({"queue depth mean",
                      metrics::TablePrinter::num(
                          serving.mean_queue_depth, 2)});
        table.addRow({"queue depth max",
                      metrics::TablePrinter::num(serving.max_queue_depth,
                                                 0)});
        table.addRow({"batch fill mean",
                      metrics::TablePrinter::num(serving.mean_batch_fill,
                                                 2)});
    }
    table.addRow({"GPU bytes (GB)",
                  metrics::TablePrinter::num(result.gpu_bytes / 1e9, 2)});

    const metrics::EnergyModel energy(hw);
    table.addRow({"energy (J/iter)",
                  metrics::TablePrinter::num(
                      energy.iterationEnergy(result.busy), 2)});
    const auto instance = spec_name == "multigpu"
                              ? metrics::AwsInstance::p3_16xlarge()
                              : metrics::AwsInstance::p3_2xlarge();
    table.addRow(
        {"$ / 1M iters (" + instance.name + ")",
         metrics::TablePrinter::num(
             metrics::trainingCost(instance, result.seconds_per_iteration,
                                   1'000'000),
             2)});

    if (csv)
        table.printCsv(std::cout);
    else
        table.print(std::cout);
}

void
printComparison(const std::vector<sys::SystemSpec> &specs,
                const std::vector<sys::RunResult> &results,
                const sim::HardwareConfig &hw, bool csv)
{
    const metrics::EnergyModel energy(hw);
    metrics::TablePrinter table({"system", "spec", "iter_ms", "hit_rate",
                                 "bottleneck", "gpu_GB", "J_per_iter",
                                 "usd_per_1M"});
    for (size_t i = 0; i < results.size(); ++i) {
        const auto &result = results[i];
        if (result.failed()) {
            // The error text itself goes to stderr; the table keeps
            // its column discipline.
            table.addRow({result.system_name, specs[i].summary(),
                          "failed", "-", "-", "-", "-", "-"});
            continue;
        }
        const auto instance = specs[i].name == "multigpu"
                                  ? metrics::AwsInstance::p3_16xlarge()
                                  : metrics::AwsInstance::p3_2xlarge();
        table.addRow(
            {result.system_name, specs[i].summary(),
             metrics::TablePrinter::num(
                 1e3 * result.seconds_per_iteration, 3),
             result.hit_rate >= 0.0
                 ? metrics::TablePrinter::num(100.0 * result.hit_rate, 2) +
                       "%"
                 : "-",
             result.bottleneck.empty() ? "-" : result.bottleneck,
             metrics::TablePrinter::num(result.gpu_bytes / 1e9, 2),
             metrics::TablePrinter::num(
                 energy.iterationEnergy(result.busy), 2),
             metrics::TablePrinter::num(
                 metrics::trainingCost(
                     instance, result.seconds_per_iteration, 1'000'000),
                 2)});
    }
    if (csv)
        table.printCsv(std::cout);
    else
        table.print(std::cout);
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args("spsim: simulate RecSys training systems on the "
                   "modeled Xeon+V100 testbed");
    args.addString("system", "scratchpipe",
                   "comma-separated system specs, e.g. "
                   "hybrid,static:cache=0.02,scratchpipe:policy=lfu");
    args.addString("locality", "medium", "random|low|medium|high");
    args.addDouble("cache", 0.10, "GPU cache fraction of each table");
    args.addInt("tables", 8, "number of embedding tables");
    args.addInt("rows", 10'000'000, "rows per table");
    args.addInt("dim", 128, "embedding dimension");
    args.addInt("lookups", 20, "gathers per table per sample");
    args.addInt("batch", 2048, "mini-batch size");
    args.addInt("iterations", 10, "measured iterations");
    args.addInt("warmup", 5, "warm-up iterations");
    args.addInt("seed", 42, "trace seed");
    args.addString("workload", "",
                   "workload shaping spec, e.g. 'drift_amp=0.4,"
                   "drift_period=8,burst_frac=0.3,burst_period=16,"
                   "burst_len=2,burst_ranks=512', or 'replay=FILE' to "
                   "run a recorded trace (see data/workload.h)");
    args.addString("format", "table", "table|csv|json");
    args.addBool("parallel", "simulate systems on the worker pool");
    args.addInt("jobs", 0,
                "worker threads for every parallel site (trace "
                "generation, per-table planning, --parallel sweeps); "
                "0 = all cores, 1 = fully serial");
    args.addBool("no-trace-cache",
                 "regenerate the trace instead of serving it from the "
                 "content-addressed cache (SP_TRACE_CACHE, default "
                 ".sp-trace-cache/)");
    args.addString("faults", "",
                   "arm the deterministic fault injector, e.g. "
                   "'trace_store.publish.rename:after=1;"
                   "trace_view.mmap:p=0.5,seed=7' (also via SP_FAULTS)");
    args.addBool("fail-fast",
                 "abort the sweep at the first failing spec (exit 2) "
                 "instead of completing the rest (exit 3)");
    args.addBool("list-systems", "print registered systems and exit");

    try {
        if (!args.parse(argc, argv)) {
            std::cout << args.usage();
            return 0;
        }
        if (args.getBool("list-systems")) {
            listSystems();
            return 0;
        }
        const std::string format = args.getString("format");
        fatalIf(format != "table" && format != "csv" && format != "json",
                "--format expects table|csv|json, got '", format, "'");

        std::vector<sys::SystemSpec> specs;
        for (const auto &text : splitSpecs(args.getString("system"))) {
            sys::SystemSpec spec = sys::SystemSpec::parse(text);
            // A --cache flag typed on the command line applies to every
            // spec that doesn't set its own; systems without a cache
            // reject it in validate() rather than silently ignoring it.
            if (args.wasSet("cache") && !spec.cache_fraction.has_value())
                spec.cache_fraction = args.getDouble("cache");
            spec.validate();
            specs.push_back(std::move(spec));
        }

        sys::ModelConfig model = sys::ModelConfig::paperDefault();
        model.trace.num_tables =
            static_cast<size_t>(args.getInt("tables"));
        model.trace.rows_per_table =
            static_cast<uint64_t>(args.getInt("rows"));
        model.trace.lookups_per_table =
            static_cast<size_t>(args.getInt("lookups"));
        model.trace.batch_size =
            static_cast<size_t>(args.getInt("batch"));
        model.trace.locality =
            data::localityFromName(args.getString("locality"));
        model.trace.seed = static_cast<uint64_t>(args.getInt("seed"));
        model.embedding_dim = static_cast<size_t>(args.getInt("dim"));
        // --workload: shaping keys reconfigure the generator; replay=
        // substitutes a recorded file for generation entirely (the
        // file's embedded config overrides the geometry flags above).
        const data::WorkloadSpec workload =
            data::WorkloadSpec::parse(args.getString("workload"));
        model.trace.workload = workload.config;

        const uint32_t jobs = parseJobsArg(args);
        // Size the process-wide pool before any parallel work runs.
        common::ThreadPool::setGlobalThreads(
            jobs > 0 ? static_cast<size_t>(jobs)
                     : common::ThreadPool::defaultThreads());
        // Identical trace whether generated or cache-served, so every
        // output stays byte-identical across cold and warm runs.
        data::TraceStore::setCacheEnabled(
            !args.getBool("no-trace-cache"));
        // --faults replaces any SP_FAULTS schedule; the active
        // schedule (with recorded seeds, for exact replay) goes to
        // stderr so JSON output on stdout stays machine-readable.
        if (args.wasSet("faults"))
            common::fault::configure(args.getString("faults"));
        if (common::fault::armed())
            std::cerr << common::fault::describe() << "\n";

        sys::ExperimentOptions options;
        options.iterations =
            static_cast<uint64_t>(args.getInt("iterations"));
        options.warmup = static_cast<uint64_t>(args.getInt("warmup"));
        // --jobs given: that width drives the sweep too (0 = all
        // cores). Otherwise the sweep stays sequential unless
        // --parallel asks for an all-cores fan-out.
        options.jobs = args.wasSet("jobs")
                           ? static_cast<uint32_t>(jobs)
                           : (args.getBool("parallel") ? 0 : 1);
        options.fail_fast = args.getBool("fail-fast");
        options.replay_path = workload.replay_path;

        const sim::HardwareConfig hw =
            sim::HardwareConfig::paperTestbed();
        if (format != "json") {
            std::cout << "generating trace ("
                      << (options.warmup + options.iterations + 2)
                      << " batches of " << model.trace.idsPerBatch()
                      << " IDs); probe kernel: "
                      << cache::selectProbeKernel(cache::ProbeMode::Auto)
                             .name
                      << " (SP_SIMD / probe= to change)\n";
        }
        const sys::ExperimentRunner runner(model, hw, options);
        std::vector<sys::RunResult> results;
        try {
            results = runner.runAll(specs);
        } catch (const std::exception &error) {
            // Total failure: --fail-fast aborted, or an error escaped
            // spec isolation (a panic, an injected thread_pool.task
            // fault). Distinct from exit 1, which stays reserved for
            // usage/configuration mistakes.
            std::cerr << "sweep aborted: " << error.what() << "\n";
            return 2;
        }

        for (const auto &result : results) {
            if (result.failed())
                std::cerr << "spec '" << result.system_name
                          << "' failed: " << result.error << "\n";
        }

        if (format == "json") {
            std::cout << sys::toJson(results) << "\n";
        } else if (results.size() == 1) {
            printDetailed(results[0], specs[0].name, hw,
                          format == "csv");
        } else {
            printComparison(specs, results, hw, format == "csv");
        }
        return sys::sweepExitCode(results);
    } catch (const FatalError &error) {
        std::cerr << error.what() << "\n";
        return 1;
    }
    return 0;
}
