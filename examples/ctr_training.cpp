/**
 * @file
 * Scenario: training a click-through-rate model for an e-commerce
 * recommender (the workload the paper's introduction motivates).
 *
 * A product-recommendation model sees a skewed item catalogue --
 * popular products dominate -- so we generate a Criteo-like High
 * locality trace, train the DLRM end to end with the pipelined
 * ScratchPipe runtime, and report learning curves, accuracy and
 * runtime statistics. A held-out slice of the trace estimates
 * generalisation.
 */

#include <cstdio>

#include "emb/embedding_ops.h"
#include "sys/functional.h"
#include "tensor/ops.h"

using namespace sp;

int
main()
{
    // E-commerce-flavoured model: 6 categorical features (user, item,
    // category, seller, brand, context), high-skew popularity.
    sys::ModelConfig model;
    model.trace.num_tables = 6;
    model.trace.rows_per_table = 2000; // catalogue shard
    model.trace.lookups_per_table = 3;
    model.trace.batch_size = 128;
    model.trace.dense_features = 8;
    model.trace.locality = data::Locality::High;
    model.trace.seed = 2024;
    model.embedding_dim = 16;
    model.bottom_hidden = {64, 32};
    model.top_hidden = {128, 64};
    model.learning_rate = 0.15f;

    constexpr uint64_t kTrainIters = 180;
    constexpr uint64_t kHeldOut = 20;
    data::TraceDataset dataset(model.trace, kTrainIters + kHeldOut);

    sys::FunctionalScratchPipeTrainer::Options options;
    options.cache_fraction = 0.30;
    sys::FunctionalScratchPipeTrainer trainer(model, options);

    std::printf("training CTR model: 6 tables x %llu rows, batch %zu, "
                "High locality\n",
                static_cast<unsigned long long>(model.trace.rows_per_table),
                model.trace.batch_size);
    const auto run = trainer.train(dataset, kTrainIters);

    for (uint64_t i = 0; i < kTrainIters; i += 30) {
        std::printf("  iter %3llu  loss %.4f  acc %.3f\n",
                    static_cast<unsigned long long>(i), run.losses[i],
                    run.accuracies[i]);
    }
    std::printf("final quarter: loss %.4f, accuracy %.3f\n",
                run.finalLoss(), run.finalAccuracy());

    // Held-out evaluation: forward the trained model over unseen
    // batches. train() flushed all scratchpad-resident rows back, so
    // trainer.tables() is the complete trained embedding state.
    nn::DlrmModel eval_model = trainer.model();
    double held_out_loss = 0.0, held_out_acc = 0.0;
    for (uint64_t i = kTrainIters; i < kTrainIters + kHeldOut; ++i) {
        const auto &batch = dataset.batch(i);
        std::vector<tensor::Matrix> reduced(model.trace.num_tables);
        for (size_t t = 0; t < model.trace.num_tables; ++t) {
            reduced[t].resize(batch.batch_size, model.embedding_dim);
            emb::gatherReduce(trainer.tables()[t], batch.ids(t),
                              batch.lookups_per_table, reduced[t]);
        }
        const auto fwd = eval_model.forward(
            dataset.denseFeatures(i), reduced, dataset.labels(i));
        held_out_loss += fwd.loss;
        held_out_acc += fwd.accuracy;
    }
    std::printf("held-out (%llu batches): loss %.4f, accuracy %.3f\n",
                static_cast<unsigned long long>(kHeldOut),
                held_out_loss / kHeldOut, held_out_acc / kHeldOut);

    const auto stats = trainer.aggregateStats();
    std::printf("\nruntime: %llu plans, hit rate %.1f%%, %llu fills, "
                "%llu write-backs, %llu hazard checks (all clean)\n",
                static_cast<unsigned long long>(stats.plans),
                100.0 * trainer.hitRate(),
                static_cast<unsigned long long>(stats.fills),
                static_cast<unsigned long long>(stats.evictions),
                static_cast<unsigned long long>(
                    trainer.auditor().checkedAccesses()));
    return 0;
}
