/**
 * @file
 * Quickstart: the ScratchPipe library in ~60 lines.
 *
 * 1. Describe a recommendation model + synthetic trace (ModelConfig).
 * 2. Train it functionally with the pipelined ScratchPipe runtime and
 *    verify against the sequential reference -- bit-identical.
 * 3. Ask the timing models how the same workload behaves at the
 *    paper's full 40 GB geometry on a Xeon + V100 server.
 */

#include <cstdio>

#include "sys/experiment.h"
#include "sys/functional.h"

using namespace sp;

int
main()
{
    // ---- 1. A small, fully materialised model --------------------
    sys::ModelConfig model = sys::ModelConfig::functionalScale();
    model.trace.locality = data::Locality::Medium;
    model.trace.seed = 7;

    constexpr uint64_t kIterations = 40;
    data::TraceDataset dataset(model.trace, kIterations);

    // ---- 2. Train with ScratchPipe; check against the reference ---
    sys::FunctionalScratchPipeTrainer scratchpipe(
        model, sys::FunctionalScratchPipeTrainer::Options{});
    const auto sp_run = scratchpipe.train(dataset, kIterations);

    sys::FunctionalHybridTrainer reference(model);
    const auto ref_run = reference.train(dataset, kIterations);

    bool identical = true;
    for (size_t t = 0; t < model.trace.num_tables; ++t) {
        identical &= emb::EmbeddingTable::identical(
            scratchpipe.tables()[t], reference.tables()[t]);
    }
    std::printf("trained %llu iterations | loss %.4f -> %.4f | "
                "scratchpad hit rate %.1f%%\n",
                static_cast<unsigned long long>(kIterations),
                sp_run.initialLoss(), sp_run.finalLoss(),
                100.0 * scratchpipe.hitRate());
    std::printf("bit-identical to sequential training: %s\n",
                identical ? "yes" : "NO (bug!)");

    // ---- 3. Paper-scale what-if on the modeled testbed ------------
    sys::ModelConfig paper = sys::ModelConfig::paperDefault();
    paper.trace.locality = data::Locality::Medium;
    sys::ExperimentOptions options;
    options.iterations = 10;
    options.warmup = 10;
    const sys::ExperimentRunner runner(
        paper, sim::HardwareConfig::paperTestbed(), options);

    std::printf("\npaper-scale iteration time (Medium locality, 10%% "
                "cache):\n");
    const auto results =
        runner.runAll({sys::SystemSpec::parse("hybrid"),
                       sys::SystemSpec::parse("static:cache=0.10"),
                       sys::SystemSpec::parse("scratchpipe:cache=0.10")});
    for (const auto &result : results) {
        std::printf("  %-16s %7.2f ms/iter\n", result.system_name.c_str(),
                    1e3 * result.seconds_per_iteration);
    }
    return 0;
}
