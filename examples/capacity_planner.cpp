/**
 * @file
 * Scenario: capacity planning for a RecSys training cluster.
 *
 * An ML-infrastructure team has a 40 GB DLRM to train and a choice:
 * one p3.2xlarge running ScratchPipe, one running the conventional
 * static-cache stack, or a p3.16xlarge 8-GPU box. Given the measured
 * locality of their dataset and their GPU memory budget, what
 * iteration time and per-epoch cost should they expect?
 *
 * The whole comparison is one ExperimentRunner::runAll over a list of
 * SystemSpecs -- adding a candidate configuration is one more line.
 */

#include <cstdio>
#include <vector>

#include "metrics/cost.h"
#include "sys/experiment.h"

using namespace sp;

int
main()
{
    sys::ModelConfig model = sys::ModelConfig::paperDefault();
    model.trace.locality = data::Locality::Low; // e.g. measured in prod
    model.trace.seed = 31337;

    std::printf("capacity planning for a %.1f GB model, %s locality\n\n",
                model.embeddingModelBytes() / 1e9,
                data::localityName(model.trace.locality));

    sys::ExperimentOptions options;
    options.iterations = 10;
    options.warmup = 20;
    const sys::ExperimentRunner runner(
        model, sim::HardwareConfig::paperTestbed(), options);

    struct Candidate
    {
        const char *label;
        const char *spec;
        metrics::AwsInstance instance;
    };
    const std::vector<Candidate> candidates = {
        {"ScratchPipe,    2% scratchpad", "scratchpipe:cache=0.02",
         metrics::AwsInstance::p3_2xlarge()},
        {"ScratchPipe,    5% scratchpad", "scratchpipe:cache=0.05",
         metrics::AwsInstance::p3_2xlarge()},
        {"ScratchPipe,   10% scratchpad", "scratchpipe:cache=0.10",
         metrics::AwsInstance::p3_2xlarge()},
        {"Static cache,   2% cache", "static:cache=0.02",
         metrics::AwsInstance::p3_2xlarge()},
        {"Static cache,  10% cache", "static:cache=0.10",
         metrics::AwsInstance::p3_2xlarge()},
        {"Hybrid CPU-GPU (no cache)", "hybrid",
         metrics::AwsInstance::p3_2xlarge()},
        {"8x V100 GPU-only (p3.16xlarge)", "multigpu",
         metrics::AwsInstance::p3_16xlarge()},
    };

    std::vector<sys::SystemSpec> specs;
    for (const auto &candidate : candidates)
        specs.push_back(sys::SystemSpec::parse(candidate.spec));
    const auto results = runner.runAll(specs);

    std::printf("%-34s %10s %12s %14s\n", "configuration", "iter (ms)",
                "GPU mem (GB)", "$ / 1M iters");
    for (size_t i = 0; i < candidates.size(); ++i) {
        const auto &result = results[i];
        std::printf("%-34s %10.2f %12.2f %14.2f\n", candidates[i].label,
                    1e3 * result.seconds_per_iteration,
                    result.gpu_bytes / 1e9,
                    metrics::trainingCost(candidates[i].instance,
                                          result.seconds_per_iteration,
                                          1'000'000));
    }

    std::printf("\nrecommendation: the cheapest configuration above that "
                "fits the GPU memory budget; ScratchPipe's advantage is "
                "largest exactly when locality is low.\n");
    return 0;
}
