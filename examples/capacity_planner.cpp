/**
 * @file
 * Scenario: capacity planning for a RecSys training cluster.
 *
 * An ML-infrastructure team has a 40 GB DLRM to train and a choice:
 * one p3.2xlarge running ScratchPipe, one running the conventional
 * static-cache stack, or a p3.16xlarge 8-GPU box. Given the measured
 * locality of their dataset and their GPU memory budget, what
 * iteration time and per-epoch cost should they expect?
 *
 * This drives the timing models exactly as the paper's evaluation
 * does, sweeping cache budgets and printing $/1M-iterations.
 */

#include <cstdio>

#include "metrics/cost.h"
#include "sys/factory.h"

using namespace sp;

int
main()
{
    const sim::HardwareConfig hw = sim::HardwareConfig::paperTestbed();
    sys::ModelConfig model = sys::ModelConfig::paperDefault();
    model.trace.locality = data::Locality::Low; // e.g. measured in prod
    model.trace.seed = 31337;

    std::printf("capacity planning for a %.1f GB model, %s locality\n\n",
                model.embeddingModelBytes() / 1e9,
                data::localityName(model.trace.locality));

    constexpr uint64_t kWarmup = 20, kMeasure = 10;
    data::TraceDataset dataset(model.trace, kWarmup + kMeasure + 2);
    sys::BatchStats stats(dataset, kWarmup + kMeasure);

    const auto p3_2x = metrics::AwsInstance::p3_2xlarge();
    const auto p3_16x = metrics::AwsInstance::p3_16xlarge();

    std::printf("%-34s %10s %12s %14s\n", "configuration", "iter (ms)",
                "GPU mem (GB)", "$ / 1M iters");

    for (double fraction : {0.02, 0.05, 0.10}) {
        const auto sp = sys::simulateSystem(
            sys::SystemKind::ScratchPipe, model, hw, fraction, dataset,
            stats, kMeasure, kWarmup);
        std::printf("ScratchPipe, %4.0f%% scratchpad     %10.2f %12.2f "
                    "%14.2f\n",
                    100.0 * fraction, 1e3 * sp.seconds_per_iteration,
                    sp.gpu_bytes / 1e9,
                    metrics::trainingCost(
                        p3_2x, sp.seconds_per_iteration, 1'000'000));
    }
    for (double fraction : {0.02, 0.10}) {
        const auto st = sys::simulateSystem(
            sys::SystemKind::StaticCache, model, hw, fraction, dataset,
            stats, kMeasure, kWarmup);
        std::printf("Static cache, %4.0f%% cache         %10.2f %12.2f "
                    "%14.2f\n",
                    100.0 * fraction, 1e3 * st.seconds_per_iteration,
                    st.gpu_bytes / 1e9,
                    metrics::trainingCost(
                        p3_2x, st.seconds_per_iteration, 1'000'000));
    }
    const auto hybrid = sys::simulateSystem(
        sys::SystemKind::Hybrid, model, hw, 0.0, dataset, stats,
        kMeasure, kWarmup);
    std::printf("Hybrid CPU-GPU (no cache)          %10.2f %12.2f "
                "%14.2f\n",
                1e3 * hybrid.seconds_per_iteration, 0.0,
                metrics::trainingCost(
                    p3_2x, hybrid.seconds_per_iteration, 1'000'000));
    const auto multi = sys::simulateSystem(
        sys::SystemKind::MultiGpu, model, hw, 0.0, dataset, stats,
        kMeasure, kWarmup);
    std::printf("8x V100 GPU-only (p3.16xlarge)     %10.2f %12.2f "
                "%14.2f\n",
                1e3 * multi.seconds_per_iteration, multi.gpu_bytes / 1e9,
                metrics::trainingCost(
                    p3_16x, multi.seconds_per_iteration, 1'000'000));

    std::printf("\nrecommendation: the cheapest configuration above that "
                "fits the GPU memory budget; ScratchPipe's advantage is "
                "largest exactly when locality is low.\n");
    return 0;
}
