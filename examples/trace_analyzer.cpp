/**
 * @file
 * Scenario: analysing a recorded training trace.
 *
 * The paper's Section III characterisation -- measure a dataset's
 * embedding-access locality, then predict cache behaviour -- as a
 * reusable tool. We record a trace to disk (the binary format any
 * production dataloader could emit), reload it, fit its top-2%
 * coverage to the nearest locality preset, and report the static
 * cache size needed for a target hit rate versus what ScratchPipe
 * would need.
 */

#include <cstdio>
#include <string>

#include "core/controller.h"
#include "data/access_stats.h"
#include "data/dataset.h"

using namespace sp;

int
main()
{
    // 1. Record: a dataloader writes its sparse-ID stream.
    data::TraceConfig config;
    config.num_tables = 4;
    config.rows_per_table = 500'000;
    config.lookups_per_table = 10;
    config.batch_size = 1024;
    config.locality = data::Locality::Low; // unknown to the analyser
    config.seed = 555;
    const std::string path = "/tmp/scratchpipe_example_trace.bin";
    {
        data::TraceDataset recorded(config, 30);
        recorded.save(path);
        std::printf("recorded 30 mini-batches to %s\n", path.c_str());
    }

    // 2. Reload and characterise.
    const data::TraceDataset trace = data::TraceDataset::load(path);
    data::AccessStats stats(trace.config().num_tables,
                            trace.config().rows_per_table);
    stats.addDataset(trace);

    std::printf("\nper-table characterisation:\n");
    for (size_t t = 0; t < trace.config().num_tables; ++t) {
        const double top2 = stats.coverage(t, 0.02);
        // Nearest preset by top-2% coverage distance.
        data::Locality best = data::Locality::Random;
        double best_gap = 1e9;
        for (auto preset : data::kAllLocalities) {
            const double gap =
                std::abs(top2 - data::expectedTop2PercentCoverage(preset));
            if (gap < best_gap) {
                best_gap = gap;
                best = preset;
            }
        }
        std::printf("  table %zu: %llu unique rows touched, top-2%% "
                    "coverage %.1f%% -> looks like '%s'\n",
                    t,
                    static_cast<unsigned long long>(stats.uniqueRows(t)),
                    100.0 * top2, data::localityName(best));
    }

    // 3. What would a static cache need for 90% hits?
    std::printf("\nstatic cache size required for a 90%% hit rate:\n");
    for (size_t t = 0; t < trace.config().num_tables; ++t) {
        double fraction = 1.0;
        for (double f = 0.01; f <= 1.0; f += 0.01) {
            if (stats.coverage(t, f) >= 0.90) {
                fraction = f;
                break;
            }
        }
        std::printf("  table %zu: %.0f%% of the table\n", t,
                    100.0 * fraction);
    }

    // 4. ScratchPipe needs only the in-flight window, regardless.
    const uint32_t slots = core::ScratchPipeController::worstCaseSlots(
        3, 2, trace.config().idsPerTable());
    std::printf("\nScratchPipe always-hit guarantee needs just %u "
                "slots/table (%.2f%% of the table) -- independent of "
                "locality.\n",
                slots,
                100.0 * slots /
                    static_cast<double>(trace.config().rows_per_table));

    std::remove(path.c_str());
    return 0;
}
