/**
 * @file
 * perf_simcore: simulation-engine microbenchmarks.
 *
 * Times the three layers the parallel engine accelerates --
 *
 *   trace-gen  TraceDataset construction (batches fan out over the
 *              worker pool);
 *   workload-gen  the same construction under the workload shaper's
 *              drift / churn / flash-crowd overlays (data/workload.h),
 *              pooled streams checksummed against serial;
 *   trace-cache  content-addressed TraceStore acquisition, cold
 *              (generate + atomic publish) vs warm (mmap + header
 *              validation) over a private temp cache dir; reported
 *              with cold in the serial column and warm in the
 *              parallel column, so `speedup` is the warm-start win;
 *   plan       per-table ScratchPipeController::plan fan-out, reported
 *              as planned IDs/s (the controller hot path: batched
 *              Hit-Map probes + allocation-free PlanResult), measured
 *              at four engine modes -- plain fan-out, two-deep
 *              pipeline (batch i+1 planning under batch i's
 *              accounting), sharded mark passes, and both combined;
 *   probe      the batched Hit-Map probe kernels over a hit-rate x
 *              load-factor grid, scalar reference vs the runtime-
 *              dispatched SIMD kernel (fingerprint cross-checked);
 *   runner     an end-to-end ExperimentRunner sweep over several
 *              system specs (--jobs routing);
 *
 * -- once serially (pool width 1) and once on a pool as wide as the
 * host, then emits BENCH_simcore.json so the perf trajectory is
 * tracked from PR 2 onward. Results are bit-identical across every
 * width and mode by construction (asserted here for the planning
 * passes).
 *
 *   perf_simcore                 paper-ish scale (8 x 10^6-row tables)
 *   perf_simcore --quick         CI scale, a few seconds
 *   perf_simcore --jobs 16       pin the parallel width
 *   perf_simcore --shards 4      pin the mark-pass shard width
 *   perf_simcore --out bench.json
 */

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <functional>
#include <iostream>
#include <span>
#include <sstream>
#include <vector>

#include "cache/hit_map.h"
#include "cache/probe_kernel.h"
#include "common/args.h"
#include "common/logging.h"
#include "common/thread_pool.h"
#include "common/workload.h"
#include "core/controller.h"
#include "data/dataset.h"
#include "data/trace_store.h"
#include "data/workload.h"
#include "metrics/table_printer.h"
#include "sys/experiment.h"
#include "sys/plan_fanout.h"
#include "sys/registry.h"

using namespace sp;
using Clock = std::chrono::steady_clock;

namespace
{

double
seconds(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

struct BenchResult
{
    std::string name;
    double serial_s = 0.0;
    double parallel_s = 0.0;
    double work_units = 0.0; // IDs planned, IDs generated, systems run
    const char *unit = "";

    double
    speedup() const
    {
        return parallel_s > 0.0 ? serial_s / parallel_s : 0.0;
    }
    double
    throughput() const
    {
        return parallel_s > 0.0 ? work_units / parallel_s : 0.0;
    }
};

/** Time `fn()` at pool width `jobs` (the global pool drives every
 *  parallel site), best of `reps`. */
double
timeAtWidth(size_t jobs, int reps, const std::function<void()> &fn)
{
    common::ThreadPool::setGlobalThreads(jobs);
    double best = 0.0;
    for (int r = 0; r < reps; ++r) {
        const auto start = Clock::now();
        fn();
        const double elapsed = seconds(start);
        if (r == 0 || elapsed < best)
            best = elapsed;
    }
    return best;
}

BenchResult
benchTraceGeneration(const sys::ModelConfig &model, uint64_t batches,
                     size_t jobs, int reps)
{
    BenchResult result;
    result.name = "trace_generation";
    result.unit = "IDs/s";
    result.work_units = static_cast<double>(batches) *
                        static_cast<double>(model.trace.idsPerBatch());
    result.serial_s = timeAtWidth(1, reps, [&model, batches] {
        data::TraceDataset dataset(model.trace, batches);
    });
    result.parallel_s = timeAtWidth(jobs, reps, [&model, batches] {
        data::TraceDataset dataset(model.trace, batches);
    });
    return result;
}

/**
 * The workload-shaping family: shaped trace generation -- drift,
 * churn and flash-crowd overlays (data/workload.h) on top of the
 * stationary samplers -- serial vs pooled. The pooled stream is
 * checksummed against the serial one: shaping is allowed to cost
 * time, never determinism.
 */
std::vector<BenchResult>
benchWorkloadGen(const sys::ModelConfig &model, uint64_t batches,
                 size_t jobs, int reps)
{
    const struct
    {
        const char *name;
        const char *spec;
    } scenarios[] = {
        {"workload_gen_drift", "drift_amp=0.4,drift_period=4,phase=1"},
        {"workload_gen_churn", "churn_k=1024,churn_period=4"},
        {"workload_gen_burst",
         "burst_frac=0.3,burst_period=8,burst_len=2,burst_ranks=512"},
    };

    const auto checksum = [](const data::TraceDataset &dataset) {
        uint64_t sum = 0;
        for (uint64_t b = 0; b < dataset.numBatches(); ++b) {
            const auto &batch = dataset.batch(b);
            for (size_t t = 0; t < batch.numTables(); ++t)
                for (const uint64_t id : batch.ids(t))
                    sum += id;
        }
        return sum;
    };

    std::vector<BenchResult> results;
    for (const auto &scenario : scenarios) {
        sys::ModelConfig shaped = model;
        shaped.trace.workload =
            data::WorkloadSpec::parse(scenario.spec).config;

        BenchResult result;
        result.name = scenario.name;
        result.unit = "IDs/s";
        result.work_units =
            static_cast<double>(batches) *
            static_cast<double>(shaped.trace.idsPerBatch());
        uint64_t serial_sum = 0, pooled_sum = 0;
        result.serial_s = timeAtWidth(1, reps, [&] {
            serial_sum =
                checksum(data::TraceDataset(shaped.trace, batches));
        });
        result.parallel_s = timeAtWidth(jobs, reps, [&] {
            pooled_sum =
                checksum(data::TraceDataset(shaped.trace, batches));
        });
        fatalIf(pooled_sum != serial_sum, scenario.name,
                ": pooled shaped generation diverged from serial: ",
                pooled_sum, " vs ", serial_sum);
        results.push_back(std::move(result));
    }
    return results;
}

/** One full pass of per-table planning over `dataset` at the given
 *  engine mode (two-deep pipeline on/off, mark-pass shard width);
 *  returns the total hit count as a determinism fingerprint. */
uint64_t
planPass(const sys::ModelConfig &model, const data::TraceDataset &dataset,
         bool overlap, uint32_t shards)
{
    const auto &trace = model.trace;
    core::ControllerConfig cc;
    cc.num_slots = std::max<uint32_t>(
        core::ScratchPipeController::worstCaseSlots(3, 2,
                                                    trace.idsPerTable()),
        static_cast<uint32_t>(0.05 * trace.rows_per_table));
    cc.dim = model.embedding_dim;
    cc.backing = cache::SlotArray::Backing::Phantom;
    cc.warm_start = true;
    cc.plan_shards = shards;
    std::vector<core::ScratchPipeController> controllers;
    controllers.reserve(trace.num_tables);
    for (size_t t = 0; t < trace.num_tables; ++t) {
        cc.policy_seed = 0x5eed + t;
        controllers.emplace_back(cc);
    }

    // The same fan-out the timing systems use, so the bench measures
    // the production planning path. The "accounting" here is the hit
    // reduction, which the pipelined mode overlaps with the next
    // batch's plans exactly as the systems do.
    sys::PlanFanout fanout(trace.num_tables, cc.future_window);
    uint64_t total = 0;
    fanout.forEachBatch(
        controllers, dataset, dataset.numBatches(), overlap,
        [&total](uint64_t,
                 const std::vector<sys::TablePlanOutcome> &outcomes) {
            for (const auto &outcome : outcomes)
                total += outcome.hits;
        });
    return total;
}

/** The plan-throughput family: the same pass at every engine mode,
 *  all against one serial (width-1, unsharded, unpipelined) baseline,
 *  with the fingerprints cross-checked. */
std::vector<BenchResult>
benchPlanning(const sys::ModelConfig &model, uint64_t batches, size_t jobs,
              uint32_t shards, int reps)
{
    // Generate once (outside the timed region) at full width.
    common::ThreadPool::setGlobalThreads(jobs);
    const data::TraceDataset dataset(model.trace, batches);
    const double ids = static_cast<double>(batches) *
                       static_cast<double>(model.trace.idsPerBatch());

    uint64_t serial_hits = 0;
    const double serial_s = timeAtWidth(1, reps, [&] {
        serial_hits = planPass(model, dataset, false, 1);
    });

    const struct
    {
        const char *name;
        bool overlap;
        uint32_t shards;
    } modes[] = {
        {"plan_fanout", false, 1},
        {"plan_pipelined", true, 1},
        {"plan_sharded", false, shards},
        {"plan_pipelined_sharded", true, shards},
    };

    std::vector<BenchResult> results;
    for (const auto &mode : modes) {
        BenchResult result;
        result.name = mode.name;
        result.unit = "IDs/s";
        result.work_units = ids;
        result.serial_s = serial_s;
        uint64_t hits = 0;
        result.parallel_s = timeAtWidth(jobs, reps, [&] {
            hits = planPass(model, dataset, mode.overlap, mode.shards);
        });
        fatalIf(hits != serial_hits, mode.name,
                " diverged from serial planning: ", hits, " hits vs ",
                serial_hits);
        results.push_back(result);
    }
    return results;
}

/**
 * Cold vs warm trace acquisition through the content-addressed
 * TraceStore, over a private temp cache directory. Cold pays
 * generation plus atomic publication; warm is an mmap plus header
 * validation. The cold time lands in the serial column and the warm
 * time in the parallel column, so speedup() reports the warm-start
 * win the cache buys every repeat sweep.
 */
BenchResult
benchTraceCache(const sys::ModelConfig &model, uint64_t batches,
                size_t jobs, int reps)
{
    namespace fs = std::filesystem;
    // Keyed per process, not just per config: two perf_simcore runs
    // on one host must not share (and mutually remove_all) a dir.
    static const uint64_t run_token = static_cast<uint64_t>(
        Clock::now().time_since_epoch().count());
    const fs::path dir =
        fs::temp_directory_path() /
        ("sp-perf-trace-cache-" + model.trace.fingerprint() + "-" +
         std::to_string(run_token));
    data::TraceStore::Options options;
    options.directory = dir.string();
    const data::TraceStore store(options);

    common::ThreadPool::setGlobalThreads(jobs);
    BenchResult result;
    result.name = "trace_cache_acquire";
    result.unit = "IDs/s";
    result.work_units = static_cast<double>(batches) *
                        static_cast<double>(model.trace.idsPerBatch());

    data::TraceStore::AcquireInfo info;
    uint64_t cold_checksum = 0, warm_checksum = 0;
    const auto checksum = [](const data::TraceDataset &dataset) {
        uint64_t sum = 0;
        for (uint64_t b = 0; b < dataset.numBatches(); ++b) {
            const auto &batch = dataset.batch(b);
            for (size_t t = 0; t < batch.numTables(); ++t)
                for (const uint64_t id : batch.ids(t))
                    sum += id;
        }
        return sum;
    };

    for (int r = 0; r < reps; ++r) {
        fs::remove_all(dir);
        const auto start = Clock::now();
        const auto dataset = store.acquire(model.trace, batches, &info);
        const double elapsed = seconds(start);
        fatalIf(info.cache_hit || !info.published,
                "cold acquire unexpectedly hit the cache");
        cold_checksum = checksum(dataset);
        if (r == 0 || elapsed < result.serial_s)
            result.serial_s = elapsed;
    }
    for (int r = 0; r < reps; ++r) {
        const auto start = Clock::now();
        const auto dataset = store.acquire(model.trace, batches, &info);
        const double elapsed = seconds(start);
        fatalIf(!info.cache_hit, "warm acquire missed the cache");
        warm_checksum = checksum(dataset);
        if (r == 0 || elapsed < result.parallel_s)
            result.parallel_s = elapsed;
    }
    fatalIf(warm_checksum != cold_checksum,
            "cache-served trace diverged from the generated one: ",
            warm_checksum, " vs ", cold_checksum);
    fs::remove_all(dir);
    return result;
}

/**
 * The batched Hit-Map probe family over a hit-rate x load-factor
 * grid: the scalar reference kernel lands in the serial column and
 * the runtime-dispatched kernel (AVX2/NEON when compiled and the CPU
 * supports it) in the parallel column, so `speedup` reports the SIMD
 * win -- or ~1.0 scalar parity on hosts where dispatch falls back.
 * Output fingerprints are cross-checked: a kernel that diverges from
 * scalar by one bit fails the bench, not just the test suite.
 */
std::vector<BenchResult>
benchHitMapProbe(bool quick, int reps)
{
    const size_t buckets = quick ? (1u << 18) : (1u << 21);
    const size_t batch_keys = 1u << 16;
    const int sweeps = quick ? 8 : 24;
    const struct
    {
        int hit_pct;
        int load_pct;
    } grid[] = {{50, 40}, {50, 65}, {95, 40}, {95, 65}};

    std::vector<BenchResult> results;
    for (const auto &point : grid) {
        bench::ProbeWorkload workload = bench::makeProbeWorkload(
            buckets, point.hit_pct, point.load_pct, batch_keys,
            0x9e3779b9u + static_cast<uint64_t>(point.hit_pct * 100 +
                                                point.load_pct));
        std::vector<uint32_t> out(batch_keys);

        const auto pass = [&](cache::ProbeMode mode) {
            workload.map.setProbeMode(mode);
            uint64_t fingerprint = 0;
            for (int s = 0; s < sweeps; ++s) {
                workload.map.findMany(workload.keys, out);
                for (const uint32_t slot : out)
                    fingerprint += slot;
            }
            return fingerprint;
        };

        BenchResult result;
        result.name = "hitmap_probe_h" + std::to_string(point.hit_pct) +
                      "_l" + std::to_string(point.load_pct);
        result.unit = "IDs/s";
        result.work_units = static_cast<double>(batch_keys) *
                            static_cast<double>(sweeps);
        uint64_t scalar_fp = 0, simd_fp = 0;
        result.serial_s = timeAtWidth(1, reps, [&] {
            scalar_fp = pass(cache::ProbeMode::Scalar);
        });
        result.parallel_s = timeAtWidth(1, reps, [&] {
            simd_fp = pass(cache::ProbeMode::Native);
        });
        fatalIf(simd_fp != scalar_fp, result.name, ": kernel '",
                cache::selectProbeKernel(cache::ProbeMode::Native).name,
                "' diverged from scalar: fingerprint ", simd_fp,
                " vs ", scalar_fp);
        results.push_back(std::move(result));
    }
    return results;
}

BenchResult
benchRunnerSweep(const sys::ModelConfig &model, uint64_t iterations,
                 size_t jobs, int reps)
{
    const std::vector<sys::SystemSpec> specs = {
        sys::SystemSpec::parse("hybrid"),
        sys::SystemSpec::parse("static:cache=0.05"),
        sys::SystemSpec::parse("strawman"),
        sys::SystemSpec::parse("scratchpipe"),
        sys::SystemSpec::parse("scratchpipe:policy=lfu"),
        sys::SystemSpec::parse("multigpu")};
    const sim::HardwareConfig hw = sim::HardwareConfig::paperTestbed();

    BenchResult result;
    result.name = "runner_sweep";
    result.unit = "systems/s";
    result.work_units = static_cast<double>(specs.size());

    const auto sweep = [&](uint32_t sweep_jobs) {
        sys::ExperimentOptions options;
        options.iterations = iterations;
        options.warmup = 2;
        options.jobs = sweep_jobs;
        const sys::ExperimentRunner runner(model, hw, options);
        runner.runAll(specs);
    };
    result.serial_s = timeAtWidth(1, reps, [&] { sweep(1); });
    result.parallel_s = timeAtWidth(jobs, reps, [&] {
        sweep(static_cast<uint32_t>(jobs));
    });
    return result;
}

void
writeJson(const std::string &path, const std::vector<BenchResult> &results,
          const sys::ModelConfig &model, size_t jobs, uint32_t shards,
          bool quick)
{
    std::ostringstream os;
    os << "{\"bench\":\"perf_simcore\",\"quick\":"
       << (quick ? "true" : "false") << ",\"jobs\":" << jobs
       << ",\"shards\":" << shards
       << ",\"tables\":" << model.trace.num_tables
       << ",\"rows_per_table\":" << model.trace.rows_per_table
       << ",\"batch_size\":" << model.trace.batch_size
       << ",\"results\":[";
    for (size_t i = 0; i < results.size(); ++i) {
        const auto &r = results[i];
        os << (i == 0 ? "" : ",") << "{\"name\":\"" << r.name
           << "\",\"serial_seconds\":" << r.serial_s
           << ",\"parallel_seconds\":" << r.parallel_s
           << ",\"speedup\":" << r.speedup()
           << ",\"throughput\":" << r.throughput() << ",\"unit\":\""
           << r.unit << "\"}";
    }
    os << "]}";

    std::ofstream file(path);
    fatalIf(!file, "cannot open '", path, "' for writing");
    file << os.str() << "\n";
    fatalIf(!file, "I/O error while writing '", path, "'");
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args("perf_simcore: simulation-engine microbenchmarks "
                   "(trace generation, planning throughput, runner "
                   "sweeps), serial vs pooled");
    args.addBool("quick", "CI scale: small tables, one rep");
    args.addInt("jobs", 0, "parallel pool width (0 = all cores)");
    args.addInt("shards", 0,
                "mark-pass shards per table for the sharded planning "
                "modes (0 = pool width)");
    args.addInt("tables", 8, "embedding tables");
    args.addInt("rows", 1'000'000, "rows per table");
    args.addInt("batch", 2048, "mini-batch size");
    args.addInt("batches", 12, "mini-batches generated/planned");
    args.addString("out", "BENCH_simcore.json", "JSON output path");

    try {
        if (!args.parse(argc, argv)) {
            std::cout << args.usage();
            return 0;
        }
        const bool quick = args.getBool("quick");
        const uint32_t jobs_flag = parseJobsArg(args);
        const size_t jobs = jobs_flag > 0
                                ? jobs_flag
                                : common::ThreadPool::defaultThreads();
        const uint32_t shards_flag = parseJobsArg(args, "shards");
        const uint32_t shards = shards_flag > 0
                                    ? shards_flag
                                    : static_cast<uint32_t>(jobs);
        const int reps = quick ? 1 : 3;

        sys::ModelConfig model = sys::ModelConfig::paperDefault();
        model.trace.num_tables =
            static_cast<size_t>(args.getInt("tables"));
        model.trace.rows_per_table =
            static_cast<uint64_t>(args.getInt("rows"));
        model.trace.batch_size =
            static_cast<size_t>(args.getInt("batch"));
        uint64_t batches = static_cast<uint64_t>(args.getInt("batches"));
        if (quick) {
            model.trace.rows_per_table =
                std::min<uint64_t>(model.trace.rows_per_table, 100'000);
            model.trace.batch_size =
                std::min<size_t>(model.trace.batch_size, 512);
            batches = std::min<uint64_t>(batches, 8);
        }

        std::cout << "perf_simcore: " << model.trace.num_tables
                  << " tables x " << model.trace.rows_per_table
                  << " rows, batch " << model.trace.batch_size << ", "
                  << batches << " batches, pool width " << jobs
                  << ", shard width " << shards << "\n\n";

        std::vector<BenchResult> results;
        results.push_back(
            benchTraceGeneration(model, batches, jobs, reps));
        for (auto &result :
             benchWorkloadGen(model, batches, jobs, reps))
            results.push_back(std::move(result));
        results.push_back(benchTraceCache(model, batches, jobs, reps));
        for (auto &result :
             benchPlanning(model, batches, jobs, shards, reps))
            results.push_back(std::move(result));
        for (auto &result : benchHitMapProbe(quick, reps))
            results.push_back(std::move(result));
        results.push_back(
            benchRunnerSweep(model, quick ? 3 : 5, jobs, reps));

        metrics::TablePrinter table({"bench", "serial_s", "parallel_s",
                                     "speedup", "throughput", "unit"});
        for (const auto &r : results) {
            table.addRow({r.name,
                          metrics::TablePrinter::num(r.serial_s, 3),
                          metrics::TablePrinter::num(r.parallel_s, 3),
                          metrics::TablePrinter::num(r.speedup(), 2) + "x",
                          metrics::TablePrinter::num(r.throughput(), 0),
                          r.unit});
        }
        table.print(std::cout);

        writeJson(args.getString("out"), results, model, jobs, shards,
                  quick);
        std::cout << "\nwrote " << args.getString("out") << "\n";
    } catch (const FatalError &error) {
        std::cerr << error.what() << "\n";
        return 1;
    }
    return 0;
}
