/**
 * @file
 * Section VI-E ablation: MLP-intensive (less embedding-bound) models.
 *
 * As the DNN backend grows, the GPU [Train] stage dominates every
 * system and ScratchPipe's advantage compresses -- the paper's
 * robustness check that the win comes from the embedding path.
 */

#include <iostream>
#include <vector>

#include "common/workload.h"
#include "metrics/table_printer.h"

using namespace sp;

int
main(int argc, char **argv)
{
    if (!bench::parseStandardArgs(
            argc, argv, "ablation_mlp: paper reproduction bench"))
        return 0;

    bench::printBanner("Ablation (Section VI-E): MLP-intensive models",
                       "paper: effectiveness under more MLP-heavy (less "
                       "embedding-intensive) RecSys configurations");


    struct Arch
    {
        const char *name;
        std::vector<size_t> bottom;
        std::vector<size_t> top;
    };
    const Arch archs[] = {
        {"small-MLP", {256, 128}, {512, 256}},
        {"paper-MLP", {512, 256}, {1024, 1024, 512, 256}},
        {"huge-MLP", {1024, 1024}, {4096, 4096, 2048, 1024}},
    };

    metrics::TablePrinter table({"locality", "arch", "static_ms",
                                 "scratchpipe_ms", "speedup",
                                 "sp_bottleneck"});

    for (auto locality : {data::Locality::Low, data::Locality::High}) {
        for (const auto &arch : archs) {
            sys::ModelConfig model = sys::ModelConfig::paperDefault();
            model.bottom_hidden = arch.bottom;
            model.top_hidden = arch.top;
            const bench::Workload workload =
                bench::makeWorkload(locality, &model);

            const double t_static =
                workload.run("static:cache=0.10")
                    .seconds_per_iteration;
            const auto sp =
                workload.run("scratchpipe:cache=0.10");
            table.addRow(
                {data::localityName(locality), arch.name,
                 bench::ms(t_static), bench::ms(sp.seconds_per_iteration),
                 metrics::TablePrinter::num(
                     t_static / sp.seconds_per_iteration, 2) + "x",
                 sp.bottleneck});
        }
    }

    table.print(std::cout);
    std::cout << "\npaper shape check: the heavier the MLPs, the more "
                 "[Train] binds and the smaller (but still >1x) the "
                 "speedup.\n";
    return 0;
}
