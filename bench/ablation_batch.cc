/**
 * @file
 * Section VI-E ablation: mini-batch size (512 / 2048 / 8192).
 *
 * Larger batches move more embedding bytes per iteration, stressing
 * the CPU paths of the baselines harder; ScratchPipe's advantage
 * should persist across the sweep.
 */

#include <iostream>

#include "common/workload.h"
#include "metrics/table_printer.h"

using namespace sp;

int
main(int argc, char **argv)
{
    if (!bench::parseStandardArgs(
            argc, argv, "ablation_batch: paper reproduction bench"))
        return 0;

    bench::printBanner("Ablation (Section VI-E): batch size",
                       "paper: robustness under larger/smaller batches; "
                       "speedups normalized to static cache (10%)");

    metrics::TablePrinter table({"locality", "batch", "static_ms",
                                 "scratchpipe_ms", "speedup"});

    for (auto locality :
         {data::Locality::Random, data::Locality::Medium,
          data::Locality::High}) {
        for (size_t batch : {512u, 2048u, 8192u}) {
            sys::ModelConfig model = sys::ModelConfig::paperDefault();
            model.trace.batch_size = batch;
            const bench::Workload workload =
                bench::makeWorkload(locality, &model);

            const double t_static =
                workload.run("static:cache=0.10")
                    .seconds_per_iteration;
            const double t_sp =
                workload.run("scratchpipe:cache=0.10")
                    .seconds_per_iteration;
            table.addRow(
                {data::localityName(locality), std::to_string(batch),
                 bench::ms(t_static), bench::ms(t_sp),
                 metrics::TablePrinter::num(t_static / t_sp, 2) + "x"});
        }
    }

    table.print(std::cout);
    std::cout << "\npaper shape check: ScratchPipe wins at every batch "
                 "size; bigger batches amortize fixed overheads and "
                 "widen the gap at low locality.\n";
    return 0;
}
