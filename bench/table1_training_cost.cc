/**
 * @file
 * Table I: training cost of single-GPU ScratchPipe (AWS p3.2xlarge)
 * vs the 8-GPU model-parallel GPU-only system (p3.16xlarge) over one
 * million training iterations. ScratchPipe does not change the
 * algorithm, so iterations-to-accuracy are identical and cost is
 * price/hour x time.
 */

#include <algorithm>
#include <iostream>

#include "common/workload.h"
#include "metrics/cost.h"
#include "metrics/table_printer.h"

using namespace sp;

int
main(int argc, char **argv)
{
    if (!bench::parseStandardArgs(
            argc, argv, "table1_training_cost: paper reproduction bench"))
        return 0;

    bench::printBanner(
        "Table I: training cost, ScratchPipe vs 8-GPU",
        "paper: Table I -- $ for 1M iterations at AWS on-demand prices");

    const auto p3_2x = metrics::AwsInstance::p3_2xlarge();
    const auto p3_16x = metrics::AwsInstance::p3_16xlarge();
    constexpr uint64_t kIters = 1'000'000;

    metrics::TablePrinter table({"dataset", "system", "instance",
                                 "price_hr", "iter_ms", "1M_iter_cost"});

    double sum_saving = 0.0, max_saving = 0.0;
    int points = 0;
    for (auto locality : data::kAllLocalities) {
        const bench::Workload workload = bench::makeWorkload(locality);
        const auto sp =
            workload.run("scratchpipe:cache=0.10");
        const auto multi =
            workload.run("multigpu");

        const double cost_sp =
            metrics::trainingCost(p3_2x, sp.seconds_per_iteration, kIters);
        const double cost_multi = metrics::trainingCost(
            p3_16x, multi.seconds_per_iteration, kIters);

        table.addRow({data::localityName(locality), "ScratchPipe",
                      p3_2x.name,
                      "$" + metrics::TablePrinter::num(p3_2x.price_per_hour, 2),
                      bench::ms(sp.seconds_per_iteration),
                      "$" + metrics::TablePrinter::num(cost_sp, 2)});
        table.addRow({data::localityName(locality), "8 GPU",
                      p3_16x.name,
                      "$" + metrics::TablePrinter::num(p3_16x.price_per_hour, 2),
                      bench::ms(multi.seconds_per_iteration),
                      "$" + metrics::TablePrinter::num(cost_multi, 2)});

        sum_saving += cost_multi / cost_sp;
        max_saving = std::max(max_saving, cost_multi / cost_sp);
        ++points;
    }

    table.print(std::cout);
    std::cout << "\ncost saving of ScratchPipe: avg "
              << metrics::TablePrinter::num(sum_saving / points, 2)
              << "x, max "
              << metrics::TablePrinter::num(max_saving, 2)
              << "x   (paper: avg 4.0x, max 5.7x)\n"
              << "paper reference rows: ScratchPipe 47.82/44.70/29.68/"
                 "26.34 ms; 8-GPU 16.22/16.12/17.82/18.61 ms "
                 "(Random/Low/Medium/High)\n";
    return 0;
}
