/**
 * @file
 * Section VI-G extension: ScratchPipe over multi-GPU training.
 *
 * The paper discusses -- without building -- extending ScratchPipe to
 * table-wise model-parallel multi-GPU systems, and predicts it is
 * "likely not going to be cost-effective in terms of TCO reduction"
 * because the DNNs were never the bottleneck. This bench implements
 * the extension's timing model and quantifies the claim: iteration
 * time, $/1M iterations and the cost-efficiency ratio of 1-GPU
 * ScratchPipe, 8-GPU ScratchPipe, and the plain 8-GPU GPU-only
 * system.
 */

#include <iostream>

#include "common/workload.h"
#include "metrics/cost.h"
#include "metrics/table_printer.h"
#include "sys/multigpu.h"
#include "sys/scratchpipe_multigpu.h"
#include "sys/scratchpipe_sys.h"

using namespace sp;

int
main(int argc, char **argv)
{
    if (!bench::parseStandardArgs(
            argc, argv, "extension_multigpu_scratchpipe: paper reproduction bench"))
        return 0;

    bench::printBanner(
        "Extension (Section VI-G): multi-GPU ScratchPipe",
        "paper: discussed qualitatively; predicted viable but not "
        "cost-effective vs single-GPU ScratchPipe");

    const sim::HardwareConfig hw = sim::HardwareConfig::paperTestbed();
    const auto p3_2x = metrics::AwsInstance::p3_2xlarge();
    const auto p3_16x = metrics::AwsInstance::p3_16xlarge();
    constexpr uint64_t kIters = 1'000'000;

    metrics::TablePrinter table({"locality", "system", "iter_ms",
                                 "speedup_vs_1gpu", "1M_iter_cost",
                                 "cost_ratio", "bottleneck"});

    for (auto locality : data::kAllLocalities) {
        const bench::Workload w = bench::makeWorkload(locality);

        sys::ScratchPipeOptions options;
        options.cache_fraction = 0.10;
        sys::ScratchPipeSystem single(w.model, hw, options);
        sys::ScratchPipeMultiGpuSystem multi_sp(w.model, hw, options);
        sys::MultiGpuSystem plain_multi(w.model, hw);

        const auto r1 = single.simulate(w.dataset(), w.stats(), w.measure,
                                        w.warmup);
        const auto r8 = multi_sp.simulate(w.dataset(), w.stats(),
                                          w.measure, w.warmup);
        const auto rp = plain_multi.simulate(w.dataset(), w.stats(),
                                             w.measure, w.warmup);

        const double c1 = metrics::trainingCost(
            p3_2x, r1.seconds_per_iteration, kIters);
        const double c8 = metrics::trainingCost(
            p3_16x, r8.seconds_per_iteration, kIters);
        const double cp = metrics::trainingCost(
            p3_16x, rp.seconds_per_iteration, kIters);

        auto add = [&](const char *name, const sys::RunResult &r,
                       double cost, const std::string &bottleneck) {
            table.addRow(
                {data::localityName(locality), name,
                 bench::ms(r.seconds_per_iteration),
                 metrics::TablePrinter::num(
                     r1.seconds_per_iteration / r.seconds_per_iteration,
                     2) + "x",
                 "$" + metrics::TablePrinter::num(cost, 2),
                 metrics::TablePrinter::num(cost / c1, 2) + "x",
                 bottleneck});
        };
        add("ScratchPipe 1-GPU", r1, c1, r1.bottleneck);
        add("ScratchPipe 8-GPU", r8, c8, r8.bottleneck);
        add("GPU-only 8-GPU", rp, cp, "-");
    }

    table.print(std::cout);
    std::cout << "\npaper claim check: 8-GPU ScratchPipe is faster than "
                 "1-GPU ScratchPipe but costs several times more per "
                 "iteration trained -- the shared CPU DRAM (Collect/"
                 "Insert) and framework overheads, not the DNNs, bind "
                 "it, confirming Section VI-G's prediction.\n";
    return 0;
}
