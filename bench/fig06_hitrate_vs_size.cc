/**
 * @file
 * Figure 6: static GPU embedding cache hit rate as a function of cache
 * size (fraction of the table cached), for the four locality classes.
 *
 * A top-N cache's steady-state hit rate equals the access-probability
 * mass of the N hottest rows, which we evaluate exactly from the
 * generating distribution (generalized harmonic sums); a finite trace
 * sample of a 10M-row table cannot resolve the deep end of the curve.
 * The small-cache points are additionally spot-checked against an
 * empirical trace so the analytic curve is anchored to measurement.
 *
 * The paper's key negative result: low-locality datasets need >65% of
 * the table cached to pass 90% hit rate -- impossible within tens of
 * GBs of GPU memory against TB-scale models.
 */

#include <iostream>
#include <vector>

#include "common/workload.h"
#include "data/zipf.h"
#include "metrics/table_printer.h"
#include "sys/experiment.h"

using namespace sp;

int
main(int argc, char **argv)
{
    if (!bench::parseStandardArgs(
            argc, argv,
            "fig06: static-cache hit rate vs cache size"))
        return 0;
    bench::printBanner("Figure 6: static-cache hit rate vs cache size",
                       "paper: Fig. 6 -- hit rate of a top-N cache as N "
                       "grows to 100% of the table");

    constexpr uint64_t rows = 10'000'000;
    const std::vector<double> fractions = {0.01, 0.02, 0.05, 0.10, 0.20,
                                           0.40, 0.65, 0.80, 1.00};

    std::vector<std::string> headers = {"dataset"};
    for (double f : fractions)
        headers.push_back(metrics::TablePrinter::num(100.0 * f, 0) + "%");
    metrics::TablePrinter table(headers);

    double low_at_65 = 0.0;
    for (auto locality : data::kAllLocalities) {
        const double s = data::zipfExponent(locality);
        std::vector<std::string> row = {data::localityName(locality)};
        for (double f : fractions) {
            const double hit = data::zipfTopCoverage(rows, s, f);
            row.push_back(metrics::TablePrinter::num(100.0 * hit, 1));
            if (locality == data::Locality::Low && f == 0.65)
                low_at_65 = hit;
        }
        table.addRow(std::move(row));
    }
    table.print(std::cout);

    // Empirical anchor: measure the 2% point from a real trace (where
    // 1.5M samples resolve the head of the distribution well). The
    // static-cache system model itself reports the measured hit rate,
    // so the anchor runs it through the shared ExperimentRunner.
    std::cout << "\nempirical 2% anchor (40-batch trace vs analytic):\n";
    for (auto locality : data::kAllLocalities) {
        sys::ModelConfig model = sys::ModelConfig::paperDefault();
        model.trace.num_tables = 1;
        model.trace.rows_per_table = rows;
        model.trace.lookups_per_table = 20;
        model.trace.batch_size = 2048;
        model.trace.locality = locality;
        model.trace.seed = 1007;
        sys::ExperimentOptions options;
        options.iterations = 38;
        options.warmup = 0;
        const sys::ExperimentRunner runner(
            model, sim::HardwareConfig::paperTestbed(), options);
        const auto measured = runner.run("static:cache=0.02");
        std::cout << "  " << data::localityName(locality) << ": measured "
                  << metrics::TablePrinter::num(100.0 * measured.hit_rate,
                                                1)
                  << "% vs analytic "
                  << metrics::TablePrinter::num(
                         100.0 * data::zipfTopCoverage(
                                     rows, data::zipfExponent(locality),
                                     0.02),
                         1)
                  << "%\n";
    }

    std::cout << "\npaper shape check: High (Criteo-like) saturates with "
                 "small caches while Low reaches only "
              << metrics::TablePrinter::num(100.0 * low_at_65, 1)
              << "% at a 65% cache -- >90% needs most of the table, "
                 "which tens-of-GB GPUs cannot hold.\n";
    return 0;
}
