/**
 * @file
 * Shared setup for the figure/table reproduction binaries.
 *
 * Every bench binary regenerates one of the paper's evaluation
 * artifacts at the Section V geometry (8 tables x 10M rows x 128-dim,
 * batch 2048, 20 lookups/table). A Workload wraps a
 * sys::ExperimentRunner on the paper testbed: the trace and the shared
 * per-batch statistics are built once, and any system -- named by a
 * SystemSpec string like "static:cache=0.02" -- can be simulated over
 * them. The dynamic cache systems run `warmup` batches to reach steady
 * state (mirroring the paper's steady-state measurements) and are
 * measured over the following `measure` batches.
 *
 * Iteration counts honour SP_BENCH_WARMUP / SP_BENCH_MEASURE so the
 * whole suite can be sped up or made more precise from the shell.
 */

#ifndef SP_BENCH_COMMON_WORKLOAD_H
#define SP_BENCH_COMMON_WORKLOAD_H

#include <memory>
#include <string>

#include "data/dataset.h"
#include "sim/hardware_config.h"
#include "sys/experiment.h"
#include "sys/system_config.h"

namespace sp::bench
{

/** Warm-up batches before measurement (default 25). */
uint64_t warmupIterations();

/** Measured batches (default 15). */
uint64_t measureIterations();

/** One locality's trace + statistics at a given model geometry. */
struct Workload
{
    sys::ModelConfig model;
    std::unique_ptr<sys::ExperimentRunner> runner;
    uint64_t warmup = 0;
    uint64_t measure = 0;

    const data::TraceDataset &dataset() const
    {
        return runner->dataset();
    }
    const sys::BatchStats &stats() const { return runner->stats(); }

    /** Simulate one registry system over this workload. */
    sys::RunResult run(const sys::SystemSpec &spec) const
    {
        return runner->run(spec);
    }

    /** Shorthand: run a spec string ("scratchpipe:cache=0.05"). */
    sys::RunResult run(const std::string &spec_text) const
    {
        return runner->run(spec_text);
    }
};

/**
 * Build a paper-geometry workload for `locality`. Pass `base` to
 * override the geometry (dimension/lookup/batch sweeps).
 */
Workload makeWorkload(data::Locality locality,
                      const sys::ModelConfig *base = nullptr);

/** Print the standard bench banner (figure id + paper reference). */
void printBanner(const std::string &title, const std::string &reference);

/** Seconds -> "12.34" milliseconds string. */
std::string ms(double seconds, int precision = 2);

} // namespace sp::bench

#endif // SP_BENCH_COMMON_WORKLOAD_H
