/**
 * @file
 * Shared setup for the figure/table reproduction binaries.
 *
 * Every bench binary regenerates one of the paper's evaluation
 * artifacts at the Section V geometry (8 tables x 10M rows x 128-dim,
 * batch 2048, 20 lookups/table). A Workload wraps a
 * sys::ExperimentRunner on the paper testbed: the trace and the shared
 * per-batch statistics are built once, and any system -- named by a
 * SystemSpec string like "static:cache=0.02" -- can be simulated over
 * them. The dynamic cache systems run `warmup` batches to reach steady
 * state (mirroring the paper's steady-state measurements) and are
 * measured over the following `measure` batches.
 *
 * Iteration counts honour SP_BENCH_WARMUP / SP_BENCH_MEASURE so the
 * whole suite can be sped up or made more precise from the shell, and
 * every driver takes the shared flags (addCommonFlags /
 * applyCommonFlags): --jobs, so the whole suite -- not just
 * perf_simcore -- exercises the worker pool at a controlled width,
 * and --no-trace-cache, opting out of the content-addressed trace
 * cache (data/trace_store.h) that otherwise lets every driver
 * warm-start from an mmap'd trace published by any earlier run.
 */

#ifndef SP_BENCH_COMMON_WORKLOAD_H
#define SP_BENCH_COMMON_WORKLOAD_H

#include <memory>
#include <string>
#include <vector>

#include "cache/hit_map.h"
#include "common/args.h"
#include "data/dataset.h"
#include "sim/hardware_config.h"
#include "sys/experiment.h"
#include "sys/system_config.h"

namespace sp::bench
{

/** Warm-up batches before measurement (default 25). */
uint64_t warmupIterations();

/** Measured batches (default 15). */
uint64_t measureIterations();

/**
 * Register the shared driver flags: --jobs (worker threads for every
 * parallel site: trace generation, per-table planning, sharded mark
 * passes, pooled sweeps; 0 = all cores, default leaves the pool at
 * ThreadPool::defaultThreads()), --no-trace-cache (regenerate the
 * trace instead of serving it from the content-addressed cache), and
 * --workload (shaping spec or replay=FILE, overlaid on every workload
 * the driver builds -- see data/workload.h).
 */
void addCommonFlags(ArgParser &args);

/**
 * Apply the shared flags: sizes the process-wide pool (call before
 * building any workload), switches the transparent trace cache on
 * unless --no-trace-cache was given, and returns the pool width,
 * which is also the ExperimentOptions::jobs value pooled sweeps
 * should use. Results are bit-identical whatever the width and
 * whether the trace came from the cache -- both only move wall-clock.
 */
uint32_t applyCommonFlags(const ArgParser &args);

/**
 * The whole standard prologue for a driver with no flags of its own:
 * parse argv with just the shared flags, size the pool, and switch
 * the trace cache. Returns false when --help was printed (the caller
 * should exit 0); prints the message and exits 1 on a usage error.
 * Drivers with extra flags compose addCommonFlags/applyCommonFlags
 * instead (see fig13_speedup.cc).
 */
bool parseStandardArgs(int argc, char **argv, const char *description);

/** One locality's trace + statistics at a given model geometry. */
struct Workload
{
    sys::ModelConfig model;
    std::unique_ptr<sys::ExperimentRunner> runner;
    uint64_t warmup = 0;
    uint64_t measure = 0;

    const data::TraceDataset &dataset() const
    {
        return runner->dataset();
    }
    const sys::BatchStats &stats() const { return runner->stats(); }

    /** Simulate one registry system over this workload. */
    sys::RunResult run(const sys::SystemSpec &spec) const
    {
        return runner->run(spec);
    }

    /** Shorthand: run a spec string ("scratchpipe:cache=0.05"). */
    sys::RunResult run(const std::string &spec_text) const
    {
        return runner->run(spec_text);
    }
};

/** Optional overrides for makeWorkload. */
struct WorkloadOptions
{
    /** Geometry override (dimension/lookup/batch sweeps). */
    const sys::ModelConfig *base = nullptr;
    /** Warm-up batches; 0 = the SP_BENCH_WARMUP default. */
    uint64_t warmup = 0;
    /** Measured batches; 0 = the SP_BENCH_MEASURE default. */
    uint64_t measure = 0;
    /** ExperimentOptions::jobs for pooled runAll sweeps; 0 (default)
     *  follows the pool width, i.e. whatever --jobs selected. */
    uint32_t jobs = 0;
};

/**
 * Build a paper-geometry workload for `locality`. Pass `base` to
 * override the geometry (dimension/lookup/batch sweeps).
 */
Workload makeWorkload(data::Locality locality,
                      const sys::ModelConfig *base = nullptr);

/** makeWorkload with explicit overrides (quick modes, pooled sweeps). */
Workload makeWorkload(data::Locality locality,
                      const WorkloadOptions &options);

/**
 * The shared fixture of the hitmap_probe bench family
 * (micro_primitives and perf_simcore): a HitMap filled to a target
 * load factor plus a probe-key stream at a target hit rate. One
 * definition keeps the two benches' grids measuring the same
 * distribution.
 */
struct ProbeWorkload
{
    cache::HitMap map;
    std::vector<uint64_t> keys;
};

/**
 * Fill a `buckets`-bucket map (buckets must be a power of two; the
 * fill stays below the growth threshold, so load_pct <= 65) to
 * load_pct% occupancy with uniform keys below 2^30, then draw
 * `num_keys` probe keys: hit_pct% sampled from the resident set, the
 * rest from the disjoint [2^30, 2^31) range (guaranteed misses).
 */
ProbeWorkload makeProbeWorkload(size_t buckets, int hit_pct,
                                int load_pct, size_t num_keys,
                                uint64_t seed);

/** Print the standard bench banner (figure id + paper reference). */
void printBanner(const std::string &title, const std::string &reference);

/** Seconds -> "12.34" milliseconds string. */
std::string ms(double seconds, int precision = 2);

} // namespace sp::bench

#endif // SP_BENCH_COMMON_WORKLOAD_H
