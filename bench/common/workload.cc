#include "common/workload.h"

#include <cstdlib>
#include <iostream>

#include "metrics/table_printer.h"

namespace sp::bench
{

namespace
{

uint64_t
envOr(const char *name, uint64_t fallback)
{
    const char *value = std::getenv(name);
    if (value == nullptr)
        return fallback;
    const long long parsed = std::atoll(value);
    return parsed > 0 ? static_cast<uint64_t>(parsed) : fallback;
}

} // namespace

uint64_t
warmupIterations()
{
    return envOr("SP_BENCH_WARMUP", 5);
}

uint64_t
measureIterations()
{
    return envOr("SP_BENCH_MEASURE", 10);
}

Workload
makeWorkload(data::Locality locality, const sys::ModelConfig *base)
{
    Workload workload;
    workload.model =
        base != nullptr ? *base : sys::ModelConfig::paperDefault();
    workload.model.trace.locality = locality;
    workload.warmup = warmupIterations();
    workload.measure = measureIterations();

    sys::ExperimentOptions options;
    options.iterations = workload.measure;
    options.warmup = workload.warmup;
    workload.runner = std::make_unique<sys::ExperimentRunner>(
        workload.model, sim::HardwareConfig::paperTestbed(), options);
    return workload;
}

void
printBanner(const std::string &title, const std::string &reference)
{
    std::cout << "\n=== " << title << " ===\n"
              << reference << "\n"
              << "geometry: 8 tables x 10M rows x 128-dim unless noted; "
              << "batch 2048; 20 lookups/table\n"
              << "warmup " << warmupIterations() << " iters, measuring "
              << measureIterations() << " iters\n\n";
}

std::string
ms(double seconds, int precision)
{
    return metrics::TablePrinter::num(seconds * 1e3, precision);
}

} // namespace sp::bench
