#include "common/workload.h"

#include <cstdlib>
#include <iostream>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "metrics/table_printer.h"

namespace sp::bench
{

namespace
{

uint64_t
envOr(const char *name, uint64_t fallback)
{
    const char *value = std::getenv(name);
    if (value == nullptr)
        return fallback;
    const long long parsed = std::atoll(value);
    return parsed > 0 ? static_cast<uint64_t>(parsed) : fallback;
}

} // namespace

uint64_t
warmupIterations()
{
    return envOr("SP_BENCH_WARMUP", 5);
}

uint64_t
measureIterations()
{
    return envOr("SP_BENCH_MEASURE", 10);
}

void
addJobsFlag(ArgParser &args)
{
    args.addInt("jobs", 0,
                "worker threads for every parallel site (trace "
                "generation, per-table planning, sharded mark passes, "
                "pooled sweeps); 0 = all cores");
}

uint32_t
applyJobsFlag(const ArgParser &args)
{
    const int64_t jobs = args.getInt("jobs");
    fatalIf(jobs < 0, "--jobs must be >= 0, got ", jobs);
    if (args.wasSet("jobs")) {
        // Size the pool before any workload exists so every parallel
        // site in this process runs at the requested width.
        common::ThreadPool::setGlobalThreads(
            jobs > 0 ? static_cast<size_t>(jobs)
                     : common::ThreadPool::defaultThreads());
    }
    return static_cast<uint32_t>(common::ThreadPool::global().size());
}

bool
parseStandardArgs(int argc, char **argv, const char *description)
{
    ArgParser args(description);
    addJobsFlag(args);
    if (!args.parse(argc, argv)) {
        std::cout << args.usage();
        return false;
    }
    applyJobsFlag(args);
    return true;
}

Workload
makeWorkload(data::Locality locality, const sys::ModelConfig *base)
{
    WorkloadOptions options;
    options.base = base;
    return makeWorkload(locality, options);
}

Workload
makeWorkload(data::Locality locality, const WorkloadOptions &overrides)
{
    Workload workload;
    workload.model = overrides.base != nullptr
                         ? *overrides.base
                         : sys::ModelConfig::paperDefault();
    workload.model.trace.locality = locality;
    workload.warmup =
        overrides.warmup > 0 ? overrides.warmup : warmupIterations();
    workload.measure =
        overrides.measure > 0 ? overrides.measure : measureIterations();

    sys::ExperimentOptions options;
    options.iterations = workload.measure;
    options.warmup = workload.warmup;
    // jobs == 0 follows the pool (sized by --jobs via applyJobsFlag),
    // so pooled runAll sweeps honour the flag without every driver
    // threading the width through by hand.
    options.jobs =
        overrides.jobs > 0
            ? overrides.jobs
            : static_cast<uint32_t>(common::ThreadPool::global().size());
    workload.runner = std::make_unique<sys::ExperimentRunner>(
        workload.model, sim::HardwareConfig::paperTestbed(), options);
    return workload;
}

void
printBanner(const std::string &title, const std::string &reference)
{
    std::cout << "\n=== " << title << " ===\n"
              << reference << "\n"
              << "geometry: 8 tables x 10M rows x 128-dim unless noted; "
              << "batch 2048; 20 lookups/table\n"
              << "warmup " << warmupIterations() << " iters, measuring "
              << measureIterations() << " iters\n\n";
}

std::string
ms(double seconds, int precision)
{
    return metrics::TablePrinter::num(seconds * 1e3, precision);
}

} // namespace sp::bench
