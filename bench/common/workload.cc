#include "common/workload.h"

#include <cstdlib>
#include <iostream>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "tensor/rng.h"
#include "data/trace_store.h"
#include "data/workload.h"
#include "metrics/table_printer.h"

namespace sp::bench
{

namespace
{

uint64_t
envOr(const char *name, uint64_t fallback)
{
    const char *value = std::getenv(name);
    if (value == nullptr)
        return fallback;
    const long long parsed = std::atoll(value);
    return parsed > 0 ? static_cast<uint64_t>(parsed) : fallback;
}

/** The --workload spec applyCommonFlags parsed, consumed by every
 *  subsequent makeWorkload in the process (empty = stationary). */
data::WorkloadSpec &
activeWorkload()
{
    static data::WorkloadSpec spec;
    return spec;
}

} // namespace

uint64_t
warmupIterations()
{
    return envOr("SP_BENCH_WARMUP", 5);
}

uint64_t
measureIterations()
{
    return envOr("SP_BENCH_MEASURE", 10);
}

void
addCommonFlags(ArgParser &args)
{
    args.addInt("jobs", 0,
                "worker threads for every parallel site (trace "
                "generation, per-table planning, sharded mark passes, "
                "pooled sweeps); 0 = all cores");
    args.addBool("no-trace-cache",
                 "regenerate the trace instead of serving it from the "
                 "content-addressed cache (SP_TRACE_CACHE, default "
                 ".sp-trace-cache/)");
    args.addString("workload", "",
                   "workload shaping spec applied to every workload the "
                   "driver builds, e.g. 'drift_amp=0.4,drift_period=8' "
                   "or 'replay=FILE' (see data/workload.h)");
}

uint32_t
applyCommonFlags(const ArgParser &args)
{
    // Bench drivers hit the trace cache transparently; the flag (and
    // SP_TRACE_CACHE=off) opts out. Enable before any workload is
    // built so the very first trace acquisition can be a warm start.
    data::TraceStore::setCacheEnabled(!args.getBool("no-trace-cache"));

    // Parse --workload once; makeWorkload overlays it on every model
    // so the whole figure family runs the shaped (or replayed) stream.
    activeWorkload() = data::WorkloadSpec::parse(
        args.getString("workload"));

    const uint32_t jobs = parseJobsArg(args);
    if (args.wasSet("jobs")) {
        // Size the pool before any workload exists so every parallel
        // site in this process runs at the requested width.
        common::ThreadPool::setGlobalThreads(
            jobs > 0 ? static_cast<size_t>(jobs)
                     : common::ThreadPool::defaultThreads());
    }
    return static_cast<uint32_t>(common::ThreadPool::global().size());
}

bool
parseStandardArgs(int argc, char **argv, const char *description)
{
    ArgParser args(description);
    addCommonFlags(args);
    try {
        if (!args.parse(argc, argv)) {
            std::cout << args.usage();
            return false;
        }
        applyCommonFlags(args);
    } catch (const FatalError &error) {
        // A bad flag is a usage error, not a crash: print the message
        // (not an uncaught-exception abort) and exit non-zero.
        std::cerr << error.what() << "\n";
        std::exit(1);
    }
    return true;
}

Workload
makeWorkload(data::Locality locality, const sys::ModelConfig *base)
{
    WorkloadOptions options;
    options.base = base;
    return makeWorkload(locality, options);
}

Workload
makeWorkload(data::Locality locality, const WorkloadOptions &overrides)
{
    Workload workload;
    workload.model = overrides.base != nullptr
                         ? *overrides.base
                         : sys::ModelConfig::paperDefault();
    workload.model.trace.locality = locality;
    workload.warmup =
        overrides.warmup > 0 ? overrides.warmup : warmupIterations();
    workload.measure =
        overrides.measure > 0 ? overrides.measure : measureIterations();

    sys::ExperimentOptions options;
    options.iterations = workload.measure;
    options.warmup = workload.warmup;
    // jobs == 0 follows the pool (sized by --jobs in applyCommonFlags),
    // so pooled runAll sweeps honour the flag without every driver
    // threading the width through by hand.
    options.jobs =
        overrides.jobs > 0
            ? overrides.jobs
            : static_cast<uint32_t>(common::ThreadPool::global().size());
    // Overlay the driver-wide --workload spec; geometry overrides from
    // `base` keep their own shaping unless the flag asked for some.
    const data::WorkloadSpec &shaping = activeWorkload();
    if (!shaping.config.stationary())
        workload.model.trace.workload = shaping.config;
    options.replay_path = shaping.replay_path;
    workload.runner = std::make_unique<sys::ExperimentRunner>(
        workload.model, sim::HardwareConfig::paperTestbed(), options);
    return workload;
}

ProbeWorkload
makeProbeWorkload(size_t buckets, int hit_pct, int load_pct,
                  size_t num_keys, uint64_t seed)
{
    // HitMap sizes to bit_ceil(2 * expected), so buckets/2 yields
    // exactly `buckets` for a power-of-two input; load_pct <= 65
    // stays below the 0.7 growth threshold.
    ProbeWorkload workload{cache::HitMap(buckets / 2), {}};
    tensor::Rng rng(seed);
    std::vector<uint64_t> resident;
    while (workload.map.size() * 100 <
           buckets * static_cast<size_t>(load_pct)) {
        const uint64_t key = rng.uniformInt(1u << 30);
        if (!workload.map.contains(key)) {
            workload.map.insert(
                key, static_cast<uint32_t>(workload.map.size()));
            resident.push_back(key);
        }
    }
    workload.keys.resize(num_keys);
    for (auto &key : workload.keys) {
        const bool hit = !resident.empty() &&
                         rng.uniform() * 100.0 <
                             static_cast<double>(hit_pct);
        key = hit ? resident[rng.uniformInt(resident.size())]
                  : (1u << 30) + rng.uniformInt(1u << 30);
    }
    return workload;
}

void
printBanner(const std::string &title, const std::string &reference)
{
    std::cout << "\n=== " << title << " ===\n"
              << reference << "\n"
              << "geometry: 8 tables x 10M rows x 128-dim unless noted; "
              << "batch 2048; 20 lookups/table\n"
              << "warmup " << warmupIterations() << " iters, measuring "
              << measureIterations() << " iters\n\n";
}

std::string
ms(double seconds, int precision)
{
    return metrics::TablePrinter::num(seconds * 1e3, precision);
}

} // namespace sp::bench
