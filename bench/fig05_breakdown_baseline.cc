/**
 * @file
 * Figure 5: training-time breakdown of the hybrid CPU-GPU baseline
 * without caching and with a static GPU embedding cache sized at the
 * top 2% / 10% of table entries, across the four locality classes.
 *
 * Reproduces the paper's three-way split: CPU embedding forward, CPU
 * embedding backward, GPU (MLPs + transfers).
 */

#include <iostream>

#include "common/workload.h"
#include "metrics/table_printer.h"

using namespace sp;

int
main(int argc, char **argv)
{
    if (!bench::parseStandardArgs(
            argc, argv, "fig05: paper reproduction bench"))
        return 0;

    bench::printBanner("Figure 5: baseline training-time breakdown",
                       "paper: Fig. 5 -- hybrid CPU-GPU vs static cache "
                       "(2%, 10%), stacked latency in ms");

    metrics::TablePrinter table({"system", "locality", "cpu_emb_fwd_ms",
                                 "cpu_emb_bwd_ms", "gpu_ms", "total_ms",
                                 "hit_rate"});

    for (auto locality : data::kAllLocalities) {
        const bench::Workload workload = bench::makeWorkload(locality);

        struct Setup
        {
            const char *name;
            const char *spec;
        };
        const Setup setups[] = {
            {"Hybrid CPU-GPU", "hybrid"},
            {"Static cache (2%)", "static:cache=0.02"},
            {"Static cache (10%)", "static:cache=0.10"},
        };
        for (const auto &setup : setups) {
            const auto result = workload.run(setup.spec);
            table.addRow(
                {setup.name, data::localityName(locality),
                 bench::ms(result.breakdown.get("CPU embedding forward")),
                 bench::ms(result.breakdown.get("CPU embedding backward")),
                 bench::ms(result.breakdown.get("GPU")),
                 bench::ms(result.seconds_per_iteration),
                 result.hit_rate < 0.0
                     ? std::string("-")
                     : metrics::TablePrinter::num(100.0 * result.hit_rate,
                                                  1) + "%"});
        }
    }

    table.print(std::cout);
    std::cout << "\npaper shape check: CPU embedding stages dominate "
                 "(77-94% of time even with the static cache); caching "
                 "helps most at High locality.\n";
    return 0;
}
