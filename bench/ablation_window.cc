/**
 * @file
 * Design-space ablation: sliding-window geometry.
 *
 * The paper fixes past_window = 3 (the [Plan]->[Train] distance) and
 * future_window = 2 (the [Insert]->[Collect] distance) because the
 * six-stage pipeline dictates them. This ablation asks what *deeper*
 * windows would cost: wider windows pin more slots (lower effective
 * capacity, earlier §VI-D bound) without improving hit rate -- the
 * design point the paper chose is the minimum that is hazard-free.
 */

#include <iostream>

#include "common/workload.h"
#include "core/controller.h"
#include "metrics/table_printer.h"
#include "sys/scratchpipe_sys.h"

using namespace sp;

int
main(int argc, char **argv)
{
    if (!bench::parseStandardArgs(
            argc, argv, "ablation_window: paper reproduction bench"))
        return 0;

    bench::printBanner(
        "Ablation: hold-mask window geometry",
        "paper: fixed at past 3 / future 2 by the pipeline depth; this "
        "sweep shows deeper windows only cost capacity");

    metrics::TablePrinter table({"locality", "past", "future",
                                 "worst_case_slots", "hit_rate",
                                 "cycle_ms", "bottleneck"});

    for (auto locality : {data::Locality::Low, data::Locality::High}) {
        const bench::Workload w = bench::makeWorkload(locality);
        struct Geometry
        {
            uint32_t past, future;
        };
        for (const Geometry g :
             {Geometry{3, 2}, Geometry{4, 2}, Geometry{5, 3},
              Geometry{7, 4}}) {
            const auto result =
                w.run("scratchpipe:cache=0.10,past=" +
                      std::to_string(g.past) +
                      ",future=" + std::to_string(g.future));
            table.addRow(
                {data::localityName(locality), std::to_string(g.past),
                 std::to_string(g.future),
                 std::to_string(core::ScratchPipeController::worstCaseSlots(
                     g.past, g.future, w.model.trace.idsPerTable())),
                 metrics::TablePrinter::num(100.0 * result.hit_rate, 1) +
                     "%",
                 bench::ms(result.seconds_per_iteration),
                 result.bottleneck});
        }
    }

    table.print(std::cout);
    std::cout << "\nshape check: hit rate and cycle time barely move "
                 "while the worst-case capacity requirement grows "
                 "linearly with the window -- the paper's minimal "
                 "window is the right design point.\n";
    return 0;
}
