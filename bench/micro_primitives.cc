/**
 * @file
 * google-benchmark microbenchmarks of the primitives behind the
 * system models: Zipf sampling, Hit-Map operations, hold-mask
 * maintenance, controller planning, embedding gather/reduce and
 * gradient coalescing, and the blocked GEMM. These back the
 * calibration constants in sim::HardwareConfig with measured
 * throughput of the host-side implementations.
 */

#include <benchmark/benchmark.h>

#include <span>
#include <vector>

#include "cache/hit_map.h"
#include "cache/probe_kernel.h"
#include "common/workload.h"
#include "core/controller.h"
#include "data/zipf.h"
#include "emb/embedding_ops.h"
#include "tensor/gemm.h"
#include "tensor/rng.h"

using namespace sp;

namespace
{

void
BM_ZipfSample(benchmark::State &state)
{
    data::ZipfSampler sampler(10'000'000,
                              static_cast<double>(state.range(0)) / 100.0);
    tensor::Rng rng(1);
    for (auto _ : state)
        benchmark::DoNotOptimize(sampler.sample(rng));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ZipfSample)->Arg(0)->Arg(77)->Arg(105);

void
BM_HitMapFindHit(benchmark::State &state)
{
    cache::HitMap map(1 << 20);
    for (uint32_t k = 0; k < (1u << 20); ++k)
        map.insert(k * 2, k);
    tensor::Rng rng(2);
    for (auto _ : state) {
        const uint32_t key =
            static_cast<uint32_t>(rng.uniformInt(1 << 20)) * 2;
        benchmark::DoNotOptimize(map.find(key));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HitMapFindHit);

void
BM_HitMapFindMiss(benchmark::State &state)
{
    cache::HitMap map(1 << 20);
    for (uint32_t k = 0; k < (1u << 20); ++k)
        map.insert(k * 2, k);
    tensor::Rng rng(3);
    for (auto _ : state) {
        const uint32_t key =
            static_cast<uint32_t>(rng.uniformInt(1 << 20)) * 2 + 1;
        benchmark::DoNotOptimize(map.find(key));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HitMapFindMiss);

/**
 * Batched-probe kernels over a hit-rate x load-factor grid:
 * Args({hit_pct, load_pct}). hitmap_probe_scalar runs the pipelined
 * scalar reference, hitmap_probe_simd whatever kernel runtime
 * dispatch picks (AVX2/NEON; identical to scalar on hosts without
 * SIMD, so the pair doubles as a parity check of the grid).
 */
void
probeGridArgs(benchmark::internal::Benchmark *bench)
{
    for (const int hit_pct : {50, 95, 100})
        for (const int load_pct : {30, 50, 65})
            bench->Args({hit_pct, load_pct});
}

void
BM_HitMapProbe(benchmark::State &state, cache::ProbeMode mode)
{
    constexpr size_t kBuckets = 1 << 21; // 16 MB of entries: DRAM-bound
    bench::ProbeWorkload workload = bench::makeProbeWorkload(
        kBuckets, static_cast<int>(state.range(0)),
        static_cast<int>(state.range(1)), 8192, 8);
    workload.map.setProbeMode(mode);
    std::vector<uint32_t> out(workload.keys.size());
    for (auto _ : state) {
        workload.map.findMany(workload.keys, out);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<int64_t>(workload.keys.size()));
    state.SetLabel(workload.map.probeKernelName());
}
BENCHMARK_CAPTURE(BM_HitMapProbe, hitmap_probe_scalar,
                  cache::ProbeMode::Scalar)
    ->Apply(probeGridArgs);
BENCHMARK_CAPTURE(BM_HitMapProbe, hitmap_probe_simd,
                  cache::ProbeMode::Native)
    ->Apply(probeGridArgs);

void
BM_HitMapInsertErase(benchmark::State &state)
{
    cache::HitMap map(1 << 16);
    uint32_t key = 1;
    for (auto _ : state) {
        map.insert(key, key);
        map.erase(key);
        key = (key % 1000000) + 1;
    }
    state.SetItemsProcessed(2 * state.iterations());
}
BENCHMARK(BM_HitMapInsertErase);

void
BM_ControllerPlan(benchmark::State &state)
{
    // One paper-scale table: 40960 IDs per batch against 1M slots.
    core::ControllerConfig config;
    config.num_slots = 1'000'000;
    config.dim = 128;
    config.backing = cache::SlotArray::Backing::Phantom;
    core::ScratchPipeController controller(config);

    data::ZipfSampler sampler(10'000'000, 0.77);
    tensor::Rng rng(4);
    std::vector<std::vector<uint64_t>> batches(8);
    for (auto &batch : batches) {
        batch.resize(40960);
        for (auto &id : batch)
            id = sampler.sample(rng);
    }
    size_t next = 0;
    for (auto _ : state) {
        const auto &current = batches[next];
        const std::span<const uint64_t> futures[2] = {
            batches[(next + 1) % batches.size()],
            batches[(next + 2) % batches.size()]};
        benchmark::DoNotOptimize(controller.plan(current, futures));
        next = (next + 1) % batches.size();
    }
    state.SetItemsProcessed(state.iterations() * 40960);
}
BENCHMARK(BM_ControllerPlan)->Unit(benchmark::kMillisecond);

void
BM_GatherReduce(benchmark::State &state)
{
    const size_t dim = static_cast<size_t>(state.range(0));
    emb::EmbeddingTable table(100'000, dim);
    tensor::Rng rng(5);
    table.initRandom(rng, 0.1f);
    std::vector<uint64_t> ids(2048 * 20);
    for (auto &id : ids)
        id = rng.uniformInt(100'000);
    tensor::Matrix out(2048, dim);
    for (auto _ : state) {
        emb::gatherReduce(table, ids, 20, out);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetBytesProcessed(state.iterations() * ids.size() * dim *
                            sizeof(float));
}
BENCHMARK(BM_GatherReduce)->Arg(64)->Arg(128)->Unit(benchmark::kMillisecond);

void
BM_DuplicateAndCoalesce(benchmark::State &state)
{
    tensor::Rng rng(6);
    std::vector<uint64_t> ids(2048 * 20);
    for (auto &id : ids)
        id = rng.uniformInt(100'000);
    tensor::Matrix grads(2048, 128);
    grads.fillNormal(rng, 1.0f);
    for (auto _ : state) {
        auto coalesced = emb::duplicateAndCoalesce(ids, grads, 20);
        benchmark::DoNotOptimize(coalesced.ids.data());
    }
    state.SetItemsProcessed(state.iterations() * ids.size());
}
BENCHMARK(BM_DuplicateAndCoalesce)->Unit(benchmark::kMillisecond);

void
BM_Gemm(benchmark::State &state)
{
    const size_t n = static_cast<size_t>(state.range(0));
    tensor::Rng rng(7);
    tensor::Matrix a(n, n), b(n, n), c(n, n);
    a.fillNormal(rng, 1.0f);
    b.fillNormal(rng, 1.0f);
    for (auto _ : state) {
        tensor::gemm(a, b, c);
        benchmark::DoNotOptimize(c.data());
    }
    state.counters["GFLOP/s"] = benchmark::Counter(
        tensor::gemmFlops(n, n, n) * state.iterations() * 1e-9,
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Gemm)->Arg(128)->Arg(256)->Unit(benchmark::kMillisecond);

void
BM_HoldMaskAdvance(benchmark::State &state)
{
    core::HoldMask mask(1'000'000, 3, 2);
    for (uint32_t s = 0; s < 1'000'000; s += 3)
        mask.markCurrent(s);
    for (auto _ : state) {
        mask.advance();
        benchmark::ClobberMemory();
    }
    state.SetItemsProcessed(state.iterations() * 1'000'000);
}
BENCHMARK(BM_HoldMaskAdvance)->Unit(benchmark::kMicrosecond);

} // namespace
