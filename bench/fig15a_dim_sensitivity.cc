/**
 * @file
 * Figure 15(a): sensitivity to the embedding vector dimension
 * (64 / 128 / 256). Speedups are normalized to the static cache at
 * the same configuration (10% cache).
 */

#include <iostream>
#include <vector>

#include "common/workload.h"
#include "metrics/table_printer.h"

using namespace sp;

int
main(int argc, char **argv)
{
    if (!bench::parseStandardArgs(
            argc, argv, "fig15a: paper reproduction bench"))
        return 0;

    bench::printBanner(
        "Figure 15(a): embedding-dimension sensitivity",
        "paper: Fig. 15(a) -- dims 64/128/256, speedup normalized to "
        "static cache (10%)");

    metrics::TablePrinter table({"locality", "dim", "hybrid", "static",
                                 "strawman", "scratchpipe"});

    for (auto locality : data::kAllLocalities) {
        for (size_t dim : {64u, 128u, 256u}) {
            sys::ModelConfig model = sys::ModelConfig::paperDefault();
            model.embedding_dim = dim;
            const bench::Workload workload =
                bench::makeWorkload(locality, &model);

            const double t_hybrid =
                workload.run("hybrid")
                    .seconds_per_iteration;
            const double t_static =
                workload.run("static:cache=0.10")
                    .seconds_per_iteration;
            const double t_straw =
                workload.run("strawman:cache=0.10")
                    .seconds_per_iteration;
            const double t_sp =
                workload.run("scratchpipe:cache=0.10")
                    .seconds_per_iteration;

            table.addRow(
                {data::localityName(locality), std::to_string(dim),
                 metrics::TablePrinter::num(t_static / t_hybrid, 2),
                 "1.00",
                 metrics::TablePrinter::num(t_static / t_straw, 2),
                 metrics::TablePrinter::num(t_static / t_sp, 2)});
        }
    }

    table.print(std::cout);
    std::cout << "\npaper shape check: larger embeddings raise memory "
                 "pressure, so ScratchPipe's advantage grows with "
                 "dimension.\n";
    return 0;
}
