/**
 * @file
 * Online-serving latency-throughput curve: p50/p99/p999 request
 * latency vs offered load for the two-tier serving system, static
 * pinning vs LRU refresh of the GPU embedding cache.
 *
 * Not a paper figure -- the paper evaluates training -- but the
 * north-star scenario the serving engine exists for: open-loop
 * arrivals make queueing visible, so the tail (p99/p999) blows up as
 * the offered rate approaches the server's saturation throughput
 * while the median barely moves. The sweep prints one row per
 * (refresh, rate) point; rates are chosen as fractions of the
 * measured saturation rate so the curve brackets the knee at any
 * geometry.
 */

#include <iostream>
#include <string>
#include <vector>

#include "common/workload.h"
#include "metrics/table_printer.h"

using namespace sp;

namespace
{

/** Offered rate -> serving result at paper geometry. */
sys::RunResult
serveAt(const bench::Workload &workload, const std::string &refresh,
        double rate)
{
    return workload.run("serve:rate=" +
                        std::to_string(static_cast<uint64_t>(rate)) +
                        ",batch_max=64,budget_us=500,refresh=" +
                        refresh);
}

} // namespace

int
main(int argc, char **argv)
{
    if (!bench::parseStandardArgs(
            argc, argv,
            "serve_latency_curve: SLO percentiles vs offered load"))
        return 0;

    bench::printBanner(
        "Serving latency-throughput curve",
        "north-star scenario: open-loop inference over the paper "
        "geometry, GPU embedding cache over a host parameter server");

    const bench::Workload workload =
        bench::makeWorkload(data::Locality::Medium);

    // Calibrate: serve a deliberately saturating stream; the achieved
    // rate is the server's saturation throughput at this geometry.
    const sys::RunResult probe =
        serveAt(workload, "static", 50'000'000.0);
    const double saturation = probe.serving.achieved_rate;

    metrics::TablePrinter table({"refresh", "load", "offered_rps",
                                 "achieved_rps", "p50_ms", "p99_ms",
                                 "p999_ms", "q_mean", "fill"});
    for (const std::string refresh : {"static", "lru"}) {
        for (const double load : {0.3, 0.6, 0.9}) {
            const sys::RunResult result =
                serveAt(workload, refresh, saturation * load);
            const auto &serving = result.serving;
            table.addRow(
                {refresh, metrics::TablePrinter::num(load, 1),
                 metrics::TablePrinter::num(serving.offered_rate, 0),
                 metrics::TablePrinter::num(serving.achieved_rate, 0),
                 metrics::TablePrinter::num(1e3 * serving.p50, 3),
                 metrics::TablePrinter::num(1e3 * serving.p99, 3),
                 metrics::TablePrinter::num(1e3 * serving.p999, 3),
                 metrics::TablePrinter::num(serving.mean_queue_depth,
                                            1),
                 metrics::TablePrinter::num(serving.mean_batch_fill,
                                            1)});
        }
    }
    table.print(std::cout);
    std::cout << "\nSaturation (static refresh): "
              << metrics::TablePrinter::num(saturation, 0)
              << " req/s. Open-loop tail growth toward load 1.0 is "
                 "the SLO story; the LRU tier trades hit rate for "
                 "refresh write traffic.\n";
    return 0;
}
