/**
 * @file
 * Figure 3: sorted access counts of embedding-table entries for the
 * four locality classes (Alibaba-like Low, Anime/MovieLens-like
 * Medium, Criteo-like High, plus uniform Random).
 *
 * The paper plots the per-row access histogram sorted descending; we
 * print the curve sampled at logarithmic rank positions, plus the
 * top-2% coverage anchor each preset was calibrated to (Section III-A
 * quotes Criteo >80% and Alibaba-User 8.5%).
 */

#include <iostream>
#include <vector>

#include "common/workload.h"
#include "data/access_stats.h"
#include "data/zipf.h"
#include "metrics/table_printer.h"

using namespace sp;

int
main(int argc, char **argv)
{
    if (!bench::parseStandardArgs(
            argc, argv, "fig03: paper reproduction bench"))
        return 0;

    bench::printBanner(
        "Figure 3: sorted embedding-table access counts",
        "paper: Fig. 3 (a) Alibaba->Low (b) Anime / (c) MovieLens->"
        "Medium (d) Criteo->High");

    constexpr uint64_t rows = 10'000'000;
    const std::vector<uint64_t> rank_samples = {
        0, 9, 99, 999, 9'999, 99'999, 999'999, 9'999'999};

    metrics::TablePrinter table({"dataset", "zipf_s", "rank1", "rank10",
                                 "rank100", "rank1K", "rank10K",
                                 "rank100K", "rank1M", "rank10M",
                                 "top2%_share"});

    for (auto locality : data::kAllLocalities) {
        // One 10M-row table per preset keeps the histogram at 80 MB.
        data::TraceConfig config;
        config.num_tables = 1;
        config.rows_per_table = rows;
        config.lookups_per_table = 20;
        config.batch_size = 2048;
        config.locality = locality;
        config.seed = 1003;
        const uint64_t batches = 40; // ~1.6M accesses
        data::TraceDataset dataset(config, batches);

        data::AccessStats stats(1, rows);
        stats.addDataset(dataset);
        const auto sorted = stats.sortedCounts(0);

        std::vector<std::string> row;
        row.push_back(data::localityName(locality));
        row.push_back(metrics::TablePrinter::num(
            data::zipfExponent(locality), 2));
        for (uint64_t rank : rank_samples)
            row.push_back(std::to_string(sorted[rank]));
        row.push_back(metrics::TablePrinter::num(
            100.0 * stats.coverage(0, 0.02), 1) + "%");
        table.addRow(std::move(row));
    }

    table.print(std::cout);
    std::cout << "\nAnalytic top-2% coverage at 10M rows "
              << "(calibration anchors):\n";
    for (auto locality : data::kAllLocalities) {
        std::cout << "  " << data::localityName(locality) << ": "
                  << metrics::TablePrinter::num(
                         100.0 * data::zipfTopCoverage(
                                     rows, data::zipfExponent(locality),
                                     0.02),
                         1)
                  << "% (paper anchor "
                  << metrics::TablePrinter::num(
                         100.0 *
                             data::expectedTop2PercentCoverage(locality),
                         1)
                  << "%)\n";
    }
    return 0;
}
