/**
 * @file
 * Figure 13: end-to-end speedup of all four design points, normalized
 * to the static-cache baseline at the same cache size, across cache
 * sizes 2-10% and the four locality classes. The paper's headline
 * numbers -- ScratchPipe avg 2.8x (max 4.2x) over static caching and
 * avg 5.1x (max 6.6x) over the no-cache hybrid -- come from this
 * sweep; the summary lines recompute both aggregates.
 *
 * Every design point is built by name through sys::Registry over the
 * shared per-locality workload. `--json` dumps the raw RunResults of
 * the whole sweep as a JSON array instead of the table.
 */

#include <algorithm>
#include <iostream>
#include <vector>

#include "common/args.h"
#include "common/logging.h"
#include "common/workload.h"
#include "metrics/table_printer.h"

using namespace sp;

int
main(int argc, char **argv)
{
    ArgParser args("fig13: end-to-end speedup sweep");
    args.addBool("json", "emit raw RunResults as JSON");
    args.addBool("quick",
                 "small fixed geometry with pinned iteration counts "
                 "(regression-test scale; ignores SP_BENCH_* envs)");
    bench::addCommonFlags(args);
    bool json = false, quick = false;
    try {
        if (!args.parse(argc, argv)) {
            std::cout << args.usage();
            return 0;
        }
        json = args.getBool("json");
        quick = args.getBool("quick");
        bench::applyCommonFlags(args);
    } catch (const FatalError &error) {
        std::cerr << error.what() << "\n";
        return 1;
    }

    // The --quick geometry backs the golden-output regression test:
    // keep it (and the pinned warmup/measure) stable, or regenerate
    // tests/golden/fig13_quick.json (see tests/golden/regen.sh).
    sys::ModelConfig quick_model = sys::ModelConfig::paperDefault();
    quick_model.trace.num_tables = 2;
    quick_model.trace.rows_per_table = 50'000;
    quick_model.trace.lookups_per_table = 4;
    quick_model.trace.batch_size = 128;
    quick_model.embedding_dim = 16;
    bench::WorkloadOptions quick_options;
    quick_options.base = &quick_model;
    quick_options.warmup = 2;
    quick_options.measure = 3;

    if (!json) {
        bench::printBanner(
            "Figure 13: end-to-end speedup (normalized to static cache)",
            "paper: Fig. 13 -- Hybrid / Static / Straw-man / ScratchPipe");
    }

    const std::vector<double> fractions = {0.02, 0.04, 0.06, 0.08, 0.10};
    metrics::TablePrinter table({"locality", "cache", "hybrid",
                                 "static", "strawman", "scratchpipe",
                                 "sp_cycle_ms"});
    std::vector<sys::RunResult> raw;

    double sum_vs_static = 0.0, max_vs_static = 0.0;
    double sum_vs_hybrid = 0.0, max_vs_hybrid = 0.0;
    int points = 0;

    for (auto locality : data::kAllLocalities) {
        const bench::Workload workload =
            quick ? bench::makeWorkload(locality, quick_options)
                  : bench::makeWorkload(locality);
        const auto hybrid = workload.run("hybrid");
        raw.push_back(hybrid);
        const double t_hybrid = hybrid.seconds_per_iteration;
        for (double fraction : fractions) {
            const auto statik = workload.run(
                sys::SystemSpec::withCache("static", fraction));
            const auto straw = workload.run(
                sys::SystemSpec::withCache("strawman", fraction));
            const auto sp = workload.run(
                sys::SystemSpec::withCache("scratchpipe", fraction));
            raw.push_back(statik);
            raw.push_back(straw);
            raw.push_back(sp);
            const double t_static = statik.seconds_per_iteration;
            const double t_straw = straw.seconds_per_iteration;
            const double t_sp = sp.seconds_per_iteration;

            table.addRow(
                {data::localityName(locality),
                 metrics::TablePrinter::num(100.0 * fraction, 0) + "%",
                 metrics::TablePrinter::num(t_static / t_hybrid, 2),
                 "1.00",
                 metrics::TablePrinter::num(t_static / t_straw, 2),
                 metrics::TablePrinter::num(t_static / t_sp, 2),
                 bench::ms(t_sp)});

            sum_vs_static += t_static / t_sp;
            max_vs_static = std::max(max_vs_static, t_static / t_sp);
            sum_vs_hybrid += t_hybrid / t_sp;
            max_vs_hybrid = std::max(max_vs_hybrid, t_hybrid / t_sp);
            ++points;
        }
    }

    if (json) {
        std::cout << sys::toJson(raw) << "\n";
        return 0;
    }

    table.print(std::cout);
    std::cout << "\nScratchPipe vs static cache: avg "
              << metrics::TablePrinter::num(sum_vs_static / points, 2)
              << "x, max "
              << metrics::TablePrinter::num(max_vs_static, 2)
              << "x   (paper: avg 2.8x, max 4.2x)\n"
              << "ScratchPipe vs hybrid CPU-GPU: avg "
              << metrics::TablePrinter::num(sum_vs_hybrid / points, 2)
              << "x, max "
              << metrics::TablePrinter::num(max_vs_hybrid, 2)
              << "x   (paper: avg 5.1x, max 6.6x)\n";
    return 0;
}
