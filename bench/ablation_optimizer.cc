/**
 * @file
 * Extension ablation: embedding-optimizer state under ScratchPipe.
 *
 * Production DLRM trains embeddings with sparse AdaGrad, whose per-row
 * accumulator must migrate through the scratchpad with its row. That
 * doubles the bytes of every fill, write-back and scatter update --
 * exactly the CPU/PCIe paths that bind ScratchPipe at low locality.
 * This ablation quantifies the cost of the richer optimizer (the
 * functional test suite separately proves the migration is bit-exact:
 * tests/sys/adagrad_test.cc).
 */

#include <iostream>

#include "common/workload.h"
#include "metrics/table_printer.h"
#include "sys/scratchpipe_sys.h"

using namespace sp;

int
main(int argc, char **argv)
{
    if (!bench::parseStandardArgs(
            argc, argv, "ablation_optimizer: paper reproduction bench"))
        return 0;

    bench::printBanner(
        "Ablation: embedding optimizer (SGD vs sparse AdaGrad)",
        "extension beyond the paper (which trains with SGD); AdaGrad "
        "state rides every fill/write-back/scatter");

    const sim::HardwareConfig hw = sim::HardwareConfig::paperTestbed();
    metrics::TablePrinter table({"locality", "optimizer", "cycle_ms",
                                 "slowdown", "bottleneck"});

    for (auto locality : data::kAllLocalities) {
        double sgd_cycle = 0.0;
        for (auto optimizer : {sys::Optimizer::Sgd,
                               sys::Optimizer::AdaGrad}) {
            sys::ModelConfig model = sys::ModelConfig::paperDefault();
            model.optimizer = optimizer;
            const bench::Workload w =
                bench::makeWorkload(locality, &model);

            sys::ScratchPipeOptions options;
            options.cache_fraction = 0.10;
            sys::ScratchPipeSystem system(w.model, hw, options);
            const auto result = system.simulate(
                w.dataset(), w.stats(), w.measure, w.warmup);
            if (optimizer == sys::Optimizer::Sgd)
                sgd_cycle = result.seconds_per_iteration;
            table.addRow(
                {data::localityName(locality),
                 sys::optimizerName(optimizer),
                 bench::ms(result.seconds_per_iteration),
                 metrics::TablePrinter::num(
                     result.seconds_per_iteration / sgd_cycle, 2) + "x",
                 result.bottleneck});
        }
    }

    table.print(std::cout);
    std::cout << "\nshape check: AdaGrad costs most where ScratchPipe is "
                 "CPU-bound (Random/Low: fills and write-backs double) "
                 "and least where [Train] binds (High locality).\n";
    return 0;
}
