/**
 * @file
 * Figure 12(a): latency breakdown of the baseline CPU-GPU system
 * without caching (0%) and with static caches sized 2-10% of the
 * embedding tables, for all locality classes.
 */

#include <iostream>
#include <vector>

#include "common/workload.h"
#include "metrics/table_printer.h"

using namespace sp;

int
main(int argc, char **argv)
{
    if (!bench::parseStandardArgs(
            argc, argv, "fig12a: paper reproduction bench"))
        return 0;

    bench::printBanner("Figure 12(a): baseline latency vs cache size",
                       "paper: Fig. 12(a) -- 0% is the no-cache hybrid; "
                       "2-10% are static caches");

    const std::vector<double> fractions = {0.0, 0.02, 0.04, 0.06, 0.08,
                                           0.10};
    metrics::TablePrinter table({"locality", "cache", "cpu_emb_fwd_ms",
                                 "cpu_emb_bwd_ms", "gpu_ms", "total_ms"});

    for (auto locality : data::kAllLocalities) {
        const bench::Workload workload = bench::makeWorkload(locality);
        for (double fraction : fractions) {
            const auto result =
                fraction == 0.0
                    ? workload.run("hybrid")
                    : workload.run(sys::SystemSpec::withCache("static",
                                                              fraction));
            table.addRow(
                {data::localityName(locality),
                 metrics::TablePrinter::num(100.0 * fraction, 0) + "%",
                 bench::ms(result.breakdown.get("CPU embedding forward")),
                 bench::ms(result.breakdown.get("CPU embedding backward")),
                 bench::ms(result.breakdown.get("GPU")),
                 bench::ms(result.seconds_per_iteration)});
        }
    }

    table.print(std::cout);
    std::cout << "\npaper shape check: larger caches shave CPU time, "
                 "fastest at High locality, but the CPU backward path "
                 "never disappears.\n";
    return 0;
}
