/**
 * @file
 * Figure 12(b): ScratchPipe's per-pipeline-stage latency across cache
 * sizes 2-10% and all locality classes, plus the binding constraint
 * (stage-bound vs resource-bound) of the steady-state cycle.
 */

#include <iostream>
#include <vector>

#include "common/workload.h"
#include "metrics/table_printer.h"
#include "sys/scratchpipe_sys.h"

using namespace sp;

int
main(int argc, char **argv)
{
    if (!bench::parseStandardArgs(
            argc, argv, "fig12b: paper reproduction bench"))
        return 0;

    bench::printBanner(
        "Figure 12(b): ScratchPipe per-stage latency",
        "paper: Fig. 12(b) -- Plan/Collect/Exchange/Insert/Train, note "
        "the 0-70 ms scale vs Fig. 12(a)'s 0-200 ms");

    const std::vector<double> fractions = {0.02, 0.04, 0.06, 0.08, 0.10};
    metrics::TablePrinter table({"locality", "cache", "plan_ms",
                                 "collect_ms", "exchange_ms", "insert_ms",
                                 "train_ms", "cycle_ms", "hit_rate",
                                 "bottleneck"});

    for (auto locality : data::kAllLocalities) {
        const bench::Workload workload = bench::makeWorkload(locality);
        for (double fraction : fractions) {
            const auto result = workload.run(
                sys::SystemSpec::withCache("scratchpipe", fraction));
            table.addRow(
                {data::localityName(locality),
                 metrics::TablePrinter::num(100.0 * fraction, 0) + "%",
                 bench::ms(result.breakdown.get("Plan")),
                 bench::ms(result.breakdown.get("Collect")),
                 bench::ms(result.breakdown.get("Exchange")),
                 bench::ms(result.breakdown.get("Insert")),
                 bench::ms(result.breakdown.get("Train")),
                 bench::ms(result.seconds_per_iteration),
                 metrics::TablePrinter::num(100.0 * result.hit_rate, 1) +
                     "%",
                 result.bottleneck});
        }
    }

    table.print(std::cout);
    std::cout << "\npaper shape check: Collect/Insert (the only CPU "
                 "interactions) dominate at low locality; Train binds "
                 "once the hit rate is high.\n";
    return 0;
}
