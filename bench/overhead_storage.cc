/**
 * @file
 * Section VI-D: ScratchPipe implementation overhead.
 *
 * The paper provisions the Storage array for the worst case -- all six
 * in-flight mini-batches' gathers distinct: (8 tables x 20 gathers x
 * 2048 batch x 512 B) x 6 = 960 MB -- plus <1 GB of Hit-Map and
 * <300 MB of miscellaneous metadata, under 4 GB total. This binary
 * rebuilds those numbers from the implementation itself and also
 * reports the *observed* peak held-slot working set, which the paper
 * notes is far below the bound thanks to window-internal hits.
 */

#include <algorithm>
#include <iostream>
#include <span>

#include "common/workload.h"
#include "core/controller.h"
#include "metrics/table_printer.h"

using namespace sp;

namespace
{

std::string
mib(double bytes)
{
    return metrics::TablePrinter::num(bytes / (1024.0 * 1024.0), 1);
}

} // namespace

int
main(int argc, char **argv)
{
    if (!bench::parseStandardArgs(
            argc, argv, "overhead_storage: paper reproduction bench"))
        return 0;

    bench::printBanner("Section VI-D: implementation overhead",
                       "paper: 960 MB worst-case Storage + <1 GB Hit-Map "
                       "+ <300 MB misc => <4 GB GPU-side allocation");

    const sys::ModelConfig model = sys::ModelConfig::paperDefault();
    const uint32_t worst = core::ScratchPipeController::worstCaseSlots(
        3, 2, model.trace.idsPerTable());

    std::cout << "worst-case window working set: " << worst
              << " slots/table x " << model.trace.num_tables
              << " tables x " << model.rowBytes() << " B = "
              << mib(static_cast<double>(worst) * model.trace.num_tables *
                     model.rowBytes())
              << " MiB (paper: 960 MB)\n\n";

    metrics::TablePrinter table({"cache", "slots/table", "storage_MiB",
                                 "metadata_MiB", "total_MiB",
                                 "peak_held_slots", "peak_held_MiB"});

    for (double fraction : {0.02, 0.06, 0.10}) {
        // Run real controllers over a Random trace (the worst case for
        // working-set growth) and track the peak held count.
        core::ControllerConfig cc;
        cc.num_slots = std::max<uint32_t>(
            worst, static_cast<uint32_t>(
                       fraction * model.trace.rows_per_table));
        cc.dim = model.embedding_dim;
        cc.backing = cache::SlotArray::Backing::Phantom;

        data::TraceConfig trace = model.trace;
        trace.locality = data::Locality::Random;
        trace.seed = 2027;
        data::TraceDataset dataset(trace, 12);

        double storage_bytes = 0.0, metadata_bytes = 0.0;
        uint64_t peak_held = 0;
        for (size_t t = 0; t < trace.num_tables; ++t) {
            core::ScratchPipeController controller(cc);
            for (uint64_t b = 0; b < dataset.numBatches(); ++b) {
                std::vector<std::span<const uint64_t>> futures;
                for (uint64_t d = 1; d <= 2; ++d) {
                    const auto *next = dataset.lookAhead(b, d);
                    if (next == nullptr)
                        break;
                    futures.emplace_back(next->ids(t));
                }
                controller.plan(dataset.batch(b).ids(t), futures);
                peak_held = std::max<uint64_t>(
                    peak_held, controller.holdMask().heldCount());
            }
            storage_bytes +=
                static_cast<double>(controller.storage().storageBytes());
            metadata_bytes +=
                static_cast<double>(controller.metadataBytes());
        }

        table.addRow(
            {metrics::TablePrinter::num(100.0 * fraction, 0) + "%",
             std::to_string(cc.num_slots), mib(storage_bytes),
             mib(metadata_bytes), mib(storage_bytes + metadata_bytes),
             std::to_string(peak_held),
             mib(static_cast<double>(peak_held) * trace.num_tables *
                 model.rowBytes())});
    }

    table.print(std::cout);
    std::cout << "\npaper shape check: the observed held working set "
                 "sits well under the 960 MB worst case, and total "
                 "GPU-side allocation stays below 4 GB.\n";
    return 0;
}
