/**
 * @file
 * Figure 14: per-iteration energy of the static-cache baseline vs
 * ScratchPipe (10% caches), derived the same way the paper does --
 * component power (pcm-power-style CPU socket, nvidia-smi-style GPU)
 * integrated over the modeled execution time.
 */

#include <iostream>

#include "common/workload.h"
#include "metrics/energy.h"
#include "metrics/table_printer.h"

using namespace sp;

int
main(int argc, char **argv)
{
    if (!bench::parseStandardArgs(
            argc, argv, "fig14: paper reproduction bench"))
        return 0;

    bench::printBanner("Figure 14: energy, static cache vs ScratchPipe",
                       "paper: Fig. 14 -- Joules per training iteration");

    const sim::HardwareConfig hw = sim::HardwareConfig::paperTestbed();
    const metrics::EnergyModel energy(hw);
    metrics::TablePrinter table({"locality", "static_J", "scratchpipe_J",
                                 "reduction", "static_avg_W",
                                 "scratchpipe_avg_W"});

    for (auto locality : data::kAllLocalities) {
        const bench::Workload workload = bench::makeWorkload(locality);
        const auto r_static =
            workload.run("static:cache=0.10");
        const auto r_sp =
            workload.run("scratchpipe:cache=0.10");

        const double j_static = energy.iterationEnergy(r_static.busy);
        const double j_sp = energy.iterationEnergy(r_sp.busy);
        table.addRow({data::localityName(locality),
                      metrics::TablePrinter::num(j_static, 2),
                      metrics::TablePrinter::num(j_sp, 2),
                      metrics::TablePrinter::num(j_static / j_sp, 2) + "x",
                      metrics::TablePrinter::num(
                          energy.averagePower(r_static.busy), 0),
                      metrics::TablePrinter::num(
                          energy.averagePower(r_sp.busy), 0)});
    }

    table.print(std::cout);
    std::cout << "\npaper shape check: training-time reduction "
                 "translates directly into energy reduction; the gap "
                 "narrows with locality.\n";
    return 0;
}
