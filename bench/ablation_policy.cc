/**
 * @file
 * Section VI-E ablation: GPU scratchpad replacement policy.
 *
 * The paper reports robustness when swapping the default LRU for
 * random or LFU eviction. We sweep all four implemented policies and
 * report hit rate and steady-state cycle time per locality class.
 */

#include <iostream>

#include "common/workload.h"
#include "metrics/table_printer.h"
#include "sys/scratchpipe_sys.h"

using namespace sp;

int
main(int argc, char **argv)
{
    if (!bench::parseStandardArgs(
            argc, argv, "ablation_policy: paper reproduction bench"))
        return 0;

    bench::printBanner("Ablation (Section VI-E): replacement policy",
                       "paper: LRU (default) vs Random vs LFU -- "
                       "ScratchPipe is robust to the choice");

    metrics::TablePrinter table({"locality", "policy", "hit_rate",
                                 "cycle_ms", "vs_LRU"});

    for (auto locality : data::kAllLocalities) {
        const bench::Workload workload = bench::makeWorkload(locality);
        double lru_cycle = 0.0;
        for (auto policy :
             {cache::PolicyKind::Lru, cache::PolicyKind::Lfu,
              cache::PolicyKind::Random, cache::PolicyKind::Fifo}) {
            const auto result = workload.run(
                std::string("scratchpipe:cache=0.10,policy=") +
                cache::policyName(policy));
            if (policy == cache::PolicyKind::Lru)
                lru_cycle = result.seconds_per_iteration;
            table.addRow(
                {data::localityName(locality), cache::policyName(policy),
                 metrics::TablePrinter::num(100.0 * result.hit_rate, 1) +
                     "%",
                 bench::ms(result.seconds_per_iteration),
                 metrics::TablePrinter::num(
                     result.seconds_per_iteration / lru_cycle, 3) + "x"});
        }
    }

    table.print(std::cout);
    std::cout << "\npaper shape check: policy choice moves the hit rate "
                 "slightly but never the conclusion -- the always-hit "
                 "guarantee and pipeline structure dominate.\n";
    return 0;
}
