/**
 * @file
 * Figure 15(b): sensitivity to the number of embedding-table lookups
 * per sample (1 / 20 / 50). Speedups normalized to the static cache
 * at the same configuration (10% cache).
 */

#include <iostream>
#include <vector>

#include "common/workload.h"
#include "metrics/table_printer.h"

using namespace sp;

int
main(int argc, char **argv)
{
    if (!bench::parseStandardArgs(
            argc, argv, "fig15b: paper reproduction bench"))
        return 0;

    bench::printBanner(
        "Figure 15(b): lookups-per-table sensitivity",
        "paper: Fig. 15(b) -- 1/20/50 gathers per table, speedup "
        "normalized to static cache (10%)");

    metrics::TablePrinter table({"locality", "lookups", "hybrid",
                                 "static", "strawman", "scratchpipe"});

    double sp_sum_50 = 0.0, sp_max_50 = 0.0;
    int points_50 = 0;

    for (auto locality : data::kAllLocalities) {
        for (size_t lookups : {1u, 20u, 50u}) {
            sys::ModelConfig model = sys::ModelConfig::paperDefault();
            model.trace.lookups_per_table = lookups;
            const bench::Workload workload =
                bench::makeWorkload(locality, &model);

            const double t_hybrid =
                workload.run("hybrid")
                    .seconds_per_iteration;
            const double t_static =
                workload.run("static:cache=0.10")
                    .seconds_per_iteration;
            const double t_straw =
                workload.run("strawman:cache=0.10")
                    .seconds_per_iteration;
            const double t_sp =
                workload.run("scratchpipe:cache=0.10")
                    .seconds_per_iteration;

            table.addRow(
                {data::localityName(locality), std::to_string(lookups),
                 metrics::TablePrinter::num(t_static / t_hybrid, 2),
                 "1.00",
                 metrics::TablePrinter::num(t_static / t_straw, 2),
                 metrics::TablePrinter::num(t_static / t_sp, 2)});
            if (lookups == 50) {
                sp_sum_50 += t_static / t_sp;
                sp_max_50 = std::max(sp_max_50, t_static / t_sp);
                ++points_50;
            }
        }
    }

    table.print(std::cout);
    std::cout << "\nScratchPipe at 50 lookups: avg "
              << metrics::TablePrinter::num(sp_sum_50 / points_50, 2)
              << "x, max "
              << metrics::TablePrinter::num(sp_max_50, 2)
              << "x   (paper: avg 3.7x, max 5.6x); at 1 lookup the "
                 "embedding layer stops being the bottleneck and gains "
                 "shrink.\n";
    return 0;
}
