# Golden-output regression check, run as a ctest:
#
#   cmake -DCMD=<binary> "-DARGS=<arg;list>" -DGOLDEN=<file> \
#         -DOUT=<file> -P RunGolden.cmake
#
# Executes CMD ARGS, captures stdout, and byte-compares it against the
# checked-in GOLDEN file. On mismatch the live output is written to
# OUT and the test fails with a pointer at the regen path. The outputs
# under test are deterministic by the engine's exact-equivalence
# contract (see tests/sys/parallel_determinism_test.cc), so any diff
# is a real behaviour change -- either a bug or an intentional change
# that must be re-blessed via tests/golden/regen.sh.

foreach(required CMD GOLDEN OUT)
    if(NOT DEFINED ${required})
        message(FATAL_ERROR "RunGolden.cmake: -D${required}= is required")
    endif()
endforeach()

execute_process(COMMAND ${CMD} ${ARGS}
                OUTPUT_VARIABLE live
                ERROR_VARIABLE errors
                RESULT_VARIABLE status)
if(NOT status EQUAL 0)
    message(FATAL_ERROR
            "golden command failed (exit ${status}): ${CMD}\n${errors}")
endif()

file(READ ${GOLDEN} golden)
if(NOT live STREQUAL golden)
    file(WRITE ${OUT} "${live}")
    message(FATAL_ERROR
            "output diverged from ${GOLDEN}\n"
            "live output saved to ${OUT}\n"
            "if the change is intentional, re-bless with: "
            "tests/golden/regen.sh <build-dir>")
endif()
