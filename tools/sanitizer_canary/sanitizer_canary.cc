/**
 * @file
 * Deliberately-broken canary proving each sanitizer job detects its
 * bug class. The tree itself is sanitizer-clean, so without a canary
 * a misconfigured job (sanitizer flag dropped, recover-and-continue
 * left on) would pass green while checking nothing. CTest runs these
 * modes under `sh -c "! ..."` -- the build is wired so the process
 * MUST die -- only when the matching SP_SANITIZE build is active:
 *
 *   heap-overflow    reads one element past a heap allocation
 *                    (AddressSanitizer: heap-buffer-overflow);
 *   signed-overflow  overflows a signed int (UBSan:
 *                    signed-integer-overflow; fatal because
 *                    SP_SANITIZE=undefined compiles with
 *                    -fno-sanitize-recover=all);
 *   ok               does nothing and exits 0 (harness sanity).
 *
 * Every faulting value is routed through argc/volatile so no
 * optimization level can fold the bug away.
 */

#include <cstring>
#include <iostream>
#include <limits>

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::cerr << "usage: " << argv[0]
                  << " heap-overflow|signed-overflow|ok\n";
        return 2;
    }

    if (std::strcmp(argv[1], "ok") == 0)
        return 0;

    if (std::strcmp(argv[1], "heap-overflow") == 0) {
        int *block = new int[8];
        for (int i = 0; i < 8; ++i)
            block[i] = i;
        // Index 7 + argc >= 8: one past the end for the plain
        // two-argument invocation.
        volatile int out_of_bounds = block[7 + argc];
        delete[] block;
        return out_of_bounds == 0 ? 0 : 1;
    }

    if (std::strcmp(argv[1], "signed-overflow") == 0) {
        volatile int near_max = std::numeric_limits<int>::max() - 1;
        volatile int overflowed = near_max + argc; // argc >= 2
        return overflowed == 0 ? 0 : 1;
    }

    std::cerr << argv[0] << ": unknown mode '" << argv[1] << "'\n";
    return 2;
}
