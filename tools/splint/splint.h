/**
 * @file
 * splint -- the project-specific lint layer.
 *
 * Generic tooling (clang-tidy, the sanitizer matrix) cannot see this
 * codebase's contracts, so splint enforces them as build-failing
 * diagnostics:
 *
 *   no-raw-thread       all parallelism goes through
 *                       sp::common::ThreadPool; a raw std::thread /
 *                       std::async / pthread anywhere else silently
 *                       escapes the SP_JOBS bound and the
 *                       bit-identical-to-serial execution contract.
 *   no-nondeterminism   simulation paths (src/sys, src/cache,
 *                       src/data) must be seed-deterministic: no
 *                       rand(), std::random_device, wall clocks, or
 *                       clock-seeded RNGs -- the golden-output and
 *                       determinism harnesses byte-compare results.
 *   hot-path-alloc      regions bracketed by
 *                       `// splint:hot-path-begin(<name>)` ...
 *                       `// splint:hot-path-end` (the controller's
 *                       classify loop, the probe kernels) must not
 *                       allocate, do stream IO, or plant an
 *                       SP_FAULT_POINT (even disarmed, a fault site
 *                       is a branch per call).
 *   hot-path-marker     the markers themselves must pair up.
 *   io-status           src/data reports environmental failures as
 *                       sp::Status / sp::Result (common/status.h),
 *                       never panic/exit/terminate (those are for
 *                       programmer errors, and need a justified
 *                       allow); and a Status-returning IO call
 *                       (saveTo/tryLoad/tryMapped/tryOpen) anywhere
 *                       in src/ must not be discarded as a bare
 *                       statement.
 *   kernel-registration every src/cache/probe_kernel_<arch>.cc TU
 *                       must be covered by the kernel-equivalence
 *                       harness's registration list.
 *   spec-doc            every spec key parsed in src/sys/spec.cc must
 *                       be documented in README.md.
 *
 * On top of the lexical rules, analyzeTree() runs the semantic pass:
 * a tree-wide symbol index (splint/index.h) feeds a call graph and an
 * include graph (splint/graph.h), and four transitive rules reason
 * across translation units:
 *
 *   hot-path-transitive-alloc  functions reachable from a call inside
 *                       a hot-path region must be allocation-free;
 *                       diagnostics carry the reachability trace.
 *   determinism-taint   nondeterminism sources outside the simulation
 *                       dirs must be unreachable from functions
 *                       defined in src/{sys,cache,data}.
 *   layering            includes follow the module dependency order
 *                       common -> {cache,data,emb,tensor} ->
 *                       {core,sim,nn,metrics} -> sys, and the include
 *                       graph is acyclic.
 *   fault-site-registry every SP_FAULT_POINT("site") literal is
 *                       registered in src/common/fault.cc, has a call
 *                       site, and is exercised by the FaultMatrix
 *                       chaos test.
 *
 * Violations are suppressed per line with
 * `// splint:allow(<rule>): <justification>` on the same or the
 * preceding line; the justification is mandatory (allow-justification
 * fires otherwise) and the rule id must exist (allow-unknown-rule).
 * The transitive alloc/nondet rules also accept an allow for their
 * direct counterpart (hot-path-alloc, no-nondeterminism), so one
 * directive covers both views of a site.
 *
 * The rule table is data (id, severity, summary, fixit); the scanner
 * (splint/lexer.h) strips comments and string literals -- including
 * raw strings and line splices -- before matching so prose about
 * std::thread never trips the lint.
 */

#ifndef SP_TOOLS_SPLINT_H
#define SP_TOOLS_SPLINT_H

#include <filesystem>
#include <iosfwd>
#include <string>
#include <vector>

namespace sp::splint
{

struct SymbolIndex; // splint/index.h

enum class Severity
{
    Error,
    Warning,
};

/** Spelling used in text and JSON reports. */
const char *severityName(Severity severity);

/** One row of the rule table. */
struct Rule
{
    const char *id;       //!< stable diagnostic id, e.g. "no-raw-thread"
    Severity severity;    //!< errors fail the splint_tree gate
    const char *summary;  //!< what the rule enforces
    const char *fixit;    //!< how to fix (or legitimately allow) a hit
};

/** The full rule table, in reporting order. */
const std::vector<Rule> &rules();

/** Look up a rule by id; nullptr when unknown. */
const Rule *findRule(const std::string &id);

/** One reported violation. */
struct Diagnostic
{
    std::string file;     //!< root-relative path (forward slashes)
    size_t line = 0;      //!< 1-based; 0 for whole-project rules
    std::string rule;     //!< rule id
    Severity severity = Severity::Error;
    std::string message;
    std::string fixit;
};

/**
 * Run every line-scoped rule over one file. `path` must be the
 * root-relative path (e.g. "src/sys/spec.cc"); it decides which rules
 * apply. Project-wide rules (kernel-registration, spec-doc) only run
 * from lintTree.
 */
std::vector<Diagnostic> lintSource(const std::string &path,
                                   const std::string &text);

/**
 * Lint the tree rooted at `root`: every .cc/.h/.cpp under src/,
 * bench/ and tests/ through the line rules, then the project-wide
 * rules. Missing subtrees are skipped (fixture trees are partial).
 */
std::vector<Diagnostic> lintTree(const std::filesystem::path &root);

/**
 * Run the semantic pass over the tree rooted at `root`: build the
 * symbol index (splint/index.h) and evaluate the transitive rules
 * (hot-path-transitive-alloc, determinism-taint, layering,
 * fault-site-registry) over its graphs.
 */
std::vector<Diagnostic> analyzeTree(const std::filesystem::path &root);

/** Same, over an index the caller already built (shared with
 *  --dump-graph so one invocation indexes the tree once). */
std::vector<Diagnostic> analyzeIndex(const std::filesystem::path &root,
                                     const SymbolIndex &index);

/** Canonical report order: (file, line, rule, message). Applied by
 *  lintTree/analyzeTree so output is byte-stable across filesystem
 *  traversal orders. */
void sortDiagnostics(std::vector<Diagnostic> &diagnostics);

/** True if any diagnostic is an error (the gate condition). */
bool hasErrors(const std::vector<Diagnostic> &diagnostics);

/** Human-readable report, one diagnostic per line plus a summary. */
std::string toText(const std::vector<Diagnostic> &diagnostics);

/**
 * Machine-readable report:
 * {"tool":"splint","schema_version":2,"count":N,"violations":
 * [{file,line,rule,severity,message,fixit}...]} -- the schema
 * asserted by the JSON report test.
 */
std::string toJson(const std::vector<Diagnostic> &diagnostics);

/**
 * Prove every rule fires: lint the committed fixture files under
 * `fixtures` (bad ones must produce exactly their expected rules,
 * clean ones nothing) and check each table rule triggered at least
 * once. Failures are described on `log`; returns overall success.
 */
bool selfTest(const std::filesystem::path &fixtures, std::ostream &log);

} // namespace sp::splint

#endif // SP_TOOLS_SPLINT_H
