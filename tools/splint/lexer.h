/**
 * @file
 * The splint source lexer: splits C++ source into per-line channels
 * so rules and the symbol index never confuse code with prose.
 *
 * Three channels per physical line:
 *
 *   code                real tokens only -- comments dropped, the
 *                       contents of string/char literals blanked
 *                       (the delimiting quotes remain). Rule regexes
 *                       and the symbol-index parser read this.
 *   comment             the comment text. splint directives
 *                       (splint:allow, hot-path markers) are honored
 *                       here and nowhere else.
 *   code_with_literals  code plus the literal contents (comments
 *                       still dropped) -- for checks that must read
 *                       strings: #include targets, spec keys,
 *                       SP_FAULT_POINT site names.
 *
 * The lexer understands raw string literals (R"delim(...)delim",
 * including multi-line bodies and embedded quotes/backslashes) and
 * line-continuation splices (a trailing backslash continues a //
 * comment or an ordinary string literal onto the next physical
 * line), so neither can leak literal content into the code channel.
 */

#ifndef SP_TOOLS_SPLINT_LEXER_H
#define SP_TOOLS_SPLINT_LEXER_H

#include <string>
#include <vector>

namespace sp::splint
{

/** One scanned source line, split into the three channels. */
struct ScannedLine
{
    std::string code;
    std::string comment;
    std::string code_with_literals;
};

/** Lex `text` into per-line channel splits. Block-comment, raw-string
 *  and spliced-line state carries across physical lines. */
std::vector<ScannedLine> scanLines(const std::string &text);

} // namespace sp::splint

#endif // SP_TOOLS_SPLINT_LEXER_H
