/**
 * @file
 * Pass 2 of the semantic analyzer: the transitive rules that run over
 * the symbol index and its graphs.
 *
 *   hot-path-transitive-alloc  every function reachable from a call
 *                              inside a splint:hot-path-begin region
 *                              must be allocation-free; the diagnostic
 *                              carries the reachability trace. Hits
 *                              inside a hot region itself belong to
 *                              the direct hot-path-alloc rule.
 *   determinism-taint          nondeterminism sources must be
 *                              unreachable from functions defined in
 *                              the simulation dirs (src/sys, src/cache,
 *                              src/data). Sources *inside* those dirs
 *                              are the lexical no-nondeterminism
 *                              rule's to report.
 *   layering                   includes must follow the module order
 *                              (see layerOrderText()) and the include
 *                              graph must be acyclic.
 *   fault-site-registry        every SP_FAULT_POINT("site") literal is
 *                              registered in src/common/fault.cc,
 *                              every registered site has a call site,
 *                              and every registered site is exercised
 *                              by the FaultMatrix chaos test.
 *
 * Suppression: a justified splint:allow on the diagnostic's anchor
 * line (or the line above). The transitive alloc/nondet rules also
 * honor allows for their direct counterparts, so one directive covers
 * a site that both a lexical and a transitive rule would flag. An
 * allow for a transitive rule placed on a *call-site* line severs
 * that edge for the rule's traversal -- the escape hatch when the
 * overload-conservative resolver mistakes e.g. an atomic's .load()
 * for a project function named load, which would otherwise drag a
 * whole false subtree into the reachable set.
 */

#include <algorithm>
#include <fstream>
#include <map>
#include <optional>
#include <regex>
#include <set>
#include <sstream>

#include "splint/graph.h"
#include "splint/index.h"
#include "splint/lexer.h"
#include "splint/splint.h"

namespace sp::splint
{

namespace fs = std::filesystem;

namespace
{

Diagnostic
makeDiagnostic(const std::string &path, size_t line,
               const std::string &rule_id, const std::string &message)
{
    const Rule *rule = findRule(rule_id);
    Diagnostic diag;
    diag.file = path;
    diag.line = line;
    diag.rule = rule_id;
    diag.severity = rule != nullptr ? rule->severity : Severity::Error;
    diag.message = message;
    diag.fixit = rule != nullptr ? rule->fixit : "";
    return diag;
}

std::optional<std::string>
readFile(const fs::path &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return std::nullopt;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

bool
simulationDir(const std::string &path)
{
    return path.rfind("src/sys/", 0) == 0 ||
           path.rfind("src/cache/", 0) == 0 ||
           path.rfind("src/data/", 0) == 0;
}

/** Allow check that accepts either the transitive rule or its direct
 *  counterpart, so one directive suppresses both views of a site. */
bool
allowedEither(const FileIndex &fi, size_t line, const char *rule,
              const char *counterpart)
{
    return fi.allowedAt(line, rule) ||
           (counterpart != nullptr && fi.allowedAt(line, counterpart));
}

/** Edge filter for reach(): a justified allow for `rule` on the
 *  call-site line severs the edge (see the file comment). */
std::function<bool(size_t, const CallEdge &)>
severedBy(const SymbolIndex &index, const char *rule)
{
    return [&index, rule](size_t caller, const CallEdge &edge) {
        const FileIndex &fi =
            index.files.at(index.functions[caller].file);
        return fi.allowedAt(edge.line, rule);
    };
}

// ---- hot-path-transitive-alloc -------------------------------------

void
ruleHotPathTransitiveAlloc(const SymbolIndex &index,
                           const CallGraph &graph,
                           std::vector<Diagnostic> &diagnostics)
{
    struct Origin
    {
        std::string file; //!< file holding the hot region
        size_t line = 0;  //!< hot call site
    };
    std::vector<size_t> seeds;
    std::map<size_t, Origin> origins;
    for (size_t f = 0; f < index.functions.size(); ++f) {
        const FunctionInfo &fn = index.functions[f];
        for (const CallSite &call : fn.calls) {
            if (!call.in_hot_region)
                continue;
            // A justified allow on the hot call site severs the seed,
            // same as it severs interior edges.
            if (index.files.at(fn.file).allowedAt(
                    call.line, "hot-path-transitive-alloc"))
                continue;
            for (const size_t callee : index.resolveCall(call)) {
                if (origins.count(callee) != 0)
                    continue;
                origins[callee] = {fn.file, call.line};
                seeds.push_back(callee);
            }
        }
    }
    if (seeds.empty())
        return;

    const CallGraph::Reach reach = graph.reach(
        seeds, severedBy(index, "hot-path-transitive-alloc"));
    std::set<std::pair<std::string, size_t>> reported;
    for (const size_t f : reach.order) {
        const FunctionInfo &fn = index.functions[f];
        const FileIndex &fi = index.files.at(fn.file);
        for (const TokenHit &hit : fn.allocs) {
            if (fi.inHotRegion(hit.line))
                continue; // the direct hot-path-alloc rule owns it
            if (allowedEither(fi, hit.line, "hot-path-transitive-alloc",
                              "hot-path-alloc"))
                continue;
            if (!reported.insert({fn.file, hit.line}).second)
                continue;
            // Walk the parent chain to the seed to name the region.
            size_t seed = f;
            while (reach.parent[seed] != SymbolIndex::npos)
                seed = reach.parent[seed];
            const Origin &origin = origins.at(seed);
            diagnostics.push_back(makeDiagnostic(
                fn.file, hit.line, "hot-path-transitive-alloc",
                "'" + hit.token + "' in " + fn.qualified +
                    " is reachable from the hot-path call at " +
                    origin.file + ":" + std::to_string(origin.line) +
                    " via " + graph.trace(reach, f)));
        }
    }
}

// ---- determinism-taint ---------------------------------------------

void
ruleDeterminismTaint(const SymbolIndex &index, const CallGraph &graph,
                     std::vector<Diagnostic> &diagnostics)
{
    std::vector<size_t> entries;
    for (size_t f = 0; f < index.functions.size(); ++f)
        if (simulationDir(index.functions[f].file))
            entries.push_back(f);
    if (entries.empty())
        return;

    const CallGraph::Reach reach =
        graph.reach(entries, severedBy(index, "determinism-taint"));
    std::set<std::pair<std::string, size_t>> reported;
    for (const size_t f : reach.order) {
        const FunctionInfo &fn = index.functions[f];
        if (simulationDir(fn.file))
            continue; // the lexical no-nondeterminism rule's scope
        const FileIndex &fi = index.files.at(fn.file);
        for (const TokenHit &hit : fn.nondet) {
            if (allowedEither(fi, hit.line, "determinism-taint",
                              "no-nondeterminism"))
                continue;
            if (!reported.insert({fn.file, hit.line}).second)
                continue;
            // Walk up to the entry function that reached this one.
            size_t entry = f;
            while (reach.parent[entry] != SymbolIndex::npos)
                entry = reach.parent[entry];
            diagnostics.push_back(makeDiagnostic(
                fn.file, hit.line, "determinism-taint",
                "'" + hit.token + "' in " + fn.qualified +
                    " is reachable from simulation entry " +
                    index.functions[entry].qualified + " (" +
                    index.functions[entry].file + ") via " +
                    graph.trace(reach, f)));
        }
    }
}

// ---- layering ------------------------------------------------------

void
ruleLayering(const SymbolIndex &index, std::vector<Diagnostic> &diagnostics)
{
    for (const auto &[path, fi] : index.files) {
        const std::string module = moduleOf(path);
        const int layer = layerOfModule(module);
        if (layer < 0)
            continue;
        for (const IncludeEdge &edge : fi.includes) {
            const std::string target_module = moduleOf(edge.target);
            if (target_module.empty() || target_module == module)
                continue;
            const int target_layer = layerOfModule(target_module);
            if (target_layer <= layer)
                continue; // downward or same-layer peer: fine
            if (fi.allowedAt(edge.line, "layering"))
                continue;
            diagnostics.push_back(makeDiagnostic(
                path, edge.line, "layering",
                "include of " + edge.target + " (module '" +
                    target_module + "', layer " +
                    std::to_string(target_layer) + ") from module '" +
                    module + "' (layer " + std::to_string(layer) +
                    ") points up the dependency order " +
                    layerOrderText()));
        }
    }

    const IncludeGraph includes = IncludeGraph::build(index);
    const std::vector<std::string> cycle = includes.findCycle();
    if (cycle.empty())
        return;
    // Anchor the diagnostic at the first file's edge into the cycle.
    const FileIndex &fi = index.files.at(cycle[0]);
    size_t line = 0;
    for (const IncludeEdge &edge : fi.includes)
        if (edge.target == cycle[1])
            line = edge.line;
    if (fi.allowedAt(line, "layering"))
        return;
    std::string text;
    for (size_t i = 0; i < cycle.size(); ++i)
        text += (i > 0 ? " -> " : "") + cycle[i];
    diagnostics.push_back(makeDiagnostic(
        cycle[0], line, "layering", "include cycle: " + text));
}

// ---- fault-site-registry -------------------------------------------

void
ruleFaultSiteRegistry(const fs::path &root, const SymbolIndex &index,
                      std::vector<Diagnostic> &diagnostics)
{
    const char *registry_path = "src/common/fault.cc";
    const char *matrix_path = "tests/common/fault_injection_test.cc";
    const std::optional<std::string> registry_text =
        readFile(root / registry_path);
    if (!registry_text.has_value())
        return; // no registry in this tree: nothing to cross-check

    // Site names are dotted lowercase literals; nothing else in the
    // registry file (messages, qualified names) matches the shape.
    static const std::regex site_pattern(
        R"re("([a-z0-9_]+(?:\.[a-z0-9_]+)+)")re");
    std::map<std::string, size_t> registry; // site -> line in fault.cc
    const std::vector<ScannedLine> lines = scanLines(*registry_text);
    for (size_t i = 0; i < lines.size(); ++i) {
        const std::string &text = lines[i].code_with_literals;
        auto begin =
            std::sregex_iterator(text.begin(), text.end(), site_pattern);
        for (auto it = begin; it != std::sregex_iterator(); ++it)
            registry.emplace((*it)[1].str(), i + 1);
    }

    const std::optional<std::string> matrix_text =
        readFile(root / matrix_path);
    const auto exercised = [&](const std::string &site) {
        return matrix_text.has_value() &&
               matrix_text->find('"' + site + '"') != std::string::npos;
    };

    // Forward check: every call site names a registered site.
    std::set<std::string> used;
    for (const auto &[path, fi] : index.files) {
        if (path == registry_path)
            continue;
        for (const FaultPoint &point : fi.fault_points) {
            used.insert(point.site);
            if (registry.count(point.site) != 0)
                continue;
            if (fi.allowedAt(point.line, "fault-site-registry"))
                continue;
            diagnostics.push_back(makeDiagnostic(
                path, point.line, "fault-site-registry",
                "SP_FAULT_POINT(\"" + point.site +
                    "\") is not registered in " + registry_path));
        }
    }

    // Reverse checks: a registered site must have a call site and be
    // exercised by the FaultMatrix test.
    const auto registry_index = index.files.find(registry_path);
    const auto allowed_in_registry = [&](size_t line) {
        return registry_index != index.files.end() &&
               registry_index->second.allowedAt(line,
                                                "fault-site-registry");
    };
    for (const auto &[site, line] : registry) {
        if (allowed_in_registry(line))
            continue;
        if (used.count(site) == 0)
            diagnostics.push_back(makeDiagnostic(
                registry_path, line, "fault-site-registry",
                "registered fault site '" + site +
                    "' has no SP_FAULT_POINT call site in src/"));
        if (!exercised(site))
            diagnostics.push_back(makeDiagnostic(
                registry_path, line, "fault-site-registry",
                "registered fault site '" + site +
                    "' is not exercised by the FaultMatrix scenarios "
                    "in " +
                    matrix_path));
    }
}

} // namespace

// ---- Entry point ---------------------------------------------------

std::vector<Diagnostic>
analyzeIndex(const fs::path &root, const SymbolIndex &index)
{
    std::vector<Diagnostic> diagnostics;
    const CallGraph graph = CallGraph::build(index);
    ruleHotPathTransitiveAlloc(index, graph, diagnostics);
    ruleDeterminismTaint(index, graph, diagnostics);
    ruleLayering(index, diagnostics);
    ruleFaultSiteRegistry(root, index, diagnostics);
    sortDiagnostics(diagnostics);
    return diagnostics;
}

std::vector<Diagnostic>
analyzeTree(const fs::path &root)
{
    return analyzeIndex(root, buildIndex(root));
}

} // namespace sp::splint
