#include "splint/index.h"

#include <algorithm>
#include <fstream>
#include <optional>
#include <regex>
#include <sstream>

#include "splint/lexer.h"

namespace sp::splint
{

namespace fs = std::filesystem;

// Shared token sets: the transitive graph rules and the direct
// lexical rules must agree on what counts as an allocation or a
// nondeterminism source, so both read these patterns.
const std::regex &
allocTokenPattern()
{
    static const std::regex pattern(
        R"(\bstd\s*::\s*(cout|cerr|clog)\b|\bf?printf\s*\()"
        R"(|\bnew\b|\bmalloc\s*\(|\bcalloc\s*\()"
        R"(|\bmake_(shared|unique)\b)"
        R"(|\b(push_back|emplace_back|resize|reserve)\s*\()"
        R"(|\bSP_FAULT_POINT\s*\()");
    return pattern;
}

const std::regex &
nondetTokenPattern()
{
    static const std::regex pattern(
        R"(\bstd\s*::\s*random_device\b|\brandom_device\s*\{)"
        R"(|\bs?rand\s*\(|\btime\s*\(\s*(nullptr|NULL|0)?\s*\))"
        R"(|\b(steady|system|high_resolution)_clock\b)");
    return pattern;
}

namespace
{

// ---- Tokenizer -----------------------------------------------------

struct Tok
{
    std::string text;
    size_t line = 0; //!< 1-based
    bool ident = false;
};

bool
isIdentStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/** First non-space char of `s`, or '\0'. */
char
firstChar(const std::string &s)
{
    for (const char c : s)
        if (c != ' ' && c != '\t')
            return c;
    return '\0';
}

bool
endsWithBackslash(const std::string &s)
{
    for (size_t i = s.size(); i > 0; --i) {
        const char c = s[i - 1];
        if (c == ' ' || c == '\t')
            continue;
        return c == '\\';
    }
    return false;
}

/**
 * Tokenize the code channel: identifiers, `::` and `->` as single
 * tokens, everything else one char at a time. Preprocessor lines
 * (and their backslash continuations) produce no tokens -- macro
 * bodies are not code the compiler runs here -- but `#include "..."`
 * targets are captured into `fi`.
 */
std::vector<Tok>
tokenize(const std::vector<ScannedLine> &lines, FileIndex &fi,
         bool record_includes)
{
    static const std::regex include_pattern(
        R"re(^\s*#\s*include\s*"([^"]+)")re");

    std::vector<Tok> toks;
    bool in_preproc = false;
    for (size_t li = 0; li < lines.size(); ++li) {
        const std::string &code = lines[li].code;
        const bool continues = endsWithBackslash(code);
        if (in_preproc) {
            in_preproc = continues;
            continue;
        }
        if (firstChar(code) == '#') {
            std::smatch match;
            if (record_includes &&
                std::regex_search(lines[li].code_with_literals, match,
                                  include_pattern))
                fi.includes.push_back({match[1].str(), li + 1});
            in_preproc = continues;
            continue;
        }
        for (size_t i = 0; i < code.size();) {
            const char c = code[i];
            if (c == ' ' || c == '\t' || c == '\r') {
                ++i;
            } else if (isIdentStart(c)) {
                size_t j = i + 1;
                while (j < code.size() && isIdentChar(code[j]))
                    ++j;
                toks.push_back({code.substr(i, j - i), li + 1, true});
                i = j;
            } else if (std::isdigit(static_cast<unsigned char>(c))) {
                // Numbers (incl. hex floats like 0x1.0p-53): consumed
                // and dropped; nothing downstream reads them.
                size_t j = i + 1;
                while (j < code.size() &&
                       (isIdentChar(code[j]) || code[j] == '.' ||
                        ((code[j] == '+' || code[j] == '-') &&
                         (code[j - 1] == 'e' || code[j - 1] == 'E' ||
                          code[j - 1] == 'p' || code[j - 1] == 'P'))))
                    ++j;
                i = j;
            } else if (c == ':' && i + 1 < code.size() &&
                       code[i + 1] == ':') {
                toks.push_back({"::", li + 1, false});
                i += 2;
            } else if (c == '-' && i + 1 < code.size() &&
                       code[i + 1] == '>') {
                toks.push_back({"->", li + 1, false});
                i += 2;
            } else {
                toks.push_back({std::string(1, c), li + 1, false});
                ++i;
            }
        }
    }
    return toks;
}

// ---- Directive and literal scanning --------------------------------

void
scanDirectives(const std::vector<ScannedLine> &lines, FileIndex &fi)
{
    static const std::regex allow_pattern(
        R"(splint:allow\(([A-Za-z0-9_-]+)\)(:\s*(\S.*))?)");
    static const std::regex begin_pattern(
        R"(splint:hot-path-begin(\(([A-Za-z0-9_-]+)\))?)");
    static const std::regex end_pattern(R"(splint:hot-path-end\b)");

    bool in_hot = false;
    HotRegion open;
    for (size_t i = 0; i < lines.size(); ++i) {
        const std::string &comment = lines[i].comment;
        std::smatch match;
        if (std::regex_search(comment, match, allow_pattern))
            fi.allows[i + 1] = {match[1].str(), match[3].matched};
        if (std::regex_search(comment, match, begin_pattern)) {
            // Imbalance is the lexical hot-path-marker rule's job;
            // the index just keeps the outermost open region.
            if (!in_hot) {
                in_hot = true;
                open.name = match[2].matched ? match[2].str() : "";
                open.begin_line = i + 1;
            }
        } else if (std::regex_search(comment, match, end_pattern)) {
            if (in_hot) {
                open.end_line = i + 1;
                fi.hot_regions.push_back(open);
                in_hot = false;
            }
        }
    }
    if (in_hot) {
        open.end_line = lines.size();
        fi.hot_regions.push_back(open);
    }
}

void
scanFaultPoints(const std::vector<ScannedLine> &lines, FileIndex &fi)
{
    static const std::regex point_pattern(
        R"re(\bSP_FAULT_POINT\s*\(\s*"([^"\\]+)"\s*\))re");
    for (size_t i = 0; i < lines.size(); ++i) {
        const std::string &text = lines[i].code_with_literals;
        auto begin =
            std::sregex_iterator(text.begin(), text.end(), point_pattern);
        for (auto it = begin; it != std::sregex_iterator(); ++it)
            fi.fault_points.push_back({(*it)[1].str(), i + 1});
    }
}

// ---- Scope-tracking definition/call parser -------------------------

bool
isControlKeyword(const std::string &name)
{
    static const std::vector<std::string> keywords = {
        "if",       "for",     "while",    "switch",        "catch",
        "return",   "sizeof",  "alignof",  "decltype",      "defined",
        "assert",   "throw",   "alignas",  "static_assert", "typeid",
        "noexcept", "explicit"};
    return std::find(keywords.begin(), keywords.end(), name) !=
           keywords.end();
}

bool
isAttributeWord(const std::string &name)
{
    static const std::vector<std::string> words = {
        "final",      "alignas",    "nodiscard", "maybe_unused",
        "deprecated", "noreturn",   "packed",    "aligned",
        "likely",     "unlikely"};
    return std::find(words.begin(), words.end(), name) != words.end();
}

class FileParser
{
  public:
    FileParser(SymbolIndex &ix, FileIndex &fi, std::string path,
               std::vector<Tok> toks)
        : ix_(ix), fi_(fi), path_(std::move(path)), toks_(std::move(toks))
    {
    }

    void
    run()
    {
        for (size_t i = 0; i < toks_.size(); ++i) {
            const Tok &t = toks_[i];
            if (t.ident) {
                handleIdent(t);
                continue;
            }
            if (t.text == "::" && pending_ns_) {
                pending_ns_name_ += "::";
            } else if (t.text == "[") {
                ++bracket_depth_;
            } else if (t.text == "]") {
                if (bracket_depth_ > 0)
                    --bracket_depth_;
            } else if (t.text == "(") {
                i = handleOpenParen(i);
            } else if (t.text == "{") {
                pushBrace(t.line);
            } else if (t.text == "}") {
                popBrace(t.line);
            } else if (t.text == ";") {
                clearPending();
            }
        }
        // Force-close anything left open (truncated fixture files).
        const size_t last =
            toks_.empty() ? 1 : toks_.back().line;
        for (const Scope &scope : stack_)
            if (scope.kind == Scope::Fn &&
                ix_.functions[scope.fn].end_line == 0)
                ix_.functions[scope.fn].end_line = last;
    }

  private:
    struct Scope
    {
        enum Kind
        {
            Ns,
            Cls,
            Fn,
            Blk
        } kind;
        std::string name;
        size_t fn = SymbolIndex::npos;
    };

    void
    handleIdent(const Tok &t)
    {
        const std::string &w = t.text;
        if (w == "class" || w == "struct" || w == "union" ||
            w == "enum") {
            pending_class_ = true;
            return;
        }
        if (w == "namespace") {
            pending_ns_ = true;
            pending_ns_name_.clear();
            return;
        }
        if (pending_ns_) {
            pending_ns_name_ += w;
            return;
        }
        if (pending_class_ && pending_class_name_.empty() &&
            bracket_depth_ == 0 && !isAttributeWord(w))
            pending_class_name_ = w;
    }

    /** Returns the index to resume the main loop from. */
    size_t
    handleOpenParen(size_t open)
    {
        std::string chain;
        std::string name;
        if (!lookBackChain(open, chain, name))
            return open;
        if (isControlKeyword(name))
            return open;
        const size_t fn = currentFunction();
        if (fn != SymbolIndex::npos) {
            ix_.functions[fn].calls.push_back(
                {chain, name, toks_[open].line,
                 fi_.inHotRegion(toks_[open].line)});
            return open;
        }
        // Namespace/class scope: a candidate definition header.
        const size_t close = matchParen(open);
        if (close == SymbolIndex::npos)
            return open;
        const size_t brace = findBody(close);
        if (brace == SymbolIndex::npos)
            return close; // declaration: skip the parameter list
        // Definition: register and enter the body.
        FunctionInfo info;
        info.qualified = qualifiedName(chain);
        info.name = name;
        info.file = path_;
        info.line = toks_[open].line;
        const size_t id = ix_.functions.size();
        ix_.functions.push_back(std::move(info));
        clearPending();
        stack_.push_back({Scope::Fn, name, id});
        return brace; // its matching '}' pops the scope
    }

    /**
     * Walk back from the `(` at `open` over the identifier chain that
     * names the call or definition: `ident(::ident)*`, a possible
     * template argument list directly before the paren, `operator`
     * followed by its symbol spelling, and a destructor tilde.
     */
    bool
    lookBackChain(size_t open, std::string &chain, std::string &name)
    {
        if (open == 0)
            return false;
        size_t j = open - 1;
        // Skip one balanced template argument list: foo<T>(...)
        if (toks_[j].text == ">") {
            int depth = 1;
            size_t steps = 0;
            while (j > 0 && depth > 0 && ++steps < 64) {
                --j;
                if (toks_[j].text == ">")
                    ++depth;
                else if (toks_[j].text == "<")
                    --depth;
            }
            if (depth != 0 || j == 0)
                return false;
            --j;
        }
        std::vector<std::string> parts;
        if (toks_[j].ident) {
            parts.push_back(toks_[j].text);
        } else {
            // operator==, operator[], operator new...
            std::string syms;
            size_t k = j;
            size_t steps = 0;
            while (k > 0 && !toks_[k].ident && ++steps <= 3) {
                syms = toks_[k].text + syms;
                --k;
            }
            if (!(k < j && toks_[k].ident &&
                  toks_[k].text == "operator"))
                return false;
            parts.push_back("operator" + syms);
            j = k;
        }
        if (j > 0 && toks_[j - 1].text == "~") {
            parts.back() = "~" + parts.back();
            --j;
        }
        while (j >= 2 && toks_[j - 1].text == "::" &&
               toks_[j - 2].ident) {
            parts.insert(parts.begin(), toks_[j - 2].text);
            j -= 2;
        }
        name = parts.back();
        for (size_t k = 0; k < parts.size(); ++k)
            chain += (k > 0 ? "::" : "") + parts[k];
        return true;
    }

    /** Index of the `)` matching the `(` at `open`; npos if absent. */
    size_t
    matchParen(size_t open)
    {
        int depth = 0;
        for (size_t j = open; j < toks_.size(); ++j) {
            if (toks_[j].text == "(")
                ++depth;
            else if (toks_[j].text == ")" && --depth == 0)
                return j;
        }
        return SymbolIndex::npos;
    }

    /**
     * After a definition header's closing `)`: accept cv-qualifiers,
     * noexcept(...), a trailing return type and a member-initializer
     * list, looking for the body `{`. Returns its index, or npos when
     * this is a declaration (`;`, `= default`, a comma in a
     * declarator list...).
     */
    size_t
    findBody(size_t close)
    {
        static const std::vector<std::string> modifiers = {
            "const", "noexcept", "override", "final",
            "mutable", "volatile", "requires", "try"};
        size_t k = close + 1;
        bool in_trailer = false; // past `->` or `:`: scan to the brace
        int depth = 0;           // parens inside noexcept()/init list
        while (k < toks_.size()) {
            const Tok &t = toks_[k];
            if (t.text == "(") {
                ++depth;
            } else if (t.text == ")") {
                --depth;
            } else if (depth == 0) {
                if (t.text == "{") {
                    // Braced member init (`: a{0} {`) only occurs
                    // after an identifier; the body brace follows
                    // `)`, `}` or a type token. This codebase
                    // initializes with parens, so treat a `{` that
                    // directly follows an identifier inside a trailer
                    // as an init and skip it.
                    if (in_trailer && k > 0 && toks_[k - 1].ident &&
                        toks_[k - 1].text != "const" &&
                        toks_[k - 1].text != "noexcept") {
                        const size_t end = matchBrace(k);
                        if (end == SymbolIndex::npos)
                            return SymbolIndex::npos;
                        k = end;
                    } else {
                        return k;
                    }
                } else if (t.text == ";" || t.text == "=" ||
                           t.text == ",") {
                    return SymbolIndex::npos;
                } else if (t.text == "->" || t.text == ":") {
                    in_trailer = true;
                } else if (!in_trailer && t.ident &&
                           std::find(modifiers.begin(), modifiers.end(),
                                     t.text) == modifiers.end()) {
                    return SymbolIndex::npos;
                }
            }
            ++k;
        }
        return SymbolIndex::npos;
    }

    size_t
    matchBrace(size_t open)
    {
        int depth = 0;
        for (size_t j = open; j < toks_.size(); ++j) {
            if (toks_[j].text == "{")
                ++depth;
            else if (toks_[j].text == "}" && --depth == 0)
                return j;
        }
        return SymbolIndex::npos;
    }

    void
    pushBrace(size_t)
    {
        if (pending_ns_) {
            stack_.push_back({Scope::Ns,
                              pending_ns_name_.empty() ? "(anonymous)"
                                                       : pending_ns_name_,
                              SymbolIndex::npos});
        } else if (pending_class_ && !pending_class_name_.empty()) {
            stack_.push_back(
                {Scope::Cls, pending_class_name_, SymbolIndex::npos});
        } else {
            stack_.push_back({Scope::Blk, "", SymbolIndex::npos});
        }
        clearPending();
    }

    void
    popBrace(size_t line)
    {
        if (stack_.empty())
            return;
        const Scope top = stack_.back();
        stack_.pop_back();
        if (top.kind == Scope::Fn)
            ix_.functions[top.fn].end_line = line;
        clearPending();
    }

    size_t
    currentFunction() const
    {
        for (size_t i = stack_.size(); i > 0; --i)
            if (stack_[i - 1].kind == Scope::Fn)
                return stack_[i - 1].fn;
        return SymbolIndex::npos;
    }

    std::string
    qualifiedName(const std::string &chain) const
    {
        std::string out;
        for (const Scope &scope : stack_) {
            if (scope.kind != Scope::Ns && scope.kind != Scope::Cls)
                continue;
            if (scope.name == "(anonymous)")
                continue;
            out += scope.name + "::";
        }
        return out + chain;
    }

    void
    clearPending()
    {
        pending_ns_ = false;
        pending_ns_name_.clear();
        pending_class_ = false;
        pending_class_name_.clear();
    }

    SymbolIndex &ix_;
    FileIndex &fi_;
    std::string path_;
    std::vector<Tok> toks_;
    std::vector<Scope> stack_;
    bool pending_ns_ = false;
    std::string pending_ns_name_;
    bool pending_class_ = false;
    std::string pending_class_name_;
    int bracket_depth_ = 0;
};

/** Attribute per-line regex hits to the innermost covering function. */
void
attributeTokenHits(SymbolIndex &ix, const std::string &path,
                   const std::vector<ScannedLine> &lines,
                   size_t first_fn)
{
    std::vector<std::pair<size_t, size_t>> spans; // fn id, by start line
    for (size_t f = first_fn; f < ix.functions.size(); ++f)
        if (ix.functions[f].file == path)
            spans.emplace_back(ix.functions[f].line, f);
    if (spans.empty())
        return;
    std::sort(spans.begin(), spans.end());

    const auto covering = [&](size_t line) -> size_t {
        size_t found = SymbolIndex::npos;
        for (const auto &[start, f] : spans) {
            if (start > line)
                break;
            if (ix.functions[f].end_line >= line)
                found = f;
        }
        return found;
    };

    for (size_t i = 0; i < lines.size(); ++i) {
        const std::string &code = lines[i].code;
        if (code.empty())
            continue;
        for (const auto *pattern :
             {&allocTokenPattern(), &nondetTokenPattern()}) {
            auto begin =
                std::sregex_iterator(code.begin(), code.end(), *pattern);
            if (begin == std::sregex_iterator())
                continue;
            const size_t f = covering(i + 1);
            if (f == SymbolIndex::npos)
                continue;
            for (auto it = begin; it != std::sregex_iterator(); ++it) {
                TokenHit hit{i + 1, it->str()};
                if (pattern == &allocTokenPattern())
                    ix.functions[f].allocs.push_back(hit);
                else
                    ix.functions[f].nondet.push_back(hit);
            }
        }
    }
}

std::optional<std::string>
readFile(const fs::path &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return std::nullopt;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

} // namespace

// ---- FileIndex -----------------------------------------------------

bool
FileIndex::inHotRegion(size_t line) const
{
    for (const HotRegion &region : hot_regions)
        if (line >= region.begin_line && line <= region.end_line)
            return true;
    return false;
}

bool
FileIndex::allowedAt(size_t line, const std::string &rule) const
{
    for (const size_t candidate : {line, line - 1}) {
        if (candidate == 0 || candidate > line)
            continue;
        const auto it = allows.find(candidate);
        if (it != allows.end() && it->second.rule == rule &&
            it->second.justified)
            return true;
    }
    return false;
}

// ---- SymbolIndex ---------------------------------------------------

void
SymbolIndex::addSource(const std::string &path, const std::string &text)
{
    known_files.push_back(path);
    FileIndex &fi = files[path];
    fi.path = path;

    const std::vector<ScannedLine> lines = scanLines(text);
    const bool in_src = path.rfind("src/", 0) == 0;
    const bool in_tools = path.rfind("tools/", 0) == 0;

    scanDirectives(lines, fi);
    std::vector<Tok> toks = tokenize(lines, fi, in_src || in_tools);
    if (!in_src)
        return; // tools/: include edges only

    scanFaultPoints(lines, fi);
    const size_t first_fn = functions.size();
    FileParser(*this, fi, path, std::move(toks)).run();
    attributeTokenHits(*this, path, lines, first_fn);
}

void
SymbolIndex::finalize()
{
    by_name.clear();
    for (size_t f = 0; f < functions.size(); ++f)
        by_name[functions[f].name].push_back(f);

    std::vector<std::string> sorted = known_files;
    std::sort(sorted.begin(), sorted.end());
    const auto exists = [&](const std::string &p) {
        return std::binary_search(sorted.begin(), sorted.end(), p);
    };

    for (auto &[path, fi] : files) {
        const size_t slash = path.find_last_of('/');
        const std::string dir =
            slash == std::string::npos ? "" : path.substr(0, slash + 1);
        std::vector<IncludeEdge> resolved;
        for (IncludeEdge edge : fi.includes) {
            const std::string candidates[] = {
                "src/" + edge.target, "tools/" + edge.target,
                edge.target, dir + edge.target};
            bool found = false;
            for (const std::string &candidate : candidates) {
                if (exists(candidate)) {
                    edge.target = candidate;
                    found = true;
                    break;
                }
            }
            if (found)
                resolved.push_back(std::move(edge));
            // Unresolved targets are system/third-party headers.
        }
        fi.includes = std::move(resolved);
    }
}

size_t
SymbolIndex::findQualified(const std::string &qualified) const
{
    for (size_t f = 0; f < functions.size(); ++f)
        if (functions[f].qualified == qualified)
            return f;
    return npos;
}

std::vector<size_t>
SymbolIndex::resolveCall(const CallSite &call) const
{
    const auto it = by_name.find(call.name);
    if (it == by_name.end())
        return {};
    if (call.chain == call.name)
        return it->second; // bare name: the whole overload set
    // Qualified call: narrow to definitions whose qualified name ends
    // with the written chain (component-aligned).
    std::vector<size_t> out;
    for (const size_t f : it->second) {
        const std::string &q = functions[f].qualified;
        if (q == call.chain ||
            (q.size() > call.chain.size() + 2 &&
             q.compare(q.size() - call.chain.size(), std::string::npos,
                       call.chain) == 0 &&
             q.compare(q.size() - call.chain.size() - 2, 2, "::") == 0))
            out.push_back(f);
    }
    // A chain that matches nothing (e.g. an external namespace) still
    // resolves conservatively to the overload set by bare name.
    return out.empty() ? it->second : out;
}

SymbolIndex
buildIndex(const fs::path &root)
{
    SymbolIndex index;
    std::vector<fs::path> sources;
    for (const char *subtree : {"src", "tools"}) {
        const fs::path dir = root / subtree;
        if (!fs::is_directory(dir))
            continue;
        for (auto it = fs::recursive_directory_iterator(dir);
             it != fs::recursive_directory_iterator(); ++it) {
            // Fixture trees under tools/ are lint *test data*, not
            // sources of this tree; indexing them would graft their
            // hot regions and helpers onto the real graphs.
            if (it->is_directory() &&
                it->path().filename() == "fixtures") {
                it.disable_recursion_pending();
                continue;
            }
            if (!it->is_regular_file())
                continue;
            const std::string ext = it->path().extension().string();
            if (ext == ".cc" || ext == ".h" || ext == ".cpp")
                sources.push_back(it->path());
        }
    }
    std::sort(sources.begin(), sources.end());
    for (const fs::path &file : sources) {
        const std::optional<std::string> text = readFile(file);
        if (!text.has_value())
            continue;
        index.addSource(fs::relative(file, root).generic_string(),
                        *text);
    }
    index.finalize();
    return index;
}

} // namespace sp::splint
