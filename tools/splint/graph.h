/**
 * @file
 * Pass 2 substrate: the call graph and include graph derived from the
 * symbol index, plus reachability, cycle detection, the src/ layer
 * map, and the --dump-graph serializers.
 *
 * Everything here is deterministic: graphs are built from the sorted
 * index, BFS visits neighbors in index order, and the DFS for cycle
 * detection walks nodes in path order -- so dumps and diagnostics are
 * byte-stable across filesystem traversal orders.
 */

#ifndef SP_TOOLS_SPLINT_GRAPH_H
#define SP_TOOLS_SPLINT_GRAPH_H

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "splint/index.h"

namespace sp::splint
{

/** One resolved call edge out of a function. */
struct CallEdge
{
    size_t callee = 0; //!< index into SymbolIndex::functions
    size_t line = 0;   //!< call-site line in the caller
};

/** The resolved, overload-conservative call graph. */
struct CallGraph
{
    const SymbolIndex *index = nullptr;
    std::vector<std::vector<CallEdge>> out; //!< by caller function id

    static CallGraph build(const SymbolIndex &index);

    /** Result of a multi-seed BFS: parent edges for trace
     *  reconstruction and the deterministic visit order. */
    struct Reach
    {
        std::vector<bool> reached;
        std::vector<size_t> parent;      //!< npos for seeds
        std::vector<size_t> parent_line; //!< call line in the parent
        std::vector<size_t> order;       //!< BFS visit order
    };
    /**
     * Multi-seed BFS. `skip(caller, edge)` (optional) prunes an edge
     * before traversal -- the transitive rules use it to honor a
     * justified splint:allow placed on a *call-site* line, which
     * severs that edge for the rule: the escape hatch for the
     * name-based resolver mistaking e.g. an atomic's .load() for a
     * project function named load.
     */
    Reach
    reach(const std::vector<size_t> &seeds,
          const std::function<bool(size_t, const CallEdge &)> &skip =
              nullptr) const;

    /** Qualified-name path from the seed that reached `target`,
     *  e.g. "a::f -> b::g -> c::h". */
    std::string trace(const Reach &reach, size_t target) const;
};

/** The resolved #include graph over src/ and tools/. */
struct IncludeGraph
{
    //! includer path -> resolved edges (index order = include order)
    std::map<std::string, std::vector<IncludeEdge>> out;

    static IncludeGraph build(const SymbolIndex &index);

    /** First include cycle, as a path that starts and ends with the
     *  same file ("a.h -> b.h -> a.h"); empty when acyclic. The DFS
     *  walks files in sorted order, so the answer is stable. */
    std::vector<std::string> findCycle() const;
};

/** "src/<module>/..." -> "<module>"; empty for anything else. */
std::string moduleOf(const std::string &path);

/**
 * Layer of a src/ module in the dependency order
 *   common(0) -> cache,data,emb,tensor(1)
 *             -> core,sim,nn,metrics(2) -> sys(3);
 * -1 for unknown modules (never flagged).
 */
int layerOfModule(const std::string &module);

/** Human-readable spelling of the layer order, for diagnostics. */
const char *layerOrderText();

/** Graphviz dump: call edges and include edges in one digraph. */
std::string dumpDot(const SymbolIndex &index);

/** JSON dump (schema_version 2): functions with resolved call edges,
 *  include edges, hot regions and fault sites. */
std::string dumpJson(const SymbolIndex &index);

} // namespace sp::splint

#endif // SP_TOOLS_SPLINT_GRAPH_H
