/**
 * @file
 * Pass 1 of the semantic analyzer: a tree-wide symbol index built
 * from the lexer channels alone (no libclang).
 *
 * The index records, per translation unit:
 *
 *   - function and method *definitions* with qualified names
 *     (namespace and class scopes tracked by a brace-matching token
 *     parser over the comment-stripped code channel),
 *   - call sites inside each definition (the identifier chain before
 *     a `(`, control-flow keywords excluded), flagged when they sit
 *     inside a `splint:hot-path-begin/end` region,
 *   - allocation/stream-IO/fault-site token hits and nondeterminism
 *     token hits per definition (the same token sets the lexical
 *     rules use, so the transitive rules agree with the direct ones),
 *   - resolved `#include "..."` edges (src/ and tools/ scope),
 *   - `SP_FAULT_POINT("site")` literals,
 *   - hot-path regions and `splint:allow` directives, so graph rules
 *     honor suppressions at their anchor lines.
 *
 * Parsing is heuristic by design: it understands this codebase's
 * idiom (definitions open a brace; preprocessor lines are skipped;
 * lambdas attribute their bodies to the enclosing function). Known
 * blind spots -- operator() definitions, constructor calls spelled
 * only through make_unique<T> -- err conservative for the rules
 * built on top: a missed edge can only suppress a finding the direct
 * lexical rules still police at the definition site.
 */

#ifndef SP_TOOLS_SPLINT_INDEX_H
#define SP_TOOLS_SPLINT_INDEX_H

#include <cstddef>
#include <filesystem>
#include <map>
#include <regex>
#include <string>
#include <vector>

namespace sp::splint
{

/** The allocation/stream-IO/fault-site token set. Shared between the
 *  lexical hot-path-alloc rule and the transitive index so the two
 *  views of "allocates" cannot drift apart. */
const std::regex &allocTokenPattern();

/** The nondeterminism token set, shared the same way between
 *  no-nondeterminism and the determinism-taint index. */
const std::regex &nondetTokenPattern();

/** A rule token hit (allocation or nondeterminism source). */
struct TokenHit
{
    size_t line = 0; //!< 1-based
    std::string token;
};

/** One call site inside a function definition. */
struct CallSite
{
    std::string chain; //!< as written, e.g. "common::ThreadPool::global"
    std::string name;  //!< last chain component, e.g. "global"
    size_t line = 0;   //!< 1-based
    bool in_hot_region = false;
};

/** One indexed function/method definition. */
struct FunctionInfo
{
    std::string qualified; //!< e.g. "sp::core::ScratchPipeController::plan"
    std::string name;      //!< unqualified, e.g. "plan"
    std::string file;      //!< root-relative path
    size_t line = 0;       //!< 1-based line of the definition
    size_t end_line = 0;   //!< 1-based line of the closing brace
    std::vector<CallSite> calls;
    std::vector<TokenHit> allocs;
    std::vector<TokenHit> nondet;
};

/** A parsed `splint:allow(rule): why` directive. */
struct AllowSite
{
    std::string rule;
    bool justified = false;
};

/** A resolved include edge. */
struct IncludeEdge
{
    std::string target; //!< root-relative path of the included file
    size_t line = 0;    //!< 1-based line of the #include
};

/** One SP_FAULT_POINT("site") literal. */
struct FaultPoint
{
    std::string site;
    size_t line = 0; //!< 1-based
};

/** A `splint:hot-path-begin(name)` ... `end` region. */
struct HotRegion
{
    std::string name;
    size_t begin_line = 0; //!< 1-based, inclusive
    size_t end_line = 0;   //!< 1-based, inclusive
};

/** Per-file facts that are not tied to one function. */
struct FileIndex
{
    std::string path;
    std::vector<IncludeEdge> includes;
    std::vector<FaultPoint> fault_points;
    std::vector<HotRegion> hot_regions;
    std::map<size_t, AllowSite> allows; //!< 1-based line -> directive

    /** True if `line` (1-based) lies inside a hot-path region. */
    bool inHotRegion(size_t line) const;
    /** True if a justified allow for `rule` sits on `line` or the
     *  line above (the same placement the lexical rules honor). */
    bool allowedAt(size_t line, const std::string &rule) const;
};

/** The whole-tree index. */
struct SymbolIndex
{
    std::vector<FunctionInfo> functions;
    //! unqualified name -> indices into `functions`
    std::map<std::string, std::vector<size_t>> by_name;
    //! root-relative path -> per-file facts
    std::map<std::string, FileIndex> files;
    //! every repo-relative source path seen (for include resolution)
    std::vector<std::string> known_files;

    /**
     * Index one source file. `path` is root-relative with forward
     * slashes; it scopes which facts are recorded (functions/calls/
     * token hits and fault points from src/ only; includes from src/
     * and tools/). Call finalize() after the last addSource.
     */
    void addSource(const std::string &path, const std::string &text);

    /** Build by_name and resolve include targets against known_files. */
    void finalize();

    /** Find a definition by exact qualified name; npos when absent. */
    size_t findQualified(const std::string &qualified) const;

    /**
     * Resolve a call: a multi-component chain matches definitions
     * whose qualified name ends with the chain (method/namespace
     * qualifiers narrow the overload set); a bare name matches every
     * definition with that unqualified name (overload-conservative).
     */
    std::vector<size_t> resolveCall(const CallSite &call) const;

    static constexpr size_t npos = static_cast<size_t>(-1);
};

/**
 * Walk `root` and index every .cc/.h/.cpp under src/ and tools/
 * (sorted traversal, so the index -- and everything derived from it
 * -- is byte-stable across filesystem orders). Missing subtrees are
 * skipped: fixture trees are partial.
 */
SymbolIndex buildIndex(const std::filesystem::path &root);

} // namespace sp::splint

#endif // SP_TOOLS_SPLINT_INDEX_H
