#include "splint/lexer.h"

#include <cctype>

namespace sp::splint
{

namespace
{

/** True if `code` ends with a raw-string prefix (R, u8R, uR, UR, LR)
 *  that is not the tail of a longer identifier -- i.e. the `"` that
 *  follows opens a raw string literal. */
bool
endsWithRawPrefix(const std::string &code)
{
    size_t n = code.size();
    if (n == 0 || code[n - 1] != 'R')
        return false;
    size_t start = n - 1; // first char of the prefix
    if (start > 0) {
        const char p = code[start - 1];
        if (p == 'u' || p == 'U' || p == 'L') {
            start -= 1;
        } else if (p == '8' && start > 1 && code[start - 2] == 'u') {
            start -= 2;
        }
    }
    if (start == 0)
        return true;
    const char before = code[start - 1];
    return !(std::isalnum(static_cast<unsigned char>(before)) ||
             before == '_');
}

} // namespace

std::vector<ScannedLine>
scanLines(const std::string &text)
{
    enum class Mode
    {
        Code,
        LineComment,
        BlockComment,
        String,
        Char,
        RawStringDelim, //!< between R" and the opening (
        RawString,      //!< inside the raw body, until )delim"
    };

    std::vector<ScannedLine> lines;
    ScannedLine current;
    Mode mode = Mode::Code;
    bool escaped = false;
    std::string raw_delim;      // delimiter of the open raw string
    std::string raw_terminator; // ")" + raw_delim + "\""
    std::string raw_tail;       // rolling suffix matched vs terminator

    for (size_t i = 0; i < text.size(); ++i) {
        const char c = text[i];
        const char next = i + 1 < text.size() ? text[i + 1] : '\0';
        if (c == '\n') {
            const bool comment_spliced =
                mode == Mode::LineComment && !current.comment.empty() &&
                current.comment.back() == '\\';
            const bool literal_spliced =
                (mode == Mode::String || mode == Mode::Char) && escaped;
            lines.push_back(std::move(current));
            current = {};
            if (mode == Mode::LineComment && !comment_spliced)
                mode = Mode::Code;
            // An unterminated non-raw literal does not occur in code
            // that compiles (a splice keeps it open legitimately);
            // reset so one bad fixture line cannot swallow the file.
            if ((mode == Mode::String || mode == Mode::Char) &&
                !literal_spliced)
                mode = Mode::Code;
            if (mode == Mode::RawStringDelim)
                mode = Mode::Code; // malformed: delimiters cannot wrap
            escaped = false;
            raw_tail.clear(); // the terminator never spans lines
            continue;
        }
        switch (mode) {
        case Mode::Code:
            if (c == '/' && next == '/') {
                mode = Mode::LineComment;
                ++i;
            } else if (c == '/' && next == '*') {
                mode = Mode::BlockComment;
                ++i;
            } else if (c == '"' && endsWithRawPrefix(current.code)) {
                mode = Mode::RawStringDelim;
                raw_delim.clear();
                current.code.push_back('"');
                current.code_with_literals.push_back('"');
            } else if (c == '"') {
                mode = Mode::String;
                current.code.push_back('"');
                current.code_with_literals.push_back('"');
            } else if (c == '\'') {
                mode = Mode::Char;
                current.code.push_back('\'');
                current.code_with_literals.push_back('\'');
            } else {
                current.code.push_back(c);
                current.code_with_literals.push_back(c);
            }
            break;
        case Mode::LineComment:
            current.comment.push_back(c);
            break;
        case Mode::BlockComment:
            if (c == '*' && next == '/') {
                mode = Mode::Code;
                ++i;
            } else {
                current.comment.push_back(c);
            }
            break;
        case Mode::String:
        case Mode::Char:
            current.code_with_literals.push_back(c);
            if (escaped) {
                escaped = false;
            } else if (c == '\\') {
                escaped = true;
            } else if ((mode == Mode::String && c == '"') ||
                       (mode == Mode::Char && c == '\'')) {
                current.code.push_back(c);
                mode = Mode::Code;
            }
            break;
        case Mode::RawStringDelim:
            current.code_with_literals.push_back(c);
            if (c == '(') {
                mode = Mode::RawString;
                raw_terminator = ")" + raw_delim + "\"";
                raw_tail.clear();
            } else if (raw_delim.size() >= 16 || c == '"' ||
                       c == '\\') {
                mode = Mode::Code; // malformed per the grammar
            } else {
                raw_delim.push_back(c);
            }
            break;
        case Mode::RawString:
            current.code_with_literals.push_back(c);
            raw_tail.push_back(c);
            if (raw_tail.size() > raw_terminator.size())
                raw_tail.erase(0, raw_tail.size() - raw_terminator.size());
            if (raw_tail == raw_terminator) {
                current.code.push_back('"');
                mode = Mode::Code;
            }
            break;
        }
    }
    lines.push_back(std::move(current));
    return lines;
}

} // namespace sp::splint
