#include "splint/splint.h"

#include "splint/index.h"
#include "splint/lexer.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <optional>
#include <ostream>
#include <regex>
#include <set>
#include <sstream>

namespace sp::splint
{

namespace fs = std::filesystem;

namespace
{

// ---- Rule table ----------------------------------------------------

const std::vector<Rule> kRules = {
    {"no-raw-thread", Severity::Error,
     "raw std::thread/std::async/pthread outside common/thread_pool",
     "route parallel work through sp::common::ThreadPool so SP_JOBS "
     "bounds it and the bit-identical execution contract holds"},
    {"no-nondeterminism", Severity::Error,
     "nondeterminism source (rand/random_device/clock) in a "
     "simulation path",
     "thread an explicit seed through the config (tensor/rng.h); "
     "simulation output must be a pure function of the spec"},
    {"hot-path-alloc", Severity::Error,
     "allocation, stream IO or fault site inside a marked hot-path "
     "region",
     "hoist the allocation into per-controller scratch that retains "
     "capacity across calls, move the IO off the hot path, and plant "
     "SP_FAULT_POINT outside marked regions (even disarmed it is a "
     "branch per call)"},
    {"io-status", Severity::Error,
     "environmental-failure handling violation on an IO path",
     "environmental failures in src/data return sp::Status / "
     "sp::Result (common/status.h) so callers can degrade; panic/"
     "exit/terminate are for programmer errors only (justify with "
     "splint:allow). Never discard a Status-returning call "
     "(saveTo/tryLoad/tryMapped/tryOpen) as a bare statement"},
    {"hot-path-marker", Severity::Error,
     "unbalanced splint:hot-path-begin/end markers",
     "every hot-path-begin(<name>) needs one hot-path-end in the "
     "same file, and regions cannot nest"},
    {"kernel-registration", Severity::Error,
     "probe-kernel TU missing from the kernel-equivalence harness",
     "register the kernel in compiledProbeKernels() and name it in "
     "tests/cache/probe_kernel_equivalence_test.cc so the harness "
     "proves it bit-identical to scalar"},
    {"spec-doc", Severity::Error,
     "spec key parsed in sys/spec.cc or data/workload.cc but "
     "undocumented in README.md",
     "add the key to README.md's spec-key list (users discover the "
     "grammar there, not in the parser)"},
    {"allow-justification", Severity::Error,
     "splint:allow without a justification",
     "write `// splint:allow(<rule>): <why this site is exempt>`"},
    {"allow-unknown-rule", Severity::Error,
     "splint:allow naming a rule that does not exist",
     "use a rule id from `splint --list-rules`"},
    {"hot-path-transitive-alloc", Severity::Error,
     "allocation, stream IO or fault site in a function reachable "
     "from a hot-path region",
     "hoist the allocation out of the callee into scratch that "
     "retains capacity, or break the call chain out of the hot "
     "region; if the degradation is deliberate (one-time setup, "
     "capacity-retaining resize), justify it with a splint:allow at "
     "the allocation site"},
    {"determinism-taint", Severity::Error,
     "nondeterminism source reachable from a simulation entry point "
     "in src/{sys,cache,data}",
     "thread an explicit seed through the config (tensor/rng.h); "
     "anything the simulation can call must be a pure function of "
     "the spec"},
    {"layering", Severity::Error,
     "include edge that points up the module dependency order, or an "
     "include cycle",
     "depend downward only (common -> {cache,data,emb,tensor} -> "
     "{core,sim,nn,metrics} -> sys); break cycles by moving the "
     "shared declaration into the lower layer"},
    {"fault-site-registry", Severity::Error,
     "SP_FAULT_POINT site missing from the fault.cc registry, "
     "unreferenced, or not exercised by the FaultMatrix test",
     "register the site (with its degradation contract) in "
     "src/common/fault.cc sites() and add a FaultMatrix scenario in "
     "tests/common/fault_injection_test.cc"},
};

// ---- Line-scoped rule patterns -------------------------------------

/** A regex-driven line rule plus its path scope. */
struct LineRule
{
    const char *id;
    std::regex pattern;
    bool (*applies)(const std::string &path);
    bool hot_path_only;
};

bool
anyPath(const std::string &)
{
    return true;
}

bool
outsideThreadPool(const std::string &path)
{
    return path != "src/common/thread_pool.cc" &&
           path != "src/common/thread_pool.h";
}

bool
simulationPath(const std::string &path)
{
    return path.starts_with("src/sys/") ||
           path.starts_with("src/cache/") || path.starts_with("src/data/");
}

bool
dataPath(const std::string &path)
{
    return path.starts_with("src/data/");
}

bool
srcPath(const std::string &path)
{
    return path.starts_with("src/");
}

const std::vector<LineRule> &
lineRules()
{
    static const std::vector<LineRule> rules = {
        {"no-raw-thread",
         std::regex(R"(\bstd\s*::\s*(thread|jthread|async)\b)"
                    R"(|\bpthread_(create|join|detach)\b)"),
         outsideThreadPool, false},
        // The nondeterminism and allocation token sets are shared
        // with the symbol index (splint/index.h) so the lexical and
        // transitive rules cannot drift apart.
        {"no-nondeterminism", nondetTokenPattern(), simulationPath,
         false},
        {"hot-path-alloc", allocTokenPattern(), anyPath, true},
        // io-status, facet 1: process-killing calls on IO paths. A
        // panic in src/data is presumed wrong (environmental failures
        // must come back as sp::Status) unless a splint:allow argues
        // it guards a caller contract or internal invariant.
        {"io-status",
         std::regex(R"(\babort\s*\(|\bexit\s*\(|\bquick_exit\s*\()"
                    R"(|\b_Exit\s*\(|\bstd\s*::\s*terminate\b)"
                    R"(|\bpanic(If)?\s*\()"),
         dataPath, false},
        // io-status, facet 2: a Status-returning IO call discarded as
        // a bare statement. The shape is a full single-line statement
        // `receiver.call(...);` (or ->/:: chains into it): such a
        // statement uses neither the Status nor a value, so the
        // failure is silently dropped. Assignments, returns and
        // conditions put a token before the receiver; declarations
        // and definitions lack the trailing `;` or the qualifier.
        // (Discards split across lines slip past a line lint; the
        // [[nodiscard]] on Status/Result still catches those at
        // compile time.)
        {"io-status",
         std::regex(R"(^\s*(?:[A-Za-z_]\w*\s*(?:\.|->|::)\s*)+)"
                    R"((?:saveTo|tryLoad|tryMapped|tryOpen)\s*\()"
                    R"([^;]*\)\s*;\s*$)"),
         srcPath, false},
    };
    return rules;
}

// ---- Source text scanning ------------------------------------------

// The lexer lives in splint/lexer.h: per-line code/comment/
// code_with_literals channels, with raw-string and line-splice
// handling, shared with the symbol index.

/** A parsed `splint:allow(rule): justification` directive. */
struct Allow
{
    std::string rule;
    bool justified = false;
};

Diagnostic
makeDiagnostic(const std::string &path, size_t line,
               const std::string &rule_id, const std::string &message)
{
    const Rule *rule = findRule(rule_id);
    Diagnostic diag;
    diag.file = path;
    diag.line = line;
    diag.rule = rule_id;
    diag.severity = rule != nullptr ? rule->severity : Severity::Error;
    diag.message = message;
    diag.fixit = rule != nullptr ? rule->fixit : "";
    return diag;
}

std::optional<std::string>
readFile(const fs::path &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return std::nullopt;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

std::string
relativePath(const fs::path &root, const fs::path &file)
{
    return fs::relative(file, root).generic_string();
}

// ---- Project-wide rules --------------------------------------------

/**
 * kernel-registration: every src/cache/probe_kernel_<arch>.cc must be
 * named inside the kernel-equivalence harness (which enumerates
 * compiledProbeKernels() and asserts each kernel against scalar, so a
 * TU whose name never appears there was never wired into either).
 */
void
lintKernelRegistration(const fs::path &root,
                       std::vector<Diagnostic> &diagnostics)
{
    const fs::path kernel_dir = root / "src" / "cache";
    if (!fs::is_directory(kernel_dir))
        return;

    std::vector<fs::path> kernel_tus;
    for (const auto &entry : fs::directory_iterator(kernel_dir)) {
        const std::string name = entry.path().filename().string();
        if (name.starts_with("probe_kernel_") && name.ends_with(".cc"))
            kernel_tus.push_back(entry.path());
    }
    if (kernel_tus.empty())
        return;

    const fs::path harness =
        root / "tests" / "cache" / "probe_kernel_equivalence_test.cc";
    const std::optional<std::string> harness_text = readFile(harness);
    for (const fs::path &tu : kernel_tus) {
        const std::string name = tu.filename().string();
        const std::string arch = name.substr(
            std::string("probe_kernel_").size(),
            name.size() - std::string("probe_kernel_").size() - 3);
        if (!harness_text.has_value() ||
            harness_text->find(arch) == std::string::npos) {
            diagnostics.push_back(makeDiagnostic(
                relativePath(root, tu), 0, "kernel-registration",
                "probe kernel '" + arch + "' is not covered by " +
                    "tests/cache/probe_kernel_equivalence_test.cc"));
        }
    }
}

/**
 * spec-doc: every `key == "<k>"` comparison in a spec parser (system
 * specs in sys/spec.cc, workload specs in data/workload.cc) must have
 * a matching `<k>=` in README.md.
 */
void
lintSpecDoc(const fs::path &root, std::vector<Diagnostic> &diagnostics)
{
    const std::optional<std::string> readme =
        readFile(root / "README.md");
    const std::regex key_pattern(R"(\bkey\s*==\s*"([A-Za-z0-9_]+)\")");

    const fs::path parsers[] = {root / "src" / "sys" / "spec.cc",
                                root / "src" / "data" / "workload.cc"};
    for (const fs::path &spec : parsers) {
        const std::optional<std::string> spec_text = readFile(spec);
        if (!spec_text.has_value())
            continue;

        // The key names live inside string literals, so this check
        // reads the literal-preserving channel (comments still
        // stripped: a commented-out `key == "old"` is not a parsed
        // key).
        const std::vector<ScannedLine> lines = scanLines(*spec_text);
        for (size_t i = 0; i < lines.size(); ++i) {
            auto begin = std::sregex_iterator(
                lines[i].code_with_literals.begin(),
                lines[i].code_with_literals.end(), key_pattern);
            for (auto it = begin; it != std::sregex_iterator(); ++it) {
                const std::string key = (*it)[1].str();
                if (!readme.has_value() ||
                    readme->find(key + "=") == std::string::npos) {
                    diagnostics.push_back(makeDiagnostic(
                        relativePath(root, spec), i + 1, "spec-doc",
                        "spec key '" + key +
                            "=' is parsed here but not documented in "
                            "README.md"));
                }
            }
        }
    }
}

} // namespace

// ---- Public API ----------------------------------------------------

const char *
severityName(Severity severity)
{
    return severity == Severity::Error ? "error" : "warning";
}

const std::vector<Rule> &
rules()
{
    return kRules;
}

const Rule *
findRule(const std::string &id)
{
    for (const Rule &rule : kRules) {
        if (id == rule.id)
            return &rule;
    }
    return nullptr;
}

std::vector<Diagnostic>
lintSource(const std::string &path, const std::string &text)
{
    std::vector<Diagnostic> diagnostics;
    const std::vector<ScannedLine> lines = scanLines(text);

    // Pass 1: directives. Only the comment channel is consulted, so a
    // directive spelled inside a string literal never acts as one.
    static const std::regex allow_pattern(
        R"(splint:allow\(([A-Za-z0-9_-]+)\)(:\s*(\S.*))?)");
    static const std::regex begin_pattern(
        R"(splint:hot-path-begin(\(([A-Za-z0-9_-]+)\))?)");
    static const std::regex end_pattern(R"(splint:hot-path-end\b)");

    std::map<size_t, Allow> allows; // 0-based line -> directive
    std::vector<bool> hot(lines.size(), false);
    bool in_hot = false;
    size_t hot_begin_line = 0;
    for (size_t i = 0; i < lines.size(); ++i) {
        const std::string &comment = lines[i].comment;
        std::smatch match;
        if (std::regex_search(comment, match, allow_pattern)) {
            Allow allow;
            allow.rule = match[1].str();
            allow.justified = match[3].matched;
            if (findRule(allow.rule) == nullptr) {
                diagnostics.push_back(makeDiagnostic(
                    path, i + 1, "allow-unknown-rule",
                    "splint:allow names unknown rule '" + allow.rule +
                        "'"));
            } else if (!allow.justified) {
                diagnostics.push_back(makeDiagnostic(
                    path, i + 1, "allow-justification",
                    "splint:allow(" + allow.rule +
                        ") has no justification"));
            }
            allows[i] = allow;
        }
        if (std::regex_search(comment, match, begin_pattern)) {
            if (in_hot) {
                diagnostics.push_back(makeDiagnostic(
                    path, i + 1, "hot-path-marker",
                    "hot-path-begin inside an open hot-path region "
                    "(opened on line " +
                        std::to_string(hot_begin_line + 1) + ")"));
            }
            in_hot = true;
            hot_begin_line = i;
        } else if (std::regex_search(comment, match, end_pattern)) {
            if (!in_hot) {
                diagnostics.push_back(makeDiagnostic(
                    path, i + 1, "hot-path-marker",
                    "hot-path-end without a matching begin"));
            }
            in_hot = false;
        }
        hot[i] = in_hot;
    }
    if (in_hot) {
        diagnostics.push_back(makeDiagnostic(
            path, hot_begin_line + 1, "hot-path-marker",
            "hot-path-begin is never closed"));
    }

    // Pass 2: the regex rules, over comment/string-stripped code.
    const auto allowed = [&](size_t line, const char *rule_id) {
        for (const size_t candidate : {line, line - 1}) {
            if (candidate > line) // line 0 has no predecessor
                continue;
            const auto it = allows.find(candidate);
            if (it != allows.end() && it->second.rule == rule_id &&
                it->second.justified)
                return true;
        }
        return false;
    };

    for (const LineRule &rule : lineRules()) {
        if (!rule.applies(path))
            continue;
        for (size_t i = 0; i < lines.size(); ++i) {
            if (rule.hot_path_only && !hot[i])
                continue;
            std::smatch match;
            if (!std::regex_search(lines[i].code, match, rule.pattern))
                continue;
            if (allowed(i, rule.id))
                continue;
            diagnostics.push_back(makeDiagnostic(
                path, i + 1, rule.id,
                "'" + match.str() + "' " +
                    (rule.hot_path_only
                         ? std::string("inside a hot-path region")
                         : std::string("violates ") + rule.id)));
        }
    }

    sortDiagnostics(diagnostics);
    return diagnostics;
}

void
sortDiagnostics(std::vector<Diagnostic> &diagnostics)
{
    std::sort(diagnostics.begin(), diagnostics.end(),
              [](const Diagnostic &a, const Diagnostic &b) {
                  return std::tie(a.file, a.line, a.rule, a.message) <
                         std::tie(b.file, b.line, b.rule, b.message);
              });
}

std::vector<Diagnostic>
lintTree(const fs::path &root)
{
    std::vector<Diagnostic> diagnostics;

    std::vector<fs::path> files;
    for (const char *subtree : {"src", "bench", "tests"}) {
        const fs::path dir = root / subtree;
        if (!fs::is_directory(dir))
            continue;
        for (const auto &entry : fs::recursive_directory_iterator(dir)) {
            if (!entry.is_regular_file())
                continue;
            const std::string ext = entry.path().extension().string();
            if (ext == ".cc" || ext == ".h" || ext == ".cpp")
                files.push_back(entry.path());
        }
    }
    std::sort(files.begin(), files.end());

    for (const fs::path &file : files) {
        const std::optional<std::string> text = readFile(file);
        if (!text.has_value())
            continue;
        std::vector<Diagnostic> file_diags =
            lintSource(relativePath(root, file), *text);
        diagnostics.insert(diagnostics.end(),
                           std::make_move_iterator(file_diags.begin()),
                           std::make_move_iterator(file_diags.end()));
    }

    lintKernelRegistration(root, diagnostics);
    lintSpecDoc(root, diagnostics);
    sortDiagnostics(diagnostics);
    return diagnostics;
}

bool
hasErrors(const std::vector<Diagnostic> &diagnostics)
{
    return std::any_of(diagnostics.begin(), diagnostics.end(),
                       [](const Diagnostic &diag) {
                           return diag.severity == Severity::Error;
                       });
}

std::string
toText(const std::vector<Diagnostic> &diagnostics)
{
    std::ostringstream os;
    for (const Diagnostic &diag : diagnostics) {
        os << diag.file << ':' << diag.line << ": "
           << severityName(diag.severity) << ": [" << diag.rule << "] "
           << diag.message << '\n';
        if (!diag.fixit.empty())
            os << "    fixit: " << diag.fixit << '\n';
    }
    os << (diagnostics.empty() ? "splint: clean" : "splint: ")
       << (diagnostics.empty()
               ? std::string()
               : std::to_string(diagnostics.size()) + " violation(s)")
       << '\n';
    return os.str();
}

namespace
{

std::string
jsonEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (const char c : text) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\t':
            out += "\\t";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buffer[8];
                std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
                out += buffer;
            } else {
                out.push_back(c);
            }
        }
    }
    return out;
}

} // namespace

std::string
toJson(const std::vector<Diagnostic> &diagnostics)
{
    std::ostringstream os;
    os << "{\"tool\":\"splint\",\"schema_version\":2,\"count\":"
       << diagnostics.size() << ",\"violations\":[";
    for (size_t i = 0; i < diagnostics.size(); ++i) {
        const Diagnostic &diag = diagnostics[i];
        if (i > 0)
            os << ',';
        os << "\n  {\"file\":\"" << jsonEscape(diag.file)
           << "\",\"line\":" << diag.line << ",\"rule\":\""
           << jsonEscape(diag.rule) << "\",\"severity\":\""
           << severityName(diag.severity) << "\",\"message\":\""
           << jsonEscape(diag.message) << "\",\"fixit\":\""
           << jsonEscape(diag.fixit) << "\"}";
    }
    os << (diagnostics.empty() ? "]}" : "\n]}") << '\n';
    return os.str();
}

bool
selfTest(const fs::path &fixtures, std::ostream &log)
{
    bool ok = true;
    std::set<std::string> fired;
    const auto fail = [&](const std::string &message) {
        log << "splint self-test: " << message << '\n';
        ok = false;
    };

    // Each bad fixture must produce its expected rule (and may
    // produce others -- a file demonstrating hot-path-alloc also
    // legitimately exercises the markers).
    struct Expectation
    {
        const char *file; //!< path under fixtures/violations/
        const char *rule;
    };
    const std::vector<Expectation> expectations = {
        {"src/sys/bad_thread.cc", "no-raw-thread"},
        {"src/sys/bad_rng.cc", "no-nondeterminism"},
        {"src/cache/bad_hot_path.cc", "hot-path-alloc"},
        {"src/cache/bad_markers.cc", "hot-path-marker"},
        {"src/sys/bad_allow.cc", "allow-justification"},
        {"src/sys/bad_allow.cc", "allow-unknown-rule"},
        {"src/data/bad_io_status.cc", "io-status"},
    };
    for (const Expectation &expected : expectations) {
        const fs::path file = fixtures / "violations" / expected.file;
        const std::optional<std::string> text = readFile(file);
        if (!text.has_value()) {
            fail("missing fixture " + file.string());
            continue;
        }
        const std::vector<Diagnostic> diagnostics =
            lintSource(expected.file, *text);
        bool found = false;
        for (const Diagnostic &diag : diagnostics) {
            fired.insert(diag.rule);
            if (diag.rule == expected.rule)
                found = true;
        }
        if (!found)
            fail(std::string("rule ") + expected.rule +
                 " did not fire on violations/" + expected.file);
    }

    // Whole-tree fixtures: the project rules fire on their bad trees
    // and the clean tree (which uses every feature, allows included)
    // reports nothing.
    const auto expectTreeRule = [&](const char *tree, const char *rule) {
        const std::vector<Diagnostic> diagnostics =
            lintTree(fixtures / tree);
        bool found = false;
        for (const Diagnostic &diag : diagnostics) {
            fired.insert(diag.rule);
            if (diag.rule == rule)
                found = true;
        }
        if (!found)
            fail(std::string("rule ") + rule + " did not fire on " +
                 tree);
    };
    expectTreeRule("tree_bad_kernel", "kernel-registration");
    expectTreeRule("tree_bad_spec", "spec-doc");

    const std::vector<Diagnostic> clean = lintTree(fixtures / "tree_clean");
    for (const Diagnostic &diag : clean)
        fail("clean tree produced " + diag.rule + " at " + diag.file +
             ":" + std::to_string(diag.line) + ": " + diag.message);

    // Graph fixtures: each transitive rule fires on its violating
    // tree under the semantic pass...
    const auto expectGraphRule = [&](const char *tree,
                                     const char *rule) {
        const std::vector<Diagnostic> diagnostics =
            analyzeTree(fixtures / tree);
        bool found = false;
        for (const Diagnostic &diag : diagnostics) {
            fired.insert(diag.rule);
            if (diag.rule == rule)
                found = true;
        }
        if (!found)
            fail(std::string("rule ") + rule + " did not fire on " +
                 tree);
    };
    expectGraphRule("tree_bad_hot_transitive", "hot-path-transitive-alloc");
    expectGraphRule("tree_bad_taint", "determinism-taint");
    expectGraphRule("tree_bad_layering", "layering");
    expectGraphRule("tree_bad_fault", "fault-site-registry");

    // ... and the clean graph tree -- which exercises a hot region
    // with an alloc-free callee chain, an *unreachable* entropy
    // source, peer includes, a registered+exercised fault site, and
    // the raw-string/line-splice lexer regressions -- reports nothing
    // under either pass.
    for (const char *pass : {"lexical", "semantic"}) {
        const std::vector<Diagnostic> graph_clean =
            pass == std::string("lexical")
                ? lintTree(fixtures / "tree_graph_clean")
                : analyzeTree(fixtures / "tree_graph_clean");
        for (const Diagnostic &diag : graph_clean)
            fail("tree_graph_clean produced " + diag.rule + " (" +
                 pass + " pass) at " + diag.file + ":" +
                 std::to_string(diag.line) + ": " + diag.message);
    }

    for (const Rule &rule : kRules) {
        if (fired.find(rule.id) == fired.end())
            fail(std::string("rule ") + rule.id +
                 " never fired on any fixture");
    }
    if (ok)
        log << "splint self-test: all " << kRules.size()
            << " rules proven on fixtures\n";
    return ok;
}

} // namespace sp::splint
