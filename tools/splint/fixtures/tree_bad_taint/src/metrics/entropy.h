namespace sp::metrics
{

int entropySeed();

} // namespace sp::metrics
