#include "metrics/entropy.h"

#include <random>

namespace sp::metrics
{

// src/metrics is outside the lexical no-nondeterminism scope, but
// sys::simulate calls this -- the taint rule must follow the edge.
int
entropySeed()
{
    std::random_device device;
    return static_cast<int>(device());
}

} // namespace sp::metrics
