#include "metrics/entropy.h"

namespace sp::sys
{

int
simulate(int steps)
{
    return steps + sp::metrics::entropySeed();
}

} // namespace sp::sys
