#include "common/fault.h"

namespace sp::common
{

// Fixture registry: io.unexercised is registered (but no FaultMatrix
// scenario covers it); io.unregistered is deliberately absent.
const char *kRegisteredSites[] = {
    "io.unexercised",
};

} // namespace sp::common
