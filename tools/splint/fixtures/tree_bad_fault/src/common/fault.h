// Fixture stand-in for the fault-injection macro header.
namespace sp::common
{

void faultPoint(const char *site);

} // namespace sp::common
