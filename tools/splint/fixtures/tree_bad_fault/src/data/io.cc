#include "common/fault.h"

namespace sp::data
{

int
readBlock(int index)
{
    SP_FAULT_POINT("io.unregistered");
    SP_FAULT_POINT("io.unexercised");
    return index;
}

} // namespace sp::data
