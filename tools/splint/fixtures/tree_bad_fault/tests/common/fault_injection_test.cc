// Fixture FaultMatrix test with no scenarios: every registered site
// must therefore be reported as unexercised.
int fault_matrix_placeholder = 0;
