// splint fixture: environmental-failure handling violations on an IO
// path. Never compiled.

#include <cstdlib>
#include <string>

struct Dataset
{
    int saveTo(const std::string &path) const;
};

void
loadOrDie(Dataset &dataset, const std::string &path)
{
    if (path.empty())
        std::exit(1);                  // violation: io-status
    panicIf(path.size() > 4096,        // violation: io-status
            "path too long");
    dataset.saveTo(path);              // violation: io-status (dropped)
    Dataset::tryLoad(path);            // violation: io-status (dropped)
}
