// splint fixture: unbalanced hot-path markers. Never compiled.

// splint:hot-path-end  <- violation: end without begin

void
unclosedRegion()
{
    // splint:hot-path-begin(first)
    // splint:hot-path-begin(nested)  <- violation: begin inside open region
    // the outer region is never closed  <- violation at its begin line
}
