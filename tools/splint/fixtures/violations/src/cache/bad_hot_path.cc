// splint fixture: allocation and stream IO inside a marked hot-path
// region. Never compiled.

#include <iostream>
#include <vector>

void
hotLoop(std::vector<int> &scratch, int n)
{
    scratch.push_back(0); // fine: outside any hot-path region

    // splint:hot-path-begin(fixture-loop)
    for (int i = 0; i < n; ++i) {
        scratch.push_back(i);          // violation: hot-path-alloc
        int *leak = new int(i);        // violation: hot-path-alloc
        std::cout << *leak << '\n';    // violation: hot-path-alloc
        SP_FAULT_POINT("fixture.hot"); // violation: hot-path-alloc
        delete leak;
    }
    // splint:hot-path-end

    scratch.resize(0); // fine again: region closed
}
