// splint fixture: raw threading primitives outside the pool. Never
// compiled -- scanned by `sp_splint --self-test` and the unit tests
// to prove no-raw-thread fires (including on a line whose comment
// mentions std::thread only in prose, which must NOT fire).

#include <future>
#include <thread>

void
spawnsRawThread()
{
    std::thread worker([] {});     // violation: std::thread
    worker.join();
    auto f = std::async([] {});    // violation: std::async
    f.get();
}

// prose about std::thread in a comment is fine; the scanner strips it
