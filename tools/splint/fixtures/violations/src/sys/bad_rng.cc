// splint fixture: nondeterminism sources in a simulation path
// (fixture path is src/sys/, which is in scope). Never compiled.

#include <chrono>
#include <cstdlib>
#include <random>

unsigned
nondeterministicSeed()
{
    std::random_device entropy;                       // violation
    unsigned seed = entropy() ^ rand();               // violation
    seed ^= static_cast<unsigned>(time(nullptr));     // violation
    auto t = std::chrono::steady_clock::now();        // violation
    (void)t;
    return seed;
}

// "rand(" inside a string literal must not fire:
const char *kProse = "call rand() and steady_clock for chaos";
