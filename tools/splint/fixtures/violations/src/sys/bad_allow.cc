// splint fixture: malformed allow directives. Never compiled.

#include <cstdlib>

unsigned
badAllows()
{
    // splint:allow(no-nondeterminism)
    unsigned a = rand(); // the bare allow above is rejected
                         // (allow-justification) and does NOT
                         // suppress, so no-nondeterminism fires too

    // splint:allow(no-such-rule): justification for a rule that
    // does not exist -> allow-unknown-rule
    return a;
}
