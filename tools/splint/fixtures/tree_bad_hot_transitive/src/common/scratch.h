namespace sp::common
{

void helper(int n);

} // namespace sp::common
