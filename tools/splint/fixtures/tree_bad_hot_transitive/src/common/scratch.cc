#include "common/scratch.h"

namespace sp::common
{

// Two hops from the hot region: classify -> helper -> scratchGrow.
// The direct hot-path-alloc rule cannot see this allocation; the
// transitive rule must.
void
scratchGrow(int n)
{
    int *block = new int[n];
    block[0] = n;
    delete[] block;
}

void
helper(int n)
{
    scratchGrow(n);
}

} // namespace sp::common
