#include "common/scratch.h"

namespace sp::core
{

// splint:hot-path-begin(classify)
void
classify(int n)
{
    sp::common::helper(n);
}
// splint:hot-path-end

} // namespace sp::core
