// splint clean-tree fixture: every parsed key is documented in the
// sibling README.md.

#include <string>

void
parseFixtureSpec(const std::string &key)
{
    if (key == "cache") {
    } else if (key == "policy") {
    }
}
