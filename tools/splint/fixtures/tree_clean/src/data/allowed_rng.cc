// splint clean-tree fixture: a justified allow suppresses the
// nondeterminism rule (this mirrors the real trace_store.cc temp-name
// exemption), and a justified hot-path allow covers a retained-
// capacity push_back.

#include <random>
#include <vector>

unsigned
tempFileNonce()
{
    // splint:allow(no-nondeterminism): nonce only names a temp file
    return std::random_device{}();
}

void
hotWithAllowedGrowth(std::vector<int> &scratch, int n)
{
    // splint:hot-path-begin(allowed-growth)
    for (int i = 0; i < n; ++i) {
        // splint:allow(hot-path-alloc): capacity retained across calls
        scratch.push_back(i);
    }
    // splint:hot-path-end
}
