// splint clean-tree fixture: a kernel TU that IS registered in the
// sibling equivalence harness, with a marked hot-path region that
// stays allocation-free.

void
probeFake(const unsigned *keys, unsigned *out, int n)
{
    // splint:hot-path-begin(fake-kernel)
    for (int i = 0; i < n; ++i)
        out[i] = keys[i];
    // splint:hot-path-end
}
