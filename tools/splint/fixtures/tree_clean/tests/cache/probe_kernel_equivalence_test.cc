// splint clean-tree fixture: registers the "fake" kernel, so
// kernel-registration stays quiet.

void
testFakeKernelAgainstScalar()
{
}
