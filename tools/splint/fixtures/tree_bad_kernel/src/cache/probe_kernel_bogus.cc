// splint fixture tree: a probe-kernel TU that the equivalence
// harness never mentions -> kernel-registration must fire.

void
probeBogus()
{
}
