// splint fixture: an equivalence harness that only covers the scalar
// reference; the sibling kernel TU is deliberately unregistered here.

void
testScalarOnly()
{
}
