// src/common is layer 0: it may not include anything above itself.
#include "sys/runner.h"

namespace sp::common
{

int
callUp()
{
    return sp::sys::runnerVersion();
}

} // namespace sp::common
