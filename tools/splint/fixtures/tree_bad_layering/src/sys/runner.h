namespace sp::sys
{

int runnerVersion();

} // namespace sp::sys
