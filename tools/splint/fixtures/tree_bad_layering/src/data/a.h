// Part 1 of a three-file include cycle: a -> b -> c -> a.
#include "data/b.h"

namespace sp::data
{

struct A
{
    int value = 0;
};

} // namespace sp::data
