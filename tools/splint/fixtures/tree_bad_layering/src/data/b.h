// Part 2 of the cycle.
#include "data/c.h"

namespace sp::data
{

struct B
{
    int value = 0;
};

} // namespace sp::data
