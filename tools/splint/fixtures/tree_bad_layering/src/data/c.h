// Part 3 of the cycle, closing the loop back to a.h.
#include "data/a.h"

namespace sp::data
{

struct C
{
    int value = 0;
};

} // namespace sp::data
