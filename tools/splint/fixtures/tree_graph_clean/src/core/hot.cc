#include "common/scratch.h"

namespace sp::core
{

// splint:hot-path-begin(classify)
void
classify(int *scratch, int n)
{
    sp::common::fill(scratch, n);
}
// splint:hot-path-end

} // namespace sp::core
