#include "common/fault.h"

namespace sp::data
{

int
readBlock(int index)
{
    SP_FAULT_POINT("io.read");
    return index;
}

} // namespace sp::data
