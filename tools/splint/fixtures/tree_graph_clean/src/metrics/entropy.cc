#include <random>

namespace sp::metrics
{

// Nondeterministic, but nothing in src/{sys,cache,data} calls it:
// determinism-taint must stay silent because the *reachability*
// matters, not the token.
int
entropySeed()
{
    std::random_device device;
    return static_cast<int>(device());
}

} // namespace sp::metrics
