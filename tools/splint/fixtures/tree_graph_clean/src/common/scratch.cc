#include "common/scratch.h"

namespace sp::common
{

// Allocation-free on purpose: reachable from the hot region in
// core/hot.cc, so the transitive rule walks through here and must
// find nothing.
void
fill(int *block, int n)
{
    for (int i = 0; i < n; ++i)
        block[i] = i;
}

} // namespace sp::common
