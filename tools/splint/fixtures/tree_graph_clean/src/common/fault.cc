#include "common/fault.h"

namespace sp::common
{

// Fixture registry: io.read is registered, called in data/io.cc, and
// exercised by the fixture FaultMatrix test -- all three checks pass.
const char *kRegisteredSites[] = {
    "io.read",
};

} // namespace sp::common
