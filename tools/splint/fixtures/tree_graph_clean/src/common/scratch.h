namespace sp::common
{

void fill(int *block, int n);

} // namespace sp::common
