// Lexer regression fixture: every banned token below lives inside a
// string literal, so no rule may fire on this file.

namespace sp::sys
{

// A multi-line raw string whose body name-drops banned tokens. A
// lexer without raw-string support would reset to code mode at the
// first newline and leak std::thread and rand( into the code channel.
const char *
reportTemplate()
{
    return R"doc(
usage: std::thread is banned here, and so is rand( -- but this is
prose inside a raw literal, with a quote " and a backslash \
)doc";
}

// A line-continuation splice inside an ordinary literal: the second
// physical line is still literal content.
const char *kBanner = "spliced \
literal mentioning rand( and std::thread";

} // namespace sp::sys
