// Fixture FaultMatrix test: exercises the one registered site.
const char *kScenarioSites[] = {
    "io.read",
};
