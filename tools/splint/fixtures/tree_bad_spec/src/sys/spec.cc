// splint fixture tree: parses two spec keys, but the README only
// documents "cache" -> spec-doc must fire for "zap".

#include <string>

void
parseFixtureSpec(const std::string &key)
{
    if (key == "cache") {
        // documented in ../../README.md
    } else if (key == "zap") {
        // undocumented -> spec-doc violation on this line's key
    }
}
