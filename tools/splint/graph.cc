#include "splint/graph.h"

#include <algorithm>
#include <cstdio>
#include <deque>
#include <set>
#include <sstream>

namespace sp::splint
{

// ---- CallGraph -----------------------------------------------------

CallGraph
CallGraph::build(const SymbolIndex &index)
{
    CallGraph graph;
    graph.index = &index;
    graph.out.resize(index.functions.size());
    for (size_t f = 0; f < index.functions.size(); ++f) {
        std::set<size_t> seen;
        for (const CallSite &call : index.functions[f].calls) {
            for (const size_t callee : index.resolveCall(call)) {
                if (callee == f || !seen.insert(callee).second)
                    continue; // self-loops and duplicate edges
                graph.out[f].push_back({callee, call.line});
            }
        }
    }
    return graph;
}

CallGraph::Reach
CallGraph::reach(
    const std::vector<size_t> &seeds,
    const std::function<bool(size_t, const CallEdge &)> &skip) const
{
    Reach result;
    const size_t n = out.size();
    result.reached.assign(n, false);
    result.parent.assign(n, SymbolIndex::npos);
    result.parent_line.assign(n, 0);

    std::deque<size_t> queue;
    for (const size_t seed : seeds) {
        if (seed >= n || result.reached[seed])
            continue;
        result.reached[seed] = true;
        queue.push_back(seed);
    }
    while (!queue.empty()) {
        const size_t f = queue.front();
        queue.pop_front();
        result.order.push_back(f);
        for (const CallEdge &edge : out[f]) {
            if (result.reached[edge.callee])
                continue;
            if (skip && skip(f, edge))
                continue;
            result.reached[edge.callee] = true;
            result.parent[edge.callee] = f;
            result.parent_line[edge.callee] = edge.line;
            queue.push_back(edge.callee);
        }
    }
    return result;
}

std::string
CallGraph::trace(const Reach &reach, size_t target) const
{
    std::vector<size_t> path;
    for (size_t f = target; f != SymbolIndex::npos;
         f = reach.parent[f]) {
        path.push_back(f);
        if (path.size() > out.size())
            break; // defensive: parent chains cannot cycle
    }
    std::reverse(path.begin(), path.end());
    std::string text;
    for (size_t i = 0; i < path.size(); ++i) {
        if (i > 0)
            text += " -> ";
        text += index->functions[path[i]].qualified;
    }
    return text;
}

// ---- IncludeGraph --------------------------------------------------

IncludeGraph
IncludeGraph::build(const SymbolIndex &index)
{
    IncludeGraph graph;
    for (const auto &[path, fi] : index.files)
        graph.out[path] = fi.includes;
    return graph;
}

std::vector<std::string>
IncludeGraph::findCycle() const
{
    enum class Color
    {
        White,
        Gray,
        Black
    };
    std::map<std::string, Color> color;
    for (const auto &[path, edges] : out)
        color[path] = Color::White;

    std::vector<std::string> path;
    std::vector<std::string> cycle;

    // Iterative DFS with an explicit path stack; on a gray back edge,
    // the cycle is the path suffix from the gray node.
    struct Frame
    {
        std::string node;
        size_t next = 0;
    };
    for (const auto &[start, start_edges] : out) {
        if (color[start] != Color::White)
            continue;
        std::vector<Frame> stack{{start, 0}};
        color[start] = Color::Gray;
        path.push_back(start);
        while (!stack.empty()) {
            Frame &frame = stack.back();
            const auto it = out.find(frame.node);
            const std::vector<IncludeEdge> &edges = it->second;
            if (frame.next >= edges.size()) {
                color[frame.node] = Color::Black;
                path.pop_back();
                stack.pop_back();
                continue;
            }
            const std::string target = edges[frame.next++].target;
            const auto target_color = color.find(target);
            if (target_color == color.end())
                continue; // edge into an unindexed file
            if (target_color->second == Color::Gray) {
                const auto at = std::find(path.begin(), path.end(),
                                          target);
                cycle.assign(at, path.end());
                cycle.push_back(target);
                return cycle;
            }
            if (target_color->second == Color::White) {
                target_color->second = Color::Gray;
                path.push_back(target);
                stack.push_back({target, 0});
            }
        }
    }
    return cycle;
}

// ---- Layer map -----------------------------------------------------

std::string
moduleOf(const std::string &path)
{
    if (path.rfind("src/", 0) != 0)
        return "";
    const size_t slash = path.find('/', 4);
    if (slash == std::string::npos)
        return "";
    return path.substr(4, slash - 4);
}

int
layerOfModule(const std::string &module)
{
    if (module == "common")
        return 0;
    if (module == "cache" || module == "data" || module == "emb" ||
        module == "tensor")
        return 1;
    if (module == "core" || module == "sim" || module == "nn" ||
        module == "metrics")
        return 2;
    if (module == "sys")
        return 3;
    return -1;
}

const char *
layerOrderText()
{
    return "common -> {cache,data,emb,tensor} -> "
           "{core,sim,nn,metrics} -> sys";
}

// ---- Dumps ---------------------------------------------------------

namespace
{

std::string
jsonEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (const char c : text) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\t':
            out += "\\t";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buffer[8];
                std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
                out += buffer;
            } else {
                out.push_back(c);
            }
        }
    }
    return out;
}

std::string
dotEscape(const std::string &text)
{
    std::string out;
    for (const char c : text) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        out.push_back(c);
    }
    return out;
}

} // namespace

std::string
dumpDot(const SymbolIndex &index)
{
    const CallGraph calls = CallGraph::build(index);
    std::ostringstream os;
    os << "digraph splint {\n"
       << "  rankdir=LR;\n"
       << "  subgraph cluster_calls {\n"
       << "    label=\"call graph\";\n";
    for (size_t f = 0; f < index.functions.size(); ++f)
        os << "    \"f:" << dotEscape(index.functions[f].qualified)
           << "\";\n";
    for (size_t f = 0; f < index.functions.size(); ++f)
        for (const CallEdge &edge : calls.out[f])
            os << "    \"f:" << dotEscape(index.functions[f].qualified)
               << "\" -> \"f:"
               << dotEscape(index.functions[edge.callee].qualified)
               << "\";\n";
    os << "  }\n"
       << "  subgraph cluster_includes {\n"
       << "    label=\"include graph\";\n";
    for (const auto &[path, fi] : index.files) {
        os << "    \"i:" << dotEscape(path) << "\";\n";
        for (const IncludeEdge &edge : fi.includes)
            os << "    \"i:" << dotEscape(path) << "\" -> \"i:"
               << dotEscape(edge.target) << "\";\n";
    }
    os << "  }\n}\n";
    return os.str();
}

std::string
dumpJson(const SymbolIndex &index)
{
    const CallGraph calls = CallGraph::build(index);
    std::ostringstream os;
    os << "{\"tool\":\"splint-graph\",\"schema_version\":2,"
       << "\"functions\":[";
    for (size_t f = 0; f < index.functions.size(); ++f) {
        const FunctionInfo &fn = index.functions[f];
        if (f > 0)
            os << ',';
        os << "\n  {\"qualified\":\"" << jsonEscape(fn.qualified)
           << "\",\"file\":\"" << jsonEscape(fn.file)
           << "\",\"line\":" << fn.line << ",\"calls\":[";
        for (size_t e = 0; e < calls.out[f].size(); ++e) {
            const CallEdge &edge = calls.out[f][e];
            os << (e > 0 ? "," : "") << "{\"to\":\""
               << jsonEscape(
                      index.functions[edge.callee].qualified)
               << "\",\"line\":" << edge.line << '}';
        }
        os << "]}";
    }
    os << (index.functions.empty() ? "]," : "\n],") << "\"includes\":[";
    bool first = true;
    for (const auto &[path, fi] : index.files) {
        for (const IncludeEdge &edge : fi.includes) {
            os << (first ? "" : ",") << "\n  {\"from\":\""
               << jsonEscape(path) << "\",\"to\":\""
               << jsonEscape(edge.target) << "\",\"line\":" << edge.line
               << '}';
            first = false;
        }
    }
    os << (first ? "]," : "\n],") << "\"fault_sites\":[";
    first = true;
    for (const auto &[path, fi] : index.files) {
        for (const FaultPoint &point : fi.fault_points) {
            os << (first ? "" : ",") << "\n  {\"site\":\""
               << jsonEscape(point.site) << "\",\"file\":\""
               << jsonEscape(path) << "\",\"line\":" << point.line
               << '}';
            first = false;
        }
    }
    os << (first ? "]}" : "\n]}") << '\n';
    return os.str();
}

} // namespace sp::splint
