/**
 * @file
 * splint CLI.
 *
 *   sp_splint --root DIR [--format text|json]   lint a source tree
 *                                               (lexical + semantic)
 *   sp_splint --root DIR --lexical-only         line rules only
 *   sp_splint --root DIR --graph-only           transitive rules only
 *   sp_splint --root DIR --dump-graph=dot|json  dump the call/include
 *                                               graphs, no linting
 *   sp_splint --self-test --fixtures DIR        prove every rule fires
 *   sp_splint --list-rules                      dump the rule table
 *
 * Exit status: 0 clean, 1 violations (or self-test failure), 2 usage.
 */

#include <cstring>
#include <iostream>
#include <string>

#include "splint/graph.h"
#include "splint/index.h"
#include "splint/splint.h"

namespace
{

int
usage(const char *argv0)
{
    std::cerr << "usage: " << argv0
              << " [--root DIR] [--format text|json]"
              << " [--lexical-only|--graph-only]\n"
              << "       " << argv0 << " [--root DIR]"
              << " --dump-graph=dot|json\n"
              << "       " << argv0 << " --self-test --fixtures DIR\n"
              << "       " << argv0 << " --list-rules\n";
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string root = ".";
    std::string format = "text";
    std::string fixtures;
    std::string dump_graph;
    bool self_test = false;
    bool list_rules = false;
    bool lexical_only = false;
    bool graph_only = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto value = [&]() -> const char * {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        if (arg == "--root") {
            const char *v = value();
            if (v == nullptr)
                return usage(argv[0]);
            root = v;
        } else if (arg == "--format") {
            const char *v = value();
            if (v == nullptr ||
                (std::strcmp(v, "text") != 0 &&
                 std::strcmp(v, "json") != 0))
                return usage(argv[0]);
            format = v;
        } else if (arg == "--fixtures") {
            const char *v = value();
            if (v == nullptr)
                return usage(argv[0]);
            fixtures = v;
        } else if (arg.rfind("--dump-graph=", 0) == 0) {
            dump_graph = arg.substr(std::strlen("--dump-graph="));
            if (dump_graph != "dot" && dump_graph != "json")
                return usage(argv[0]);
        } else if (arg == "--lexical-only") {
            lexical_only = true;
        } else if (arg == "--graph-only") {
            graph_only = true;
        } else if (arg == "--self-test") {
            self_test = true;
        } else if (arg == "--list-rules") {
            list_rules = true;
        } else {
            std::cerr << argv[0] << ": unknown argument '" << arg
                      << "'\n";
            return usage(argv[0]);
        }
    }
    if (lexical_only && graph_only)
        return usage(argv[0]);

    if (list_rules) {
        for (const sp::splint::Rule &rule : sp::splint::rules()) {
            std::cout << rule.id << " ["
                      << sp::splint::severityName(rule.severity)
                      << "]\n    " << rule.summary << "\n    fixit: "
                      << rule.fixit << "\n";
        }
        return 0;
    }

    if (self_test) {
        if (fixtures.empty()) {
            std::cerr << argv[0]
                      << ": --self-test requires --fixtures DIR\n";
            return usage(argv[0]);
        }
        return sp::splint::selfTest(fixtures, std::cerr) ? 0 : 1;
    }

    if (!dump_graph.empty()) {
        const sp::splint::SymbolIndex index =
            sp::splint::buildIndex(root);
        std::cout << (dump_graph == "dot"
                          ? sp::splint::dumpDot(index)
                          : sp::splint::dumpJson(index));
        return 0;
    }

    std::vector<sp::splint::Diagnostic> diagnostics;
    if (!graph_only)
        diagnostics = sp::splint::lintTree(root);
    if (!lexical_only) {
        std::vector<sp::splint::Diagnostic> semantic =
            sp::splint::analyzeTree(root);
        diagnostics.insert(diagnostics.end(),
                           std::make_move_iterator(semantic.begin()),
                           std::make_move_iterator(semantic.end()));
        sp::splint::sortDiagnostics(diagnostics);
    }
    std::cout << (format == "json" ? sp::splint::toJson(diagnostics)
                                   : sp::splint::toText(diagnostics));
    return sp::splint::hasErrors(diagnostics) ? 1 : 0;
}
