/**
 * @file
 * Runtime auditor for the pipeline's RAW hazard freedom.
 *
 * The paper's correctness argument (Section IV-C) is that the Hold
 * masks make all concurrently executing stages touch disjoint
 * locations. The auditor turns that argument into a checked property:
 * the functional pipeline reports every scratchpad-slot and CPU-row
 * access of every stage, tagged by pipeline cycle, and at the end of
 * each cycle the auditor verifies the disjointness relations:
 *
 *   RAW-2/3: slots written by [Train]/[Insert] are never read as
 *            eviction victims by [Collect] in the same cycle;
 *   WAW:     [Train] and [Insert] never write the same slot in the
 *            same cycle;
 *   RAW-4:   CPU rows written back by [Insert] are never read by
 *            [Collect] in the same cycle.
 *
 * Violations panic() -- the property tests assert both that correct
 * windows never panic and that deliberately shrunk windows do.
 */

#ifndef SP_CORE_HAZARD_AUDIT_H
#define SP_CORE_HAZARD_AUDIT_H

#include <cstdint>
#include <cstddef>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace sp::core
{

/** Per-cycle access recorder and disjointness checker. */
class HazardAuditor
{
  public:
    /** Start recording a new pipeline cycle. */
    void beginCycle(uint64_t cycle);

    /** [Collect] reads this slot as an eviction victim. */
    void collectReadsVictimSlot(size_t table, uint32_t slot);

    /** [Insert] fills this slot with a prefetched row. */
    void insertWritesSlot(size_t table, uint32_t slot);

    /** [Train] scatter-updates this slot. */
    void trainWritesSlot(size_t table, uint32_t slot);

    /** [Collect] gathers this CPU-table row (a miss fetch). */
    void collectReadsCpuRow(size_t table, uint64_t row);

    /** [Insert] writes this CPU-table row back (a dirty eviction). */
    void insertWritesCpuRow(size_t table, uint64_t row);

    /** Run the disjointness checks for the recorded cycle. */
    void endCycle();

    /** Total accesses checked so far (test introspection). */
    uint64_t checkedAccesses() const { return checked_; }

    /** Cycles audited so far. */
    uint64_t cyclesAudited() const { return cycles_; }

  private:
    struct TableAccesses
    {
        std::unordered_set<uint32_t> victim_slot_reads;
        std::unordered_set<uint32_t> insert_slot_writes;
        std::unordered_set<uint32_t> train_slot_writes;
        std::unordered_set<uint64_t> collect_row_reads;
        std::unordered_set<uint64_t> insert_row_writes;
    };

    TableAccesses &tableAccess(size_t table);

    uint64_t current_cycle_ = 0;
    bool in_cycle_ = false;
    uint64_t checked_ = 0;
    uint64_t cycles_ = 0;
    std::unordered_map<size_t, TableAccesses> tables_;
};

} // namespace sp::core

#endif // SP_CORE_HAZARD_AUDIT_H
