/**
 * @file
 * The Hold mask: ScratchPipe's sliding-window eviction guard.
 *
 * One bitmask per Storage slot (paper Section IV-D, Algorithm 1).
 * Every [Plan] invocation shifts all masks one position (the window
 * slides) and then marks the slots referenced by the mini-batches
 * inside the window:
 *
 *   - the *current* batch's slots must stay resident until its
 *     [Train] stage retires, `past_window` plans from now;
 *   - the next `future_window` batches' already-cached slots must not
 *     be evicted either, or their write-back would race a future
 *     [Collect] read of the same CPU row (RAW-4).
 *
 * A slot is eligible for eviction iff its mask is zero: no mini-batch
 * inside the current window uses it. Mask width is therefore
 * past_window + 1 + future_window bits (paper: 3 + 1 + 2 = 6).
 *
 * Bit layout: bit 0 is the oldest mark (expires on the next advance).
 * The current batch marks bit `past_window`; a future batch at
 * distance d marks bit `past_window + d`.
 */

#ifndef SP_CORE_HOLD_MASK_H
#define SP_CORE_HOLD_MASK_H

#include <atomic>
#include <cstdint>
#include <cstddef>
#include <vector>

namespace sp::core
{

/** Per-slot sliding-window hold bits. */
class HoldMask
{
  public:
    /**
     * @param num_slots Slots in the Storage array.
     * @param past_window Plans the mark must survive (paper: 3, the
     *        [Plan]->[Train] distance).
     * @param future_window Upcoming batches marked ahead (paper: 2,
     *        the [Insert]->[Collect] distance).
     */
    HoldMask(uint32_t num_slots, uint32_t past_window,
             uint32_t future_window);

    uint32_t numSlots() const { return num_slots_; }
    uint32_t pastWindow() const { return past_window_; }
    uint32_t futureWindow() const { return future_window_; }
    uint32_t widthBits() const
    {
        return past_window_ + 1 + future_window_;
    }

    /** Slide the window one plan forward (shift every mask). */
    void advance();

    /** Mark `slot` as used by the current batch. */
    void markCurrent(uint32_t slot);

    /**
     * Mark `slot` as used by the batch `distance` plans in the future
     * (1 <= distance <= future_window).
     */
    void markFuture(uint32_t slot, uint32_t distance);

    /**
     * markCurrent/markFuture, safe under the sharded mark passes:
     * several shards of one pass may mark concurrently (two ranges
     * can contain duplicates of one ID, and neighbouring slots share
     * cache lines), so the bit lands via an atomic OR. The OR is
     * commutative and idempotent, which is what keeps sharded marking
     * bit-identical to the serial pass. No advance()/isHeld() may run
     * concurrently -- the pass is bracketed by plan()'s sequential
     * phases.
     */
    void markCurrentShared(uint32_t slot);
    void markFutureShared(uint32_t slot, uint32_t distance);

    /** True iff any batch in the window holds `slot`. */
    bool isHeld(uint32_t slot) const { return masks_[slot] != 0; }

    /** Raw mask bits of `slot` (tests/diagnostics). */
    uint16_t bits(uint32_t slot) const { return masks_[slot]; }

    /** Number of currently held slots (O(slots)). */
    uint32_t heldCount() const;

    /** Approximate heap bytes (overhead accounting, §VI-D). */
    size_t memoryBytes() const
    {
        return masks_.capacity() * sizeof(uint16_t);
    }

  private:
    uint32_t num_slots_;
    uint32_t past_window_;
    uint32_t future_window_;
    std::vector<uint16_t> masks_;
};

} // namespace sp::core

#endif // SP_CORE_HOLD_MASK_H
