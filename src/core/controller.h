/**
 * @file
 * The ScratchPipe cache controller (one instance per embedding table).
 *
 * Implements Algorithm 1 of the paper: on every [Plan] invocation the
 * controller advances the Hold masks, queries the Hit-Map for the
 * current mini-batch's sparse IDs, assigns hold-mask-eligible victim
 * slots to the misses, and pre-marks the future window. The returned
 * PlanResult is the complete data-movement schedule for the batch's
 * remaining pipeline stages:
 *
 *   [Collect]  read PlanResult::fills' rows from the CPU table and the
 *              evicted slots' current values from Storage;
 *   [Exchange] move both across PCIe;
 *   [Insert]   write fills into Storage, write evicted (dirty) rows
 *              back into the CPU table;
 *   [Train]    gather/scatter every ID of the batch in Storage --
 *              guaranteed to hit.
 *
 * The controller manipulates IDs and slots only; actual float movement
 * is the system layer's job (functional runs) or skipped entirely
 * (timing runs). This split keeps Algorithm 1 testable in isolation.
 */

#ifndef SP_CORE_CONTROLLER_H
#define SP_CORE_CONTROLLER_H

#include <cstdint>
#include <cstddef>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "cache/hit_map.h"
#include "cache/replacement.h"
#include "cache/slot_array.h"
#include "core/hold_mask.h"
#include "emb/embedding_table.h"

namespace sp::core
{

/** Controller construction parameters. */
struct ControllerConfig
{
    /** Storage slots in the GPU scratchpad for this table. */
    uint32_t num_slots = 0;
    /** Embedding dimension. */
    size_t dim = 0;
    /** Plans a current-batch mark survives (paper default 3). */
    uint32_t past_window = 3;
    /** Future batches pre-marked per plan (paper default 2). */
    uint32_t future_window = 2;
    /** Victim-selection policy (paper default LRU). */
    cache::PolicyKind policy = cache::PolicyKind::Lru;
    /** Seed for randomized policies. */
    uint64_t policy_seed = 1;
    /**
     * Shards for the [Plan] mark passes: the batched Hit-Map probes
     * (and their hold marking) split into this many contiguous ID
     * ranges over the shared worker pool. Algorithm 1's classify loop
     * stays sequential -- victim choice depends on earlier misses --
     * but the mark passes are pure probes plus commutative mark-bit
     * ORs, so any width produces bit-identical plans. 1 (default)
     * keeps planning fully on the calling thread.
     */
    uint32_t plan_shards = 1;
    /**
     * Batched-probe kernel for this controller's Hit-Map (spec key
     * probe=auto|scalar|native). Auto follows SP_SIMD; every kernel
     * is bit-identical, so this is a pure perf knob like plan_shards.
     */
    cache::ProbeMode probe = cache::ProbeMode::Auto;
    /** Materialise Storage floats (functional) or not (timing). */
    cache::SlotArray::Backing backing = cache::SlotArray::Backing::Dense;
    /**
     * Start with a full scratchpad holding rows 0..num_slots-1 (the
     * hottest ranks of the synthetic samplers), slot 0 most recently
     * used -- the LRU steady state a long run converges to. Lets the
     * timing benches measure steady state without tens of fill-up
     * batches. Phantom backing only: a dense Storage would hold no
     * values for the pre-resident rows.
     */
    bool warm_start = false;
};

/** One scheduled Storage fill: CPU row -> scratchpad slot. */
struct FillOp
{
    uint64_t id;   //!< CPU-table row to bring in
    uint32_t slot; //!< destination Storage slot
};

/** One scheduled write-back: scratchpad slot -> CPU row. */
struct EvictOp
{
    uint64_t id;   //!< CPU-table row to write back (the old key)
    uint32_t slot; //!< source Storage slot (read at [Collect])
};

/** The data-movement schedule produced by one [Plan] invocation. */
struct PlanResult
{
    /** ID-level hit count (duplicates of a missed ID count as hits). */
    uint64_t hits = 0;
    /** ID-level miss count == fills.size(). */
    uint64_t misses = 0;
    /** Rows to gather from the CPU table into Storage. */
    std::vector<FillOp> fills;
    /** Dirty rows to write back to the CPU table (<= fills.size();
     *  smaller while vacant slots remain). */
    std::vector<EvictOp> evictions;

    double
    hitRate() const
    {
        const uint64_t total = hits + misses;
        return total == 0 ? 0.0
                          : static_cast<double>(hits) /
                                static_cast<double>(total);
    }
};

/** Lifetime statistics of one controller. */
struct ControllerStats
{
    uint64_t plans = 0;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t fills = 0;
    uint64_t evictions = 0;
};

/** Per-table ScratchPipe cache controller (Algorithm 1). */
class ScratchPipeController
{
  public:
    explicit ScratchPipeController(const ControllerConfig &config);

    const ControllerConfig &config() const { return config_; }

    /**
     * Run the [Plan] stage for one mini-batch.
     *
     * @param current_ids The batch's sparse IDs for this table, trace
     *                    order.
     * @param future_ids  The next batches' ID spans, nearest first; at
     *                    most future_window entries are consulted
     *                    (fewer near the end of the trace).
     *
     * Returns a reference to per-controller scratch that is reused
     * (capacity retained, so the steady-state hot path allocates
     * nothing) and overwritten by the next plan() call; copy the
     * PlanResult to retain it across plans.
     *
     * fatal()s when no hold-mask-eligible victim exists -- the
     * capacity-bound violation of Section VI-D.
     */
    const PlanResult &
    plan(std::span<const uint64_t> current_ids,
         std::span<const std::span<const uint64_t>> future_ids);

    /** True iff `id` is resident in the scratchpad right now. */
    bool isResident(uint64_t id) const;

    /** Storage slot of a resident `id`; panics if absent. */
    uint32_t slotOf(uint64_t id) const;

    /** The key currently assigned to `slot` (kNoKey when vacant). */
    uint64_t keyOfSlot(uint32_t slot) const { return slot_key_[slot]; }

    /** Vacant-slot sentinel: the Hit-Map's reserved empty key, which
     *  no table geometry can produce as a row ID. */
    static constexpr uint64_t kNoKey = 0xffffffffffffffffull;

    /** Mutable Storage (functional fill/evict/train data movement). */
    cache::SlotArray &storage() { return storage_; }
    const cache::SlotArray &storage() const { return storage_; }

    const HoldMask &holdMask() const { return holds_; }
    const ControllerStats &stats() const { return stats_; }

    /**
     * Row accessor resolving resident IDs to Storage rows: the [Train]
     * stage's gather/scatter target. Panics on non-resident IDs --
     * i.e. if the "always hits" guarantee were ever violated.
     */
    class Accessor : public emb::RowAccessor
    {
      public:
        explicit Accessor(ScratchPipeController &controller)
            : controller_(controller)
        {
        }
        float *row(uint64_t id) override;
        const float *row(uint64_t id) const override;
        size_t dim() const override { return controller_.config_.dim; }

      private:
        ScratchPipeController &controller_;
    };

    Accessor accessor() { return Accessor(*this); }

    /**
     * Write every resident (dirty) row back into a dense CPU table:
     * end-of-training drain, needed before comparing table contents.
     */
    void flushTo(emb::EmbeddingTable &table) const;

    /**
     * Visit every resident (key, slot) pair. Lets satellite state
     * (e.g. per-row optimizer accumulators co-located with the
     * scratchpad) be drained alongside the embedding values.
     */
    void forEachResident(
        const std::function<void(uint64_t, uint32_t)> &fn) const;

    /**
     * Minimum slots that guarantee plan() can never fail: every ID of
     * every batch in the window distinct (paper §VI-D worst case).
     */
    static uint32_t worstCaseSlots(uint32_t past_window,
                                   uint32_t future_window,
                                   size_t ids_per_batch);

    /** Heap bytes of controller metadata (Hit-Map, masks, keys). */
    size_t metadataBytes() const;

  private:
    /** Shards actually used for an `n`-ID pass (config_.plan_shards
     *  capped so no shard probes fewer than kMinShardIds). */
    uint32_t shardsFor(size_t n) const;

    /**
     * One sharded mark pass: probe `ids` into probe_ (slot i from
     * call i, exactly as a single findMany) and mark every hit --
     * markCurrent when `future_distance` is 0, markFuture(distance)
     * otherwise. Marks are commutative OR-bits applied through the
     * HoldMask's shared (atomic) markers when sharded, so the
     * resulting masks equal the serial pass bit for bit.
     */
    void markPass(std::span<const uint64_t> ids, uint32_t future_distance);

    /** Sharded map_.findMany(ids, probe_) without marking (the
     *  classify pre-probe). */
    void probePass(std::span<const uint64_t> ids);

    ControllerConfig config_;
    cache::HitMap map_;
    HoldMask holds_;
    std::unique_ptr<cache::ReplacementPolicy> policy_;
    cache::SlotArray storage_;
    std::vector<uint64_t> slot_key_;
    ControllerStats stats_;
    // Reusable plan() scratch: the returned schedule and the batched
    // Hit-Map probe results. Cleared (capacity kept) every plan, so
    // the steady-state hot path performs no heap allocation.
    PlanResult plan_;
    std::vector<uint32_t> probe_;
};

} // namespace sp::core

#endif // SP_CORE_CONTROLLER_H
