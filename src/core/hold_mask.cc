#include "core/hold_mask.h"

#include <algorithm>

#include "common/logging.h"

namespace sp::core
{

HoldMask::HoldMask(uint32_t num_slots, uint32_t past_window,
                   uint32_t future_window)
    : num_slots_(num_slots), past_window_(past_window),
      future_window_(future_window)
{
    fatalIf(num_slots == 0, "HoldMask needs at least one slot");
    fatalIf(widthBits() > 16,
            "hold-mask window of ", widthBits(),
            " bits exceeds the 16-bit mask storage");
    masks_.assign(num_slots_, 0);
}

void
HoldMask::advance()
{
    for (auto &mask : masks_)
        mask = static_cast<uint16_t>(mask >> 1);
}

void
HoldMask::markCurrent(uint32_t slot)
{
    panicIf(slot >= num_slots_, "markCurrent of bad slot ", slot);
    masks_[slot] =
        static_cast<uint16_t>(masks_[slot] | (1u << past_window_));
}

void
HoldMask::markFuture(uint32_t slot, uint32_t distance)
{
    panicIf(slot >= num_slots_, "markFuture of bad slot ", slot);
    panicIf(distance == 0 || distance > future_window_,
            "markFuture distance ", distance, " outside window of ",
            future_window_);
    masks_[slot] = static_cast<uint16_t>(
        masks_[slot] | (1u << (past_window_ + distance)));
}

void
HoldMask::markCurrentShared(uint32_t slot)
{
    panicIf(slot >= num_slots_, "markCurrent of bad slot ", slot);
    std::atomic_ref<uint16_t>(masks_[slot])
        .fetch_or(static_cast<uint16_t>(1u << past_window_),
                  std::memory_order_relaxed);
}

void
HoldMask::markFutureShared(uint32_t slot, uint32_t distance)
{
    panicIf(slot >= num_slots_, "markFuture of bad slot ", slot);
    panicIf(distance == 0 || distance > future_window_,
            "markFuture distance ", distance, " outside window of ",
            future_window_);
    std::atomic_ref<uint16_t>(masks_[slot])
        .fetch_or(static_cast<uint16_t>(1u << (past_window_ + distance)),
                  std::memory_order_relaxed);
}

uint32_t
HoldMask::heldCount() const
{
    return static_cast<uint32_t>(
        std::count_if(masks_.begin(), masks_.end(),
                      [](uint16_t m) { return m != 0; }));
}

} // namespace sp::core
