#include "core/hazard_audit.h"

#include "common/logging.h"

namespace sp::core
{

void
HazardAuditor::beginCycle(uint64_t cycle)
{
    panicIf(in_cycle_, "beginCycle without endCycle");
    current_cycle_ = cycle;
    in_cycle_ = true;
    tables_.clear();
}

HazardAuditor::TableAccesses &
HazardAuditor::tableAccess(size_t table)
{
    panicIf(!in_cycle_, "hazard access recorded outside a cycle");
    return tables_[table];
}

void
HazardAuditor::collectReadsVictimSlot(size_t table, uint32_t slot)
{
    tableAccess(table).victim_slot_reads.insert(slot);
    ++checked_;
}

void
HazardAuditor::insertWritesSlot(size_t table, uint32_t slot)
{
    tableAccess(table).insert_slot_writes.insert(slot);
    ++checked_;
}

void
HazardAuditor::trainWritesSlot(size_t table, uint32_t slot)
{
    tableAccess(table).train_slot_writes.insert(slot);
    ++checked_;
}

void
HazardAuditor::collectReadsCpuRow(size_t table, uint64_t row)
{
    tableAccess(table).collect_row_reads.insert(row);
    ++checked_;
}

void
HazardAuditor::insertWritesCpuRow(size_t table, uint64_t row)
{
    tableAccess(table).insert_row_writes.insert(row);
    ++checked_;
}

void
HazardAuditor::endCycle()
{
    panicIf(!in_cycle_, "endCycle without beginCycle");
    for (const auto &[table, access] : tables_) {
        for (uint32_t slot : access.victim_slot_reads) {
            panicIf(access.train_slot_writes.count(slot) > 0,
                    "RAW-2 hazard: cycle ", current_cycle_, " table ",
                    table, " slot ", slot,
                    " read as victim while [Train] writes it");
            panicIf(access.insert_slot_writes.count(slot) > 0,
                    "RAW-3 hazard: cycle ", current_cycle_, " table ",
                    table, " slot ", slot,
                    " read as victim while [Insert] fills it");
        }
        for (uint32_t slot : access.insert_slot_writes) {
            panicIf(access.train_slot_writes.count(slot) > 0,
                    "WAW hazard: cycle ", current_cycle_, " table ",
                    table, " slot ", slot,
                    " written by both [Insert] and [Train]");
        }
        for (uint64_t row : access.collect_row_reads) {
            panicIf(access.insert_row_writes.count(row) > 0,
                    "RAW-4 hazard: cycle ", current_cycle_, " table ",
                    table, " CPU row ", row,
                    " gathered while [Insert] writes it back");
        }
    }
    in_cycle_ = false;
    ++cycles_;
}

} // namespace sp::core
