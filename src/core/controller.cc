#include "core/controller.h"

#include <algorithm>
#include <cstring>

#include "common/logging.h"
#include "common/thread_pool.h"

namespace sp::core
{

namespace
{

/** Below this many IDs per shard, splitting a probe pass costs more
 *  in task hand-off than the DRAM overlap buys. */
constexpr size_t kMinShardIds = 64;

} // namespace

ScratchPipeController::ScratchPipeController(const ControllerConfig &config)
    : config_(config), map_(config.num_slots),
      holds_(config.num_slots, config.past_window, config.future_window),
      policy_(cache::makePolicy(config.policy, config.policy_seed)),
      storage_(config.num_slots, config.dim, config.backing),
      slot_key_(config.num_slots, kNoKey)
{
    fatalIf(config.num_slots == 0,
            "ScratchPipe controller needs at least one slot");
    fatalIf(config.dim == 0, "embedding dimension must be positive");
    map_.setProbeMode(config.probe);
    policy_->reset(config.num_slots);

    if (config.warm_start) {
        fatalIf(storage_.isDense(),
                "warm_start requires phantom Storage (no values exist "
                "for the pre-resident rows)");
        fatalIf(config.num_slots > (1ull << 31),
                "warm_start slot count out of row-ID range");
        // Resident set = rows 0..num_slots-1 (the hottest ranks).
        // Touch order makes slot 0 the MRU end, matching where a long
        // LRU run on a rank-ordered Zipf trace converges.
        for (uint32_t slot = config.num_slots; slot-- > 0;) {
            map_.insert(slot, slot);
            slot_key_[slot] = slot;
            policy_->touch(slot);
        }
    }
}

uint32_t
ScratchPipeController::shardsFor(size_t n) const
{
    if (config_.plan_shards <= 1 || n < 2 * kMinShardIds)
        return 1;
    return static_cast<uint32_t>(std::min<size_t>(
        config_.plan_shards, n / kMinShardIds));
}

void
ScratchPipeController::markPass(std::span<const uint64_t> ids,
                                uint32_t future_distance)
{
    probe_.resize(ids.size());
    const uint32_t shards = shardsFor(ids.size());
    if (shards <= 1) {
        map_.findMany(ids, probe_);
        for (const uint32_t slot : probe_) {
            if (slot == cache::HitMap::kNotFound)
                continue;
            if (future_distance == 0)
                holds_.markCurrent(slot);
            else
                holds_.markFuture(slot, future_distance);
        }
        return;
    }

    // Contiguous ID ranges, one per shard: shard s probes its range
    // into the matching range of probe_ (slot i from call i, exactly
    // the single-findMany layout) and applies its own marks through
    // the atomic markers. The Hit-Map is read-only for the whole
    // pass, and mark bits OR in commutatively, so the merged result
    // is bit-identical to the serial pass at any width.
    const size_t chunk = (ids.size() + shards - 1) / shards;
    common::ThreadPool::global().parallelFor(
        shards,
        [this, ids, future_distance, chunk](size_t s) {
            const size_t begin = s * chunk;
            const size_t end = std::min(ids.size(), begin + chunk);
            if (begin >= end)
                return;
            const auto sub_ids = ids.subspan(begin, end - begin);
            const auto sub_out =
                std::span<uint32_t>(probe_).subspan(begin, end - begin);
            map_.findMany(sub_ids, sub_out);
            for (const uint32_t slot : sub_out) {
                if (slot == cache::HitMap::kNotFound)
                    continue;
                if (future_distance == 0)
                    holds_.markCurrentShared(slot);
                else
                    holds_.markFutureShared(slot, future_distance);
            }
        },
        shards - 1);
}

void
ScratchPipeController::probePass(std::span<const uint64_t> ids)
{
    // probe_ retains capacity across batches, so steady state does
    // not allocate; the allow also severs the resolver's false edge
    // to tensor::Matrix::resize.
    // splint:allow(hot-path-transitive-alloc): capacity retained, steady state allocation-free
    probe_.resize(ids.size());
    const uint32_t shards = shardsFor(ids.size());
    if (shards <= 1) {
        map_.findMany(ids, probe_);
        return;
    }
    const size_t chunk = (ids.size() + shards - 1) / shards;
    common::ThreadPool::global().parallelFor(
        shards,
        [this, ids, chunk](size_t s) {
            const size_t begin = s * chunk;
            const size_t end = std::min(ids.size(), begin + chunk);
            if (begin >= end)
                return;
            map_.findMany(ids.subspan(begin, end - begin),
                          std::span<uint32_t>(probe_).subspan(
                              begin, end - begin));
        },
        shards - 1);
}

const PlanResult &
ScratchPipeController::plan(
    std::span<const uint64_t> current_ids,
    std::span<const std::span<const uint64_t>> future_ids)
{
    // Reset the reusable schedule; clear() keeps vector capacity, so
    // a warmed-up controller plans without touching the heap.
    plan_.hits = 0;
    plan_.misses = 0;
    plan_.fills.clear();
    plan_.evictions.clear();

    // Step B of Algorithm 1: slide the window.
    holds_.advance();

    // Build the protected superset *before* any victim is chosen
    // (Section IV-C: the window's IDs are "ruled out from cache
    // eviction candidates"). Algorithm 1's listing interleaves hit
    // marking with victim selection; marking the current batch's
    // resident rows and the future window first is the order that
    // actually removes RAW-4 -- otherwise an early miss could evict a
    // row a later lookup of this very window still needs.
    //
    // With future_window >= 2 the current pre-mark pass is redundant:
    // every resident row of this batch was already future-marked by
    // the previous two plans (each scanned this batch at distance 1
    // and 2 *before* selecting its own victims), or current-marked by
    // the plan that inserted it within the past window. Narrower
    // windows (the straw-man's 0) lack that cover, so the pass stays.
    // Probe latency against the multi-MB Hit-Map dominates planning
    // at paper scale; every scan goes through the software-pipelined
    // batched probe, split into plan_shards ID ranges over the worker
    // pool when the controller is configured to shard.
    if (config_.future_window < 2)
        markPass(current_ids, 0);
    const uint32_t window =
        std::min<uint32_t>(config_.future_window,
                           static_cast<uint32_t>(future_ids.size()));
    for (uint32_t d = 1; d <= window; ++d)
        markPass(future_ids[d - 1], d);

    // splint:hot-path-begin(plan-classify)
    // Step C: classify the current batch and assign victims to misses.
    // The batched pre-probe is taken before any insert/erase of this
    // pass, so each result needs an O(1) revalidation against the live
    // state: a pre-probe miss may have been filled by an earlier
    // duplicate of the same ID, and a pre-probe hit may have been
    // evicted by an earlier miss (possible only while hold marks are
    // still warming up, e.g. the first plans after warm_start). Both
    // cases fall back to a live probe, so the outcome is exactly what
    // the old one-find-per-ID loop produced.
    probePass(current_ids);
    for (size_t i = 0; i < current_ids.size(); ++i) {
        const uint64_t id = current_ids[i];
        uint32_t slot = probe_[i];
        if (slot == cache::HitMap::kNotFound || slot_key_[slot] != id)
            slot = map_.find(id);
        // The accepted pre-probe result must agree with a live probe:
        // slot_key_ is the controller's inverse index of the Hit-Map,
        // and any divergence means revalidation let a stale result
        // through (the bug class the O(1) check exists to stop).
        SP_ASSERT(slot == map_.find(id),
                  "slot_key_ revalidation diverged from the live "
                  "Hit-Map for id ", id);
        if (slot != cache::HitMap::kNotFound) {
            ++plan_.hits;
            policy_->touch(slot);
            holds_.markCurrent(slot);
            continue;
        }

        ++plan_.misses;
        const uint32_t victim = policy_->chooseVictim(
            [this](uint32_t s) { return !holds_.isHeld(s); });
        fatalIf(victim == cache::ReplacementPolicy::kNoVictim,
                "scratchpad under-provisioned: all ", config_.num_slots,
                " slots are held by in-flight mini-batches; provision at "
                "least the worst-case window working set (paper §VI-D)");

        const uint64_t old_key = slot_key_[victim];
        if (old_key != kNoKey) {
            map_.erase(old_key);
            // plan_ is per-controller scratch; clear() above keeps
            // the vector's allocation, so steady state never grows.
            // splint:allow(hot-path-alloc): capacity retained across plans
            plan_.evictions.push_back(EvictOp{old_key, victim});
        }
        map_.insert(id, victim);
        slot_key_[victim] = id;
        SP_ASSERT(map_.find(id) == victim, "fill of id ", id,
                  " did not land in victim slot ", victim);
        // splint:allow(hot-path-alloc): capacity retained across plans
        plan_.fills.push_back(FillOp{id, victim});
        policy_->touch(victim);
        holds_.markCurrent(victim);
    }
    // splint:hot-path-end

    ++stats_.plans;
    stats_.hits += plan_.hits;
    stats_.misses += plan_.misses;
    stats_.fills += plan_.fills.size();
    stats_.evictions += plan_.evictions.size();
    return plan_;
}

bool
ScratchPipeController::isResident(uint64_t id) const
{
    return map_.contains(id);
}

uint32_t
ScratchPipeController::slotOf(uint64_t id) const
{
    const uint32_t slot = map_.find(id);
    panicIf(slot == cache::HitMap::kNotFound,
            "ID ", id, " is not resident in the scratchpad");
    return slot;
}

float *
ScratchPipeController::Accessor::row(uint64_t id)
{
    return controller_.storage_.slot(controller_.slotOf(id));
}

const float *
ScratchPipeController::Accessor::row(uint64_t id) const
{
    return controller_.storage_.slot(controller_.slotOf(id));
}

void
ScratchPipeController::flushTo(emb::EmbeddingTable &table) const
{
    panicIf(table.dim() != config_.dim,
            "dimension mismatch flushing scratchpad");
    map_.forEach([this, &table](uint64_t key, uint32_t slot) {
        std::memcpy(table.row(key), storage_.slot(slot),
                    storage_.rowBytes());
    });
}

void
ScratchPipeController::forEachResident(
    const std::function<void(uint64_t, uint32_t)> &fn) const
{
    map_.forEach(fn);
}

uint32_t
ScratchPipeController::worstCaseSlots(uint32_t past_window,
                                      uint32_t future_window,
                                      size_t ids_per_batch)
{
    // Every batch in the window (past + current + future) may pin a
    // fully distinct set of IDs.
    const uint64_t batches = past_window + 1ull + future_window;
    return static_cast<uint32_t>(batches * ids_per_batch);
}

size_t
ScratchPipeController::metadataBytes() const
{
    return map_.memoryBytes() + holds_.memoryBytes() +
           slot_key_.capacity() * sizeof(uint64_t);
}

} // namespace sp::core
