#include "core/controller.h"

#include <algorithm>
#include <cstring>

#include "common/logging.h"

namespace sp::core
{

ScratchPipeController::ScratchPipeController(const ControllerConfig &config)
    : config_(config), map_(config.num_slots),
      holds_(config.num_slots, config.past_window, config.future_window),
      policy_(cache::makePolicy(config.policy, config.policy_seed)),
      storage_(config.num_slots, config.dim, config.backing),
      slot_key_(config.num_slots, kNoKey)
{
    fatalIf(config.num_slots == 0,
            "ScratchPipe controller needs at least one slot");
    fatalIf(config.dim == 0, "embedding dimension must be positive");
    policy_->reset(config.num_slots);

    if (config.warm_start) {
        fatalIf(storage_.isDense(),
                "warm_start requires phantom Storage (no values exist "
                "for the pre-resident rows)");
        fatalIf(config.num_slots > (1ull << 31),
                "warm_start slot count out of row-ID range");
        // Resident set = rows 0..num_slots-1 (the hottest ranks).
        // Touch order makes slot 0 the MRU end, matching where a long
        // LRU run on a rank-ordered Zipf trace converges.
        for (uint32_t slot = config.num_slots; slot-- > 0;) {
            map_.insert(slot, slot);
            slot_key_[slot] = slot;
            policy_->touch(slot);
        }
    }
}

PlanResult
ScratchPipeController::plan(
    std::span<const uint32_t> current_ids,
    std::span<const std::span<const uint32_t>> future_ids)
{
    PlanResult result;

    // Step B of Algorithm 1: slide the window.
    holds_.advance();

    // Build the protected superset *before* any victim is chosen
    // (Section IV-C: the window's IDs are "ruled out from cache
    // eviction candidates"). Algorithm 1's listing interleaves hit
    // marking with victim selection; marking the current batch's
    // resident rows and the future window first is the order that
    // actually removes RAW-4 -- otherwise an early miss could evict a
    // row a later lookup of this very window still needs.
    //
    // With future_window >= 2 the current pre-mark pass is redundant:
    // every resident row of this batch was already future-marked by
    // the previous two plans (each scanned this batch at distance 1
    // and 2 *before* selecting its own victims), or current-marked by
    // the plan that inserted it within the past window. Narrower
    // windows (the straw-man's 0) lack that cover, so the pass stays.
    // Probe latency against the multi-MB Hit-Map dominates planning
    // at paper scale; each scan loop prefetches a few IDs ahead.
    constexpr size_t kPrefetch = 12;
    if (config_.future_window < 2) {
        for (size_t i = 0; i < current_ids.size(); ++i) {
            if (i + kPrefetch < current_ids.size())
                map_.prefetch(current_ids[i + kPrefetch]);
            const uint32_t slot = map_.find(current_ids[i]);
            if (slot != cache::HitMap::kNotFound)
                holds_.markCurrent(slot);
        }
    }
    const uint32_t window =
        std::min<uint32_t>(config_.future_window,
                           static_cast<uint32_t>(future_ids.size()));
    for (uint32_t d = 1; d <= window; ++d) {
        const auto ids = future_ids[d - 1];
        for (size_t i = 0; i < ids.size(); ++i) {
            if (i + kPrefetch < ids.size())
                map_.prefetch(ids[i + kPrefetch]);
            const uint32_t slot = map_.find(ids[i]);
            if (slot != cache::HitMap::kNotFound)
                holds_.markFuture(slot, d);
        }
    }

    // Step C: classify the current batch and assign victims to misses.
    for (size_t i = 0; i < current_ids.size(); ++i) {
        if (i + kPrefetch < current_ids.size())
            map_.prefetch(current_ids[i + kPrefetch]);
        const uint32_t id = current_ids[i];
        uint32_t slot = map_.find(id);
        if (slot != cache::HitMap::kNotFound) {
            ++result.hits;
            policy_->touch(slot);
            holds_.markCurrent(slot);
            continue;
        }

        ++result.misses;
        const uint32_t victim = policy_->chooseVictim(
            [this](uint32_t s) { return !holds_.isHeld(s); });
        fatalIf(victim == cache::ReplacementPolicy::kNoVictim,
                "scratchpad under-provisioned: all ", config_.num_slots,
                " slots are held by in-flight mini-batches; provision at "
                "least the worst-case window working set (paper §VI-D)");

        const uint32_t old_key = slot_key_[victim];
        if (old_key != kNoKey) {
            map_.erase(old_key);
            result.evictions.push_back(EvictOp{old_key, victim});
        }
        map_.insert(id, victim);
        slot_key_[victim] = id;
        result.fills.push_back(FillOp{id, victim});
        policy_->touch(victim);
        holds_.markCurrent(victim);
    }

    ++stats_.plans;
    stats_.hits += result.hits;
    stats_.misses += result.misses;
    stats_.fills += result.fills.size();
    stats_.evictions += result.evictions.size();
    return result;
}

bool
ScratchPipeController::isResident(uint32_t id) const
{
    return map_.contains(id);
}

uint32_t
ScratchPipeController::slotOf(uint32_t id) const
{
    const uint32_t slot = map_.find(id);
    panicIf(slot == cache::HitMap::kNotFound,
            "ID ", id, " is not resident in the scratchpad");
    return slot;
}

float *
ScratchPipeController::Accessor::row(uint32_t id)
{
    return controller_.storage_.slot(controller_.slotOf(id));
}

const float *
ScratchPipeController::Accessor::row(uint32_t id) const
{
    return controller_.storage_.slot(controller_.slotOf(id));
}

void
ScratchPipeController::flushTo(emb::EmbeddingTable &table) const
{
    panicIf(table.dim() != config_.dim,
            "dimension mismatch flushing scratchpad");
    map_.forEach([this, &table](uint32_t key, uint32_t slot) {
        std::memcpy(table.row(key), storage_.slot(slot),
                    storage_.rowBytes());
    });
}

void
ScratchPipeController::forEachResident(
    const std::function<void(uint32_t, uint32_t)> &fn) const
{
    map_.forEach(fn);
}

uint32_t
ScratchPipeController::worstCaseSlots(uint32_t past_window,
                                      uint32_t future_window,
                                      size_t ids_per_batch)
{
    // Every batch in the window (past + current + future) may pin a
    // fully distinct set of IDs.
    const uint64_t batches = past_window + 1ull + future_window;
    return static_cast<uint32_t>(batches * ids_per_batch);
}

size_t
ScratchPipeController::metadataBytes() const
{
    return map_.memoryBytes() + holds_.memoryBytes() +
           slot_key_.capacity() * sizeof(uint32_t);
}

} // namespace sp::core
