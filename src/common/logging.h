/**
 * @file
 * Error-reporting helpers in the gem5 style.
 *
 * fatal(): the run cannot continue because of a user-level error (bad
 * configuration, impossible parameter combination). Throws
 * sp::FatalError so callers (and tests) can observe it.
 *
 * panic(): an internal invariant was violated -- a bug in this library,
 * never the user's fault. Also throws, with a distinct type, so the
 * property tests can assert that specific hazards are caught.
 *
 * SP_ASSERT(cond, msg...): a checked-invariant assertion, compiled in
 * only when the build defines SP_CHECK_INVARIANTS (cmake -DSP_CHECK=ON;
 * CI's debug and sanitizer jobs). On violation it panics with the
 * stringized condition and the formatted message. Release builds
 * compile it away entirely -- the condition is not evaluated -- so
 * checks may be as expensive as they need to be (e.g. re-probing a
 * whole Hit-Map cluster after an erase).
 */

#ifndef SP_COMMON_LOGGING_H
#define SP_COMMON_LOGGING_H

#include <sstream>
#include <stdexcept>
#include <string>

namespace sp
{

/** Raised by fatal(): a user/configuration error. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg) : std::runtime_error(msg) {}
};

/** Raised by panic(): an internal invariant violation. */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg) : std::logic_error(msg) {}
};

namespace detail
{

inline void
formatInto(std::ostringstream &)
{
}

template <typename T, typename... Rest>
void
formatInto(std::ostringstream &os, const T &value, const Rest &...rest)
{
    os << value;
    formatInto(os, rest...);
}

} // namespace detail

/** Abort the run due to a user-level error (bad config, bad args). */
template <typename... Args>
[[noreturn]] void
fatal(const Args &...args)
{
    std::ostringstream os;
    os << "fatal: ";
    detail::formatInto(os, args...);
    throw FatalError(os.str());
}

/** Abort the run due to an internal invariant violation (library bug). */
template <typename... Args>
[[noreturn]] void
panic(const Args &...args)
{
    std::ostringstream os;
    os << "panic: ";
    detail::formatInto(os, args...);
    throw PanicError(os.str());
}

/** Check a condition that is the user's responsibility. */
template <typename... Args>
void
fatalIf(bool cond, const Args &...args)
{
    if (cond)
        fatal(args...);
}

/** Check an internal invariant. */
template <typename... Args>
void
panicIf(bool cond, const Args &...args)
{
    if (cond)
        panic(args...);
}

/**
 * Emit "warn: <message>" on stderr, rate-limited per `key`: the first
 * few occurrences of a key are logged verbatim, after which only every
 * 64th is shown (with a suppressed count), so a failure branch hit in
 * a loop -- a cache directory on a full disk, say -- cannot flood the
 * run's diagnostics. Counting is per-process and clock-free, keeping
 * simulation output deterministic. Thread-safe.
 */
void warnRateLimited(const std::string &key, const std::string &message);

/** True in checked-invariant builds (cmake -DSP_CHECK=ON). */
#ifdef SP_CHECK_INVARIANTS
inline constexpr bool kCheckedInvariants = true;
#else
inline constexpr bool kCheckedInvariants = false;
#endif

} // namespace sp

#ifdef SP_CHECK_INVARIANTS
#define SP_ASSERT(cond, ...)                                          \
    do {                                                              \
        if (!(cond))                                                  \
            ::sp::panic("SP_ASSERT(" #cond ") failed"                 \
                        __VA_OPT__(, ": ", __VA_ARGS__));             \
    } while (false)
#else
// The condition must still parse (typos break every build, not just
// checked ones) but is never evaluated.
#define SP_ASSERT(cond, ...)                                          \
    do {                                                              \
        if (false) {                                                  \
            (void)(cond);                                             \
        }                                                             \
    } while (false)
#endif

#endif // SP_COMMON_LOGGING_H
