#include "common/cpu_features.h"

#include <cstdlib>
#include <cstring>

#include "common/logging.h"

namespace sp::common
{

bool
cpuSupportsAvx2()
{
#if defined(__x86_64__) || defined(_M_X64)
    // __builtin_cpu_supports consults cpuid once and caches; it is the
    // portable gcc/clang spelling of the AVX2 OSXSAVE dance.
    return __builtin_cpu_supports("avx2");
#else
    return false;
#endif
}

bool
cpuSupportsNeon()
{
#if defined(__aarch64__)
    // Advanced SIMD is architecturally mandatory on AArch64.
    return true;
#else
    return false;
#endif
}

SimdPreference
parseSimdPreference(const char *value)
{
    if (value == nullptr || *value == '\0' ||
        std::strcmp(value, "native") == 0)
        return SimdPreference::Native;
    if (std::strcmp(value, "scalar") == 0)
        return SimdPreference::Scalar;
    fatal("SP_SIMD expects 'scalar' or 'native', got '", value, "'");
}

SimdPreference
simdPreference()
{
    // Latched at first use: every HitMap constructed afterwards sees
    // the same answer, so one process never mixes kernel families
    // behind the caller's back.
    static const SimdPreference preference =
        parseSimdPreference(std::getenv("SP_SIMD"));
    return preference;
}

const char *
simdPreferenceName(SimdPreference preference)
{
    return preference == SimdPreference::Scalar ? "scalar" : "native";
}

} // namespace sp::common
