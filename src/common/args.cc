#include "common/args.h"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <sstream>

#include "common/logging.h"

namespace sp
{

ArgParser::ArgParser(std::string program_description)
    : description_(std::move(program_description))
{
}

void
ArgParser::addString(const std::string &name, const std::string &fallback,
                     const std::string &help)
{
    flags_[name] = Flag{Kind::String, fallback, fallback, help, false};
}

void
ArgParser::addInt(const std::string &name, int64_t fallback,
                  const std::string &help)
{
    flags_[name] = Flag{Kind::Int, std::to_string(fallback),
                        std::to_string(fallback), help, false};
}

void
ArgParser::addDouble(const std::string &name, double fallback,
                     const std::string &help)
{
    std::ostringstream os;
    os << fallback;
    flags_[name] = Flag{Kind::Double, os.str(), os.str(), help, false};
}

void
ArgParser::addBool(const std::string &name, const std::string &help)
{
    flags_[name] = Flag{Kind::Bool, "false", "false", help, false};
}

bool
ArgParser::parse(int argc, const char *const *argv)
{
    if (argc > 0)
        program_ = argv[0];
    for (int i = 1; i < argc; ++i) {
        std::string token = argv[i];
        if (token == "--help" || token == "-h")
            return false;
        fatalIf(token.rfind("--", 0) != 0, "unexpected argument '", token,
                "' (flags start with --)");
        token = token.substr(2);

        std::string value;
        bool has_value = false;
        const size_t eq = token.find('=');
        if (eq != std::string::npos) {
            value = token.substr(eq + 1);
            token = token.substr(0, eq);
            has_value = true;
        }

        auto it = flags_.find(token);
        fatalIf(it == flags_.end(), "unknown flag --", token, "\n",
                usage());
        Flag &flag = it->second;

        if (flag.kind == Kind::Bool) {
            flag.value = has_value ? value : "true";
        } else {
            if (!has_value) {
                fatalIf(i + 1 >= argc, "flag --", token,
                        " expects a value");
                value = argv[++i];
            }
            if (flag.kind == Kind::Int) {
                char *end = nullptr;
                errno = 0;
                std::strtoll(value.c_str(), &end, 10);
                fatalIf(end == value.c_str() || *end != '\0', "flag --",
                        token, " expects an integer, got '", value, "'");
                // strtoll clamps out-of-range input to LLONG_MIN/MAX
                // and only reports it via errno; accepting the clamp
                // would silently turn a typo into a huge value.
                fatalIf(errno == ERANGE, "flag --", token,
                        " value '", value, "' overflows a 64-bit int");
            } else if (flag.kind == Kind::Double) {
                char *end = nullptr;
                errno = 0;
                const double parsed = std::strtod(value.c_str(), &end);
                fatalIf(end == value.c_str() || *end != '\0', "flag --",
                        token, " expects a number, got '", value, "'");
                // ERANGE alone also covers harmless underflow to a
                // subnormal; only the overflow clamp to +/-HUGE_VAL
                // loses the user's value.
                fatalIf(errno == ERANGE &&
                            (parsed == HUGE_VAL || parsed == -HUGE_VAL),
                        "flag --", token, " value '", value,
                        "' overflows a double");
            }
            flag.value = value;
        }
        flag.set = true;
    }
    return true;
}

const ArgParser::Flag &
ArgParser::flagOrDie(const std::string &name, Kind kind) const
{
    auto it = flags_.find(name);
    panicIf(it == flags_.end(), "flag --", name, " was never registered");
    panicIf(it->second.kind != kind, "flag --", name,
            " accessed with the wrong type");
    return it->second;
}

std::string
ArgParser::getString(const std::string &name) const
{
    return flagOrDie(name, Kind::String).value;
}

int64_t
ArgParser::getInt(const std::string &name) const
{
    return std::strtoll(flagOrDie(name, Kind::Int).value.c_str(), nullptr,
                        10);
}

double
ArgParser::getDouble(const std::string &name) const
{
    return std::strtod(flagOrDie(name, Kind::Double).value.c_str(),
                       nullptr);
}

bool
ArgParser::getBool(const std::string &name) const
{
    const std::string &value = flagOrDie(name, Kind::Bool).value;
    return value == "true" || value == "1" || value == "yes";
}

bool
ArgParser::wasSet(const std::string &name) const
{
    auto it = flags_.find(name);
    panicIf(it == flags_.end(), "flag --", name, " was never registered");
    return it->second.set;
}

uint32_t
parseJobsArg(const ArgParser &args, const std::string &name)
{
    const int64_t jobs = args.getInt(name);
    fatalIf(jobs < 0, "--", name, " must be >= 0 (0 = all cores), got ",
            jobs);
    fatalIf(jobs > kMaxJobs, "--", name, " must be <= ", kMaxJobs,
            ", got ", jobs);
    return static_cast<uint32_t>(jobs);
}

std::string
ArgParser::usage() const
{
    std::ostringstream os;
    os << description_ << "\n\nusage: " << program_ << " [flags]\n";
    for (const auto &[name, flag] : flags_) {
        os << "  --" << name;
        if (flag.kind != Kind::Bool)
            os << " <" << flag.fallback << ">";
        os << "  " << flag.help << "\n";
    }
    return os.str();
}

} // namespace sp
