/**
 * @file
 * Runtime CPU feature detection and the SP_SIMD knob.
 *
 * The probe kernels (src/cache/probe_kernel.h) are compiled per
 * architecture -- the AVX2 translation unit with a per-file -mavx2,
 * the NEON one only on aarch64 -- so the binary stays portable and
 * the right kernel is picked at run time. This header answers the two
 * questions that selection needs: what the host CPU supports, and
 * what the user asked for via the SP_SIMD environment variable
 * (scalar | native, default native).
 */

#ifndef SP_COMMON_CPU_FEATURES_H
#define SP_COMMON_CPU_FEATURES_H

namespace sp::common
{

/** True when the host CPU executes AVX2 (x86-64 only; false elsewhere). */
bool cpuSupportsAvx2();

/** True on aarch64 (NEON/ASIMD is baseline there; false elsewhere). */
bool cpuSupportsNeon();

/** User intent for SIMD kernel selection. */
enum class SimdPreference
{
    Scalar, //!< force the scalar reference kernels everywhere
    Native, //!< best kernel the build and the CPU both support
};

/**
 * Parse an SP_SIMD value ("scalar" or "native"); fatal()s on anything
 * else. Split out from simdPreference() so tests can exercise the
 * parsing without mutating the process environment.
 */
SimdPreference parseSimdPreference(const char *value);

/**
 * The process-wide preference: SP_SIMD when set, else Native. Read
 * once and cached -- kernel selection must not flip mid-run.
 */
SimdPreference simdPreference();

/** "scalar" / "native". */
const char *simdPreferenceName(SimdPreference preference);

} // namespace sp::common

#endif // SP_COMMON_CPU_FEATURES_H
