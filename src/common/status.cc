#include "common/status.h"

namespace sp
{

const char *
errorCodeName(ErrorCode code)
{
    switch (code) {
    case ErrorCode::Ok:
        return "ok";
    case ErrorCode::IoError:
        return "io-error";
    case ErrorCode::NoSpace:
        return "no-space";
    case ErrorCode::NotFound:
        return "not-found";
    case ErrorCode::Corrupt:
        return "corrupt";
    case ErrorCode::Truncated:
        return "truncated";
    case ErrorCode::VersionMismatch:
        return "version-mismatch";
    case ErrorCode::Unsupported:
        return "unsupported";
    case ErrorCode::FaultInjected:
        return "fault-injected";
    }
    panic("unhandled ErrorCode ", static_cast<int>(code));
}

} // namespace sp
