/**
 * @file
 * Deterministic fault-injection engine.
 *
 * Failure paths rot unless CI walks them. This engine plants *named
 * fault sites* on every environmental-failure branch the simulator is
 * supposed to survive -- a rename race during TraceStore publish, a
 * failed mmap, a read that hits a truncated batch -- and lets a test
 * (or an operator, via the SP_FAULTS environment variable or
 * `spsim --faults`) make any of them fire on an exact, replayable
 * schedule.
 *
 * Usage at a failure branch:
 *
 *     SP_FAULT_POINT("trace_store.publish.rename");
 *     // ... the real rename ...
 *
 * When the site's schedule says "fire", the macro throws
 * FaultInjectedError (a StatusError with code ErrorCode::FaultInjected),
 * which travels the *same* recovery path a real environmental failure
 * would. When no schedule is armed -- the production case -- the macro
 * is a single relaxed atomic load and a not-taken branch.
 *
 * Schedule grammar (SP_FAULTS / --faults), entries joined by ';':
 *
 *     site                    fire on the first hit
 *     site:after=N            fire once, on hit N+1
 *     site:every=M            fire on every M-th hit
 *     site:after=N,every=M    skip N hits, then every M-th
 *     site:p=0.25             fire each hit with probability 0.25
 *     site:p=0.25,seed=42     ... from an explicit seed
 *
 * Probabilistic schedules draw from a per-site splitmix64 stream; the
 * seed (explicit or the default 0) is recorded in describe() so any
 * probabilistic run can be replayed exactly. Sites must come from the
 * registry in sites() -- configuring an unknown site is a fatal()
 * with the known names listed, so typos die loudly instead of
 * silently testing nothing.
 *
 * Sites may not sit inside splint hot-path regions (the hot-path-alloc
 * rule rejects SP_FAULT_POINT there); per-call cost off the hot path
 * is one predictable branch.
 */

#ifndef SP_COMMON_FAULT_H
#define SP_COMMON_FAULT_H

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace sp::common::fault
{

/** Thrown when an armed fault site fires. */
class FaultInjectedError : public StatusError
{
  public:
    explicit FaultInjectedError(std::string site)
        : StatusError(Status::error(ErrorCode::FaultInjected,
                                    "injected fault at site '" + site +
                                        "'")),
          site_(std::move(site))
    {
    }

    const std::string &
    site() const
    {
        return site_;
    }

  private:
    std::string site_;
};

/** One registered site and the degradation its firing must produce. */
struct SiteInfo
{
    const char *name;
    const char *degradation;
};

/** The full site registry (fixed at compile time, sorted by name). */
const std::vector<SiteInfo> &sites();

/** Parsed firing schedule for one site. */
struct Schedule
{
    std::string site;
    uint64_t after = 0;       //!< hits to skip before firing logic
    uint64_t every = 0;       //!< 0: fire once; M: every M-th hit
    double probability = -1;  //!< <0: deterministic; else Bernoulli(p)
    uint64_t seed = 0;        //!< stream seed for probabilistic mode
};

/**
 * Replace the active schedules with those parsed from `spec` (the
 * SP_FAULTS grammar above; empty string disarms everything).
 * fatal()s on grammar errors or unknown sites. Also resets all
 * hit/fired counters. Not thread-safe against in-flight checkpoints:
 * configure at startup or between sweeps, as tests and spsim do.
 */
void configure(const std::string &spec);

/** Disarm every site and reset all counters. */
void clear();

/** The schedules configure() installed, in input order. */
std::vector<Schedule> schedules();

/** Human-readable dump of active schedules (seeds included). */
std::string describe();

/** Times `site` was reached since configure()/clear(). */
uint64_t hitCount(const std::string &site);

/** Times `site` actually fired since configure()/clear(). */
uint64_t firedCount(const std::string &site);

namespace detail
{
extern std::atomic<bool> g_armed;
} // namespace detail

/** True when any schedule is active (the macro's only fast-path cost). */
inline bool
armed()
{
    return detail::g_armed.load(std::memory_order_relaxed);
}

/** Slow path: count the hit and throw if the schedule says fire. */
void checkpoint(const char *site);

} // namespace sp::common::fault

/**
 * Plant a named fault site. Must use a registered name (checkpoint
 * panics otherwise) and must not appear inside a splint hot-path
 * region.
 */
#define SP_FAULT_POINT(site)                                           \
    do {                                                               \
        if (::sp::common::fault::armed())                              \
            ::sp::common::fault::checkpoint(site);                     \
    } while (false)

#endif // SP_COMMON_FAULT_H
