#include "common/fault.h"

#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <sstream>

namespace sp::common::fault
{

namespace detail
{
std::atomic<bool> g_armed{false};
} // namespace detail

namespace
{

/** A configured schedule plus its private RNG stream. */
struct ScheduleState
{
    Schedule schedule;
    uint64_t rng_state = 0;
};

struct SiteCounters
{
    uint64_t hits = 0;
    uint64_t fired = 0;
};

struct Engine
{
    std::mutex mutex;
    std::vector<ScheduleState> states;
    std::map<std::string, SiteCounters> counters;
    // Latched by the SP_FAULTS static-init parse when the spec is
    // malformed: the process must not run believing faults are armed
    // when none are, so the first checkpoint panics with the message.
    bool env_parse_error = false;
    std::string env_parse_message;
};

Engine &
engine()
{
    static Engine instance;
    return instance;
}

/** splitmix64: tiny, seedable, and plenty for Bernoulli draws. */
uint64_t
splitmix64(uint64_t &state)
{
    state += 0x9e3779b97f4a7c15ULL;
    uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

double
uniform01(uint64_t &state)
{
    // 53 mantissa bits -> uniform in [0, 1).
    return static_cast<double>(splitmix64(state) >> 11) * 0x1.0p-53;
}

std::string
trim(const std::string &text)
{
    size_t begin = text.find_first_not_of(" \t");
    if (begin == std::string::npos)
        return "";
    size_t end = text.find_last_not_of(" \t");
    return text.substr(begin, end - begin + 1);
}

bool
knownSite(const std::string &name)
{
    for (const SiteInfo &info : sites())
        if (name == info.name)
            return true;
    return false;
}

std::string
knownSiteList()
{
    std::string out;
    for (const SiteInfo &info : sites()) {
        if (!out.empty())
            out += ", ";
        out += info.name;
    }
    return out;
}

uint64_t
parseU64(const std::string &key, const std::string &text)
{
    size_t used = 0;
    uint64_t value = 0;
    try {
        value = std::stoull(text, &used);
    } catch (const std::exception &) {
        used = 0;
    }
    fatalIf(used == 0 || used != text.size() || text[0] == '-',
            "SP_FAULTS: bad value '", text, "' for key '", key,
            "' (want a non-negative integer)");
    return value;
}

double
parseProbability(const std::string &text)
{
    size_t used = 0;
    double value = -1;
    try {
        value = std::stod(text, &used);
    } catch (const std::exception &) {
        used = 0;
    }
    fatalIf(used == 0 || used != text.size() || value < 0 || value > 1,
            "SP_FAULTS: bad probability '", text,
            "' (want a number in [0, 1])");
    return value;
}

Schedule
parseEntry(const std::string &entry)
{
    Schedule schedule;
    const size_t colon = entry.find(':');
    schedule.site = trim(entry.substr(0, colon));
    fatalIf(schedule.site.empty(), "SP_FAULTS: empty site name in '",
            entry, "'");
    fatalIf(!knownSite(schedule.site), "SP_FAULTS: unknown site '",
            schedule.site, "'; known sites: ", knownSiteList());

    bool has_every = false;
    bool has_p = false;
    if (colon != std::string::npos) {
        std::istringstream rest(entry.substr(colon + 1));
        std::string pair;
        while (std::getline(rest, pair, ',')) {
            pair = trim(pair);
            const size_t eq = pair.find('=');
            fatalIf(eq == std::string::npos,
                    "SP_FAULTS: expected key=value, got '", pair,
                    "' in '", entry, "'");
            const std::string key = trim(pair.substr(0, eq));
            const std::string value = trim(pair.substr(eq + 1));
            if (key == "after") {
                schedule.after = parseU64(key, value);
            } else if (key == "every") {
                schedule.every = parseU64(key, value);
                fatalIf(schedule.every == 0,
                        "SP_FAULTS: every=0 is meaningless (omit the "
                        "key to fire once)");
                has_every = true;
            } else if (key == "p") {
                schedule.probability = parseProbability(value);
                has_p = true;
            } else if (key == "seed") {
                schedule.seed = parseU64(key, value);
            } else {
                fatal("SP_FAULTS: unknown key '", key, "' in '", entry,
                      "' (known: after, every, p, seed)");
            }
        }
    }
    fatalIf(has_every && has_p, "SP_FAULTS: 'every' and 'p' are "
            "mutually exclusive in '", entry, "'");
    return schedule;
}

std::vector<ScheduleState>
parseSpec(const std::string &spec)
{
    std::vector<ScheduleState> states;
    std::istringstream entries(spec);
    std::string entry;
    while (std::getline(entries, entry, ';')) {
        entry = trim(entry);
        if (entry.empty())
            continue;
        ScheduleState state;
        state.schedule = parseEntry(entry);
        state.rng_state = state.schedule.seed;
        states.push_back(std::move(state));
    }
    return states;
}

/** Reads SP_FAULTS once, before main. Malformed specs latch an error
 *  that the first checkpoint turns into a panic -- the run must not
 *  proceed believing faults are armed when the spec was dropped. */
struct EnvInit
{
    EnvInit()
    {
        const char *spec = std::getenv("SP_FAULTS");
        if (spec == nullptr || *spec == '\0')
            return;
        try {
            configure(spec);
        } catch (const FatalError &e) {
            Engine &eng = engine();
            eng.env_parse_error = true;
            eng.env_parse_message = e.what();
            detail::g_armed.store(true, std::memory_order_relaxed);
            std::fprintf(stderr, "%s\n", e.what());
        }
    }
};

EnvInit g_env_init;

} // namespace

const std::vector<SiteInfo> &
sites()
{
    static const std::vector<SiteInfo> registry = {
        {"dataset.load.read",
         "load returns Truncated/Corrupt; TraceStore treats the entry "
         "as a miss and regenerates"},
        {"dataset.replay.open",
         "replay throws StatusError (NotFound/Truncated/Corrupt); the "
         "driver reports the unusable replay file and exits via the "
         "usage-error path instead of simulating a partial stream"},
        {"dataset.save.write",
         "saveTo returns NoSpace/IoError; publish unlinks the temp "
         "file and the run degrades to uncached"},
        {"experiment.run",
         "the spec's error is recorded in RunResult/JSON; the rest of "
         "the sweep completes"},
        {"serve.request.drop",
         "the arriving request is counted dropped and excluded from "
         "latency/queue accounting; the stream continues and the run "
         "completes with drops in RunResult::serving.dropped"},
        {"thread_pool.task",
         "the exception surfaces exactly once at join/wait/future; "
         "remaining indices drain"},
        {"trace_store.load",
         "the cached entry is treated as a miss; the trace is "
         "regenerated (and republished)"},
        {"trace_store.publish.rename",
         "the rename is retried with backoff; if it keeps failing the "
         "temp file is unlinked and the run degrades to uncached"},
        {"trace_store.publish.save",
         "the temp file is unlinked; the run degrades to uncached"},
        {"trace_view.mmap",
         "open throws StatusError(IoError); TraceStore regenerates "
         "the dataset eagerly"},
    };
    return registry;
}

void
configure(const std::string &spec)
{
    // Parse before locking: parse errors must not leave half state.
    std::vector<ScheduleState> states = parseSpec(spec);
    Engine &eng = engine();
    std::lock_guard<std::mutex> lock(eng.mutex);
    eng.states = std::move(states);
    eng.counters.clear();
    eng.env_parse_error = false;
    eng.env_parse_message.clear();
    detail::g_armed.store(!eng.states.empty(),
                          std::memory_order_relaxed);
}

void
clear()
{
    configure("");
}

std::vector<Schedule>
schedules()
{
    Engine &eng = engine();
    std::lock_guard<std::mutex> lock(eng.mutex);
    std::vector<Schedule> out;
    for (const ScheduleState &state : eng.states)
        out.push_back(state.schedule);
    return out;
}

std::string
describe()
{
    Engine &eng = engine();
    std::lock_guard<std::mutex> lock(eng.mutex);
    if (eng.states.empty())
        return "faults: disarmed";
    std::ostringstream os;
    os << "faults:";
    for (const ScheduleState &state : eng.states) {
        const Schedule &s = state.schedule;
        os << "\n  " << s.site;
        if (s.probability >= 0) {
            os << " p=" << s.probability << " seed=" << s.seed;
            if (s.after > 0)
                os << " after=" << s.after;
        } else if (s.every > 0) {
            os << " every=" << s.every;
            if (s.after > 0)
                os << " after=" << s.after;
        } else {
            os << " once at hit " << (s.after + 1);
        }
    }
    return os.str();
}

uint64_t
hitCount(const std::string &site)
{
    Engine &eng = engine();
    std::lock_guard<std::mutex> lock(eng.mutex);
    auto it = eng.counters.find(site);
    return it == eng.counters.end() ? 0 : it->second.hits;
}

uint64_t
firedCount(const std::string &site)
{
    Engine &eng = engine();
    std::lock_guard<std::mutex> lock(eng.mutex);
    auto it = eng.counters.find(site);
    return it == eng.counters.end() ? 0 : it->second.fired;
}

void
checkpoint(const char *site)
{
    Engine &eng = engine();
    bool fire = false;
    {
        std::lock_guard<std::mutex> lock(eng.mutex);
        panicIf(eng.env_parse_error, "refusing to run with a "
                "malformed SP_FAULTS spec: ", eng.env_parse_message);
        panicIf(!knownSite(site), "SP_FAULT_POINT(\"", site,
                "\") uses an unregistered site; add it to "
                "fault::sites()");
        SiteCounters &counters = eng.counters[site];
        ++counters.hits;
        for (ScheduleState &state : eng.states) {
            const Schedule &s = state.schedule;
            if (s.site != site || counters.hits <= s.after)
                continue;
            if (s.probability >= 0) {
                if (uniform01(state.rng_state) < s.probability)
                    fire = true;
            } else if (s.every > 0) {
                if ((counters.hits - s.after - 1) % s.every == 0)
                    fire = true;
            } else if (counters.hits == s.after + 1) {
                fire = true;
            }
        }
        if (fire)
            ++counters.fired;
    }
    if (fire)
        throw FaultInjectedError(site);
}

} // namespace sp::common::fault
