#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>

#include "common/logging.h"

namespace sp::common
{

ThreadPool::ThreadPool(size_t threads)
{
    const size_t count = threads == 0 ? 1 : threads;
    workers_.reserve(count);
    for (size_t i = 0; i < count; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    wake_.notify_all();
    for (auto &worker : workers_)
        worker.join();
}

void
ThreadPool::enqueue(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        panicIf(stop_, "submit on a stopping ThreadPool");
        // splint:allow(hot-path-transitive-alloc): dispatch-time queue growth, bounded by the helper count
        queue_.push_back(std::move(task));
    }
    wake_.notify_one();
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            wake_.wait(lock, [this] { return stop_ || !queue_.empty(); });
            if (queue_.empty())
                return; // stop_ set and queue drained
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        // Both task kinds report errors through their own channel
        // (packaged_task -> future; ForState::drain -> first-error
        // slot), so an exception reaching this frame is a task wrapper
        // bug -- but it must not std::terminate the process. Isolate
        // the worker and keep serving the queue.
        try {
            task();
        } catch (const std::exception &e) {
            warnRateLimited("thread_pool.worker",
                            std::string("exception escaped a pooled "
                                        "task: ") +
                                e.what());
        } catch (...) {
            warnRateLimited("thread_pool.worker",
                            "non-std exception escaped a pooled task");
        }
    }
}

namespace detail
{

/** Shared progress of one parallelFor / parallelForAsync call.
 *  Helpers may outlive the call (they run as soon as a worker frees
 *  up, which can be after the caller finished every index itself), so
 *  the state is kept alive by shared_ptr and owns a copy of the
 *  body. */
struct ForState
{
    std::function<void(size_t)> fn;
    size_t n = 0;
    std::atomic<size_t> next{0};
    std::atomic<size_t> done{0};
    std::mutex mutex;
    std::condition_variable finished;
    std::exception_ptr error;
    std::atomic<bool> has_error{false};

    void
    drain()
    {
        for (;;) {
            const size_t i = next.fetch_add(1, std::memory_order_relaxed);
            if (i >= n)
                return;
            // splint:allow(hot-path-transitive-alloc): std::atomic::load, not TraceDataset::load -- severs the false edge
            if (!has_error.load(std::memory_order_relaxed)) {
                try {
                    // splint:allow(hot-path-transitive-alloc): the chaos contract plants a site in every pooled task
                    SP_FAULT_POINT("thread_pool.task");
                    fn(i);
                } catch (...) {
                    std::lock_guard<std::mutex> lock(mutex);
                    if (!has_error.exchange(true))
                        error = std::current_exception();
                }
            }
            if (done.fetch_add(1, std::memory_order_acq_rel) + 1 == n) {
                std::lock_guard<std::mutex> lock(mutex);
                finished.notify_all();
            }
        }
    }

    /** Block until every index has retired (drain() first to make
     *  progress independent of pool capacity). */
    void
    finish()
    {
        drain();
        std::unique_lock<std::mutex> lock(mutex);
        finished.wait(lock, [this] {
            // splint:allow(hot-path-transitive-alloc): std::atomic::load, not TraceDataset::load -- severs the false edge
            return done.load(std::memory_order_acquire) == n;
        });
        // Phase ordering: the barrier releases only after every index
        // retired, and retirement is monotonic -- a count past n
        // means an index ran twice (double-drain of one state).
        SP_ASSERT(done.load(std::memory_order_acquire) == n,
                  "Completion barrier released with ",
                  done.load(std::memory_order_acquire), " of ", n,
                  " indices retired");
    }
};

} // namespace detail

ThreadPool::Completion::~Completion()
{
    if (!state_)
        return;
    // In-flight tasks capture the body (and whatever it references);
    // never let them outlive this scope. Errors were either observed
    // by an explicit wait() or are deliberately dropped here (the
    // pipeline only abandons a token while unwinding from the same
    // root cause).
    try {
        wait();
    } catch (...) {
    }
}

ThreadPool::Completion &
ThreadPool::Completion::operator=(Completion &&other) noexcept
{
    if (this != &other) {
        if (state_) {
            try {
                wait();
            } catch (...) {
            }
        }
        state_ = std::move(other.state_);
    }
    return *this;
}

void
ThreadPool::Completion::wait()
{
    if (!state_)
        return;
    // Release the token before rethrowing so a second wait() (or the
    // destructor) is a no-op either way.
    const std::shared_ptr<detail::ForState> state = std::move(state_);
    state->finish();
    // A waited token is inert: the move above must have emptied this
    // Completion before any exception can propagate.
    SP_ASSERT(!pending(), "Completion still pending after its barrier");
    std::lock_guard<std::mutex> lock(state->mutex);
    if (state->error)
        std::rethrow_exception(state->error);
}

ThreadPool::Completion
ThreadPool::parallelForAsync(size_t n, std::function<void(size_t)> fn,
                             size_t max_helpers)
{
    Completion token;
    if (n == 0)
        return token;
    auto state = std::make_shared<detail::ForState>();
    state->fn = std::move(fn);
    state->n = n;
    // Unlike the synchronous form the caller is not a lane until it
    // wait()s, so up to n helpers are useful. Zero helpers (pool of
    // busy workers, max_helpers == 0) is still correct: wait() drains
    // every index on the caller.
    const size_t helpers = std::min({size(), n, max_helpers});
    for (size_t h = 0; h < helpers; ++h)
        enqueue([state] { state->drain(); });
    token.state_ = std::move(state);
    return token;
}

void
ThreadPool::parallelFor(size_t n, const std::function<void(size_t)> &fn,
                        size_t max_helpers)
{
    if (n == 0)
        return;
    if (n == 1 || size() <= 1 || max_helpers == 0) {
        // Serial fast path: the caller is the join point, so the
        // first exception (including an injected "thread_pool.task"
        // fault) propagates directly; later indices are skipped,
        // exactly as drain() skips them once an error is recorded.
        for (size_t i = 0; i < n; ++i) {
            // splint:allow(hot-path-transitive-alloc): the chaos contract plants a site in every pooled task
            SP_FAULT_POINT("thread_pool.task");
            fn(i);
        }
        return;
    }

    // splint:allow(hot-path-transitive-alloc): one shared-state allocation per dispatch, amortized over n indices
    auto state = std::make_shared<detail::ForState>();
    state->fn = fn;
    state->n = n;

    const size_t helpers = std::min({size(), n - 1, max_helpers});
    for (size_t h = 0; h < helpers; ++h)
        enqueue([state] { state->drain(); });

    state->finish();
    {
        std::lock_guard<std::mutex> lock(state->mutex);
        if (state->error)
            std::rethrow_exception(state->error);
    }
}

namespace
{

std::mutex g_global_mutex;
std::unique_ptr<ThreadPool> g_global_pool;

} // namespace

size_t
ThreadPool::defaultThreads()
{
    if (const char *env = std::getenv("SP_JOBS")) {
        const long parsed = std::strtol(env, nullptr, 10);
        if (parsed > 0)
            return static_cast<size_t>(parsed);
    }
    const unsigned hardware = std::thread::hardware_concurrency();
    return hardware == 0 ? 1 : hardware;
}

ThreadPool &
ThreadPool::global()
{
    std::lock_guard<std::mutex> lock(g_global_mutex);
    if (!g_global_pool)
        // splint:allow(hot-path-transitive-alloc): one-time lazy construction of the global pool
        g_global_pool = std::make_unique<ThreadPool>(defaultThreads());
    return *g_global_pool;
}

void
ThreadPool::setGlobalThreads(size_t threads)
{
    std::lock_guard<std::mutex> lock(g_global_mutex);
    if (g_global_pool && g_global_pool->size() == std::max<size_t>(1, threads))
        return;
    g_global_pool = std::make_unique<ThreadPool>(threads);
}

void
parallelFor(size_t n, const std::function<void(size_t)> &fn)
{
    ThreadPool::global().parallelFor(n, fn);
}

} // namespace sp::common
