/**
 * @file
 * Minimal command-line argument parsing for the tools and examples.
 *
 * Supports `--flag value` and `--flag=value` forms plus boolean
 * switches, with typed accessors, defaults, and an auto-generated
 * usage string. Unknown flags are fatal (catching typos beats
 * silently ignoring them in an experiment driver).
 */

#ifndef SP_COMMON_ARGS_H
#define SP_COMMON_ARGS_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace sp
{

/** Declarative flag registry + parser. */
class ArgParser
{
  public:
    explicit ArgParser(std::string program_description);

    /** Register a string flag with a default. */
    void addString(const std::string &name, const std::string &fallback,
                   const std::string &help);
    /** Register an integer flag with a default. */
    void addInt(const std::string &name, int64_t fallback,
                const std::string &help);
    /** Register a floating-point flag with a default. */
    void addDouble(const std::string &name, double fallback,
                   const std::string &help);
    /** Register a boolean switch (false unless given). */
    void addBool(const std::string &name, const std::string &help);

    /**
     * Parse argv. fatal() on unknown flags, missing values or
     * malformed numbers. Returns false (after printing usage) when
     * --help was requested.
     */
    bool parse(int argc, const char *const *argv);

    std::string getString(const std::string &name) const;
    int64_t getInt(const std::string &name) const;
    double getDouble(const std::string &name) const;
    bool getBool(const std::string &name) const;

    /** True when the flag was given on the command line (as opposed
     *  to holding its default). */
    bool wasSet(const std::string &name) const;

    /** Human-readable usage text. */
    std::string usage() const;

  private:
    enum class Kind
    {
        String,
        Int,
        Double,
        Bool,
    };
    struct Flag
    {
        Kind kind;
        std::string fallback;
        std::string value;
        std::string help;
        bool set = false;
    };

    const Flag &flagOrDie(const std::string &name, Kind kind) const;

    std::string description_;
    std::string program_ = "program";
    std::map<std::string, Flag> flags_;
};

/** Upper bound accepted for --jobs-style pool widths. */
inline constexpr int64_t kMaxJobs = 4096;

/**
 * Validated accessor for a --jobs-style integer flag: the value must
 * lie in [0, kMaxJobs] (0 = all cores). fatal() with a usage hint on
 * negative or absurd widths, which would otherwise wrap into a
 * many-terathread pool request. Every driver's --jobs goes through
 * here so the bound is enforced in exactly one place.
 */
uint32_t parseJobsArg(const ArgParser &args,
                      const std::string &name = "jobs");

} // namespace sp

#endif // SP_COMMON_ARGS_H
