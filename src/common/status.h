/**
 * @file
 * Recoverable-error taxonomy: sp::Status / sp::Result<T>.
 *
 * The logging layer (common/logging.h) distinguishes *who is at
 * fault*: fatal() for the user, panic() for the library. This header
 * adds the third class the first two cannot express: **environmental
 * failures** -- a disk filling up mid-publish, a trace truncated by a
 * crashed writer, a failed mmap -- where nobody is at fault and the
 * right response is usually *degradation* (regenerate the trace, fall
 * back to the slower tier), not process death.
 *
 * Policy, enforced by the splint `io-status` rule over src/data:
 *
 *   - environmental failure  -> return sp::Status / sp::Result<T>
 *                               (or throw StatusError from legacy
 *                               throwing wrappers); callers degrade
 *                               or surface it, never std::terminate.
 *   - user error             -> fatal()   (bad config, bad flags)
 *   - programmer error       -> panic()   (violated invariant; the
 *                               one thing that may stay a panic on an
 *                               IO path, with a justifying
 *                               splint:allow)
 *
 * Status is [[nodiscard]] and splint flags bare calls to the
 * Status-returning IO entry points (saveTo/tryLoad/tryMapped/tryOpen),
 * so an ignored environmental failure is a lint error, not a latent
 * surprise.
 */

#ifndef SP_COMMON_STATUS_H
#define SP_COMMON_STATUS_H

#include <optional>
#include <sstream>
#include <string>
#include <utility>

#include "common/logging.h"

namespace sp
{

/** Classified cause of an environmental failure. */
enum class ErrorCode
{
    Ok = 0,
    IoError,         //!< open/read/write/stat/mmap/rename failed
    NoSpace,         //!< ENOSPC-family: disk full during a write
    NotFound,        //!< the file does not exist
    Corrupt,         //!< structural validation failed (magic, fields,
                     //!< interior indices)
    Truncated,       //!< file shorter than its header describes
    VersionMismatch, //!< valid trace, unsupported format version
    Unsupported,     //!< platform lacks the facility (e.g. no mmap)
    FaultInjected,   //!< a deterministic SP_FAULT_POINT fired here
};

/** Stable lowercase spelling ("io-error", "no-space", ...). */
const char *errorCodeName(ErrorCode code);

/** Success or a classified environmental failure with a message. */
class [[nodiscard]] Status
{
  public:
    /** Default: success. */
    Status() = default;

    /** A failure; `code` must not be ErrorCode::Ok. */
    static Status
    error(ErrorCode code, std::string message)
    {
        panicIf(code == ErrorCode::Ok,
                "Status::error called with ErrorCode::Ok");
        Status status;
        status.code_ = code;
        status.message_ = std::move(message);
        return status;
    }

    bool
    ok() const
    {
        return code_ == ErrorCode::Ok;
    }

    ErrorCode
    code() const
    {
        return code_;
    }

    const std::string &
    message() const
    {
        return message_;
    }

    /** "ok", or "<code-name>: <message>". */
    std::string
    toString() const
    {
        if (ok())
            return "ok";
        return std::string(errorCodeName(code_)) + ": " + message_;
    }

  private:
    ErrorCode code_ = ErrorCode::Ok;
    std::string message_;
};

/** A value or the Status explaining why there is none. */
template <typename T>
class [[nodiscard]] Result
{
  public:
    /** Implicit success. */
    Result(T value) : value_(std::move(value)) {}

    /** Implicit failure; `status` must not be ok. */
    Result(Status status) : status_(std::move(status))
    {
        panicIf(status_.ok(), "Result constructed from an ok Status "
                "but no value");
    }

    bool
    ok() const
    {
        return status_.ok();
    }

    const Status &
    status() const
    {
        return status_;
    }

    /** The value; panics when !ok() (check first -- caller bug). */
    T &
    value()
    {
        panicIf(!ok(), "Result::value() on a failed Result: ",
                status_.toString());
        return *value_;
    }

    const T &
    value() const
    {
        panicIf(!ok(), "Result::value() on a failed Result: ",
                status_.toString());
        return *value_;
    }

    /** Move the value out (same precondition as value()). */
    T
    take() &&
    {
        panicIf(!ok(), "Result::take() on a failed Result: ",
                status_.toString());
        return std::move(*value_);
    }

  private:
    Status status_;
    std::optional<T> value_;
};

/**
 * Exception form of a classified failure, for the legacy throwing
 * wrappers (TraceDataset::load, TraceView::open, ...). Derives
 * FatalError so every existing `catch (const FatalError &)` recovery
 * site keeps working while new code can catch StatusError and read
 * the taxonomy instead of parsing message strings.
 */
class StatusError : public FatalError
{
  public:
    explicit StatusError(Status status)
        : FatalError(status.toString()), status_(std::move(status))
    {
    }

    const Status &
    status() const
    {
        return status_;
    }

  private:
    Status status_;
};

/** Throw a classified environmental failure (gem5-style formatting). */
template <typename... Args>
[[noreturn]] void
failWith(ErrorCode code, const Args &...args)
{
    std::ostringstream os;
    detail::formatInto(os, args...);
    throw StatusError(Status::error(code, os.str()));
}

/** failWith when `cond` holds. */
template <typename... Args>
void
failIf(bool cond, ErrorCode code, const Args &...args)
{
    if (cond)
        failWith(code, args...);
}

} // namespace sp

#endif // SP_COMMON_STATUS_H
