/**
 * @file
 * Shared work-pool execution layer.
 *
 * One bounded pool serves every parallel site in the simulator: trace
 * generation, per-batch statistics, per-table [Plan] fan-out, and
 * whole-system sweeps in ExperimentRunner. Two primitives:
 *
 *   submit(fn)        enqueue an arbitrary task, get a std::future;
 *   parallelFor(n,fn) run fn(0..n-1) cooperatively: the calling
 *                     thread participates, so nesting a parallelFor
 *                     inside a pool task can never deadlock -- if all
 *                     workers are busy the caller simply executes
 *                     every index itself.
 *
 * Every parallel site in this codebase writes result i from call
 * fn(i) only, so outputs are bit-identical to a serial loop no matter
 * how indices interleave across threads.
 *
 * ThreadPool::global() is the process-wide pool. Its width defaults
 * to hardware_concurrency (overridable via the SP_JOBS environment
 * variable) and can be set explicitly with setGlobalThreads() --
 * call it at startup, before any parallel work, as spsim --jobs does.
 */

#ifndef SP_COMMON_THREAD_POOL_H
#define SP_COMMON_THREAD_POOL_H

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace sp::common
{

/** Fixed-width thread pool with a cooperative parallel-for. */
class ThreadPool
{
  public:
    /** @param threads worker count; clamped to at least 1. */
    explicit ThreadPool(size_t threads);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Number of worker threads. */
    size_t size() const { return workers_.size(); }

    /** Enqueue `fn` on a worker; the future carries its result. */
    template <typename F>
    auto
    submit(F &&fn) -> std::future<std::invoke_result_t<F>>
    {
        using R = std::invoke_result_t<F>;
        auto task = std::make_shared<std::packaged_task<R()>>(
            std::forward<F>(fn));
        std::future<R> future = task->get_future();
        enqueue([task] { (*task)(); });
        return future;
    }

    /**
     * Run fn(0), ..., fn(n-1), distributing indices over the workers
     * *and* the calling thread. Returns once every index has run.
     * The first exception is rethrown on the caller after the
     * remaining indices are drained (un-run indices are skipped once
     * an exception is recorded). A pool of width 1 runs serially on
     * the caller.
     *
     * `max_helpers` caps the worker tasks enqueued alongside the
     * caller, bounding concurrency to max_helpers + 1 lanes without
     * spinning up a second pool (ExperimentRunner's --jobs bound).
     */
    void parallelFor(size_t n, const std::function<void(size_t)> &fn,
                     size_t max_helpers = SIZE_MAX);

    /** The process-wide pool (created on first use). */
    static ThreadPool &global();

    /**
     * Width of global() before it is created: SP_JOBS when set to a
     * positive integer, else std::thread::hardware_concurrency().
     */
    static size_t defaultThreads();

    /**
     * Resize the process-wide pool. Startup-time only: the previous
     * pool (if any) is drained and destroyed, so no other thread may
     * be using global() concurrently.
     */
    static void setGlobalThreads(size_t threads);

  private:
    void enqueue(std::function<void()> task);
    void workerLoop();

    std::mutex mutex_;
    std::condition_variable wake_;
    std::deque<std::function<void()>> queue_;
    bool stop_ = false;
    std::vector<std::thread> workers_;
};

/** Shorthand: global().parallelFor(n, fn). */
void parallelFor(size_t n, const std::function<void(size_t)> &fn);

} // namespace sp::common

#endif // SP_COMMON_THREAD_POOL_H
