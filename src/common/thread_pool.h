/**
 * @file
 * Shared work-pool execution layer.
 *
 * One bounded pool serves every parallel site in the simulator: trace
 * generation, per-batch statistics, per-table [Plan] fan-out, sharded
 * mark-pass probes, and whole-system sweeps in ExperimentRunner. Three
 * primitives:
 *
 *   submit(fn)        enqueue an arbitrary task, get a std::future;
 *   parallelFor(n,fn) run fn(0..n-1) cooperatively: the calling
 *                     thread participates, so nesting a parallelFor
 *                     inside a pool task can never deadlock -- if all
 *                     workers are busy the caller simply executes
 *                     every index itself;
 *   parallelForAsync(n,fn)
 *                     the same index space, but the call returns a
 *                     Completion token immediately so the caller can
 *                     overlap its own work with the fan-out (the
 *                     engine's two-deep planning pipeline). wait() is
 *                     the phase barrier: the caller drains whatever
 *                     indices the workers have not picked up, so
 *                     completion never depends on pool capacity.
 *
 * Every parallel site in this codebase writes result i from call
 * fn(i) only, so outputs are bit-identical to a serial loop no matter
 * how indices interleave across threads.
 *
 * ThreadPool::global() is the process-wide pool. Its width defaults
 * to hardware_concurrency (overridable via the SP_JOBS environment
 * variable) and can be set explicitly with setGlobalThreads() --
 * call it at startup, before any parallel work, as spsim --jobs does.
 */

#ifndef SP_COMMON_THREAD_POOL_H
#define SP_COMMON_THREAD_POOL_H

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/fault.h"

namespace sp::common
{

namespace detail
{
struct ForState;
} // namespace detail

/** Fixed-width thread pool with a cooperative parallel-for. */
class ThreadPool
{
  public:
    /** @param threads worker count; clamped to at least 1. */
    explicit ThreadPool(size_t threads);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Number of worker threads. */
    size_t size() const { return workers_.size(); }

    /**
     * Enqueue `fn` on a worker; the future carries its result. An
     * exception thrown by `fn` is captured by the packaged task and
     * rethrown from future.get() -- it never unwinds a worker. The
     * fault site runs inside the task for the same reason: an
     * injected "thread_pool.task" fault surfaces on the future.
     */
    template <typename F>
    auto
    submit(F &&fn) -> std::future<std::invoke_result_t<F>>
    {
        using R = std::invoke_result_t<F>;
        auto task = std::make_shared<std::packaged_task<R()>>(
            [body = std::forward<F>(fn)]() mutable -> R {
                SP_FAULT_POINT("thread_pool.task");
                return body();
            });
        std::future<R> future = task->get_future();
        enqueue([task] { (*task)(); });
        return future;
    }

    /**
     * Run fn(0), ..., fn(n-1), distributing indices over the workers
     * *and* the calling thread. Returns once every index has run.
     * The first exception is rethrown on the caller after the
     * remaining indices are drained (un-run indices are skipped once
     * an exception is recorded). A pool of width 1 runs serially on
     * the caller.
     *
     * `max_helpers` caps the worker tasks enqueued alongside the
     * caller, bounding concurrency to max_helpers + 1 lanes without
     * spinning up a second pool (ExperimentRunner's --jobs bound).
     */
    void parallelFor(size_t n, const std::function<void(size_t)> &fn,
                     size_t max_helpers = SIZE_MAX);

    /**
     * Completion token of one parallelForAsync call: a one-shot phase
     * barrier. wait() drains any indices the workers have not started
     * (the caller participates, exactly as in parallelFor), blocks
     * until every index has retired, and rethrows the first exception
     * the body raised. Dropping a pending token waits too (errors
     * swallowed) so in-flight tasks can never outlive the state they
     * capture. Default-constructed and already-waited tokens are
     * inert.
     */
    class Completion
    {
      public:
        Completion() noexcept = default;
        ~Completion();
        Completion(Completion &&other) noexcept = default;
        Completion &operator=(Completion &&other) noexcept;
        Completion(const Completion &) = delete;
        Completion &operator=(const Completion &) = delete;

        /** Phase barrier: help finish, then block; rethrows the first
         *  body exception. Idempotent. */
        void wait();

        /** True until wait() (or the destructor) has retired it. */
        bool pending() const { return state_ != nullptr; }

      private:
        friend class ThreadPool;
        std::shared_ptr<detail::ForState> state_;
    };

    /**
     * Start fn(0..n-1) on up to min(size(), n, max_helpers) workers
     * and return immediately; the caller joins the fan-out only when
     * it wait()s the returned token. Used by the two-deep planning
     * pipeline: batch i+1's plans fan out here while the caller
     * reduces batch i's outcomes. Results are written slot-i-from-
     * call-i by every site, so scheduling never changes outputs.
     */
    Completion parallelForAsync(size_t n, std::function<void(size_t)> fn,
                                size_t max_helpers = SIZE_MAX);

    /** The process-wide pool (created on first use). */
    static ThreadPool &global();

    /**
     * Width of global() before it is created: SP_JOBS when set to a
     * positive integer, else std::thread::hardware_concurrency().
     */
    static size_t defaultThreads();

    /**
     * Resize the process-wide pool. Startup-time only: the previous
     * pool (if any) is drained and destroyed, so no other thread may
     * be using global() concurrently.
     */
    static void setGlobalThreads(size_t threads);

  private:
    void enqueue(std::function<void()> task);
    void workerLoop();

    std::mutex mutex_;
    std::condition_variable wake_;
    std::deque<std::function<void()>> queue_;
    bool stop_ = false;
    std::vector<std::thread> workers_;
};

/** Shorthand: global().parallelFor(n, fn). */
void parallelFor(size_t n, const std::function<void(size_t)> &fn);

} // namespace sp::common

#endif // SP_COMMON_THREAD_POOL_H
