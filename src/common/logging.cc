#include "common/logging.h"

#include <cstdint>
#include <iostream>
#include <map>
#include <mutex>

namespace sp
{

namespace
{

/** Occurrences of a key logged verbatim before suppression starts. */
constexpr uint64_t kVerbatimWarnings = 3;
/** After that, one warning per this many occurrences gets through. */
constexpr uint64_t kSuppressedPeriod = 64;

} // namespace

void
warnRateLimited(const std::string &key, const std::string &message)
{
    static std::mutex mutex;
    static std::map<std::string, uint64_t> counts;

    std::lock_guard<std::mutex> lock(mutex);
    const uint64_t count = ++counts[key];
    if (count <= kVerbatimWarnings) {
        std::cerr << "warn: " << message << "\n";
    } else if ((count - kVerbatimWarnings) % kSuppressedPeriod == 0) {
        std::cerr << "warn: " << message << " ("
                  << (kSuppressedPeriod - 1) << " similar warnings for '"
                  << key << "' suppressed)\n";
    }
}

} // namespace sp
