/**
 * @file
 * Exact memory-traffic accounting for embedding primitives.
 *
 * The timing model converts byte counts into seconds; these helpers
 * define, in one place, how many bytes each embedding primitive moves
 * so all system models charge identical traffic for identical work.
 *
 * "Sparse" bytes are moved with random row-granule access (gathers,
 * scatters into large tables); "dense" bytes stream contiguously
 * (staging buffers, duplication, sorting). The distinction matters
 * because effective DRAM bandwidth differs by an order of magnitude
 * between the two patterns.
 */

#ifndef SP_EMB_TRAFFIC_H
#define SP_EMB_TRAFFIC_H

#include <cstddef>
#include <cstdint>

namespace sp::emb
{

/** Byte counters, split by access pattern. */
struct Traffic
{
    double sparse_read_bytes = 0.0;
    double sparse_write_bytes = 0.0;
    double dense_read_bytes = 0.0;
    double dense_write_bytes = 0.0;

    double totalBytes() const
    {
        return sparse_read_bytes + sparse_write_bytes + dense_read_bytes +
               dense_write_bytes;
    }

    double sparseBytes() const
    {
        return sparse_read_bytes + sparse_write_bytes;
    }

    double denseBytes() const
    {
        return dense_read_bytes + dense_write_bytes;
    }

    Traffic &operator+=(const Traffic &other);
    friend Traffic operator+(Traffic a, const Traffic &b)
    {
        a += b;
        return a;
    }
};

/**
 * Gather n rows (row_bytes each) from a table into a contiguous
 * staging buffer: sparse reads + dense writes.
 */
Traffic gatherTraffic(uint64_t n, size_t row_bytes);

/**
 * Reduce n gathered rows down to n_out output vectors: streams the
 * staging buffer in and the outputs out.
 */
Traffic reduceTraffic(uint64_t n, uint64_t n_out, size_t row_bytes);

/**
 * Duplicate n_out per-sample gradients to n lookup gradients:
 * streams gradients in, duplicated buffer out.
 */
Traffic duplicateTraffic(uint64_t n_out, uint64_t n, size_t row_bytes);

/**
 * Coalesce n duplicated gradients to n_unique summed rows. Modeled as
 * one sort-like pass over the duplicated buffer (read + write) plus
 * the coalesced output write.
 */
Traffic coalesceTraffic(uint64_t n, uint64_t n_unique, size_t row_bytes);

/**
 * SGD scatter of n_unique coalesced gradients into a table:
 * read-modify-write of each target row plus streaming gradient reads.
 */
Traffic scatterTraffic(uint64_t n_unique, size_t row_bytes);

/** Full embedding forward for one table (gather + reduce). */
Traffic embeddingForwardTraffic(uint64_t n, uint64_t batch,
                                size_t row_bytes);

/** Full embedding backward for one table (dup + coalesce + scatter). */
Traffic embeddingBackwardTraffic(uint64_t n, uint64_t batch,
                                 uint64_t n_unique, size_t row_bytes);

} // namespace sp::emb

#endif // SP_EMB_TRAFFIC_H
