#include "emb/embedding_ops.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <numeric>

#include "common/logging.h"

namespace sp::emb
{

void
gather(const RowAccessor &table, std::span<const uint64_t> ids,
       tensor::Matrix &out)
{
    const size_t dim = table.dim();
    panicIf(out.rows() != ids.size() || out.cols() != dim,
            "gather output must be ", ids.size(), "x", dim);
    for (size_t i = 0; i < ids.size(); ++i)
        std::memcpy(out.row(i), table.row(ids[i]), dim * sizeof(float));
}

void
reduceSum(const tensor::Matrix &gathered, size_t lookups,
          tensor::Matrix &out)
{
    panicIf(lookups == 0, "reduceSum with zero lookups");
    panicIf(gathered.rows() % lookups != 0,
            "gathered rows (", gathered.rows(),
            ") not divisible by lookups (", lookups, ")");
    const size_t batch = gathered.rows() / lookups;
    const size_t dim = gathered.cols();
    panicIf(out.rows() != batch || out.cols() != dim,
            "reduceSum output must be ", batch, "x", dim);

    for (size_t i = 0; i < batch; ++i) {
        float *dst = out.row(i);
        std::memcpy(dst, gathered.row(i * lookups), dim * sizeof(float));
        for (size_t l = 1; l < lookups; ++l) {
            const float *src = gathered.row(i * lookups + l);
            for (size_t d = 0; d < dim; ++d)
                dst[d] += src[d];
        }
    }
}

void
gatherReduce(const RowAccessor &table, std::span<const uint64_t> ids,
             size_t lookups, tensor::Matrix &out)
{
    panicIf(lookups == 0, "gatherReduce with zero lookups");
    panicIf(ids.size() % lookups != 0,
            "ids (", ids.size(), ") not divisible by lookups (", lookups,
            ")");
    const size_t batch = ids.size() / lookups;
    const size_t dim = table.dim();
    panicIf(out.rows() != batch || out.cols() != dim,
            "gatherReduce output must be ", batch, "x", dim);

    for (size_t i = 0; i < batch; ++i) {
        float *dst = out.row(i);
        std::memcpy(dst, table.row(ids[i * lookups]), dim * sizeof(float));
        for (size_t l = 1; l < lookups; ++l) {
            const float *src = table.row(ids[i * lookups + l]);
            for (size_t d = 0; d < dim; ++d)
                dst[d] += src[d];
        }
    }
}

CoalescedGradients
duplicateAndCoalesce(std::span<const uint64_t> ids,
                     const tensor::Matrix &output_grads, size_t lookups)
{
    panicIf(lookups == 0, "duplicateAndCoalesce with zero lookups");
    panicIf(ids.size() != output_grads.rows() * lookups,
            "ids (", ids.size(), ") must equal batch (",
            output_grads.rows(), ") * lookups (", lookups, ")");
    const size_t dim = output_grads.cols();

    // Stable sort of lookup positions by ID keeps trace order inside
    // each ID group, fixing the accumulation order.
    std::vector<uint32_t> order(ids.size());
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(),
                     [&ids](uint32_t a, uint32_t b) {
                         return ids[a] < ids[b];
                     });

    CoalescedGradients result;
    result.ids.reserve(ids.size());

    // First pass: count unique IDs to size the gradient matrix.
    size_t unique = 0;
    for (size_t i = 0; i < order.size(); ++i) {
        if (i == 0 || ids[order[i]] != ids[order[i - 1]])
            ++unique;
    }
    result.grads.resize(unique, dim);

    size_t out_row = 0;
    for (size_t i = 0; i < order.size(); ++i) {
        const uint64_t id = ids[order[i]];
        const size_t sample = order[i] / lookups;
        const float *src = output_grads.row(sample);
        if (i == 0 || id != ids[order[i - 1]]) {
            result.ids.push_back(id);
            std::memcpy(result.grads.row(out_row), src,
                        dim * sizeof(float));
            ++out_row;
        } else {
            float *dst = result.grads.row(out_row - 1);
            for (size_t d = 0; d < dim; ++d)
                dst[d] += src[d];
        }
    }
    panicIf(out_row != unique, "coalesce row count mismatch");
    return result;
}

void
sgdScatter(RowAccessor &table, const CoalescedGradients &coalesced,
           float lr)
{
    const size_t dim = table.dim();
    panicIf(coalesced.grads.rows() != coalesced.ids.size() ||
                coalesced.grads.cols() != dim,
            "coalesced gradient shape mismatch");
    for (size_t i = 0; i < coalesced.ids.size(); ++i) {
        float *dst = table.row(coalesced.ids[i]);
        const float *grad = coalesced.grads.row(i);
        for (size_t d = 0; d < dim; ++d)
            dst[d] -= lr * grad[d];
    }
}

void
adagradScatter(RowAccessor &table, RowAccessor &state,
               const CoalescedGradients &coalesced, float lr, float eps)
{
    const size_t dim = table.dim();
    panicIf(state.dim() != dim,
            "optimizer state dimension mismatches the table");
    panicIf(coalesced.grads.rows() != coalesced.ids.size() ||
                coalesced.grads.cols() != dim,
            "coalesced gradient shape mismatch");
    for (size_t i = 0; i < coalesced.ids.size(); ++i) {
        float *dst = table.row(coalesced.ids[i]);
        float *acc = state.row(coalesced.ids[i]);
        const float *grad = coalesced.grads.row(i);
        for (size_t d = 0; d < dim; ++d) {
            acc[d] += grad[d] * grad[d];
            dst[d] -= lr * grad[d] / (std::sqrt(acc[d]) + eps);
        }
    }
}

size_t
countUnique(std::span<const uint64_t> ids)
{
    std::vector<uint64_t> scratch;
    return countUnique(ids, scratch);
}

size_t
countUnique(std::span<const uint64_t> ids, std::vector<uint64_t> &scratch)
{
    scratch.assign(ids.begin(), ids.end());
    std::sort(scratch.begin(), scratch.end());
    return static_cast<size_t>(
        std::unique(scratch.begin(), scratch.end()) - scratch.begin());
}

std::vector<uint64_t>
uniqueIds(std::span<const uint64_t> ids)
{
    std::vector<uint64_t> sorted(ids.begin(), ids.end());
    std::sort(sorted.begin(), sorted.end());
    sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
    return sorted;
}

} // namespace sp::emb
