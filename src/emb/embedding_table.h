/**
 * @file
 * Embedding table storage.
 *
 * An embedding table maps a categorical feature's discrete ID to a
 * dense float vector (one row per ID). The paper's tables are
 * 10M rows x 128 dims x 8 tables = 40 GB -- too large to materialise
 * here, and unnecessary for timing: every latency in the model depends
 * only on row *geometry* and ID streams. Tables therefore support two
 * backings:
 *
 *  - Dense:   real float storage; used by functional training runs and
 *             all correctness tests.
 *  - Phantom: geometry only; rowPtr() is forbidden. Timing-mode system
 *             models carry paper-scale tables this way.
 */

#ifndef SP_EMB_EMBEDDING_TABLE_H
#define SP_EMB_EMBEDDING_TABLE_H

#include <cstdint>
#include <cstddef>
#include <vector>

#include "tensor/rng.h"

namespace sp::emb
{

/** Interface for anything that can hand out mutable embedding rows. */
class RowAccessor
{
  public:
    virtual ~RowAccessor() = default;

    /** Mutable pointer to the dim() floats of row `id`. */
    virtual float *row(uint64_t id) = 0;

    /** Read-only pointer to the dim() floats of row `id`. */
    virtual const float *row(uint64_t id) const = 0;

    /** Embedding vector dimension. */
    virtual size_t dim() const = 0;
};

/** One embedding table, dense (materialised) or phantom (geometry). */
class EmbeddingTable : public RowAccessor
{
  public:
    enum class Backing
    {
        Dense,   //!< real float storage
        Phantom, //!< geometry only, no storage
    };

    EmbeddingTable(uint64_t rows, size_t dim,
                   Backing backing = Backing::Dense);

    uint64_t rows() const { return rows_; }
    size_t dim() const override { return dim_; }
    size_t rowBytes() const { return dim_ * sizeof(float); }
    bool isDense() const { return backing_ == Backing::Dense; }

    /** Total bytes this table represents (even when phantom). */
    uint64_t modelBytes() const { return rows_ * rowBytes(); }

    /** Initialise dense storage with N(0, stddev) values. */
    void initRandom(tensor::Rng &rng, float stddev);

    float *row(uint64_t id) override;
    const float *row(uint64_t id) const override;

    /** Deep equality of two dense tables (bit-identical floats). */
    static bool identical(const EmbeddingTable &a, const EmbeddingTable &b);

  private:
    uint64_t rows_;
    size_t dim_;
    Backing backing_;
    std::vector<float> data_;
};

} // namespace sp::emb

#endif // SP_EMB_EMBEDDING_TABLE_H
