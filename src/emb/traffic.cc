#include "emb/traffic.h"

namespace sp::emb
{

Traffic &
Traffic::operator+=(const Traffic &other)
{
    sparse_read_bytes += other.sparse_read_bytes;
    sparse_write_bytes += other.sparse_write_bytes;
    dense_read_bytes += other.dense_read_bytes;
    dense_write_bytes += other.dense_write_bytes;
    return *this;
}

Traffic
gatherTraffic(uint64_t n, size_t row_bytes)
{
    Traffic t;
    t.sparse_read_bytes = static_cast<double>(n) * row_bytes;
    t.dense_write_bytes = static_cast<double>(n) * row_bytes;
    return t;
}

Traffic
reduceTraffic(uint64_t n, uint64_t n_out, size_t row_bytes)
{
    Traffic t;
    t.dense_read_bytes = static_cast<double>(n) * row_bytes;
    t.dense_write_bytes = static_cast<double>(n_out) * row_bytes;
    return t;
}

Traffic
duplicateTraffic(uint64_t n_out, uint64_t n, size_t row_bytes)
{
    Traffic t;
    t.dense_read_bytes = static_cast<double>(n_out) * row_bytes;
    t.dense_write_bytes = static_cast<double>(n) * row_bytes;
    return t;
}

Traffic
coalesceTraffic(uint64_t n, uint64_t n_unique, size_t row_bytes)
{
    Traffic t;
    // One sort-like pass over the duplicated gradients plus the
    // coalesced output write.
    t.dense_read_bytes = static_cast<double>(n) * row_bytes;
    t.dense_write_bytes =
        static_cast<double>(n) * row_bytes +
        static_cast<double>(n_unique) * row_bytes;
    return t;
}

Traffic
scatterTraffic(uint64_t n_unique, size_t row_bytes)
{
    Traffic t;
    // SGD update is a read-modify-write of the target row; gradient
    // rows stream in.
    t.sparse_read_bytes = static_cast<double>(n_unique) * row_bytes;
    t.sparse_write_bytes = static_cast<double>(n_unique) * row_bytes;
    t.dense_read_bytes = static_cast<double>(n_unique) * row_bytes;
    return t;
}

Traffic
embeddingForwardTraffic(uint64_t n, uint64_t batch, size_t row_bytes)
{
    return gatherTraffic(n, row_bytes) + reduceTraffic(n, batch, row_bytes);
}

Traffic
embeddingBackwardTraffic(uint64_t n, uint64_t batch, uint64_t n_unique,
                         size_t row_bytes)
{
    return duplicateTraffic(batch, n, row_bytes) +
           coalesceTraffic(n, n_unique, row_bytes) +
           scatterTraffic(n_unique, row_bytes);
}

} // namespace sp::emb
