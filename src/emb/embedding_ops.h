/**
 * @file
 * Embedding-layer compute primitives (paper Fig. 2).
 *
 * Forward: gather rows by sparse ID, then reduce (sum) each sample's
 * group of lookups to one vector per table.
 *
 * Backward: each sample's output gradient is duplicated to all of its
 * lookups, duplicates targeting the same row are coalesced (summed),
 * and the coalesced gradients are scattered into the table as SGD
 * updates.
 *
 * Every kernel here has a fixed, documented accumulation order
 * (trace order within a sample; trace order within an ID group), so
 * two systems running the same trace produce bit-identical floats --
 * the foundation of the algorithmic-equivalence property tests.
 */

#ifndef SP_EMB_EMBEDDING_OPS_H
#define SP_EMB_EMBEDDING_OPS_H

#include <cstdint>
#include <cstddef>
#include <span>
#include <vector>

#include "emb/embedding_table.h"
#include "tensor/matrix.h"

namespace sp::emb
{

/**
 * Gather `ids.size()` rows into `out` (ids.size() x dim).
 * Row i of out is a copy of table row ids[i].
 */
void gather(const RowAccessor &table, std::span<const uint64_t> ids,
            tensor::Matrix &out);

/**
 * Reduce groups of `lookups` consecutive gathered rows by summation:
 * out(i) = sum of gathered rows [i*lookups, (i+1)*lookups). The sum is
 * taken in trace order (left to right).
 */
void reduceSum(const tensor::Matrix &gathered, size_t lookups,
               tensor::Matrix &out);

/** Fused gather + per-sample sum (out is batch x dim). */
void gatherReduce(const RowAccessor &table, std::span<const uint64_t> ids,
                  size_t lookups, tensor::Matrix &out);

/** Result of gradient duplication + coalescing for one table. */
struct CoalescedGradients
{
    /** Unique row IDs in ascending order. */
    std::vector<uint64_t> ids;
    /** ids.size() x dim summed gradients, matching `ids` order. */
    tensor::Matrix grads;
};

/**
 * Duplicate per-sample output gradients to every lookup and coalesce
 * duplicates (paper Fig. 2(b)).
 *
 * @param ids          batch*lookups sparse IDs in trace order.
 * @param output_grads batch x dim gradients of the reduced outputs.
 * @param lookups      lookups per sample.
 *
 * Accumulation order inside an ID group follows trace order, so the
 * result is deterministic. With sum-reduction the duplicated gradient
 * of every lookup of sample i is exactly output_grads row i.
 */
CoalescedGradients duplicateAndCoalesce(std::span<const uint64_t> ids,
                                        const tensor::Matrix &output_grads,
                                        size_t lookups);

/**
 * SGD scatter-update: row[id] -= lr * grad for every coalesced entry.
 * Each row is touched exactly once per call.
 */
void sgdScatter(RowAccessor &table, const CoalescedGradients &coalesced,
                float lr);

/**
 * Sparse AdaGrad scatter-update (the DLRM embedding default):
 *   state[id][d] += grad[d]^2
 *   row[id][d]   -= lr * grad[d] / (sqrt(state[id][d]) + eps)
 * `state` holds one accumulator per embedding element and must share
 * the table's geometry. Deterministic element order, so pipelined and
 * sequential execution stay bit-identical.
 */
void adagradScatter(RowAccessor &table, RowAccessor &state,
                    const CoalescedGradients &coalesced, float lr,
                    float eps);

/** Number of distinct IDs in `ids` (timing-mode helper). */
size_t countUnique(std::span<const uint64_t> ids);

/**
 * countUnique with a caller-provided scratch buffer: `scratch` is
 * resized to hold a sorted copy of `ids` but keeps its capacity, so
 * repeated calls (the per-batch statistics loops) stop paying a heap
 * allocation per call.
 */
size_t countUnique(std::span<const uint64_t> ids,
                   std::vector<uint64_t> &scratch);

/** Distinct IDs of `ids`, ascending (timing-mode helper). */
std::vector<uint64_t> uniqueIds(std::span<const uint64_t> ids);

} // namespace sp::emb

#endif // SP_EMB_EMBEDDING_OPS_H
