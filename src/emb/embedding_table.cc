#include "emb/embedding_table.h"

#include <algorithm>

#include "common/logging.h"

namespace sp::emb
{

EmbeddingTable::EmbeddingTable(uint64_t rows, size_t dim, Backing backing)
    : rows_(rows), dim_(dim), backing_(backing)
{
    fatalIf(rows == 0, "embedding table needs at least one row");
    fatalIf(dim == 0, "embedding dimension must be positive");
    if (backing_ == Backing::Dense) {
        const uint64_t total = rows_ * static_cast<uint64_t>(dim_);
        fatalIf(total > (1ull << 32),
                "dense table of ", rows_, "x", dim_,
                " floats is too large to materialise; use Phantom backing");
        data_.assign(total, 0.0f);
    }
}

void
EmbeddingTable::initRandom(tensor::Rng &rng, float stddev)
{
    fatalIf(!isDense(), "cannot initialise a phantom table");
    for (auto &v : data_)
        v = static_cast<float>(rng.normal(0.0, stddev));
}

float *
EmbeddingTable::row(uint64_t id)
{
    panicIf(!isDense(), "row access on a phantom embedding table");
    panicIf(id >= rows_, "row ", id, " out of range (", rows_, " rows)");
    return data_.data() + id * dim_;
}

const float *
EmbeddingTable::row(uint64_t id) const
{
    panicIf(!isDense(), "row access on a phantom embedding table");
    panicIf(id >= rows_, "row ", id, " out of range (", rows_, " rows)");
    return data_.data() + id * dim_;
}

bool
EmbeddingTable::identical(const EmbeddingTable &a, const EmbeddingTable &b)
{
    if (a.rows_ != b.rows_ || a.dim_ != b.dim_)
        return false;
    panicIf(!a.isDense() || !b.isDense(),
            "identical() requires dense tables");
    return std::equal(a.data_.begin(), a.data_.end(), b.data_.begin());
}

} // namespace sp::emb
