/**
 * @file
 * The DLRM backend: bottom MLP, feature interaction, top MLP, and the
 * sigmoid/BCE prediction head (paper Fig. 1, the "DNN layers").
 *
 * The embedding frontend is intentionally *not* part of this class:
 * the system models own embedding storage and movement (that is what
 * the paper is about) and hand reduced embeddings in / take embedding
 * gradients out through this interface, exactly at the boundary where
 * the CPU-GPU split sits in Fig. 4.
 */

#ifndef SP_NN_DLRM_H
#define SP_NN_DLRM_H

#include <vector>
#include <cstddef>

#include "nn/interaction.h"
#include "nn/mlp.h"
#include "tensor/matrix.h"
#include "tensor/rng.h"

namespace sp::nn
{

/** Architecture of the DLRM backend. */
struct DlrmConfig
{
    size_t num_tables = 8;
    size_t embedding_dim = 128;
    size_t dense_features = 13;
    /** Hidden widths of the bottom MLP (output layer is added to
     *  project to embedding_dim). */
    std::vector<size_t> bottom_hidden = {512, 256};
    /** Hidden widths of the top MLP (a final 1-wide logit layer is
     *  appended automatically). */
    std::vector<size_t> top_hidden = {1024, 1024, 512, 256};
    float learning_rate = 0.01f;
};

/** Result of one forward pass. */
struct DlrmForwardResult
{
    double loss = 0.0;
    double accuracy = 0.0;
};

/** The trainable DNN backend of the RecSys model. */
class DlrmModel
{
  public:
    DlrmModel(const DlrmConfig &config, uint64_t seed);

    const DlrmConfig &config() const { return config_; }

    /**
     * Forward pass: dense features + per-table reduced embeddings ->
     * CTR probability, loss and accuracy against labels.
     */
    DlrmForwardResult forward(const tensor::Matrix &dense,
                              const std::vector<tensor::Matrix> &reduced,
                              const tensor::Matrix &labels);

    /**
     * Backward pass: produces the gradient of every table's reduced
     * embedding (to be routed back to the embedding layers) and stores
     * all MLP weight gradients.
     */
    void backward(std::vector<tensor::Matrix> &emb_grads);

    /** SGD update of all MLP weights. */
    void step();

    /** Parameter count of both MLPs. */
    size_t parameterCount() const;

    const Mlp &bottomMlp() const { return bottom_; }
    const Mlp &topMlp() const { return top_; }
    Mlp &bottomMlp() { return bottom_; }
    Mlp &topMlp() { return top_; }

    /** Bit-identical parameter comparison of two models. */
    static bool identical(const DlrmModel &a, const DlrmModel &b);

  private:
    DlrmConfig config_;
    Mlp bottom_;
    FeatureInteraction interaction_;
    Mlp top_;

    // Forward stash for backward().
    tensor::Matrix bottom_out_;
    tensor::Matrix interact_out_;
    tensor::Matrix logits_;
    tensor::Matrix probs_;
    tensor::Matrix labels_;

    static std::vector<size_t> bottomDims(const DlrmConfig &config);
    static std::vector<size_t> topDims(const DlrmConfig &config);
};

} // namespace sp::nn

#endif // SP_NN_DLRM_H
