/**
 * @file
 * Multi-layer perceptron: Linear layers with ReLU between them.
 *
 * The last layer's activation is configurable (none for the top MLP
 * whose logit feeds the sigmoid/BCE head, ReLU elsewhere), mirroring
 * the DLRM reference model.
 */

#ifndef SP_NN_MLP_H
#define SP_NN_MLP_H

#include <vector>
#include <cstddef>

#include "nn/linear.h"
#include "tensor/matrix.h"
#include "tensor/rng.h"

namespace sp::nn
{

/** A stack of Linear+ReLU layers (final activation optional). */
class Mlp
{
  public:
    /**
     * @param dims Layer widths, e.g. {13, 512, 256, 128} builds three
     *             Linear layers 13->512->256->128.
     * @param relu_output Apply ReLU after the last layer too.
     */
    Mlp(const std::vector<size_t> &dims, tensor::Rng &rng,
        bool relu_output = true);

    size_t inputDim() const { return dims_.front(); }
    size_t outputDim() const { return dims_.back(); }
    size_t numLayers() const { return layers_.size(); }

    /** Forward pass; stashes activations for backward(). */
    void forward(const tensor::Matrix &input, tensor::Matrix &out);

    /**
     * Backward pass from dout to dinput; computes and stores all
     * weight gradients. Must follow a forward() on the same input.
     */
    void backward(const tensor::Matrix &dout, tensor::Matrix &dinput);

    /** SGD update of every layer. */
    void step(float lr);

    size_t parameterCount() const;

    const std::vector<Linear> &layers() const { return layers_; }
    std::vector<Linear> &layers() { return layers_; }

    static bool identical(const Mlp &a, const Mlp &b);

  private:
    std::vector<size_t> dims_;
    bool relu_output_;
    std::vector<Linear> layers_;
    // Saved activations: pre_act_[i] is layer i's Linear output,
    // post_act_[i] its activation output. post_act_.back() is the MLP
    // output. inputs_[0] is the forward() input copy.
    std::vector<tensor::Matrix> pre_act_;
    std::vector<tensor::Matrix> post_act_;
    tensor::Matrix input_copy_;
};

} // namespace sp::nn

#endif // SP_NN_MLP_H
