/**
 * @file
 * FLOP accounting for the DLRM backend.
 *
 * The timing model charges GPU compute time from these counts; they
 * must therefore match what the functional layers actually execute
 * (GEMMs dominate; elementwise terms are included for completeness).
 */

#ifndef SP_NN_FLOPS_H
#define SP_NN_FLOPS_H

#include <cstddef>

#include "nn/dlrm.h"

namespace sp::nn
{

/** FLOPs of one MLP forward pass over `batch` samples. */
double mlpForwardFlops(const std::vector<size_t> &dims, size_t batch);

/** FLOPs of one MLP backward pass (dX + dW + db) over `batch`. */
double mlpBackwardFlops(const std::vector<size_t> &dims, size_t batch);

/** FLOPs of the dot feature interaction, forward. */
double interactionForwardFlops(size_t num_tables, size_t dim, size_t batch);

/** FLOPs of the dot feature interaction, backward. */
double interactionBackwardFlops(size_t num_tables, size_t dim,
                                size_t batch);

/** Total DLRM backend FLOPs for one iteration (fwd + bwd). */
double dlrmIterationFlops(const DlrmConfig &config, size_t batch);

/** Forward-only DLRM backend FLOPs (inference serving). */
double dlrmForwardFlops(const DlrmConfig &config, size_t batch);

} // namespace sp::nn

#endif // SP_NN_FLOPS_H
