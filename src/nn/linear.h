/**
 * @file
 * Fully connected layer with SGD state.
 *
 * Forward:  Y = X * W^T + b      (X: B x in, W: out x in, b: 1 x out)
 * Backward: dX = dY * W, dW = dY^T * X, db = column-sum of dY
 *
 * Gradients are stored inside the layer between backward() and step();
 * step() applies plain SGD, matching the paper's training setup.
 */

#ifndef SP_NN_LINEAR_H
#define SP_NN_LINEAR_H

#include "tensor/matrix.h"
#include <cstddef>
#include "tensor/rng.h"

namespace sp::nn
{

/** One dense layer: weights, bias, and their gradients. */
class Linear
{
  public:
    /** Kaiming-uniform initialised (in_features fan-in). */
    Linear(size_t in_features, size_t out_features, tensor::Rng &rng);

    size_t inFeatures() const { return in_features_; }
    size_t outFeatures() const { return out_features_; }

    /** Y = X W^T + b. `out` is resized to B x out_features. */
    void forward(const tensor::Matrix &input, tensor::Matrix &out);

    /**
     * Compute dW, db (stored) and dX (written to `dinput`). `input`
     * must be the same matrix passed to the preceding forward().
     */
    void backward(const tensor::Matrix &input, const tensor::Matrix &dout,
                  tensor::Matrix &dinput);

    /** SGD: W -= lr*dW, b -= lr*db. */
    void step(float lr);

    const tensor::Matrix &weights() const { return weights_; }
    const tensor::Matrix &bias() const { return bias_; }
    tensor::Matrix &weights() { return weights_; }
    tensor::Matrix &bias() { return bias_; }
    const tensor::Matrix &weightGrads() const { return dweights_; }

    /** Number of trainable parameters. */
    size_t parameterCount() const;

    /** Bit-identical parameter equality of two layers. */
    static bool identical(const Linear &a, const Linear &b);

  private:
    size_t in_features_;
    size_t out_features_;
    tensor::Matrix weights_;  // out x in
    tensor::Matrix bias_;     // 1 x out
    tensor::Matrix dweights_; // out x in
    tensor::Matrix dbias_;    // 1 x out
};

} // namespace sp::nn

#endif // SP_NN_LINEAR_H
