#include "nn/mlp.h"

#include "common/logging.h"
#include "tensor/ops.h"

namespace sp::nn
{

Mlp::Mlp(const std::vector<size_t> &dims, tensor::Rng &rng,
         bool relu_output)
    : dims_(dims), relu_output_(relu_output)
{
    fatalIf(dims.size() < 2, "an MLP needs at least two dims (in, out)");
    layers_.reserve(dims.size() - 1);
    for (size_t i = 0; i + 1 < dims.size(); ++i)
        layers_.emplace_back(dims[i], dims[i + 1], rng);
    pre_act_.resize(layers_.size());
    post_act_.resize(layers_.size());
}

void
Mlp::forward(const tensor::Matrix &input, tensor::Matrix &out)
{
    input_copy_ = input;
    const tensor::Matrix *current = &input_copy_;
    for (size_t i = 0; i < layers_.size(); ++i) {
        layers_[i].forward(*current, pre_act_[i]);
        const bool activate = relu_output_ || i + 1 < layers_.size();
        if (activate) {
            post_act_[i].resize(pre_act_[i].rows(), pre_act_[i].cols());
            tensor::reluForward(pre_act_[i], post_act_[i]);
        } else {
            post_act_[i] = pre_act_[i];
        }
        current = &post_act_[i];
    }
    out = post_act_.back();
}

void
Mlp::backward(const tensor::Matrix &dout, tensor::Matrix &dinput)
{
    panicIf(post_act_.empty() || post_act_.back().empty(),
            "Mlp::backward without a preceding forward");
    tensor::Matrix grad = dout;
    tensor::Matrix next_grad;
    for (size_t idx = layers_.size(); idx-- > 0;) {
        const bool activated = relu_output_ || idx + 1 < layers_.size();
        if (activated) {
            next_grad.resize(grad.rows(), grad.cols());
            tensor::reluBackward(pre_act_[idx], grad, next_grad);
            grad = next_grad;
        }
        const tensor::Matrix &layer_input =
            idx == 0 ? input_copy_ : post_act_[idx - 1];
        layers_[idx].backward(layer_input, grad, next_grad);
        grad = next_grad;
    }
    dinput = grad;
}

void
Mlp::step(float lr)
{
    for (auto &layer : layers_)
        layer.step(lr);
}

size_t
Mlp::parameterCount() const
{
    size_t total = 0;
    for (const auto &layer : layers_)
        total += layer.parameterCount();
    return total;
}

bool
Mlp::identical(const Mlp &a, const Mlp &b)
{
    if (a.layers_.size() != b.layers_.size())
        return false;
    for (size_t i = 0; i < a.layers_.size(); ++i) {
        if (!Linear::identical(a.layers_[i], b.layers_[i]))
            return false;
    }
    return true;
}

} // namespace sp::nn
