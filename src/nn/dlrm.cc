#include "nn/dlrm.h"

#include "common/logging.h"
#include "tensor/ops.h"

namespace sp::nn
{

std::vector<size_t>
DlrmModel::bottomDims(const DlrmConfig &config)
{
    std::vector<size_t> dims;
    dims.push_back(config.dense_features);
    dims.insert(dims.end(), config.bottom_hidden.begin(),
                config.bottom_hidden.end());
    dims.push_back(config.embedding_dim);
    return dims;
}

std::vector<size_t>
DlrmModel::topDims(const DlrmConfig &config)
{
    const size_t f = config.num_tables + 1;
    const size_t interact = config.embedding_dim + f * (f - 1) / 2;
    std::vector<size_t> dims;
    dims.push_back(interact);
    dims.insert(dims.end(), config.top_hidden.begin(),
                config.top_hidden.end());
    dims.push_back(1);
    return dims;
}

DlrmModel::DlrmModel(const DlrmConfig &config, uint64_t seed)
    : config_(config),
      bottom_([&] {
          tensor::Rng rng(seed * 2 + 1);
          return Mlp(bottomDims(config), rng, true);
      }()),
      interaction_(config.num_tables, config.embedding_dim),
      top_([&] {
          tensor::Rng rng(seed * 2 + 2);
          return Mlp(topDims(config), rng, false);
      }())
{
}

DlrmForwardResult
DlrmModel::forward(const tensor::Matrix &dense,
                   const std::vector<tensor::Matrix> &reduced,
                   const tensor::Matrix &labels)
{
    panicIf(reduced.size() != config_.num_tables,
            "DLRM forward expects ", config_.num_tables,
            " reduced embeddings, got ", reduced.size());
    bottom_.forward(dense, bottom_out_);
    interaction_.forward(bottom_out_, reduced, interact_out_);
    top_.forward(interact_out_, logits_);

    probs_.resize(logits_.rows(), logits_.cols());
    tensor::sigmoidForward(logits_, probs_);
    labels_ = labels;

    DlrmForwardResult result;
    result.loss = tensor::bceLoss(probs_, labels_);
    result.accuracy = tensor::binaryAccuracy(probs_, labels_);
    return result;
}

void
DlrmModel::backward(std::vector<tensor::Matrix> &emb_grads)
{
    panicIf(probs_.empty(), "DLRM backward without a preceding forward");

    tensor::Matrix dlogits(probs_.rows(), probs_.cols());
    tensor::bceSigmoidBackward(probs_, labels_, dlogits);

    tensor::Matrix dinteract;
    top_.backward(dlogits, dinteract);

    tensor::Matrix dbottom_out;
    interaction_.backward(dinteract, dbottom_out, emb_grads);

    tensor::Matrix ddense;
    bottom_.backward(dbottom_out, ddense);
}

void
DlrmModel::step()
{
    bottom_.step(config_.learning_rate);
    top_.step(config_.learning_rate);
}

size_t
DlrmModel::parameterCount() const
{
    return bottom_.parameterCount() + top_.parameterCount();
}

bool
DlrmModel::identical(const DlrmModel &a, const DlrmModel &b)
{
    return Mlp::identical(a.bottom_, b.bottom_) &&
           Mlp::identical(a.top_, b.top_);
}

} // namespace sp::nn
