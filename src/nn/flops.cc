#include "nn/flops.h"

namespace sp::nn
{

namespace
{

std::vector<size_t>
bottomDims(const DlrmConfig &config)
{
    std::vector<size_t> dims;
    dims.push_back(config.dense_features);
    dims.insert(dims.end(), config.bottom_hidden.begin(),
                config.bottom_hidden.end());
    dims.push_back(config.embedding_dim);
    return dims;
}

std::vector<size_t>
topDims(const DlrmConfig &config)
{
    const size_t f = config.num_tables + 1;
    const size_t interact = config.embedding_dim + f * (f - 1) / 2;
    std::vector<size_t> dims;
    dims.push_back(interact);
    dims.insert(dims.end(), config.top_hidden.begin(),
                config.top_hidden.end());
    dims.push_back(1);
    return dims;
}

} // namespace

double
mlpForwardFlops(const std::vector<size_t> &dims, size_t batch)
{
    double flops = 0.0;
    for (size_t i = 0; i + 1 < dims.size(); ++i) {
        // GEMM: 2*B*out*in, bias add: B*out, activation: B*out.
        flops += 2.0 * batch * dims[i] * dims[i + 1];
        flops += 2.0 * batch * dims[i + 1];
    }
    return flops;
}

double
mlpBackwardFlops(const std::vector<size_t> &dims, size_t batch)
{
    double flops = 0.0;
    for (size_t i = 0; i + 1 < dims.size(); ++i) {
        // dX and dW GEMMs plus db reduction and activation backward.
        flops += 4.0 * batch * dims[i] * dims[i + 1];
        flops += 2.0 * batch * dims[i + 1];
    }
    return flops;
}

double
interactionForwardFlops(size_t num_tables, size_t dim, size_t batch)
{
    const double f = static_cast<double>(num_tables + 1);
    const double pairs = f * (f - 1.0) / 2.0;
    return 2.0 * batch * pairs * dim;
}

double
interactionBackwardFlops(size_t num_tables, size_t dim, size_t batch)
{
    // Each pair contributes two axpy passes of length dim.
    const double f = static_cast<double>(num_tables + 1);
    const double pairs = f * (f - 1.0) / 2.0;
    return 4.0 * batch * pairs * dim;
}

double
dlrmIterationFlops(const DlrmConfig &config, size_t batch)
{
    const auto bottom = bottomDims(config);
    const auto top = topDims(config);
    double flops = 0.0;
    flops += mlpForwardFlops(bottom, batch) +
             mlpBackwardFlops(bottom, batch);
    flops += mlpForwardFlops(top, batch) + mlpBackwardFlops(top, batch);
    flops += interactionForwardFlops(config.num_tables,
                                     config.embedding_dim, batch);
    flops += interactionBackwardFlops(config.num_tables,
                                      config.embedding_dim, batch);
    return flops;
}

double
dlrmForwardFlops(const DlrmConfig &config, size_t batch)
{
    double flops = 0.0;
    flops += mlpForwardFlops(bottomDims(config), batch);
    flops += mlpForwardFlops(topDims(config), batch);
    flops += interactionForwardFlops(config.num_tables,
                                     config.embedding_dim, batch);
    return flops;
}

} // namespace sp::nn
