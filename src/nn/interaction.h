/**
 * @file
 * DLRM feature interaction.
 *
 * Combines the bottom-MLP output with the per-table reduced embeddings
 * (paper Fig. 1): the output is the bottom vector concatenated with the
 * upper-triangle pairwise dot products among all T+1 feature vectors
 * (bottom output + one reduced embedding per table), matching the DLRM
 * reference "dot" interaction.
 *
 * Output width: D + (T+1 choose 2).
 */

#ifndef SP_NN_INTERACTION_H
#define SP_NN_INTERACTION_H

#include <vector>
#include <cstddef>

#include "tensor/matrix.h"

namespace sp::nn
{

/** Dot-product feature interaction with full backward support. */
class FeatureInteraction
{
  public:
    /**
     * @param num_tables Number of embedding tables T.
     * @param dim Shared feature dimension D (bottom output and every
     *            reduced embedding must be B x D).
     */
    FeatureInteraction(size_t num_tables, size_t dim);

    size_t outputDim() const;

    /**
     * @param bottom   B x D bottom-MLP output.
     * @param embs     T matrices, each B x D (reduced embeddings).
     * @param out      resized to B x outputDim().
     */
    void forward(const tensor::Matrix &bottom,
                 const std::vector<tensor::Matrix> &embs,
                 tensor::Matrix &out);

    /**
     * Backward: dout (B x outputDim()) propagates to dbottom (B x D)
     * and dembs (T matrices of B x D). Must follow forward() on the
     * same inputs.
     */
    void backward(const tensor::Matrix &dout, tensor::Matrix &dbottom,
                  std::vector<tensor::Matrix> &dembs);

  private:
    size_t num_tables_;
    size_t dim_;
    // Saved forward inputs (bottom at index 0, tables after).
    std::vector<tensor::Matrix> saved_features_;
};

} // namespace sp::nn

#endif // SP_NN_INTERACTION_H
