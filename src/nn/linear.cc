#include "nn/linear.h"

#include "common/logging.h"
#include "tensor/gemm.h"
#include "tensor/ops.h"

namespace sp::nn
{

Linear::Linear(size_t in_features, size_t out_features, tensor::Rng &rng)
    : in_features_(in_features), out_features_(out_features),
      weights_(out_features, in_features), bias_(1, out_features),
      dweights_(out_features, in_features), dbias_(1, out_features)
{
    fatalIf(in_features == 0 || out_features == 0,
            "Linear layer dimensions must be positive");
    weights_.fillKaiming(rng, in_features);
    bias_.fillKaiming(rng, in_features);
}

void
Linear::forward(const tensor::Matrix &input, tensor::Matrix &out)
{
    panicIf(input.cols() != in_features_, "Linear forward: input has ",
            input.cols(), " features, layer expects ", in_features_);
    out.resize(input.rows(), out_features_);
    tensor::gemmNT(input, weights_, out);
    tensor::addRowBroadcast(out, bias_);
}

void
Linear::backward(const tensor::Matrix &input, const tensor::Matrix &dout,
                 tensor::Matrix &dinput)
{
    panicIf(dout.rows() != input.rows() || dout.cols() != out_features_,
            "Linear backward: gradient shape mismatch");
    // dW = dY^T X
    tensor::gemmTN(dout, input, dweights_);
    // db = column sums of dY
    tensor::sumRows(dout, dbias_);
    // dX = dY W
    dinput.resize(input.rows(), in_features_);
    tensor::gemm(dout, weights_, dinput);
}

void
Linear::step(float lr)
{
    tensor::axpy(-lr, dweights_, weights_);
    tensor::axpy(-lr, dbias_, bias_);
}

size_t
Linear::parameterCount() const
{
    return weights_.size() + bias_.size();
}

bool
Linear::identical(const Linear &a, const Linear &b)
{
    return tensor::Matrix::identical(a.weights_, b.weights_) &&
           tensor::Matrix::identical(a.bias_, b.bias_);
}

} // namespace sp::nn
