#include "nn/interaction.h"

#include <cstring>

#include "common/logging.h"

namespace sp::nn
{

FeatureInteraction::FeatureInteraction(size_t num_tables, size_t dim)
    : num_tables_(num_tables), dim_(dim)
{
    fatalIf(dim == 0, "interaction dimension must be positive");
}

size_t
FeatureInteraction::outputDim() const
{
    const size_t f = num_tables_ + 1;
    return dim_ + f * (f - 1) / 2;
}

void
FeatureInteraction::forward(const tensor::Matrix &bottom,
                            const std::vector<tensor::Matrix> &embs,
                            tensor::Matrix &out)
{
    panicIf(embs.size() != num_tables_, "interaction expects ",
            num_tables_, " embedding inputs, got ", embs.size());
    const size_t batch = bottom.rows();
    panicIf(bottom.cols() != dim_, "bottom output must be Bx", dim_);
    for (const auto &e : embs)
        panicIf(e.rows() != batch || e.cols() != dim_,
                "every reduced embedding must be ", batch, "x", dim_);

    saved_features_.clear();
    saved_features_.reserve(num_tables_ + 1);
    saved_features_.push_back(bottom);
    for (const auto &e : embs)
        saved_features_.push_back(e);

    const size_t f = num_tables_ + 1;
    out.resize(batch, outputDim());
    for (size_t i = 0; i < batch; ++i) {
        float *dst = out.row(i);
        std::memcpy(dst, bottom.row(i), dim_ * sizeof(float));
        size_t k = dim_;
        for (size_t a = 0; a < f; ++a) {
            const float *va = saved_features_[a].row(i);
            for (size_t b = a + 1; b < f; ++b) {
                const float *vb = saved_features_[b].row(i);
                float dot = 0.0f;
                for (size_t d = 0; d < dim_; ++d)
                    dot += va[d] * vb[d];
                dst[k++] = dot;
            }
        }
    }
}

void
FeatureInteraction::backward(const tensor::Matrix &dout,
                             tensor::Matrix &dbottom,
                             std::vector<tensor::Matrix> &dembs)
{
    panicIf(saved_features_.empty(),
            "interaction backward without a preceding forward");
    const size_t batch = saved_features_[0].rows();
    panicIf(dout.rows() != batch || dout.cols() != outputDim(),
            "interaction backward: dout must be ", batch, "x",
            outputDim());

    const size_t f = num_tables_ + 1;
    dbottom.resize(batch, dim_);
    dembs.resize(num_tables_);
    for (auto &d : dembs)
        d.resize(batch, dim_);

    for (size_t i = 0; i < batch; ++i) {
        const float *g = dout.row(i);
        // Pass-through part feeds the bottom gradient directly.
        std::memcpy(dbottom.row(i), g, dim_ * sizeof(float));
        for (auto &d : dembs)
            std::memset(d.row(i), 0, dim_ * sizeof(float));

        size_t k = dim_;
        for (size_t a = 0; a < f; ++a) {
            const float *va = saved_features_[a].row(i);
            float *da = a == 0 ? dbottom.row(i) : dembs[a - 1].row(i);
            for (size_t b = a + 1; b < f; ++b) {
                const float *vb = saved_features_[b].row(i);
                float *db = b == 0 ? dbottom.row(i) : dembs[b - 1].row(i);
                const float gd = g[k++];
                for (size_t d = 0; d < dim_; ++d) {
                    da[d] += gd * vb[d];
                    db[d] += gd * va[d];
                }
            }
        }
    }
}

} // namespace sp::nn
