/**
 * @file
 * Single-precision general matrix multiply.
 *
 * The NN substrate needs four GEMM variants for forward and backward
 * passes (NN, NT, TN and the bias-broadcast helper). The kernel is a
 * cache-blocked triple loop -- not competitive with a vendor BLAS but
 * deterministic, portable and fast enough for the functional runs; the
 * simulated GPU timing comes from sp::sim, not from this kernel's
 * wall-clock time.
 */

#ifndef SP_TENSOR_GEMM_H
#define SP_TENSOR_GEMM_H

#include "tensor/matrix.h"
#include <cstddef>

namespace sp::tensor
{

/** C = alpha * A(MxK) * B(KxN) + beta * C(MxN). */
void gemm(const Matrix &a, const Matrix &b, Matrix &c,
          float alpha = 1.0f, float beta = 0.0f);

/** C = alpha * A(MxK) * B^T(NxK) + beta * C(MxN). */
void gemmNT(const Matrix &a, const Matrix &b, Matrix &c,
            float alpha = 1.0f, float beta = 0.0f);

/** C = alpha * A^T(KxM) * B(KxN) + beta * C(MxN). */
void gemmTN(const Matrix &a, const Matrix &b, Matrix &c,
            float alpha = 1.0f, float beta = 0.0f);

/** Add a 1xN row vector to every row of C (bias broadcast). */
void addRowBroadcast(Matrix &c, const Matrix &bias);

/** bias(1xN) = sum over rows of A (bias gradient reduction). */
void sumRows(const Matrix &a, Matrix &bias);

/** FLOPs of a gemm with the given shape (2*M*N*K). */
double gemmFlops(size_t m, size_t n, size_t k);

} // namespace sp::tensor

#endif // SP_TENSOR_GEMM_H
