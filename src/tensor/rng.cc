#include "tensor/rng.h"

#include <cmath>

#include "common/logging.h"

namespace sp::tensor
{

namespace
{

uint64_t
splitmix64(uint64_t &state)
{
    state += 0x9e3779b97f4a7c15ull;
    uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(uint64_t seed)
{
    uint64_t sm = seed;
    for (auto &word : s_)
        word = splitmix64(sm);
}

uint64_t
Rng::next()
{
    const uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;

    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);

    return result;
}

double
Rng::uniform()
{
    // 53 high bits -> double in [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

uint64_t
Rng::uniformInt(uint64_t n)
{
    panicIf(n == 0, "uniformInt(0) is undefined");
    // Rejection sampling to avoid modulo bias.
    const uint64_t threshold = (0 - n) % n;
    for (;;) {
        uint64_t r = next();
        if (r >= threshold)
            return r % n;
    }
}

double
Rng::normal()
{
    if (has_cached_normal_) {
        has_cached_normal_ = false;
        return cached_normal_;
    }
    double u1, u2;
    do {
        u1 = uniform();
    } while (u1 <= 0.0);
    u2 = uniform();
    const double radius = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * M_PI * u2;
    cached_normal_ = radius * std::sin(theta);
    has_cached_normal_ = true;
    return radius * std::cos(theta);
}

double
Rng::normal(double mean, double stddev)
{
    return mean + stddev * normal();
}

bool
Rng::bernoulli(double p)
{
    return uniform() < p;
}

Rng
Rng::split()
{
    return Rng(next());
}

} // namespace sp::tensor
