/**
 * @file
 * Elementwise and reduction kernels shared by the NN layers.
 *
 * Everything here is deterministic: fixed iteration order, no
 * parallel reductions, so functional runs are bit-reproducible across
 * the system models (a requirement of the algorithmic-equivalence
 * property tests).
 */

#ifndef SP_TENSOR_OPS_H
#define SP_TENSOR_OPS_H

#include <cstddef>

#include "tensor/matrix.h"

namespace sp::tensor
{

/** out = relu(in), elementwise. Shapes must match. */
void reluForward(const Matrix &in, Matrix &out);

/** din = dout * (in > 0), elementwise relu backward. */
void reluBackward(const Matrix &in, const Matrix &dout, Matrix &din);

/** out = sigmoid(in), numerically stable for large |x|. */
void sigmoidForward(const Matrix &in, Matrix &out);

/** din = dout * out * (1 - out), sigmoid backward from outputs. */
void sigmoidBackward(const Matrix &out, const Matrix &dout, Matrix &din);

/**
 * Mean binary cross entropy over a column of probabilities.
 *
 * @param prob  Bx1 predicted probabilities in (0, 1).
 * @param label Bx1 labels in {0, 1}.
 * @return mean BCE loss.
 */
double bceLoss(const Matrix &prob, const Matrix &label);

/**
 * Gradient of mean BCE composed with sigmoid: dlogit = (p - y)/B.
 * This is the standard fused form, avoiding the unstable division.
 */
void bceSigmoidBackward(const Matrix &prob, const Matrix &label,
                        Matrix &dlogit);

/** y += alpha * x over all elements (shapes must match). */
void axpy(float alpha, const Matrix &x, Matrix &y);

/** Sum of all elements. */
double sumAll(const Matrix &m);

/** Fraction of rows where (prob >= 0.5) matches the binary label. */
double binaryAccuracy(const Matrix &prob, const Matrix &label);

} // namespace sp::tensor

#endif // SP_TENSOR_OPS_H
