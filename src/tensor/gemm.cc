#include "tensor/gemm.h"

#include <algorithm>

#include "common/logging.h"

namespace sp::tensor
{

namespace
{

constexpr size_t kBlock = 64;

void
scaleOutput(Matrix &c, float beta)
{
    if (beta == 0.0f) {
        c.setZero();
    } else if (beta != 1.0f) {
        for (size_t i = 0; i < c.size(); ++i)
            c.data()[i] *= beta;
    }
}

} // namespace

void
gemm(const Matrix &a, const Matrix &b, Matrix &c, float alpha, float beta)
{
    const size_t m = a.rows(), k = a.cols(), n = b.cols();
    panicIf(b.rows() != k || c.rows() != m || c.cols() != n,
            "gemm shape mismatch: A ", a.rows(), "x", a.cols(), " B ",
            b.rows(), "x", b.cols(), " C ", c.rows(), "x", c.cols());
    scaleOutput(c, beta);

    for (size_t i0 = 0; i0 < m; i0 += kBlock) {
        const size_t i1 = std::min(i0 + kBlock, m);
        for (size_t p0 = 0; p0 < k; p0 += kBlock) {
            const size_t p1 = std::min(p0 + kBlock, k);
            for (size_t i = i0; i < i1; ++i) {
                const float *arow = a.row(i);
                float *crow = c.row(i);
                for (size_t p = p0; p < p1; ++p) {
                    const float av = alpha * arow[p];
                    if (av == 0.0f)
                        continue;
                    const float *brow = b.row(p);
                    for (size_t j = 0; j < n; ++j)
                        crow[j] += av * brow[j];
                }
            }
        }
    }
}

void
gemmNT(const Matrix &a, const Matrix &b, Matrix &c, float alpha, float beta)
{
    const size_t m = a.rows(), k = a.cols(), n = b.rows();
    panicIf(b.cols() != k || c.rows() != m || c.cols() != n,
            "gemmNT shape mismatch: A ", a.rows(), "x", a.cols(), " B^T ",
            b.cols(), "x", b.rows(), " C ", c.rows(), "x", c.cols());
    scaleOutput(c, beta);

    for (size_t i = 0; i < m; ++i) {
        const float *arow = a.row(i);
        float *crow = c.row(i);
        for (size_t j = 0; j < n; ++j) {
            const float *brow = b.row(j);
            float acc = 0.0f;
            for (size_t p = 0; p < k; ++p)
                acc += arow[p] * brow[p];
            crow[j] += alpha * acc;
        }
    }
}

void
gemmTN(const Matrix &a, const Matrix &b, Matrix &c, float alpha, float beta)
{
    const size_t k = a.rows(), m = a.cols(), n = b.cols();
    panicIf(b.rows() != k || c.rows() != m || c.cols() != n,
            "gemmTN shape mismatch: A^T ", a.cols(), "x", a.rows(), " B ",
            b.rows(), "x", b.cols(), " C ", c.rows(), "x", c.cols());
    scaleOutput(c, beta);

    for (size_t p = 0; p < k; ++p) {
        const float *arow = a.row(p);
        const float *brow = b.row(p);
        for (size_t i = 0; i < m; ++i) {
            const float av = alpha * arow[i];
            if (av == 0.0f)
                continue;
            float *crow = c.row(i);
            for (size_t j = 0; j < n; ++j)
                crow[j] += av * brow[j];
        }
    }
}

void
addRowBroadcast(Matrix &c, const Matrix &bias)
{
    panicIf(bias.rows() != 1 || bias.cols() != c.cols(),
            "addRowBroadcast: bias must be 1x", c.cols());
    for (size_t i = 0; i < c.rows(); ++i) {
        float *crow = c.row(i);
        for (size_t j = 0; j < c.cols(); ++j)
            crow[j] += bias(0, j);
    }
}

void
sumRows(const Matrix &a, Matrix &bias)
{
    panicIf(bias.rows() != 1 || bias.cols() != a.cols(),
            "sumRows: bias must be 1x", a.cols());
    bias.setZero();
    for (size_t i = 0; i < a.rows(); ++i) {
        const float *arow = a.row(i);
        for (size_t j = 0; j < a.cols(); ++j)
            bias(0, j) += arow[j];
    }
}

double
gemmFlops(size_t m, size_t n, size_t k)
{
    return 2.0 * static_cast<double>(m) * static_cast<double>(n) *
           static_cast<double>(k);
}

} // namespace sp::tensor
