#include "tensor/matrix.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "tensor/rng.h"

namespace sp::tensor
{

Matrix::Matrix(size_t rows, size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0f)
{
}

float &
Matrix::at(size_t r, size_t c)
{
    panicIf(r >= rows_ || c >= cols_, "Matrix::at(", r, ",", c,
            ") out of bounds for ", rows_, "x", cols_);
    return data_[r * cols_ + c];
}

float
Matrix::at(size_t r, size_t c) const
{
    panicIf(r >= rows_ || c >= cols_, "Matrix::at(", r, ",", c,
            ") out of bounds for ", rows_, "x", cols_);
    return data_[r * cols_ + c];
}

void
Matrix::reshape(size_t rows, size_t cols)
{
    panicIf(rows * cols != data_.size(),
            "reshape(", rows, ",", cols, ") does not preserve element count ",
            data_.size());
    rows_ = rows;
    cols_ = cols;
}

void
Matrix::resize(size_t rows, size_t cols)
{
    rows_ = rows;
    cols_ = cols;
    data_.assign(rows * cols, 0.0f);
}

void
Matrix::fill(float value)
{
    std::fill(data_.begin(), data_.end(), value);
}

void
Matrix::fillNormal(Rng &rng, float stddev)
{
    for (auto &v : data_)
        v = static_cast<float>(rng.normal(0.0, stddev));
}

void
Matrix::fillUniform(Rng &rng, float lo, float hi)
{
    for (auto &v : data_)
        v = static_cast<float>(rng.uniform(lo, hi));
}

void
Matrix::fillKaiming(Rng &rng, size_t fan_in)
{
    panicIf(fan_in == 0, "fillKaiming with fan_in == 0");
    const float bound = std::sqrt(1.0f / static_cast<float>(fan_in));
    fillUniform(rng, -bound, bound);
}

float
Matrix::maxAbsDiff(const Matrix &a, const Matrix &b)
{
    panicIf(a.rows() != b.rows() || a.cols() != b.cols(),
            "maxAbsDiff on mismatched shapes");
    float worst = 0.0f;
    for (size_t i = 0; i < a.size(); ++i)
        worst = std::max(worst, std::fabs(a.data()[i] - b.data()[i]));
    return worst;
}

bool
Matrix::identical(const Matrix &a, const Matrix &b)
{
    if (a.rows() != b.rows() || a.cols() != b.cols())
        return false;
    return std::equal(a.data(), a.data() + a.size(), b.data());
}

} // namespace sp::tensor
