#include "tensor/ops.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace sp::tensor
{

namespace
{

void
checkSameShape(const Matrix &a, const Matrix &b, const char *what)
{
    panicIf(a.rows() != b.rows() || a.cols() != b.cols(),
            what, ": shape mismatch ", a.rows(), "x", a.cols(), " vs ",
            b.rows(), "x", b.cols());
}

} // namespace

void
reluForward(const Matrix &in, Matrix &out)
{
    checkSameShape(in, out, "reluForward");
    for (size_t i = 0; i < in.size(); ++i)
        out.data()[i] = std::max(0.0f, in.data()[i]);
}

void
reluBackward(const Matrix &in, const Matrix &dout, Matrix &din)
{
    checkSameShape(in, dout, "reluBackward");
    checkSameShape(in, din, "reluBackward");
    for (size_t i = 0; i < in.size(); ++i)
        din.data()[i] = in.data()[i] > 0.0f ? dout.data()[i] : 0.0f;
}

void
sigmoidForward(const Matrix &in, Matrix &out)
{
    checkSameShape(in, out, "sigmoidForward");
    for (size_t i = 0; i < in.size(); ++i) {
        const float x = in.data()[i];
        // Evaluate in the numerically safe branch for each sign.
        if (x >= 0.0f) {
            const float z = std::exp(-x);
            out.data()[i] = 1.0f / (1.0f + z);
        } else {
            const float z = std::exp(x);
            out.data()[i] = z / (1.0f + z);
        }
    }
}

void
sigmoidBackward(const Matrix &out, const Matrix &dout, Matrix &din)
{
    checkSameShape(out, dout, "sigmoidBackward");
    checkSameShape(out, din, "sigmoidBackward");
    for (size_t i = 0; i < out.size(); ++i) {
        const float y = out.data()[i];
        din.data()[i] = dout.data()[i] * y * (1.0f - y);
    }
}

double
bceLoss(const Matrix &prob, const Matrix &label)
{
    checkSameShape(prob, label, "bceLoss");
    panicIf(prob.cols() != 1, "bceLoss expects Bx1 matrices");
    constexpr double eps = 1e-12;
    double total = 0.0;
    for (size_t i = 0; i < prob.rows(); ++i) {
        const double p =
            std::clamp(static_cast<double>(prob(i, 0)), eps, 1.0 - eps);
        const double y = label(i, 0);
        total += -(y * std::log(p) + (1.0 - y) * std::log(1.0 - p));
    }
    return total / static_cast<double>(prob.rows());
}

void
bceSigmoidBackward(const Matrix &prob, const Matrix &label, Matrix &dlogit)
{
    checkSameShape(prob, label, "bceSigmoidBackward");
    checkSameShape(prob, dlogit, "bceSigmoidBackward");
    const float inv_batch = 1.0f / static_cast<float>(prob.rows());
    for (size_t i = 0; i < prob.size(); ++i)
        dlogit.data()[i] = (prob.data()[i] - label.data()[i]) * inv_batch;
}

void
axpy(float alpha, const Matrix &x, Matrix &y)
{
    checkSameShape(x, y, "axpy");
    for (size_t i = 0; i < x.size(); ++i)
        y.data()[i] += alpha * x.data()[i];
}

double
sumAll(const Matrix &m)
{
    double total = 0.0;
    for (size_t i = 0; i < m.size(); ++i)
        total += m.data()[i];
    return total;
}

double
binaryAccuracy(const Matrix &prob, const Matrix &label)
{
    checkSameShape(prob, label, "binaryAccuracy");
    if (prob.rows() == 0)
        return 0.0;
    size_t correct = 0;
    for (size_t i = 0; i < prob.rows(); ++i) {
        const bool predicted = prob(i, 0) >= 0.5f;
        const bool truth = label(i, 0) >= 0.5f;
        if (predicted == truth)
            ++correct;
    }
    return static_cast<double>(correct) / static_cast<double>(prob.rows());
}

} // namespace sp::tensor
