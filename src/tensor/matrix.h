/**
 * @file
 * Dense row-major float matrix.
 *
 * This is the storage type used by the NN layers and the embedding
 * kernels. It is deliberately simple: contiguous row-major float32,
 * value semantics, bounds-checked accessors in debug paths. A
 * zero-copy row view (RowView) covers the common "operate on one
 * sample" pattern.
 */

#ifndef SP_TENSOR_MATRIX_H
#define SP_TENSOR_MATRIX_H

#include <cstddef>
#include <vector>

namespace sp::tensor
{

class Rng;

/** Contiguous row-major float32 matrix with value semantics. */
class Matrix
{
  public:
    Matrix() = default;

    /** rows x cols matrix, zero-initialised. */
    Matrix(size_t rows, size_t cols);

    size_t rows() const { return rows_; }
    size_t cols() const { return cols_; }
    size_t size() const { return data_.size(); }
    bool empty() const { return data_.empty(); }

    float *data() { return data_.data(); }
    const float *data() const { return data_.data(); }

    float *row(size_t r) { return data_.data() + r * cols_; }
    const float *row(size_t r) const { return data_.data() + r * cols_; }

    float &at(size_t r, size_t c);
    float at(size_t r, size_t c) const;

    float &operator()(size_t r, size_t c) { return data_[r * cols_ + c]; }
    float operator()(size_t r, size_t c) const { return data_[r * cols_ + c]; }

    /** Reshape without reallocating; total element count must match. */
    void reshape(size_t rows, size_t cols);

    /** Resize, discarding contents (zero-filled). */
    void resize(size_t rows, size_t cols);

    /** Set every element to value. */
    void fill(float value);

    /** Set every element to zero. */
    void setZero() { fill(0.0f); }

    /** Fill with N(0, stddev) values drawn from rng. */
    void fillNormal(Rng &rng, float stddev);

    /** Fill with U[lo, hi) values drawn from rng. */
    void fillUniform(Rng &rng, float lo, float hi);

    /** Kaiming-uniform init used by the Linear layers (fan_in based). */
    void fillKaiming(Rng &rng, size_t fan_in);

    /** Max |a-b| over all elements; matrices must be the same shape. */
    static float maxAbsDiff(const Matrix &a, const Matrix &b);

    /** Exact element-wise equality (bit-identical floats). */
    static bool identical(const Matrix &a, const Matrix &b);

  private:
    size_t rows_ = 0;
    size_t cols_ = 0;
    std::vector<float> data_;
};

} // namespace sp::tensor

#endif // SP_TENSOR_MATRIX_H
