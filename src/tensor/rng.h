/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * The whole library routes randomness through this one generator
 * (xoshiro256** seeded via splitmix64) so that every experiment is
 * reproducible from a single 64-bit seed and independent of the C++
 * standard library's unspecified distribution implementations.
 */

#ifndef SP_TENSOR_RNG_H
#define SP_TENSOR_RNG_H

#include <cstdint>

namespace sp::tensor
{

/**
 * xoshiro256** 1.0 generator with splitmix64 seeding.
 *
 * Small, fast, and with well-understood statistical quality; the same
 * stream is produced on every platform for a given seed.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded via splitmix64). */
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Next raw 64-bit value. */
    uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, n) without modulo bias (n > 0). */
    uint64_t uniformInt(uint64_t n);

    /** Standard normal via Box-Muller (cached pair). */
    double normal();

    /** Normal with given mean and standard deviation. */
    double normal(double mean, double stddev);

    /** Bernoulli draw with probability p of true. */
    bool bernoulli(double p);

    /** Derive an independent child generator (for per-table streams). */
    Rng split();

  private:
    uint64_t s_[4];
    double cached_normal_ = 0.0;
    bool has_cached_normal_ = false;
};

} // namespace sp::tensor

#endif // SP_TENSOR_RNG_H
