/**
 * @file
 * The Storage array of the GPU embedding cache.
 *
 * Fixed-capacity dense float storage indexed by slot, standing in for
 * the GPU-DRAM data array of the paper's scratchpad (Section IV-D).
 * Like embedding tables it supports a phantom backing for timing-only
 * runs where only geometry matters.
 */

#ifndef SP_CACHE_SLOT_ARRAY_H
#define SP_CACHE_SLOT_ARRAY_H

#include <cstdint>
#include <cstddef>
#include <vector>

namespace sp::cache
{

/** Dense slot-indexed embedding storage. */
class SlotArray
{
  public:
    enum class Backing
    {
        Dense,
        Phantom,
    };

    SlotArray(uint32_t num_slots, size_t dim,
              Backing backing = Backing::Dense);

    uint32_t numSlots() const { return num_slots_; }
    size_t dim() const { return dim_; }
    size_t rowBytes() const { return dim_ * sizeof(float); }
    bool isDense() const { return backing_ == Backing::Dense; }

    /** Bytes of embedding storage this array provisions (§VI-D). */
    uint64_t storageBytes() const
    {
        return static_cast<uint64_t>(num_slots_) * rowBytes();
    }

    float *slot(uint32_t index);
    const float *slot(uint32_t index) const;

  private:
    uint32_t num_slots_;
    size_t dim_;
    Backing backing_;
    std::vector<float> data_;
};

} // namespace sp::cache

#endif // SP_CACHE_SLOT_ARRAY_H
