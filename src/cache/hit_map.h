/**
 * @file
 * The (key, value) store of the GPU embedding cache.
 *
 * The paper's Hit-Map maps a sparse feature ID (key) to the index of
 * the cached embedding inside the Storage array (value); querying it
 * classifies each lookup as hit or miss (Section IV-D). This is the
 * hot structure of the whole runtime -- it sees every sparse ID of
 * every mini-batch -- so it is a purpose-built open-addressing table:
 * linear probing, power-of-two capacity, tombstone-free deletion via
 * backward-shift, zero allocation per op. Keys are the full 64-bit
 * row IDs (tables above 2^32 rows must not alias); values are 32-bit
 * Storage slots. The two live in parallel arrays so the probe hot
 * stream (keys) stays dense and the slot array is only touched on a
 * hit.
 *
 * Batched probes run through the probe-kernel family
 * (cache/probe_kernel.h): scalar software-pipelined reference, AVX2
 * gather, or NEON, selected at runtime (SP_SIMD / setProbeMode) and
 * all bit-identical by the equivalence harness.
 */

#ifndef SP_CACHE_HIT_MAP_H
#define SP_CACHE_HIT_MAP_H

#include <cstdint>
#include <cstddef>
#include <functional>
#include <span>
#include <vector>

#include "cache/probe_kernel.h"

namespace sp::cache
{

/** Open-addressing hash map: sparse ID -> Storage slot. */
class HitMap
{
  public:
    /** Sentinel returned by find() on miss. */
    static constexpr uint32_t kNotFound = 0xffffffffu;

    /** @param expected_entries sizing hint (grows as needed). */
    explicit HitMap(size_t expected_entries = 64);

    /** Number of live entries. */
    size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    /** Slot for `key`, or kNotFound. */
    uint32_t find(uint64_t key) const;

    /**
     * Batched probe: out[i] = find(keys[i]), executed by the selected
     * probe kernel -- the software-pipelined scalar reference or a
     * SIMD kernel gathering 8 start buckets per step (bit-identical
     * either way). Keys are validated against the reserved sentinel
     * in one pre-pass, off the probe hot loop. `out` must hold
     * keys.size() entries.
     */
    void findMany(std::span<const uint64_t> keys,
                  std::span<uint32_t> out) const;

    /** True if `key` is present. */
    bool contains(uint64_t key) const { return find(key) != kNotFound; }

    /**
     * Insert key -> slot. The key must not already be present
     * (the cache controller never double-inserts); panics otherwise.
     */
    void insert(uint64_t key, uint32_t slot);

    /** Remove `key`; panics if absent (controller invariant). */
    void erase(uint64_t key);

    /** Remove all entries. */
    void clear();

    /** Visit every (key, slot) pair (unspecified order). */
    void forEach(const std::function<void(uint64_t, uint32_t)> &fn) const;

    /** Current bucket count (power of two). */
    size_t capacity() const { return keys_.size(); }

    /** Approximate heap bytes used (overhead accounting, §VI-D). */
    size_t memoryBytes() const;

    /**
     * Raw view of the open-addressing array for the probe kernels
     * (and the fuzz harness's chain-invariant checks). Invalidated by
     * any mutation.
     */
    ProbeTable probeTable() const
    {
        return {keys_.data(), slots_.data(), mask_};
    }

    /**
     * Pin this map's batched-probe kernel (spec key probe=). Auto
     * (the default) follows the process-wide SP_SIMD preference; the
     * choice is a pure perf knob -- every kernel is bit-identical.
     */
    void setProbeMode(ProbeMode mode) { kernel_ = &selectProbeKernel(mode); }

    /** Name of the kernel findMany currently dispatches to. */
    const char *probeKernelName() const { return kernel_->name; }

  private:
    // All-ones is the one 64-bit value no table geometry can produce
    // as a row ID (it would need 2^64 rows), so it marks empty
    // buckets; every 2^32-boundary ID, including 0xffffffff, is legal.
    static constexpr uint64_t kEmptyKey = kProbeEmptyKey;

    size_t bucketFor(uint64_t key) const;
    uint32_t probeFrom(size_t bucket, uint64_t key) const;
    void grow();
#ifdef SP_CHECK_INVARIANTS
    void checkClusterAfterErase(uint64_t erased_key, size_t start) const;
#endif

    // Parallel arrays: keys_ is the probe hot stream (8 buckets per
    // 64-byte line), slots_ is read only on a hit.
    std::vector<uint64_t> keys_;
    std::vector<uint32_t> slots_;
    size_t size_ = 0;
    size_t mask_ = 0;
    const ProbeKernel *kernel_ = &selectProbeKernel(ProbeMode::Auto);
};

} // namespace sp::cache

#endif // SP_CACHE_HIT_MAP_H
