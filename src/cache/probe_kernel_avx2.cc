/**
 * @file
 * AVX2 batched-probe kernel. Compiled with a per-file -mavx2 on
 * x86-64 (see CMakeLists.txt) so the rest of the binary never emits
 * AVX2 instructions; runtime dispatch guards execution behind
 * cpuSupportsAvx2(). On other architectures this TU compiles to the
 * nullptr stub.
 */

#include "cache/probe_kernel.h"

#include "common/cpu_features.h"

#if defined(__x86_64__) && defined(__AVX2__)

#include <immintrin.h>

#include <algorithm>

namespace sp::cache
{

namespace
{

/**
 * Eight keys per step: vectorized Murmur3 finalizers give the start
 * buckets, one vpgatherqq pair pulls the 8 bucket words (8 parallel
 * cache-line touches -- the memory-level parallelism the scalar
 * kernel needs a prefetch ring to approximate), and vectorized
 * key/empty compares settle the common single-probe lanes. Lanes
 * whose first bucket neither hits nor proves a miss (a collision
 * chain) fall back to the shared scalar continuation -- rare below
 * the 0.7 load-factor ceiling. The next block's buckets are hashed
 * and prefetched while the current gather's lines are still in
 * flight.
 */
void
probeAvx2(const ProbeTable &table, const uint32_t *keys, uint32_t *out,
          size_t n)
{
    // splint:hot-path-begin(probe-kernel-avx2)
    // The vector path masks hashes in 32-bit lanes; a table wider
    // than 2^32 buckets (never provisioned in practice) stays on the
    // scalar chain.
    if (table.mask > 0xffffffffull) {
        for (size_t i = 0; i < n; ++i)
            out[i] = probeChainFrom(table, probeBucketFor(table, keys[i]),
                                    keys[i]);
        return;
    }

    const __m256i vmask =
        _mm256_set1_epi32(static_cast<int>(table.mask));
    const __m256i c1 = _mm256_set1_epi32(static_cast<int>(0x85ebca6bu));
    const __m256i c2 = _mm256_set1_epi32(static_cast<int>(0xc2b2ae35u));
    const __m256i vempty_entry =
        _mm256_set1_epi64x(static_cast<long long>(kProbeEmptyEntry));
    const __m256i vnot_found =
        _mm256_set1_epi32(static_cast<int>(kProbeEmptyKey));
    // Even dwords of four 64-bit lanes, for the 64->32 packs below.
    const __m256i pack_even = _mm256_setr_epi32(0, 2, 4, 6, 0, 0, 0, 0);

    const auto hash_buckets = [&](const uint32_t *p) {
        __m256i h =
            _mm256_loadu_si256(reinterpret_cast<const __m256i *>(p));
        h = _mm256_xor_si256(h, _mm256_srli_epi32(h, 16));
        h = _mm256_mullo_epi32(h, c1);
        h = _mm256_xor_si256(h, _mm256_srli_epi32(h, 13));
        h = _mm256_mullo_epi32(h, c2);
        h = _mm256_xor_si256(h, _mm256_srli_epi32(h, 16));
        return _mm256_and_si256(h, vmask);
    };
    // Low dword of each 64-bit lane across two gathers -> 8 dwords.
    const auto pack64to32 = [&](__m256i lo, __m256i hi) {
        const __m128i a = _mm256_castsi256_si128(
            _mm256_permutevar8x32_epi32(lo, pack_even));
        const __m128i b = _mm256_castsi256_si128(
            _mm256_permutevar8x32_epi32(hi, pack_even));
        return _mm256_set_m128i(b, a);
    };

    alignas(32) uint32_t bucket_buf_a[8], bucket_buf_b[8];
    uint32_t *cur_buckets = bucket_buf_a;
    uint32_t *next_buckets = bucket_buf_b;

    const size_t blocks = n / 8;
    if (blocks > 0)
        _mm256_store_si256(reinterpret_cast<__m256i *>(cur_buckets),
                           hash_buckets(keys));
    for (size_t block = 0; block < blocks; ++block) {
        const size_t base = block * 8;
        if (block + 1 < blocks) {
            _mm256_store_si256(
                reinterpret_cast<__m256i *>(next_buckets),
                hash_buckets(keys + base + 8));
            for (int lane = 0; lane < 8; ++lane)
                __builtin_prefetch(table.entries + next_buckets[lane]);
        }

        const __m256i b32 = _mm256_load_si256(
            reinterpret_cast<const __m256i *>(cur_buckets));
        const __m256i idx_lo =
            _mm256_cvtepu32_epi64(_mm256_castsi256_si128(b32));
        const __m256i idx_hi =
            _mm256_cvtepu32_epi64(_mm256_extracti128_si256(b32, 1));
        const auto *base_ptr =
            reinterpret_cast<const long long *>(table.entries);
        const __m256i ent_lo =
            _mm256_i64gather_epi64(base_ptr, idx_lo, 8);
        const __m256i ent_hi =
            _mm256_i64gather_epi64(base_ptr, idx_hi, 8);

        const __m256i k = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(keys + base));
        const __m256i k_lo =
            _mm256_cvtepu32_epi64(_mm256_castsi256_si128(k));
        const __m256i k_hi =
            _mm256_cvtepu32_epi64(_mm256_extracti128_si256(k, 1));

        // Hit: the entry's high word equals the key. Keys never equal
        // the empty sentinel (validated upstream), so hit and empty
        // are mutually exclusive.
        const __m256i hit_lo = _mm256_cmpeq_epi64(
            _mm256_srli_epi64(ent_lo, 32), k_lo);
        const __m256i hit_hi = _mm256_cmpeq_epi64(
            _mm256_srli_epi64(ent_hi, 32), k_hi);
        const __m256i empty_lo =
            _mm256_cmpeq_epi64(ent_lo, vempty_entry);
        const __m256i empty_hi =
            _mm256_cmpeq_epi64(ent_hi, vempty_entry);

        const __m256i values = pack64to32(ent_lo, ent_hi);
        const __m256i hit_mask = pack64to32(hit_lo, hit_hi);
        const __m256i empty_mask = pack64to32(empty_lo, empty_hi);

        // Hit lanes take the entry's slot word, settled lanes that
        // reached an empty bucket take kNotFound; both are final.
        const __m256i result =
            _mm256_blendv_epi8(vnot_found, values, hit_mask);
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(out + base),
                            result);

        const unsigned settled = static_cast<unsigned>(
            _mm256_movemask_ps(_mm256_castsi256_ps(
                _mm256_or_si256(hit_mask, empty_mask))));
        unsigned pending = ~settled & 0xffu;
        while (pending != 0) {
            const int lane = __builtin_ctz(pending);
            pending &= pending - 1;
            out[base + lane] = probeChainFrom(
                table, (cur_buckets[lane] + 1) & table.mask,
                keys[base + lane]);
        }
        std::swap(cur_buckets, next_buckets);
    }

    for (size_t i = blocks * 8; i < n; ++i)
        out[i] = probeChainFrom(table, probeBucketFor(table, keys[i]),
                                keys[i]);
    // splint:hot-path-end
}

constexpr ProbeKernel kAvx2Kernel = {"avx2", probeAvx2,
                                     common::cpuSupportsAvx2};

} // namespace

const ProbeKernel *
avx2ProbeKernel()
{
    return &kAvx2Kernel;
}

} // namespace sp::cache

#else // !(__x86_64__ && __AVX2__)

namespace sp::cache
{

const ProbeKernel *
avx2ProbeKernel()
{
    return nullptr;
}

} // namespace sp::cache

#endif
