/**
 * @file
 * AVX2 batched-probe kernel. Compiled with a per-file -mavx2 on
 * x86-64 (see CMakeLists.txt) so the rest of the binary never emits
 * AVX2 instructions; runtime dispatch guards execution behind
 * cpuSupportsAvx2(). On other architectures this TU compiles to the
 * nullptr stub.
 */

#include "cache/probe_kernel.h"

#include "common/cpu_features.h"

#if defined(__x86_64__) && defined(__AVX2__)

#include <immintrin.h>

#include <algorithm>

namespace sp::cache
{

namespace
{

/**
 * Eight keys per step: scalar mix64 finalizers give the start buckets
 * (AVX2 has no usable 64x64 lane multiply, so hashing the 64-bit keys
 * stays scalar), one vpgatherqq pair pulls the 8 bucket keys and one
 * vpgatherdd their slots (parallel cache-line touches -- the
 * memory-level parallelism the scalar kernel needs a prefetch ring to
 * approximate), and vectorized key/empty compares settle the common
 * single-probe lanes. Lanes whose first bucket neither hits nor
 * proves a miss (a collision chain) fall back to the shared scalar
 * continuation -- rare below the 0.7 load-factor ceiling. The next
 * block's buckets are hashed and prefetched while the current
 * gather's lines are still in flight.
 */
void
probeAvx2(const ProbeTable &table, const uint64_t *keys, uint32_t *out,
          size_t n)
{
    // splint:hot-path-begin(probe-kernel-avx2)
    // The vector path carries bucket indices in 32-bit gather lanes;
    // a table wider than 2^32 buckets (never provisioned in practice)
    // stays on the scalar chain.
    if (table.mask > 0xffffffffull) {
        for (size_t i = 0; i < n; ++i)
            out[i] = probeChainFrom(table, probeBucketFor(table, keys[i]),
                                    keys[i]);
        return;
    }

    const __m256i vempty_key = _mm256_set1_epi64x(
        static_cast<long long>(kProbeEmptyKey));
    const __m256i vnot_found =
        _mm256_set1_epi32(static_cast<int>(kProbeNotFound));
    // Even dwords of four 64-bit lanes, for the 64->32 packs below.
    const __m256i pack_even = _mm256_setr_epi32(0, 2, 4, 6, 0, 0, 0, 0);

    const auto hash_buckets = [&](const uint64_t *p, uint32_t *buckets) {
        for (int lane = 0; lane < 8; ++lane)
            buckets[lane] = static_cast<uint32_t>(
                probeHashKey(p[lane]) & table.mask);
    };
    // Low dword of each 64-bit lane across two compares -> 8 dwords.
    const auto pack64to32 = [&](__m256i lo, __m256i hi) {
        const __m128i a = _mm256_castsi256_si128(
            _mm256_permutevar8x32_epi32(lo, pack_even));
        const __m128i b = _mm256_castsi256_si128(
            _mm256_permutevar8x32_epi32(hi, pack_even));
        return _mm256_set_m128i(b, a);
    };

    alignas(32) uint32_t bucket_buf_a[8], bucket_buf_b[8];
    uint32_t *cur_buckets = bucket_buf_a;
    uint32_t *next_buckets = bucket_buf_b;

    const size_t blocks = n / 8;
    if (blocks > 0)
        hash_buckets(keys, cur_buckets);
    for (size_t block = 0; block < blocks; ++block) {
        const size_t base = block * 8;
        if (block + 1 < blocks) {
            hash_buckets(keys + base + 8, next_buckets);
            for (int lane = 0; lane < 8; ++lane)
                __builtin_prefetch(table.keys + next_buckets[lane]);
        }

        const __m256i b32 = _mm256_load_si256(
            reinterpret_cast<const __m256i *>(cur_buckets));
        const __m256i idx_lo =
            _mm256_cvtepu32_epi64(_mm256_castsi256_si128(b32));
        const __m256i idx_hi =
            _mm256_cvtepu32_epi64(_mm256_extracti128_si256(b32, 1));
        const auto *keys_ptr =
            reinterpret_cast<const long long *>(table.keys);
        const __m256i bk_lo =
            _mm256_i64gather_epi64(keys_ptr, idx_lo, 8);
        const __m256i bk_hi =
            _mm256_i64gather_epi64(keys_ptr, idx_hi, 8);
        // Slots of the 8 start buckets in one dword gather; miss
        // lanes read a garbage-but-in-bounds slot the blend discards.
        const __m256i vslots = _mm256_i32gather_epi32(
            reinterpret_cast<const int *>(table.slots), b32, 4);

        const __m256i k_lo = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(keys + base));
        const __m256i k_hi = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(keys + base + 4));

        // Hit: the bucket's key equals the probe key. Keys never
        // equal the empty sentinel (validated upstream), so hit and
        // empty are mutually exclusive.
        const __m256i hit_lo = _mm256_cmpeq_epi64(bk_lo, k_lo);
        const __m256i hit_hi = _mm256_cmpeq_epi64(bk_hi, k_hi);
        const __m256i empty_lo = _mm256_cmpeq_epi64(bk_lo, vempty_key);
        const __m256i empty_hi = _mm256_cmpeq_epi64(bk_hi, vempty_key);

        const __m256i hit_mask = pack64to32(hit_lo, hit_hi);
        const __m256i empty_mask = pack64to32(empty_lo, empty_hi);

        // Hit lanes take the gathered slot, settled lanes that
        // reached an empty bucket take kNotFound; both are final.
        const __m256i result =
            _mm256_blendv_epi8(vnot_found, vslots, hit_mask);
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(out + base),
                            result);

        const unsigned settled = static_cast<unsigned>(
            _mm256_movemask_ps(_mm256_castsi256_ps(
                _mm256_or_si256(hit_mask, empty_mask))));
        unsigned pending = ~settled & 0xffu;
        while (pending != 0) {
            const int lane = __builtin_ctz(pending);
            pending &= pending - 1;
            out[base + lane] = probeChainFrom(
                table, (cur_buckets[lane] + 1) & table.mask,
                keys[base + lane]);
        }
        std::swap(cur_buckets, next_buckets);
    }

    for (size_t i = blocks * 8; i < n; ++i)
        out[i] = probeChainFrom(table, probeBucketFor(table, keys[i]),
                                keys[i]);
    // splint:hot-path-end
}

constexpr ProbeKernel kAvx2Kernel = {"avx2", probeAvx2,
                                     common::cpuSupportsAvx2};

} // namespace

const ProbeKernel *
avx2ProbeKernel()
{
    return &kAvx2Kernel;
}

} // namespace sp::cache

#else // !(__x86_64__ && __AVX2__)

namespace sp::cache
{

const ProbeKernel *
avx2ProbeKernel()
{
    return nullptr;
}

} // namespace sp::cache

#endif
