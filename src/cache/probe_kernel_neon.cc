/**
 * @file
 * NEON batched-probe kernel (aarch64 only; Advanced SIMD is baseline
 * there, so no per-file flags are needed). NEON has no gather, so the
 * win is vectorized hashing plus an explicit prefetch pipeline: the
 * Murmur3 finalizers of 4 keys run in one uint32x4 register and the
 * start buckets are prefetched two blocks ahead, while the probes
 * themselves walk the shared scalar continuation. On other
 * architectures this TU compiles to the nullptr stub.
 */

#include "cache/probe_kernel.h"

#include "common/cpu_features.h"

#if defined(__aarch64__)

#include <arm_neon.h>

namespace sp::cache
{

namespace
{

void
probeNeon(const ProbeTable &table, const uint32_t *keys, uint32_t *out,
          size_t n)
{
    // splint:hot-path-begin(probe-kernel-neon)
    // The vector path masks hashes in 32-bit lanes; a table wider
    // than 2^32 buckets stays on the scalar chain.
    if (table.mask > 0xffffffffull) {
        for (size_t i = 0; i < n; ++i)
            out[i] = probeChainFrom(table, probeBucketFor(table, keys[i]),
                                    keys[i]);
        return;
    }

    const uint32x4_t vmask =
        vdupq_n_u32(static_cast<uint32_t>(table.mask));
    const auto hash_buckets = [&](const uint32_t *p, uint32_t *buckets) {
        uint32x4_t h = vld1q_u32(p);
        h = veorq_u32(h, vshrq_n_u32(h, 16));
        h = vmulq_u32(h, vdupq_n_u32(0x85ebca6bu));
        h = veorq_u32(h, vshrq_n_u32(h, 13));
        h = vmulq_u32(h, vdupq_n_u32(0xc2b2ae35u));
        h = veorq_u32(h, vshrq_n_u32(h, 16));
        vst1q_u32(buckets, vandq_u32(h, vmask));
    };

    // Ring of hashed buckets two 4-wide blocks deep: hash and
    // prefetch block i+2 while probing block i, so each bucket line
    // has two blocks of probe work to cover its DRAM latency.
    constexpr size_t kBlock = 4;
    constexpr size_t kDepth = 2;
    uint32_t ring[kDepth][kBlock];
    const size_t blocks = n / kBlock;

    const size_t lead = blocks < kDepth ? blocks : kDepth;
    for (size_t b = 0; b < lead; ++b) {
        hash_buckets(keys + b * kBlock, ring[b]);
        for (size_t lane = 0; lane < kBlock; ++lane)
            __builtin_prefetch(table.entries + ring[b][lane]);
    }
    for (size_t block = 0; block < blocks; ++block) {
        const size_t base = block * kBlock;
        uint32_t *buckets = ring[block % kDepth];
        uint32_t current[kBlock];
        for (size_t lane = 0; lane < kBlock; ++lane)
            current[lane] = buckets[lane];
        if (block + kDepth < blocks) {
            hash_buckets(keys + base + kDepth * kBlock, buckets);
            for (size_t lane = 0; lane < kBlock; ++lane)
                __builtin_prefetch(table.entries + buckets[lane]);
        }
        for (size_t lane = 0; lane < kBlock; ++lane)
            out[base + lane] = probeChainFrom(table, current[lane],
                                              keys[base + lane]);
    }

    for (size_t i = blocks * kBlock; i < n; ++i)
        out[i] = probeChainFrom(table, probeBucketFor(table, keys[i]),
                                keys[i]);
    // splint:hot-path-end
}

constexpr ProbeKernel kNeonKernel = {"neon", probeNeon,
                                     common::cpuSupportsNeon};

} // namespace

const ProbeKernel *
neonProbeKernel()
{
    return &kNeonKernel;
}

} // namespace sp::cache

#else // !__aarch64__

namespace sp::cache
{

const ProbeKernel *
neonProbeKernel()
{
    return nullptr;
}

} // namespace sp::cache

#endif
