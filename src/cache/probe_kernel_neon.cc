/**
 * @file
 * NEON-tier batched-probe kernel (aarch64 only; Advanced SIMD is
 * baseline there, so no per-file flags are needed). NEON has no
 * gather and no vector 64-bit multiply for the mix64 key hash, so the
 * win over the plain loop is the explicit prefetch pipeline: the
 * start buckets of a block are hashed and prefetched two 4-wide
 * blocks ahead, while the probes themselves walk the shared scalar
 * continuation. On other architectures this TU compiles to the
 * nullptr stub.
 */

#include "cache/probe_kernel.h"

#include "common/cpu_features.h"

#if defined(__aarch64__)

namespace sp::cache
{

namespace
{

void
probeNeon(const ProbeTable &table, const uint64_t *keys, uint32_t *out,
          size_t n)
{
    // splint:hot-path-begin(probe-kernel-neon)
    // The pipeline carries bucket indices in 32-bit ring slots; a
    // table wider than 2^32 buckets stays on the scalar chain.
    if (table.mask > 0xffffffffull) {
        for (size_t i = 0; i < n; ++i)
            out[i] = probeChainFrom(table, probeBucketFor(table, keys[i]),
                                    keys[i]);
        return;
    }

    const auto hash_buckets = [&](const uint64_t *p, uint32_t *buckets) {
        for (size_t lane = 0; lane < 4; ++lane)
            buckets[lane] = static_cast<uint32_t>(
                probeHashKey(p[lane]) & table.mask);
    };

    // Ring of hashed buckets two 4-wide blocks deep: hash and
    // prefetch block i+2 while probing block i, so each bucket line
    // has two blocks of probe work to cover its DRAM latency.
    constexpr size_t kBlock = 4;
    constexpr size_t kDepth = 2;
    uint32_t ring[kDepth][kBlock];
    const size_t blocks = n / kBlock;

    const size_t lead = blocks < kDepth ? blocks : kDepth;
    for (size_t b = 0; b < lead; ++b) {
        hash_buckets(keys + b * kBlock, ring[b]);
        for (size_t lane = 0; lane < kBlock; ++lane)
            __builtin_prefetch(table.keys + ring[b][lane]);
    }
    for (size_t block = 0; block < blocks; ++block) {
        const size_t base = block * kBlock;
        uint32_t *buckets = ring[block % kDepth];
        uint32_t current[kBlock];
        for (size_t lane = 0; lane < kBlock; ++lane)
            current[lane] = buckets[lane];
        if (block + kDepth < blocks) {
            hash_buckets(keys + base + kDepth * kBlock, buckets);
            for (size_t lane = 0; lane < kBlock; ++lane)
                __builtin_prefetch(table.keys + buckets[lane]);
        }
        for (size_t lane = 0; lane < kBlock; ++lane)
            out[base + lane] = probeChainFrom(table, current[lane],
                                              keys[base + lane]);
    }

    for (size_t i = blocks * kBlock; i < n; ++i)
        out[i] = probeChainFrom(table, probeBucketFor(table, keys[i]),
                                keys[i]);
    // splint:hot-path-end
}

constexpr ProbeKernel kNeonKernel = {"neon", probeNeon,
                                     common::cpuSupportsNeon};

} // namespace

const ProbeKernel *
neonProbeKernel()
{
    return &kNeonKernel;
}

} // namespace sp::cache

#else // !__aarch64__

namespace sp::cache
{

const ProbeKernel *
neonProbeKernel()
{
    return nullptr;
}

} // namespace sp::cache

#endif
