#include "cache/probe_kernel.h"

#include <algorithm>

#include "common/cpu_features.h"
#include "common/logging.h"

namespace sp::cache
{

namespace
{

/**
 * The scalar reference: a two-stage software pipeline over a small
 * ring. Stage 1 hashes key i+D and prefetches its start bucket; stage
 * 2 probes key i from the bucket hashed D iterations ago. Keeping the
 * hashed bucket in the ring avoids recomputing it at probe time, and
 * the prefetch distance gives DRAM time to deliver the line.
 */
void
probeScalar(const ProbeTable &table, const uint64_t *keys, uint32_t *out,
            size_t n)
{
    // splint:hot-path-begin(probe-kernel-scalar)
    constexpr size_t kDistance = 12;
    size_t ring[kDistance];

    const size_t lead = std::min(n, kDistance);
    for (size_t i = 0; i < lead; ++i) {
        const size_t bucket = probeBucketFor(table, keys[i]);
        ring[i % kDistance] = bucket;
        __builtin_prefetch(table.keys + bucket);
    }
    for (size_t i = 0; i < n; ++i) {
        if (i + kDistance < n) {
            const size_t ahead = probeBucketFor(table, keys[i + kDistance]);
            __builtin_prefetch(table.keys + ahead);
            // The probe below frees ring slot i % kDistance; the
            // lookahead bucket lands in it right after.
            const size_t bucket = ring[i % kDistance];
            ring[i % kDistance] = ahead;
            out[i] = probeChainFrom(table, bucket, keys[i]);
        } else {
            out[i] = probeChainFrom(table, ring[i % kDistance], keys[i]);
        }
    }
    // splint:hot-path-end
}

bool
alwaysSupported()
{
    return true;
}

constexpr ProbeKernel kScalarKernel = {"scalar", probeScalar,
                                       alwaysSupported};

} // namespace

const ProbeKernel &
scalarProbeKernel()
{
    return kScalarKernel;
}

std::vector<const ProbeKernel *>
compiledProbeKernels()
{
    std::vector<const ProbeKernel *> kernels = {&kScalarKernel};
    if (const ProbeKernel *avx2 = avx2ProbeKernel())
        kernels.push_back(avx2);
    if (const ProbeKernel *neon = neonProbeKernel())
        kernels.push_back(neon);
    return kernels;
}

const ProbeKernel &
selectProbeKernel(ProbeMode mode)
{
    if (mode == ProbeMode::Auto) {
        mode = common::simdPreference() ==
                       common::SimdPreference::Scalar
                   ? ProbeMode::Scalar
                   : ProbeMode::Native;
    }
    if (mode == ProbeMode::Scalar)
        return kScalarKernel;
    // Native: the widest kernel both compiled into this binary and
    // executable on this CPU. Bit-identical to scalar by the
    // equivalence contract, so falling back is always safe.
    if (const ProbeKernel *avx2 = avx2ProbeKernel();
        avx2 != nullptr && avx2->supported())
        return *avx2;
    if (const ProbeKernel *neon = neonProbeKernel();
        neon != nullptr && neon->supported())
        return *neon;
    return kScalarKernel;
}

ProbeMode
probeModeFromName(const std::string &name)
{
    if (name == "auto")
        return ProbeMode::Auto;
    if (name == "scalar")
        return ProbeMode::Scalar;
    if (name == "native")
        return ProbeMode::Native;
    fatal("unknown probe kernel mode '", name,
          "' (auto, scalar, native)");
}

const char *
probeModeName(ProbeMode mode)
{
    switch (mode) {
    case ProbeMode::Auto:
        return "auto";
    case ProbeMode::Scalar:
        return "scalar";
    case ProbeMode::Native:
        return "native";
    }
    panic("invalid ProbeMode ", static_cast<int>(mode));
}

} // namespace sp::cache
