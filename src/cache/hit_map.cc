#include "cache/hit_map.h"

#include <algorithm>
#include <bit>

#include "common/logging.h"

namespace sp::cache
{

HitMap::HitMap(size_t expected_entries)
{
    size_t buckets = std::bit_ceil(std::max<size_t>(
        16, expected_entries * 2));
    keys_.assign(buckets, kEmptyKey);
    slots_.assign(buckets, 0);
    mask_ = buckets - 1;
}

size_t
HitMap::bucketFor(uint64_t key) const
{
    return probeHashKey(key) & mask_;
}

uint32_t
HitMap::probeFrom(size_t bucket, uint64_t key) const
{
    return probeChainFrom(probeTable(), bucket, key);
}

uint32_t
HitMap::find(uint64_t key) const
{
    panicIf(key == kEmptyKey,
            "HitMap does not support key 2^64-1 (empty sentinel)");
    return probeFrom(bucketFor(key), key);
}

void
HitMap::findMany(std::span<const uint64_t> keys,
                 std::span<uint32_t> out) const
{
    panicIf(out.size() != keys.size(),
            "findMany output size ", out.size(), " != key count ",
            keys.size());
    // Single validation pre-pass shared by every kernel: the reserved
    // sentinel is rejected up front instead of per key inside the
    // probe hot loop (a trivially vectorized scan over the key
    // stream, vs a branch per probe).
    panicIf(std::ranges::find(keys, kEmptyKey) != keys.end(),
            "HitMap does not support key 2^64-1 (empty sentinel)");
    kernel_->fn(probeTable(), keys.data(), out.data(), keys.size());
}

void
HitMap::insert(uint64_t key, uint32_t slot)
{
    panicIf(key == kEmptyKey,
            "HitMap does not support key 2^64-1 (empty sentinel)");
    if ((size_ + 1) * 10 >= keys_.size() * 7)
        grow();
    size_t bucket = bucketFor(key);
    while (keys_[bucket] != kEmptyKey) {
        panicIf(keys_[bucket] == key,
                "HitMap::insert of already-present key ", key);
        bucket = (bucket + 1) & mask_;
    }
    keys_[bucket] = key;
    slots_[bucket] = slot;
    ++size_;
}

void
HitMap::erase(uint64_t key)
{
    panicIf(key == kEmptyKey,
            "HitMap does not support key 2^64-1 (empty sentinel)");
    size_t bucket = bucketFor(key);
    while (keys_[bucket] != key) {
        panicIf(keys_[bucket] == kEmptyKey,
                "HitMap::erase of absent key ", key);
        bucket = (bucket + 1) & mask_;
    }

    // Backward-shift deletion: close the probe chain without
    // tombstones so load factor never degrades.
    const size_t start = bucket;
    size_t hole = bucket;
    size_t probe = (hole + 1) & mask_;
    while (keys_[probe] != kEmptyKey) {
        const size_t home = bucketFor(keys_[probe]);
        // The entry at `probe` can fill the hole if its home bucket
        // does not lie (cyclically) between hole (exclusive) and
        // probe (inclusive).
        const bool can_move =
            ((probe - home) & mask_) >= ((probe - hole) & mask_);
        if (can_move) {
            keys_[hole] = keys_[probe];
            slots_[hole] = slots_[probe];
            hole = probe;
        }
        probe = (probe + 1) & mask_;
    }
    keys_[hole] = kEmptyKey;
    --size_;
#ifdef SP_CHECK_INVARIANTS
    checkClusterAfterErase(key, start);
#else
    (void)start;
#endif
}

#ifdef SP_CHECK_INVARIANTS
/**
 * Checked-invariant build only: the backward shift rearranged exactly
 * the buckets from the erased key's position to the new hole, so walk
 * that region and re-probe every entry from its home bucket. Any
 * entry the shift stranded behind an empty bucket (the classic
 * backward-shift bug) fails its re-probe here, at the erase that
 * broke it, instead of as a phantom miss many batches later.
 */
void
HitMap::checkClusterAfterErase(uint64_t erased_key, size_t start) const
{
    SP_ASSERT(probeFrom(bucketFor(erased_key), erased_key) == kNotFound,
              "erased key ", erased_key, " is still reachable");
    size_t probe = start;
    while (keys_[probe] != kEmptyKey) {
        const uint64_t key = keys_[probe];
        const uint32_t slot = slots_[probe];
        SP_ASSERT(probeFrom(bucketFor(key), key) == slot,
                  "backward-shift broke the probe chain: key ", key,
                  " in bucket ", probe, " no longer reachable from its "
                  "home bucket ", bucketFor(key));
        probe = (probe + 1) & mask_;
    }
}
#endif

void
HitMap::clear()
{
    std::fill(keys_.begin(), keys_.end(), kEmptyKey);
    size_ = 0;
}

void
HitMap::forEach(const std::function<void(uint64_t, uint32_t)> &fn) const
{
    for (size_t bucket = 0; bucket < keys_.size(); ++bucket) {
        if (keys_[bucket] != kEmptyKey)
            fn(keys_[bucket], slots_[bucket]);
    }
}

size_t
HitMap::memoryBytes() const
{
    return keys_.capacity() * sizeof(uint64_t) +
           slots_.capacity() * sizeof(uint32_t);
}

void
HitMap::grow()
{
    std::vector<uint64_t> old_keys = std::move(keys_);
    std::vector<uint32_t> old_slots = std::move(slots_);
    keys_.assign(old_keys.size() * 2, kEmptyKey);
    slots_.assign(old_slots.size() * 2, 0);
    mask_ = keys_.size() - 1;
    size_ = 0;
    for (size_t bucket = 0; bucket < old_keys.size(); ++bucket) {
        if (old_keys[bucket] != kEmptyKey)
            insert(old_keys[bucket], old_slots[bucket]);
    }
}

} // namespace sp::cache
