#include "cache/hit_map.h"

#include <algorithm>
#include <bit>

#include "common/logging.h"

namespace sp::cache
{

HitMap::HitMap(size_t expected_entries)
{
    size_t buckets = std::bit_ceil(std::max<size_t>(
        16, expected_entries * 2));
    entries_.assign(buckets, kEmptyEntry);
    mask_ = buckets - 1;
}

size_t
HitMap::bucketFor(uint32_t key) const
{
    return probeHashKey(key) & mask_;
}

uint32_t
HitMap::probeFrom(size_t bucket, uint32_t key) const
{
    return probeChainFrom(probeTable(), bucket, key);
}

uint32_t
HitMap::find(uint32_t key) const
{
    panicIf(key == kEmptyKey, "HitMap does not support key 0xffffffff");
    return probeFrom(bucketFor(key), key);
}

void
HitMap::findMany(std::span<const uint32_t> keys,
                 std::span<uint32_t> out) const
{
    panicIf(out.size() != keys.size(),
            "findMany output size ", out.size(), " != key count ",
            keys.size());
    // Single validation pre-pass shared by every kernel: the reserved
    // sentinel is rejected up front instead of per key inside the
    // probe hot loop (a trivially vectorized scan over the key
    // stream, vs a branch per probe).
    panicIf(std::ranges::find(keys, kEmptyKey) != keys.end(),
            "HitMap does not support key 0xffffffff");
    kernel_->fn(probeTable(), keys.data(), out.data(), keys.size());
}

void
HitMap::insert(uint32_t key, uint32_t slot)
{
    panicIf(key == kEmptyKey, "HitMap does not support key 0xffffffff");
    if ((size_ + 1) * 10 >= entries_.size() * 7)
        grow();
    size_t bucket = bucketFor(key);
    while (entries_[bucket] != kEmptyEntry) {
        panicIf(static_cast<uint32_t>(entries_[bucket] >> 32) == key,
                "HitMap::insert of already-present key ", key);
        bucket = (bucket + 1) & mask_;
    }
    entries_[bucket] = (static_cast<uint64_t>(key) << 32) | slot;
    ++size_;
}

void
HitMap::erase(uint32_t key)
{
    panicIf(key == kEmptyKey, "HitMap does not support key 0xffffffff");
    size_t bucket = bucketFor(key);
    while (static_cast<uint32_t>(entries_[bucket] >> 32) != key) {
        panicIf(entries_[bucket] == kEmptyEntry,
                "HitMap::erase of absent key ", key);
        bucket = (bucket + 1) & mask_;
    }

    // Backward-shift deletion: close the probe chain without
    // tombstones so load factor never degrades.
    const size_t start = bucket;
    size_t hole = bucket;
    size_t probe = (hole + 1) & mask_;
    while (entries_[probe] != kEmptyEntry) {
        const size_t home =
            bucketFor(static_cast<uint32_t>(entries_[probe] >> 32));
        // The entry at `probe` can fill the hole if its home bucket
        // does not lie (cyclically) between hole (exclusive) and
        // probe (inclusive).
        const bool can_move =
            ((probe - home) & mask_) >= ((probe - hole) & mask_);
        if (can_move) {
            entries_[hole] = entries_[probe];
            hole = probe;
        }
        probe = (probe + 1) & mask_;
    }
    entries_[hole] = kEmptyEntry;
    --size_;
#ifdef SP_CHECK_INVARIANTS
    checkClusterAfterErase(key, start);
#else
    (void)start;
#endif
}

#ifdef SP_CHECK_INVARIANTS
/**
 * Checked-invariant build only: the backward shift rearranged exactly
 * the buckets from the erased key's position to the new hole, so walk
 * that region and re-probe every entry from its home bucket. Any
 * entry the shift stranded behind an empty bucket (the classic
 * backward-shift bug) fails its re-probe here, at the erase that
 * broke it, instead of as a phantom miss many batches later.
 */
void
HitMap::checkClusterAfterErase(uint32_t erased_key, size_t start) const
{
    SP_ASSERT(probeFrom(bucketFor(erased_key), erased_key) == kNotFound,
              "erased key ", erased_key, " is still reachable");
    size_t probe = start;
    while (entries_[probe] != kEmptyEntry) {
        const uint32_t key = static_cast<uint32_t>(entries_[probe] >> 32);
        const uint32_t slot = static_cast<uint32_t>(entries_[probe]);
        SP_ASSERT(probeFrom(bucketFor(key), key) == slot,
                  "backward-shift broke the probe chain: key ", key,
                  " in bucket ", probe, " no longer reachable from its "
                  "home bucket ", bucketFor(key));
        probe = (probe + 1) & mask_;
    }
}
#endif

void
HitMap::clear()
{
    std::fill(entries_.begin(), entries_.end(), kEmptyEntry);
    size_ = 0;
}

void
HitMap::forEach(const std::function<void(uint32_t, uint32_t)> &fn) const
{
    for (const uint64_t entry : entries_) {
        if (entry != kEmptyEntry)
            fn(static_cast<uint32_t>(entry >> 32),
               static_cast<uint32_t>(entry));
    }
}

size_t
HitMap::memoryBytes() const
{
    return entries_.capacity() * sizeof(uint64_t);
}

void
HitMap::grow()
{
    std::vector<uint64_t> old_entries = std::move(entries_);
    entries_.assign(old_entries.size() * 2, kEmptyEntry);
    mask_ = entries_.size() - 1;
    size_ = 0;
    for (const uint64_t entry : old_entries) {
        if (entry != kEmptyEntry)
            insert(static_cast<uint32_t>(entry >> 32),
                   static_cast<uint32_t>(entry));
    }
}

} // namespace sp::cache
