/**
 * @file
 * Static top-N GPU embedding cache (the Yin et al. baseline).
 *
 * The cache is filled once with the N most frequently accessed rows of
 * a table and never evicts (paper Fig. 4(b)). Queries split a batch's
 * sparse IDs into hit IDs (serviced from GPU memory) and missed IDs
 * (serviced from the CPU embedding table); both halves are trained in
 * place, so the cache additionally exposes slot-level access to its
 * dense storage for the functional engine.
 */

#ifndef SP_CACHE_STATIC_CACHE_H
#define SP_CACHE_STATIC_CACHE_H

#include <cstdint>
#include <cstddef>
#include <span>
#include <vector>

#include "cache/hit_map.h"
#include "cache/slot_array.h"
#include "emb/embedding_table.h"

namespace sp::cache
{

/** Hit/miss split of one batch's sparse IDs, preserving trace order. */
struct QuerySplit
{
    /** hit_mask[i] is true iff ids[i] hit the cache. */
    std::vector<bool> hit_mask;
    uint64_t hits = 0;
    uint64_t misses = 0;

    double
    hitRate() const
    {
        const uint64_t total = hits + misses;
        return total == 0 ? 0.0
                          : static_cast<double>(hits) /
                                static_cast<double>(total);
    }
};

/** Never-evicting cache of the top-N hottest rows of one table. */
class StaticCache
{
  public:
    /**
     * @param cached_rows Row IDs to cache (e.g. the first k entries of
     *                    AccessStats::rankedRows); slot i holds
     *                    cached_rows[i].
     * @param dim Embedding dimension.
     * @param backing Dense for functional runs, Phantom for timing.
     */
    StaticCache(std::span<const uint64_t> cached_rows, size_t dim,
                SlotArray::Backing backing = SlotArray::Backing::Dense);

    uint32_t numSlots() const { return storage_.numSlots(); }
    size_t dim() const { return storage_.dim(); }

    /** Classify each ID of a batch as hit or miss. */
    QuerySplit query(std::span<const uint64_t> ids) const;

    /** Slot for `id`, or HitMap::kNotFound. */
    uint32_t slotFor(uint64_t id) const { return map_.find(id); }

    /** Copy the cached rows' current values from a dense table. */
    void fillFrom(const emb::EmbeddingTable &table);

    /** Write every cached row's value back into a dense table. */
    void flushTo(emb::EmbeddingTable &table) const;

    /** Row accessor over cached IDs (panics on non-cached IDs). */
    class Accessor : public emb::RowAccessor
    {
      public:
        explicit Accessor(StaticCache &cache) : cache_(cache) {}
        float *row(uint64_t id) override;
        const float *row(uint64_t id) const override;
        size_t dim() const override { return cache_.dim(); }

      private:
        StaticCache &cache_;
    };

    Accessor accessor() { return Accessor(*this); }

    /** The cached row ID held by a slot. */
    uint64_t rowOfSlot(uint32_t slot) const;

  private:
    std::vector<uint64_t> cached_rows_;
    HitMap map_;
    SlotArray storage_;
};

} // namespace sp::cache

#endif // SP_CACHE_STATIC_CACHE_H
