#include "cache/replacement.h"

#include <algorithm>
#include <limits>

#include "common/logging.h"

namespace sp::cache
{

const char *
policyName(PolicyKind kind)
{
    switch (kind) {
      case PolicyKind::Lru:
        return "LRU";
      case PolicyKind::Lfu:
        return "LFU";
      case PolicyKind::Random:
        return "Random";
      case PolicyKind::Fifo:
        return "FIFO";
    }
    panic("unknown PolicyKind");
}

PolicyKind
policyFromName(const std::string &name)
{
    std::string lower(name);
    std::transform(lower.begin(), lower.end(), lower.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    if (lower == "lru")
        return PolicyKind::Lru;
    if (lower == "lfu")
        return PolicyKind::Lfu;
    if (lower == "random")
        return PolicyKind::Random;
    if (lower == "fifo")
        return PolicyKind::Fifo;
    fatal("unknown replacement policy '", name, "'");
}

namespace
{

/** True LRU via an intrusive doubly-linked list over slot indices. */
class LruPolicy : public ReplacementPolicy
{
  public:
    void
    reset(uint32_t num_slots) override
    {
        num_slots_ = num_slots;
        // Index num_slots_ acts as the list sentinel.
        prev_.assign(num_slots_ + 1, 0);
        next_.assign(num_slots_ + 1, 0);
        // Initially slot 0 is MRU and slot n-1 is LRU; untouched slots
        // are therefore evicted first, in ascending slot order.
        for (uint32_t s = 0; s <= num_slots_; ++s) {
            next_[s] = s + 1 <= num_slots_ ? s + 1 : 0;
            prev_[s] = s > 0 ? s - 1 : num_slots_;
        }
    }

    void
    touch(uint32_t slot) override
    {
        panicIf(slot >= num_slots_, "LRU touch of bad slot ", slot);
        unlink(slot);
        // Insert at MRU position (right after the sentinel).
        const uint32_t sentinel = num_slots_;
        const uint32_t old_head = next_[sentinel];
        next_[sentinel] = slot;
        prev_[slot] = sentinel;
        next_[slot] = old_head;
        prev_[old_head] = slot;
    }

    uint32_t
    chooseVictim(const std::function<bool(uint32_t)> &eligible) override
    {
        const uint32_t sentinel = num_slots_;
        uint32_t victim = kNoVictim;
        // splint:allow(hot-path-transitive-alloc): std::vector::clear, not fault::clear -- severs the false edge
        skipped_.clear();
        for (uint32_t s = prev_[sentinel]; s != sentinel; s = prev_[s]) {
            if (eligible(s)) {
                victim = s;
                break;
            }
            // skipped_ is cleared, never shrunk, so its capacity is
            // retained across calls and bounded by num_slots_.
            // splint:allow(hot-path-transitive-alloc): capacity retained, steady state allocation-free
            skipped_.push_back(s);
        }
        // Ineligible slots at the cold end are held by in-flight
        // mini-batches, i.e. in active use: promote them so the next
        // walk does not wade through the same prefix again (turns the
        // per-batch victim search from O(held) back into O(1)).
        for (uint32_t s : skipped_)
            touch(s);
        return victim;
    }

    PolicyKind kind() const override { return PolicyKind::Lru; }

  private:
    void
    unlink(uint32_t slot)
    {
        next_[prev_[slot]] = next_[slot];
        prev_[next_[slot]] = prev_[slot];
    }

    uint32_t num_slots_ = 0;
    std::vector<uint32_t> prev_;
    std::vector<uint32_t> next_;
    std::vector<uint32_t> skipped_;
};

/**
 * Sampled LFU: pick the minimum-frequency eligible slot among random
 * samples (Redis-style approximation); falls back to a full scan when
 * sampling finds nothing eligible.
 */
class LfuPolicy : public ReplacementPolicy
{
  public:
    explicit LfuPolicy(uint64_t seed) : rng_(seed) {}

    void
    reset(uint32_t num_slots) override
    {
        num_slots_ = num_slots;
        counts_.assign(num_slots_, 0);
    }

    void
    touch(uint32_t slot) override
    {
        panicIf(slot >= num_slots_, "LFU touch of bad slot ", slot);
        ++counts_[slot];
    }

    uint32_t
    chooseVictim(const std::function<bool(uint32_t)> &eligible) override
    {
        constexpr int kSamples = 64;
        constexpr int kRounds = 8;
        for (int round = 0; round < kRounds; ++round) {
            uint32_t best = kNoVictim;
            uint64_t best_count = std::numeric_limits<uint64_t>::max();
            for (int i = 0; i < kSamples; ++i) {
                const uint32_t s =
                    static_cast<uint32_t>(rng_.uniformInt(num_slots_));
                if (counts_[s] < best_count && eligible(s)) {
                    best = s;
                    best_count = counts_[s];
                }
            }
            if (best != kNoVictim)
                return best;
        }
        // Full scan fallback (rare: nearly all slots held).
        uint32_t best = kNoVictim;
        uint64_t best_count = std::numeric_limits<uint64_t>::max();
        for (uint32_t s = 0; s < num_slots_; ++s) {
            if (counts_[s] < best_count && eligible(s)) {
                best = s;
                best_count = counts_[s];
            }
        }
        return best;
    }

    PolicyKind kind() const override { return PolicyKind::Lfu; }

  private:
    uint32_t num_slots_ = 0;
    std::vector<uint64_t> counts_;
    tensor::Rng rng_;
};

/** Uniform-random eviction with a scan fallback. */
class RandomPolicy : public ReplacementPolicy
{
  public:
    explicit RandomPolicy(uint64_t seed) : rng_(seed) {}

    void
    reset(uint32_t num_slots) override
    {
        num_slots_ = num_slots;
    }

    void touch(uint32_t) override {}

    uint32_t
    chooseVictim(const std::function<bool(uint32_t)> &eligible) override
    {
        constexpr int kProbes = 256;
        for (int i = 0; i < kProbes; ++i) {
            const uint32_t s =
                static_cast<uint32_t>(rng_.uniformInt(num_slots_));
            if (eligible(s))
                return s;
        }
        const uint32_t start =
            static_cast<uint32_t>(rng_.uniformInt(num_slots_));
        for (uint32_t i = 0; i < num_slots_; ++i) {
            const uint32_t s = (start + i) % num_slots_;
            if (eligible(s))
                return s;
        }
        return kNoVictim;
    }

    PolicyKind kind() const override { return PolicyKind::Random; }

  private:
    uint32_t num_slots_ = 0;
    tensor::Rng rng_;
};

/** Circular-hand FIFO. */
class FifoPolicy : public ReplacementPolicy
{
  public:
    void
    reset(uint32_t num_slots) override
    {
        num_slots_ = num_slots;
        hand_ = 0;
    }

    void touch(uint32_t) override {}

    uint32_t
    chooseVictim(const std::function<bool(uint32_t)> &eligible) override
    {
        for (uint32_t i = 0; i < num_slots_; ++i) {
            const uint32_t s = (hand_ + i) % num_slots_;
            if (eligible(s)) {
                hand_ = (s + 1) % num_slots_;
                return s;
            }
        }
        return kNoVictim;
    }

    PolicyKind kind() const override { return PolicyKind::Fifo; }

  private:
    uint32_t num_slots_ = 0;
    uint32_t hand_ = 0;
};

} // namespace

std::unique_ptr<ReplacementPolicy>
makePolicy(PolicyKind kind, uint64_t seed)
{
    switch (kind) {
      case PolicyKind::Lru:
        return std::make_unique<LruPolicy>();
      case PolicyKind::Lfu:
        return std::make_unique<LfuPolicy>(seed);
      case PolicyKind::Random:
        return std::make_unique<RandomPolicy>(seed);
      case PolicyKind::Fifo:
        return std::make_unique<FifoPolicy>();
    }
    panic("unknown PolicyKind");
}

} // namespace sp::cache
