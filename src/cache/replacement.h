/**
 * @file
 * Victim-selection policies for the dynamic GPU embedding cache.
 *
 * The ScratchPipe [Plan] stage asks for a victim slot whose Hold mask
 * is zero; the policy decides *which* of the eligible slots to evict.
 * The paper defaults to LRU and reports robustness under Random and
 * LFU (Section VI-E), so all three are implemented (plus FIFO) behind
 * one interface. chooseVictim takes an eligibility predicate -- the
 * hold-mask check -- and must never return an ineligible slot.
 */

#ifndef SP_CACHE_REPLACEMENT_H
#define SP_CACHE_REPLACEMENT_H

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "tensor/rng.h"

namespace sp::cache
{

/** Which victim-selection policy a cache uses. */
enum class PolicyKind
{
    Lru,
    Lfu,
    Random,
    Fifo,
};

const char *policyName(PolicyKind kind);
PolicyKind policyFromName(const std::string &name);

/** Interface shared by all replacement policies. */
class ReplacementPolicy
{
  public:
    /** Returned when no eligible victim exists. */
    static constexpr uint32_t kNoVictim = 0xffffffffu;

    virtual ~ReplacementPolicy() = default;

    /** Reset all state for a cache with `num_slots` slots. */
    virtual void reset(uint32_t num_slots) = 0;

    /** Record a reference to `slot` (hit or new insertion). */
    virtual void touch(uint32_t slot) = 0;

    /**
     * Pick an eviction victim among slots where eligible(slot) is
     * true. Returns kNoVictim when every slot is ineligible (the
     * capacity-bound failure the controller turns into fatal()).
     */
    virtual uint32_t
    chooseVictim(const std::function<bool(uint32_t)> &eligible) = 0;

    virtual PolicyKind kind() const = 0;
};

/** Construct a policy instance. `seed` feeds the Random policy. */
std::unique_ptr<ReplacementPolicy> makePolicy(PolicyKind kind,
                                              uint64_t seed = 1);

} // namespace sp::cache

#endif // SP_CACHE_REPLACEMENT_H
