#include "cache/slot_array.h"

#include "common/logging.h"

namespace sp::cache
{

SlotArray::SlotArray(uint32_t num_slots, size_t dim, Backing backing)
    : num_slots_(num_slots), dim_(dim), backing_(backing)
{
    fatalIf(num_slots == 0, "SlotArray needs at least one slot");
    fatalIf(dim == 0, "SlotArray dimension must be positive");
    if (backing_ == Backing::Dense)
        data_.assign(static_cast<size_t>(num_slots) * dim, 0.0f);
}

float *
SlotArray::slot(uint32_t index)
{
    panicIf(!isDense(), "slot access on phantom SlotArray");
    panicIf(index >= num_slots_, "slot ", index, " out of range (",
            num_slots_, " slots)");
    return data_.data() + static_cast<size_t>(index) * dim_;
}

const float *
SlotArray::slot(uint32_t index) const
{
    panicIf(!isDense(), "slot access on phantom SlotArray");
    panicIf(index >= num_slots_, "slot ", index, " out of range (",
            num_slots_, " slots)");
    return data_.data() + static_cast<size_t>(index) * dim_;
}

} // namespace sp::cache
