#include "cache/static_cache.h"

#include <cstring>

#include "common/logging.h"

namespace sp::cache
{

StaticCache::StaticCache(std::span<const uint64_t> cached_rows, size_t dim,
                         SlotArray::Backing backing)
    : cached_rows_(cached_rows.begin(), cached_rows.end()),
      map_(cached_rows.size()),
      storage_(cached_rows.empty()
                   ? 1
                   : static_cast<uint32_t>(cached_rows.size()),
               dim, backing)
{
    fatalIf(cached_rows.empty(),
            "a static cache needs at least one cached row");
    for (uint32_t slot = 0; slot < cached_rows_.size(); ++slot)
        map_.insert(cached_rows_[slot], slot);
}

QuerySplit
StaticCache::query(std::span<const uint64_t> ids) const
{
    QuerySplit split;
    split.hit_mask.resize(ids.size());
    for (size_t i = 0; i < ids.size(); ++i) {
        const bool hit = map_.contains(ids[i]);
        split.hit_mask[i] = hit;
        if (hit)
            ++split.hits;
        else
            ++split.misses;
    }
    return split;
}

void
StaticCache::fillFrom(const emb::EmbeddingTable &table)
{
    panicIf(table.dim() != dim(), "dimension mismatch filling cache");
    for (uint32_t slot = 0; slot < cached_rows_.size(); ++slot) {
        std::memcpy(storage_.slot(slot), table.row(cached_rows_[slot]),
                    storage_.rowBytes());
    }
}

void
StaticCache::flushTo(emb::EmbeddingTable &table) const
{
    panicIf(table.dim() != dim(), "dimension mismatch flushing cache");
    for (uint32_t slot = 0; slot < cached_rows_.size(); ++slot) {
        std::memcpy(table.row(cached_rows_[slot]), storage_.slot(slot),
                    storage_.rowBytes());
    }
}

float *
StaticCache::Accessor::row(uint64_t id)
{
    const uint32_t slot = cache_.map_.find(id);
    panicIf(slot == HitMap::kNotFound,
            "static cache accessor asked for non-cached row ", id);
    return cache_.storage_.slot(slot);
}

const float *
StaticCache::Accessor::row(uint64_t id) const
{
    const uint32_t slot = cache_.map_.find(id);
    panicIf(slot == HitMap::kNotFound,
            "static cache accessor asked for non-cached row ", id);
    return cache_.storage_.slot(slot);
}

uint64_t
StaticCache::rowOfSlot(uint32_t slot) const
{
    panicIf(slot >= cached_rows_.size(), "slot out of range");
    return cached_rows_[slot];
}

} // namespace sp::cache
