/**
 * @file
 * Batched Hit-Map probe kernels with runtime dispatch.
 *
 * HitMap::findMany is the hottest loop of the whole simulator -- the
 * [Plan] pre-probe runs it for every table of every batch -- and its
 * entry layout (one 64-bit key<<32|slot word per open-addressed
 * bucket) is gather-friendly, so the batched probe is implemented as
 * a family of kernels over the raw entry array:
 *
 *   scalar  the software-pipelined prefetch-ring reference (always
 *           compiled; the ground truth every other kernel must match
 *           bit for bit);
 *   avx2    hash 8 keys per step with vectorized Murmur3 finalizers,
 *           vpgatherqq the 8 start buckets, vectorized key-compare /
 *           empty-compare masks, scalar continuation for the rare
 *           lanes whose first bucket neither hits nor proves a miss
 *           (compiled in its own TU with a per-file -mavx2, so the
 *           rest of the binary stays portable);
 *   neon    vectorized hashing + prefetch on aarch64 (no gather in
 *           NEON; the probes themselves stay scalar).
 *
 * Selection: ProbeMode::Auto follows the SP_SIMD environment variable
 * (scalar | native), Scalar/Native pin it per HitMap via the probe=
 * system-spec key. Every kernel returns byte-identical results --
 * enforced by tests/cache/probe_kernel_equivalence_test.cc -- so the
 * choice is a pure perf knob.
 */

#ifndef SP_CACHE_PROBE_KERNEL_H
#define SP_CACHE_PROBE_KERNEL_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace sp::cache
{

/** Sentinel key / probe result (HitMap::kNotFound). */
constexpr uint32_t kProbeEmptyKey = 0xffffffffu;
/** An empty bucket: empty key in the high word, zero value. */
constexpr uint64_t kProbeEmptyEntry = 0xffffffff00000000ull;

/**
 * A read-only view of a HitMap's open-addressing array: `mask + 1`
 * power-of-two buckets of key<<32|slot words. Valid only while the
 * owning map is not mutated.
 */
struct ProbeTable
{
    const uint64_t *entries = nullptr;
    size_t mask = 0;
};

/** Finalizer of MurmurHash3: good avalanche for sequential IDs. */
inline uint32_t
probeHashKey(uint32_t key)
{
    uint32_t h = key;
    h ^= h >> 16;
    h *= 0x85ebca6bu;
    h ^= h >> 13;
    h *= 0xc2b2ae35u;
    h ^= h >> 16;
    return h;
}

/** Start bucket of `key` in `table`. */
inline size_t
probeBucketFor(const ProbeTable &table, uint32_t key)
{
    return probeHashKey(key) & table.mask;
}

/**
 * Linear-probe `key` from `bucket` until it hits or reaches an empty
 * bucket: the shared collision-continuation every kernel funnels into.
 */
inline uint32_t
probeChainFrom(const ProbeTable &table, size_t bucket, uint32_t key)
{
    for (;;) {
        const uint64_t entry = table.entries[bucket];
        if (entry == kProbeEmptyEntry)
            return kProbeEmptyKey;
        if (static_cast<uint32_t>(entry >> 32) == key)
            return static_cast<uint32_t>(entry);
        bucket = (bucket + 1) & table.mask;
    }
}

/**
 * A batched-probe implementation: out[i] = probe of keys[i]. Keys are
 * pre-validated by the caller (no kProbeEmptyKey); `out` holds `n`
 * results.
 */
using ProbeKernelFn = void (*)(const ProbeTable &table,
                               const uint32_t *keys, uint32_t *out,
                               size_t n);

/** One compiled kernel. */
struct ProbeKernel
{
    const char *name;        //!< "scalar" / "avx2" / "neon"
    ProbeKernelFn fn;        //!< the batched probe
    bool (*supported)();     //!< host CPU can execute it right now
};

/** Per-HitMap kernel selection (spec key probe=auto|scalar|native). */
enum class ProbeMode
{
    Auto,   //!< follow the process-wide SP_SIMD preference
    Scalar, //!< pin the scalar reference kernel
    Native, //!< pin the best compiled + supported kernel
};

/** The scalar reference kernel (always compiled, always supported). */
const ProbeKernel &scalarProbeKernel();

/** The AVX2 kernel, or nullptr when this build has no x86-64 TU. */
const ProbeKernel *avx2ProbeKernel();

/** The NEON kernel, or nullptr when this build has no aarch64 TU. */
const ProbeKernel *neonProbeKernel();

/**
 * Every kernel in this binary, scalar first. Kernels the host CPU
 * cannot execute are included (check supported()); the equivalence
 * harness enumerates this to prove each one against scalar.
 */
std::vector<const ProbeKernel *> compiledProbeKernels();

/**
 * Resolve a mode to a kernel: Scalar (or Auto under SP_SIMD=scalar)
 * yields the reference kernel; Native yields the widest compiled
 * kernel the CPU supports, falling back to scalar.
 */
const ProbeKernel &selectProbeKernel(ProbeMode mode);

/** Parse a probe= spec value (auto|scalar|native); fatal()s otherwise. */
ProbeMode probeModeFromName(const std::string &name);

/** Spec-key spelling of `mode`. */
const char *probeModeName(ProbeMode mode);

} // namespace sp::cache

#endif // SP_CACHE_PROBE_KERNEL_H
