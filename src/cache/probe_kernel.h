/**
 * @file
 * Batched Hit-Map probe kernels with runtime dispatch.
 *
 * HitMap::findMany is the hottest loop of the whole simulator -- the
 * [Plan] pre-probe runs it for every table of every batch -- and its
 * layout (parallel open-addressed arrays: 64-bit keys, 32-bit slots)
 * keeps the probe-deciding key array dense and gather-friendly, so
 * the batched probe is implemented as a family of kernels over the
 * raw arrays:
 *
 *   scalar  the software-pipelined prefetch-ring reference (always
 *           compiled; the ground truth every other kernel must match
 *           bit for bit);
 *   avx2    mix64-hash 8 keys per step (64-bit multiplies stay
 *           scalar; AVX2 has no cheap 64x64 lane multiply), then
 *           vpgatherqq the 8 start-bucket keys and vpgatherdd their
 *           slots, with vectorized key-compare / empty-compare masks
 *           settling the common single-probe lanes; the rare
 *           collision chains fall back to the scalar continuation
 *           (compiled in its own TU with a per-file -mavx2, so the
 *           rest of the binary stays portable);
 *   neon    the prefetch pipeline on aarch64 (no gather in NEON and
 *           no vector 64-bit multiply; the probes stay scalar).
 *
 * Selection: ProbeMode::Auto follows the SP_SIMD environment variable
 * (scalar | native), Scalar/Native pin it per HitMap via the probe=
 * system-spec key. Every kernel returns byte-identical results --
 * enforced by tests/cache/probe_kernel_equivalence_test.cc -- so the
 * choice is a pure perf knob.
 */

#ifndef SP_CACHE_PROBE_KERNEL_H
#define SP_CACHE_PROBE_KERNEL_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace sp::cache
{

/** Sentinel key marking an empty bucket (never a legal row ID). */
constexpr uint64_t kProbeEmptyKey = 0xffffffffffffffffull;
/** Sentinel probe result on miss (HitMap::kNotFound). */
constexpr uint32_t kProbeNotFound = 0xffffffffu;

/**
 * A read-only view of a HitMap's open addressing state: `mask + 1`
 * power-of-two buckets as parallel arrays -- 64-bit keys (the probe
 * hot stream) and their 32-bit Storage slots, read only on a hit.
 * Valid only while the owning map is not mutated.
 */
struct ProbeTable
{
    const uint64_t *keys = nullptr;
    const uint32_t *slots = nullptr;
    size_t mask = 0;
};

/** Murmur3 64-bit finalizer: good avalanche for sequential IDs. */
inline uint64_t
probeHashKey(uint64_t key)
{
    uint64_t h = key;
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdull;
    h ^= h >> 33;
    h *= 0xc4ceb9fe1a85ec53ull;
    h ^= h >> 33;
    return h;
}

/** Start bucket of `key` in `table`. */
inline size_t
probeBucketFor(const ProbeTable &table, uint64_t key)
{
    return probeHashKey(key) & table.mask;
}

/**
 * Linear-probe `key` from `bucket` until it hits or reaches an empty
 * bucket: the shared collision-continuation every kernel funnels into.
 */
inline uint32_t
probeChainFrom(const ProbeTable &table, size_t bucket, uint64_t key)
{
    for (;;) {
        const uint64_t bucket_key = table.keys[bucket];
        if (bucket_key == kProbeEmptyKey)
            return kProbeNotFound;
        if (bucket_key == key)
            return table.slots[bucket];
        bucket = (bucket + 1) & table.mask;
    }
}

/**
 * A batched-probe implementation: out[i] = probe of keys[i]. Keys are
 * pre-validated by the caller (no kProbeEmptyKey); `out` holds `n`
 * results.
 */
using ProbeKernelFn = void (*)(const ProbeTable &table,
                               const uint64_t *keys, uint32_t *out,
                               size_t n);

/** One compiled kernel. */
struct ProbeKernel
{
    const char *name;        //!< "scalar" / "avx2" / "neon"
    ProbeKernelFn fn;        //!< the batched probe
    bool (*supported)();     //!< host CPU can execute it right now
};

/** Per-HitMap kernel selection (spec key probe=auto|scalar|native). */
enum class ProbeMode
{
    Auto,   //!< follow the process-wide SP_SIMD preference
    Scalar, //!< pin the scalar reference kernel
    Native, //!< pin the best compiled + supported kernel
};

/** The scalar reference kernel (always compiled, always supported). */
const ProbeKernel &scalarProbeKernel();

/** The AVX2 kernel, or nullptr when this build has no x86-64 TU. */
const ProbeKernel *avx2ProbeKernel();

/** The NEON kernel, or nullptr when this build has no aarch64 TU. */
const ProbeKernel *neonProbeKernel();

/**
 * Every kernel in this binary, scalar first. Kernels the host CPU
 * cannot execute are included (check supported()); the equivalence
 * harness enumerates this to prove each one against scalar.
 */
std::vector<const ProbeKernel *> compiledProbeKernels();

/**
 * Resolve a mode to a kernel: Scalar (or Auto under SP_SIMD=scalar)
 * yields the reference kernel; Native yields the widest compiled
 * kernel the CPU supports, falling back to scalar.
 */
const ProbeKernel &selectProbeKernel(ProbeMode mode);

/** Parse a probe= spec value (auto|scalar|native); fatal()s otherwise. */
ProbeMode probeModeFromName(const std::string &name);

/** Spec-key spelling of `mode`. */
const char *probeModeName(ProbeMode mode);

} // namespace sp::cache

#endif // SP_CACHE_PROBE_KERNEL_H
