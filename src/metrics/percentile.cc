#include "metrics/percentile.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace sp::metrics
{

void
PercentileReservoir::reserve(size_t expected)
{
    samples_.reserve(expected);
}

void
PercentileReservoir::add(double value)
{
    samples_.push_back(value);
    sorted_valid_ = false;
}

double
PercentileReservoir::mean() const
{
    fatalIf(samples_.empty(), "percentile reservoir: mean of nothing");
    double sum = 0.0;
    for (const double v : samples_)
        sum += v;
    return sum / static_cast<double>(samples_.size());
}

double
PercentileReservoir::maxValue() const
{
    fatalIf(samples_.empty(), "percentile reservoir: max of nothing");
    return *std::max_element(samples_.begin(), samples_.end());
}

double
PercentileReservoir::percentile(double q) const
{
    fatalIf(samples_.empty(),
            "percentile reservoir: percentile of nothing");
    // Written as !(in range) so NaN is rejected too.
    fatalIf(!(q > 0.0 && q <= 1.0),
            "percentile quantile must be in (0, 1], got ", q);
    if (!sorted_valid_) {
        sorted_ = samples_;
        std::sort(sorted_.begin(), sorted_.end());
        sorted_valid_ = true;
    }
    // Nearest rank: 1-based rank ceil(q*N), clamped into [1, N] (the
    // ceil can land at 0 for denormal-small q, and floating error on
    // q*N can overshoot N for q=1).
    const double n = static_cast<double>(sorted_.size());
    size_t rank = static_cast<size_t>(std::ceil(q * n));
    rank = std::clamp<size_t>(rank, 1, sorted_.size());
    return sorted_[rank - 1];
}

} // namespace sp::metrics
