/**
 * @file
 * System energy model (paper Fig. 14).
 *
 * The paper measures socket power with pcm-power and GPU power with
 * nvidia-smi and multiplies by execution time. We do the same with the
 * modeled times: each component draws active power while busy and idle
 * power for the rest of the iteration.
 */

#ifndef SP_METRICS_ENERGY_H
#define SP_METRICS_ENERGY_H

#include "sim/hardware_config.h"

namespace sp::metrics
{

/** Busy-time attribution of one iteration. */
struct BusyTimes
{
    /** Wall-clock seconds of the iteration. */
    double iteration_seconds = 0.0;
    /** Seconds the CPU side (memory + cores) is busy. */
    double cpu_busy_seconds = 0.0;
    /** Seconds the GPU (SMs + HBM) is busy. */
    double gpu_busy_seconds = 0.0;
};

/** Active/idle power integration over modeled time. */
class EnergyModel
{
  public:
    explicit EnergyModel(const sim::HardwareConfig &config)
        : config_(config)
    {
    }

    /** Joules consumed by one iteration. */
    double iterationEnergy(const BusyTimes &busy) const;

    /** Average watts over one iteration. */
    double averagePower(const BusyTimes &busy) const;

  private:
    sim::HardwareConfig config_;
};

} // namespace sp::metrics

#endif // SP_METRICS_ENERGY_H
