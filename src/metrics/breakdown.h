/**
 * @file
 * Named per-iteration latency breakdowns.
 *
 * The paper's Fig. 5 and Fig. 12 report training time split by where
 * each phase executes; every system model emits an IterationBreakdown
 * with its own stage names ("CPU embedding forward", "Plan", ...).
 */

#ifndef SP_METRICS_BREAKDOWN_H
#define SP_METRICS_BREAKDOWN_H

#include <string>
#include <vector>

namespace sp::metrics
{

/** One named component of an iteration's latency. */
struct StageTime
{
    std::string name;
    double seconds = 0.0;
};

/** Latency of one training iteration, split into named stages. */
class IterationBreakdown
{
  public:
    IterationBreakdown() = default;

    /** Append a stage (names may repeat; get() sums them). */
    void add(const std::string &name, double seconds);

    /** Sum of seconds across stages named `name` (0 when absent). */
    double get(const std::string &name) const;

    /** Sum of all stages. */
    double total() const;

    const std::vector<StageTime> &stages() const { return stages_; }

    /** Scale every stage (e.g. average over iterations). */
    void scale(double factor);

    /** Accumulate another breakdown stage-by-stage (names must be
     *  appended in the same order; panics otherwise). */
    void accumulate(const IterationBreakdown &other);

  private:
    std::vector<StageTime> stages_;
};

} // namespace sp::metrics

#endif // SP_METRICS_BREAKDOWN_H
