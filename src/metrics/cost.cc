#include "metrics/cost.h"

#include "common/logging.h"

namespace sp::metrics
{

AwsInstance
AwsInstance::p3_2xlarge()
{
    return AwsInstance{"p3.2xlarge", 3.06, 1};
}

AwsInstance
AwsInstance::p3_16xlarge()
{
    return AwsInstance{"p3.16xlarge", 24.48, 8};
}

double
trainingCost(const AwsInstance &instance, double seconds_per_iteration,
             uint64_t iterations)
{
    fatalIf(seconds_per_iteration < 0.0, "negative iteration time");
    const double hours =
        seconds_per_iteration * static_cast<double>(iterations) / 3600.0;
    return hours * instance.price_per_hour;
}

} // namespace sp::metrics
