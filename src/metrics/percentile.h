/**
 * @file
 * Exact nearest-rank percentile reservoir for SLO reporting.
 *
 * The serving engine records one latency sample per measured request
 * and reports p50/p99/p999 next to the throughput metrics. Sample
 * counts are bounded (iterations x batch size), so the reservoir keeps
 * every sample and computes *exact* nearest-rank percentiles instead
 * of a sketch: percentiles are then a pure function of the inserted
 * values, which is what lets sweep JSON stay byte-identical across
 * --jobs widths.
 *
 * Nearest-rank definition: for quantile q in (0, 1], the percentile is
 * the value at 1-based rank ceil(q * N) of the sorted samples. This is
 * the smallest sample v such that at least a q-fraction of the samples
 * are <= v (so p50 of {1} is 1, p999 of 100 samples is the maximum).
 */

#ifndef SP_METRICS_PERCENTILE_H
#define SP_METRICS_PERCENTILE_H

#include <cstddef>
#include <vector>

namespace sp::metrics
{

/** Stores every sample; serves exact nearest-rank percentiles. */
class PercentileReservoir
{
  public:
    /** Pre-size for `expected` samples (keeps add() realloc-free). */
    void reserve(size_t expected);

    /** Record one sample (seconds, bytes, anything ordered). */
    void add(double value);

    /** Number of recorded samples. */
    size_t count() const { return samples_.size(); }

    /** Arithmetic mean; fatal() when empty. */
    double mean() const;

    /** Largest sample; fatal() when empty. */
    double maxValue() const;

    /**
     * Nearest-rank percentile for quantile `q` in (0, 1], e.g.
     * q=0.5 -> p50, q=0.999 -> p999. fatal() on an empty reservoir or
     * an out-of-range q.
     */
    double percentile(double q) const;

  private:
    std::vector<double> samples_;
    /** Sorted copy, rebuilt lazily on the first percentile() after an
     *  add(); keeps repeated percentile queries O(1) after one sort. */
    mutable std::vector<double> sorted_;
    mutable bool sorted_valid_ = false;
};

} // namespace sp::metrics

#endif // SP_METRICS_PERCENTILE_H
