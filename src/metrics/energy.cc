#include "metrics/energy.h"

#include <algorithm>

#include "common/logging.h"

namespace sp::metrics
{

double
EnergyModel::iterationEnergy(const BusyTimes &busy) const
{
    panicIf(busy.iteration_seconds < 0, "negative iteration time");
    const double iter = busy.iteration_seconds;
    const double cpu_busy = std::min(busy.cpu_busy_seconds, iter);
    const double gpu_busy = std::min(busy.gpu_busy_seconds, iter);

    const double cpu_joules =
        cpu_busy * config_.cpu_active_watts +
        (iter - cpu_busy) * config_.cpu_idle_watts;
    const double gpu_joules =
        gpu_busy * config_.gpu_active_watts +
        (iter - gpu_busy) * config_.gpu_idle_watts;
    return cpu_joules + gpu_joules;
}

double
EnergyModel::averagePower(const BusyTimes &busy) const
{
    if (busy.iteration_seconds <= 0.0)
        return 0.0;
    return iterationEnergy(busy) / busy.iteration_seconds;
}

} // namespace sp::metrics
