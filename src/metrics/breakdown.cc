#include "metrics/breakdown.h"

#include "common/logging.h"

namespace sp::metrics
{

void
IterationBreakdown::add(const std::string &name, double seconds)
{
    stages_.push_back(StageTime{name, seconds});
}

double
IterationBreakdown::get(const std::string &name) const
{
    double total = 0.0;
    for (const auto &stage : stages_) {
        if (stage.name == name)
            total += stage.seconds;
    }
    return total;
}

double
IterationBreakdown::total() const
{
    double total = 0.0;
    for (const auto &stage : stages_)
        total += stage.seconds;
    return total;
}

void
IterationBreakdown::scale(double factor)
{
    for (auto &stage : stages_)
        stage.seconds *= factor;
}

void
IterationBreakdown::accumulate(const IterationBreakdown &other)
{
    if (stages_.empty()) {
        stages_ = other.stages_;
        return;
    }
    panicIf(stages_.size() != other.stages_.size(),
            "accumulating breakdowns with different stage counts");
    for (size_t i = 0; i < stages_.size(); ++i) {
        panicIf(stages_[i].name != other.stages_[i].name,
                "accumulating breakdowns with mismatched stage '",
                stages_[i].name, "' vs '", other.stages_[i].name, "'");
        stages_[i].seconds += other.stages_[i].seconds;
    }
}

} // namespace sp::metrics
