#include "metrics/table_printer.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/logging.h"

namespace sp::metrics
{

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    fatalIf(headers_.empty(), "table needs at least one column");
}

void
TablePrinter::addRow(std::vector<std::string> cells)
{
    fatalIf(cells.size() != headers_.size(), "row has ", cells.size(),
            " cells, table has ", headers_.size(), " columns");
    rows_.push_back(std::move(cells));
}

std::string
TablePrinter::num(double value, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << value;
    return os.str();
}

void
TablePrinter::print(std::ostream &os) const
{
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_) {
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    auto print_row = [&](const std::vector<std::string> &cells) {
        for (size_t c = 0; c < cells.size(); ++c) {
            os << std::left << std::setw(static_cast<int>(widths[c]) + 2)
               << cells[c];
        }
        os << '\n';
    };

    print_row(headers_);
    size_t total_width = 0;
    for (size_t w : widths)
        total_width += w + 2;
    os << std::string(total_width, '-') << '\n';
    for (const auto &row : rows_)
        print_row(row);
}

void
TablePrinter::printCsv(std::ostream &os) const
{
    auto print_row = [&](const std::vector<std::string> &cells) {
        for (size_t c = 0; c < cells.size(); ++c) {
            if (c > 0)
                os << ',';
            os << cells[c];
        }
        os << '\n';
    };
    print_row(headers_);
    for (const auto &row : rows_)
        print_row(row);
}

} // namespace sp::metrics
