/**
 * @file
 * Cloud training-cost model (paper Table I).
 *
 * Table I is arithmetic: AWS EC2 on-demand price times the time to run
 * one million training iterations. The instance catalogue carries the
 * paper's published price points.
 */

#ifndef SP_METRICS_COST_H
#define SP_METRICS_COST_H

#include <cstdint>
#include <string>

namespace sp::metrics
{

/** One cloud instance offering. */
struct AwsInstance
{
    std::string name;
    double price_per_hour = 0.0;
    int gpus = 0;

    /** p3.2xlarge: 1x V100, the single-GPU ScratchPipe host. */
    static AwsInstance p3_2xlarge();
    /** p3.16xlarge: 8x V100 NVLink, the multi-GPU comparison. */
    static AwsInstance p3_16xlarge();
};

/** Dollars to run `iterations` at `seconds_per_iteration` each. */
double trainingCost(const AwsInstance &instance,
                    double seconds_per_iteration, uint64_t iterations);

} // namespace sp::metrics

#endif // SP_METRICS_COST_H
