/**
 * @file
 * Aligned-table and CSV printing for the benchmark harnesses.
 *
 * Every bench binary regenerates one of the paper's tables or figures
 * as rows of numbers; this printer keeps their output format uniform
 * (an aligned human-readable table plus machine-readable CSV lines).
 */

#ifndef SP_METRICS_TABLE_PRINTER_H
#define SP_METRICS_TABLE_PRINTER_H

#include <iosfwd>
#include <cstddef>
#include <string>
#include <vector>

namespace sp::metrics
{

/** Collects rows of string cells and prints them aligned or as CSV. */
class TablePrinter
{
  public:
    explicit TablePrinter(std::vector<std::string> headers);

    /** Append one row (must match the header count). */
    void addRow(std::vector<std::string> cells);

    /** Format a double with fixed precision. */
    static std::string num(double value, int precision = 2);

    /** Print an aligned table to `os`. */
    void print(std::ostream &os) const;

    /** Print CSV (header + rows) to `os`. */
    void printCsv(std::ostream &os) const;

    size_t numRows() const { return rows_.size(); }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace sp::metrics

#endif // SP_METRICS_TABLE_PRINTER_H
