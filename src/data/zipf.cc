#include "data/zipf.h"

#include <cmath>

#include "common/logging.h"

namespace sp::data
{

namespace
{

/** log1p(x)/x, stable near zero. */
double
helper1(double x)
{
    if (std::fabs(x) > 1e-8)
        return std::log1p(x) / x;
    return 1.0 - x * 0.5 + x * x / 3.0;
}

/** expm1(x)/x, stable near zero. */
double
helper2(double x)
{
    if (std::fabs(x) > 1e-8)
        return std::expm1(x) / x;
    return 1.0 + x * 0.5 * (1.0 + x / 3.0);
}

} // namespace

ZipfSampler::ZipfSampler(uint64_t n, double exponent)
    : n_(n), exponent_(exponent)
{
    fatalIf(n == 0, "ZipfSampler requires at least one element");
    fatalIf(exponent < 0.0, "ZipfSampler exponent must be >= 0, got ",
            exponent);
    if (exponent_ > 0.0) {
        h_integral_x1_ = hIntegral(1.5) - 1.0;
        h_integral_n_ = hIntegral(static_cast<double>(n_) + 0.5);
        s_ = 2.0 - hIntegralInverse(hIntegral(2.5) - h(2.0));
    }
}

double
ZipfSampler::hIntegral(double x) const
{
    const double log_x = std::log(x);
    return helper2((1.0 - exponent_) * log_x) * log_x;
}

double
ZipfSampler::h(double x) const
{
    return std::exp(-exponent_ * std::log(x));
}

double
ZipfSampler::hIntegralInverse(double x) const
{
    double t = x * (1.0 - exponent_);
    if (t < -1.0)
        t = -1.0; // guard against numeric overshoot at the left edge
    return std::exp(helper1(t) * x);
}

uint64_t
ZipfSampler::sample(tensor::Rng &rng)
{
    if (exponent_ == 0.0)
        return rng.uniformInt(n_);

    for (;;) {
        const double u = h_integral_n_ +
            rng.uniform() * (h_integral_x1_ - h_integral_n_);
        const double x = hIntegralInverse(u);
        uint64_t k = static_cast<uint64_t>(x + 0.5);
        if (k < 1)
            k = 1;
        else if (k > n_)
            k = n_;
        const double kd = static_cast<double>(k);
        if (kd - x <= s_ || u >= hIntegral(kd + 0.5) - h(kd))
            return k - 1;
    }
}

double
ZipfSampler::probability(uint64_t k)
{
    // splint:allow(io-status): caller-bug bounds check, not I/O
    panicIf(k >= n_, "probability(", k, ") out of range for n=", n_);
    if (exponent_ == 0.0)
        return 1.0 / static_cast<double>(n_);
    if (normalizer_ == 0.0)
        normalizer_ = generalizedHarmonic(n_, exponent_);
    return std::pow(static_cast<double>(k + 1), -exponent_) / normalizer_;
}

double
generalizedHarmonic(uint64_t n, double s)
{
    // Sum smallest-to-largest terms for accuracy.
    double total = 0.0;
    for (uint64_t k = n; k >= 1; --k)
        total += std::pow(static_cast<double>(k), -s);
    return total;
}

double
zipfTopCoverage(uint64_t n, double s, double top_fraction)
{
    fatalIf(top_fraction < 0.0 || top_fraction > 1.0,
            "top_fraction must be in [0,1], got ", top_fraction);
    const uint64_t top =
        static_cast<uint64_t>(top_fraction * static_cast<double>(n));
    if (top == 0)
        return 0.0;
    if (s == 0.0)
        return static_cast<double>(top) / static_cast<double>(n);
    return generalizedHarmonic(top, s) / generalizedHarmonic(n, s);
}

} // namespace sp::data
