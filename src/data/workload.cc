#include "data/workload.h"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstdlib>
#include <numeric>
#include <sstream>

#include "common/logging.h"

namespace sp::data
{

namespace
{

// Stream kinds for the shaping draws, disjoint from the trace streams
// in trace.cc (kStreamIds/kStreamDense/kStreamLabel).
constexpr uint64_t kStreamChurn = 0xc4a2;
constexpr uint64_t kStreamBurst = 0xb0b5;

uint64_t
mix64(uint64_t x)
{
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdull;
    x ^= x >> 33;
    x *= 0xc4ceb9fe1a85ec53ull;
    x ^= x >> 33;
    return x;
}

double
parseSpecDouble(const std::string &key, const std::string &value)
{
    char *end = nullptr;
    const double parsed = std::strtod(value.c_str(), &end);
    fatalIf(end == nullptr || *end != '\0' || value.empty(),
            "workload spec: bad number '", value, "' for key '", key,
            "'");
    return parsed;
}

uint64_t
parseSpecCount(const std::string &key, const std::string &value)
{
    uint64_t parsed = 0;
    const auto [ptr, ec] = std::from_chars(
        value.data(), value.data() + value.size(), parsed);
    fatalIf(ec != std::errc() || ptr != value.data() + value.size(),
            "workload spec: '", key,
            "' must be a non-negative integer, got '", value, "'");
    return parsed;
}

std::string
shortestDouble(double value)
{
    char buffer[32];
    const auto [end, ec] =
        std::to_chars(buffer, buffer + sizeof(buffer), value);
    return ec == std::errc() ? std::string(buffer, end)
                             : std::to_string(value);
}

/** Triangle wave in [-1, 1] with half-period `period` batches. */
double
triangleWave(uint64_t position, uint64_t period)
{
    const uint64_t cycle = position % (2 * period);
    const double p = static_cast<double>(period);
    if (cycle < period)
        return 2.0 * static_cast<double>(cycle) / p - 1.0;
    return 1.0 - 2.0 * static_cast<double>(cycle - period) / p;
}

} // namespace

std::string
WorkloadConfig::validationError(uint64_t rows_per_table) const
{
    std::ostringstream os;
    if (drift_amp < 0.0 || !std::isfinite(drift_amp)) {
        os << "drift_amp must be finite and >= 0, got " << drift_amp;
    } else if (drift_amp > 0.0 && drift_period == 0) {
        os << "drift_amp=" << shortestDouble(drift_amp)
           << " needs drift_period > 0";
    } else if (drift_period > 0 && drift_amp == 0.0) {
        os << "drift_period=" << drift_period
           << " has no effect without drift_amp > 0";
    } else if (churn_k > 0 && churn_period == 0) {
        os << "churn_k=" << churn_k << " needs churn_period > 0";
    } else if (churn_period > 0 && churn_k == 0) {
        os << "churn_period=" << churn_period
           << " has no effect without churn_k > 0";
    } else if (churn_k > rows_per_table) {
        os << "churn_k=" << churn_k << " exceeds rows_per_table="
           << rows_per_table;
    } else if (!(burst_frac >= 0.0 && burst_frac <= 1.0)) {
        // Written as !(in range) so NaN is rejected too.
        os << "burst_frac must be in [0, 1], got " << burst_frac;
    } else if (burst_frac > 0.0 &&
               (burst_period == 0 || burst_len == 0 ||
                burst_ranks == 0)) {
        os << "burst_frac=" << shortestDouble(burst_frac)
           << " needs burst_period, burst_len and burst_ranks > 0";
    } else if (burst_frac == 0.0 &&
               (burst_period > 0 || burst_len > 0 || burst_ranks > 0)) {
        os << "burst_period/burst_len/burst_ranks have no effect "
              "without burst_frac > 0";
    } else if (burst_len > burst_period) {
        os << "burst_len=" << burst_len << " exceeds burst_period="
           << burst_period;
    } else if (burst_ranks > rows_per_table) {
        os << "burst_ranks=" << burst_ranks
           << " exceeds rows_per_table=" << rows_per_table;
    }
    return os.str();
}

std::string
WorkloadConfig::summary() const
{
    std::ostringstream os;
    char separator = '\0';
    const auto emit = [&](const char *key, const std::string &value) {
        if (separator != '\0')
            os << separator;
        os << key << '=' << value;
        separator = ',';
    };
    if (drift_amp != 0.0) {
        emit("drift_amp", shortestDouble(drift_amp));
        emit("drift_period", std::to_string(drift_period));
    }
    if (churn_k != 0) {
        emit("churn_k", std::to_string(churn_k));
        emit("churn_period", std::to_string(churn_period));
    }
    if (burst_frac != 0.0) {
        emit("burst_frac", shortestDouble(burst_frac));
        emit("burst_period", std::to_string(burst_period));
        emit("burst_len", std::to_string(burst_len));
        emit("burst_ranks", std::to_string(burst_ranks));
    }
    if (phase != 0)
        emit("phase", std::to_string(phase));
    return os.str();
}

WorkloadSpec
WorkloadSpec::parse(const std::string &text)
{
    WorkloadSpec spec;
    if (text.empty())
        return spec;

    std::vector<std::string> seen;
    std::stringstream options(text);
    std::string item;
    bool shaped = false;
    while (std::getline(options, item, ',')) {
        const size_t eq = item.find('=');
        fatalIf(eq == std::string::npos,
                "workload spec: expected key=value, got '", item,
                "' in '", text, "'");
        const std::string key = item.substr(0, eq);
        const std::string value = item.substr(eq + 1);
        // Duplicates previously last-won silently; an option set with
        // two values for one knob is a typo, never an intent.
        fatalIf(std::find(seen.begin(), seen.end(), key) != seen.end(),
                "workload spec: duplicate key '", key, "' in '", text,
                "'");
        seen.push_back(key);
        if (key == "drift_amp") {
            spec.config.drift_amp = parseSpecDouble(key, value);
            shaped = true;
        } else if (key == "drift_period") {
            spec.config.drift_period = parseSpecCount(key, value);
            shaped = true;
        } else if (key == "churn_k") {
            spec.config.churn_k = parseSpecCount(key, value);
            shaped = true;
        } else if (key == "churn_period") {
            spec.config.churn_period = parseSpecCount(key, value);
            shaped = true;
        } else if (key == "burst_frac") {
            spec.config.burst_frac = parseSpecDouble(key, value);
            shaped = true;
        } else if (key == "burst_period") {
            spec.config.burst_period = parseSpecCount(key, value);
            shaped = true;
        } else if (key == "burst_len") {
            spec.config.burst_len = parseSpecCount(key, value);
            shaped = true;
        } else if (key == "burst_ranks") {
            spec.config.burst_ranks = parseSpecCount(key, value);
            shaped = true;
        } else if (key == "phase") {
            spec.config.phase = parseSpecCount(key, value);
            shaped = true;
        } else if (key == "replay") {
            fatalIf(value.empty(),
                    "workload spec: replay needs a file path");
            spec.replay_path = value;
        } else {
            fatal("workload spec: unknown key '", key, "' in '", text,
                  "' (drift_amp/drift_period/churn_k/churn_period/"
                  "burst_frac/burst_period/burst_len/burst_ranks/"
                  "phase/replay)");
        }
    }
    fatalIf(!spec.replay_path.empty() && shaped,
            "workload spec: replay=", spec.replay_path,
            " cannot be combined with shaping keys -- the recorded "
            "trace already fixes its workload");
    return spec;
}

std::string
WorkloadSpec::summary() const
{
    if (!replay_path.empty())
        return "replay=" + replay_path;
    return config.summary();
}

WorkloadShaper::WorkloadShaper(const WorkloadConfig &config,
                               uint64_t seed, uint64_t rows,
                               double base_exponent, uint64_t table,
                               uint64_t batch_index)
    : config_(config),
      sampler_(rows,
               config.drift_period == 0
                   ? base_exponent
                   : std::max(0.0,
                              base_exponent +
                                  config.drift_amp *
                                      triangleWave(
                                          batch_index +
                                              table * config.phase,
                                          config.drift_period)))
{
    const uint64_t position = batch_index + table * config.phase;

    if (config.churn_k > 0) {
        // One identity-seeded permutation of the hottest K ranks per
        // churn epoch; every table at the same schedule position sees
        // the same remap (phase offsets shift positions per table).
        const uint64_t epoch = position / config.churn_period;
        tensor::Rng perm_rng(
            mix64(mix64(seed ^ (kStreamChurn * 0x9e3779b97f4a7c15ull)) ^
                  (epoch + 1)));
        churn_perm_.resize(config.churn_k);
        std::iota(churn_perm_.begin(), churn_perm_.end(), uint64_t{0});
        for (uint64_t i = config.churn_k - 1; i > 0; --i)
            std::swap(churn_perm_[i],
                      churn_perm_[perm_rng.uniformInt(i + 1)]);
    }

    if (config.burst_frac > 0.0) {
        burst_active_ = position % config.burst_period < config.burst_len;
        if (burst_active_) {
            // Each crowd lands on a fresh window: derive the start row
            // from the crowd ordinal, not the batch, so the window is
            // stable across the crowd's burst_len batches.
            const uint64_t crowd = position / config.burst_period;
            const uint64_t span = rows - config.burst_ranks;
            const uint64_t h = mix64(
                mix64(seed ^ (kStreamBurst * 0x9e3779b97f4a7c15ull)) ^
                (crowd + 1));
            burst_lo_ = span == 0 ? 0 : h % (span + 1);
        }
    }
}

uint64_t
WorkloadShaper::sample(tensor::Rng &rng)
{
    uint64_t id = sampler_.sample(rng);
    if (!churn_perm_.empty() && id < churn_perm_.size())
        id = churn_perm_[id];
    if (burst_active_ && rng.bernoulli(config_.burst_frac))
        id = burst_lo_ + rng.uniformInt(config_.burst_ranks);
    return id;
}

} // namespace sp::data
