/**
 * @file
 * Open-loop request arrival processes for the serving engine.
 *
 * An ArrivalProcess emits a nondecreasing stream of absolute arrival
 * times (seconds of virtual time) for inference requests, independent
 * of how fast the server drains them -- the open-loop discipline that
 * makes tail latency visible when offered load exceeds capacity.
 *
 * Three processes share one mean rate `rate` (requests/second):
 *
 *   poisson  exponential inter-arrival gaps, -ln(u)/rate
 *   uniform  deterministic 1/rate spacing (closed-form pacing)
 *   bursty   a rate-modulated Poisson: the on-phase of every
 *            (burst_on + burst_off)-second period runs at
 *            rate * burst_x, the off-phase at whatever non-negative
 *            rate keeps the long-run mean equal to `rate`
 *
 * Determinism: draws come from a private splitmix64 stream seeded as
 * mix64(seed ^ kStreamArrival * golden-gamma) -- the same
 * stream-constant discipline as WorkloadShaper's churn/burst streams
 * -- so arrival times are a pure function of (config, seed) and never
 * perturb, or get perturbed by, the trace/workload streams.
 *
 * The uniform draw is clamped to (0, 1]: a raw draw of exactly 0
 * would make the exponential gap -ln(0)/rate infinite and wedge the
 * virtual clock.
 */

#ifndef SP_DATA_ARRIVAL_H
#define SP_DATA_ARRIVAL_H

#include <cstdint>
#include <string>

namespace sp::data
{

/** Which inter-arrival process generates request timestamps. */
enum class ArrivalKind
{
    Poisson,
    Uniform,
    Bursty,
};

/** Spec-grammar name ("poisson"/"uniform"/"bursty"). */
const char *arrivalKindName(ArrivalKind kind);

/** Inverse of arrivalKindName(); fatal() on unknown names. */
ArrivalKind arrivalKindFromName(const std::string &name);

/** Shape of the open-loop request stream. */
struct ArrivalConfig
{
    ArrivalKind kind = ArrivalKind::Poisson;
    /** Long-run mean request rate, requests/second. Must be a
     *  positive, finite number: rate=0 would divide every
     *  inter-arrival gap by zero. */
    double rate = 1.0e6;
    /** Bursty only: on-phase rate multiplier (>= 1). */
    double burst_x = 8.0;
    /** Bursty only: on-phase length, microseconds (> 0). Spec-facing
     *  durations are stored in the unit they are typed in so the spec
     *  grammar round-trips exactly. */
    double burst_on_us = 500.0;
    /** Bursty only: off-phase length, microseconds (> 0). */
    double burst_off_us = 4500.0;

    /**
     * Human-readable reason this config is invalid, or "" when it is
     * fine (same contract as WorkloadConfig::validationError). Checks
     * the rate and, for bursty, that the off-phase rate implied by the
     * mean-preserving modulation is non-negative
     * (burst_x * burst_on_us <= burst_on_us + burst_off_us).
     */
    std::string validationError() const;
};

/** Deterministic generator of absolute arrival times. */
class ArrivalProcess
{
  public:
    /** fatal() when `config` fails validationError(). */
    ArrivalProcess(const ArrivalConfig &config, uint64_t seed);

    /** Absolute time of the next arrival (nondecreasing, finite). */
    double next();

    /** Time of the most recently emitted arrival (0 before any). */
    double now() const { return now_; }

  private:
    /** One draw in (0, 1] -- clamped away from 0, see file comment. */
    double uniformDraw();

    ArrivalConfig config_;
    uint64_t state_;
    double now_ = 0.0;
    /** Bursty: phase lengths in seconds, derived once. */
    double on_seconds_ = 0.0;
    double off_seconds_ = 0.0;
    /** Bursty: derived off-phase rate keeping the long-run mean. */
    double off_rate_ = 0.0;
};

} // namespace sp::data

#endif // SP_DATA_ARRIVAL_H
