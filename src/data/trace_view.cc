#include "data/trace_view.h"

#include <cerrno>
#include <cstring>

#include "common/fault.h"
#include "common/logging.h"
#include "common/status.h"
#include "data/trace_format.h"

#if defined(__unix__) || defined(__APPLE__)
#define SP_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace sp::data
{

bool
TraceView::supported()
{
#ifdef SP_HAVE_MMAP
    return true;
#else
    return false;
#endif
}

std::shared_ptr<TraceView>
TraceView::open(const std::string &path)
{
#ifdef SP_HAVE_MMAP
    const int fd = ::open(path.c_str(), O_RDONLY);
    failIf(fd < 0,
           errno == ENOENT ? ErrorCode::NotFound : ErrorCode::IoError,
           "cannot open '", path, "' for mapping");

    struct stat st = {};
    if (::fstat(fd, &st) != 0) {
        ::close(fd);
        failWith(ErrorCode::IoError, "cannot stat '", path, "'");
    }
    const uint64_t size = static_cast<uint64_t>(st.st_size);
    void *mapping = MAP_FAILED;
    try {
        SP_FAULT_POINT("trace_view.mmap");
        mapping = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    } catch (...) {
        // An injected mmap fault must not leak the descriptor.
        ::close(fd);
        throw;
    }
    // The mapping outlives the descriptor.
    ::close(fd);
    failIf(mapping == MAP_FAILED, ErrorCode::IoError, "mmap of '",
           path, "' (", size, " bytes) failed");

    // From here the mapping must be released on any validation
    // failure; shared_ptr + ~TraceView handles both paths.
    std::shared_ptr<TraceView> view(new TraceView());
    view->path_ = path;
    view->data_ = static_cast<const unsigned char *>(mapping);
    view->size_ = size;

    const format::TraceFileHeader header =
        format::parseHeader(view->data_, size, path);
    format::validateHeader(header, size, path);
    view->config_ = header.config;
    view->num_batches_ = header.num_batches;
    // validateHeader proved the batch count against the file size;
    // re-derive the size from the offset arithmetic ids() will use,
    // so the validator and the accessors can never drift apart (every
    // span served below is inside the mapping iff this holds).
    SP_ASSERT(format::headerBytes(view->config_) +
                      header.num_batches *
                          format::batchRecordBytes(view->config_) ==
                  size,
              "trace '", path, "': accessor arithmetic disagrees with "
              "the validated file size ", size);
    return view;
#else
    failWith(ErrorCode::Unsupported, "cannot map '", path,
             "': no mmap support on this platform (use the eager "
             "TraceDataset::load)");
#endif
}

sp::Result<std::shared_ptr<TraceView>>
TraceView::tryOpen(const std::string &path)
{
    try {
        return TraceView::open(path);
    } catch (const StatusError &e) {
        return e.status();
    } catch (const FatalError &e) {
        return Status::error(ErrorCode::IoError, e.what());
    }
}

TraceView::~TraceView()
{
#ifdef SP_HAVE_MMAP
    if (data_ != nullptr)
        ::munmap(const_cast<unsigned char *>(data_), size_);
#endif
}

uint64_t
TraceView::batchIndex(uint64_t b) const
{
    // splint:allow(io-status): caller-bug bounds check, not I/O
    panicIf(b >= num_batches_, "batch index ", b, " out of range (",
            num_batches_, " batches in '", path_, "')");
    uint64_t index = 0;
    std::memcpy(&index,
                data_ + format::headerBytes(config_) +
                    b * format::batchRecordBytes(config_),
                sizeof(index));
    return index;
}

std::span<const uint64_t>
TraceView::ids(uint64_t b, uint64_t t) const
{
    // splint:allow(io-status): caller-bug bounds check, not I/O
    panicIf(b >= num_batches_, "batch index ", b, " out of range (",
            num_batches_, " batches in '", path_, "')");
    // splint:allow(io-status): caller-bug bounds check, not I/O
    panicIf(t >= config_.num_tables, "table index ", t,
            " out of range (", config_.num_tables, " tables in '",
            path_, "')");
    // The ID payload is 8-aligned by the format's construction (see
    // trace_format.h), so the reinterpret_cast is well-defined here.
    SP_ASSERT(format::idsOffset(config_, b, t) +
                      config_.idsPerTable() * sizeof(uint64_t) <=
                  size_,
              "ids span of batch ", b, " table ", t, " overruns '",
              path_, "' (", size_, " bytes)");
    const unsigned char *base = data_ + format::idsOffset(config_, b, t);
    return {reinterpret_cast<const uint64_t *>(base),
            config_.idsPerTable()};
}

} // namespace sp::data
