/**
 * @file
 * Zipf-distributed row-ID sampling.
 *
 * RecSys embedding-table accesses follow a power law (paper Fig. 3);
 * the paper's own evaluation generates synthetic traces from PDFs fit
 * to real datasets (Section V). ZipfSampler draws rank-distributed IDs
 * with P(rank k) proportional to 1/k^s over k in [1, n] using Hormann &
 * Derflinger rejection-inversion, which is O(1) per sample for any n
 * (we need n = 10^7 rows). Exponent 0 degenerates to uniform.
 *
 * Returned IDs are zero-based ranks: ID 0 is the hottest row. A
 * separate optional permutation (see trace.h) breaks the rank==ID
 * identity when realism matters; the identity mapping makes the
 * static top-N cache of Yin et al. a simple threshold test.
 */

#ifndef SP_DATA_ZIPF_H
#define SP_DATA_ZIPF_H

#include <cstdint>

#include "tensor/rng.h"

namespace sp::data
{

/** O(1)-per-sample Zipf(n, s) sampler (rejection-inversion). */
class ZipfSampler
{
  public:
    /**
     * @param n Number of elements (ranks 0..n-1).
     * @param exponent Zipf exponent s >= 0; 0 means uniform.
     */
    ZipfSampler(uint64_t n, double exponent);

    /** Draw a zero-based rank using the supplied generator. */
    uint64_t sample(tensor::Rng &rng);

    uint64_t numElements() const { return n_; }
    double exponent() const { return exponent_; }

    /**
     * Exact probability of rank k (zero-based) under this
     * distribution. O(n) the first call (computes the normaliser),
     * O(1) afterwards.
     */
    double probability(uint64_t k);

  private:
    double hIntegral(double x) const;
    double h(double x) const;
    double hIntegralInverse(double x) const;

    uint64_t n_;
    double exponent_;
    double h_integral_x1_ = 0.0;
    double h_integral_n_ = 0.0;
    double s_ = 0.0;
    double normalizer_ = 0.0; // lazily computed generalized harmonic number
};

/**
 * Exact generalized harmonic number H(n, s) = sum_{k=1..n} k^-s.
 * O(n); used to derive locality anchor points analytically.
 */
double generalizedHarmonic(uint64_t n, double s);

/**
 * Fraction of total access probability captured by the hottest
 * `top_fraction` of n ranks under Zipf(n, s). Exact (O(n)).
 */
double zipfTopCoverage(uint64_t n, double s, double top_fraction);

} // namespace sp::data

#endif // SP_DATA_ZIPF_H
