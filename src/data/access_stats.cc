#include "data/access_stats.h"

#include <algorithm>
#include <numeric>

#include "common/logging.h"

namespace sp::data
{

AccessStats::AccessStats(size_t num_tables, uint64_t rows_per_table)
    : rows_per_table_(rows_per_table)
{
    fatalIf(num_tables == 0, "AccessStats needs at least one table");
    counts_.resize(num_tables);
    for (auto &c : counts_)
        c.assign(rows_per_table, 0);
}

void
AccessStats::addBatch(const MiniBatch &batch)
{
    // splint:allow(io-status): internal invariant, a bug not I/O
    panicIf(batch.numTables() != counts_.size(),
            "batch has ", batch.numTables(), " tables, stats track ",
            counts_.size());
    for (size_t t = 0; t < counts_.size(); ++t) {
        auto &table_counts = counts_[t];
        for (uint64_t id : batch.ids(t)) {
            // splint:allow(io-status): internal invariant, a bug not I/O
            panicIf(id >= rows_per_table_, "ID ", id,
                    " out of range for table with ", rows_per_table_,
                    " rows");
            ++table_counts[id];
        }
    }
}

void
AccessStats::addDataset(const TraceDataset &dataset)
{
    for (uint64_t b = 0; b < dataset.numBatches(); ++b)
        addBatch(dataset.batch(b));
}

uint64_t
AccessStats::totalAccesses(size_t table) const
{
    // splint:allow(io-status): internal invariant, a bug not I/O
    panicIf(table >= counts_.size(), "table index out of range");
    return std::accumulate(counts_[table].begin(), counts_[table].end(),
                           uint64_t{0});
}

const std::vector<uint64_t> &
AccessStats::counts(size_t table) const
{
    // splint:allow(io-status): internal invariant, a bug not I/O
    panicIf(table >= counts_.size(), "table index out of range");
    return counts_[table];
}

std::vector<uint64_t>
AccessStats::sortedCounts(size_t table) const
{
    std::vector<uint64_t> sorted = counts(table);
    std::sort(sorted.begin(), sorted.end(), std::greater<>());
    return sorted;
}

double
AccessStats::coverage(size_t table, double top_fraction) const
{
    fatalIf(top_fraction < 0.0 || top_fraction > 1.0,
            "top_fraction must be in [0,1], got ", top_fraction);
    const auto sorted = sortedCounts(table);
    const uint64_t total = totalAccesses(table);
    if (total == 0)
        return 0.0;
    const size_t top = static_cast<size_t>(
        top_fraction * static_cast<double>(sorted.size()));
    uint64_t captured = 0;
    for (size_t i = 0; i < top; ++i)
        captured += sorted[i];
    return static_cast<double>(captured) / static_cast<double>(total);
}

std::vector<uint64_t>
AccessStats::rankedRows(size_t table) const
{
    const auto &table_counts = counts(table);
    std::vector<uint64_t> order(table_counts.size());
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(),
                     [&table_counts](uint64_t a, uint64_t b) {
                         return table_counts[a] > table_counts[b];
                     });
    return order;
}

uint64_t
AccessStats::uniqueRows(size_t table) const
{
    const auto &table_counts = counts(table);
    return static_cast<uint64_t>(
        std::count_if(table_counts.begin(), table_counts.end(),
                      [](uint64_t c) { return c > 0; }));
}

} // namespace sp::data
