#include "data/trace_format.h"

#include <cstring>
#include <istream>
#include <ostream>

#include "common/status.h"

namespace sp::data::format
{

namespace
{

// Sanity bounds on header fields. They reject garbage from corrupt or
// hostile files before any allocation happens, and they keep the
// record-size products far below uint64_t overflow (the caps multiply
// out to < 2^52 bytes per record).
constexpr uint64_t kMaxTables = 1u << 16;
constexpr uint64_t kMaxBatchSize = 1u << 24;
constexpr uint64_t kMaxLookups = 1u << 20;
constexpr uint64_t kMaxDenseFeatures = 1u << 20;

template <typename T>
void
writePod(std::ostream &os, const T &value)
{
    os.write(reinterpret_cast<const char *>(&value), sizeof(T));
}

/** Sequential reader over either a stream or a memory range, so the
 *  two header parsers share one field order. */
class Cursor
{
  public:
    explicit Cursor(std::istream &is, const std::string &path)
        : is_(&is), path_(path)
    {
    }
    Cursor(const unsigned char *data, uint64_t size,
           const std::string &path)
        : data_(data), size_(size), path_(path)
    {
    }

    template <typename T>
    T
    next()
    {
        T value{};
        if (is_ != nullptr) {
            is_->read(reinterpret_cast<char *>(&value), sizeof(T));
            failIf(!*is_, ErrorCode::Truncated, "'", path_,
                   "' is truncated inside the trace header");
        } else {
            failIf(offset_ + sizeof(T) > size_, ErrorCode::Truncated,
                   "'", path_,
                   "' is truncated inside the trace header");
            std::memcpy(&value, data_ + offset_, sizeof(T));
            offset_ += sizeof(T);
        }
        return value;
    }

  private:
    std::istream *is_ = nullptr;
    const unsigned char *data_ = nullptr;
    uint64_t size_ = 0;
    uint64_t offset_ = 0;
    const std::string &path_;
};

TraceFileHeader
readHeaderFields(Cursor &cursor, const std::string &path)
{
    const uint64_t magic = cursor.next<uint64_t>();
    const uint32_t version = cursor.next<uint32_t>();
    failIf(magic != kMagic, ErrorCode::Corrupt, "'", path,
           "' is not a ScratchPipe trace");
    failIf(version != kTraceFormatVersion, ErrorCode::VersionMismatch,
           "'", path,
           "' has unsupported trace version ", version, " (expected ",
           kTraceFormatVersion,
            "); regenerate the trace -- pre-v3 files stored truncated "
            "32-bit IDs and did not record every generator field");
    cursor.next<uint32_t>(); // alignment pad

    TraceFileHeader header;
    TraceConfig &config = header.config;
    config.num_tables = cursor.next<uint64_t>();
    config.rows_per_table = cursor.next<uint64_t>();
    config.lookups_per_table = cursor.next<uint64_t>();
    config.batch_size = cursor.next<uint64_t>();
    const uint64_t locality = cursor.next<uint64_t>();
    failIf(locality > static_cast<uint64_t>(Locality::High),
           ErrorCode::Corrupt, "'", path,
           "' names unknown locality preset ", locality);
    config.locality = static_cast<Locality>(locality);
    config.seed = cursor.next<uint64_t>();
    config.dense_features = cursor.next<uint64_t>();
    config.workload.drift_amp = cursor.next<double>();
    config.workload.drift_period = cursor.next<uint64_t>();
    config.workload.churn_k = cursor.next<uint64_t>();
    config.workload.churn_period = cursor.next<uint64_t>();
    config.workload.burst_frac = cursor.next<double>();
    config.workload.burst_period = cursor.next<uint64_t>();
    config.workload.burst_len = cursor.next<uint64_t>();
    config.workload.burst_ranks = cursor.next<uint64_t>();
    config.workload.phase = cursor.next<uint64_t>();
    const uint64_t num_exponents = cursor.next<uint64_t>();
    failIf(num_exponents != 0 && num_exponents != config.num_tables,
           ErrorCode::Corrupt, "'", path, "' has ", num_exponents,
           " per-table exponents for ", config.num_tables, " tables");
    failIf(num_exponents > kMaxTables, ErrorCode::Corrupt, "'", path,
           "' header is implausible (", num_exponents, " exponents)");
    config.per_table_exponents.resize(num_exponents);
    for (uint64_t t = 0; t < num_exponents; ++t)
        config.per_table_exponents[t] = cursor.next<double>();
    header.num_batches = cursor.next<uint64_t>();
    return header;
}

} // namespace

uint64_t
headerBytes(const TraceConfig &config)
{
    // magic + version + pad, seven geometry u64s, the nine-word
    // workload block, num_exponents + num_batches, plus the optional
    // exponent block.
    return 8 + 4 + 4 + 8 * 18 +
           8 * static_cast<uint64_t>(config.per_table_exponents.size());
}

uint64_t
batchRecordBytes(const TraceConfig &config)
{
    return 8 + sizeof(uint64_t) *
                   static_cast<uint64_t>(config.num_tables) *
                   static_cast<uint64_t>(config.idsPerTable());
}

uint64_t
idsOffset(const TraceConfig &config, uint64_t b, uint64_t t)
{
    return headerBytes(config) + b * batchRecordBytes(config) + 8 +
           t * sizeof(uint64_t) *
               static_cast<uint64_t>(config.idsPerTable());
}

void
writeHeader(std::ostream &os, const TraceConfig &config,
            uint64_t num_batches)
{
    writePod(os, kMagic);
    writePod(os, kTraceFormatVersion);
    writePod(os, uint32_t{0}); // alignment pad
    writePod(os, static_cast<uint64_t>(config.num_tables));
    writePod(os, config.rows_per_table);
    writePod(os, static_cast<uint64_t>(config.lookups_per_table));
    writePod(os, static_cast<uint64_t>(config.batch_size));
    writePod(os, static_cast<uint64_t>(config.locality));
    writePod(os, config.seed);
    writePod(os, static_cast<uint64_t>(config.dense_features));
    writePod(os, config.workload.drift_amp);
    writePod(os, config.workload.drift_period);
    writePod(os, config.workload.churn_k);
    writePod(os, config.workload.churn_period);
    writePod(os, config.workload.burst_frac);
    writePod(os, config.workload.burst_period);
    writePod(os, config.workload.burst_len);
    writePod(os, config.workload.burst_ranks);
    writePod(os, config.workload.phase);
    writePod(os,
             static_cast<uint64_t>(config.per_table_exponents.size()));
    for (const double exponent : config.per_table_exponents)
        writePod(os, exponent);
    writePod(os, num_batches);
}

TraceFileHeader
readHeader(std::istream &is, const std::string &path)
{
    Cursor cursor(is, path);
    return readHeaderFields(cursor, path);
}

TraceFileHeader
parseHeader(const unsigned char *data, uint64_t size,
            const std::string &path)
{
    Cursor cursor(data, size, path);
    return readHeaderFields(cursor, path);
}

void
validateHeader(const TraceFileHeader &header, uint64_t file_bytes,
               const std::string &path)
{
    const TraceConfig &config = header.config;
    failIf(config.num_tables == 0 || config.num_tables > kMaxTables,
           ErrorCode::Corrupt,
           "'", path, "' header is implausible (", config.num_tables,
           " tables)");
    failIf(config.rows_per_table == 0, ErrorCode::Corrupt, "'", path,
           "' header is implausible (zero rows per table)");
    failIf(config.batch_size == 0 || config.batch_size > kMaxBatchSize,
           ErrorCode::Corrupt,
           "'", path, "' header is implausible (batch size ",
           config.batch_size, ")");
    failIf(config.lookups_per_table == 0 ||
               config.lookups_per_table > kMaxLookups,
           ErrorCode::Corrupt, "'", path, "' header is implausible (",
           config.lookups_per_table, " lookups per table)");
    failIf(config.dense_features > kMaxDenseFeatures, ErrorCode::Corrupt,
           "'", path, "' header is implausible (", config.dense_features,
           " dense features)");
    failIf(header.num_batches == 0, ErrorCode::Corrupt, "'", path,
           "' holds no batches");
    const std::string workload_error =
        config.workload.validationError(config.rows_per_table);
    failIf(!workload_error.empty(), ErrorCode::Corrupt, "'", path,
           "' has an impossible workload block: ", workload_error);

    // Divide instead of multiplying record size by the (untrusted)
    // batch count, so an absurd count cannot overflow the check.
    const uint64_t header_bytes = headerBytes(config);
    const uint64_t record_bytes = batchRecordBytes(config);
    const uint64_t payload =
        file_bytes >= header_bytes ? file_bytes - header_bytes : 0;
    failIf(file_bytes < header_bytes ||
               payload % record_bytes != 0 ||
               payload / record_bytes != header.num_batches,
           ErrorCode::Truncated,
           "'", path, "' is ", file_bytes, " bytes but its header "
           "describes ", header.num_batches, " batches of ",
           record_bytes, " bytes; the file is truncated or corrupt");
}

} // namespace sp::data::format
