/**
 * @file
 * Locality presets for synthetic embedding-access traces.
 *
 * The paper evaluates four benchmarks -- Random, Low, Medium, High --
 * generated from PDFs fit to real datasets (Section V):
 *
 *  - Random: uniform access (no locality), the stress floor.
 *  - Low:    Alibaba User-table-like; top 2% of rows capture only
 *            ~8.5% of accesses.
 *  - Medium: MovieLens / Kaggle-Anime-like; intermediate skew.
 *  - High:   Criteo-like; top 2% of rows capture >80% of accesses.
 *
 * We realise each preset as a Zipf exponent chosen so the exact
 * top-2% coverage at the paper's table size (10M rows) matches the
 * quoted anchor. zipfTopCoverage() in zipf.h verifies this analytically
 * (see tests/data).
 */

#ifndef SP_DATA_LOCALITY_H
#define SP_DATA_LOCALITY_H

#include <array>
#include <cstdint>
#include <string>

namespace sp::data
{

/** The paper's four trace-locality classes. */
enum class Locality
{
    Random,
    Low,
    Medium,
    High,
};

/** All presets in the paper's presentation order. */
inline constexpr std::array<Locality, 4> kAllLocalities = {
    Locality::Random, Locality::Low, Locality::Medium, Locality::High};

/** Zipf exponent realising the preset (0 for Random). */
double zipfExponent(Locality locality);

/** Human-readable preset name ("Random", "Low", ...). */
const char *localityName(Locality locality);

/** Parse a preset name (case-insensitive); fatal() on unknown names. */
Locality localityFromName(const std::string &name);

/**
 * Paper-quoted anchor: fraction of accesses captured by the hottest 2%
 * of rows for this preset (at 10M rows). Used by calibration tests.
 */
double expectedTop2PercentCoverage(Locality locality);

} // namespace sp::data

#endif // SP_DATA_LOCALITY_H
