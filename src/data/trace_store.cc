#include "data/trace_store.h"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <random>
#include <system_error>
#include <thread>

#include "common/fault.h"
#include "common/logging.h"
#include "common/status.h"
#include "data/trace_format.h"
#include "data/trace_view.h"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace sp::data
{

namespace fs = std::filesystem;

namespace
{

std::atomic<bool> g_cache_enabled{false};

const char *
cacheEnv()
{
    return std::getenv("SP_TRACE_CACHE");
}

bool
envDisablesCache()
{
    const char *value = cacheEnv();
    if (value == nullptr)
        return false;
    const std::string text(value);
    return text == "0" || text == "off" || text == "none";
}

std::string
defaultDirectory()
{
    const char *value = cacheEnv();
    if (value != nullptr && *value != '\0' && !envDisablesCache())
        return value;
    return ".sp-trace-cache";
}

/** Process- and call-unique temp suffix so concurrent publishers of
 *  one fingerprint never collide before their atomic rename. The
 *  random token keeps processes distinct even where getpid is
 *  unavailable. */
std::string
tempSuffix()
{
    static std::atomic<uint64_t> sequence{0};
    // The entropy below only names a temp file (uniqueness across
    // racing publishers); trace *content* stays a pure function of
    // the config fingerprint, so determinism is not at stake.
    static const uint64_t token =
        // splint:allow(no-nondeterminism): temp-file naming only
        (static_cast<uint64_t>(std::random_device{}()) << 32) ^
        // splint:allow(no-nondeterminism): temp-file naming only
        std::random_device{}();
#if defined(__unix__) || defined(__APPLE__)
    const uint64_t pid = static_cast<uint64_t>(::getpid());
#else
    const uint64_t pid = token & 0xffff;
#endif
    return ".tmp." + std::to_string(pid) + "." +
           std::to_string(token % 1000000) + "." +
           std::to_string(sequence.fetch_add(1));
}

/**
 * Cheap header peek: does the current entry at `path` already hold a
 * valid trace for `config` covering at least `num_batches`? Used to
 * avoid replacing a longer published entry with a shorter one when
 * publishers race with different batch counts (the shorter file would
 * silently defeat every later warm start).
 */
/** Rename attempts per publish (first try + retries with backoff). */
constexpr int kRenameAttempts = 3;

/** Removes the publish temp file on every failure path; commit()
 *  after a successful rename keeps the (now nonexistent) temp name
 *  from being unlinked needlessly. Being RAII it also covers exits
 *  publish() never anticipated -- a bad_alloc, an injected fault. */
class TempFileGuard
{
  public:
    explicit TempFileGuard(std::string path) : path_(std::move(path)) {}

    ~TempFileGuard()
    {
        if (committed_)
            return;
        std::error_code ec;
        fs::remove(path_, ec);
    }

    TempFileGuard(const TempFileGuard &) = delete;
    TempFileGuard &operator=(const TempFileGuard &) = delete;

    void
    commit()
    {
        committed_ = true;
    }

  private:
    std::string path_;
    bool committed_ = false;
};

bool
entryCovers(const TraceConfig &config, uint64_t num_batches,
            const std::string &path)
{
    try {
        std::ifstream is(path, std::ios::binary);
        if (!is)
            return false;
        const format::TraceFileHeader header =
            format::readHeader(is, path);
        is.seekg(0, std::ios::end);
        format::validateHeader(
            header, static_cast<uint64_t>(is.tellg()), path);
        return header.config == config &&
               header.num_batches >= num_batches;
    } catch (const FatalError &) {
        return false;
    }
}

} // namespace

TraceStore::TraceStore() : TraceStore(Options{}) {}

TraceStore::TraceStore(const Options &options)
    : directory_(options.directory.empty() ? defaultDirectory()
                                           : options.directory),
      use_mmap_(options.use_mmap)
{
}

std::string
TraceStore::entryPath(const TraceConfig &config) const
{
    return (fs::path(directory_) / (config.fingerprint() + ".sptrace"))
        .string();
}

std::optional<TraceDataset>
TraceStore::tryLoad(const TraceConfig &config, uint64_t num_batches,
                    const std::string &path, bool *mapped,
                    sp::Status *load_status) const
{
    std::error_code ec;
    if (!fs::exists(path, ec) || ec)
        return std::nullopt;
    try {
        SP_FAULT_POINT("trace_store.load");
        const bool use_view = use_mmap_ && TraceView::supported();
        TraceDataset dataset = use_view
                                   ? TraceDataset::mapped(path,
                                                          num_batches)
                                   : TraceDataset::load(path,
                                                        num_batches);
        // Poison guard: the fingerprint addressed the file, but the
        // *full* config must match field-by-field -- a hash collision
        // or a stale hand-edited entry must read as a miss, never as
        // silently wrong IDs.
        if (!(dataset.config() == config)) {
            *load_status = Status::error(
                ErrorCode::Corrupt,
                "'" + path + "' holds a different config than its "
                "fingerprint promises");
            return std::nullopt;
        }
        // A shorter entry cannot serve this request; regenerate.
        if (dataset.numBatches() < num_batches) {
            *load_status = Status::error(
                ErrorCode::Truncated,
                "'" + path + "' holds fewer batches than requested");
            return std::nullopt;
        }
        *mapped = use_view;
        return dataset;
    } catch (const StatusError &error) {
        // Truncated/corrupt/unmappable entry: treat as a classified
        // miss; the caller regenerates and republishes over it.
        *load_status = error.status();
        return std::nullopt;
    } catch (const FatalError &error) {
        *load_status = Status::error(ErrorCode::IoError, error.what());
        return std::nullopt;
    }
}

sp::Status
TraceStore::publish(const TraceDataset &dataset,
                    const std::string &path) const
{
    const std::string tmp = path + tempSuffix();
    TempFileGuard guard(tmp);
    sp::Status status;
    try {
        std::error_code ec;
        fs::create_directories(directory_, ec);
        if (ec) {
            status = Status::error(
                ErrorCode::IoError, "cannot create trace cache "
                "directory '" + directory_ + "': " + ec.message());
        } else {
            SP_FAULT_POINT("trace_store.publish.save");
            status = dataset.saveTo(tmp);
        }
        // Atomic publication: rename() replaces any existing entry in
        // one step, so concurrent readers see the old file or the new
        // one, never a torn write. A failed rename may be a transient
        // race (e.g. the target directory being recreated, NFS
        // blips), so it gets a bounded retry with backoff before the
        // run degrades to uncached.
        for (int attempt = 0; status.ok(); ++attempt) {
            try {
                SP_FAULT_POINT("trace_store.publish.rename");
                fs::rename(tmp, path, ec);
            } catch (const common::fault::FaultInjectedError &e) {
                ec = std::make_error_code(std::errc::io_error);
                status = e.status();
            }
            if (!ec) {
                guard.commit();
                return sp::Status();
            }
            if (attempt + 1 >= kRenameAttempts) {
                if (status.ok())
                    status = Status::error(
                        ErrorCode::IoError, "cannot publish trace "
                        "cache entry '" + path + "': " + ec.message());
                break;
            }
            status = sp::Status();
            std::this_thread::sleep_for(
                std::chrono::milliseconds(1 << attempt));
        }
    } catch (const StatusError &error) {
        status = error.status();
    } catch (const FatalError &error) {
        status = Status::error(ErrorCode::IoError, error.what());
    }
    // Cache trouble (read-only directory, disk full) must not kill
    // the run -- the dataset is already in memory. Leave a loud (but
    // rate-limited: sweeps retry per spec) hint and carry on
    // uncached; the guard unlinks the temp file on this path.
    warnRateLimited("trace_store.publish",
                    "trace cache publication failed (" +
                        status.toString() + "); continuing uncached");
    return status;
}

TraceDataset
TraceStore::acquire(const TraceConfig &config, uint64_t num_batches,
                    AcquireInfo *info) const
{
    fatalIf(num_batches == 0, "dataset needs at least one batch");
    const std::string path = entryPath(config);

    bool mapped = false;
    sp::Status load_status;
    if (auto cached =
            tryLoad(config, num_batches, path, &mapped, &load_status)) {
        if (info != nullptr) {
            *info = AcquireInfo();
            info->cache_hit = true;
            info->mapped = mapped;
        }
        return std::move(*cached);
    }

    TraceDataset fresh(config, num_batches);
    // While we generated, a racing publisher may have landed an entry
    // that already covers this request (possibly with *more* batches
    // than ours); renaming over it would shrink the cache for every
    // later consumer, so re-peek and only publish when ours improves
    // on what's there. A longer entry landing inside the tiny
    // check-to-rename window can still be clobbered -- without file
    // locks that race is irreducible -- but the next longer request
    // simply regenerates and heals the entry.
    sp::Status publish_status;
    bool published = false;
    if (!entryCovers(config, num_batches, path)) {
        publish_status = publish(fresh, path);
        published = publish_status.ok();
    }
    if (info != nullptr) {
        *info = AcquireInfo();
        info->published = published;
        info->load_status = load_status;
        info->publish_status = publish_status;
    }
    return fresh;
}

void
TraceStore::setCacheEnabled(bool enabled)
{
    g_cache_enabled.store(enabled, std::memory_order_relaxed);
}

bool
TraceStore::cacheEnabled()
{
    return g_cache_enabled.load(std::memory_order_relaxed) &&
           !envDisablesCache();
}

} // namespace sp::data
