/**
 * @file
 * Materialised training dataset with look-ahead.
 *
 * TraceDataset owns a window of pre-generated mini-batches and exposes
 * the capability the paper builds on: any consumer may inspect not only
 * the current mini-batch's sparse IDs but those of *future* batches
 * (the dataset is recorded ahead of time). The ScratchPipe [Plan] stage
 * uses lookAhead() to build its future window; the baseline systems
 * simply iterate.
 *
 * Datasets can be saved to and loaded from a compact binary format so
 * experiments can be re-run on the exact same trace (trace_format.h).
 * Two load paths exist: load() eagerly deserialises into owned
 * vectors, while mapped() wraps an mmap'd TraceView and serves every
 * batch zero-copy out of the file mapping -- the warm-start path the
 * content-addressed TraceStore prefers.
 */

#ifndef SP_DATA_DATASET_H
#define SP_DATA_DATASET_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "data/trace.h"
#include "data/trace_view.h"

namespace sp::data
{

/** A fixed-length, fully materialised trace of mini-batches. */
class TraceDataset
{
  public:
    /** Generate `num_batches` mini-batches from `config`. */
    TraceDataset(const TraceConfig &config, uint64_t num_batches);

    /** Construct from pre-built batches (used by the loader). */
    TraceDataset(const TraceConfig &config,
                 std::vector<MiniBatch> batches);

    /**
     * Serve batches zero-copy from an opened view. With `max_batches`
     * != 0 only the first min(max_batches, view batches) batches are
     * exposed (a longer cached trace serves any prefix).
     */
    explicit TraceDataset(std::shared_ptr<TraceView> view,
                          uint64_t max_batches = 0);

    const TraceConfig &config() const { return config_; }
    uint64_t numBatches() const { return batches_.size(); }

    /** The mini-batch at position `index` (0-based). */
    const MiniBatch &batch(uint64_t index) const;

    /**
     * Look-ahead access: the mini-batch `distance` iterations after
     * `index`, or nullptr when that runs past the end of the trace.
     * distance 0 is the batch itself.
     */
    const MiniBatch *lookAhead(uint64_t index, uint64_t distance) const;

    /** Dense features for batch `index` (functional runs). */
    tensor::Matrix denseFeatures(uint64_t index) const;

    /** Labels for batch `index` (functional runs). */
    tensor::Matrix labels(uint64_t index) const;

    /**
     * Serialise to a binary file. Environmental failures -- including
     * short writes only detected at the final flush/close, which must
     * never publish a silently truncated file -- come back as a
     * classified Status (NoSpace when the disk filled, IoError
     * otherwise). Never throws for I/O trouble.
     */
    sp::Status saveTo(const std::string &path) const;

    /** saveTo(), but throwing StatusError on failure (legacy callers). */
    void save(const std::string &path) const;

    /**
     * Eagerly load a dataset previously written by save(). With
     * `max_batches` != 0, stop after that many batches (prefix load).
     * Throws StatusError classifying the failure (NotFound/Truncated/
     * Corrupt/VersionMismatch/IoError).
     */
    static TraceDataset load(const std::string &path,
                             uint64_t max_batches = 0);

    /** load() with the failure as a Result instead of an exception. */
    static sp::Result<TraceDataset> tryLoad(const std::string &path,
                                            uint64_t max_batches = 0);

    /**
     * mmap-backed load: batches are served straight from the file
     * mapping (see TraceView). Throws StatusError where load() would,
     * and with code Unsupported when the platform has no mmap --
     * callers wanting a fallback check TraceView::supported() first.
     */
    static TraceDataset mapped(const std::string &path,
                               uint64_t max_batches = 0);

    /** mapped() with the failure as a Result instead of an exception. */
    static sp::Result<TraceDataset> tryMapped(const std::string &path,
                                              uint64_t max_batches = 0);

    /**
     * Replay adapter: ingest an externally recorded trace file whose
     * embedded config drives the run (mmap-backed when the platform
     * supports it, eager otherwise). Throws StatusError classifying
     * the failure exactly like load()/mapped().
     */
    static TraceDataset replay(const std::string &path,
                               uint64_t max_batches = 0);

    /** replay() with the failure as a Result instead of an exception. */
    static sp::Result<TraceDataset> tryReplay(const std::string &path,
                                              uint64_t max_batches = 0);

    /** True when batches are served from an mmap'd view. */
    bool isMapped() const { return view_ != nullptr; }

  private:
    TraceConfig config_;
    TraceGenerator generator_;
    std::vector<MiniBatch> batches_;
    // Keeps the mapping alive for view-backed batches; shared so the
    // dataset stays movable/copyable.
    std::shared_ptr<TraceView> view_;
};

} // namespace sp::data

#endif // SP_DATA_DATASET_H
