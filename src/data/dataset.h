/**
 * @file
 * Materialised training dataset with look-ahead.
 *
 * TraceDataset owns a window of pre-generated mini-batches and exposes
 * the capability the paper builds on: any consumer may inspect not only
 * the current mini-batch's sparse IDs but those of *future* batches
 * (the dataset is recorded ahead of time). The ScratchPipe [Plan] stage
 * uses lookAhead() to build its future window; the baseline systems
 * simply iterate.
 *
 * Datasets can be saved to and loaded from a compact binary format so
 * experiments can be re-run on the exact same trace.
 */

#ifndef SP_DATA_DATASET_H
#define SP_DATA_DATASET_H

#include <cstdint>
#include <string>
#include <vector>

#include "data/trace.h"

namespace sp::data
{

/** A fixed-length, fully materialised trace of mini-batches. */
class TraceDataset
{
  public:
    /** Generate `num_batches` mini-batches from `config`. */
    TraceDataset(const TraceConfig &config, uint64_t num_batches);

    /** Construct from pre-built batches (used by the loader). */
    TraceDataset(const TraceConfig &config,
                 std::vector<MiniBatch> batches);

    const TraceConfig &config() const { return config_; }
    uint64_t numBatches() const { return batches_.size(); }

    /** The mini-batch at position `index` (0-based). */
    const MiniBatch &batch(uint64_t index) const;

    /**
     * Look-ahead access: the mini-batch `distance` iterations after
     * `index`, or nullptr when that runs past the end of the trace.
     * distance 0 is the batch itself.
     */
    const MiniBatch *lookAhead(uint64_t index, uint64_t distance) const;

    /** Dense features for batch `index` (functional runs). */
    tensor::Matrix denseFeatures(uint64_t index) const;

    /** Labels for batch `index` (functional runs). */
    tensor::Matrix labels(uint64_t index) const;

    /** Serialise to a binary file; fatal() on I/O errors. */
    void save(const std::string &path) const;

    /** Load a dataset previously written by save(). */
    static TraceDataset load(const std::string &path);

  private:
    TraceConfig config_;
    TraceGenerator generator_;
    std::vector<MiniBatch> batches_;
};

} // namespace sp::data

#endif // SP_DATA_DATASET_H
