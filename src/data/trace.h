/**
 * @file
 * Synthetic training-trace generation.
 *
 * A trace is the stream of sparse-feature IDs that the training dataset
 * records for every mini-batch -- the paper's central observation is
 * that this stream is known ahead of time, so a runtime can look
 * *forward* through it. TraceGenerator materialises mini-batches of
 * per-table embedding-row IDs drawn from the locality presets, plus the
 * dense features and labels needed for functional (real-float) training
 * runs.
 *
 * Generation is deterministic per (seed, table, batch index): batch k
 * has identical contents no matter in which order batches are produced,
 * which the look-ahead machinery in dataset.h relies on.
 */

#ifndef SP_DATA_TRACE_H
#define SP_DATA_TRACE_H

#include <cstdint>
#include <cstddef>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "data/locality.h"
#include "data/workload.h"
#include "data/zipf.h"
#include "tensor/matrix.h"

namespace sp::data
{

/** Geometry and distribution of a synthetic trace. */
struct TraceConfig
{
    /** Number of embedding tables (paper default: 8). */
    size_t num_tables = 8;
    /** Rows per embedding table (paper default: 10M). */
    uint64_t rows_per_table = 10'000'000;
    /** Embedding gathers per table per sample (paper default: 20). */
    size_t lookups_per_table = 20;
    /** Mini-batch size (paper default: 2048). */
    size_t batch_size = 2048;
    /** Locality preset applied to every table... */
    Locality locality = Locality::Medium;
    /** ...unless overridden per table (size must equal num_tables). */
    std::vector<double> per_table_exponents;
    /** Master seed; all streams derive from it. */
    uint64_t seed = 42;
    /** Number of dense (continuous) features per sample. */
    size_t dense_features = 13;
    /** Workload shaping (drift/churn/burst/phase); default stationary. */
    WorkloadConfig workload;

    /** Sparse IDs per table per mini-batch (B * L). */
    size_t idsPerTable() const { return batch_size * lookups_per_table; }
    /** Sparse IDs per mini-batch across all tables. */
    size_t idsPerBatch() const { return idsPerTable() * num_tables; }

    /** Field-by-field equality (the cache's poison guard). */
    bool operator==(const TraceConfig &other) const = default;

    /**
     * Stable content hash over every generator-relevant field plus the
     * on-disk format version: two configs produce the same fingerprint
     * iff they generate byte-identical traces readable by this build.
     * The content-addressed trace cache (trace_store.h) keys on it.
     * Returned as 16 lowercase hex characters.
     */
    std::string fingerprint() const;
};

/**
 * One mini-batch of sparse IDs: the unit the pipeline operates on.
 *
 * A batch is backed in one of two ways: the generator path owns its
 * IDs in `table_ids`, while an mmap-backed dataset (trace_view.h)
 * fills `table_views` with spans straight into the file mapping and
 * leaves `table_ids` empty -- no deserialisation, no copies. Consumers
 * read through ids()/numTables(), which serve either backing; only the
 * generator and the eager loader touch `table_ids` directly.
 */
struct MiniBatch
{
    /** Global batch index within the trace. */
    uint64_t index = 0;
    size_t batch_size = 0;
    size_t lookups_per_table = 0;
    /**
     * table_ids[t] holds batch_size * lookups_per_table row IDs for
     * table t; the IDs for sample i are the contiguous slice
     * [i*L, (i+1)*L). Empty for view-backed batches.
     */
    std::vector<std::vector<uint64_t>> table_ids;
    /** Zero-copy backing: spans into an mmap'd trace file. */
    std::vector<std::span<const uint64_t>> table_views;

    size_t numTables() const
    {
        return table_views.empty() ? table_ids.size()
                                   : table_views.size();
    }

    /** Table t's row IDs, whichever backing holds them. */
    std::span<const uint64_t> ids(size_t t) const
    {
        return table_views.empty()
                   ? std::span<const uint64_t>(table_ids[t])
                   : table_views[t];
    }

    /** Element-wise ID equality across backings (tests, validation). */
    bool idsEqual(const MiniBatch &other) const;
};

/** Deterministic generator of mini-batches, dense features and labels. */
class TraceGenerator
{
  public:
    explicit TraceGenerator(const TraceConfig &config);

    const TraceConfig &config() const { return config_; }

    /** Materialise mini-batch `index` (deterministic per index). */
    MiniBatch makeBatch(uint64_t index) const;

    /**
     * Dense features for batch `index`: batch_size x dense_features,
     * N(0,1) entries, deterministic per index.
     */
    tensor::Matrix makeDenseFeatures(uint64_t index) const;

    /**
     * Click labels for batch `index`: batch_size x 1 in {0,1}. Labels
     * are drawn from a hidden model over the batch's sparse IDs so the
     * task is learnable through the embedding tables.
     */
    tensor::Matrix makeLabels(uint64_t index) const;

    /** Zipf exponent in effect for table t. */
    double tableExponent(size_t table) const;

  private:
    uint64_t streamSeed(uint64_t stream_kind, uint64_t table,
                        uint64_t index) const;

    TraceConfig config_;
    // One sampler per table; sample() is const in effect but the
    // sampler caches its normaliser, hence mutable.
    mutable std::vector<ZipfSampler> samplers_;
};

} // namespace sp::data

#endif // SP_DATA_TRACE_H
