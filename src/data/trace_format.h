/**
 * @file
 * On-disk trace format (internal to src/data).
 *
 * One header codec shared by the eager loader (dataset.cc), the mmap
 * view (trace_view.cc) and the writer, so the three can never drift.
 *
 * Layout (version 3; all fields native-endian, written raw):
 *
 *   u64 magic            "SCRTPIPE"
 *   u32 version          kTraceFormatVersion
 *   u32 pad              0 (keeps the rest of the header 8-aligned)
 *   u64 num_tables
 *   u64 rows_per_table
 *   u64 lookups_per_table
 *   u64 batch_size
 *   u64 locality
 *   u64 seed
 *   u64 dense_features
 *   f64 wl_drift_amp     -- workload shaping block (workload.h); all
 *   u64 wl_drift_period     zero for a stationary trace --
 *   u64 wl_churn_k
 *   u64 wl_churn_period
 *   f64 wl_burst_frac
 *   u64 wl_burst_period
 *   u64 wl_burst_len
 *   u64 wl_burst_ranks
 *   u64 wl_phase
 *   u64 num_exponents    0, or num_tables per-table Zipf exponents
 *   f64 exponents[num_exponents]
 *   u64 num_batches
 *   -- then num_batches records of --
 *   u64 batch_index
 *   u64 ids[num_tables][batch_size * lookups_per_table]
 *
 * Every batch record has the same computable size, so a reader can mmap
 * the file and serve any (batch, table) ID slice as a pointer into the
 * mapping: the ID payload is always 8-byte aligned (the header size and
 * each record are multiples of 8 bytes).
 *
 * Version 1 files omitted the per-table exponents; version 2 files
 * stored 32-bit IDs (truncating tables above 2^32 rows) and knew no
 * workload block. Both are rejected with a regenerate hint: an
 * incompletely described trace must never be served from the
 * content-addressed cache.
 */

#ifndef SP_DATA_TRACE_FORMAT_H
#define SP_DATA_TRACE_FORMAT_H

#include <cstdint>
#include <iosfwd>
#include <string>

#include "data/trace.h"

namespace sp::data::format
{

inline constexpr uint64_t kMagic = 0x5343525450495045ull; // "SCRTPIPE"
inline constexpr uint32_t kTraceFormatVersion = 3;

/** Decoded and validated file header. */
struct TraceFileHeader
{
    TraceConfig config;
    uint64_t num_batches = 0;
};

/** Exact header size for `config` (depends on per-table exponents). */
uint64_t headerBytes(const TraceConfig &config);

/** Size of one batch record: index word + the ID payload. */
uint64_t batchRecordBytes(const TraceConfig &config);

/** Byte offset of table `t`'s IDs inside batch `b`'s record. */
uint64_t idsOffset(const TraceConfig &config, uint64_t b, uint64_t t);

/** Write the v3 header. The caller checks stream state. */
void writeHeader(std::ostream &os, const TraceConfig &config,
                 uint64_t num_batches);

/**
 * Read and validate a header from a stream positioned at byte 0.
 * fatal() (mentioning `path`) on short reads, bad magic, unsupported
 * versions, or semantically impossible field values.
 */
TraceFileHeader readHeader(std::istream &is, const std::string &path);

/** Same validation over an in-memory byte range (the mmap path). */
TraceFileHeader parseHeader(const unsigned char *data, uint64_t size,
                            const std::string &path);

/**
 * Semantic header validation shared by both readers: field sanity
 * bounds (also overflow guards for the record-size arithmetic) and a
 * batch count that exactly matches `file_bytes`. fatal() on violation.
 */
void validateHeader(const TraceFileHeader &header, uint64_t file_bytes,
                    const std::string &path);

} // namespace sp::data::format

#endif // SP_DATA_TRACE_FORMAT_H
