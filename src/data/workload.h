/**
 * @file
 * Composable workload shaping over the Zipf samplers.
 *
 * The stationary generator in trace.h draws every batch from one fixed
 * Zipf(n, s) per table. Real training traffic is not stationary: item
 * popularity drifts over hours, the hot set churns as new items trend,
 * and flash crowds slam a narrow item range for a short window. This
 * layer composes those effects on top of the existing samplers:
 *
 *   - drifting alpha:   the Zipf exponent follows a triangle wave
 *                       around the locality preset's base value,
 *   - hot-set churn:    the hottest K ranks are re-permuted every
 *                       churn_period batches,
 *   - flash crowds:     for burst_len batches out of every
 *                       burst_period, each lookup is redirected with
 *                       probability burst_frac into a burst_ranks-wide
 *                       window whose position re-rolls per crowd,
 *   - per-table phase:  table t sees the schedule shifted by t*phase
 *                       batches, so tables drift/churn out of sync.
 *
 * Everything is deterministic per (seed, table, batch index): the
 * schedule position is a pure function of the batch index and the
 * shaping draws extend the batch's existing ID stream, so the
 * bit-identity contract and the content-addressed trace cache work
 * unchanged. A stationary config (all knobs zero) bypasses shaping
 * entirely and reproduces the classic generator stream byte for byte.
 *
 * WorkloadSpec adds the replay alternative: instead of generating,
 * ingest a previously recorded trace file (see trace_view.h) and run
 * it through the same systems, benches and harnesses.
 */

#ifndef SP_DATA_WORKLOAD_H
#define SP_DATA_WORKLOAD_H

#include <cstdint>
#include <string>
#include <vector>

#include "data/zipf.h"
#include "tensor/rng.h"

namespace sp::data
{

/**
 * Shaping knobs applied on top of the per-table Zipf samplers. All
 * defaults off == stationary == the classic generator, bit for bit.
 *
 * Fields here are generator-relevant state: every one is serialised
 * into the trace header, folded into TraceConfig::fingerprint() and
 * compared by TraceConfig::operator== (a field-count tripwire in
 * trace.cc fails the build if one is added without updating those).
 */
struct WorkloadConfig
{
    /** Peak deviation of the Zipf exponent from its base value. */
    double drift_amp = 0.0;
    /** Half-period, in batches, of the exponent triangle wave
     *  (base -> base+amp -> base -> base-amp -> base over 4 periods);
     *  0 disables drift. */
    uint64_t drift_period = 0;
    /** Number of hottest ranks re-permuted by churn; 0 disables. */
    uint64_t churn_k = 0;
    /** Batches between churn re-permutations. */
    uint64_t churn_period = 0;
    /** Probability a lookup is redirected into the burst window while
     *  a flash crowd is active; 0 disables bursts. */
    double burst_frac = 0.0;
    /** Batches between flash-crowd onsets. */
    uint64_t burst_period = 0;
    /** Batches a flash crowd lasts (must be <= burst_period). */
    uint64_t burst_len = 0;
    /** Width, in rows, of the burst target window. */
    uint64_t burst_ranks = 0;
    /** Per-table schedule offset: table t runs the schedule at
     *  position batch + t*phase, decorrelating tables. */
    uint64_t phase = 0;

    /** True iff every knob is at its default (no shaping). */
    bool stationary() const { return *this == WorkloadConfig{}; }

    /** Field-by-field equality (cache poison guard). */
    bool operator==(const WorkloadConfig &other) const = default;

    /**
     * Semantic validation against a table geometry. Returns an empty
     * string when valid, else a human-readable diagnostic.
     */
    std::string validationError(uint64_t rows_per_table) const;

    /** Canonical "key=value,..." string; "" when stationary. */
    std::string summary() const;
};

/**
 * A parsed `--workload` spec: either shaping knobs for the generator
 * or a replay path, never both.
 */
struct WorkloadSpec
{
    WorkloadConfig config;
    /** Non-empty: replay this recorded trace file instead of
     *  generating (mutually exclusive with shaping keys). */
    std::string replay_path;

    /**
     * Parse "key=value[,key=value...]". Keys: drift_amp, drift_period,
     * churn_k, churn_period, burst_frac, burst_period, burst_len,
     * burst_ranks, phase, replay. Duplicate keys and unknown keys are
     * fatal() with a diagnostic naming the offender; "" parses to the
     * stationary spec.
     */
    static WorkloadSpec parse(const std::string &text);

    /** Canonical spec string (round-trips through parse()). */
    std::string summary() const;
};

/**
 * Per-(table, batch) shaping state: resolves the schedule position,
 * the effective exponent, the churn permutation and the burst window
 * once, then shapes each sampled ID. Constructed inside makeBatch for
 * every non-stationary (table, batch) pair -- construction is O(1)
 * except for the O(churn_k) permutation, and holds no shared state,
 * so concurrent makeBatch calls stay safe.
 */
class WorkloadShaper
{
  public:
    /**
     * @param config        Validated shaping knobs.
     * @param seed          The trace's master seed.
     * @param rows          Rows per table (ID range).
     * @param base_exponent Table's stationary Zipf exponent.
     * @param table         Table index.
     * @param batch_index   Global batch index.
     */
    WorkloadShaper(const WorkloadConfig &config, uint64_t seed,
                   uint64_t rows, double base_exponent, uint64_t table,
                   uint64_t batch_index);

    /** Draw one shaped row ID, advancing the batch's ID stream. */
    uint64_t sample(tensor::Rng &rng);

    /** Exponent in effect at this schedule position (tests). */
    double effectiveExponent() const { return sampler_.exponent(); }

    /** True iff a flash crowd is active at this position (tests). */
    bool burstActive() const { return burst_active_; }

    /** Burst window start row (meaningful when burstActive()). */
    uint64_t burstLo() const { return burst_lo_; }

  private:
    const WorkloadConfig &config_;
    ZipfSampler sampler_;
    std::vector<uint64_t> churn_perm_;
    bool burst_active_ = false;
    uint64_t burst_lo_ = 0;
};

} // namespace sp::data

#endif // SP_DATA_WORKLOAD_H
