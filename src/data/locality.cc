#include "data/locality.h"

#include <algorithm>
#include <cctype>

#include "common/logging.h"

namespace sp::data
{

double
zipfExponent(Locality locality)
{
    // Exponents chosen so zipfTopCoverage(1e7, s, 0.02) lands on the
    // paper's quoted anchors (verified analytically in tests/data).
    switch (locality) {
      case Locality::Random:
        return 0.0;
      case Locality::Low:
        return 0.37; // top 2% -> ~8.5% of accesses (Alibaba User)
      case Locality::Medium:
        return 0.77; // top 2% -> ~40% of accesses (MovieLens/Anime)
      case Locality::High:
        return 1.05; // top 2% -> >80% of accesses (Criteo)
    }
    // splint:allow(io-status): exhaustive-switch guard, a bug not I/O
    panic("unknown Locality value");
}

const char *
localityName(Locality locality)
{
    switch (locality) {
      case Locality::Random:
        return "Random";
      case Locality::Low:
        return "Low";
      case Locality::Medium:
        return "Medium";
      case Locality::High:
        return "High";
    }
    // splint:allow(io-status): exhaustive-switch guard, a bug not I/O
    panic("unknown Locality value");
}

Locality
localityFromName(const std::string &name)
{
    std::string lower(name);
    std::transform(lower.begin(), lower.end(), lower.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    if (lower == "random")
        return Locality::Random;
    if (lower == "low")
        return Locality::Low;
    if (lower == "medium")
        return Locality::Medium;
    if (lower == "high")
        return Locality::High;
    fatal("unknown locality preset '", name,
          "' (expected Random/Low/Medium/High)");
}

double
expectedTop2PercentCoverage(Locality locality)
{
    switch (locality) {
      case Locality::Random:
        return 0.02;
      case Locality::Low:
        return 0.085;
      case Locality::Medium:
        return 0.40;
      case Locality::High:
        return 0.80;
    }
    // splint:allow(io-status): exhaustive-switch guard, a bug not I/O
    panic("unknown Locality value");
}

} // namespace sp::data
