#include "data/trace.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>

#include "common/logging.h"
#include "data/trace_format.h"

namespace sp::data
{

namespace
{

// Distinct stream kinds keep ID, dense and label streams independent.
constexpr uint64_t kStreamIds = 0x1d5;
constexpr uint64_t kStreamDense = 0xd3e;
constexpr uint64_t kStreamLabel = 0x1ab;

uint64_t
mix64(uint64_t x)
{
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdull;
    x ^= x >> 33;
    x *= 0xc4ceb9fe1a85ec53ull;
    x ^= x >> 33;
    return x;
}

// --- Field-count tripwire ------------------------------------------
// fingerprint() and operator== must cover every TraceConfig (and
// nested WorkloadConfig) field, or stale cache entries alias new
// workloads. Counting aggregate members at compile time turns "added
// a field, forgot the fingerprint" into a build failure pointing
// here instead of a silently poisoned cache.
struct AnyField
{
    template <typename T> operator T() const; // never defined
};

template <typename T, typename... Fields>
constexpr size_t
fieldCount()
{
    if constexpr (requires { T{Fields{}..., AnyField{}}; })
        return fieldCount<T, Fields..., AnyField>();
    else
        return sizeof...(Fields);
}

static_assert(fieldCount<WorkloadConfig>() == 9,
              "WorkloadConfig gained or lost a field: update "
              "TraceConfig::fingerprint(), the workload spec "
              "parser/summary, the v3 trace header codec "
              "(trace_format.cc) and this count together");
static_assert(fieldCount<TraceConfig>() == 9,
              "TraceConfig gained or lost a field: update "
              "fingerprint(), the trace header codec "
              "(trace_format.cc) and this count together");

} // namespace

std::string
TraceConfig::fingerprint() const
{
    // Chained mix64 over every generator-relevant field. Order and
    // content must only change together with kTraceFormatVersion
    // (which is folded in, so a format bump retires every cache entry
    // at once); a pinned-value test guards against accidental drift.
    uint64_t h = 0x5343525450495045ull; // "SCRTPIPE"
    const auto fold = [&h](uint64_t value) { h = mix64(h ^ value); };
    fold(format::kTraceFormatVersion);
    fold(num_tables);
    fold(rows_per_table);
    fold(lookups_per_table);
    fold(batch_size);
    fold(static_cast<uint64_t>(locality));
    fold(seed);
    fold(dense_features);
    fold(per_table_exponents.size());
    for (const double exponent : per_table_exponents)
        fold(std::bit_cast<uint64_t>(exponent));
    fold(std::bit_cast<uint64_t>(workload.drift_amp));
    fold(workload.drift_period);
    fold(workload.churn_k);
    fold(workload.churn_period);
    fold(std::bit_cast<uint64_t>(workload.burst_frac));
    fold(workload.burst_period);
    fold(workload.burst_len);
    fold(workload.burst_ranks);
    fold(workload.phase);

    char hex[17];
    std::snprintf(hex, sizeof(hex), "%016llx",
                  static_cast<unsigned long long>(h));
    return std::string(hex, 16);
}

bool
MiniBatch::idsEqual(const MiniBatch &other) const
{
    if (index != other.index || batch_size != other.batch_size ||
        lookups_per_table != other.lookups_per_table ||
        numTables() != other.numTables())
        return false;
    for (size_t t = 0; t < numTables(); ++t) {
        const auto mine = ids(t);
        const auto theirs = other.ids(t);
        if (!std::equal(mine.begin(), mine.end(), theirs.begin(),
                        theirs.end()))
            return false;
    }
    return true;
}

TraceGenerator::TraceGenerator(const TraceConfig &config) : config_(config)
{
    fatalIf(config_.num_tables == 0, "trace needs at least one table");
    fatalIf(config_.rows_per_table == 0, "tables need at least one row");
    fatalIf(config_.batch_size == 0, "batch size must be positive");
    fatalIf(config_.lookups_per_table == 0,
            "lookups per table must be positive");
    fatalIf(!config_.per_table_exponents.empty() &&
                config_.per_table_exponents.size() != config_.num_tables,
            "per_table_exponents must have one entry per table (",
            config_.num_tables, "), got ",
            config_.per_table_exponents.size());
    const std::string workload_error =
        config_.workload.validationError(config_.rows_per_table);
    fatalIf(!workload_error.empty(), "workload config: ", workload_error);

    samplers_.reserve(config_.num_tables);
    for (size_t t = 0; t < config_.num_tables; ++t)
        samplers_.emplace_back(config_.rows_per_table, tableExponent(t));
}

double
TraceGenerator::tableExponent(size_t table) const
{
    // splint:allow(io-status): caller-bug bounds check, not I/O
    panicIf(table >= config_.num_tables, "table index out of range");
    if (!config_.per_table_exponents.empty())
        return config_.per_table_exponents[table];
    return zipfExponent(config_.locality);
}

uint64_t
TraceGenerator::streamSeed(uint64_t stream_kind, uint64_t table,
                           uint64_t index) const
{
    uint64_t h = config_.seed;
    h = mix64(h ^ (stream_kind * 0x9e3779b97f4a7c15ull));
    h = mix64(h ^ (table + 1));
    h = mix64(h ^ (index + 1));
    return h;
}

MiniBatch
TraceGenerator::makeBatch(uint64_t index) const
{
    MiniBatch batch;
    batch.index = index;
    batch.batch_size = config_.batch_size;
    batch.lookups_per_table = config_.lookups_per_table;
    batch.table_ids.resize(config_.num_tables);

    const size_t ids_per_table = config_.idsPerTable();
    const bool stationary = config_.workload.stationary();
    for (size_t t = 0; t < config_.num_tables; ++t) {
        tensor::Rng rng(streamSeed(kStreamIds, t, index));
        auto &ids = batch.table_ids[t];
        ids.resize(ids_per_table);
        if (stationary) {
            // Classic path: byte-identical to the pre-workload
            // generator (the shaper would reproduce it, but skipping
            // construction keeps the hot path allocation-free).
            for (size_t i = 0; i < ids_per_table; ++i)
                ids[i] = samplers_[t].sample(rng);
        } else {
            WorkloadShaper shaper(config_.workload, config_.seed,
                                  config_.rows_per_table,
                                  tableExponent(t), t, index);
            for (size_t i = 0; i < ids_per_table; ++i)
                ids[i] = shaper.sample(rng);
        }
    }
    return batch;
}

tensor::Matrix
TraceGenerator::makeDenseFeatures(uint64_t index) const
{
    tensor::Rng rng(streamSeed(kStreamDense, 0, index));
    tensor::Matrix dense(config_.batch_size, config_.dense_features);
    dense.fillNormal(rng, 1.0f);
    return dense;
}

tensor::Matrix
TraceGenerator::makeLabels(uint64_t index) const
{
    // Hidden CTR model with two learnable components: a fixed +/-1
    // weighting of the dense features (reachable through the bottom
    // MLP) and a +/-1 hash of every looked-up row ID (reachable only
    // through the embedding tables). The label is a Bernoulli draw on
    // the sigmoid of the combined score, so training has real signal
    // to extract along both paths.
    const MiniBatch batch = makeBatch(index);
    const tensor::Matrix dense = makeDenseFeatures(index);
    tensor::Rng rng(streamSeed(kStreamLabel, 0, index));
    tensor::Matrix labels(config_.batch_size, 1);

    const size_t lookups = config_.lookups_per_table;
    const double id_scale =
        1.5 / std::sqrt(static_cast<double>(config_.num_tables * lookups));
    const double dense_scale =
        1.5 / std::sqrt(static_cast<double>(config_.dense_features));
    for (size_t i = 0; i < config_.batch_size; ++i) {
        double score = 0.0;
        for (size_t t = 0; t < config_.num_tables; ++t) {
            const auto ids = batch.ids(t);
            for (size_t l = 0; l < lookups; ++l) {
                const uint64_t h = mix64(ids[i * lookups + l] + 7919 * t);
                score += ((h & 1) ? 1.0 : -1.0) * id_scale;
            }
        }
        for (size_t j = 0; j < config_.dense_features; ++j) {
            const uint64_t h = mix64(config_.seed * 31 + j);
            score += ((h & 1) ? 1.0 : -1.0) * dense(i, j) * dense_scale;
        }
        const double p = 1.0 / (1.0 + std::exp(-score));
        labels(i, 0) = rng.bernoulli(p) ? 1.0f : 0.0f;
    }
    return labels;
}

} // namespace sp::data
