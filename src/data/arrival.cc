#include "data/arrival.h"

#include <cmath>

#include "common/logging.h"

namespace sp::data
{

namespace
{

// Stream constant for the arrival process, disjoint from the trace
// streams (kStreamIds/kStreamDense/kStreamLabel in trace.cc) and the
// shaper streams (kStreamChurn/kStreamBurst in workload.cc).
constexpr uint64_t kStreamArrival = 0xa771;

uint64_t
mix64(uint64_t x)
{
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdull;
    x ^= x >> 33;
    x *= 0xc4ceb9fe1a85ec53ull;
    x ^= x >> 33;
    return x;
}

uint64_t
splitmix64(uint64_t &state)
{
    uint64_t z = (state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

} // namespace

const char *
arrivalKindName(ArrivalKind kind)
{
    switch (kind) {
      case ArrivalKind::Poisson:
        return "poisson";
      case ArrivalKind::Uniform:
        return "uniform";
      case ArrivalKind::Bursty:
        return "bursty";
    }
    fatal("unreachable arrival kind");
}

ArrivalKind
arrivalKindFromName(const std::string &name)
{
    if (name == "poisson")
        return ArrivalKind::Poisson;
    if (name == "uniform")
        return ArrivalKind::Uniform;
    if (name == "bursty")
        return ArrivalKind::Bursty;
    fatal("unknown arrival process '", name,
          "' (poisson/uniform/bursty)");
}

std::string
ArrivalConfig::validationError() const
{
    // Written as !(in range) so NaN is rejected too.
    if (!(rate > 0.0) || !std::isfinite(rate))
        return "rate must be a positive, finite request rate "
               "(requests/second); rate=0 makes every inter-arrival "
               "gap divide by zero";
    if (kind != ArrivalKind::Bursty)
        return "";
    if (!(burst_x >= 1.0) || !std::isfinite(burst_x))
        return "burst_x must be a finite on-phase multiplier >= 1";
    if (!(burst_on_us > 0.0) || !std::isfinite(burst_on_us))
        return "burst_on_us must be a positive, finite on-phase length "
               "(microseconds)";
    if (!(burst_off_us > 0.0) || !std::isfinite(burst_off_us))
        return "burst_off_us must be a positive, finite off-phase "
               "length (microseconds)";
    if (burst_x * burst_on_us > burst_on_us + burst_off_us)
        return "burst_x * burst_on_us exceeds the period: the "
               "off-phase rate that preserves the mean would be "
               "negative";
    return "";
}

ArrivalProcess::ArrivalProcess(const ArrivalConfig &config, uint64_t seed)
    : config_(config),
      state_(mix64(seed ^ (kStreamArrival * 0x9e3779b97f4a7c15ull)))
{
    const std::string problem = config.validationError();
    fatalIf(!problem.empty(), "arrival config: ", problem);
    if (config_.kind == ArrivalKind::Bursty) {
        on_seconds_ = config_.burst_on_us * 1e-6;
        off_seconds_ = config_.burst_off_us * 1e-6;
        // Mean-preserving modulation: on-phase mass rate*burst_x*on,
        // the off-phase carries whatever remains of rate*period.
        const double period = on_seconds_ + off_seconds_;
        off_rate_ = (config_.rate * period -
                     config_.rate * config_.burst_x * on_seconds_) /
                    off_seconds_;
    }
}

double
ArrivalProcess::uniformDraw()
{
    // (draw >> 11) spans [0, 2^53); +1 shifts the lattice to (0, 2^53]
    // so the result lies in (0, 1] -- the clamp that keeps
    // -ln(u) finite.
    return (static_cast<double>(splitmix64(state_) >> 11) + 1.0) *
           0x1.0p-53;
}

double
ArrivalProcess::next()
{
    double gap = 0.0;
    switch (config_.kind) {
      case ArrivalKind::Poisson:
        gap = -std::log(uniformDraw()) / config_.rate;
        break;
      case ArrivalKind::Uniform:
        gap = 1.0 / config_.rate;
        break;
      case ArrivalKind::Bursty: {
        // Rate-modulated Poisson, rate frozen at the draw's phase
        // (exact for gaps short against the phase length, which is the
        // regime bursts model). An off-phase rate of zero -- allowed
        // when burst_x*burst_on equals the period -- is handled by
        // jumping the clock to the next on-phase.
        const double period = on_seconds_ + off_seconds_;
        double phase = std::fmod(now_, period);
        if (!(phase < on_seconds_) && off_rate_ <= 0.0) {
            now_ += period - phase;
            phase = 0.0;
        }
        const double rate = phase < on_seconds_
                                ? config_.rate * config_.burst_x
                                : off_rate_;
        gap = -std::log(uniformDraw()) / rate;
        break;
      }
    }
    now_ += gap;
    return now_;
}

} // namespace sp::data
