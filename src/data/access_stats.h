/**
 * @file
 * Access-frequency statistics over traces.
 *
 * Backs two figures: the sorted access-count curves of Fig. 3 and the
 * hit-rate-vs-cache-size sweeps of Fig. 6 (via coverage()). Also
 * supplies the frequency ranking the static top-N cache of Yin et al.
 * is built from.
 */

#ifndef SP_DATA_ACCESS_STATS_H
#define SP_DATA_ACCESS_STATS_H

#include <cstdint>
#include <cstddef>
#include <vector>

#include "data/dataset.h"

namespace sp::data
{

/** Per-table access histogram accumulated over mini-batches. */
class AccessStats
{
  public:
    /**
     * @param num_tables Tables to track.
     * @param rows_per_table Rows per table (histogram width).
     */
    AccessStats(size_t num_tables, uint64_t rows_per_table);

    /** Accumulate every sparse ID of one mini-batch. */
    void addBatch(const MiniBatch &batch);

    /** Accumulate an entire dataset. */
    void addDataset(const TraceDataset &dataset);

    /** Total accesses recorded for table t. */
    uint64_t totalAccesses(size_t table) const;

    /** Raw per-row counts for table t. */
    const std::vector<uint64_t> &counts(size_t table) const;

    /** Access counts of table t sorted descending (Fig. 3 curves). */
    std::vector<uint64_t> sortedCounts(size_t table) const;

    /**
     * Fraction of accesses captured by the `top_fraction` most
     * frequently accessed rows of table t (Fig. 6 / static-cache hit
     * rate upper bound).
     */
    double coverage(size_t table, double top_fraction) const;

    /**
     * Row IDs of table t ranked by descending access count; the first
     * k entries are the static cache contents for capacity k.
     */
    std::vector<uint64_t> rankedRows(size_t table) const;

    /** Number of distinct rows of table t that were ever accessed. */
    uint64_t uniqueRows(size_t table) const;

  private:
    uint64_t rows_per_table_;
    std::vector<std::vector<uint64_t>> counts_;
};

} // namespace sp::data

#endif // SP_DATA_ACCESS_STATS_H
