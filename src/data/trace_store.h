/**
 * @file
 * Content-addressed, process-shared trace cache.
 *
 * The paper's evaluation sweeps many system configurations over the
 * *same* materialised trace, yet every driver used to regenerate it
 * per process. TraceStore maps TraceConfig::fingerprint() to a file
 * under a cache directory (SP_TRACE_CACHE, default `.sp-trace-cache/`)
 * so the first driver pays generation once and every later run --
 * any process, any driver -- warm-starts with an mmap plus header
 * validation (TraceView), falling back to the eager loader where mmap
 * is unavailable.
 *
 * Guarantees:
 *  - Atomic publication: entries are written to a temp file and
 *    rename()d into place, so a concurrent reader can never observe a
 *    torn file. Two processes racing on the same fingerprint both
 *    succeed; the identical content makes last-rename-wins harmless.
 *  - Poison-proof: a loaded entry's header config is compared
 *    field-by-field against the requested config (fingerprints collide
 *    in principle; silent mismatch would poison every downstream
 *    result). Mismatches and corrupt or truncated entries are treated
 *    as misses and regenerated over the bad file.
 *  - Prefix serving: an entry holding N batches serves any request for
 *    n <= N batches; a request for more regenerates and republishes.
 *
 * The transparent-cache switch (setCacheEnabled) is process-wide and
 * off by default at the library level; drivers opt in (spsim and the
 * bench prologue do, with a --no-trace-cache opt-out). Setting the
 * SP_TRACE_CACHE environment variable to `0`, `off` or `none`
 * disables caching regardless of the switch.
 */

#ifndef SP_DATA_TRACE_STORE_H
#define SP_DATA_TRACE_STORE_H

#include <cstdint>
#include <optional>
#include <string>

#include "common/status.h"
#include "data/dataset.h"
#include "data/trace.h"

namespace sp::data
{

/** Fingerprint-keyed trace cache over one directory. */
class TraceStore
{
  public:
    struct Options
    {
        /** Cache directory; empty resolves SP_TRACE_CACHE, then the
         *  `.sp-trace-cache` default. */
        std::string directory;
        /** Serve hits through mmap when the platform supports it. */
        bool use_mmap = true;
    };

    /** How one acquire() was satisfied (logging, benches, tests). */
    struct AcquireInfo
    {
        /** Served from an existing valid entry. */
        bool cache_hit = false;
        /** Batches are mmap-backed (zero-copy). */
        bool mapped = false;
        /** This call generated and (re)published the entry. */
        bool published = false;
        /** Why an existing entry was rejected (ok on a hit, or when
         *  no entry existed at all). */
        sp::Status load_status;
        /** Why publication failed (ok when it succeeded or was not
         *  attempted). */
        sp::Status publish_status;
    };

    /** Store over the default directory (SP_TRACE_CACHE fallback). */
    TraceStore();
    explicit TraceStore(const Options &options);

    const std::string &directory() const { return directory_; }

    /** The entry file a config maps to (exists or not). */
    std::string entryPath(const TraceConfig &config) const;

    /**
     * The one-call API: return a dataset of exactly `num_batches`
     * batches for `config`, from the cache when a valid entry covers
     * it, otherwise by generating and atomically publishing one.
     * Never fails because of cache trouble: corrupt, truncated or
     * version-mismatched entries are regenerated over, transient
     * rename races are retried with backoff, and publication errors
     * (read-only or full disk) degrade to an uncached in-memory
     * dataset with a rate-limited warning on stderr. The classified
     * causes are reported through `info` for callers that care.
     */
    TraceDataset acquire(const TraceConfig &config, uint64_t num_batches,
                         AcquireInfo *info = nullptr) const;

    /**
     * Process-wide transparent-cache switch consulted by
     * sys::ExperimentRunner. Off by default; drivers enable it.
     */
    static void setCacheEnabled(bool enabled);

    /** The switch, also gated on SP_TRACE_CACHE != 0|off|none. */
    static bool cacheEnabled();

  private:
    std::optional<TraceDataset> tryLoad(const TraceConfig &config,
                                        uint64_t num_batches,
                                        const std::string &path,
                                        bool *mapped,
                                        sp::Status *load_status) const;
    sp::Status publish(const TraceDataset &dataset,
                       const std::string &path) const;

    std::string directory_;
    bool use_mmap_ = true;
};

} // namespace sp::data

#endif // SP_DATA_TRACE_STORE_H
