/**
 * @file
 * Zero-copy mmap view over a serialised trace file.
 *
 * A TraceView maps a v3 trace file (see trace_format.h) read-only into
 * the address space and serves any (batch, table) ID slice as a span
 * pointing straight into the mapping -- warm-starting a paper-scale
 * sweep costs one mmap plus header validation instead of regenerating
 * (or even rereading) gigabytes of IDs. The header is fully validated
 * at open() time, including an exact file-size check, so a span handed
 * out later can never run off the mapping.
 *
 * Platforms without POSIX mmap report supported() == false and open()
 * fails; callers (TraceStore, TraceDataset::mapped) fall back to the
 * eager loader.
 */

#ifndef SP_DATA_TRACE_VIEW_H
#define SP_DATA_TRACE_VIEW_H

#include <cstdint>
#include <memory>
#include <span>
#include <string>

#include "common/status.h"
#include "data/trace.h"

namespace sp::data
{

/** Read-only mmap over one trace file; immutable once opened. */
class TraceView
{
  public:
    /** True when this platform has an mmap path at all. */
    static bool supported();

    /**
     * Map `path` and validate its header. Throws StatusError
     * classifying the failure: NotFound (missing file), Corrupt /
     * Truncated / VersionMismatch (validation), IoError (stat/mmap),
     * Unsupported (platform without mmap).
     */
    static std::shared_ptr<TraceView> open(const std::string &path);

    /** open() with the failure as a Result instead of an exception. */
    static sp::Result<std::shared_ptr<TraceView>>
    tryOpen(const std::string &path);

    ~TraceView();
    TraceView(const TraceView &) = delete;
    TraceView &operator=(const TraceView &) = delete;

    const std::string &path() const { return path_; }
    const TraceConfig &config() const { return config_; }
    uint64_t numBatches() const { return num_batches_; }

    /** The index recorded for batch `b` (equals b in a valid file). */
    uint64_t batchIndex(uint64_t b) const;

    /** Table `t`'s IDs for batch `b`: a span into the mapping. */
    std::span<const uint64_t> ids(uint64_t b, uint64_t t) const;

  private:
    TraceView() = default;

    std::string path_;
    TraceConfig config_;
    uint64_t num_batches_ = 0;
    const unsigned char *data_ = nullptr;
    uint64_t size_ = 0;
};

} // namespace sp::data

#endif // SP_DATA_TRACE_VIEW_H
