#include "data/dataset.h"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <fstream>

#include "common/fault.h"
#include "common/logging.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "data/trace_format.h"

namespace sp::data
{

TraceDataset::TraceDataset(const TraceConfig &config, uint64_t num_batches)
    : config_(config), generator_(config)
{
    fatalIf(num_batches == 0, "dataset needs at least one batch");
    // Each batch is an independent seeded stream (deterministic per
    // index, see trace.h), so generation parallelises with
    // bit-identical results: worker i only writes batches_[i].
    batches_.resize(num_batches);
    common::parallelFor(num_batches, [this](size_t i) {
        batches_[i] = generator_.makeBatch(i);
    });
}

TraceDataset::TraceDataset(const TraceConfig &config,
                           std::vector<MiniBatch> batches)
    : config_(config), generator_(config), batches_(std::move(batches))
{
    fatalIf(batches_.empty(), "dataset needs at least one batch");
}

TraceDataset::TraceDataset(std::shared_ptr<TraceView> view,
                           uint64_t max_batches)
    : config_(view->config()), generator_(view->config()),
      view_(std::move(view))
{
    const uint64_t num_batches =
        max_batches == 0
            ? view_->numBatches()
            : std::min<uint64_t>(max_batches, view_->numBatches());
    // Warm start: no ID bytes move -- each batch is a handful of spans
    // into the mapping, built in O(num_tables) per batch. Reading the
    // index word does fault in one page per batch; that is deliberate:
    // an entry with scribbled interior indices must be detected here,
    // where TraceStore can still classify it as a miss and regenerate,
    // not as a panic in the middle of a simulation.
    batches_.resize(num_batches);
    for (uint64_t b = 0; b < num_batches; ++b) {
        MiniBatch &batch = batches_[b];
        batch.index = view_->batchIndex(b);
        failIf(batch.index != b, ErrorCode::Corrupt, "'",
               view_->path(), "' stores batch index ", batch.index,
               " at position ", b, "; the file is corrupt");
        batch.batch_size = config_.batch_size;
        batch.lookups_per_table = config_.lookups_per_table;
        batch.table_views.resize(config_.num_tables);
        for (size_t t = 0; t < config_.num_tables; ++t)
            batch.table_views[t] = view_->ids(b, t);
    }
}

const MiniBatch &
TraceDataset::batch(uint64_t index) const
{
    // splint:allow(io-status): caller-bug bounds check, not I/O
    panicIf(index >= batches_.size(), "batch index ", index,
            " out of range (", batches_.size(), " batches)");
    return batches_[index];
}

const MiniBatch *
TraceDataset::lookAhead(uint64_t index, uint64_t distance) const
{
    // distance is caller-controlled (future-window sweeps); index +
    // distance could wrap and alias a stale in-range batch, so bound
    // the distance against the remaining trace instead of summing.
    if (index >= batches_.size())
        return nullptr;
    if (distance >= batches_.size() - index)
        return nullptr;
    return &batches_[index + distance];
}

tensor::Matrix
TraceDataset::denseFeatures(uint64_t index) const
{
    return generator_.makeDenseFeatures(index);
}

tensor::Matrix
TraceDataset::labels(uint64_t index) const
{
    return generator_.makeLabels(index);
}

namespace
{

/** Classify a failed write by errno: a full disk is the one cause
 *  callers degrade differently for (it clears on its own; retrying a
 *  corrupt path never will). */
sp::Status
writeFailure(const std::string &path, const char *stage)
{
    const ErrorCode code =
        errno == ENOSPC ? ErrorCode::NoSpace : ErrorCode::IoError;
    return Status::error(code, std::string("I/O error while ") + stage +
                                   " '" + path + "'");
}

} // namespace

sp::Status
TraceDataset::saveTo(const std::string &path) const
{
    errno = 0;
    std::ofstream os(path, std::ios::binary);
    if (!os)
        return writeFailure(path, "opening");

    try {
        format::writeHeader(os, config_,
                            static_cast<uint64_t>(batches_.size()));
        for (const auto &batch : batches_) {
            SP_FAULT_POINT("dataset.save.write");
            os.write(reinterpret_cast<const char *>(&batch.index),
                     sizeof(batch.index));
            for (size_t t = 0; t < batch.numTables(); ++t) {
                const auto ids = batch.ids(t);
                os.write(reinterpret_cast<const char *>(ids.data()),
                         static_cast<std::streamsize>(
                             ids.size() * sizeof(uint64_t)));
            }
        }
    } catch (const StatusError &e) {
        return e.status();
    }
    // Durability: a full disk or short write may only surface at
    // flush/close time; check both so a truncated file is reported
    // here rather than as a corruption error at some later load().
    os.flush();
    if (!os)
        return writeFailure(path, "writing");
    os.close();
    if (os.fail())
        return writeFailure(path, "closing");
    return sp::Status();
}

void
TraceDataset::save(const std::string &path) const
{
    const sp::Status status = saveTo(path);
    if (!status.ok())
        throw StatusError(status);
}

TraceDataset
TraceDataset::load(const std::string &path, uint64_t max_batches)
{
    errno = 0;
    std::ifstream is(path, std::ios::binary);
    failIf(!is,
           errno == ENOENT ? ErrorCode::NotFound : ErrorCode::IoError,
           "cannot open '", path, "' for reading");

    const format::TraceFileHeader header = format::readHeader(is, path);
    is.seekg(0, std::ios::end);
    const uint64_t file_bytes = static_cast<uint64_t>(is.tellg());
    is.seekg(static_cast<std::streamoff>(
        format::headerBytes(header.config)));
    format::validateHeader(header, file_bytes, path);

    const TraceConfig &config = header.config;
    const uint64_t num_batches =
        max_batches == 0
            ? header.num_batches
            : std::min<uint64_t>(max_batches, header.num_batches);
    std::vector<MiniBatch> batches;
    batches.reserve(num_batches);
    const size_t ids_per_table = config.idsPerTable();
    for (uint64_t b = 0; b < num_batches; ++b) {
        MiniBatch batch;
        SP_FAULT_POINT("dataset.load.read");
        is.read(reinterpret_cast<char *>(&batch.index),
                sizeof(batch.index));
        batch.batch_size = config.batch_size;
        batch.lookups_per_table = config.lookups_per_table;
        batch.table_ids.resize(config.num_tables);
        for (auto &ids : batch.table_ids) {
            ids.resize(ids_per_table);
            is.read(reinterpret_cast<char *>(ids.data()),
                    static_cast<std::streamsize>(ids.size() *
                                                 sizeof(uint64_t)));
        }
        // Per-batch check so truncation fails at the cut, not after
        // looping num_batches times over a dead stream.
        failIf(!is, ErrorCode::Truncated, "'", path,
               "' is truncated at batch ", b, " of ", num_batches);
        failIf(batch.index != b, ErrorCode::Corrupt, "'", path,
               "' stores batch index ", batch.index, " at position ",
               b, "; the file is corrupt");
        batches.push_back(std::move(batch));
    }
    return TraceDataset(config, std::move(batches));
}

sp::Result<TraceDataset>
TraceDataset::tryLoad(const std::string &path, uint64_t max_batches)
{
    try {
        return TraceDataset::load(path, max_batches);
    } catch (const StatusError &e) {
        return e.status();
    } catch (const FatalError &e) {
        return Status::error(ErrorCode::IoError, e.what());
    }
}

TraceDataset
TraceDataset::mapped(const std::string &path, uint64_t max_batches)
{
    return TraceDataset(TraceView::open(path), max_batches);
}

TraceDataset
TraceDataset::replay(const std::string &path, uint64_t max_batches)
{
    // Replay adapter: the file's embedded config drives the run, so a
    // recorded trace flows through every system and harness exactly
    // like a generated one. Zero-copy mmap when the platform has it,
    // eager load otherwise.
    SP_FAULT_POINT("dataset.replay.open");
    if (TraceView::supported())
        return mapped(path, max_batches);
    return load(path, max_batches);
}

sp::Result<TraceDataset>
TraceDataset::tryReplay(const std::string &path, uint64_t max_batches)
{
    try {
        return TraceDataset::replay(path, max_batches);
    } catch (const StatusError &e) {
        return e.status();
    } catch (const FatalError &e) {
        return Status::error(ErrorCode::IoError, e.what());
    }
}

sp::Result<TraceDataset>
TraceDataset::tryMapped(const std::string &path, uint64_t max_batches)
{
    try {
        return TraceDataset::mapped(path, max_batches);
    } catch (const StatusError &e) {
        return e.status();
    } catch (const FatalError &e) {
        return Status::error(ErrorCode::IoError, e.what());
    }
}

} // namespace sp::data
